// Command simulate drives a live MiddleWhere deployment with
// synthetic activity: it runs the building simulator, wires simulated
// sensor fields to adapters, and streams the resulting readings into a
// location service — either a remote daemon (via -addr) or an
// in-process service (the default, for demos without a daemon).
//
// Usage:
//
//	simulate                      # in-process paper floor, 5 people, 60s
//	simulate -people 10 -steps 600
//	simulate -addr localhost:7700 # feed a running daemon
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"middlewhere"
	"middlewhere/internal/render"
)

func main() {
	var (
		addr     = flag.String("addr", "", "remote location service (empty: run in-process)")
		people   = flag.Int("people", 5, "simulated people")
		steps    = flag.Int("steps", 300, "simulation steps (1s each)")
		seed     = flag.Int64("seed", 1, "random seed")
		realtime = flag.Bool("realtime", false, "sleep 1s of wall time per step")
		report   = flag.Int("report", 30, "print a location report every N steps")
		draw     = flag.Bool("draw", false, "draw an ASCII floor map with each report")
	)
	flag.Parse()
	if err := run(*addr, *people, *steps, *seed, *realtime, *report, *draw); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, people, steps int, seed int64, realtime bool, report int, draw bool) error {
	bld := middlewhere.PaperFloor()
	s, err := middlewhere.NewSim(bld, middlewhere.SimConfig{
		People:   people,
		Seed:     seed,
		DwellMin: 5 * time.Second,
		DwellMax: 20 * time.Second,
	})
	if err != nil {
		return err
	}

	// The reading sink/registrar: a remote client or a local service.
	var (
		sink interface {
			Ingest(middlewhere.Reading) error
			RegisterSensor(string, middlewhere.SensorSpec) error
		}
		local *middlewhere.Service
	)
	if addr != "" {
		// Reconnecting client + buffered ingest: a flapping daemon
		// degrades the feed instead of killing the simulation.
		c, err := middlewhere.DialLocationOptions(addr, middlewhere.RemoteDialOptions{
			DialAttempts: 8,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		buffered := middlewhere.NewResilientSink(c, middlewhere.ResilientOptions{})
		defer buffered.Close()
		sink = remoteSink{client: c, readings: buffered}
		log.Printf("feeding remote service at %s", addr)
	} else {
		svc, err := middlewhere.New(bld, middlewhere.WithClock(s.Now))
		if err != nil {
			return err
		}
		defer svc.Close()
		sink, local = svc, svc
		log.Print("running in-process service")
	}

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("sim-ubi", floor, 0.9, sink, sink, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	rf, err := middlewhere.NewRFID("sim-rf", floor, middlewhere.Pt(370, 15), 15, 0.8,
		sink, sink, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	card, err := middlewhere.NewCardReader("sim-card-3105",
		middlewhere.MustParseGLOB("CS/Floor3/3105"), sink, sink, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}

	observers := []middlewhere.Observer{
		middlewhere.NewUbisenseField(ubi, bld.Universe, 0.9, s.Rand()),
		middlewhere.NewRFIDStation(rf, middlewhere.Pt(370, 15), 15, 0.8, s.Rand()),
		&middlewhere.CardReaderDoor{Adapter: card, Room: "CS/Floor3/3105"},
	}

	var observeFailures int
	for i := 1; i <= steps; i++ {
		s.Step()
		snapshot := s.People()
		for _, o := range observers {
			if err := o.Observe(s.Now(), snapshot); err != nil {
				// Tolerate sink hiccups: the world keeps moving and the
				// other sensors keep reporting.
				if observeFailures == 0 {
					log.Printf("observer error (continuing): %v", err)
				}
				observeFailures++
			}
		}
		if report > 0 && i%report == 0 && local != nil {
			fmt.Printf("--- t=%ds\n", i)
			if draw {
				markers := make([]render.Marker, 0, len(snapshot))
				for j, p := range snapshot {
					markers = append(markers, render.Marker{
						Label: rune('0' + j%10), Pos: p.Pos,
					})
				}
				fmt.Print(render.Floor(local.DB(), markers, 100))
			}
			for _, p := range snapshot {
				loc, err := local.LocateObject(p.ID)
				if err != nil {
					fmt.Printf("%-10s true=%-28s est=unknown\n", p.ID, p.Room)
					continue
				}
				fmt.Printf("%-10s true=%-28s est=%-28s p=%.2f err=%.1f\n",
					p.ID, p.Room, loc.Symbolic,
					loc.Prob, loc.Rect.Center().Dist(p.Pos))
			}
		}
		if realtime {
			time.Sleep(time.Second)
		}
	}
	if observeFailures > 0 {
		log.Printf("done with degraded coverage: %d observations failed", observeFailures)
	}
	log.Printf("done: %d steps, %d people", steps, people)
	return nil
}

// remoteSink pairs the buffered, circuit-broken ingest path with the
// client's registrar: readings degrade gracefully when the daemon
// flaps, while registration errors still surface immediately.
type remoteSink struct {
	client   *middlewhere.RemoteClient
	readings *middlewhere.ResilientSink
}

func (r remoteSink) Ingest(rd middlewhere.Reading) error { return r.readings.Ingest(rd) }

func (r remoteSink) RegisterSensor(id string, spec middlewhere.SensorSpec) error {
	return r.client.RegisterSensor(id, spec)
}
