package main

import "testing"

func TestSimulateInProcess(t *testing.T) {
	if err := run("", 3, 30, 1, false, 15, true); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateBadRemote(t *testing.T) {
	if err := run("127.0.0.1:1", 1, 1, 1, false, 0, false); err == nil {
		t.Error("dial to dead address should fail")
	}
}
