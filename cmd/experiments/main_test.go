package main

import (
	"strings"
	"testing"
)

func TestRunIndividualExperiments(t *testing.T) {
	// Quick mode keeps the full pass fast; F9 still exercises real TCP.
	for _, name := range []string{"T1", "T2", "F9", "E1", "E4", "E5", "CAL"} {
		if err := run(name, true); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run("ZZZ", true)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}
