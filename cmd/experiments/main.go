// Command experiments regenerates every table and figure of the
// paper's evaluation plus the extension experiments indexed in
// DESIGN.md §5. Output is plain text in the shape the paper reports
// (series per trigger count for Figure 9, the Table 1/2 layouts, and
// result tables for E1/E4/E5).
//
// Usage:
//
//	experiments                       # run everything
//	experiments -run F9               # one experiment: F9, T1, T2, E1, E4, E5
//	experiments -run F9 -breakdown    # F9 plus a per-stage latency table
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"middlewhere"
	"middlewhere/internal/bench"
	"middlewhere/internal/cityload"
)

func main() {
	runName := flag.String("run", "all", "experiment to run: F9, T1, T2, E1, E4, E5, CAL, CITYLOAD, or all")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	flag.BoolVar(&breakdown, "breakdown", false, "with F9: trace the pipeline and print per-stage latencies")
	flag.Parse()
	if err := run(strings.ToUpper(*runName), *quick); err != nil {
		log.Fatal(err)
	}
}

func run(name string, quick bool) error {
	all := name == "ALL"
	ran := false
	type exp struct {
		id string
		fn func(bool) error
	}
	for _, e := range []exp{
		{"T1", runT1}, {"T2", runT2}, {"F9", runF9},
		{"E1", runE1}, {"E4", runE4}, {"E5", runE5},
		{"CAL", runCAL},
		{"CITYLOAD", runCityload},
	} {
		if all || name == e.id {
			if err := e.fn(quick); err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
			ran = true
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// runT1 reproduces Table 1: the spatial object table of the floor.
func runT1(bool) error {
	fmt.Println("== T1: spatial object table (paper Table 1) ==")
	bld := middlewhere.PaperFloor()
	svc, err := middlewhere.New(bld)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Print(svc.DB().DumpObjectTable())
	return nil
}

// runT2 reproduces Table 2 and the §5.2 sensor table: the paper's two
// sample readings inserted through adapters.
func runT2(bool) error {
	fmt.Println("== T2: sensor reading table (paper Table 2) and sensor table (§5.2) ==")
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 11, 52, 35, 0, time.UTC)
	svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
	if err != nil {
		return err
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	// The paper's rows: RF-12 sees tom-pda in 3105 at (5,22) with a
	// 30 ft radius; Ubi-18 sees ralph-bat in NetLab at (4,3) within
	// 6 inches. (Table 2 uses room-frame coordinates.)
	rf, err := middlewhere.NewRFID("RF-12", middlewhere.MustParseGLOB("CS/Floor3/3105"),
		middlewhere.Pt(5, 22), 30, 0.8, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	if err := rf.ReportBadge("tom-pda", now); err != nil {
		return err
	}
	ubi, err := middlewhere.NewUbisense("Ubi-18", middlewhere.MustParseGLOB("CS/Floor3/NetLab"),
		0.9, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	if err := ubi.ReportFix("ralph-bat", middlewhere.Pt(4, 3), now.Add(-73*time.Second)); err != nil {
		return err
	}
	_ = floor
	fmt.Print(svc.DB().DumpReadingTable())
	fmt.Println()
	fmt.Print(svc.DB().DumpSensorTable())
	return nil
}

// breakdown asks runF9 for the per-stage latency decomposition (set by
// the -breakdown flag).
var breakdown bool

// runF9 reproduces Figure 9: trigger response time for consecutive
// updates, one series per number of programmed triggers.
func runF9(quick bool) error {
	fmt.Println("== F9: trigger response time (paper Figure 9) ==")
	counts := []int{1, 10, 50, 100, 500}
	updates := 10
	if quick {
		counts = []int{1, 10, 50}
	}
	series, err := bench.TriggerResponse(counts, updates)
	if err != nil {
		return err
	}
	// Header: update indices.
	fmt.Printf("%-10s", "triggers")
	for u := 1; u <= updates; u++ {
		fmt.Printf(" upd%02d", u)
	}
	fmt.Printf(" | %8s %8s\n", "mean(us)", "rest(us)")
	for _, s := range series {
		fmt.Printf("%-10d", s.Triggers)
		for _, l := range s.UpdateLatencies {
			fmt.Printf(" %5.0f", l)
		}
		rest := s.UpdateLatencies[1:]
		fmt.Printf(" | %8.0f %8.0f\n", bench.Mean(s.UpdateLatencies), bench.Mean(rest))
	}
	fmt.Println("expected shape: response time ~independent of trigger count;")
	fmt.Println("first update slower than the rest (initial setup), as in the paper.")
	if breakdown {
		fmt.Println()
		return runF9Breakdown(quick)
	}
	return nil
}

// runF9Breakdown traces one F9 run and prints where the pipeline time
// goes, stage by stage.
func runF9Breakdown(quick bool) error {
	triggers, updates := 100, 50
	if quick {
		triggers, updates = 10, 20
	}
	bd, err := bench.TriggerResponseBreakdown(triggers, updates)
	if err != nil {
		return err
	}
	fmt.Printf("== F9 -breakdown: per-stage latency (%d triggers, %d updates) ==\n",
		bd.Triggers, bd.Updates)
	fmt.Printf("%-14s %7s %10s %10s %10s\n", "stage", "count", "mean(us)", "p50(us)", "p95(us)")
	for _, st := range bd.Stages {
		fmt.Printf("%-14s %7d %10.1f %10.1f %10.1f\n",
			st.Stage, st.Count, st.MeanUs, st.P50Us, st.P95Us)
	}
	fmt.Printf("%-14s %7s %10.1f\n", "stage sum", "", bd.StageSumUs)
	fmt.Printf("pipeline end-to-end (trace wall time, %d complete traces): %.1f us\n",
		bd.CompleteTraces, bd.PipelineMeanUs)
	if bd.PipelineMeanUs > 0 {
		fmt.Printf("stage sum / end-to-end: %.0f%%\n", 100*bd.StageSumUs/bd.PipelineMeanUs)
	}
	fmt.Printf("for reference: client mw.ingest RTT %.1f us, client update->notify %.1f us\n",
		bd.ClientRTTUs, bd.EndToEndMeanUs)
	fmt.Println("expected shape: stage sum within 20% of the measured end-to-end;")
	fmt.Println("notify dominated by queue wait, db insert by the R-tree walk.")
	return nil
}

// runE1 quantifies fusion accuracy against single technologies.
func runE1(quick bool) error {
	fmt.Println("== E1: fusion accuracy vs ground truth (extension) ==")
	steps := 600
	if quick {
		steps = 200
	}
	rows, err := bench.FusionAccuracy(1, steps)
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %9s %9s %9s %9s %8s\n",
		"mix", "mean-err", "p90-err", "room-acc", "coverage", "samples")
	for _, r := range rows {
		fmt.Printf("%-15s %9.2f %9.2f %8.0f%% %8.0f%% %8d\n",
			r.Mix, r.MeanErr, r.P90Err, r.RoomAccuracy*100, r.Coverage*100, r.Samples)
	}
	fmt.Println("expected shape: fusing technologies beats each alone on accuracy and coverage.")
	return nil
}

// runE4 quantifies the MBR approximation trade-off of §4.1.2.
func runE4(bool) error {
	fmt.Println("== E4: MBR approximation vs exact polygons (ablation) ==")
	row := bench.MBRApproximation(10000)
	fmt.Printf("probes: %d  disagreements: %d (%.1f%%)  mbr: %.0f ns/probe  polygon: %.0f ns/probe\n",
		row.Points, row.Disagreements,
		100*float64(row.Disagreements)/float64(row.Points),
		row.MBRNanos, row.PolyNanos)
	fmt.Println("expected shape: MBR misclassifies the notch of non-convex rooms but is cheaper,")
	fmt.Println("the trade the paper accepts for sensor regions (§4.1.2).")
	return nil
}

// runE5 shows confidence decay under the temporal degradation
// function.
func runE5(bool) error {
	fmt.Println("== E5: temporal degradation of location confidence (§3.2) ==")
	ages := []time.Duration{0, 1 * time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 16 * time.Second, 32 * time.Second}
	rows, err := bench.TemporalDegradation(ages)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %10s\n", "age(s)", "prob", "band")
	for _, r := range rows {
		fmt.Printf("%10.0f %8.3f %10s\n", r.AgeSeconds, r.Prob, r.Band)
	}
	fmt.Println("expected shape: monotone decay with the Ubisense exponential tdf.")
	return nil
}

// runCAL runs the simulated user study that recovers the sensor-model
// parameters (the §11 future work: "user studies to get accurate
// values of ... the probability of carrying location devices").
func runCAL(quick bool) error {
	fmt.Println("== CAL: parameter recovery from a simulated user study (§11 future work) ==")
	steps := 500
	if quick {
		steps = 200
	}
	rows, err := bench.CalibrationStudy(5, steps)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8s %10s\n", "parameter", "true", "estimated")
	for _, r := range rows {
		fmt.Printf("%-28s %8.3f %10.3f\n", r.Parameter, r.True, r.Estimated)
	}
	fmt.Println("expected shape: estimates within sampling error of the generator's values,")
	fmt.Println("without access to the per-person carriage labels (EM over detection counts).")
	return nil
}

// runCityload drives the city-scale sustained-load harness (PERF-9):
// a MultiStorey city under an open-loop readings/sec target with a
// concurrent occupancy-heatmap query loop, gated on pacing and the
// windowed p99 SLOs. A gate failure is an error so CI fails the job.
func runCityload(quick bool) error {
	fmt.Println("== CITYLOAD: city-scale sustained load with SLO gates (DESIGN.md §16) ==")
	cfg := cityload.Config{Seed: 1}
	if quick {
		cfg.Floors, cfg.Rows, cfg.Cols = 4, 3, 4
		cfg.People, cfg.Steps, cfg.StepsPerSec = 24, 80, 30
	}
	rep, err := cityload.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if !rep.Passed {
		return fmt.Errorf("cityload gates failed: %s", strings.Join(rep.Failures, "; "))
	}
	return nil
}
