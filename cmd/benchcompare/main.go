// benchcompare guards the hot paths against performance regressions:
// it re-runs the benchmarks recorded in a reference file (BENCH_1.json)
// and fails when any of them got more than -tolerance slower than the
// recorded ns/op. Run through `make bench-compare`, which CI executes
// on every push.
//
//	go run ./cmd/benchcompare -ref BENCH_1.json            # check
//	go run ./cmd/benchcompare -ref BENCH_1.json -update    # re-record
//
// Each benchmark runs -count times and the fastest run is compared,
// which filters scheduler noise on shared runners.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchRecord is one benchmark's reference entry.
type BenchRecord struct {
	// BaselineNsOp is the pre-optimization figure, kept for the
	// EXPERIMENTS.md narrative; the regression gate ignores it.
	BaselineNsOp float64 `json:"baseline_ns_op,omitempty"`
	// AfterNsOp is the recorded post-optimization figure the gate
	// compares against.
	AfterNsOp float64 `json:"after_ns_op"`
	// MinSpeedupVs, when set, additionally pins a cross-benchmark
	// ratio: the benchmark named Vs must measure at least Ratio times
	// this one's ns/op in the SAME run. Both benchmarks compare like
	// for like (same readings per op), so the ratio is per-unit cost —
	// this is how "streaming binary ingest stays >= 2x cheaper per
	// reading than the JSON batch path" is enforced rather than
	// narrated. Because both sides are measured together, the gate is
	// immune to the shared-runner load drift that absolute ns/op
	// gates need the 30% tolerance for.
	MinSpeedupVs *SpeedupGate `json:"min_speedup_vs,omitempty"`
}

// SpeedupGate names the slower benchmark and the minimum ratio.
type SpeedupGate struct {
	Vs    string  `json:"vs"`
	Ratio float64 `json:"ratio"`
}

// RefFile is the shape of BENCH_1.json.
type RefFile struct {
	// Note documents how the numbers were taken.
	Note string `json:"note,omitempty"`
	// Pkg is the package holding the benchmarks; the -pkg flag
	// overrides it, "." when neither is set.
	Pkg string `json:"pkg,omitempty"`
	// Benchtime and Count are the go test flags the numbers came from.
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// Benchmarks maps the full benchmark name (including sub-benchmark
	// path) to its record.
	Benchmarks map[string]BenchRecord `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkLocateObject-4   2000   123.4 ns/op". The -GOMAXPROCS
// suffix (absent on single-CPU machines) is stripped against the
// requested names, never blindly: sub-benchmarks like size-128 end in
// digits too.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	ref := flag.String("ref", "BENCH_1.json", "reference file")
	tolerance := flag.Float64("tolerance", 0.30, "allowed slowdown fraction before failing")
	update := flag.Bool("update", false, "re-record after_ns_op instead of checking")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	flag.Parse()

	data, err := os.ReadFile(*ref)
	if err != nil {
		fatal(err)
	}
	var rf RefFile
	if err := json.Unmarshal(data, &rf); err != nil {
		fatal(fmt.Errorf("%s: %w", *ref, err))
	}
	if len(rf.Benchmarks) == 0 {
		fatal(fmt.Errorf("%s: no benchmarks recorded", *ref))
	}
	if rf.Benchtime == "" {
		rf.Benchtime = "1000x"
	}
	if rf.Count <= 0 {
		rf.Count = 3
	}
	if rf.Pkg != "" && *pkg == "." {
		*pkg = rf.Pkg
	}

	names := make([]string, 0, len(rf.Benchmarks))
	for name := range rf.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	got, err := runBenchmarks(*pkg, names, rf.Benchtime, rf.Count)
	if err != nil {
		fatal(err)
	}

	if *update {
		for name, ns := range got {
			rec, ok := rf.Benchmarks[name]
			if !ok {
				continue
			}
			rec.AfterNsOp = ns
			rf.Benchmarks[name] = rec
		}
		out, err := json.MarshalIndent(rf, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*ref, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d benchmarks into %s\n", len(got), *ref)
		return
	}

	failed := false
	for _, name := range names {
		rec := rf.Benchmarks[name]
		ns, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-50s did not run (renamed or deleted?)\n", name)
			failed = true
			continue
		}
		limit := rec.AfterNsOp * (1 + *tolerance)
		ratio := ns / rec.AfterNsOp
		if ns > limit {
			fmt.Printf("FAIL %-50s %10.1f ns/op vs %10.1f recorded (%.2fx, limit %.2fx)\n",
				name, ns, rec.AfterNsOp, ratio, 1+*tolerance)
			failed = true
		} else {
			fmt.Printf("ok   %-50s %10.1f ns/op vs %10.1f recorded (%.2fx)\n",
				name, ns, rec.AfterNsOp, ratio)
		}
		if g := rec.MinSpeedupVs; g != nil {
			slow, ok := got[g.Vs]
			if !ok {
				fmt.Printf("FAIL %-50s speedup reference %s did not run\n", name, g.Vs)
				failed = true
				continue
			}
			speedup := slow / ns
			if speedup < g.Ratio {
				fmt.Printf("FAIL %-50s only %.2fx faster than %s, need %.2fx\n",
					name, speedup, g.Vs, g.Ratio)
				failed = true
			} else {
				fmt.Printf("ok   %-50s %.2fx faster than %s (need %.2fx)\n",
					name, speedup, g.Vs, g.Ratio)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runBenchmarks executes the named benchmarks and returns the fastest
// ns/op observed per benchmark across the -count runs.
func runBenchmarks(pkg string, names []string, benchtime string, count int) (map[string]float64, error) {
	// Anchor each name so BenchmarkIngest doesn't also pull in
	// BenchmarkIngestBatch; sub-benchmark paths select via -bench's
	// slash-separated matching.
	pats := make([]string, len(names))
	for i, name := range names {
		parts := strings.Split(name, "/")
		for j, p := range parts {
			parts[j] = "^" + regexp.QuoteMeta(p) + "$"
		}
		pats[i] = strings.Join(parts, "/")
	}
	args := []string{"test", "-run", "^$",
		"-bench", strings.Join(pats, "|"),
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	want := make(map[string]bool, len(names))
	for _, name := range names {
		want[name] = true
	}
	best := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		name := m[1]
		if !want[name] {
			if stripped := procSuffix.ReplaceAllString(name, ""); want[stripped] {
				name = stripped
			}
		}
		if prev, ok := best[name]; !ok || ns < prev {
			best[name] = ns
		}
	}
	return best, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}
