package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"middlewhere"
)

func TestLoadBuildingKinds(t *testing.T) {
	bld, label, err := loadBuilding("paper", "", 0, 0)
	if err != nil || label != "paper" || bld.Name != "CS" {
		t.Errorf("paper: %v %q %v", bld, label, err)
	}
	bld, label, err = loadBuilding("synthetic", "", 2, 3)
	if err != nil || label != "synthetic" || len(bld.Objects) != 1+2+6 {
		t.Errorf("synthetic: %q %v (objects=%d)", label, err, len(bld.Objects))
	}
	bld, label, err = loadBuilding("multistorey:2", "", 2, 2)
	if err != nil || label != "multistorey:2" {
		t.Fatalf("multistorey:2: %q %v", label, err)
	}
	floors := make(map[string]bool)
	for _, o := range bld.Objects {
		if o.Type == "Floor" {
			floors[o.GLOB.String()] = true
		}
	}
	if !floors["CS/F0"] || !floors["CS/F1"] || len(floors) != 2 {
		t.Errorf("multistorey:2 floors = %v, want CS/F0 and CS/F1", floors)
	}
	if _, _, err := loadBuilding("multistorey:zero", "", 2, 2); err == nil ||
		!strings.Contains(err.Error(), "bad storey count") {
		t.Errorf("bad storey err = %v", err)
	}
	if _, _, err := loadBuilding("castle", "", 0, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown building kind") {
		t.Errorf("bad kind err = %v", err)
	}
}

func TestLoadBuildingFromPlanFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := middlewhere.PaperFloor().SavePlan(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	bld, label, err := loadBuilding("paper", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bld.Name != "CS" || !strings.HasPrefix(label, "plan:") {
		t.Errorf("plan load: %q %s", label, bld.Name)
	}
	// Missing file.
	if _, _, err := loadBuilding("paper", filepath.Join(dir, "nope.json"), 0, 0); err == nil {
		t.Error("missing plan file should fail")
	}
	// Corrupt file.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBuilding("paper", bad, 0, 0); err == nil {
		t.Error("corrupt plan file should fail")
	}
}

func TestDaemonRunAndShutdown(t *testing.T) {
	reg := middlewhere.NewRegistryServer(nil)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", regAddr, "test-loc", "paper", "", "", "", "", 0, 0, stop)
	}()

	// The daemon registers itself; poll the registry until it shows up.
	rc, err := middlewhere.DialRegistry(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var svcAddr string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e, err := rc.Lookup("test-loc"); err == nil {
			svcAddr = e.Addr
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// It serves queries.
	c, err := middlewhere.DialLocation(svcAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Relate("CS/Floor3/NetLab", "CS/Floor3/MainCorridor"); err != nil {
		t.Errorf("daemon query: %v", err)
	}
	c.Close()
	// Shut it down.
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	// It deregistered on the way out.
	if _, err := rc.Lookup("test-loc"); err == nil {
		t.Error("daemon still registered after shutdown")
	}
}

func TestDaemonFederatedRun(t *testing.T) {
	reg := middlewhere.NewRegistryServer(nil)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", regAddr, "cs-3", "paper", "", "", "CS/Floor3, CS/Floor2", "", 0, 0, stop)
	}()

	rc, err := middlewhere.DialRegistry(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var svcAddr string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e, err := rc.Lookup("cs-3"); err == nil {
			svcAddr = e.Addr
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("federated daemon never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c, err := middlewhere.DialLocation(svcAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Daemon != "cs-3" {
		t.Errorf("shards daemon = %q, want cs-3", rep.Daemon)
	}
	owners := make(map[string]string)
	for _, p := range rep.Placement {
		owners[p.Shard] = p.Daemon
	}
	if owners["CS/Floor3"] != "cs-3" || owners["CS/Floor2"] != "cs-3" {
		t.Errorf("placement = %v, want both floors owned by cs-3", owners)
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("federated daemon did not shut down")
	}
}

func TestDaemonFloorsWithoutRegistry(t *testing.T) {
	stop := make(chan os.Signal, 1)
	if err := run("127.0.0.1:0", "", "x", "paper", "", "", "CS/Floor3", "", 0, 0, stop); err == nil ||
		!strings.Contains(err.Error(), "-floors requires -registry") {
		t.Errorf("floors without registry: err = %v", err)
	}
}

func TestDaemonNoRegistry(t *testing.T) {
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "", "x", "synthetic", "", "", "", "", 2, 2, stop)
	}()
	time.Sleep(50 * time.Millisecond)
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestDaemonBadRegistry(t *testing.T) {
	stop := make(chan os.Signal, 1)
	if err := run("127.0.0.1:0", "127.0.0.1:1", "x", "paper", "", "", "", "", 0, 0, stop); err == nil {
		t.Error("unreachable registry should fail")
	}
}
