// Command middlewhere runs the MiddleWhere Location Service daemon:
// it loads a building model, starts the Location Service, publishes it
// over TCP (the paper's CORBA service, §7), and optionally registers
// with a service registry (the Gaia Space Repository analogue) so
// applications can discover it by name.
//
// Usage:
//
//	middlewhere -addr :7700
//	middlewhere -addr :7700 -registry localhost:7600 -name location-service
//	middlewhere -addr :7700 -registry localhost:7600 -name cs-2 -floors CS/Floor2
//	middlewhere -building synthetic -rows 5 -cols 8
//	middlewhere -floorplan plan.json
//	middlewhere -addr :7700 -trace -debug-addr 127.0.0.1:7771
//	middlewhere -addr :7700 -wire json          # disable the binary codec
//
// With -debug-addr the daemon serves /metrics (Prometheus text),
// /debug/traces (JSON), and /debug/pprof/* on that address; -trace
// turns on per-reading pipeline span tracing (metrics always record).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"middlewhere"
)

func main() {
	var (
		addr         = flag.String("addr", ":7700", "TCP address to serve the location service on")
		regAddr      = flag.String("registry", "", "optional registry address to register with")
		name         = flag.String("name", "location-service", "service name in the registry")
		buildingKind = flag.String("building", "paper", `building model: "paper", "synthetic", or "multistorey[:N]" (N grid floors CS/F0..)`)
		rows         = flag.Int("rows", 4, "synthetic building: room rows")
		cols         = flag.Int("cols", 6, "synthetic building: room columns")
		floorplan    = flag.String("floorplan", "", "JSON floor-plan file (overrides -building)")
		floors       = flag.String("floors", "", "comma-separated floor shard keys this daemon owns (federated mode; requires -registry)")
		debugAddr    = flag.String("debug-addr", "", "optional address for /metrics, /debug/traces, and pprof")
		trace        = flag.Bool("trace", false, "record per-reading pipeline span traces")
		slo          = flag.String("slo", "", `latency objectives, e.g. "ingest=p99<2ms,query=p99<10ms@30s" (mwctl health -v reports them)`)
		wire         = flag.String("wire", "", `RPC framing to offer: "binary" (negotiate, the default), "binary!" (strict), or "json"; overrides MW_WIRE`)
	)
	flag.Parse()
	middlewhere.EnableObservability(*trace)
	middlewhere.SetObsDaemonLabel(*name)
	if *debugAddr != "" {
		dbg, err := middlewhere.StartObsDebugServer(*debugAddr,
			middlewhere.ObsDefault(), middlewhere.ObsDefaultTracer())
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server (metrics, traces, pprof) on http://%s", dbg.Addr())
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(*addr, *regAddr, *name, *buildingKind, *floorplan, *wire, *floors, *slo, *rows, *cols, stop); err != nil {
		log.Fatal(err)
	}
}

// loadBuilding resolves the -building/-floorplan flags to a model.
func loadBuilding(buildingKind, floorplan string, rows, cols int) (*middlewhere.Building, string, error) {
	switch {
	case floorplan != "":
		f, err := os.Open(floorplan)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		bld, err := middlewhere.LoadPlan(f)
		if err != nil {
			return nil, "", err
		}
		return bld, "plan:" + floorplan, nil
	case buildingKind == "paper":
		return middlewhere.PaperFloor(), buildingKind, nil
	case buildingKind == "synthetic":
		return middlewhere.SyntheticBuilding("SYN", rows, cols, 20, 15, 8), buildingKind, nil
	case strings.HasPrefix(buildingKind, "multistorey"):
		// "multistorey" or "multistorey:N" — N identical grid floors
		// CS/F0..CS/F<N-1>, the model federated deployments shard.
		storeys := 3
		if _, n, ok := strings.Cut(buildingKind, ":"); ok {
			v, err := strconv.Atoi(n)
			if err != nil || v < 1 {
				return nil, "", fmt.Errorf("bad storey count %q", n)
			}
			storeys = v
		}
		return middlewhere.MultiStoreyBuilding("CS", storeys, rows, cols, 20, 15, 8), buildingKind, nil
	default:
		return nil, "", fmt.Errorf("unknown building kind %q", buildingKind)
	}
}

func run(addr, regAddr, name, buildingKind, floorplan, wire, floors, slo string, rows, cols int, stop <-chan os.Signal) error {
	bld, kindLabel, err := loadBuilding(buildingKind, floorplan, rows, cols)
	if err != nil {
		return err
	}
	buildingKind = kindLabel

	svc, err := middlewhere.New(bld)
	if err != nil {
		return err
	}
	defer svc.Close()

	srv := middlewhere.NewRemoteServer(svc)
	if wire != "" {
		srv.SetWire(middlewhere.ParseWire(wire))
	}
	if slo != "" {
		objectives, err := middlewhere.ParseSLOs(slo, nil)
		if err != nil {
			return err
		}
		tracker := middlewhere.NewSLOTracker(nil, objectives, 0)
		tracker.Start()
		defer tracker.Stop()
		srv.SetSLOTracker(tracker)
		log.Printf("tracking %d latency objective(s)", len(objectives))
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("location service (%s building, %d objects) on %s",
		buildingKind, len(bld.Objects), bound)

	if floors != "" {
		if regAddr == "" {
			return fmt.Errorf("-floors requires -registry (the placement map lives there)")
		}
		var owned []string
		for _, fl := range strings.Split(floors, ",") {
			if fl = strings.TrimSpace(fl); fl != "" {
				owned = append(owned, fl)
			}
		}
		router, err := middlewhere.NewFedRouter(svc, middlewhere.FedConfig{
			Daemon:       name,
			Addr:         bound,
			RegistryAddr: regAddr,
			Floors:       owned,
		})
		if err != nil {
			return fmt.Errorf("federation: %w", err)
		}
		defer router.Close()
		srv.SetFederation(router)
		log.Printf("federated daemon %q owns floors %s", name, strings.Join(owned, ", "))
	}

	if regAddr != "" {
		reg, err := middlewhere.DialRegistry(regAddr)
		if err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		defer reg.Close()
		heartbeat := func() error { return reg.Register(name, bound, 30*time.Second) }
		if err := heartbeat(); err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		log.Printf("registered as %q at %s", name, regAddr)
		ticker := time.NewTicker(10 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := heartbeat(); err != nil {
					log.Printf("registry heartbeat: %v", err)
				}
			case <-stop:
				_ = reg.Deregister(name)
				log.Print("shutting down")
				return nil
			}
		}
	}

	<-stop
	log.Print("shutting down")
	return nil
}
