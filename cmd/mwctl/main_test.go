package main

import (
	"strings"
	"testing"
	"time"

	"middlewhere"
)

// startDeployment brings up a registry and a location-service daemon
// in-process and returns their addresses.
func startDeployment(t *testing.T) (regAddr, svcAddr string) {
	t.Helper()
	reg := middlewhere.NewRegistryServer(nil)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)

	svc, err := middlewhere.New(middlewhere.PaperFloor())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	spec := middlewhere.UbisenseSpec(0.9)
	spec.TTL = time.Minute
	if err := svc.RegisterSensor("test-ubi", spec); err != nil {
		t.Fatal(err)
	}
	srv := middlewhere.NewRemoteServer(svc)
	svcAddr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	rc, err := middlewhere.DialRegistry(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)
	if err := rc.Register("location-service", svcAddr, time.Minute); err != nil {
		t.Fatal(err)
	}
	return regAddr, svcAddr
}

func TestMwctlCommands(t *testing.T) {
	_, svcAddr := startDeployment(t)

	// Feed a reading first.
	if err := run(svcAddr, "", "", middlewhere.RemoteDialOptions{}, []string{
		"ingest", "test-ubi", "alice", "CS/Floor3/(370,15)", "0.5"}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	tests := [][]string{
		{"locate", "alice"},
		{"prob", "alice", "CS/Floor3/NetLab"},
		{"who", "CS/Floor3/NetLab"},
		{"route", "CS/Floor3/NetLab", "CS/Floor3/HCILab", "free"},
		{"relate", "CS/Floor3/NetLab", "CS/Floor3/MainCorridor"},
		{"query", "SELECT objects WHERE type = 'Room'"},
		{"dist", "alice"},
		{"history", "alice"},
		{"health"},
	}
	for _, args := range tests {
		if err := run(svcAddr, "", "", middlewhere.RemoteDialOptions{}, args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestMwctlRegistryLookup(t *testing.T) {
	regAddr, _ := startDeployment(t)
	if err := run("", regAddr, "location-service", middlewhere.RemoteDialOptions{}, []string{
		"relate", "CS/Floor3/NetLab", "CS/Floor3/MainCorridor"}); err != nil {
		t.Fatalf("registry-resolved command: %v", err)
	}
	// Unknown service name.
	err := run("", regAddr, "no-such-service", middlewhere.RemoteDialOptions{}, []string{"locate", "x"})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
}

func TestMwctlUsageErrors(t *testing.T) {
	_, svcAddr := startDeployment(t)
	tests := []struct {
		args []string
		frag string
	}{
		{nil, "usage"},
		{[]string{"locate"}, "usage: locate"},
		{[]string{"prob", "x"}, "usage: prob"},
		{[]string{"who"}, "usage: who"},
		{[]string{"route", "a"}, "usage: route"},
		{[]string{"relate", "a"}, "usage: relate"},
		{[]string{"query"}, "usage: query"},
		{[]string{"dist"}, "usage: dist"},
		{[]string{"history"}, "usage: history"},
		{[]string{"ingest", "a", "b"}, "usage: ingest"},
		{[]string{"health", "x"}, "usage: health"},
		{[]string{"frobnicate"}, "unknown command"},
	}
	for _, tt := range tests {
		err := run(svcAddr, "", "", middlewhere.RemoteDialOptions{}, tt.args)
		if err == nil || !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%v: err = %v, want %q", tt.args, err, tt.frag)
		}
	}
	// No address at all.
	if err := run("", "", "", middlewhere.RemoteDialOptions{}, []string{"locate", "x"}); err == nil {
		t.Error("missing address should fail")
	}
}
