// Command mwctl is the MiddleWhere client CLI: it talks to a running
// location service daemon and exercises the application API.
//
// Usage:
//
//	mwctl -addr localhost:7700 locate alice
//	mwctl -addr localhost:7700 prob alice CS/Floor3/NetLab
//	mwctl -addr localhost:7700 who CS/Floor3/NetLab
//	mwctl -addr localhost:7700 watch CS/Floor3/NetLab 30s
//	mwctl -addr localhost:7700 route CS/Floor3/NetLab CS/Floor3/HCILab
//	mwctl -addr localhost:7700 relate CS/Floor3/NetLab CS/Floor3/MainCorridor
//	mwctl -addr localhost:7700 sensor ubi-1 0.95   # register a sensor first
//	mwctl -addr localhost:7700 ingest ubi-1 alice 'CS/Floor3/(370,15)'
//	mwctl -addr localhost:7700 query "SELECT objects WHERE type = 'Room'"
//	mwctl -addr localhost:7700 health        # exits 1 unless Healthy
//	mwctl -addr localhost:7700 health -v     # adds peer state and client metrics
//	mwctl -addr localhost:7700 shards        # shard placement map and peer state
//	mwctl -addr localhost:7700 who-fed CS    # federated scan (partial-tolerant)
//	mwctl -addr localhost:7700 stats         # server obs counters/histograms
//	mwctl -addr localhost:7700 trace 5       # recent pipeline traces
//	mwctl -registry localhost:7600 stats -cluster   # merged across all daemons
//	mwctl -registry localhost:7600 trace -cluster 5 # cross-daemon span trees
//	mwctl -addr localhost:7700 -retries 8 -timeout 3s locate alice
//	mwctl -registry localhost:7600 locate alice
//
// health -v also reports any latency SLOs the daemon tracks (-slo);
// a breached objective makes mwctl exit non-zero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"middlewhere"
)

func main() {
	var (
		addr    = flag.String("addr", "", "location service address")
		regAddr = flag.String("registry", "", "registry address (looks up -name instead of -addr)")
		name    = flag.String("name", "location-service", "service name for registry lookup")
		retries = flag.Int("retries", 0, "dial/reconnect attempts per round (0 = default)")
		timeout = flag.Duration("timeout", 0, "per-call RPC timeout (0 = default)")
		wire    = flag.String("wire", "", `RPC framing: "binary" (negotiate, the default), "binary!" (strict), or "json"; overrides MW_WIRE`)
	)
	flag.Parse()
	opts := middlewhere.RemoteDialOptions{
		DialAttempts: *retries,
		CallTimeout:  *timeout,
	}
	if *wire != "" {
		opts.Wire = middlewhere.ParseWire(*wire)
	}
	if err := run(*addr, *regAddr, *name, opts, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

func run(addr, regAddr, name string, opts middlewhere.RemoteDialOptions, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mwctl [flags] <locate|prob|who|who-fed|watch|route|relate|query|dist|history|sensor|ingest|health|shards|stats|trace> ...")
	}
	// Cluster-wide stats/trace aggregate every daemon of a deployment
	// through the registry — they never dial one daemon, so they branch
	// off before address resolution.
	if cmd := args[0]; (cmd == "stats" || cmd == "trace") &&
		len(args) > 1 && args[1] == "-cluster" {
		if regAddr == "" {
			return fmt.Errorf("%s -cluster requires -registry", cmd)
		}
		return runCluster(cmd, regAddr, args[2:])
	}
	if addr == "" && regAddr != "" {
		reg, err := middlewhere.DialRegistry(regAddr)
		if err != nil {
			return err
		}
		defer reg.Close()
		e, err := reg.Lookup(name)
		if err != nil {
			return err
		}
		addr = e.Addr
	}
	if addr == "" {
		return fmt.Errorf("need -addr or -registry")
	}
	c, err := middlewhere.DialLocationOptions(addr, opts)
	if err != nil {
		return err
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "locate":
		if len(rest) != 1 {
			return fmt.Errorf("usage: locate <object>")
		}
		loc, err := c.Locate(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s p=%.3f (%s)\n", loc.Object, loc.Symbolic, loc.Prob, loc.Band)
		fmt.Printf("  rect [%.1f,%.1f %.1f,%.1f] support=%v discarded=%v\n",
			loc.Rect.MinX, loc.Rect.MinY, loc.Rect.MaxX, loc.Rect.MaxY,
			loc.Support, loc.Discarded)
		return nil
	case "prob":
		if len(rest) != 2 {
			return fmt.Errorf("usage: prob <object> <region>")
		}
		p, band, err := c.ProbInRegion(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("P(%s in %s) = %.3f (%s)\n", rest[0], rest[1], p, band)
		return nil
	case "who":
		if len(rest) != 1 {
			return fmt.Errorf("usage: who <region>")
		}
		objs, err := c.ObjectsInRegion(rest[0], 0.4)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(objs))
		for who := range objs {
			names = append(names, who)
		}
		sort.Strings(names)
		for _, who := range names {
			fmt.Printf("%s p=%.3f\n", who, objs[who])
		}
		if len(names) == 0 {
			fmt.Println("(nobody)")
		}
		return nil
	case "who-fed":
		if len(rest) < 1 || len(rest) > 2 || (len(rest) == 2 && rest[1] != "-strict") {
			return fmt.Errorf("usage: who-fed <region> [-strict]")
		}
		strict := len(rest) == 2
		rep, err := c.FedObjectsInRegion(rest[0], 0.4, strict)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(rep.Objects))
		for who := range rep.Objects {
			names = append(names, who)
		}
		sort.Strings(names)
		for _, who := range names {
			fmt.Printf("%s p=%.3f\n", who, rep.Objects[who])
		}
		if len(names) == 0 {
			fmt.Println("(nobody)")
		}
		if rep.Partial {
			fmt.Printf("PARTIAL: shards unavailable: %s\n", strings.Join(rep.Unavailable, ", "))
		}
		return nil
	case "shards":
		if len(rest) != 0 {
			return fmt.Errorf("usage: shards")
		}
		rep, err := c.Shards()
		if err != nil {
			return err
		}
		if rep.Daemon == "" {
			fmt.Println("(standalone daemon; no federation)")
		} else {
			fmt.Printf("daemon %s  placement v%d\n", rep.Daemon, rep.PlacementVersion)
		}
		for _, p := range rep.Placement {
			fmt.Printf("  %-24s -> %s (%s) v%d\n", p.Shard, p.Daemon, p.Addr, p.Version)
		}
		if len(rep.Local) > 0 {
			fmt.Printf("local shards: %s\n", strings.Join(rep.Local, ", "))
		}
		for _, p := range rep.Peers {
			line := fmt.Sprintf("peer %-12s %-8s addr=%s", p.Name, p.Breaker, p.Addr)
			if p.ConsecFails > 0 {
				line += fmt.Sprintf(" fails=%d", p.ConsecFails)
			}
			if len(p.Shards) > 0 {
				line += " shards=" + strings.Join(p.Shards, ",")
			}
			if p.LastErr != "" {
				line += " lastErr=" + p.LastErr
			}
			fmt.Println(line)
		}
		return nil
	case "watch":
		if len(rest) < 1 {
			return fmt.Errorf("usage: watch <region> [duration]")
		}
		dur := 30 * time.Second
		if len(rest) > 1 {
			d, err := time.ParseDuration(rest[1])
			if err != nil {
				return err
			}
			dur = d
		}
		_, err := c.Subscribe(middlewhere.SubscribeArgs{Region: rest[0], MinProb: 0.4},
			func(n middlewhere.NotificationDTO) {
				fmt.Printf("%s  %s entered %s (p=%.3f, %s)\n",
					n.Time, n.Object, rest[0], n.Prob, n.Band)
			})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "watching %s for %s...\n", rest[0], dur)
		time.Sleep(dur)
		return nil
	case "route":
		if len(rest) < 2 {
			return fmt.Errorf("usage: route <from> <to> [free|restricted]")
		}
		policy := "restricted"
		if len(rest) > 2 {
			policy = rest[2]
		}
		rt, err := c.Route(rest[0], rest[1], policy)
		if err != nil {
			return err
		}
		fmt.Printf("%.1f units: %v\n", rt.Length, rt.Regions)
		return nil
	case "relate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: relate <regionA> <regionB>")
		}
		rel, pass, err := c.Relate(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s / %s\n", rel, pass)
		return nil
	case "dist":
		if len(rest) != 1 {
			return fmt.Errorf("usage: dist <object>")
		}
		cells, err := c.Distribution(rest[0])
		if err != nil {
			return err
		}
		for _, cell := range cells {
			fmt.Printf("p=%.3f  %-24s [%.1f,%.1f %.1f,%.1f]\n",
				cell.Prob, cell.Symbolic,
				cell.Rect.MinX, cell.Rect.MinY, cell.Rect.MaxX, cell.Rect.MaxY)
		}
		return nil
	case "history":
		if len(rest) != 1 {
			return fmt.Errorf("usage: history <object>")
		}
		trail, err := c.History(rest[0])
		if err != nil {
			return err
		}
		for _, loc := range trail {
			fmt.Printf("%s  %-24s p=%.3f\n", loc.Time, loc.Symbolic, loc.Prob)
		}
		if len(trail) == 0 {
			fmt.Println("(no history; is the service running with history enabled?)")
		}
		return nil
	case "query":
		if len(rest) != 1 {
			return fmt.Errorf("usage: query '<mwql statement>'")
		}
		objs, err := c.Query(rest[0])
		if err != nil {
			return err
		}
		for _, o := range objs {
			fmt.Printf("%-30s %-10s [%.1f,%.1f %.1f,%.1f]", o.GLOB, o.Type,
				o.Bounds.MinX, o.Bounds.MinY, o.Bounds.MaxX, o.Bounds.MaxY)
			for k, v := range o.Properties {
				fmt.Printf(" %s=%s", k, v)
			}
			fmt.Println()
		}
		if len(objs) == 0 {
			fmt.Println("(no objects)")
		}
		return nil
	case "sensor":
		if len(rest) < 1 || len(rest) > 2 {
			return fmt.Errorf("usage: sensor <sensorID> [confidence]")
		}
		conf := 0.95
		if len(rest) == 2 {
			v, err := strconv.ParseFloat(rest[1], 64)
			if err != nil {
				return fmt.Errorf("usage: sensor <sensorID> [confidence]: %w", err)
			}
			conf = v
		}
		if err := c.RegisterSensor(rest[0], middlewhere.UbisenseSpec(conf)); err != nil {
			return err
		}
		fmt.Printf("registered %s (ubisense-class, confidence %.2f)\n", rest[0], conf)
		return nil
	case "ingest":
		if len(rest) < 3 {
			return fmt.Errorf("usage: ingest <sensorID> <object> <glob> [radius]")
		}
		loc, err := middlewhere.ParseGLOB(rest[2])
		if err != nil {
			return err
		}
		radius := 0.0
		if len(rest) > 3 {
			if radius, err = strconv.ParseFloat(rest[3], 64); err != nil {
				return err
			}
		}
		return c.Ingest(middlewhere.Reading{
			SensorID:        rest[0],
			MObjectID:       rest[1],
			Location:        loc,
			DetectionRadius: radius,
			Time:            time.Now(),
		})
	case "health":
		verbose := false
		switch {
		case len(rest) == 1 && rest[0] == "-v":
			verbose = true
		case len(rest) != 0:
			return fmt.Errorf("usage: health [-v]")
		}
		return runHealth(c, verbose)
	case "stats":
		if len(rest) != 0 {
			return fmt.Errorf("usage: stats [-cluster]")
		}
		st, err := c.Stats(0)
		if err != nil {
			return err
		}
		printStats(st)
		return nil
	case "trace":
		n := 5
		if len(rest) > 1 {
			return fmt.Errorf("usage: trace [-cluster] [n]")
		}
		if len(rest) == 1 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("usage: trace [n]: %w", err)
			}
			n = v
		}
		st, err := c.Stats(n)
		if err != nil {
			return err
		}
		if !st.Enabled && len(st.Traces) == 0 {
			fmt.Println("(tracing disabled on the server; start the daemon with -trace)")
			return nil
		}
		printTraces(st.Traces)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runCluster handles `stats -cluster` and `trace -cluster [n]`:
// discover the deployment's daemons through the registry, scrape each
// one's mw.stats, and print the merged view (counters summed,
// histograms merged bucket-wise, traces stitched across daemons).
func runCluster(cmd, regAddr string, rest []string) error {
	traces := 0
	if cmd == "trace" {
		traces = 5
		switch {
		case len(rest) == 1:
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("usage: trace -cluster [n]: %w", err)
			}
			traces = v
		case len(rest) > 1:
			return fmt.Errorf("usage: trace -cluster [n]")
		}
	} else if len(rest) != 0 {
		return fmt.Errorf("usage: stats -cluster")
	}
	st, daemons, unavailable, err := middlewhere.ClusterFetch(regAddr, traces, 10*time.Second)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(daemons))
	for _, d := range daemons {
		names = append(names, d.Name)
	}
	fmt.Printf("cluster: %d/%d daemon(s) scraped: %s\n",
		len(daemons)-len(unavailable), len(daemons), strings.Join(names, ", "))
	if len(unavailable) > 0 {
		fmt.Printf("WARNING: unavailable: %s\n", strings.Join(unavailable, ", "))
	}
	if cmd == "trace" {
		printTraces(st.Traces)
	} else {
		printStats(st)
	}
	return nil
}

// runHealth prints server and client health and returns an error —
// making mwctl exit non-zero — unless both sides are Healthy, so the
// command is scriptable as a probe.
func runHealth(c *middlewhere.RemoteClient, verbose bool) error {
	h, err := c.ServerHealth()
	if err != nil {
		return err
	}
	fmt.Printf("server: %s up=%s ingested=%d notifications=%d subs=%d sensors=%d queue=%d/%d\n",
		h.Status, (time.Duration(h.UptimeSeconds * float64(time.Second))).Round(time.Second),
		h.Ingested, h.Notifications, h.Subscriptions, h.Sensors, h.QueueDepth, h.QueueCap)
	ch := c.Health()
	fmt.Printf("client: %s conn=%s wire=%s reconnects=%d malformed=%d deduped=%d sensors=%d subs=%d\n",
		ch.State, ch.Conn, c.WireCodec(), ch.Reconnects, ch.MalformedNotifications, ch.DedupedNotifications,
		ch.Sensors, ch.Subscriptions)
	if verbose && h.Federation != nil {
		fmt.Printf("federation: daemon=%s placement=v%d\n", h.Federation.Daemon, h.Federation.PlacementVersion)
		for _, p := range h.Federation.Peers {
			line := fmt.Sprintf("  peer %-12s %-8s addr=%s", p.Name, p.Breaker, p.Addr)
			if p.Calls > 0 || p.Failures > 0 {
				line += fmt.Sprintf(" calls=%d failures=%d retries=%d opens=%d",
					p.Calls, p.Failures, p.Retries, p.BreakerOpens)
			}
			if p.ConsecFails > 0 {
				line += fmt.Sprintf(" fails=%d", p.ConsecFails)
			}
			if len(p.Shards) > 0 {
				line += " shards=" + strings.Join(p.Shards, ",")
			}
			if p.LastErr != "" {
				line += " lastErr=" + p.LastErr
			}
			fmt.Println(line)
		}
	}
	if verbose && len(h.SLOs) > 0 {
		fmt.Println("slos:")
		for _, s := range h.SLOs {
			status := "ok"
			if s.Breached {
				status = "BREACHED"
			}
			fmt.Printf("  %-10s %s p%g < %.0fus window=%s attained=%.1fus burn=%.2f samples=%d %s\n",
				s.Name, s.Metric, s.Percentile*100, s.TargetUs,
				(time.Duration(s.WindowSecs * float64(time.Second))).Round(time.Second),
				s.AttainedUs, s.BurnRate, s.Samples, status)
		}
	}
	if verbose {
		snap := c.Metrics().Snapshot()
		for _, cs := range snap.Counters {
			fmt.Printf("  %-36s %d\n", cs.Name, cs.Value)
		}
		for _, g := range snap.Gauges {
			fmt.Printf("  %-36s %g\n", g.Name, g.Value)
		}
		for _, hs := range snap.Histograms {
			fmt.Printf("  %-36s count=%d p50=%.1fus p95=%.1fus\n", hs.Name, hs.Count, hs.P50, hs.P95)
		}
	}
	if h.Status != "healthy" {
		return fmt.Errorf("health: server is %s", h.Status)
	}
	if ch.State != middlewhere.Healthy {
		return fmt.Errorf("health: client is %s", ch.State)
	}
	for _, s := range h.SLOs {
		if s.Breached {
			return fmt.Errorf("health: slo %s breached (p%g attained %.1fus, target %.0fus)",
				s.Name, s.Percentile*100, s.AttainedUs, s.TargetUs)
		}
	}
	return nil
}

// printTraces renders span trees one line per span, tagging each span
// with the daemon that recorded it — cluster-merged traces interleave
// hops from several daemons under one trace ID.
func printTraces(traces []middlewhere.TraceDTO) {
	for _, tr := range traces {
		fmt.Printf("%s  begin=%s  total=%.1fus\n", tr.ID, tr.Begin, tr.TotalUs)
		for _, sp := range tr.Spans {
			daemon := sp.Daemon
			if daemon == "" {
				daemon = "-"
			}
			fmt.Printf("  %-18s @%-14s +%8.1fus  %8.1fus\n",
				sp.Stage, daemon, sp.OffsetUs, sp.DurUs)
		}
	}
	if len(traces) == 0 {
		fmt.Println("(no traces recorded yet)")
	}
}

// printStats renders an mw.stats snapshot.
func printStats(st middlewhere.StatsDTO) {
	fmt.Printf("tracing enabled: %v\n", st.Enabled)
	names := make([]string, 0, len(st.Counters))
	for n := range st.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-36s %d\n", n, st.Counters[n])
	}
	names = names[:0]
	for n := range st.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-36s %g\n", n, st.Gauges[n])
	}
	if len(st.Histograms) > 0 {
		fmt.Printf("%-28s %8s %10s %10s %10s %10s\n",
			"histogram", "count", "mean(us)", "p50(us)", "p95(us)", "p99(us)")
		for _, h := range st.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("%-28s %8d %10.1f %10.1f %10.1f %10.1f\n",
				h.Name, h.Count, mean, h.P50, h.P95, h.P99)
		}
	}
	if len(st.Shards) > 0 {
		fmt.Printf("%-20s %8s %8s %9s %7s %8s %9s\n",
			"shard", "objects", "mobile", "readings", "rtree", "epoch", "inserts")
		for _, sh := range st.Shards {
			fmt.Printf("%-20s %8d %8d %9d %7d %8d %9d\n",
				sh.Key, sh.Objects, sh.MobileObjects, sh.Readings, sh.RTreeNodes, sh.Epoch, sh.Inserts)
		}
		// Snapshot lifecycle at a glance: hits/recycled say how well
		// cuts pool, live says how many handles callers hold open (a
		// steadily nonzero value is a Close leak).
		fmt.Printf("snapshot pool: hits=%d recycled=%d live=%g\n",
			st.Counters["spatialdb_snapshot_pool_hits"],
			st.Counters["spatialdb_snapshot_pool_recycled"],
			st.Gauges["spatialdb_snapshot_pool_live"])
	}
}
