// Command mwregistry runs the service registry daemon: name
// registration with TTL leases (the Gaia Space Repository analogue)
// plus the shard-placement map federated location daemons coordinate
// through. One registry serves a deployment; daemons find each other
// by polling its placement map.
//
// Usage:
//
//	mwregistry -addr :7600
//	mwregistry -addr :7600 -sweep 2s
//	mwregistry -addr :7600 -metrics-addr 127.0.0.1:7601
//
// With -metrics-addr the registry serves /metrics/cluster: on each
// request it scrapes every registered daemon's mw.stats and merges the
// results (counters summed, histograms merged bucket-wise) into one
// cluster-wide exposition page.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"middlewhere"
)

func main() {
	var (
		addr        = flag.String("addr", ":7600", "TCP address to serve the registry on")
		sweep       = flag.Duration("sweep", 5*time.Second, "interval for pruning expired leases")
		metricsAddr = flag.String("metrics-addr", "", "optional HTTP address serving /metrics/cluster (aggregated daemon metrics)")
	)
	flag.Parse()

	srv := middlewhere.NewRegistryServer(nil)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.StartSweeper(*sweep)
	log.Printf("registry on %s (lease sweep every %s)", bound, *sweep)

	if *metricsAddr != "" {
		// The aggregator dials the registry itself; a wildcard bind
		// address is not dialable, so fix it up to loopback.
		scrapeAddr := bound
		if host, port, err := net.SplitHostPort(bound); err == nil && (host == "" || host == "::") {
			scrapeAddr = net.JoinHostPort("127.0.0.1", port)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics/cluster", middlewhere.ClusterMetricsHandler(scrapeAddr, 5*time.Second))
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		defer hs.Close()
		log.Printf("cluster metrics on http://%s/metrics/cluster", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
}
