// Command mwregistry runs the service registry daemon: name
// registration with TTL leases (the Gaia Space Repository analogue)
// plus the shard-placement map federated location daemons coordinate
// through. One registry serves a deployment; daemons find each other
// by polling its placement map.
//
// Usage:
//
//	mwregistry -addr :7600
//	mwregistry -addr :7600 -sweep 2s
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"middlewhere"
)

func main() {
	var (
		addr  = flag.String("addr", ":7600", "TCP address to serve the registry on")
		sweep = flag.Duration("sweep", 5*time.Second, "interval for pruning expired leases")
	)
	flag.Parse()

	srv := middlewhere.NewRegistryServer(nil)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.StartSweeper(*sweep)
	log.Printf("registry on %s (lease sweep every %s)", bound, *sweep)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
}
