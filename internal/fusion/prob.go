// Package fusion implements MiddleWhere's multi-sensor location fusion
// (§4.1): the Bayesian combination of sensor MBRs into a spatial
// probability distribution, the containment lattice of rectangles, the
// conflict-resolution rules for disjoint readings, single-location
// inference (§4.2), and the classification of the probability space
// into bands (§4.4).
//
// # Probability model
//
// Each reading i places the object in rectangle Ai with per-reading
// probabilities p_i (the sensor reports Ai when the object is there —
// model.ErrorModel.DetectProb after temporal degradation) and q_i (the
// sensor reports Ai when the object is elsewhere —
// model.ErrorModel.FalseProb). Readings are conditionally independent
// given the object's true cell, and absent movement data the prior is
// uniform over the universe U (the paper's assumption, §4.1.2).
//
// ProbRegion evaluates P(person in R | all readings) by exact Bayes:
//
//	P(s_i | R)  = [p_i·aInt + q_i·(aR − aInt)] / aR
//	P(s_i | ¬R) = [p_i·(aAi − aInt) + q_i·(aU − aR − aAi + aInt)] / (aU − aR)
//	P(R) = aR/aU
//
// with aInt = area(Ai ∩ R). This reproduces the paper's Eq. 4 and
// Eq. 5 exactly. The paper's printed Eq. 6 and Eq. 7 drop the
// (aU − aR) normalizer from the ¬R branch and are therefore
// inconsistent with its own Eq. 4/5 (substituting n=2, R=B into the
// printed Eq. 7 does not yield Eq. 4); ProbRegionPrinted implements
// the literal printed Eq. 7 for comparison, and the exact form is used
// everywhere else. See DESIGN.md §4.
package fusion

import (
	"math"

	"middlewhere/internal/geom"
)

// Reading is one sensor observation prepared for fusion: the MBR of
// the sensed region in universe coordinates and the degraded
// per-reading probabilities.
type Reading struct {
	// ID identifies the source sensor (for diagnostics and conflict
	// reporting).
	ID string
	// Rect is the sensed region as an MBR in the universe frame.
	Rect geom.Rect
	// P is p_i: P(sensor reports Rect | object in Rect), net of
	// temporal degradation.
	P float64
	// Q is q_i: P(sensor reports Rect | object not in Rect).
	Q float64
	// Moving records whether this reading's rectangle has been moving
	// over recent updates; the conflict rules prefer moving readings.
	Moving bool
}

// Informative reports whether the reading carries signal: p > q, the
// reinforcement condition of §4.1.2.
func (r Reading) Informative() bool { return r.P > r.Q }

// ProbRegion returns P(object in region | readings) under the model
// described in the package comment. Conventions at the boundaries:
// an empty region has probability 0; a region covering the whole
// universe has probability 1; with no readings the uniform prior
// aR/aU is returned.
func ProbRegion(universe geom.Rect, readings []Reading, region geom.Rect) float64 {
	region, ok := region.Intersect(universe)
	if !ok {
		return 0
	}
	aU := universe.Area()
	if aU <= 0 {
		return 0
	}
	aR := region.Area()
	if aR <= 0 {
		return 0
	}
	if aU-aR <= geom.Eps {
		return 1
	}
	prior := aR / aU
	if len(readings) == 0 {
		return prior
	}

	// Work in log space: the likelihood products underflow quickly for
	// many readings with small rectangles.
	logIn := math.Log(prior)
	logOut := math.Log(1 - prior)
	for _, rd := range readings {
		aAi := rd.Rect.IntersectionArea(universe)
		aInt := rd.Rect.IntersectionArea(region)
		pIn := (rd.P*aInt + rd.Q*(aR-aInt)) / aR
		pOut := (rd.P*(aAi-aInt) + rd.Q*(aU-aR-aAi+aInt)) / (aU - aR)
		if pIn <= 0 && pOut <= 0 {
			// The reading is impossible under both hypotheses (p=q=0);
			// it carries no information.
			continue
		}
		if pIn <= 0 {
			return 0
		}
		if pOut <= 0 {
			return 1
		}
		logIn += math.Log(pIn)
		logOut += math.Log(pOut)
	}
	// P = e^logIn / (e^logIn + e^logOut), computed stably.
	d := logOut - logIn
	if d > 700 {
		return 0
	}
	if d < -700 {
		return 1
	}
	return 1 / (1 + math.Exp(d))
}

// SupportBounds returns the bounding box of the readings' rectangles —
// the object's fusion support. Under the support-gated aggregate query
// semantics (DESIGN.md §17) an object contributes occupancy mass only
// where this box intersects the queried region: outside it every
// reading's evidence is pure false-report noise (q_i), which the
// aggregate queries define as zero contribution so that the per-shard
// support index can answer "who might be here?" exactly. ok is false
// when there are no readings.
func SupportBounds(readings []Reading) (geom.Rect, bool) {
	if len(readings) == 0 {
		return geom.Rect{}, false
	}
	u := readings[0].Rect
	for _, rd := range readings[1:] {
		u = u.Union(rd.Rect)
	}
	return u, true
}

// ProbRegionPrinted evaluates the paper's Eq. 7 exactly as printed:
//
//	     Π_i [p_i·aInt + q_i·(aR − aInt)]
//	P = ----------------------------------------------------------
//	     Π_i [p_i·aInt + q_i·(aR − aInt)]
//	   + Π_i [p_i·(aAi − aInt) + q_i·(aU − aAi + aInt)]
//
// It is retained for comparison experiments only (see V3 in
// EXPERIMENTS.md); the exact form in ProbRegion is used by the
// middleware.
func ProbRegionPrinted(universe geom.Rect, readings []Reading, region geom.Rect) float64 {
	region, ok := region.Intersect(universe)
	if !ok {
		return 0
	}
	aU := universe.Area()
	aR := region.Area()
	if aU <= 0 || aR <= 0 {
		return 0
	}
	num, alt := 1.0, 1.0
	for _, rd := range readings {
		aAi := rd.Rect.IntersectionArea(universe)
		aInt := rd.Rect.IntersectionArea(region)
		num *= rd.P*aInt + rd.Q*(aR-aInt)
		alt *= rd.P*(aAi-aInt) + rd.Q*(aU-aAi+aInt)
	}
	if num+alt <= 0 {
		return 0
	}
	return num / (num + alt)
}

// SingleSensorProb is the paper's Eq. 5: the probability the object is
// in the sensed rectangle given only that one reading. It is the
// standalone score the conflict-resolution rule 2 compares.
func SingleSensorProb(universe geom.Rect, rd Reading) float64 {
	return ProbRegion(universe, []Reading{rd}, rd.Rect)
}

// ContainedPairProb is the paper's Eq. 4 closed form: the probability
// the object is in outer rectangle B given inner reading s1 (rectangle
// A ⊂ B) and outer reading s2 (rectangle B). Exposed for the V1
// verification experiment; general queries go through ProbRegion.
func ContainedPairProb(universe geom.Rect, inner, outer Reading) float64 {
	aU := universe.Area()
	aA := inner.Rect.Area()
	aB := outer.Rect.Area()
	num := (inner.P*aA + inner.Q*(aB-aA)) * outer.P
	den := num + inner.Q*outer.Q*(aU-aB)
	if den <= 0 {
		return 0
	}
	return num / den
}
