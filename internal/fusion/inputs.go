package fusion

import (
	"time"

	"middlewhere/internal/model"
)

// FromReadings converts stored sensor rows (the latest per sensor,
// TTL-filtered) into fusion inputs: p_i is the spec's detection
// probability net of temporal degradation at now, and q_i is the
// spec's false-report probability scaled by area(A)/area(U) — a
// spurious report is uniformly distributed over the coverage area, so
// the likelihood of it landing on the reading's specific rectangle
// shrinks with that rectangle (the same scaling the paper applies to z
// in §6). Rows whose sensor is missing from specs or whose effective
// probability has decayed to zero are dropped.
//
// Both the live locate path and snapshot-based evaluation share this
// conversion, so a cached result computed from either source is
// bit-identical for the same rows.
func FromReadings(rows []model.Reading, specs map[string]model.SensorSpec, now time.Time, universeArea float64) []Reading {
	out := make([]Reading, 0, len(rows))
	for _, r := range rows {
		spec, ok := specs[r.SensorID]
		if !ok {
			continue
		}
		p := r.EffectiveDetectProb(spec, now)
		if p <= 0 {
			continue
		}
		out = append(out, Reading{
			ID:     r.SensorID,
			Rect:   r.Region,
			P:      p,
			Q:      model.ScaledZ(spec.Errors.FalseProb(), r.Region.Area(), universeArea),
			Moving: r.Moving,
		})
	}
	return out
}
