package fusion

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"middlewhere/internal/geom"
)

// paperFigure5 reproduces the configuration of Fig. 5: five sensor
// rectangles where S1–S3 overlap pairwise, S4 sits inside S3, and S5
// is disjoint from everything else.
func paperFigure5() []Reading {
	return []Reading{
		{ID: "S1", Rect: geom.R(0, 10, 30, 40), P: 0.9, Q: 0.02},
		{ID: "S2", Rect: geom.R(20, 20, 50, 50), P: 0.85, Q: 0.03},
		{ID: "S3", Rect: geom.R(40, 10, 70, 45), P: 0.8, Q: 0.04},
		{ID: "S4", Rect: geom.R(45, 15, 55, 25), P: 0.95, Q: 0.01},
		{ID: "S5", Rect: geom.R(80, 80, 95, 95), P: 0.7, Q: 0.05},
	}
}

func TestBuildLatticeFigure5(t *testing.T) {
	l := Build(universe, paperFigure5())
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Expected intersection regions: D = S1∩S2, E = S2∩S3,
	// F = S3∩S4 = S4 itself? No — S4 ⊂ S3, so no new rect from that
	// pair; S2∩S4 overlaps? S2=(20..50,20..50), S4=(45..55,15..25) →
	// intersection (45..50,20..25). G = S2∩S3∩S4 etc. At minimum the
	// sensor rects themselves are nodes.
	rects := make(map[geom.Rect]bool)
	for _, n := range l.Nodes {
		rects[n.Rect] = true
	}
	for _, rd := range paperFigure5() {
		if !rects[rd.Rect] {
			t.Errorf("sensor rect %v missing from lattice", rd.Rect)
		}
	}
	if !rects[geom.R(20, 20, 30, 40)] { // S1∩S2
		t.Error("S1∩S2 intersection node missing")
	}
	if !rects[geom.R(40, 20, 50, 45)] { // S2∩S3
		t.Error("S2∩S3 intersection node missing")
	}
	if !rects[geom.R(45, 20, 50, 25)] { // S2∩S4
		t.Error("S2∩S4 intersection node missing")
	}
	// S5 is disjoint: it must be a parent of Bottom.
	mins := l.MinimalRegions()
	foundS5 := false
	for _, n := range mins {
		if n.Rect.Eq(geom.R(80, 80, 95, 95)) {
			foundS5 = true
		}
	}
	if !foundS5 {
		t.Errorf("S5 should be a minimal region; minimals: %d", len(mins))
	}
}

func TestLatticeParentChildStructure(t *testing.T) {
	// Nested rectangles: C ⊂ B ⊂ A.
	readings := []Reading{
		{ID: "A", Rect: geom.R(0, 0, 40, 40), P: 0.9, Q: 0.05},
		{ID: "B", Rect: geom.R(10, 10, 30, 30), P: 0.9, Q: 0.05},
		{ID: "C", Rect: geom.R(15, 15, 25, 25), P: 0.9, Q: 0.05},
	}
	l := Build(universe, readings)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	var a, b, c *Node
	for _, n := range l.Nodes {
		switch {
		case n.Rect.Eq(readings[0].Rect):
			a = n
		case n.Rect.Eq(readings[1].Rect):
			b = n
		case n.Rect.Eq(readings[2].Rect):
			c = n
		}
	}
	if a == nil || b == nil || c == nil {
		t.Fatal("missing nodes")
	}
	// Covering relation: C's parent is B (not A), B's parent is A.
	if len(c.Parents()) != 1 || c.Parents()[0] != b {
		t.Errorf("C parents wrong")
	}
	if len(b.Parents()) != 1 || b.Parents()[0] != a {
		t.Errorf("B parents wrong")
	}
	if len(a.Parents()) != 1 || a.Parents()[0] != l.Top {
		t.Errorf("A should hang off Top")
	}
	// Bottom's single parent is C (the unique minimal region).
	mins := l.MinimalRegions()
	if len(mins) != 1 || mins[0] != c {
		t.Errorf("minimal regions = %v", mins)
	}
}

func TestEvaluateOrdersNestedProbabilities(t *testing.T) {
	readings := []Reading{
		{ID: "A", Rect: geom.R(0, 0, 40, 40), P: 0.9, Q: 0.05},
		{ID: "B", Rect: geom.R(10, 10, 30, 30), P: 0.9, Q: 0.05},
	}
	l := Build(universe, readings)
	l.Evaluate()
	var pA, pB float64
	for _, n := range l.Nodes {
		if n.Rect.Eq(readings[0].Rect) {
			pA = n.Prob
		}
		if n.Rect.Eq(readings[1].Rect) {
			pB = n.Prob
		}
	}
	// The outer region contains the inner one, so P(A) >= P(B).
	if pA < pB {
		t.Errorf("containment monotonicity violated: P(A)=%v < P(B)=%v", pA, pB)
	}
	if l.Top.Prob != 1 || l.Bottom.Prob != 0 {
		t.Error("synthetic node probabilities wrong")
	}
}

func TestInferSingleCluster(t *testing.T) {
	readings := []Reading{
		{ID: "A", Rect: geom.R(0, 0, 40, 40), P: 0.9, Q: 0.02},
		{ID: "B", Rect: geom.R(10, 10, 30, 30), P: 0.9, Q: 0.02},
	}
	l := Build(universe, readings)
	est, err := l.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if !est.Rect.Eq(geom.R(10, 10, 30, 30)) {
		t.Errorf("Infer rect = %v, want inner rectangle", est.Rect)
	}
	if est.Prob <= 0 || est.Prob > 1 {
		t.Errorf("Infer prob = %v", est.Prob)
	}
	if len(est.Support) != 2 {
		t.Errorf("Support = %v, want both readings", est.Support)
	}
	if len(est.Discarded) != 0 {
		t.Errorf("Discarded = %v, want none", est.Discarded)
	}
}

func TestInferConflictMovingWins(t *testing.T) {
	// Rule 1: a moving rectangle beats a stationary one even when the
	// stationary one scores higher alone (badge left in the office).
	readings := []Reading{
		{ID: "badge", Rect: geom.R(10, 10, 20, 20), P: 0.95, Q: 0.01, Moving: false},
		{ID: "tag", Rect: geom.R(70, 70, 85, 85), P: 0.6, Q: 0.05, Moving: true},
	}
	l := Build(universe, readings)
	est, err := l.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if !est.Rect.Eq(geom.R(70, 70, 85, 85)) {
		t.Errorf("Infer chose %v, want the moving reading's rect", est.Rect)
	}
	if len(est.Discarded) != 1 || est.Discarded[0] != "badge" {
		t.Errorf("Discarded = %v, want [badge]", est.Discarded)
	}
}

func TestInferConflictHigherProbabilityWins(t *testing.T) {
	// Rule 2: with no movement information, the reading with the higher
	// standalone probability (Eq. 5) wins. Equal areas, different p/q.
	readings := []Reading{
		{ID: "weak", Rect: geom.R(10, 10, 20, 20), P: 0.5, Q: 0.2},
		{ID: "strong", Rect: geom.R(70, 70, 80, 80), P: 0.95, Q: 0.01},
	}
	l := Build(universe, readings)
	est, err := l.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if !est.Rect.Eq(geom.R(70, 70, 80, 80)) {
		t.Errorf("Infer chose %v, want the strong reading's rect", est.Rect)
	}
	if len(est.Discarded) != 1 || est.Discarded[0] != "weak" {
		t.Errorf("Discarded = %v", est.Discarded)
	}
}

func TestInferThreeWayConflict(t *testing.T) {
	// Two disjoint stationary groups plus one moving group; the moving
	// group must win and both others be discarded.
	readings := []Reading{
		{ID: "g1a", Rect: geom.R(0, 0, 10, 10), P: 0.9, Q: 0.01},
		{ID: "g1b", Rect: geom.R(2, 2, 12, 12), P: 0.9, Q: 0.01},
		{ID: "g2", Rect: geom.R(40, 40, 50, 50), P: 0.95, Q: 0.01},
		{ID: "mv", Rect: geom.R(80, 80, 90, 90), P: 0.5, Q: 0.05, Moving: true},
	}
	l := Build(universe, readings)
	est, err := l.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if !est.Rect.Eq(geom.R(80, 80, 90, 90)) {
		t.Errorf("Infer chose %v", est.Rect)
	}
	if len(est.Discarded) != 3 {
		t.Errorf("Discarded = %v, want 3 readings", est.Discarded)
	}
}

func TestInferNoReadings(t *testing.T) {
	l := Build(universe, nil)
	if _, err := l.Infer(); !errors.Is(err, ErrNoReadings) {
		t.Errorf("err = %v, want ErrNoReadings", err)
	}
	// Readings entirely outside the universe are dropped at Build.
	l = Build(universe, []Reading{{ID: "out", Rect: geom.R(500, 500, 600, 600), P: 0.9, Q: 0.1}})
	if _, err := l.Infer(); !errors.Is(err, ErrNoReadings) {
		t.Errorf("outside reading: err = %v, want ErrNoReadings", err)
	}
}

func TestDistributionNormalized(t *testing.T) {
	l := Build(universe, paperFigure5())
	l.Evaluate()
	dist, sum := l.Distribution()
	if sum <= 0 {
		t.Fatalf("normalization constant = %v", sum)
	}
	var total float64
	for r, p := range dist {
		if p < 0 || p > 1 {
			t.Errorf("dist[%v] = %v", r, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("distribution sums to %v, want 1", total)
	}
}

func TestInsertRegionQuery(t *testing.T) {
	readings := []Reading{
		{ID: "A", Rect: geom.R(10, 10, 30, 30), P: 0.9, Q: 0.02},
	}
	l := Build(universe, readings)
	n := l.InsertRegion(geom.R(15, 15, 40, 40))
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Prob <= 0 || n.Prob > 1 {
		t.Errorf("query prob = %v", n.Prob)
	}
	// The query answer equals the direct formula.
	want := ProbRegion(universe, l.Readings, geom.R(15, 15, 40, 40))
	if !almostEq(n.Prob, want) {
		t.Errorf("lattice query = %v, direct = %v", n.Prob, want)
	}
	// Inserting the same region again returns the existing node.
	n2 := l.InsertRegion(geom.R(15, 15, 40, 40))
	if !n2.Rect.Eq(n.Rect) {
		t.Error("re-insert returned different node")
	}
	// Inserting an existing sensor rect reuses its node.
	n3 := l.InsertRegion(geom.R(10, 10, 30, 30))
	if len(n3.Sources) != 1 {
		t.Error("existing sensor node not reused")
	}
}

func TestInsertRegionClipsToUniverse(t *testing.T) {
	l := Build(universe, []Reading{{ID: "A", Rect: geom.R(10, 10, 30, 30), P: 0.9, Q: 0.02}})
	n := l.InsertRegion(geom.R(90, 90, 200, 200))
	if !n.Rect.Eq(geom.R(90, 90, 100, 100)) {
		t.Errorf("clipped rect = %v", n.Rect)
	}
}

func TestQuickLatticeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		_ = seed
		n := 1 + rng.Intn(7)
		readings := make([]Reading, n)
		for i := range readings {
			x, y := rng.Float64()*80, rng.Float64()*80
			readings[i] = Reading{
				ID:   "r",
				Rect: geom.R(x, y, x+2+rng.Float64()*25, y+2+rng.Float64()*25),
				P:    0.5 + rng.Float64()*0.5,
				Q:    rng.Float64() * 0.2,
			}
		}
		l := Build(universe, readings)
		if l.Validate() != nil {
			return false
		}
		est, err := l.Infer()
		if err != nil {
			return false
		}
		if est.Prob < 0 || est.Prob > 1 || math.IsNaN(est.Prob) {
			return false
		}
		// The inferred rectangle intersects at least one retained
		// reading.
		return len(est.Support) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLatticeNodeCapRespected(t *testing.T) {
	// A grid of heavily overlapping rectangles should not exceed the
	// node cap or hang.
	var readings []Reading
	for i := 0; i < 12; i++ {
		for j := 0; j < 4; j++ {
			x, y := float64(i*3), float64(j*3)
			readings = append(readings, Reading{
				ID: "g", Rect: geom.R(x, y, x+30, y+30), P: 0.8, Q: 0.05,
			})
		}
	}
	l := Build(universe, readings)
	if len(l.Nodes) > maxLatticeNodes {
		t.Errorf("node cap exceeded: %d", len(l.Nodes))
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestQuickInferPermutationInvariant(t *testing.T) {
	// The inferred location must not depend on the order readings
	// arrive in: the lattice is a set of regions and the conflict rules
	// compare scores, not positions.
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		_ = seed
		n := 2 + rng.Intn(5)
		readings := make([]Reading, n)
		for i := range readings {
			x, y := rng.Float64()*80, rng.Float64()*80
			readings[i] = Reading{
				ID:     fmt.Sprintf("s%d", i),
				Rect:   geom.R(x, y, x+3+rng.Float64()*20, y+3+rng.Float64()*20),
				P:      0.5 + rng.Float64()*0.5,
				Q:      rng.Float64() * 0.05,
				Moving: rng.Intn(2) == 0,
			}
		}
		base, err := Build(universe, readings).Infer()
		if err != nil {
			return false
		}
		shuffled := append([]Reading(nil), readings...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, err := Build(universe, shuffled).Infer()
		if err != nil {
			return false
		}
		return got.Rect.Eq(base.Rect) && math.Abs(got.Prob-base.Prob) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
