package fusion

import (
	"fmt"
	"sort"
)

// Band is a qualitative probability level (§4.4). Most applications
// prefer "notify me when the location is known with high probability"
// over raw numbers.
type Band int

// The four probability bands of §4.4.
const (
	BandLow Band = iota + 1
	BandMedium
	BandHigh
	BandVeryHigh
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case BandLow:
		return "low"
	case BandMedium:
		return "medium"
	case BandHigh:
		return "high"
	case BandVeryHigh:
		return "very-high"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// Classifier divides the probability space into the four bands of
// §4.4 using the accuracies of the deployed sensors:
//
//	(0, min p_i]        low
//	(min p_i, median]   medium
//	(median, max p_i]   high
//	(max p_i, 1]        very high
type Classifier struct {
	min, median, max float64
}

// NewClassifier builds a classifier from the detection probabilities
// (p_i) of the active sensors. With no sensors the thresholds default
// to the fixed quartiles 0.25/0.5/0.75.
func NewClassifier(sensorPs []float64) Classifier {
	if len(sensorPs) == 0 {
		return Classifier{min: 0.25, median: 0.5, max: 0.75}
	}
	ps := append([]float64(nil), sensorPs...)
	sort.Float64s(ps)
	med := ps[len(ps)/2]
	if len(ps)%2 == 0 {
		med = (ps[len(ps)/2-1] + ps[len(ps)/2]) / 2
	}
	return Classifier{min: ps[0], median: med, max: ps[len(ps)-1]}
}

// Thresholds returns the three band boundaries (min, median, max of
// the sensor p_i's).
func (c Classifier) Thresholds() (min, median, max float64) {
	return c.min, c.median, c.max
}

// Classify maps a probability to its band.
func (c Classifier) Classify(p float64) Band {
	switch {
	case p <= c.min:
		return BandLow
	case p <= c.median:
		return BandMedium
	case p <= c.max:
		return BandHigh
	default:
		return BandVeryHigh
	}
}

// AtLeast reports whether probability p reaches the given band — the
// predicate subscriptions use ("notify me at high or better").
func (c Classifier) AtLeast(p float64, b Band) bool {
	return c.Classify(p) >= b
}
