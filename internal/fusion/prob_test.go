package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"middlewhere/internal/geom"
)

var universe = geom.R(0, 0, 100, 100) // 10,000 sq units

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestProbRegionBoundaries(t *testing.T) {
	rd := Reading{ID: "s", Rect: geom.R(10, 10, 20, 20), P: 0.9, Q: 0.01}
	// Empty region.
	if got := ProbRegion(universe, []Reading{rd}, geom.R(200, 200, 300, 300)); got != 0 {
		t.Errorf("outside-universe region = %v, want 0", got)
	}
	if got := ProbRegion(universe, []Reading{rd}, geom.R(5, 5, 5, 5)); got != 0 {
		t.Errorf("degenerate region = %v, want 0", got)
	}
	// Whole universe.
	if got := ProbRegion(universe, []Reading{rd}, universe); got != 1 {
		t.Errorf("universe region = %v, want 1", got)
	}
	// No readings: uniform prior.
	if got := ProbRegion(universe, nil, geom.R(0, 0, 10, 100)); !almostEq(got, 0.1) {
		t.Errorf("prior = %v, want 0.1", got)
	}
	// Degenerate universe.
	if got := ProbRegion(geom.Rect{}, []Reading{rd}, geom.R(0, 0, 1, 1)); got != 0 {
		t.Errorf("zero universe = %v, want 0", got)
	}
}

func TestProbRegionMatchesEq5(t *testing.T) {
	// Eq. 5: P(B|s_B) = aB·p / (aB·p + q·(aU − aB)).
	rd := Reading{ID: "s2", Rect: geom.R(0, 0, 10, 10), P: 0.9, Q: 0.05}
	aB, aU := 100.0, 10000.0
	want := aB * rd.P / (aB*rd.P + rd.Q*(aU-aB))
	if got := SingleSensorProb(universe, rd); !almostEq(got, want) {
		t.Errorf("SingleSensorProb = %v, want Eq.5 value %v", got, want)
	}
}

func TestProbRegionMatchesEq4(t *testing.T) {
	// Case 1 (Fig. 2): inner rectangle A inside outer rectangle B.
	inner := Reading{ID: "s1", Rect: geom.R(2, 2, 6, 6), P: 0.8, Q: 0.05}   // area 16
	outer := Reading{ID: "s2", Rect: geom.R(0, 0, 10, 10), P: 0.9, Q: 0.02} // area 100
	want := ContainedPairProb(universe, inner, outer)
	got := ProbRegion(universe, []Reading{inner, outer}, outer.Rect)
	if !almostEq(got, want) {
		t.Errorf("ProbRegion = %v, want Eq.4 closed form %v", got, want)
	}
	// Sanity: closed form expands to the printed Eq. 4.
	aU, aA, aB := 10000.0, 16.0, 100.0
	num := (inner.P*aA + inner.Q*(aB-aA)) * outer.P
	wantManual := num / (num + inner.Q*outer.Q*(aU-aB))
	if !almostEq(want, wantManual) {
		t.Errorf("ContainedPairProb = %v, manual Eq.4 = %v", want, wantManual)
	}
}

func TestReinforcementInequality(t *testing.T) {
	// V1: the paper verifies P(B | s1,A, s2,B) > P(B | s2,B) whenever
	// p1 > q1 — two consistent readings reinforce each other.
	inner := Reading{ID: "s1", Rect: geom.R(2, 2, 6, 6), P: 0.8, Q: 0.05}
	outer := Reading{ID: "s2", Rect: geom.R(0, 0, 10, 10), P: 0.9, Q: 0.02}
	both := ProbRegion(universe, []Reading{inner, outer}, outer.Rect)
	single := SingleSensorProb(universe, outer)
	if both <= single {
		t.Errorf("reinforcement failed: both=%v single=%v", both, single)
	}
	// With an uninformative inner sensor (p == q) the inequality
	// becomes equality.
	flat := inner
	flat.P, flat.Q = 0.3, 0.3
	bothFlat := ProbRegion(universe, []Reading{flat, outer}, outer.Rect)
	if !almostEq(bothFlat, single) {
		t.Errorf("uninformative reading changed probability: %v vs %v", bothFlat, single)
	}
	// With an anti-informative inner sensor (p < q) it reverses.
	anti := inner
	anti.P, anti.Q = 0.05, 0.8
	bothAnti := ProbRegion(universe, []Reading{anti, outer}, outer.Rect)
	if bothAnti >= single {
		t.Errorf("anti-informative reading should reduce probability: %v vs %v", bothAnti, single)
	}
}

func TestIntersectionCaseEq6Shape(t *testing.T) {
	// Case 2 (Fig. 3): overlapping rectangles A and B with
	// intersection C. The intersection must be the most likely of the
	// three disjoint cells A\C, C, B\C.
	a := Reading{ID: "sA", Rect: geom.R(0, 0, 10, 10), P: 0.9, Q: 0.02}
	b := Reading{ID: "sB", Rect: geom.R(5, 0, 15, 10), P: 0.9, Q: 0.02}
	c := geom.R(5, 0, 10, 10)
	readings := []Reading{a, b}
	pC := ProbRegion(universe, readings, c)
	pAonly := ProbRegion(universe, readings, geom.R(0, 0, 5, 10))
	pBonly := ProbRegion(universe, readings, geom.R(10, 0, 15, 10))
	if pC <= pAonly || pC <= pBonly {
		t.Errorf("intersection not dominant: C=%v A\\C=%v B\\C=%v", pC, pAonly, pBonly)
	}
	// And the printed Eq. 6/7 agrees qualitatively.
	pCPrinted := ProbRegionPrinted(universe, readings, c)
	pAPrinted := ProbRegionPrinted(universe, readings, geom.R(0, 0, 5, 10))
	if pCPrinted <= pAPrinted {
		t.Errorf("printed form intersection not dominant: %v vs %v", pCPrinted, pAPrinted)
	}
}

func TestProbRegionManyReadingsStable(t *testing.T) {
	// 100 consistent readings must drive the probability to ~1 without
	// underflow.
	target := geom.R(40, 40, 45, 45)
	var readings []Reading
	for i := 0; i < 100; i++ {
		readings = append(readings, Reading{
			ID: "s", Rect: geom.R(38, 38, 47, 47), P: 0.9, Q: 0.01,
		})
	}
	got := ProbRegion(universe, readings, geom.R(38, 38, 47, 47))
	if got < 0.999999 {
		t.Errorf("many consistent readings = %v, want ~1", got)
	}
	if math.IsNaN(got) || got > 1 {
		t.Errorf("unstable value %v", got)
	}
	// The small target inside keeps a sane probability too.
	inner := ProbRegion(universe, readings, target)
	if inner < 0 || inner > 1 || math.IsNaN(inner) {
		t.Errorf("inner = %v", inner)
	}
}

func TestProbRegionImpossibleEvidence(t *testing.T) {
	// A sensor with p=1, q=0 is infallible: a region disjoint from its
	// rectangle has probability 0, and its own rectangle probability 1.
	rd := Reading{ID: "oracle", Rect: geom.R(10, 10, 20, 20), P: 1, Q: 0}
	if got := ProbRegion(universe, []Reading{rd}, geom.R(50, 50, 60, 60)); got != 0 {
		t.Errorf("disjoint region with oracle = %v, want 0", got)
	}
	if got := ProbRegion(universe, []Reading{rd}, rd.Rect); got != 1 {
		t.Errorf("oracle rect = %v, want 1", got)
	}
	// A p=q=0 reading is impossible under both hypotheses and must be
	// ignored rather than poison the result.
	dead := Reading{ID: "dead", Rect: geom.R(0, 0, 1, 1), P: 0, Q: 0}
	got := ProbRegion(universe, []Reading{dead}, geom.R(0, 0, 10, 10))
	if !almostEq(got, 0.01) { // falls back to the prior 100/10000
		t.Errorf("dead reading = %v, want prior 0.01", got)
	}
}

func TestReadingInformative(t *testing.T) {
	if !(Reading{P: 0.9, Q: 0.1}).Informative() {
		t.Error("p>q should be informative")
	}
	if (Reading{P: 0.1, Q: 0.1}).Informative() {
		t.Error("p==q should not be informative")
	}
}

func TestQuickProbRegionInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		_ = seed
		n := 1 + rng.Intn(6)
		readings := make([]Reading, n)
		for i := range readings {
			x, y := rng.Float64()*90, rng.Float64()*90
			readings[i] = Reading{
				ID:   "r",
				Rect: geom.R(x, y, x+1+rng.Float64()*20, y+1+rng.Float64()*20),
				P:    rng.Float64(),
				Q:    rng.Float64(),
			}
		}
		x, y := rng.Float64()*90, rng.Float64()*90
		region := geom.R(x, y, x+1+rng.Float64()*30, y+1+rng.Float64()*30)
		p := ProbRegion(universe, readings, region)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickReinforcementProperty(t *testing.T) {
	// Adding an informative reading whose rectangle is contained in R
	// never decreases P(R).
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		_ = seed
		region := geom.R(20, 20, 60, 60)
		base := Reading{
			ID: "base", Rect: geom.R(10, 10, 70, 70),
			P: 0.5 + rng.Float64()*0.5, Q: rng.Float64() * 0.2,
		}
		x, y := 20+rng.Float64()*30, 20+rng.Float64()*30
		extra := Reading{
			ID: "extra", Rect: geom.R(x, y, x+rng.Float64()*9+1, y+rng.Float64()*9+1),
			P: 0.5 + rng.Float64()*0.5, Q: rng.Float64() * 0.2,
		}
		if !extra.Informative() {
			return true
		}
		before := ProbRegion(universe, []Reading{base}, region)
		after := ProbRegion(universe, []Reading{base, extra}, region)
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementConsistency(t *testing.T) {
	// P(R) + P(U \ R) should equal 1 when U\R is itself a rectangle
	// (split the universe by a vertical line).
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		_ = seed
		split := 10 + rng.Float64()*80
		left := geom.R(0, 0, split, 100)
		right := geom.R(split, 0, 100, 100)
		var readings []Reading
		for i := 0; i < 1+rng.Intn(4); i++ {
			x, y := rng.Float64()*80, rng.Float64()*80
			readings = append(readings, Reading{
				ID: "r", Rect: geom.R(x, y, x+rng.Float64()*20+1, y+rng.Float64()*20+1),
				P: 0.4 + rng.Float64()*0.6, Q: rng.Float64() * 0.3,
			})
		}
		pl := ProbRegion(universe, readings, left)
		pr := ProbRegion(universe, readings, right)
		return math.Abs(pl+pr-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
