package fusion

import "testing"

func TestClassifierBands(t *testing.T) {
	// Sensors with p values 0.6, 0.8, 0.95: min 0.6, median 0.8,
	// max 0.95 per §4.4.
	c := NewClassifier([]float64{0.8, 0.6, 0.95})
	mn, md, mx := c.Thresholds()
	if mn != 0.6 || md != 0.8 || mx != 0.95 {
		t.Fatalf("thresholds = %v %v %v", mn, md, mx)
	}
	tests := []struct {
		give float64
		want Band
	}{
		{0.1, BandLow},
		{0.6, BandLow}, // boundary belongs to the lower band
		{0.61, BandMedium},
		{0.8, BandMedium},
		{0.81, BandHigh},
		{0.95, BandHigh},
		{0.96, BandVeryHigh},
		{1.0, BandVeryHigh},
	}
	for _, tt := range tests {
		if got := c.Classify(tt.give); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestClassifierEvenCountMedian(t *testing.T) {
	c := NewClassifier([]float64{0.6, 0.8})
	_, md, _ := c.Thresholds()
	if md != 0.7 {
		t.Errorf("median of even count = %v, want 0.7", md)
	}
}

func TestClassifierDefaults(t *testing.T) {
	c := NewClassifier(nil)
	mn, md, mx := c.Thresholds()
	if mn != 0.25 || md != 0.5 || mx != 0.75 {
		t.Errorf("default thresholds = %v %v %v", mn, md, mx)
	}
}

func TestClassifierAtLeast(t *testing.T) {
	c := NewClassifier([]float64{0.5, 0.7, 0.9})
	if !c.AtLeast(0.95, BandVeryHigh) {
		t.Error("0.95 should reach very-high")
	}
	if !c.AtLeast(0.8, BandHigh) {
		t.Error("0.8 should reach high")
	}
	if c.AtLeast(0.8, BandVeryHigh) {
		t.Error("0.8 should not reach very-high")
	}
	if !c.AtLeast(0.1, BandLow) {
		t.Error("everything reaches low")
	}
}

func TestBandString(t *testing.T) {
	tests := []struct {
		give Band
		want string
	}{
		{BandLow, "low"},
		{BandMedium, "medium"},
		{BandHigh, "high"},
		{BandVeryHigh, "very-high"},
		{Band(0), "Band(0)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestClassifierDoesNotMutateInput(t *testing.T) {
	ps := []float64{0.9, 0.5, 0.7}
	NewClassifier(ps)
	if ps[0] != 0.9 || ps[1] != 0.5 || ps[2] != 0.7 {
		t.Error("NewClassifier sorted the caller's slice")
	}
}
