package fusion

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/obs"
)

// Fusion metrics, cached once so Evaluate stays alloc-free.
var (
	mEvals      = obs.Default().Counter("fusion_lattice_evals_total")
	mEvalUs     = obs.Default().Histogram("fusion_lattice_eval_us")
	mLatticeLen = obs.Default().Histogram("fusion_lattice_nodes",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
)

// maxLatticeNodes caps the intersection closure so pathological inputs
// (hundreds of mutually overlapping readings for a single object)
// cannot blow up memory. Real deployments see a handful of readings
// per object.
const maxLatticeNodes = 4096

// Node is one region in the rectangle lattice (§4.1.2, Fig. 6). The
// lattice relationship is containment: Parents are the smallest
// regions strictly containing the node, Children the largest regions
// strictly contained in it.
type Node struct {
	// Rect is the node's region.
	Rect geom.Rect
	// Prob is P(object in Rect | readings), filled in by Evaluate.
	Prob float64
	// Sources lists the indices (into Lattice.Readings) of the readings
	// whose sensor rectangle equals this node. Intersection nodes and
	// inserted query regions have no sources.
	Sources []int
	// Synthetic marks the Top and Bottom elements.
	Synthetic bool

	parents  []*Node
	children []*Node
}

// Parents returns the node's immediate ancestors in containment order.
func (n *Node) Parents() []*Node { return n.parents }

// Children returns the node's immediate descendants.
func (n *Node) Children() []*Node { return n.children }

// Lattice is the containment lattice over sensor rectangles and their
// intersection regions, with a synthetic Top (the universe) and Bottom.
type Lattice struct {
	// Universe is the whole area under consideration (the paper uses
	// the building's floor area).
	Universe geom.Rect
	// Readings are the fused observations.
	Readings []Reading
	// Nodes holds every region node (excluding Top and Bottom),
	// deduplicated by geometry.
	Nodes []*Node
	// Top is the universe node; Bottom the synthetic least element.
	Top, Bottom *Node
}

// Estimate is a single inferred location (§4.2): the chosen rectangle,
// its probability, and the readings that support it.
type Estimate struct {
	Rect geom.Rect
	Prob float64
	// Support lists the IDs of readings consistent with (intersecting)
	// the chosen rectangle.
	Support []string
	// Discarded lists the IDs of readings rejected by conflict
	// resolution.
	Discarded []string
}

// ErrNoReadings is returned by Infer when there is nothing to fuse.
var ErrNoReadings = errors.New("fusion: no readings")

// Build constructs the lattice for the given readings: all sensor
// rectangles, the closure of their pairwise intersections, and the
// containment order between them. Readings are clipped to the
// universe; readings entirely outside it are ignored.
func Build(universe geom.Rect, readings []Reading) *Lattice {
	l := &Lattice{Universe: universe}
	for _, rd := range readings {
		if clipped, ok := rd.Rect.Intersect(universe); ok && clipped.Area() > 0 {
			rd.Rect = clipped
			l.Readings = append(l.Readings, rd)
		}
	}

	seen := make(map[geom.Rect]*Node)
	add := func(r geom.Rect) *Node {
		if n, ok := seen[r]; ok {
			return n
		}
		n := &Node{Rect: r}
		seen[r] = n
		l.Nodes = append(l.Nodes, n)
		return n
	}

	for i, rd := range l.Readings {
		n := add(rd.Rect)
		n.Sources = append(n.Sources, i)
	}

	// Intersection closure: keep intersecting pairs until no new
	// region appears (bounded by maxLatticeNodes).
	for grew := true; grew && len(l.Nodes) < maxLatticeNodes; {
		grew = false
		snapshot := make([]*Node, len(l.Nodes))
		copy(snapshot, l.Nodes)
		for i := 0; i < len(snapshot) && len(l.Nodes) < maxLatticeNodes; i++ {
			for j := i + 1; j < len(snapshot) && len(l.Nodes) < maxLatticeNodes; j++ {
				in, ok := snapshot[i].Rect.Intersect(snapshot[j].Rect)
				if !ok || in.Area() <= 0 {
					continue
				}
				if _, dup := seen[in]; !dup {
					add(in)
					grew = true
				}
			}
		}
	}

	l.link()
	return l
}

// link wires parent/child edges by containment (covering relation) and
// attaches Top and Bottom.
func (l *Lattice) link() {
	l.Top = &Node{Rect: l.Universe, Synthetic: true}
	l.Bottom = &Node{Synthetic: true}

	// Sort by area ascending; a node's parents are the minimal-area
	// strict containers.
	sorted := make([]*Node, len(l.Nodes))
	copy(sorted, l.Nodes)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Rect.Area() < sorted[j].Rect.Area()
	})

	contains := func(a, b *Node) bool { // strict containment a ⊃ b
		return a.Rect.ContainsRect(b.Rect) && !a.Rect.Eq(b.Rect)
	}

	for i, n := range sorted {
		// Candidate ancestors: all strictly larger containers.
		var anc []*Node
		for j := i + 1; j < len(sorted); j++ {
			if contains(sorted[j], n) {
				anc = append(anc, sorted[j])
			}
		}
		// Keep only covering ancestors (no intermediate container).
		for _, a := range anc {
			covering := true
			for _, b := range anc {
				if b != a && contains(a, b) {
					covering = false
					break
				}
			}
			if covering {
				n.parents = append(n.parents, a)
				a.children = append(a.children, n)
			}
		}
		if len(n.parents) == 0 {
			n.parents = append(n.parents, l.Top)
			l.Top.children = append(l.Top.children, n)
		}
	}
	// Bottom's parents are the childless nodes (the minimal regions).
	for _, n := range sorted {
		if len(n.children) == 0 {
			n.children = append(n.children, l.Bottom)
			l.Bottom.parents = append(l.Bottom.parents, n)
		}
	}
	if len(l.Nodes) == 0 {
		l.Top.children = append(l.Top.children, l.Bottom)
		l.Bottom.parents = append(l.Bottom.parents, l.Top)
	}
}

// Evaluate fills every node's Prob with P(object in node | readings).
func (l *Lattice) Evaluate() {
	start := time.Now()
	for _, n := range l.Nodes {
		n.Prob = ProbRegion(l.Universe, l.Readings, n.Rect)
	}
	l.Top.Prob = 1
	l.Bottom.Prob = 0
	mEvals.Inc()
	mEvalUs.Observe(float64(time.Since(start).Microseconds()))
	mLatticeLen.Observe(float64(len(l.Nodes)))
}

// InsertRegion adds an arbitrary query region to the lattice (used for
// region-based queries and notification rectangles, §4.2–4.3),
// relinks, evaluates, and returns its node. The region is clipped to
// the universe.
func (l *Lattice) InsertRegion(r geom.Rect) *Node {
	clipped, ok := r.Intersect(l.Universe)
	if ok {
		r = clipped
	}
	for _, n := range l.Nodes {
		if n.Rect.Eq(r) {
			l.Evaluate()
			return n
		}
	}
	n := &Node{Rect: r}
	l.Nodes = append(l.Nodes, n)
	// Also add intersections of the new region with existing nodes so
	// the minimal regions stay consistent.
	seen := make(map[geom.Rect]bool, len(l.Nodes))
	for _, m := range l.Nodes {
		seen[m.Rect] = true
	}
	existing := make([]*Node, len(l.Nodes))
	copy(existing, l.Nodes)
	for _, m := range existing {
		if m == n {
			continue
		}
		if in, ok := r.Intersect(m.Rect); ok && in.Area() > 0 && !seen[in] {
			seen[in] = true
			l.Nodes = append(l.Nodes, &Node{Rect: in})
		}
	}
	l.relink()
	l.Evaluate()
	return n
}

// relink clears and rebuilds the order relation (used after node
// insertion).
func (l *Lattice) relink() {
	for _, n := range l.Nodes {
		n.parents, n.children = nil, nil
	}
	l.link()
}

// MinimalRegions returns the parents of Bottom: the smallest regions
// in the lattice, which the inference step compares (§4.2).
func (l *Lattice) MinimalRegions() []*Node {
	out := make([]*Node, 0, len(l.Bottom.parents))
	for _, n := range l.Bottom.parents {
		if !n.Synthetic {
			out = append(out, n)
		}
	}
	return out
}

// Distribution returns the spatial probability distribution over the
// minimal (mutually disjoint after conflict resolution) regions,
// normalized to sum to 1 ("the probabilities of all regions are
// finally normalized", §4.1.2). Regions with zero probability are
// included with weight 0. The second return value is the
// normalization constant (sum of raw probabilities); it is zero when
// every region has zero raw probability.
func (l *Lattice) Distribution() (map[geom.Rect]float64, float64) {
	mins := l.MinimalRegions()
	out := make(map[geom.Rect]float64, len(mins))
	var sum float64
	for _, n := range mins {
		sum += n.Prob
	}
	for _, n := range mins {
		if sum > 0 {
			out[n.Rect] = n.Prob / sum
		} else {
			out[n.Rect] = 0
		}
	}
	return out, sum
}

// movingSupport reports whether any moving reading's rectangle
// contains the node's region.
func (l *Lattice) movingSupport(n *Node) bool {
	for _, rd := range l.Readings {
		if rd.Moving && rd.Rect.ContainsRect(n.Rect) {
			return true
		}
	}
	return false
}

// standalone returns the node's probability using only the readings
// whose rectangles intersect it — the Eq. 5 style score rule 2 of the
// conflict resolution compares.
func (l *Lattice) standalone(n *Node) float64 {
	var sub []Reading
	for _, rd := range l.Readings {
		if rd.Rect.Intersects(n.Rect) {
			sub = append(sub, rd)
		}
	}
	return ProbRegion(l.Universe, sub, n.Rect)
}

// Infer resolves conflicts and returns the single most likely location
// (§4.2): if Bottom has one parent, that region is the answer; if it
// has several (disjoint sensor groups), the conflict rules pick one —
// a region supported by a moving reading wins over stationary ones,
// ties broken by the higher standalone probability — and the readings
// inconsistent with the winner are discarded.
func (l *Lattice) Infer() (Estimate, error) {
	if len(l.Readings) == 0 {
		return Estimate{}, ErrNoReadings
	}
	l.Evaluate()

	cur := l
	var discarded []string
	for iter := 0; ; iter++ {
		mins := cur.MinimalRegions()
		if len(mins) == 0 {
			return Estimate{}, ErrNoReadings
		}
		if len(mins) == 1 || iter > len(l.Readings) {
			return cur.estimateFor(mins[0], discarded), nil
		}
		// Choose the best minimal region by (moving support, standalone
		// probability).
		best := mins[0]
		bestMoving := cur.movingSupport(best)
		bestScore := cur.standalone(best)
		for _, n := range mins[1:] {
			mv := cur.movingSupport(n)
			sc := cur.standalone(n)
			if (mv && !bestMoving) || (mv == bestMoving && sc > bestScore) {
				best, bestMoving, bestScore = n, mv, sc
			}
		}
		// Discard readings disjoint from the winner and rebuild; this
		// removes the conflicting sensor groups (the paper's "S5 is
		// removed from the lattice").
		var keep []Reading
		removed := false
		for _, rd := range cur.Readings {
			if rd.Rect.Intersects(best.Rect) {
				keep = append(keep, rd)
			} else {
				discarded = append(discarded, rd.ID)
				removed = true
			}
		}
		if !removed {
			return cur.estimateFor(best, discarded), nil
		}
		cur = Build(cur.Universe, keep)
		cur.Evaluate()
	}
}

func (l *Lattice) estimateFor(n *Node, discarded []string) Estimate {
	est := Estimate{Rect: n.Rect, Prob: n.Prob, Discarded: discarded}
	for _, rd := range l.Readings {
		if rd.Rect.Intersects(n.Rect) {
			est.Support = append(est.Support, rd.ID)
		}
	}
	return est
}

// Validate checks structural lattice invariants (for tests): the
// parent/child relation is consistent, acyclic in area, and every
// non-source node is covered.
func (l *Lattice) Validate() error {
	for _, n := range l.Nodes {
		for _, p := range n.parents {
			if !p.Synthetic && !p.Rect.ContainsRect(n.Rect) {
				return fmt.Errorf("fusion: parent %v does not contain %v", p.Rect, n.Rect)
			}
			found := false
			for _, c := range p.children {
				if c == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("fusion: asymmetric edge %v -> %v", p.Rect, n.Rect)
			}
		}
		if len(n.parents) == 0 {
			return fmt.Errorf("fusion: orphan node %v", n.Rect)
		}
	}
	for _, p := range l.Bottom.parents {
		if len(p.children) != 1 || p.children[0] != l.Bottom {
			if !p.Synthetic {
				return fmt.Errorf("fusion: bottom parent %v has other children", p.Rect)
			}
		}
	}
	return nil
}
