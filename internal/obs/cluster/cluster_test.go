// Tests live in an external package so they can assemble real scrape
// targets (mwrpc servers, the registry) exactly as mwctl sees them.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/obs/cluster"
	"middlewhere/internal/registry"
	"middlewhere/internal/remote"
)

// statsOf renders a registry the way the daemon's mw.stats handler
// does: cumulative buckets with Le < 0 marking the overflow bucket.
func statsOf(reg *obs.Registry) remote.StatsDTO {
	snap := reg.Snapshot()
	out := remote.StatsDTO{}
	if len(snap.Counters) > 0 {
		out.Counters = make(map[string]uint64)
		for _, c := range snap.Counters {
			out.Counters[c.Name] = c.Value
		}
	}
	if len(snap.Gauges) > 0 {
		out.Gauges = make(map[string]float64)
		for _, g := range snap.Gauges {
			out.Gauges[g.Name] = g.Value
		}
	}
	for _, h := range snap.Histograms {
		hd := remote.HistogramDTO{Name: h.Name, Count: h.Count, Sum: h.Sum, P50: h.P50, P95: h.P95, P99: h.P99}
		for _, b := range h.Buckets {
			le := b.Le
			if math.IsInf(le, 1) {
				le = -1
			}
			hd.Buckets = append(hd.Buckets, remote.BucketDTO{Le: le, Count: b.Count})
		}
		out.Histograms = append(out.Histograms, hd)
	}
	return out
}

func scrape(name string, st remote.StatsDTO) cluster.Scrape {
	return cluster.Scrape{Daemon: cluster.Daemon{Name: name, Addr: "x"}, Stats: st}
}

// TestMergeCountersAndGauges property-tests the scalar semantics over
// seeded random inputs: counters sum, gauges sum, *_version gauges
// take the max.
func TestMergeCountersAndGauges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		n := 2 + rng.Intn(4)
		wantCounters := make(map[string]uint64)
		wantGauges := make(map[string]float64)
		wantVersions := make(map[string]float64)
		var scrapes []cluster.Scrape
		for d := 0; d < n; d++ {
			st := remote.StatsDTO{
				Counters: make(map[string]uint64),
				Gauges:   make(map[string]float64),
			}
			for c := 0; c < 5; c++ {
				name := fmt.Sprintf("ctr_%d_total", rng.Intn(8))
				v := uint64(rng.Intn(1000))
				st.Counters[name] += v
				wantCounters[name] += v
			}
			for g := 0; g < 3; g++ {
				name := fmt.Sprintf("gauge_%d", rng.Intn(4))
				v := float64(rng.Intn(100))
				st.Gauges[name] += v
				wantGauges[name] += v
			}
			ver := float64(rng.Intn(50))
			st.Gauges["fed_placement_version"] = ver
			if ver > wantVersions["fed_placement_version"] || d == 0 {
				if ver > wantVersions["fed_placement_version"] {
					wantVersions["fed_placement_version"] = ver
				}
			}
			scrapes = append(scrapes, scrape(fmt.Sprintf("d%d", d), st))
		}
		merged, unavailable := cluster.Merge(scrapes)
		if len(unavailable) != 0 {
			t.Fatalf("round %d: unexpected unavailable %v", round, unavailable)
		}
		for name, want := range wantCounters {
			if got := merged.Counters[name]; got != want {
				t.Fatalf("round %d: counter %s = %d, want %d (sum)", round, name, got, want)
			}
		}
		for name, want := range wantGauges {
			if got := merged.Gauges[name]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("round %d: gauge %s = %g, want %g (sum)", round, name, got, want)
			}
		}
		if got := merged.Gauges["fed_placement_version"]; got != wantVersions["fed_placement_version"] {
			t.Fatalf("round %d: version gauge = %g, want max %g", round, got, wantVersions["fed_placement_version"])
		}
	}
}

// TestMergeHistogramsExact property-tests the tentpole claim: merging
// per-daemon bucket snapshots is indistinguishable from one histogram
// that observed everything — same count, sum, buckets, and quantiles.
func TestMergeHistogramsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		n := 2 + rng.Intn(3)
		regs := make([]*obs.Registry, n)
		combined := obs.NewRegistry()
		all := combined.Histogram("pipeline_us")
		var scrapes []cluster.Scrape
		for d := 0; d < n; d++ {
			regs[d] = obs.NewRegistry()
			h := regs[d].Histogram("pipeline_us")
			for i := 0; i < 50+rng.Intn(200); i++ {
				v := math.Exp(rng.Float64() * 15) // spans the bucket range incl. overflow
				h.Observe(v)
				all.Observe(v)
			}
			scrapes = append(scrapes, scrape(fmt.Sprintf("d%d", d), statsOf(regs[d])))
		}
		merged, _ := cluster.Merge(scrapes)
		if len(merged.Histograms) != 1 {
			t.Fatalf("round %d: %d histograms, want 1", round, len(merged.Histograms))
		}
		got := merged.Histograms[0]
		want := statsOf(combined).Histograms[0]
		if got.Count != want.Count {
			t.Fatalf("round %d: count %d, want %d", round, got.Count, want.Count)
		}
		if math.Abs(got.Sum-want.Sum) > 1e-6*math.Abs(want.Sum) {
			t.Fatalf("round %d: sum %g, want %g", round, got.Sum, want.Sum)
		}
		if !reflect.DeepEqual(got.Buckets, want.Buckets) {
			t.Fatalf("round %d: merged buckets differ from combined histogram", round)
		}
		for _, q := range []struct {
			name      string
			got, want float64
		}{{"p50", got.P50, want.P50}, {"p95", got.P95, want.P95}, {"p99", got.P99, want.P99}} {
			if math.Abs(q.got-q.want) > 1e-9 {
				t.Fatalf("round %d: %s = %g, want %g (recomputed from merged buckets)", round, q.name, q.got, q.want)
			}
		}
	}
}

// TestMergeHistogramMismatchedBounds pins the honesty fallback: mixed
// bucket layouts keep count and sum but refuse to fabricate quantiles.
func TestMergeHistogramMismatchedBounds(t *testing.T) {
	a := remote.StatsDTO{Histograms: []remote.HistogramDTO{{
		Name: "x_us", Count: 10, Sum: 100, P50: 5,
		Buckets: []remote.BucketDTO{{Le: 1, Count: 4}, {Le: -1, Count: 10}},
	}}}
	b := remote.StatsDTO{Histograms: []remote.HistogramDTO{{
		Name: "x_us", Count: 6, Sum: 60, P50: 7,
		Buckets: []remote.BucketDTO{{Le: 2, Count: 3}, {Le: -1, Count: 6}},
	}}}
	merged, _ := cluster.Merge([]cluster.Scrape{scrape("a", a), scrape("b", b)})
	h := merged.Histograms[0]
	if h.Count != 16 || h.Sum != 160 {
		t.Errorf("count/sum = %d/%g, want 16/160", h.Count, h.Sum)
	}
	if h.P50 != 0 || h.P95 != 0 || h.P99 != 0 || h.Buckets != nil {
		t.Errorf("mismatched bounds must zero quantiles and drop buckets: %+v", h)
	}
}

// TestMergeTraces checks cross-daemon stitching: same trace ID from
// two daemons collapses into one span tree anchored at the earliest
// begin, spans inherit the scraped daemon's name, and traces order
// newest-first.
func TestMergeTraces(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	entry := remote.StatsDTO{Traces: []remote.TraceDTO{{
		ID:    "tr-1",
		Begin: t0.Format(time.RFC3339Nano),
		Spans: []remote.SpanDTO{
			{Stage: "route", OffsetUs: 10, DurUs: 5},
			{Stage: "fed_forward", Daemon: "entry", OffsetUs: 20, DurUs: 500},
		},
	}}}
	// Owner adopted the trace 100us later; its span offsets are relative
	// to its own (later) begin.
	owner := remote.StatsDTO{Traces: []remote.TraceDTO{
		{
			ID:    "tr-1",
			Begin: t0.Add(100 * time.Microsecond).Format(time.RFC3339Nano),
			Spans: []remote.SpanDTO{{Stage: "fed_ingest", OffsetUs: 50, DurUs: 30}},
		},
		{
			ID:    "tr-2",
			Begin: t0.Add(time.Second).Format(time.RFC3339Nano),
			Spans: []remote.SpanDTO{{Stage: "store", OffsetUs: 1, DurUs: 2}},
		},
	}}
	got := cluster.MergeTraces([]cluster.Scrape{
		{Daemon: cluster.Daemon{Name: "entry"}, Stats: entry},
		{Daemon: cluster.Daemon{Name: "owner"}, Stats: owner},
	})
	if len(got) != 2 {
		t.Fatalf("merged %d traces, want 2", len(got))
	}
	if got[0].ID != "tr-2" || got[1].ID != "tr-1" {
		t.Fatalf("order = %s, %s; want newest-first tr-2, tr-1", got[0].ID, got[1].ID)
	}
	tr := got[1]
	if tr.Begin != t0.Format(time.RFC3339Nano) {
		t.Errorf("begin = %s, want the earliest %s", tr.Begin, t0.Format(time.RFC3339Nano))
	}
	var stages []string
	for _, sp := range tr.Spans {
		stages = append(stages, fmt.Sprintf("%s@%s+%g", sp.Stage, sp.Daemon, sp.OffsetUs))
	}
	want := []string{"route@entry+10", "fed_forward@entry+20", "fed_ingest@owner+150"}
	if !reflect.DeepEqual(stages, want) {
		t.Errorf("spans = %v, want %v (owner re-anchored +100us, daemons filled)", stages, want)
	}
	if tr.TotalUs != 520 {
		t.Errorf("TotalUs = %g, want 520 (fed_forward end)", tr.TotalUs)
	}

	// Reversed scrape order must re-anchor the other way to the same tree.
	rev := cluster.MergeTraces([]cluster.Scrape{
		{Daemon: cluster.Daemon{Name: "owner"}, Stats: owner},
		{Daemon: cluster.Daemon{Name: "entry"}, Stats: entry},
	})
	for _, r := range rev {
		if r.ID != "tr-1" {
			continue
		}
		var stages2 []string
		for _, sp := range r.Spans {
			stages2 = append(stages2, fmt.Sprintf("%s@%s+%g", sp.Stage, sp.Daemon, sp.OffsetUs))
		}
		if !reflect.DeepEqual(stages2, want) {
			t.Errorf("reversed order spans = %v, want %v", stages2, want)
		}
	}
}

// fakeDaemon serves a canned mw.stats over a real mwrpc listener.
func fakeDaemon(t *testing.T, st remote.StatsDTO) string {
	t.Helper()
	srv := mwrpc.NewServer()
	srv.Register("mw.stats", func(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
		return st, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr
}

// TestFetchAgainstLiveDaemons runs the whole path — registry
// discovery, parallel scrape, merge — against two live fake daemons
// and one dead registration.
func TestFetchAgainstLiveDaemons(t *testing.T) {
	reg := registry.NewServer(time.Now)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	r1 := obs.NewRegistry()
	r1.Counter("ingest_total").Add(7)
	r1.Histogram("pipeline_us").Observe(10)
	r2 := obs.NewRegistry()
	r2.Counter("ingest_total").Add(5)
	r2.Histogram("pipeline_us").Observe(3000)

	addr1 := fakeDaemon(t, statsOf(r1))
	addr2 := fakeDaemon(t, statsOf(r2))

	cli, err := registry.Dial(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for name, addr := range map[string]string{
		"cs-1": addr1, "cs-2": addr2, "cs-dead": "127.0.0.1:1",
	} {
		if err := cli.Register(name, addr, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	st, daemons, unavailable, err := cluster.Fetch(regAddr, 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(daemons) != 3 {
		t.Fatalf("discovered %d daemons, want 3", len(daemons))
	}
	if !reflect.DeepEqual(unavailable, []string{"cs-dead"}) {
		t.Fatalf("unavailable = %v, want [cs-dead]", unavailable)
	}
	if got := st.Counters["ingest_total"]; got != 12 {
		t.Errorf("ingest_total = %d, want 12 (7+5)", got)
	}
	if len(st.Histograms) != 1 || st.Histograms[0].Count != 2 {
		t.Errorf("merged histogram = %+v, want one with count 2", st.Histograms)
	}
}

func TestFetchEmptyDeploymentErrors(t *testing.T) {
	reg := registry.NewServer(time.Now)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, _, _, err := cluster.Fetch(regAddr, 0, time.Second); err == nil {
		t.Fatal("Fetch on an empty deployment must error, not report a healthy all-zero cluster")
	}
}

// TestMetricsHandler checks the registry-side /metrics/cluster surface:
// exposition text with coverage meta-lines and merged values.
func TestMetricsHandler(t *testing.T) {
	reg := registry.NewServer(time.Now)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	r1 := obs.NewRegistry()
	r1.Counter("ingest_total").Add(3)
	cli, err := registry.Dial(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Register("cs-1", fakeDaemon(t, statsOf(r1)), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := cli.Register("cs-dead", "127.0.0.1:1", time.Minute); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(cluster.MetricsHandler(regAddr, 2*time.Second))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, line := range []string{
		"cluster_daemons_scraped 1",
		"cluster_daemons_unavailable 1",
		"# unavailable daemon: cs-dead",
		"ingest_total 3",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("exposition missing %q in:\n%s", line, text)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

// TestDiscoverPrefersPlacementAddr: when a daemon appears in both the
// service table and the placement map, the placement address (lease
// heartbeaten) wins.
func TestDiscoverPrefersPlacementAddr(t *testing.T) {
	reg := registry.NewServer(time.Now)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	cli, err := registry.Dial(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Register("cs-1", "127.0.0.1:1111", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.PlaceShards("cs-1", "127.0.0.1:2222", []string{"CS/F0"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	daemons, err := cluster.Discover(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(daemons) != 1 || daemons[0].Addr != "127.0.0.1:2222" {
		t.Fatalf("daemons = %+v, want cs-1 at the placement addr", daemons)
	}
	sort.Slice(daemons, func(i, j int) bool { return daemons[i].Name < daemons[j].Name })
}
