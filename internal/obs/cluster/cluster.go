// Package cluster federates per-daemon observability into one honest
// view: it discovers the daemons of a deployment through the shard
// registry, scrapes each one's mw.stats snapshot, and merges the
// results — counters sum, gauges sum (version gauges take the max),
// and histograms merge bucket-wise so the cluster p99 is computed from
// the combined distribution rather than averaged from per-daemon
// quantiles (which would be statistically meaningless). Traces merge
// by ID, so one reading's hops across daemons render as a single span
// tree. mwctl stats -cluster and the registry's /metrics/cluster
// endpoint sit on top.
package cluster

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/registry"
	"middlewhere/internal/remote"
)

// Daemon is one scrape target.
type Daemon struct {
	Name string
	Addr string
}

// Scrape is one daemon's snapshot (or the error that prevented it).
type Scrape struct {
	Daemon Daemon
	Stats  remote.StatsDTO
	Err    error
}

// Discover lists a deployment's daemons from the registry: the union
// of the shard-placement map (federated daemons) and the service table
// (standalone daemons registered by name), deduplicated by name with
// the placement address winning — it is lease-heartbeaten and tracks
// restarts fastest.
func Discover(regAddr string) ([]Daemon, error) {
	reg, err := registry.Dial(regAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: registry dial: %w", err)
	}
	defer reg.Close()
	byName := make(map[string]string)
	if entries, err := reg.List(); err == nil {
		for _, e := range entries {
			byName[e.Name] = e.Addr
		}
	}
	p, err := reg.Placement()
	if err != nil {
		return nil, fmt.Errorf("cluster: placement fetch: %w", err)
	}
	for name, addr := range p.DaemonAddrs() {
		byName[name] = addr
	}
	out := make([]Daemon, 0, len(byName))
	for name, addr := range byName {
		out = append(out, Daemon{Name: name, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ScrapeAll fetches every daemon's mw.stats snapshot in parallel.
// traces caps the recent traces each daemon returns (0 = none). A
// failed scrape is reported in its slot, never dropped — the merge
// names unreachable daemons instead of silently under-counting.
func ScrapeAll(daemons []Daemon, traces int, timeout time.Duration) []Scrape {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	out := make([]Scrape, len(daemons))
	var wg sync.WaitGroup
	wg.Add(len(daemons))
	for i, d := range daemons {
		go func(i int, d Daemon) {
			defer wg.Done()
			out[i] = scrapeOne(d, traces, timeout)
		}(i, d)
	}
	wg.Wait()
	return out
}

func scrapeOne(d Daemon, traces int, timeout time.Duration) Scrape {
	cli, err := mwrpc.DialOptions(d.Addr, mwrpc.Options{
		DialTimeout: timeout,
		CallTimeout: timeout,
	})
	if err != nil {
		return Scrape{Daemon: d, Err: err}
	}
	defer cli.Close()
	var st remote.StatsDTO
	if err := cli.Call("mw.stats", remote.StatsArgs{Traces: traces}, &st); err != nil {
		return Scrape{Daemon: d, Err: err}
	}
	return Scrape{Daemon: d, Stats: st}
}

// Merge folds per-daemon snapshots into one cluster view and returns
// the names of daemons whose scrape failed (sorted). Semantics:
//
//   - counters sum across daemons
//   - gauges sum, except names ending in "_version" take the max (a
//     placement version summed over three daemons is nonsense; the
//     newest view is the honest answer)
//   - histograms with identical bucket bounds merge bucket-wise, and
//     the cluster quantiles are recomputed from the merged buckets;
//     mismatched bounds (mixed daemon builds) fall back to count+sum
//     only, with quantiles zeroed rather than fabricated
//   - shard rows concatenate, sorted by key
//   - traces merge by ID (see MergeTraces)
func Merge(scrapes []Scrape) (remote.StatsDTO, []string) {
	var out remote.StatsDTO
	var unavailable []string
	counters := make(map[string]uint64)
	gauges := make(map[string]float64)
	type histAcc struct {
		dto      remote.HistogramDTO
		daemons  int
		mismatch bool
	}
	hists := make(map[string]*histAcc)
	var histOrder []string

	for _, sc := range scrapes {
		if sc.Err != nil {
			unavailable = append(unavailable, sc.Daemon.Name)
			continue
		}
		st := sc.Stats
		out.Enabled = out.Enabled || st.Enabled
		for name, v := range st.Counters {
			counters[name] += v
		}
		for name, v := range st.Gauges {
			if strings.HasSuffix(name, "_version") {
				if cur, ok := gauges[name]; !ok || v > cur {
					gauges[name] = v
				}
			} else {
				gauges[name] += v
			}
		}
		for _, h := range st.Histograms {
			acc, ok := hists[h.Name]
			if !ok {
				cp := h
				cp.Buckets = append([]remote.BucketDTO(nil), h.Buckets...)
				hists[h.Name] = &histAcc{dto: cp, daemons: 1}
				histOrder = append(histOrder, h.Name)
				continue
			}
			acc.daemons++
			acc.dto.Count += h.Count
			acc.dto.Sum += h.Sum
			if !sameBounds(acc.dto.Buckets, h.Buckets) {
				acc.mismatch = true
				continue
			}
			for i := range h.Buckets {
				acc.dto.Buckets[i].Count += h.Buckets[i].Count
			}
		}
		out.Shards = append(out.Shards, st.Shards...)
	}

	if len(counters) > 0 {
		out.Counters = counters
	}
	if len(gauges) > 0 {
		out.Gauges = gauges
	}
	sort.Strings(histOrder)
	for _, name := range histOrder {
		acc := hists[name]
		h := acc.dto
		if acc.mismatch {
			// Mixed bucket layouts: merged quantiles would be fiction.
			h.P50, h.P95, h.P99 = 0, 0, 0
			h.Buckets = nil
		} else if acc.daemons > 1 {
			bounds, counts := bucketsToCounts(h.Buckets)
			h.P50 = obs.QuantileFromBuckets(bounds, counts, 0.50)
			h.P95 = obs.QuantileFromBuckets(bounds, counts, 0.95)
			h.P99 = obs.QuantileFromBuckets(bounds, counts, 0.99)
		}
		out.Histograms = append(out.Histograms, h)
	}
	sort.Slice(out.Shards, func(i, j int) bool { return out.Shards[i].Key < out.Shards[j].Key })
	out.Traces = MergeTraces(scrapes)
	sort.Strings(unavailable)
	return out, unavailable
}

// sameBounds reports whether two cumulative bucket lists share the
// same bound sequence (counts may differ).
func sameBounds(a, b []remote.BucketDTO) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Le != b[i].Le {
			return false
		}
	}
	return true
}

// bucketsToCounts converts the wire's cumulative buckets (Le < 0 marks
// the +Inf overflow) into the finite bounds + per-bucket counts form
// obs.QuantileFromBuckets consumes.
func bucketsToCounts(bs []remote.BucketDTO) (bounds []float64, counts []uint64) {
	counts = make([]uint64, 0, len(bs))
	var prev uint64
	for _, b := range bs {
		if b.Le >= 0 {
			bounds = append(bounds, b.Le)
		}
		counts = append(counts, b.Count-prev)
		prev = b.Count
	}
	return bounds, counts
}

// MergeTraces joins per-daemon trace records by ID: the spans of one
// trace scraped from several daemons collapse into a single record
// whose clock zero is the earliest begin seen, with every span's
// offset re-anchored to it. Spans missing a daemon label inherit the
// scraped daemon's name — a single-daemon deployment never labels its
// spans, but in the cluster view attribution is the whole point.
// Traces sort newest-first; each trace's spans sort by offset.
func MergeTraces(scrapes []Scrape) []remote.TraceDTO {
	type rec struct {
		dto   remote.TraceDTO
		begin time.Time
	}
	byID := make(map[string]*rec)
	var order []string
	for _, sc := range scrapes {
		if sc.Err != nil {
			continue
		}
		for _, t := range sc.Stats.Traces {
			begin, err := time.Parse(time.RFC3339Nano, t.Begin)
			if err != nil {
				continue
			}
			spans := make([]remote.SpanDTO, len(t.Spans))
			copy(spans, t.Spans)
			for i := range spans {
				if spans[i].Daemon == "" {
					spans[i].Daemon = sc.Daemon.Name
				}
			}
			r, ok := byID[t.ID]
			if !ok {
				byID[t.ID] = &rec{
					dto:   remote.TraceDTO{ID: t.ID, Begin: t.Begin, Spans: spans},
					begin: begin,
				}
				order = append(order, t.ID)
				continue
			}
			// Re-anchor both sides to the earlier begin before appending.
			if begin.Before(r.begin) {
				shift := float64(r.begin.Sub(begin).Microseconds())
				for i := range r.dto.Spans {
					r.dto.Spans[i].OffsetUs += shift
				}
				r.begin = begin
				r.dto.Begin = t.Begin
			} else if shift := float64(begin.Sub(r.begin).Microseconds()); shift > 0 {
				for i := range spans {
					spans[i].OffsetUs += shift
				}
			}
			r.dto.Spans = append(r.dto.Spans, spans...)
		}
	}
	out := make([]remote.TraceDTO, 0, len(byID))
	for _, id := range order {
		r := byID[id]
		sort.SliceStable(r.dto.Spans, func(i, j int) bool {
			return r.dto.Spans[i].OffsetUs < r.dto.Spans[j].OffsetUs
		})
		var total float64
		for _, sp := range r.dto.Spans {
			if e := sp.OffsetUs + sp.DurUs; e > total {
				total = e
			}
		}
		r.dto.TotalUs = total
		out = append(out, r.dto)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Begin > out[j].Begin })
	return out
}

// WriteStatsText renders a merged snapshot in the /metrics exposition
// format, plus cluster_* meta lines reporting scrape coverage.
func WriteStatsText(w io.Writer, st remote.StatsDTO, scraped int, unavailable []string) {
	fmt.Fprintf(w, "cluster_daemons_scraped %d\n", scraped)
	fmt.Fprintf(w, "cluster_daemons_unavailable %d\n", len(unavailable))
	for _, name := range unavailable {
		fmt.Fprintf(w, "# unavailable daemon: %s\n", name)
	}
	names := make([]string, 0, len(st.Counters))
	for name := range st.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, st.Counters[name])
	}
	names = names[:0]
	for name := range st.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(st.Gauges[name]))
	}
	for _, h := range st.Histograms {
		fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", h.Name, formatFloat(h.P50))
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", h.Name, formatFloat(h.P95))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", h.Name, formatFloat(h.P99))
		for _, b := range h.Buckets {
			le := "+Inf"
			if b.Le >= 0 && !math.IsInf(b.Le, 1) {
				le = formatFloat(b.Le)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, b.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Fetch is the one-call path mwctl uses: discover, scrape, merge. It
// returns the merged snapshot, the daemons scraped, and the names of
// unreachable ones. An empty deployment is an error — aggregating
// nothing would render as a healthy all-zero cluster.
func Fetch(regAddr string, traces int, timeout time.Duration) (remote.StatsDTO, []Daemon, []string, error) {
	daemons, err := Discover(regAddr)
	if err != nil {
		return remote.StatsDTO{}, nil, nil, err
	}
	if len(daemons) == 0 {
		return remote.StatsDTO{}, nil, nil, fmt.Errorf("cluster: no daemons registered at %s", regAddr)
	}
	merged, unavailable := Merge(ScrapeAll(daemons, traces, timeout))
	return merged, daemons, unavailable, nil
}

// MetricsHandler serves the merged cluster snapshot as exposition text
// (the registry mounts it at /metrics/cluster). Every request scrapes
// live — the registry stays stateless about daemon internals.
func MetricsHandler(regAddr string, timeout time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		daemons, err := Discover(regAddr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		merged, unavailable := Merge(ScrapeAll(daemons, 0, timeout))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteStatsText(w, merged, len(daemons)-len(unavailable), unavailable)
	})
}
