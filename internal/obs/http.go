package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// DebugMux returns an http.Handler exposing reg and tr:
//
//	/metrics       — plain-text exposition (Prometheus-style lines)
//	/debug/traces  — JSON array of recent traces (?n=K limits the count)
//	/debug/pprof/* — the standard net/http/pprof profiles
//
// nil reg/tr default to the process-global registry and tracer. The
// daemon mounts this behind an opt-in -debug-addr flag; it is never on
// by default.
func DebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	if tr == nil {
		tr = DefaultTracer()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetricsText(w, reg)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		// ?n= caps the trace count; malformed or negative values are a
		// client error, not a silent default, and anything beyond the
		// ring size clamps to the ring.
		n := 0
		if raw := q.Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		if max := tr.Len(); n > max {
			n = max
		}
		var traces []Trace
		if id := q.Get("id"); id != "" {
			// Exact-match filter: one trace or an empty array.
			if t, ok := tr.Get(id); ok {
				traces = []Trace{t}
			}
		} else {
			traces = tr.Recent(n)
		}
		w.Header().Set("Content-Type", "application/json")
		type spanJSON struct {
			Stage    string  `json:"stage"`
			Daemon   string  `json:"daemon,omitempty"`
			OffsetUs float64 `json:"offsetUs"`
			DurUs    float64 `json:"durUs"`
		}
		type traceJSON struct {
			ID      string     `json:"id"`
			Begin   string     `json:"begin"`
			TotalUs float64    `json:"totalUs"`
			Spans   []spanJSON `json:"spans"`
		}
		out := make([]traceJSON, 0, len(traces))
		for _, t := range traces {
			tj := traceJSON{
				ID:      t.ID,
				Begin:   t.Begin.Format("2006-01-02T15:04:05.000000Z07:00"),
				TotalUs: float64(t.Total().Microseconds()),
			}
			for _, sp := range t.Spans {
				tj.Spans = append(tj.Spans, spanJSON{
					Stage:    sp.Stage,
					Daemon:   sp.Daemon,
					OffsetUs: float64(sp.Offset.Microseconds()),
					DurUs:    float64(sp.Dur.Microseconds()),
				})
			}
			out = append(out, tj)
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteMetricsText writes reg's snapshot in the plain-text exposition
// format: `name value` for counters and gauges, and per-histogram
// `name_count`, `name_sum`, quantile lines, and cumulative
// `name_bucket{le="..."}` lines.
func WriteMetricsText(w io.Writer, reg *Registry) {
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(w, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", h.Name, formatFloat(h.P50))
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", h.Name, formatFloat(h.P95))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", h.Name, formatFloat(h.P99))
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.Le, 1) {
				le = formatFloat(b.Le)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, b.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsTextString renders reg as the /metrics exposition text —
// handy for CLI display and tests.
func MetricsTextString(reg *Registry) string {
	var b strings.Builder
	WriteMetricsText(&b, reg)
	return b.String()
}

// DebugServer is a running opt-in debug HTTP server.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the server's bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// StartDebugServer binds addr and serves DebugMux(reg, tr) in a
// background goroutine. nil reg/tr use the process-global instances.
func StartDebugServer(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg, tr)}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}
