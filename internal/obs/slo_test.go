package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSLOs(t *testing.T) {
	got, err := ParseSLOs("query=p99<10ms@30s,ingest=p99.9<2ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []SLO{
		{Name: "ingest", Metric: "spatialdb_insert_us", Percentile: 0.999, Target: 2 * time.Millisecond, Window: time.Minute},
		{Name: "query", Metric: "spatialdb_query_us", Percentile: 0.99, Target: 10 * time.Millisecond, Window: 30 * time.Second},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d objectives, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		// pNN/100 is inexact in float64 (p99.9 → 0.9990000000000001);
		// compare the percentile with a tolerance, the rest exactly.
		if math.Abs(g.Percentile-w.Percentile) > 1e-9 {
			t.Errorf("slo[%d].Percentile = %v, want ~%v", i, g.Percentile, w.Percentile)
		}
		g.Percentile = w.Percentile
		if g != w {
			t.Errorf("slo[%d] = %+v, want %+v", i, got[i], w)
		}
	}

	// Unknown names pass through as literal histogram names.
	got, err = ParseSLOs("fed_forward_us=p95<1ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Metric != "fed_forward_us" {
		t.Errorf("literal metric = %q, want fed_forward_us", got[0].Metric)
	}

	// Empty segments are skipped, not errors.
	if got, err = ParseSLOs(" , ingest=p99<2ms, ", nil); err != nil || len(got) != 1 {
		t.Errorf("ParseSLOs with blanks = (%v, %v), want one objective", got, err)
	}

	for _, bad := range []string{
		"noequals",
		"=p99<2ms",
		"x=99<2ms",
		"x=p0<2ms",
		"x=p100<2ms",
		"x=pfoo<2ms",
		"x=p99<zzz",
		"x=p99<-2ms",
		"x=p99<2ms@bogus",
		"x=p99<2ms@-5s",
	} {
		if _, err := ParseSLOs(bad, nil); err == nil {
			t.Errorf("ParseSLOs(%q) accepted, want error", bad)
		}
	}
}

// TestSLOMetricNamesStable pins the exported slo_* names: dashboards
// and the cluster aggregator key on these strings, so a rename must
// fail here first.
func TestSLOMetricNamesStable(t *testing.T) {
	if got := SLOMetricName("slo_burn_rate", "ingest"); got != `slo_burn_rate{slo="ingest"}` {
		t.Fatalf("SLOMetricName = %q", got)
	}
	reg := NewRegistry()
	slos, err := ParseSLOs("ingest=p99<2ms@1s", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSLOTracker(reg, slos, time.Hour) // ticked manually
	tr.Tick()
	snap := reg.Snapshot()
	names := make(map[string]bool)
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, want := range []string{
		"slo_breaches_total",
		`slo_breaches_total{slo="ingest"}`,
		`slo_burn_rate{slo="ingest"}`,
		`slo_attained_us{slo="ingest"}`,
		`slo_target_us{slo="ingest"}`,
		`slo_healthy{slo="ingest"}`,
	} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if got := reg.Gauge(SLOMetricName("slo_target_us", "ingest")).Value(); got != 2000 {
		t.Errorf("slo_target_us = %g, want 2000", got)
	}
}

// TestSLOTrackerBreachLifecycle drives a tracker through healthy →
// breached → recovered → breached again with injected clock times and
// checks the transition counting: slo_breaches_total moves only on
// healthy→breached edges, never while a breach persists.
func TestSLOTrackerBreachLifecycle(t *testing.T) {
	reg := NewRegistry()
	slos, err := ParseSLOs("ingest=p99<2ms", nil) // window 1m
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSLOTracker(reg, slos, time.Hour)
	hist := reg.Histogram("spatialdb_insert_us")
	breaches := reg.Counter("slo_breaches_total")
	healthy := reg.Gauge(SLOMetricName("slo_healthy", "ingest"))

	t0 := time.Unix(1_000_000, 0)
	tr.tickAt(t0)
	if st := tr.Status()[0]; st.Breached || st.Samples != 0 {
		t.Fatalf("empty window evaluated as %+v", st)
	}

	for i := 0; i < 200; i++ {
		hist.Observe(100) // 100us, well under the 2ms target
	}
	tr.tickAt(t0.Add(10 * time.Second))
	if st := tr.Status()[0]; st.Breached || st.Samples != 200 {
		t.Fatalf("fast window evaluated as %+v", st)
	}
	if tr.Breached() {
		t.Fatal("Breached() true on a healthy window")
	}
	if healthy.Value() != 1 {
		t.Fatal("slo_healthy != 1 while healthy")
	}

	for i := 0; i < 200; i++ {
		hist.Observe(5e6) // 5s, overflow bucket
	}
	tr.tickAt(t0.Add(20 * time.Second))
	st := tr.Status()[0]
	if !st.Breached || !tr.Breached() {
		t.Fatalf("slow burst not breached: %+v", st)
	}
	if st.BurnRate <= 1 {
		t.Errorf("burn rate = %g, want > 1 during a breach", st.BurnRate)
	}
	if got := breaches.Value(); got != 1 {
		t.Fatalf("slo_breaches_total = %d after first breach, want 1", got)
	}
	if healthy.Value() != 0 {
		t.Fatal("slo_healthy != 0 while breached")
	}

	// A persisting breach is not a new transition.
	tr.tickAt(t0.Add(30 * time.Second))
	if got := breaches.Value(); got != 1 {
		t.Fatalf("slo_breaches_total = %d while breach persists, want 1", got)
	}

	// Once the whole burst ages past the window the objective recovers:
	// the baseline snapshot already contains the slow counts, the delta
	// is empty, and zero samples cannot breach.
	for _, dt := range []time.Duration{95 * time.Second, 100 * time.Second} {
		tr.tickAt(t0.Add(dt))
	}
	if st := tr.Status()[0]; st.Breached || st.Samples != 0 {
		t.Fatalf("post-burst window evaluated as %+v, want recovered", st)
	}
	if healthy.Value() != 1 {
		t.Fatal("slo_healthy != 1 after recovery")
	}

	// A second burst is a second transition.
	for i := 0; i < 50; i++ {
		hist.Observe(5e6)
	}
	tr.tickAt(t0.Add(110 * time.Second))
	if got := breaches.Value(); got != 2 {
		t.Fatalf("slo_breaches_total = %d after second breach, want 2", got)
	}
	if got := reg.Counter(SLOMetricName("slo_breaches_total", "ingest")).Value(); got != 2 {
		t.Fatalf(`slo_breaches_total{slo="ingest"} = %d, want 2`, got)
	}
}

// TestSLOTrackerStartStop exercises the background loop: a tight
// interval must tick on its own, and Stop must be idempotent.
func TestSLOTrackerStartStop(t *testing.T) {
	reg := NewRegistry()
	slos, _ := ParseSLOs("ingest=p99<2ms@600ms", nil)
	tr := NewSLOTracker(reg, slos, time.Millisecond)
	reg.Histogram("spatialdb_insert_us").Observe(100)
	tr.Start()
	deadline := time.Now().Add(2 * time.Second)
	for tr.Status()[0].Samples == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	tr.Stop()
	tr.Stop() // idempotent

	// Stop without Start must not hang either.
	tr2 := NewSLOTracker(reg, slos, time.Minute)
	tr2.Stop()
}

// TestQuantileFromBucketsMatchesHistogram checks the exported
// estimator agrees with Histogram.Quantile on identical counts — the
// property the cluster merge and SLO window math rely on.
func TestQuantileFromBucketsMatchesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_us")
	for _, v := range []float64{1, 3, 7, 40, 90, 450, 800, 3000, 70000, 2e6} {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		want := h.Quantile(q)
		got := QuantileFromBuckets(h.Bounds(), h.BucketCounts(), q)
		if got != want {
			t.Errorf("q=%g: QuantileFromBuckets = %g, Histogram.Quantile = %g", q, got, want)
		}
	}
	if got := QuantileFromBuckets(h.Bounds(), make([]uint64, len(h.BucketCounts())), 0.5); got != 0 {
		t.Errorf("empty counts quantile = %g, want 0", got)
	}
}

// TestDebugTracesQuery pins the /debug/traces contract: ?n= clamps to
// the ring size, ?id= is an exact-match filter, and malformed values
// are a 400, not a silent default.
func TestDebugTracesQuery(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	withTracing(t, true)
	var ids []string
	for i := 0; i < 3; i++ {
		id := tr.Begin()
		tr.SpanD(id, "stage", "d1", time.Now().Add(-time.Millisecond))
		ids = append(ids, id)
	}
	srv := httptest.NewServer(DebugMux(reg, tr))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	decode := func(body []byte) []struct {
		ID    string `json:"id"`
		Spans []struct {
			Stage  string `json:"stage"`
			Daemon string `json:"daemon"`
		} `json:"spans"`
	} {
		t.Helper()
		var out []struct {
			ID    string `json:"id"`
			Spans []struct {
				Stage  string `json:"stage"`
				Daemon string `json:"daemon"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
		return out
	}

	// ?n beyond the ring clamps to what is recorded.
	code, body := get("/debug/traces?n=999999")
	if code != http.StatusOK {
		t.Fatalf("?n=999999 -> %d", code)
	}
	if got := decode(body); len(got) != 3 {
		t.Errorf("?n=999999 returned %d traces, want 3 (clamped)", len(got))
	}

	code, body = get("/debug/traces?n=2")
	if got := decode(body); code != http.StatusOK || len(got) != 2 {
		t.Errorf("?n=2 -> %d traces (status %d), want 2", len(got), code)
	}

	// Exact-match id filter, including the daemon label on spans.
	code, body = get("/debug/traces?id=" + ids[1])
	got := decode(body)
	if code != http.StatusOK || len(got) != 1 || got[0].ID != ids[1] {
		t.Fatalf("?id= filter -> status %d body %s", code, body)
	}
	if len(got[0].Spans) != 1 || got[0].Spans[0].Daemon != "d1" {
		t.Errorf("span daemon label missing: %+v", got[0].Spans)
	}

	// Unknown id: empty array, still 200.
	code, body = get("/debug/traces?id=nope")
	if got := decode(body); code != http.StatusOK || len(got) != 0 {
		t.Errorf("?id=nope -> %d traces (status %d), want none", len(got), code)
	}

	// Malformed and negative n are client errors.
	for _, q := range []string{"?n=abc", "?n=-1", "?n=1.5"} {
		if code, body := get("/debug/traces" + q); code != http.StatusBadRequest {
			t.Errorf("%s -> status %d (%s), want 400", q, code, strings.TrimSpace(string(body)))
		}
	}
}
