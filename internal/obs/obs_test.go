package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing flips the global tracing flag for one test and restores
// it afterwards.
func withTracing(t *testing.T, on bool) {
	t.Helper()
	was := Enabled()
	SetEnabled(on)
	t.Cleanup(func() { SetEnabled(was) })
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c.Name() != "hits" {
		t.Errorf("counter name = %q", c.Name())
	}
	g := r.Gauge("depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Errorf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Errorf("gauge = %g, want -1", got)
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same-name counters should be the same handle")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("same-name gauges should be the same handle")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("same-name histograms should be the same handle")
	}
	// Reset preserves identity, zeroing in place.
	c := r.Counter("x")
	c.Add(7)
	h := r.Histogram("x")
	h.Observe(12)
	r.Reset()
	if c != r.Counter("x") || h != r.Histogram("x") {
		t.Error("Reset must not replace metric handles")
	}
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("Reset left values: counter=%d hist count=%d sum=%g",
			c.Value(), h.Count(), h.Sum())
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 20, 30)
	// One observation per region: below first bound, on a bound (counts
	// as <=), between bounds, above the last bound (overflow).
	for _, v := range []float64{5, 20, 25, 99} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 149 {
		t.Errorf("sum = %g, want 149", h.Sum())
	}
	var snap HistogramSnap
	for _, hs := range r.Snapshot().Histograms {
		if hs.Name == "lat" {
			snap = hs
		}
	}
	// Cumulative buckets: <=10:1, <=20:2, <=30:3, +Inf:4.
	wantCum := []uint64{1, 2, 3, 4}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[len(snap.Buckets)-1].Le, 1) {
		t.Error("last bucket bound should be +Inf")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", 10, 20, 30, 40)
	// Ten observations in each of the four finite buckets.
	for _, base := range []float64{5, 15, 25, 35} {
		for i := 0; i < 10; i++ {
			h.Observe(base)
		}
	}
	// rank(0.5) = 20 lands exactly at the top of the second bucket.
	if got := h.Quantile(0.50); got != 20 {
		t.Errorf("P50 = %g, want 20", got)
	}
	// rank(0.25) = 10: the full first bucket → its upper bound.
	if got := h.Quantile(0.25); got != 10 {
		t.Errorf("P25 = %g, want 10", got)
	}
	// rank(0.95) = 38: 8/10 into the (30,40] bucket.
	if got := h.Quantile(0.95); math.Abs(got-38) > 1e-9 {
		t.Errorf("P95 = %g, want 38", got)
	}
	// Overflow observations clamp to the largest finite bound.
	for i := 0; i < 100; i++ {
		h.Observe(1e9)
	}
	if got := h.Quantile(0.99); got != 40 {
		t.Errorf("P99 with overflow = %g, want clamp to 40", got)
	}
	// Empty histogram.
	if got := r.Histogram("empty").Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i % 100))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	// The CAS-looped sum must not lose updates: each goroutine adds
	// sum(0..99) * perG/100.
	want := float64(goroutines) * float64(perG/100) * (99 * 100 / 2)
	if got := r.Histogram("h").Sum(); got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

func TestTracerDisabled(t *testing.T) {
	withTracing(t, false)
	tr := NewTracer(NewRegistry(), 8)
	if id := tr.Begin(); id != "" {
		t.Errorf("Begin while disabled = %q, want empty", id)
	}
	tr.Span("", "ingest", time.Now()) // must be a no-op, not a panic
	if tr.Len() != 0 {
		t.Errorf("disabled tracer recorded %d traces", tr.Len())
	}
}

func TestTracerSpansAndRing(t *testing.T) {
	withTracing(t, true)
	reg := NewRegistry()
	tr := NewTracer(reg, 2)
	id := tr.Begin()
	if id == "" {
		t.Fatal("Begin returned empty ID while enabled")
	}
	start := time.Now()
	tr.Span(id, "ingest", start)
	tr.Span(id, "db_insert", start)
	recent := tr.Recent(10)
	if len(recent) != 1 || recent[0].ID != id || len(recent[0].Spans) != 2 {
		t.Fatalf("recent = %+v", recent)
	}
	if recent[0].Spans[0].Stage != "ingest" || recent[0].Spans[1].Stage != "db_insert" {
		t.Errorf("stages = %v", recent[0].Spans)
	}
	// Spans feed the stage histograms of the tracer's registry.
	if got := reg.Histogram("stage_ingest_us").Count(); got != 1 {
		t.Errorf("stage_ingest_us count = %d, want 1", got)
	}
	// The ring evicts oldest-first at capacity.
	id2, id3 := tr.Begin(), tr.Begin()
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", tr.Len())
	}
	recent = tr.Recent(2)
	if recent[0].ID != id3 || recent[1].ID != id2 {
		t.Errorf("ring kept %q,%q; want newest %q,%q", recent[0].ID, recent[1].ID, id3, id2)
	}
	// A span against an unseen ID is adopted (remote trace arriving at
	// the server's tracer).
	tr.Span("t-remote", "notify", time.Now())
	if got := tr.Recent(1)[0].ID; got != "t-remote" {
		t.Errorf("adopted trace = %q, want t-remote", got)
	}
}

func TestTracerUniqueIDs(t *testing.T) {
	withTracing(t, true)
	tr := NewTracer(NewRegistry(), 64)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := tr.Begin()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestWriteMetricsText(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(3)
	r.Gauge("queue_depth").Set(2)
	r.Histogram("lat_us", 10, 100).Observe(50)
	text := MetricsTextString(r)
	for _, want := range []string{
		"requests_total 3",
		"queue_depth 2",
		"lat_us_count 1",
		"lat_us_sum 50",
		`lat_us_bucket{le="100"} 1`,
		`lat_us_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

func TestDebugServer(t *testing.T) {
	withTracing(t, true)
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	reg.Counter("probe_total").Inc()
	id := tr.Begin()
	tr.Span(id, "ingest", time.Now())

	srv, err := StartDebugServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "probe_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []struct {
		ID    string `json:"id"`
		Spans []struct {
			Stage string  `json:"stage"`
			DurUs float64 `json:"durUs"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].ID != id {
		t.Errorf("/debug/traces = %+v, want trace %q", traces, id)
	}
	if len(traces[0].Spans) != 1 || traces[0].Spans[0].Stage != "ingest" {
		t.Errorf("/debug/traces spans = %+v, want one ingest span", traces[0].Spans)
	}
}
