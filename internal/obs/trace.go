package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// A Span is one named, timed stage inside a trace: Offset is when the
// stage began relative to the trace's Begin time, Dur how long it took.
// Daemon names the process that recorded the stage — in a federated
// deployment one trace collects spans from several daemons, and the
// label is what keeps the per-hop attribution honest when the span
// records are merged into one cluster-wide tree.
type Span struct {
	Stage  string
	Daemon string
	Offset time.Duration
	Dur    time.Duration
}

// daemonLabel is the process-wide daemon name stamped on spans that do
// not carry an explicit one (SetDaemonLabel; empty by default).
var daemonLabel atomic.Value // string

// SetDaemonLabel sets the daemon name stamped on spans recorded in
// this process. The daemon sets it from its -name flag; federation
// handlers override per span where the router knows better.
func SetDaemonLabel(name string) { daemonLabel.Store(name) }

// DaemonLabel returns the process-wide daemon label ("" unset).
func DaemonLabel() string {
	if v := daemonLabel.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// A Trace is the record of one sensor reading's trip through the
// pipeline, identified by the ID stamped at ingest and carried across
// mwrpc frames.
type Trace struct {
	ID    string
	Begin time.Time
	Spans []Span
}

// Total is the wall time from the trace's begin to the end of its last
// finishing span.
func (t Trace) Total() time.Duration {
	var end time.Duration
	for _, sp := range t.Spans {
		if e := sp.Offset + sp.Dur; e > end {
			end = e
		}
	}
	return end
}

// DefaultTraceCap is how many recent traces a Tracer retains.
const DefaultTraceCap = 256

// Tracer collects spans into per-trace records and keeps a bounded
// ring of the most recent traces. Span timings are also observed into
// a Registry histogram named "stage_<stage>_us", which is what the F9
// breakdown and mw.stats read.
//
// All methods are safe for concurrent use. When tracing is disabled
// (Enabled() == false) Begin returns "" and Span on an empty ID is a
// no-op, so the hot path allocates nothing.
type Tracer struct {
	reg *Registry

	mu   sync.Mutex
	ring []string          // trace IDs, oldest first, len <= cap
	byID map[string]*Trace // ID → record, evicted with the ring
	cap  int
}

// NewTracer returns a tracer recording stage histograms into reg
// (Default() when nil), retaining up to capacity recent traces
// (DefaultTraceCap when <= 0).
func NewTracer(reg *Registry, capacity int) *Tracer {
	if reg == nil {
		reg = Default()
	}
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{
		reg:  reg,
		byID: make(map[string]*Trace),
		cap:  capacity,
	}
}

// traceSeq disambiguates trace IDs generated in the same process.
var traceSeq atomic.Uint64

// Begin starts a new trace and returns its ID, or "" when tracing is
// disabled. IDs are unique within a process and unlikely to collide
// across the processes of one deployment (wall-clock prefix + sequence).
func (t *Tracer) Begin() string {
	if !enabled.Load() {
		return ""
	}
	now := time.Now()
	id := "t" + strconv.FormatInt(now.UnixNano(), 36) +
		"-" + strconv.FormatUint(traceSeq.Add(1), 36)
	t.mu.Lock()
	t.insert(&Trace{ID: id, Begin: now})
	t.mu.Unlock()
	return id
}

// insert adds rec to the ring, evicting the oldest; called with t.mu
// held.
func (t *Tracer) insert(rec *Trace) {
	if len(t.ring) >= t.cap {
		old := t.ring[0]
		t.ring = t.ring[1:]
		delete(t.byID, old)
	}
	t.ring = append(t.ring, rec.ID)
	t.byID[rec.ID] = rec
}

// Span records that stage ran from start to now under trace id. An
// empty id is a no-op (tracing disabled, or an untraced caller). An id
// this tracer has not seen is adopted — that is how a server-side
// tracer picks up a trace begun in a remote client and carried over
// mwrpc. The stage duration is also observed (in microseconds) into
// the "stage_<stage>_us" histogram of the tracer's registry.
func (t *Tracer) Span(id, stage string, start time.Time) {
	t.SpanD(id, stage, "", start)
}

// SpanD is Span with an explicit daemon label on the recorded span;
// an empty daemon falls back to the process-wide DaemonLabel. The
// federation handlers use it so in-process multi-daemon tests (and
// deployments that never call SetDaemonLabel) still attribute each
// hop to the right daemon.
func (t *Tracer) SpanD(id, stage, daemon string, start time.Time) {
	if id == "" {
		return
	}
	if daemon == "" {
		daemon = DaemonLabel()
	}
	dur := time.Since(start)
	t.reg.Histogram("stage_" + stage + "_us").Observe(float64(dur.Microseconds()))
	t.mu.Lock()
	rec := t.byID[id]
	if rec == nil {
		// Adopted trace: its clock zero is the earliest span start we see.
		rec = &Trace{ID: id, Begin: start}
		t.insert(rec)
	}
	off := start.Sub(rec.Begin)
	if off < 0 {
		// A span that started before the recorded begin (clock skew or a
		// span raced the adoption): re-anchor so offsets stay >= 0.
		for i := range rec.Spans {
			rec.Spans[i].Offset -= off
		}
		rec.Begin = start
		off = 0
	}
	rec.Spans = append(rec.Spans, Span{Stage: stage, Daemon: daemon, Offset: off, Dur: dur})
	t.mu.Unlock()
}

// Get returns a deep copy of the trace with the given ID, if retained.
func (t *Tracer) Get(id string) (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.byID[id]
	if rec == nil {
		return Trace{}, false
	}
	cp := Trace{ID: rec.ID, Begin: rec.Begin, Spans: make([]Span, len(rec.Spans))}
	copy(cp.Spans, rec.Spans)
	return cp, true
}

// Recent returns up to n of the most recent traces, newest first, as
// deep copies safe to retain.
func (t *Tracer) Recent(n int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]Trace, 0, n)
	for i := len(t.ring) - 1; i >= 0 && len(out) < n; i-- {
		rec := t.byID[t.ring[i]]
		cp := Trace{ID: rec.ID, Begin: rec.Begin, Spans: make([]Span, len(rec.Spans))}
		copy(cp.Spans, rec.Spans)
		out = append(out, cp)
	}
	return out
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Reset discards all retained traces.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.byID = make(map[string]*Trace)
	t.mu.Unlock()
}

// defaultTracer is the process-global tracer the built-in
// instrumentation records into, feeding the Default() registry.
var defaultTracer = NewTracer(defaultRegistry, DefaultTraceCap)

// DefaultTracer returns the process-global tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// BeginTrace starts a trace on the process-global tracer ("" when
// tracing is disabled).
func BeginTrace() string { return defaultTracer.Begin() }

// SpanSince records a stage on the process-global tracer; a no-op when
// id is "".
func SpanSince(id, stage string, start time.Time) { defaultTracer.Span(id, stage, start) }

// SpanSinceD records a stage with an explicit daemon label on the
// process-global tracer; a no-op when id is "".
func SpanSinceD(id, stage, daemon string, start time.Time) {
	defaultTracer.SpanD(id, stage, daemon, start)
}

// RecentTraces returns recent traces from the process-global tracer.
func RecentTraces(n int) []Trace { return defaultTracer.Recent(n) }
