//go:build !race

package obs

import (
	"testing"
	"time"
)

// TestDisabledInstrumentationAllocatesNothing locks in the package's
// cost contract: metric updates never allocate, and with tracing
// disabled the tracing entry points are alloc-free no-ops too. The
// file is excluded under -race because the race runtime itself
// allocates inside atomic instrumentation.
func TestDisabledInstrumentationAllocatesNothing(t *testing.T) {
	was := Enabled()
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(was) })

	r := NewRegistry()
	// Create the handles up front, the way instrumentation sites cache
	// them in package vars; the steady state is what must be free.
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tr := NewTracer(r, 8)
	start := time.Now()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Histogram.Observe", func() { h.Observe(123) }},
		{"Registry.Counter cached", func() { r.Counter("c").Inc() }},
		{"Tracer.Begin disabled", func() {
			if id := tr.Begin(); id != "" {
				t.Fatal("tracing unexpectedly enabled")
			}
		}},
		{"Tracer.Span empty id", func() { tr.Span("", "ingest", start) }},
		{"BeginTrace disabled", func() { _ = BeginTrace() }},
		{"SpanSince empty id", func() { SpanSince("", "ingest", start) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(1000, tc.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, avg)
		}
	}
}
