// Package obs is MiddleWhere's observability core: a zero-dependency,
// concurrency-safe registry of named counters, gauges, and fixed-bucket
// latency histograms, plus lightweight span tracing (trace.go) and an
// opt-in HTTP debug surface (http.go).
//
// The paper's only evaluation instrument is Figure 9's end-to-end
// trigger response time; this package is what lets the reproduction say
// *where* the adapter → spatial-database → trigger → fusion → mwrpc
// pipeline spends that time. The context-aware-middleware survey
// literature treats monitoring as a standard middleware service; obs is
// that service here.
//
// Cost contract: every metric operation (Counter.Add, Gauge.Set,
// Histogram.Observe) is a handful of atomic instructions and allocates
// nothing, so instrumentation can stay compiled into the hot paths
// unconditionally. Tracing does allocate (IDs, span slices) and is
// therefore gated behind the global Enabled flag: with tracing disabled
// the tracing entry points are no-ops that allocate zero bytes — a
// guarantee locked in by a testing.AllocsPerRun test.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates the allocating parts of instrumentation (tracing).
// Metrics record regardless; they are alloc-free.
var enabled atomic.Bool

// SetEnabled turns span tracing on or off process-wide. Off (the
// default) keeps the hot paths allocation-free.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether span tracing is on.
func Enabled() bool { return enabled.Load() }

// ---------------------------------------------------------------------------
// Metric kinds

// Counter is a monotonically increasing counter. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, buffer
// fill). Obtain gauges from a Registry.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge — the up/down counterpart of
// Set for gauges tracking a live population (open handles, queue
// depth) that several goroutines grow and shrink concurrently.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram bucket layout: exponential
// upper bounds in microseconds from 1µs to 1s, wide enough for every
// pipeline stage from an R-tree descent to a cross-network notification.
var LatencyBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Bounds are upper bounds in ascending order; observations above the
// last bound land in an implicit overflow bucket. Obtain histograms
// from a Registry.
type Histogram struct {
	name   string
	bounds []float64
	// counts has len(bounds)+1 slots; the last is the overflow bucket.
	counts []atomic.Uint64
	count  atomic.Uint64
	// sumBits accumulates the observation sum as float64 bits (CAS loop
	// — alloc-free).
	sumBits atomic.Uint64
}

func newHistogram(name string, bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name:   name,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small and fixed, and the scan is
	// branch-predictable; binary search buys nothing at len ~20.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation, or 0 with no data.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket, the standard fixed-bucket
// estimator. Observations in the overflow bucket are attributed to the
// last finite bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	// Everything counted but rank beyond the last non-empty bucket
	// (floating point edge): the largest finite bound.
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// QuantileFromBuckets is the fixed-bucket quantile estimator Histogram
// uses, exposed for callers that hold bucket counts outside a live
// histogram: SLO window deltas and cluster-merged snapshots. counts
// must have len(bounds)+1 slots (overflow last, attributed to the last
// finite bound) and need not be cumulative. Returns 0 with no data.
func QuantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 && i-1 < len(bounds) {
				lo = bounds[i-1]
			}
			hi := lo
			if i < len(bounds) {
				hi = bounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// Bounds returns a copy of the histogram's bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	return b
}

// BucketCounts returns a copy of the per-bucket observation counts
// (len(Bounds())+1 slots, overflow last, not cumulative).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// reset zeroes the histogram in place (identity preserved, so cached
// handles keep working).
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// ---------------------------------------------------------------------------
// Registry

// Registry is a concurrency-safe name → metric table. Metrics are
// created on first use and keep their identity for the registry's
// lifetime, so hot paths cache the handle once and touch only atomics
// afterwards.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-global registry the built-in
// instrumentation records into.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (LatencyBuckets when none are given) on first use. The
// bounds of an existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(name, bounds)
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every metric in place. Handles cached by instrumentation
// sites stay valid; only the values reset. Experiment harnesses use it
// to isolate a measured run.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// ---------------------------------------------------------------------------
// Snapshots

// CounterSnap is a point-in-time counter value.
type CounterSnap struct {
	Name  string
	Value uint64
}

// GaugeSnap is a point-in-time gauge value.
type GaugeSnap struct {
	Name  string
	Value float64
}

// BucketSnap is one cumulative histogram bucket; Le is the upper bound
// (math.Inf(1) for the overflow bucket) and Count the observations at
// or below it.
type BucketSnap struct {
	Le    float64
	Count uint64
}

// HistogramSnap is a point-in-time histogram summary.
type HistogramSnap struct {
	Name          string
	Count         uint64
	Sum           float64
	P50, P95, P99 float64
	Buckets       []BucketSnap
}

// Snapshot is a consistent-enough copy of a registry (each metric is
// read atomically; the set is read under the registry lock).
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
}

// Snapshot captures every metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hs := HistogramSnap{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{Le: le, Count: cum})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
