package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO support: windowed latency objectives evaluated from the existing
// registry histograms. An SLO says "the Percentile of Metric over the
// trailing Window stays at or below Target"; the tracker snapshots the
// histogram's bucket counts on a fixed cadence and evaluates each
// objective from the window delta, so a burst an hour ago cannot mask
// (or fake) a breach now. This is the pass/fail gate the ROADMAP's
// million-object workload needs and what mwctl health -v surfaces.
//
// Burn-rate accounting: with allowed bad fraction a = 1 - Percentile,
// the burn rate is (observed fraction of window observations above
// Target) / a. Burn 1.0 means the error budget is being spent exactly
// as fast as it accrues; above 1.0 the objective is breached.

// SLO is one windowed latency objective over a registry histogram
// (whose observations are in microseconds, like every *_us histogram).
type SLO struct {
	// Name labels the objective ("ingest"); it becomes the slo="..."
	// label on the exported metrics.
	Name string
	// Metric is the histogram evaluated ("spatialdb_insert_us").
	Metric string
	// Percentile in (0, 1], e.g. 0.99.
	Percentile float64
	// Target is the latency objective at that percentile.
	Target time.Duration
	// Window is the trailing evaluation window.
	Window time.Duration
}

// SLOStatus is one objective's last evaluation.
type SLOStatus struct {
	SLO
	// Attained is the windowed percentile estimate.
	Attained time.Duration
	// BurnRate is (bad fraction)/(1 - Percentile); > 1 burns error
	// budget faster than it accrues.
	BurnRate float64
	// Samples is the number of observations inside the window.
	Samples uint64
	// Breached reports Attained > Target (with at least one sample).
	Breached bool
}

// SLOMetricName returns the registry name of a per-objective SLO
// metric with a Prometheus-style label, e.g. slo_burn_rate{slo="ingest"}.
func SLOMetricName(base, name string) string {
	return base + `{slo="` + name + `"}`
}

// DefaultSLOAliases maps the short objective names the daemon's -slo
// flag accepts to the always-on histograms they gate. Any other name
// is taken as a literal histogram name.
var DefaultSLOAliases = map[string]string{
	"ingest":  "spatialdb_insert_us",
	"query":   "spatialdb_query_us",
	"heatmap": "core_heatmap_us",
}

// ParseSLOs parses a -slo flag value: comma-separated objectives of
// the form name=pNN<target[@window], e.g.
//
//	ingest=p99<2ms,query=p99<10ms@30s
//
// The percentile accepts a fractional part (p99.9); the window
// defaults to one minute. aliases resolves objective names to metric
// names (nil uses DefaultSLOAliases); unknown names are literal
// histogram names.
func ParseSLOs(spec string, aliases map[string]string) ([]SLO, error) {
	if aliases == nil {
		aliases = DefaultSLOAliases
	}
	var out []SLO
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("obs: slo %q: want name=pNN<target", part)
		}
		pstr, rest, ok := strings.Cut(rest, "<")
		if !ok || !strings.HasPrefix(pstr, "p") {
			return nil, fmt.Errorf("obs: slo %q: want name=pNN<target", part)
		}
		pct, err := strconv.ParseFloat(pstr[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("obs: slo %q: bad percentile %q", part, pstr)
		}
		window := time.Minute
		tstr := rest
		if ts, ws, hasW := strings.Cut(rest, "@"); hasW {
			tstr = ts
			if window, err = time.ParseDuration(ws); err != nil || window <= 0 {
				return nil, fmt.Errorf("obs: slo %q: bad window %q", part, ws)
			}
		}
		target, err := time.ParseDuration(tstr)
		if err != nil || target <= 0 {
			return nil, fmt.Errorf("obs: slo %q: bad target %q", part, tstr)
		}
		metric := aliases[name]
		if metric == "" {
			metric = name
		}
		out = append(out, SLO{
			Name:       name,
			Metric:     metric,
			Percentile: pct / 100,
			Target:     target,
			Window:     window,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// sloSample is one periodic snapshot of a histogram's bucket counts.
type sloSample struct {
	at     time.Time
	counts []uint64
	total  uint64
}

// sloState is one objective's tracker state.
type sloState struct {
	slo  SLO
	hist *Histogram
	// ring holds periodic samples, oldest first, spanning at least the
	// objective's window.
	ring []sloSample
	last SLOStatus

	mBreaches *Counter
	gBurn     *Gauge
	gAttained *Gauge
	gTarget   *Gauge
	gHealthy  *Gauge
}

// SLOTracker evaluates a set of objectives on a fixed cadence and
// exports their state as slo_* metrics:
//
//	slo_breaches_total                — healthy→breached transitions, all objectives
//	slo_breaches_total{slo="x"}       — transitions for one objective
//	slo_burn_rate{slo="x"}            — windowed burn rate
//	slo_attained_us{slo="x"}          — windowed percentile estimate
//	slo_target_us{slo="x"}            — the configured target
//	slo_healthy{slo="x"}              — 1 meeting the objective, 0 breached
type SLOTracker struct {
	reg      *Registry
	interval time.Duration

	mu        sync.Mutex
	slos      []*sloState
	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once

	mBreachesAll *Counter
}

// NewSLOTracker builds a tracker over reg (Default() when nil)
// sampling every interval (default Window/6 of the shortest objective,
// clamped to [100ms, 5s]). Call Tick manually or Start for a
// background loop.
func NewSLOTracker(reg *Registry, slos []SLO, interval time.Duration) *SLOTracker {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		shortest := time.Duration(0)
		for _, s := range slos {
			if shortest == 0 || s.Window < shortest {
				shortest = s.Window
			}
		}
		interval = shortest / 6
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		if interval > 5*time.Second {
			interval = 5 * time.Second
		}
	}
	t := &SLOTracker{
		reg:          reg,
		interval:     interval,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		mBreachesAll: reg.Counter("slo_breaches_total"),
	}
	for _, s := range slos {
		st := &sloState{
			slo:       s,
			hist:      reg.Histogram(s.Metric),
			mBreaches: reg.Counter(SLOMetricName("slo_breaches_total", s.Name)),
			gBurn:     reg.Gauge(SLOMetricName("slo_burn_rate", s.Name)),
			gAttained: reg.Gauge(SLOMetricName("slo_attained_us", s.Name)),
			gTarget:   reg.Gauge(SLOMetricName("slo_target_us", s.Name)),
			gHealthy:  reg.Gauge(SLOMetricName("slo_healthy", s.Name)),
		}
		st.gTarget.Set(float64(s.Target.Microseconds()))
		st.gHealthy.Set(1)
		st.last = SLOStatus{SLO: s}
		t.slos = append(t.slos, st)
	}
	return t
}

// SLOs returns the configured objectives, sorted by name.
func (t *SLOTracker) SLOs() []SLO {
	out := make([]SLO, 0, len(t.slos))
	for _, st := range t.slos {
		out = append(out, st.slo)
	}
	return out
}

// Tick samples every objective's histogram and re-evaluates it against
// its trailing window. Safe for concurrent use.
func (t *SLOTracker) Tick() { t.tickAt(time.Now()) }

func (t *SLOTracker) tickAt(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.slos {
		t.evalLocked(st, now)
	}
}

// evalLocked pushes a fresh sample and evaluates one objective.
func (t *SLOTracker) evalLocked(st *sloState, now time.Time) {
	cur := sloSample{at: now, counts: st.hist.BucketCounts(), total: st.hist.Count()}

	// Baseline: the newest retained sample at or beyond one window ago
	// (the oldest sample before the ring has filled — a partial window,
	// evaluated as-is rather than reported as no data).
	cutoff := now.Add(-st.slo.Window)
	base := -1
	for i := len(st.ring) - 1; i >= 0; i-- {
		if !st.ring[i].at.After(cutoff) {
			base = i
			break
		}
	}
	if base == -1 && len(st.ring) > 0 {
		base = 0
	}

	var delta []uint64
	var samples uint64
	if base >= 0 {
		prev := st.ring[base]
		delta = make([]uint64, len(cur.counts))
		for i := range cur.counts {
			if i < len(prev.counts) && cur.counts[i] >= prev.counts[i] {
				delta[i] = cur.counts[i] - prev.counts[i]
			} else {
				delta[i] = cur.counts[i] // histogram was reset mid-window
			}
		}
		samples = cur.total - prev.total
		if cur.total < prev.total {
			samples = cur.total
		}
		// Drop samples older than the baseline; keep the baseline itself.
		st.ring = append(st.ring[:0], st.ring[base:]...)
	} else {
		delta = cur.counts
		samples = cur.total
	}
	st.ring = append(st.ring, cur)

	bounds := st.hist.bounds
	targetUs := float64(st.slo.Target.Microseconds())
	attainedUs := QuantileFromBuckets(bounds, delta, st.slo.Percentile)

	// Bad fraction: observations above the target, interpolating inside
	// the bucket containing it. Overflow-bucket observations count as
	// bad whenever the target is finite-bounded.
	var bad float64
	for i, c := range delta {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 && i-1 < len(bounds) {
			lo = bounds[i-1]
		}
		if i >= len(bounds) { // overflow bucket
			if targetUs <= lo {
				bad += float64(c)
			}
			continue
		}
		hi := bounds[i]
		switch {
		case targetUs >= hi:
			// whole bucket at or below target
		case targetUs <= lo:
			bad += float64(c)
		default:
			bad += float64(c) * (hi - targetUs) / (hi - lo)
		}
	}
	burn := 0.0
	if samples > 0 {
		allowed := 1 - st.slo.Percentile
		if allowed <= 0 {
			allowed = 1e-9
		}
		burn = (bad / float64(samples)) / allowed
	}
	breached := samples > 0 && attainedUs > targetUs

	if breached && !st.last.Breached {
		t.mBreachesAll.Inc()
		st.mBreaches.Inc()
	}
	st.last = SLOStatus{
		SLO:      st.slo,
		Attained: time.Duration(attainedUs) * time.Microsecond,
		BurnRate: burn,
		Samples:  samples,
		Breached: breached,
	}
	st.gBurn.Set(burn)
	st.gAttained.Set(attainedUs)
	if breached {
		st.gHealthy.Set(0)
	} else {
		st.gHealthy.Set(1)
	}
}

// Status returns every objective's last evaluation, sorted by name.
func (t *SLOTracker) Status() []SLOStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, 0, len(t.slos))
	for _, st := range t.slos {
		out = append(out, st.last)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Breached reports whether any objective is currently breached.
func (t *SLOTracker) Breached() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.slos {
		if st.last.Breached {
			return true
		}
	}
	return false
}

// Start launches the background sampling loop. Stop ends it.
func (t *SLOTracker) Start() {
	t.startOnce.Do(func() {
		go func() {
			defer close(t.done)
			tick := time.NewTicker(t.interval)
			defer tick.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-tick.C:
					t.Tick()
				}
			}
		}()
	})
}

// Stop ends the background loop (safe if Start was never called, and
// safe to call twice).
func (t *SLOTracker) Stop() {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.startOnce.Do(func() { close(t.done) }) // never started: release waiters
		<-t.done
	})
}
