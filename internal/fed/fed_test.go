// Federation tests live in an external package so they can assemble
// real daemons — core service + remote server + router per node —
// without an import cycle (remote imports fed).
package fed_test

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/faultnet"
	"middlewhere/internal/fed"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/registry"
	"middlewhere/internal/remote"
)

// threeStorey is the shared building model every daemon loads: the
// federation partitions ownership of floors, not knowledge of the map.
// Floors are CS/F0, CS/F1, CS/F2 — one shard key each.
func threeStorey() *building.Building {
	return building.MultiStorey("CS", 3, 2, 2, 10, 8, 4)
}

// allRegion is a building-frame rect covering every floor — a region
// whose shard key is the building root, so a federated scan fans out
// to every placed shard.
func allRegion() glob.GLOB {
	return glob.CoordinateRect(glob.MustParse("CS"), geom.R(0, 0, 20, 72))
}

func testSpec() model.SensorSpec {
	spec := model.UbisenseSpec(0.95)
	spec.TTL = 24 * time.Hour
	return spec
}

// fReading places an object at floor-local (x, y) on CS/F<floor>.
func fReading(object string, floor int, x, y float64, at time.Time) model.Reading {
	return model.Reading{
		SensorID:  "ubi-1",
		MObjectID: object,
		Location:  glob.MustParse(fmt.Sprintf("CS/F%d/(%g,%g)", floor, x, y)),
		Time:      at,
	}
}

// fedDaemon is one daemon of a test federation: a Location Service
// whose database survives restarts, plus the server+router pair each
// start builds fresh (a restarted daemon binds a new port, re-leases
// its floors, and rejoins — the registry bumps the placement version
// and peers reconnect).
type fedDaemon struct {
	name    string
	floors  []string
	regAddr string
	svc     *core.Service

	mu     sync.Mutex
	router *fed.Router
}

func newFedDaemon(t *testing.T, name string, floors []string, regAddr string) *fedDaemon {
	t.Helper()
	svc, err := core.New(threeStorey())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if err := svc.RegisterSensor("ubi-1", testSpec()); err != nil {
		t.Fatal(err)
	}
	return &fedDaemon{name: name, floors: floors, regAddr: regAddr, svc: svc}
}

// start is the faultnet.NodeSpec hook: fresh listener and router, same
// service — the store that survives the crash.
func (d *fedDaemon) start() (string, func(), error) {
	srv := remote.NewServer(d.svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	router, err := fed.New(d.svc, fed.Config{
		Daemon:       d.name,
		Addr:         addr,
		RegistryAddr: d.regAddr,
		Floors:       d.floors,
		// Leases far outlive the test so a killed daemon stays in the
		// placement map — the degraded window the suite exercises.
		LeaseTTL:         30 * time.Second,
		Heartbeat:        50 * time.Millisecond,
		RefreshEvery:     25 * time.Millisecond,
		DialTimeout:      250 * time.Millisecond,
		CallTimeout:      750 * time.Millisecond,
		Attempts:         2,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	srv.SetFederation(router)
	d.mu.Lock()
	d.router = router
	d.mu.Unlock()
	// Kill, not Close: a crash does not get to politely release its
	// placement lease.
	return addr, func() { router.Kill(); srv.Close() }, nil
}

func (d *fedDaemon) fedRouter() *fed.Router {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.router
}

// federation is a registry plus a cluster of fedDaemons.
type federation struct {
	t       *testing.T
	cluster *faultnet.Cluster
	daemons map[string]*fedDaemon
	regAddr string
}

func startFederation(t *testing.T, floorsByDaemon map[string][]string) *federation {
	t.Helper()
	reg := registry.NewServer(time.Now)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	f := &federation{
		t:       t,
		cluster: faultnet.NewCluster(),
		daemons: make(map[string]*fedDaemon),
		regAddr: regAddr,
	}
	t.Cleanup(f.cluster.StopAll)
	names := make([]string, 0, len(floorsByDaemon))
	for name := range floorsByDaemon {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.addDaemon(name, floorsByDaemon[name])
	}
	if err := f.cluster.StartAll(); err != nil {
		t.Fatal(err)
	}
	f.awaitPlacement(f.shardCount())
	return f
}

func (f *federation) addDaemon(name string, floors []string) *fedDaemon {
	d := newFedDaemon(f.t, name, floors, f.regAddr)
	f.daemons[name] = d
	if err := f.cluster.Add(faultnet.NodeSpec{Name: name, Start: d.start}); err != nil {
		f.t.Fatal(err)
	}
	return d
}

func (f *federation) shardCount() int {
	n := 0
	for _, d := range f.daemons {
		n += len(d.floors)
	}
	return n
}

// awaitPlacement waits until every running daemon's cached placement
// covers n shards.
func (f *federation) awaitPlacement(n int) {
	f.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for name, d := range f.daemons {
			if !f.cluster.Running(name) {
				continue
			}
			r := d.fedRouter()
			if r == nil || len(r.Placement().Shards) < n {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			f.t.Fatal("placement never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rowsFor counts an object's stored rows on one daemon.
func rowsFor(d *fedDaemon, object string, since time.Time) int {
	return len(d.svc.DB().ReadingsFor(object, since))
}

func TestFederatedIngestRoutesToOwner(t *testing.T) {
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha, beta := f.daemons["alpha"], f.daemons["beta"]
	base := time.Now()
	since := base.Add(-time.Minute)

	// A reading on beta's floor, ingested at alpha, lands on beta.
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("bob", 1, 5, 5, base)}); err != nil {
		t.Fatalf("ingest via alpha: %v", err)
	}
	if got := rowsFor(beta, "bob", since); got != 1 {
		t.Errorf("beta rows for bob = %d, want 1 (forwarded to owner)", got)
	}
	if got := rowsFor(alpha, "bob", since); got != 0 {
		t.Errorf("alpha rows for bob = %d, want 0 (must not keep a copy)", got)
	}

	// A reading on alpha's own floor stays local.
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("ann", 0, 5, 5, base)}); err != nil {
		t.Fatalf("local ingest: %v", err)
	}
	if got := rowsFor(alpha, "ann", since); got != 1 {
		t.Errorf("alpha rows for ann = %d, want 1", got)
	}
	if got := rowsFor(beta, "ann", since); got != 0 {
		t.Errorf("beta rows for ann = %d, want 0", got)
	}
}

func TestFederatedQueryMergesAcrossDaemons(t *testing.T) {
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha, beta := f.daemons["alpha"], f.daemons["beta"]
	base := time.Now()
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("ann", 0, 5, 5, base)}); err != nil {
		t.Fatal(err)
	}
	if err := beta.svc.IngestBatch([]model.Reading{fReading("bob", 1, 5, 5, base)}); err != nil {
		t.Fatal(err)
	}

	objs, unavailable, err := alpha.fedRouter().ObjectsInRegion(allRegion(), 0, false)
	if err != nil {
		t.Fatalf("federated query: %v", err)
	}
	if len(unavailable) != 0 {
		t.Fatalf("unavailable = %v, want none", unavailable)
	}
	if _, ok := objs["ann"]; !ok {
		t.Errorf("merged result missing local object ann: %v", objs)
	}
	if _, ok := objs["bob"]; !ok {
		t.Errorf("merged result missing remote object bob: %v", objs)
	}

	// The same scan through the client API, plus the probe and shard
	// map the mwctl commands use.
	c, err := remote.DialLocation(f.cluster.Addr("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Probe(); err != nil {
		t.Errorf("probe: %v", err)
	}
	rep, err := c.FedObjectsInRegion(allRegion().String(), 0, false)
	if err != nil {
		t.Fatalf("client federated query: %v", err)
	}
	if rep.Partial || len(rep.Unavailable) != 0 {
		t.Errorf("client query partial = %v unavailable = %v", rep.Partial, rep.Unavailable)
	}
	if !reflect.DeepEqual(rep.Objects, objs) {
		t.Errorf("client query = %v, router query = %v", rep.Objects, objs)
	}
	shards, err := c.Shards()
	if err != nil {
		t.Fatalf("shards: %v", err)
	}
	if shards.Daemon != "alpha" || len(shards.Placement) != 2 {
		t.Errorf("shards = %+v, want daemon alpha with 2 placements", shards)
	}
	health, err := c.ServerHealth()
	if err != nil {
		t.Fatal(err)
	}
	if health.Federation == nil || health.Federation.Daemon != "alpha" {
		t.Errorf("health federation block = %+v, want daemon alpha", health.Federation)
	}
}

// TestFederatedQueryDeterministicWithDownPeer pins the degraded-read
// contract: with one daemon dead, repeated federated scans return
// identical merged results and an identical, sorted Unavailable list —
// the error path must be as deterministic as the happy path — and
// strict mode turns the partial result into ErrUnavailable.
func TestFederatedQueryDeterministicWithDownPeer(t *testing.T) {
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
		"gamma": {"CS/F2"},
	})
	alpha := f.daemons["alpha"]
	base := time.Now()
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("ann", 0, 5, 5, base)}); err != nil {
		t.Fatal(err)
	}
	if err := f.daemons["beta"].svc.IngestBatch([]model.Reading{fReading("bob", 1, 5, 5, base)}); err != nil {
		t.Fatal(err)
	}

	f.cluster.Kill("gamma")

	// First partial observation (the kill needs a call to be noticed).
	var refObjs map[string]float64
	var refUnavailable []string
	deadline := time.Now().Add(5 * time.Second)
	for {
		objs, unavailable, err := alpha.fedRouter().ObjectsInRegion(allRegion(), 0, false)
		if err != nil {
			t.Fatalf("federated query: %v", err)
		}
		if len(unavailable) > 0 {
			refObjs, refUnavailable = objs, unavailable
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never reported the dead daemon's shards unavailable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if want := []string{"CS/F2"}; !reflect.DeepEqual(refUnavailable, want) {
		t.Fatalf("unavailable = %v, want %v", refUnavailable, want)
	}
	if !sort.StringsAreSorted(refUnavailable) {
		t.Fatalf("unavailable list not sorted: %v", refUnavailable)
	}
	if _, ok := refObjs["ann"]; !ok {
		t.Errorf("partial result lost reachable object ann: %v", refObjs)
	}
	if _, ok := refObjs["bob"]; !ok {
		t.Errorf("partial result lost reachable object bob: %v", refObjs)
	}

	// Determinism across repeats — through breaker-open, half-open, and
	// re-open cycles the merge must not wobble.
	for i := 0; i < 5; i++ {
		objs, unavailable, err := alpha.fedRouter().ObjectsInRegion(allRegion(), 0, false)
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		if !reflect.DeepEqual(objs, refObjs) {
			t.Errorf("repeat %d merged %v, first run merged %v", i, objs, refObjs)
		}
		if !reflect.DeepEqual(unavailable, refUnavailable) {
			t.Errorf("repeat %d unavailable %v, first run %v", i, unavailable, refUnavailable)
		}
	}

	// Strict mode refuses to degrade.
	_, _, err := alpha.fedRouter().ObjectsInRegion(allRegion(), 0, true)
	if !errors.Is(err, fed.ErrUnavailable) {
		t.Errorf("strict query error = %v, want ErrUnavailable", err)
	}
}

// TestMigrationMovesObjectToNewOwner covers the planned-handoff path:
// an object stored locally while its floor was unleased migrates to
// the floor's owner the next time a reading for it arrives.
func TestMigrationMovesObjectToNewOwner(t *testing.T) {
	f := startFederation(t, map[string][]string{"alpha": {"CS/F0"}})
	alpha := f.daemons["alpha"]
	base := time.Now()
	since := base.Add(-time.Minute)

	// CS/F1 is unleased, so walker's rows accumulate on alpha.
	for i := 0; i < 3; i++ {
		if err := alpha.svc.IngestBatch([]model.Reading{fReading("walker", 1, 5, 5, base.Add(time.Duration(i)*time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	exportedEpoch := alpha.svc.DB().ReadingEpoch("walker")

	// beta joins and leases CS/F1.
	f.addDaemon("beta", []string{"CS/F1"})
	if err := f.cluster.Start("beta"); err != nil {
		t.Fatal(err)
	}
	f.awaitPlacement(2)
	beta := f.daemons["beta"]

	// The next reading triggers handoff-then-forward.
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("walker", 1, 6, 6, base.Add(10*time.Second))}); err != nil {
		t.Fatal(err)
	}
	if got := rowsFor(beta, "walker", since); got != 4 {
		t.Errorf("beta rows = %d, want 4 (3 migrated + 1 forwarded)", got)
	}
	if got := rowsFor(alpha, "walker", since); got != 0 {
		t.Errorf("alpha rows = %d, want 0 after commit", got)
	}
	if e := beta.svc.DB().ReadingEpoch("walker"); e <= exportedEpoch {
		t.Errorf("epoch did not advance across migration: %d -> %d", exportedEpoch, e)
	}
}

// TestMigrationRetriesAfterOwnerCrash covers the degraded-then-heal
// path: while the owner is down, its floor's readings fall back to
// local storage on the ingesting daemon; once the owner restarts, the
// accumulated rows migrate over — exactly once.
func TestMigrationRetriesAfterOwnerCrash(t *testing.T) {
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha, beta := f.daemons["alpha"], f.daemons["beta"]
	base := time.Now()
	since := base.Add(-time.Minute)

	f.cluster.Kill("beta")

	// Owner down: ingest degrades to local storage, loses nothing.
	for i := 0; i < 3; i++ {
		if err := alpha.svc.IngestBatch([]model.Reading{fReading("walker", 1, 5, 5, base.Add(time.Duration(i)*time.Second))}); err != nil {
			t.Fatalf("degraded ingest must not error: %v", err)
		}
	}
	if got := rowsFor(alpha, "walker", since); got != 3 {
		t.Fatalf("alpha rows = %d, want 3 buffered locally while owner down", got)
	}

	if err := f.cluster.Restart("beta"); err != nil {
		t.Fatal(err)
	}
	f.awaitPlacement(2)

	// Readings keep coming; within a few rounds the breaker closes, the
	// handoff runs, and everything lands on beta exactly once.
	deadline := time.Now().Add(5 * time.Second)
	i := 3
	for {
		if err := alpha.svc.IngestBatch([]model.Reading{fReading("walker", 1, 5, 5, base.Add(time.Duration(i)*time.Second))}); err != nil {
			t.Fatal(err)
		}
		i++
		if rowsFor(alpha, "walker", since) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rows never migrated off alpha; alpha=%d beta=%d",
				rowsFor(alpha, "walker", since), rowsFor(beta, "walker", since))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := rowsFor(beta, "walker", since); got != i {
		t.Errorf("beta rows = %d, want %d (no loss, no duplication)", got, i)
	}
	// Every row is unique: the migration dedup key would have collapsed
	// replays, so equal counts prove exactly-once delivery.
	rows := beta.svc.DB().ReadingsFor("walker", since)
	seen := make(map[string]bool, len(rows))
	for _, r := range rows {
		k := fmt.Sprintf("%s|%d|%s", r.SensorID, r.Time.UnixNano(), r.Location.String())
		if seen[k] {
			t.Errorf("duplicated row after recovery: %s", k)
		}
		seen[k] = true
	}
}
