package fed

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"middlewhere/internal/glob"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// regionArgs is the JSON shape of the peers' local region scan
// (mw.objectsInRegion) — the same frame remote clients send, so a
// federated daemon queries its peers exactly like any client would.
type regionArgs struct {
	Region  string  `json:"region"`
	MinProb float64 `json:"minProb,omitempty"`
}

// ObjectsInRegion answers a region scan across the federation: the
// local service evaluates its resident objects, every peer daemon
// with relevant shards evaluates its own, and the results merge into
// index-addressed slots in daemon-name order — so serial and parallel
// fan-out, and any two runs against the same data, produce identical
// results. Objects visible on two daemons mid-migration merge by max
// probability.
//
// When a peer cannot be reached, its relevant shard keys come back in
// the unavailable list (sorted) and the result is explicitly partial;
// with strict set, the call errors instead. A local evaluation error
// is always an error — degradation covers peers, not the caller's own
// daemon.
func (r *Router) ObjectsInRegion(region glob.GLOB, minProb float64, strict bool) (map[string]float64, []string, error) {
	return r.ObjectsInRegionTraced(region, minProb, strict, "")
}

// ObjectsInRegionTraced is ObjectsInRegion running under an obs trace:
// the local scan, the peer fan-out (trace ID stamped on every peer
// frame, so each peer's region_scan span lands in the same trace), and
// the merge each get a span labeled with this daemon's name.
func (r *Router) ObjectsInRegionTraced(region glob.GLOB, minProb float64, strict bool, trace string) (map[string]float64, []string, error) {
	mFedQueries.Inc()
	regionKey := spatialdb.ShardKeyForGLOB(region)

	// Pick the remote daemons whose placed shards can hold matching
	// objects, in name order for the deterministic merge.
	r.mu.Lock()
	byDaemon := make(map[string][]string) // daemon -> relevant shard keys
	for _, e := range r.placement.Shards {
		if e.Daemon == r.cfg.Daemon || !shardRelevant(regionKey, e.Shard) {
			continue
		}
		byDaemon[e.Daemon] = append(byDaemon[e.Daemon], e.Shard)
	}
	daemons := make([]string, 0, len(byDaemon))
	peers := make([]*peer, 0, len(byDaemon))
	for name := range byDaemon {
		daemons = append(daemons, name)
	}
	sort.Strings(daemons)
	for _, name := range daemons {
		peers = append(peers, r.peers[name])
	}
	r.mu.Unlock()

	// Fan out: slot 0 is the local evaluation, slots 1..n the peers.
	fanStart := time.Now()
	results := make([]map[string]float64, len(daemons)+1)
	errs := make([]error, len(daemons)+1)
	var wg sync.WaitGroup
	wg.Add(len(daemons) + 1)
	go func() {
		defer wg.Done()
		localStart := time.Now()
		results[0], errs[0] = r.svc.ObjectsInRegion(region, minProb)
		obs.SpanSinceD(trace, "fed_local_scan", r.cfg.Daemon, localStart)
	}()
	args := regionArgs{Region: region.String(), MinProb: minProb}
	for i, p := range peers {
		go func(slot int, p *peer) {
			defer wg.Done()
			if p == nil {
				errs[slot] = fmt.Errorf("%w: no peer", ErrPeerDown)
				return
			}
			var out map[string]float64
			if err := p.callTraced("mw.objectsInRegion", args, &out, trace); err != nil {
				errs[slot] = err
				return
			}
			results[slot] = out
		}(i+1, p)
	}
	wg.Wait()
	// fed_fanout spans the whole scatter phase: its duration minus the
	// slowest peer's region_scan is the federation overhead.
	obs.SpanSinceD(trace, "fed_fanout", r.cfg.Daemon, fanStart)

	if errs[0] != nil {
		return nil, nil, errs[0]
	}
	mergeStart := time.Now()
	merged := results[0]
	if merged == nil {
		merged = make(map[string]float64)
	}
	var unavailable []string
	seen := make(map[string]bool)
	for i, name := range daemons {
		if errs[i+1] != nil {
			for _, key := range byDaemon[name] {
				if !seen[key] {
					seen[key] = true
					unavailable = append(unavailable, key)
				}
			}
			continue
		}
		for id, prob := range results[i+1] {
			if cur, ok := merged[id]; !ok || prob > cur {
				merged[id] = prob
			}
		}
	}
	sort.Strings(unavailable)
	obs.SpanSinceD(trace, "fed_merge", r.cfg.Daemon, mergeStart)
	if len(unavailable) > 0 {
		mFedPartialResults.Inc()
		if strict || r.cfg.Strict {
			return nil, unavailable, fmt.Errorf("%w: %s", ErrUnavailable, strings.Join(unavailable, ", "))
		}
	}
	return merged, unavailable, nil
}

// Query answers the wire form of the federated scan.
func (r *Router) Query(a QueryArgs) (QueryReply, error) {
	region, err := glob.Parse(a.Region)
	if err != nil {
		return QueryReply{}, err
	}
	objs, unavailable, err := r.ObjectsInRegionTraced(region, a.MinProb, a.Strict, a.Trace)
	if err != nil {
		return QueryReply{}, err
	}
	return QueryReply{Objects: objs, Unavailable: unavailable, Partial: len(unavailable) > 0}, nil
}
