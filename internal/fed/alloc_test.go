//go:build !race

package fed

import (
	"testing"
	"time"

	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// TestTracingDisabledFedPathAllocatesNothing locks in the federation
// hot path's share of the obs cost contract: with tracing off every
// reading carries an empty trace ID, so the trace plumbing added to
// forwardBatch/migrateObject — traceOf plus the span records — must
// stay alloc-free no-ops. Excluded under -race because the race
// runtime allocates inside atomics.
func TestTracingDisabledFedPathAllocatesNothing(t *testing.T) {
	was := obs.Enabled()
	obs.SetEnabled(false)
	t.Cleanup(func() { obs.SetEnabled(was) })

	rs := make([]model.Reading, 32)
	idxs := []int{0, 7, 15, 31}
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		trace := traceOf(rs, idxs)
		if trace != "" {
			t.Fatal("untraced readings yielded a trace ID")
		}
		obs.SpanSinceD(trace, "fed_forward", "alpha", start)
		obs.SpanSinceD(trace, "fed_ingest", "beta", start)
	}); n != 0 {
		t.Fatalf("tracing-disabled fed additions allocate %v/op, want 0", n)
	}
}
