package fed_test

import (
	"fmt"
	"testing"
	"time"

	"middlewhere/internal/fed"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// withTracing flips the global tracing flag for one test. The default
// tracer is also reset so span lookups see only this test's traces.
func withTracing(t *testing.T) {
	t.Helper()
	was := obs.Enabled()
	obs.SetEnabled(true)
	obs.DefaultTracer().Reset()
	t.Cleanup(func() { obs.SetEnabled(was) })
}

// spanStages returns "stage@daemon" for every span of a trace.
func spanStages(t *testing.T, id string) []string {
	t.Helper()
	tr, ok := obs.DefaultTracer().Get(id)
	if !ok {
		t.Fatalf("trace %s not in the ring", id)
	}
	out := make([]string, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		out = append(out, sp.Stage+"@"+sp.Daemon)
	}
	return out
}

func hasSpan(stages []string, want string) bool {
	for _, s := range stages {
		if s == want {
			return true
		}
	}
	return false
}

// traced builds a reading carrying an obs trace ID, as the remote
// ingest path stamps them.
func traced(id, object string, floor int, at time.Time) model.Reading {
	r := fReading(object, floor, 5, 5, at)
	r.Trace = id
	return r
}

// TestFedTracePropagation is the tentpole integration check: one trace
// ID begun at the entry daemon spans the owner-side store too. Both
// daemons run in one process sharing the global tracer, so the
// per-span daemon labels are what prove the hop happened.
func TestFedTracePropagation(t *testing.T) {
	withTracing(t)
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha := f.daemons["alpha"]

	id := obs.BeginTrace()
	if id == "" {
		t.Fatal("BeginTrace returned no ID with tracing enabled")
	}
	if err := alpha.svc.IngestBatch([]model.Reading{traced(id, "bob", 1, time.Now())}); err != nil {
		t.Fatal(err)
	}
	if got := rowsFor(f.daemons["beta"], "bob", time.Now().Add(-time.Minute)); got != 1 {
		t.Fatalf("beta rows = %d, want 1 (forwarded)", got)
	}
	stages := spanStages(t, id)
	if !hasSpan(stages, "fed_forward@alpha") {
		t.Errorf("trace %v missing fed_forward@alpha", stages)
	}
	if !hasSpan(stages, "fed_ingest@beta") {
		t.Errorf("trace %v missing fed_ingest@beta (owner-side store)", stages)
	}
}

// TestFedQueryTracePropagation: a traced federated scan records the
// entry daemon's fan-out/merge stages and the peer's region_scan under
// the same trace ID.
func TestFedQueryTracePropagation(t *testing.T) {
	withTracing(t)
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha, beta := f.daemons["alpha"], f.daemons["beta"]
	base := time.Now()
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("ann", 0, 5, 5, base)}); err != nil {
		t.Fatal(err)
	}
	if err := beta.svc.IngestBatch([]model.Reading{fReading("bob", 1, 5, 5, base)}); err != nil {
		t.Fatal(err)
	}

	id := obs.BeginTrace()
	objs, unavailable, err := alpha.fedRouter().ObjectsInRegionTraced(allRegion(), 0.1, true, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(unavailable) != 0 {
		t.Fatalf("unavailable = %v", unavailable)
	}
	if _, ok := objs["bob"]; !ok {
		t.Fatalf("federated scan missed bob: %v", objs)
	}
	stages := spanStages(t, id)
	for _, want := range []string{
		"fed_local_scan@alpha", "fed_fanout@alpha", "fed_merge@alpha", "region_scan@beta",
	} {
		if !hasSpan(stages, want) {
			t.Errorf("trace %v missing %s", stages, want)
		}
	}
}

// TestFedTracePropagationAcrossRestart: after the owner daemon crashes
// and rejoins (new port, bumped placement version), a freshly traced
// ingest still produces one cross-daemon trace.
func TestFedTracePropagationAcrossRestart(t *testing.T) {
	withTracing(t)
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha, beta := f.daemons["alpha"], f.daemons["beta"]

	f.cluster.Kill("beta")
	if err := f.cluster.Restart("beta"); err != nil {
		t.Fatal(err)
	}
	f.awaitPlacement(2)

	// The entry daemon may still hold the pre-restart address for a
	// refresh interval; retry with fresh traces until a forward lands
	// (failed attempts legitimately fall back to local storage).
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		obj := fmt.Sprintf("bob-%d", i)
		id := obs.BeginTrace()
		if err := alpha.svc.IngestBatch([]model.Reading{traced(id, obj, 1, time.Now())}); err != nil {
			t.Fatal(err)
		}
		if rowsFor(beta, obj, time.Now().Add(-time.Minute)) == 1 {
			stages := spanStages(t, id)
			if !hasSpan(stages, "fed_forward@alpha") || !hasSpan(stages, "fed_ingest@beta") {
				t.Fatalf("post-restart trace %v missing forward/ingest hops", stages)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no forward reached the restarted owner")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPeerStateCounters: the health surface's per-peer call/failure/
// retry/breaker-open counters move with traffic.
func TestPeerStateCounters(t *testing.T) {
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha := f.daemons["alpha"]
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("bob", 1, 5, 5, time.Now())}); err != nil {
		t.Fatal(err)
	}
	peerState := func(name string) fed.PeerState {
		t.Helper()
		for _, p := range alpha.fedRouter().PeerStates() {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("no peer state for %s", name)
		return fed.PeerState{}
	}
	before := peerState("beta")
	if before.Calls == 0 {
		t.Fatalf("after a forward: %+v, want Calls>0", before)
	}

	f.cluster.Kill("beta")
	for i := 0; i < 3; i++ {
		_ = alpha.svc.IngestBatch([]model.Reading{fReading(fmt.Sprintf("b%d", i), 1, 5, 5, time.Now())})
	}
	st := peerState("beta")
	if st.Failures <= before.Failures || st.Retries <= before.Retries {
		t.Errorf("after killing the owner: %+v (was %+v), want Failures and Retries to grow", st, before)
	}
	if st.BreakerOpens == 0 {
		t.Errorf("breaker never opened: %+v", st)
	}
}

// TestFedMetricNamesStable pins the fed_* registry names the cluster
// aggregator and dashboards key on; a rename must fail here first.
func TestFedMetricNamesStable(t *testing.T) {
	if got := fed.PeerMetricName("fed_peer_calls_total", "cs-2"); got != `fed_peer_calls_total{peer="cs-2"}` {
		t.Fatalf("PeerMetricName = %q", got)
	}
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
	})
	alpha := f.daemons["alpha"]
	if err := alpha.svc.IngestBatch([]model.Reading{fReading("bob", 1, 5, 5, time.Now())}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := alpha.fedRouter().ObjectsInRegion(allRegion(), 0.1, false); err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	names := make(map[string]bool)
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, want := range []string{
		"fed_queries_total",
		"fed_partial_results_total",
		"fed_migrations_total",
		"fed_migration_replays_total",
		"fed_forwarded_readings_total",
		"fed_ingest_fallback_local_total",
		"fed_placement_refreshes_total",
		"fed_placement_version",
		`fed_peer_calls_total{peer="beta"}`,
		`fed_peer_failures_total{peer="beta"}`,
		`fed_peer_retries_total{peer="beta"}`,
		`fed_breaker_opens_total{peer="beta"}`,
		`fed_breaker_state{peer="beta"}`,
	} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}
