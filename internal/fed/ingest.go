package fed

import (
	"fmt"
	"sort"
	"time"

	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// traceOf picks the frame-level trace ID for a forwarded batch: the
// first traced reading among the indexed rows. With tracing off every
// reading carries an empty ID and this returns "" without allocating —
// the fed hot path stays zero-alloc (pinned by the alloc guard test).
func traceOf(rs []model.Reading, idxs []int) string {
	for _, i := range idxs {
		if rs[i].Trace != "" {
			return rs[i].Trace
		}
	}
	return ""
}

// RouteReadings implements core.IngestRouter: readings whose floor
// shard is leased to a peer daemon are forwarded to it (after handing
// over any rows this daemon still holds for their objects), and the
// rest — locally owned floors, unleased floors, and anything a down
// peer could not take — stay local. Nothing is ever dropped: the
// degraded fallback stores remotely-owned readings locally, and the
// accumulated rows migrate to the owner on a later batch once it is
// reachable again.
func (r *Router) RouteReadings(rs []model.Reading) ([]int, error) {
	// Group indices by owning peer; everything else is local.
	localIdx := make([]int, 0, len(rs))
	type fwd struct {
		peer *peer
		idxs []int
	}
	byPeer := make(map[string]*fwd)
	for i := range rs {
		key := spatialdb.ShardKeyForGLOB(rs[i].Location)
		daemon, p := r.ownerOf(key)
		if p == nil || daemon == r.cfg.Daemon {
			localIdx = append(localIdx, i)
			continue
		}
		f, ok := byPeer[daemon]
		if !ok {
			f = &fwd{peer: p}
			byPeer[daemon] = f
		}
		f.idxs = append(f.idxs, i)
	}
	if len(byPeer) == 0 {
		return localIdx, nil
	}

	daemons := make([]string, 0, len(byPeer))
	for name := range byPeer {
		daemons = append(daemons, name)
	}
	sort.Strings(daemons)
	for _, name := range daemons {
		f := byPeer[name]
		fellBack := r.forwardBatch(name, f.peer, rs, f.idxs, &localIdx)
		if fellBack {
			mFedFallbackLocal.Inc()
		}
	}
	sort.Ints(localIdx)
	return localIdx, nil
}

// forwardBatch hands the indexed readings to their owner: first the
// prepare/commit migration of any objects still resident here, then
// the forwarded ingest. On any transport failure the indices are
// appended to localIdx (degraded fallback) and fellBack reports it.
func (r *Router) forwardBatch(daemon string, p *peer, rs []model.Reading, idxs []int, localIdx *[]int) (fellBack bool) {
	trace := traceOf(rs, idxs)
	// Hand over objects this daemon still holds rows for, before their
	// new readings land at the owner — the epoch must travel first or
	// the owner's fused-location cache could serve stale state.
	seen := make(map[string]bool, 4)
	for _, i := range idxs {
		id := rs[i].MObjectID
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		if _, resident := r.svc.DB().ObjectShardKey(id); !resident {
			continue
		}
		if err := r.migrateObject(id, p, trace); err != nil {
			// Owner unreachable: keep everything local this round.
			*localIdx = append(*localIdx, idxs...)
			return true
		}
	}
	args := IngestArgs{Readings: make([]ReadingWire, 0, len(idxs)), From: r.cfg.Daemon, Trace: trace}
	for _, i := range idxs {
		args.Readings = append(args.Readings, ToWire(rs[i]))
	}
	fwdStart := time.Now()
	var rep IngestReply
	if err := p.callTraced(MethodIngest, args, &rep, trace); err != nil {
		obs.SpanSinceD(trace, "fed_forward", r.cfg.Daemon, fwdStart)
		*localIdx = append(*localIdx, idxs...)
		return true
	}
	// fed_forward covers the entry daemon's whole peer call — dial,
	// retries, and the owner's handling — so the gap between it and the
	// owner-side fed_ingest span is pure network + retry wait.
	obs.SpanSinceD(trace, "fed_forward", r.cfg.Daemon, fwdStart)
	mFedForwarded.Add(uint64(rep.Accepted))
	// Readings the owner rejected (e.g. a sensor registered only here)
	// fall back to local storage rather than vanishing.
	for _, ri := range rep.Rejected {
		if ri >= 0 && ri < len(idxs) {
			*localIdx = append(*localIdx, idxs[ri])
			fellBack = true
		}
	}
	return fellBack
}

// migrateObject runs the prepare/commit handoff for one object: export
// rows+epoch, send mw.migrate, and drop the local copy only when the
// destination acked exactly what was exported. Readings that land
// between export and ack keep the local copy alive (the epoch check in
// DropObject refuses) and the loop hands off again. The source keeps
// serving queries from its copy the whole time.
func (r *Router) migrateObject(id string, p *peer, trace string) error {
	const maxHandoffs = 4
	migStart := time.Now()
	for attempt := 0; attempt < maxHandoffs; attempt++ {
		rows, epoch, ok := r.svc.DB().ExportObject(id)
		if !ok {
			return nil // someone else completed the handoff
		}
		args := MigrateArgs{Object: id, Epoch: epoch, Readings: ToWireBatch(rows), From: r.cfg.Daemon, Trace: trace}
		var rep MigrateReply
		if err := p.callTraced(MethodMigrate, args, &rep, trace); err != nil {
			obs.SpanSinceD(trace, "fed_migrate", r.cfg.Daemon, migStart)
			return err
		}
		if !rep.Applied {
			mFedMigrateReplays.Inc()
		}
		// Commit: the destination durably covers the exported epoch
		// (applied or recognized replay). Drop only if nothing new
		// landed locally since the export.
		if r.svc.DB().DropObject(id, epoch) {
			mFedMigrations.Inc()
			obs.SpanSinceD(trace, "fed_migrate", r.cfg.Daemon, migStart)
			return nil
		}
		if _, resident := r.svc.DB().ObjectShardKey(id); !resident {
			obs.SpanSinceD(trace, "fed_migrate", r.cfg.Daemon, migStart)
			return nil // dropped concurrently
		}
		// New rows arrived mid-handoff; export and send again.
	}
	return fmt.Errorf("fed: object %s kept receiving writes during handoff", id)
}
