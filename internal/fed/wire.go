package fed

import (
	"fmt"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// Wire types for the federation RPCs. The fed package owns both ends
// of every frame it speaks — the router sends these structs and the
// remote server's handlers unmarshal into them — so the two sides can
// never drift. All federation methods are plain JSON frames: the
// mwrpc binary codec carries unknown method names via its named-method
// escape, so no codec table changes are needed.
const (
	// MethodMigrate is the prepare half of the object handoff: the
	// destination merges the carried rows idempotently and replies; the
	// source commits (drops its copy) only after the ack.
	MethodMigrate = "mw.migrate"
	// MethodIngest is federated ingest: a batch forwarded to the
	// daemon owning its floor. The receiver stores it strictly locally
	// (never re-forwards), so disagreeing placement maps cannot bounce
	// a reading between daemons.
	MethodIngest = "mw.fedIngest"
	// MethodObjectsInRegion is the federated region scan: fan-out
	// across the placement map with an explicit Unavailable list.
	MethodObjectsInRegion = "mw.fedObjectsInRegion"
	// MethodShards reports placement, local shards, and peer state.
	MethodShards = "mw.shards"
	// MethodHello is the no-op liveness probe (also used by the
	// resilient sink's breaker half-open check).
	MethodHello = "mw.hello"
)

// ReadingWire is the federation wire form of a stored reading. Unlike
// the ingest DTO it carries the resolved universe-frame region and the
// movement flag: migrated rows bypass re-resolution on import.
type ReadingWire struct {
	SensorID        string  `json:"sensorId"`
	SensorType      string  `json:"sensorType,omitempty"`
	MObjectID       string  `json:"mobjectId"`
	Location        string  `json:"location"`
	DetectionRadius float64 `json:"detectionRadius,omitempty"`
	// Region is the resolved MBR: [minX, minY, maxX, maxY].
	Region [4]float64 `json:"region"`
	// Time is RFC 3339 with nanoseconds.
	Time   string `json:"time"`
	Moving bool   `json:"moving,omitempty"`
	// Trace is the obs trace ID stamped at the entry daemon's ingest
	// (empty when tracing was off). Carrying it per reading keeps every
	// reading's pipeline attributable across the daemon hop — a batch
	// can mix readings from different traces.
	Trace string `json:"trace,omitempty"`
}

// ToWire converts a stored reading for a migration frame.
func ToWire(r model.Reading) ReadingWire {
	return ReadingWire{
		SensorID:        r.SensorID,
		SensorType:      r.SensorType,
		MObjectID:       r.MObjectID,
		Location:        r.Location.String(),
		DetectionRadius: r.DetectionRadius,
		Region:          [4]float64{r.Region.Min.X, r.Region.Min.Y, r.Region.Max.X, r.Region.Max.Y},
		Time:            r.Time.Format(time.RFC3339Nano),
		Moving:          r.Moving,
		Trace:           r.Trace,
	}
}

// ToReading converts a wire reading back to the model form.
func (w ReadingWire) ToReading() (model.Reading, error) {
	loc, err := glob.Parse(w.Location)
	if err != nil {
		return model.Reading{}, fmt.Errorf("fed: reading location: %w", err)
	}
	at, err := time.Parse(time.RFC3339Nano, w.Time)
	if err != nil {
		return model.Reading{}, fmt.Errorf("fed: reading time: %w", err)
	}
	return model.Reading{
		SensorID:        w.SensorID,
		SensorType:      w.SensorType,
		MObjectID:       w.MObjectID,
		Location:        loc,
		DetectionRadius: w.DetectionRadius,
		Region:          geom.Rect{Min: geom.Point{X: w.Region[0], Y: w.Region[1]}, Max: geom.Point{X: w.Region[2], Y: w.Region[3]}},
		Time:            at,
		Moving:          w.Moving,
		Trace:           w.Trace,
	}, nil
}

// ToWireBatch converts a row set for the wire.
func ToWireBatch(rs []model.Reading) []ReadingWire {
	out := make([]ReadingWire, 0, len(rs))
	for _, r := range rs {
		out = append(out, ToWire(r))
	}
	return out
}

// FromWireBatch converts a wire row set back, dropping rows that fail
// to decode (reported in the returned error count).
func FromWireBatch(ws []ReadingWire) ([]model.Reading, error) {
	out := make([]model.Reading, 0, len(ws))
	for i, w := range ws {
		r, err := w.ToReading()
		if err != nil {
			return out, fmt.Errorf("fed: reading %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// MigrateArgs is the prepare frame of the object handoff.
type MigrateArgs struct {
	// Object is the mobile object being handed off.
	Object string `json:"object"`
	// Epoch is the source's reading epoch for the object; the
	// destination's epoch ends up strictly greater.
	Epoch uint64 `json:"epoch"`
	// Readings is the object's full stored row set at the source.
	Readings []ReadingWire `json:"readings"`
	// From names the source daemon (metrics and logs).
	From string `json:"from,omitempty"`
	// Trace is the obs trace ID of the operation that provoked the
	// handoff, so the migration hop shows up in that trace's span tree.
	// It also rides the mwrpc frame header; the body copy keeps the
	// wire format self-describing in both codecs.
	Trace string `json:"trace,omitempty"`
}

// MigrateReply acks the prepare. Any successful reply — applied or
// recognized replay — means the destination durably covers the
// payload, so the source may commit (drop its copy).
type MigrateReply struct {
	// Applied reports whether the payload changed the destination
	// (false for a recognized replay).
	Applied bool `json:"applied"`
	// Epoch is the destination's epoch for the object after the call.
	Epoch uint64 `json:"epoch"`
}

// IngestArgs is a forwarded ingest batch.
type IngestArgs struct {
	Readings []ReadingWire `json:"readings"`
	From     string        `json:"from,omitempty"`
	// Trace is the frame-level obs trace ID (the first traced reading
	// of the batch); per-reading IDs travel on the readings themselves.
	Trace string `json:"trace,omitempty"`
}

// IngestReply acks a forwarded batch.
type IngestReply struct {
	// Accepted is how many readings were stored.
	Accepted int `json:"accepted"`
	// Rejected lists frame indices that failed validation; they were
	// not stored and retrying them would be pointless.
	Rejected []int `json:"rejected,omitempty"`
}

// QueryArgs asks for a federated region scan.
type QueryArgs struct {
	Region  string  `json:"region"`
	MinProb float64 `json:"minProb,omitempty"`
	// Strict makes a down shard an error instead of a partial result.
	Strict bool `json:"strict,omitempty"`
	// Trace is the obs trace ID the scan runs under (empty untraced).
	Trace string `json:"trace,omitempty"`
}

// QueryReply is a federated region scan's result: either complete, or
// explicitly partial with the unavailable shards named.
type QueryReply struct {
	Objects map[string]float64 `json:"objects"`
	// Unavailable lists the shard keys whose owning daemon could not
	// be reached, sorted. Empty means the result is complete.
	Unavailable []string `json:"unavailable,omitempty"`
	// Partial mirrors len(Unavailable) > 0 for cheap checks.
	Partial bool `json:"partial,omitempty"`
}

// PeerState describes one peer as seen from a daemon's router.
type PeerState struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Breaker is "closed", "open", or "half-open".
	Breaker string `json:"breaker"`
	// ConsecFails counts consecutive call failures.
	ConsecFails int `json:"consecFails,omitempty"`
	// Calls, Failures, and Retries are the peer's lifetime call
	// counters (the fed_peer_* metrics), and BreakerOpens how many
	// times its breaker opened — surfaced here so mwctl health -v can
	// show them without scraping /metrics.
	Calls        uint64 `json:"calls,omitempty"`
	Failures     uint64 `json:"failures,omitempty"`
	Retries      uint64 `json:"retries,omitempty"`
	BreakerOpens uint64 `json:"breakerOpens,omitempty"`
	// Shards lists the shard keys the placement map assigns to the
	// peer, sorted.
	Shards []string `json:"shards,omitempty"`
	// LastErr is the most recent failure, if any.
	LastErr string `json:"lastErr,omitempty"`
}

// PlacementWire is one placement lease on the wire (mirrors the
// registry entry without the time type).
type PlacementWire struct {
	Shard   string `json:"shard"`
	Daemon  string `json:"daemon"`
	Addr    string `json:"addr"`
	Version uint64 `json:"version"`
}

// ShardsReply answers mw.shards: where every floor lives and how this
// daemon sees its peers.
type ShardsReply struct {
	// Daemon is the answering daemon's federation name (empty for a
	// non-federated server).
	Daemon string `json:"daemon,omitempty"`
	// PlacementVersion is the cached placement-map version.
	PlacementVersion uint64 `json:"placementVersion,omitempty"`
	// Placement is the cached placement map, sorted by shard.
	Placement []PlacementWire `json:"placement,omitempty"`
	// Local lists the shard keys materialized in the local database.
	Local []string `json:"local,omitempty"`
	// Peers is the per-peer breaker/retry state, sorted by name.
	Peers []PeerState `json:"peers,omitempty"`
}
