// Package fed federates floor shards across daemons. Each daemon runs
// the full Location Service for the floors it owns; a shard-placement
// map leased through internal/registry says which daemon owns which
// floor key, and the Router fans queries out across the map, forwards
// ingest to owners, and hands objects off between daemons with a
// crash-safe prepare/commit migration that carries the reading epoch.
//
// Failure semantics: every peer call runs under a per-peer timeout,
// capped-backoff retry, and a per-peer circuit breaker. When a peer is
// down, federated queries return partial results tagged with the
// explicit Unavailable shard list (or an error in strict mode), and
// ingest falls back to storing locally so no reading is ever dropped —
// the accumulated rows migrate to the owner when it comes back.
package fed

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/obs"
	"middlewhere/internal/registry"
)

// Router-level metrics (per-peer counters are created with the peer).
var (
	mFedQueries        = obs.Default().Counter("fed_queries_total")
	mFedPartialResults = obs.Default().Counter("fed_partial_results_total")
	mFedMigrations     = obs.Default().Counter("fed_migrations_total")
	mFedMigrateReplays = obs.Default().Counter("fed_migration_replays_total")
	mFedForwarded      = obs.Default().Counter("fed_forwarded_readings_total")
	mFedFallbackLocal  = obs.Default().Counter("fed_ingest_fallback_local_total")
	mFedRefreshes      = obs.Default().Counter("fed_placement_refreshes_total")
	mFedPlaceVersion   = obs.Default().Gauge("fed_placement_version")
)

// ErrUnavailable reports a strict-mode federated query that could not
// reach every shard.
var ErrUnavailable = errors.New("fed: shards unavailable")

// Config parameterizes a Router.
type Config struct {
	// Daemon is this daemon's federation name (must be unique).
	Daemon string
	// Addr is the daemon's advertised mwrpc address.
	Addr string
	// RegistryAddr is the shard-placement registry.
	RegistryAddr string
	// Floors are the shard keys this daemon owns and leases.
	Floors []string
	// LeaseTTL is the placement lease duration (default 15s).
	LeaseTTL time.Duration
	// Heartbeat is the lease renewal period (default LeaseTTL/3).
	Heartbeat time.Duration
	// RefreshEvery is the placement cache poll period (default 2s).
	RefreshEvery time.Duration
	// Strict makes federated queries error on unavailable shards by
	// default (callers can override per query).
	Strict bool

	// Per-peer call policy.
	DialTimeout time.Duration // default 2s
	CallTimeout time.Duration // default 5s
	// Attempts is calls per operation including the first (default 3).
	Attempts    int
	BackoffBase time.Duration // default 25ms
	BackoffMax  time.Duration // default 500ms
	// BreakerThreshold is consecutive failures before the breaker
	// opens (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// admitting a half-open trial (default 2s).
	BreakerCooldown time.Duration

	// Clock and sleep are injectable for tests; nil uses real time.
	Clock func() time.Time
	Sleep func(time.Duration)
}

func (c *Config) fill() error {
	if c.Daemon == "" || c.Addr == "" || c.RegistryAddr == "" {
		return fmt.Errorf("fed: config needs Daemon, Addr, and RegistryAddr")
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return nil
}

// Router is a daemon's view of the federation: the cached placement
// map, one peer per remote daemon, and the query/ingest/migration
// logic on top. It implements core.IngestRouter.
type Router struct {
	cfg Config
	svc *core.Service

	reg *registry.Client

	mu        sync.Mutex
	placement registry.Placement
	peers     map[string]*peer // by daemon name

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New builds a Router: it dials the registry, leases the configured
// floors, fetches the placement map, installs itself as the service's
// ingest router, and starts the heartbeat/refresh loop. Close releases
// the lease and stops the loop.
func New(svc *core.Service, cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	reg, err := registry.Dial(cfg.RegistryAddr)
	if err != nil {
		return nil, fmt.Errorf("fed: registry dial: %w", err)
	}
	r := &Router{
		cfg:   cfg,
		svc:   svc,
		reg:   reg,
		peers: make(map[string]*peer),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if len(cfg.Floors) > 0 {
		if _, err := reg.PlaceShards(cfg.Daemon, cfg.Addr, cfg.Floors, cfg.LeaseTTL); err != nil {
			reg.Close()
			return nil, fmt.Errorf("fed: lease floors: %w", err)
		}
	}
	if err := r.RefreshPlacement(); err != nil {
		reg.Close()
		return nil, fmt.Errorf("fed: placement fetch: %w", err)
	}
	svc.SetIngestRouter(r)
	go r.loop()
	return r, nil
}

// Close stops the heartbeat loop, releases the placement lease, and
// drops peer connections — the orderly shutdown.
func (r *Router) Close() { r.shutdown(true) }

// Kill tears the router down without releasing the placement lease —
// the crash path chaos tests inject: the daemon vanishes mid-lease and
// the registry's TTL sweep (or the daemon's own re-lease on restart)
// cleans up. Peers keep routing to the dead address until then, which
// is exactly the degraded window the failure semantics cover.
func (r *Router) Kill() { r.shutdown(false) }

func (r *Router) shutdown(unplace bool) {
	r.closeOnce.Do(func() {
		close(r.stop)
		<-r.done
		r.svc.SetIngestRouter(nil)
		if unplace && len(r.cfg.Floors) > 0 {
			_ = r.reg.UnplaceDaemon(r.cfg.Daemon)
		}
		r.reg.Close()
		r.mu.Lock()
		peers := make([]*peer, 0, len(r.peers))
		for _, p := range r.peers {
			peers = append(peers, p)
		}
		r.mu.Unlock()
		for _, p := range peers {
			p.close()
		}
	})
}

// Daemon returns this daemon's federation name.
func (r *Router) Daemon() string { return r.cfg.Daemon }

// loop heartbeats the lease and refreshes the placement cache.
func (r *Router) loop() {
	defer close(r.done)
	hb := time.NewTicker(r.cfg.Heartbeat)
	defer hb.Stop()
	rf := time.NewTicker(r.cfg.RefreshEvery)
	defer rf.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-hb.C:
			if len(r.cfg.Floors) > 0 {
				_, _ = r.reg.PlaceShards(r.cfg.Daemon, r.cfg.Addr, r.cfg.Floors, r.cfg.LeaseTTL)
			}
		case <-rf.C:
			_ = r.RefreshPlacement()
		}
	}
}

// RefreshPlacement re-fetches the placement map and reconciles the
// peer set: new daemons get peers, restarted daemons (changed addr)
// get reconnected, departed daemons keep their peer (the breaker
// idles) until they return.
func (r *Router) RefreshPlacement() error {
	p, err := r.reg.Placement()
	if err != nil {
		return err
	}
	mFedRefreshes.Inc()
	mFedPlaceVersion.Set(float64(p.Version))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placement = p
	for _, e := range p.Shards {
		if e.Daemon == r.cfg.Daemon {
			continue
		}
		pe, ok := r.peers[e.Daemon]
		if !ok {
			pe = newPeer(e.Daemon, r.cfg.Daemon, peerConfig{
				dialTimeout: r.cfg.DialTimeout,
				callTimeout: r.cfg.CallTimeout,
				attempts:    r.cfg.Attempts,
				backoffBase: r.cfg.BackoffBase,
				backoffMax:  r.cfg.BackoffMax,
				threshold:   r.cfg.BreakerThreshold,
				cooldown:    r.cfg.BreakerCooldown,
				now:         r.cfg.Clock,
				sleep:       r.cfg.Sleep,
			})
			r.peers[e.Daemon] = pe
		}
		pe.setAddr(e.Addr)
	}
	return nil
}

// Placement returns the cached placement map.
func (r *Router) Placement() registry.Placement {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.placement
}

// ownerOf resolves a shard key to its owning daemon and peer (nil
// peer means this daemon, or nobody holds a lease).
func (r *Router) ownerOf(shardKey string) (daemon string, p *peer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.placement.Shards {
		if e.Shard == shardKey {
			if e.Daemon == r.cfg.Daemon {
				return e.Daemon, nil
			}
			return e.Daemon, r.peers[e.Daemon]
		}
	}
	return "", nil
}

// shardsOwnedBy returns the shard keys the cached placement assigns
// to a daemon, sorted.
func (r *Router) shardsOwnedBy(daemon string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, e := range r.placement.Shards {
		if e.Daemon == daemon {
			out = append(out, e.Shard)
		}
	}
	sort.Strings(out)
	return out
}

// PeerStates reports every peer's breaker/retry state with its placed
// shards, sorted by name.
func (r *Router) PeerStates() []PeerState {
	r.mu.Lock()
	names := make([]string, 0, len(r.peers))
	for name := range r.peers {
		names = append(names, name)
	}
	peers := make(map[string]*peer, len(r.peers))
	for name, p := range r.peers {
		peers[name] = p
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]PeerState, 0, len(names))
	for _, name := range names {
		st, fails, addr, lastErr := peers[name].state()
		calls, failures, retries, opens := peers[name].counters()
		out = append(out, PeerState{
			Name:         name,
			Addr:         addr,
			Breaker:      st,
			ConsecFails:  fails,
			Calls:        calls,
			Failures:     failures,
			Retries:      retries,
			BreakerOpens: opens,
			Shards:       r.shardsOwnedBy(name),
			LastErr:      lastErr,
		})
	}
	return out
}

// Shards assembles the mw.shards reply: placement, local shard keys,
// and peer state.
func (r *Router) Shards() ShardsReply {
	p := r.Placement()
	rep := ShardsReply{
		Daemon:           r.cfg.Daemon,
		PlacementVersion: p.Version,
		Local:            r.svc.DB().LocalShardKeys(),
		Peers:            r.PeerStates(),
	}
	for _, e := range p.Shards {
		rep.Placement = append(rep.Placement, PlacementWire{
			Shard: e.Shard, Daemon: e.Daemon, Addr: e.Addr, Version: e.Version,
		})
	}
	return rep
}

// shardRelevant reports whether a shard key can hold objects matching
// a region key (either is a path prefix of the other; the root region
// matches everything).
func shardRelevant(regionKey, shardKey string) bool {
	if regionKey == "(root)" {
		// A bare-coordinate region spans the whole universe frame.
		return true
	}
	return shardKey == regionKey ||
		strings.HasPrefix(shardKey, regionKey+"/") ||
		strings.HasPrefix(regionKey, shardKey+"/")
}
