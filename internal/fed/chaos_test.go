package fed_test

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"middlewhere/internal/model"
)

// rowKey identifies one stored reading for the loss/duplication audit
// — the same identity the migration dedup uses.
func rowKey(r model.Reading) string {
	return fmt.Sprintf("%s|%d|%s", r.SensorID, r.Time.UnixNano(), r.Location.String())
}

// TestChaosFederationKillRestart is the multi-daemon chaos suite: a
// three-daemon federation ingests continuously while one daemon is
// killed and restarted — mid-migration and mid-query — and the run
// must end with every reading stored exactly once on its floor's
// owner, per-object epochs that never regressed, and every federated
// query along the way either complete or explicitly partial.
func TestChaosFederationKillRestart(t *testing.T) {
	f := startFederation(t, map[string][]string{
		"alpha": {"CS/F0"},
		"beta":  {"CS/F1"},
		"gamma": {"CS/F2"},
	})
	names := []string{"alpha", "beta", "gamma"}
	daemons := make([]*fedDaemon, len(names))
	for i, n := range names {
		daemons[i] = f.daemons[n]
	}
	const objects = 9
	objName := func(i int) string { return fmt.Sprintf("obj-%d", i) }
	homeFloor := func(i int) int { return i % 3 }

	base := time.Now()
	since := base.Add(-time.Minute)
	ingested := make(map[string]map[string]bool) // object -> rowKey set
	for i := 0; i < objects; i++ {
		ingested[objName(i)] = make(map[string]bool)
	}

	// Background querier: every federated scan must be complete or
	// explicitly partial — Partial mirrors Unavailable, the list is
	// sorted, and a scan never errors in non-strict mode.
	var stopQueries atomic.Bool
	var queries atomic.Int64
	var partials atomic.Int64
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for !stopQueries.Load() {
			_, unavailable, err := daemons[0].fedRouter().ObjectsInRegion(allRegion(), 0, false)
			if err != nil {
				t.Errorf("federated query errored mid-chaos: %v", err)
				return
			}
			if !sort.StringsAreSorted(unavailable) {
				t.Errorf("unavailable list not sorted: %v", unavailable)
			}
			queries.Add(1)
			if len(unavailable) > 0 {
				partials.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// ingestRound pushes one fresh reading per object through an entry
	// daemon chosen round-robin (skipping dead daemons — a real adapter
	// fails over), recording what was ingested.
	round := 0
	ingestRound := func() {
		t.Helper()
		for i := 0; i < objects; i++ {
			entry := daemons[(i+round)%len(daemons)]
			if !f.cluster.Running(entry.name) {
				entry = daemons[0] // alpha is never killed
			}
			r := fReading(objName(i), homeFloor(i), 3+float64(i%4), 4, base.Add(time.Duration(round)*time.Second+time.Duration(i)*10*time.Millisecond))
			if err := entry.svc.IngestBatch([]model.Reading{r}); err != nil {
				t.Fatalf("round %d ingest via %s: %v", round, entry.name, err)
			}
			ingested[objName(i)][rowKey(r)] = true
		}
		round++
	}

	// maxEpoch samples an object's highest epoch across the cluster;
	// the migration protocol promises it never decreases.
	maxEpoch := func(obj string) uint64 {
		var m uint64
		for _, d := range daemons {
			if e := d.svc.DB().ReadingEpoch(obj); e > m {
				m = e
			}
		}
		return m
	}
	lastEpoch := make(map[string]uint64)
	checkEpochs := func(stage string) {
		t.Helper()
		for i := 0; i < objects; i++ {
			obj := objName(i)
			e := maxEpoch(obj)
			if e < lastEpoch[obj] {
				t.Errorf("%s: epoch for %s regressed %d -> %d", stage, obj, lastEpoch[obj], e)
			}
			lastEpoch[obj] = e
		}
	}

	// Phase 1: two healthy rounds.
	ingestRound()
	ingestRound()
	checkEpochs("healthy")

	// Phase 2: kill gamma mid-round — the round's forwards and any
	// in-flight migrations race the crash; readings degrade to local
	// storage instead of vanishing.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(3 * time.Millisecond)
		f.cluster.Kill("gamma")
	}()
	ingestRound()
	<-killDone
	ingestRound() // a full round against the dead daemon
	checkEpochs("gamma down")

	// Phase 3: restart gamma mid-round — recovery also races traffic.
	restartDone := make(chan struct{})
	go func() {
		defer close(restartDone)
		time.Sleep(3 * time.Millisecond)
		if err := f.cluster.Restart("gamma"); err != nil {
			t.Errorf("restart gamma: %v", err)
		}
	}()
	ingestRound()
	<-restartDone
	f.awaitPlacement(3)
	checkEpochs("gamma back")

	// Phase 4: kill/restart once more while rounds keep flowing, to
	// catch a migration of phase-2 leftovers mid-handoff.
	go func() { time.Sleep(2 * time.Millisecond); f.cluster.Kill("gamma") }()
	ingestRound()
	if err := f.cluster.Restart("gamma"); err != nil {
		t.Fatal(err)
	}
	f.awaitPlacement(3)
	ingestRound()
	checkEpochs("second cycle")

	// Convergence: with everyone healthy, push one reading per object
	// through EVERY daemon — each non-owner holding degraded leftovers
	// hands them off on its own forward path. Retry until the cluster
	// settles (breakers may need a cooldown to close).
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, entry := range daemons {
			for i := 0; i < objects; i++ {
				r := fReading(objName(i), homeFloor(i), 3+float64(i%4), 5, base.Add(time.Duration(round)*time.Second+time.Duration(i)*10*time.Millisecond))
				if err := entry.svc.IngestBatch([]model.Reading{r}); err != nil {
					t.Fatalf("convergence ingest via %s: %v", entry.name, err)
				}
				ingested[objName(i)][rowKey(r)] = true
			}
			round++
		}
		settled := true
		for i := 0; i < objects && settled; i++ {
			owner := daemons[homeFloor(i)]
			for _, d := range daemons {
				if d != owner && rowsFor(d, objName(i), since) > 0 {
					settled = false
					break
				}
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < objects; i++ {
				for _, d := range daemons {
					if n := rowsFor(d, objName(i), since); n > 0 {
						t.Logf("%s holds %d rows of %s", d.name, n, objName(i))
					}
				}
			}
			t.Fatal("cluster never converged: objects still resident off their owners")
		}
		time.Sleep(20 * time.Millisecond)
	}
	checkEpochs("converged")

	stopQueries.Store(true)
	qwg.Wait()
	if queries.Load() == 0 {
		t.Error("query goroutine never completed a scan")
	}
	if partials.Load() == 0 {
		t.Error("chaos run never observed an explicitly-partial result — the kill windows did not bite")
	}

	// The audit: every ingested reading stored exactly once, on the
	// owner, with nothing invented.
	for i := 0; i < objects; i++ {
		obj := objName(i)
		owner := daemons[homeFloor(i)]
		rows := owner.svc.DB().ReadingsFor(obj, since)
		seen := make(map[string]bool, len(rows))
		for _, r := range rows {
			k := rowKey(r)
			if seen[k] {
				t.Errorf("%s: duplicated row %s on owner %s", obj, k, owner.name)
			}
			seen[k] = true
			if !ingested[obj][k] {
				t.Errorf("%s: owner %s holds a row that was never ingested: %s", obj, owner.name, k)
			}
		}
		for k := range ingested[obj] {
			if !seen[k] {
				t.Errorf("%s: reading lost in the chaos: %s", obj, k)
			}
		}
		for _, d := range daemons {
			if d != owner {
				if n := rowsFor(d, obj, since); n != 0 {
					t.Errorf("%s: %d stray rows on non-owner %s after convergence", obj, n, d.name)
				}
			}
		}
	}

	// The final scan is complete and sees every object.
	objs, unavailable, err := daemons[0].fedRouter().ObjectsInRegion(allRegion(), 0, false)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	if len(unavailable) != 0 {
		t.Fatalf("final scan partial: %v", unavailable)
	}
	for i := 0; i < objects; i++ {
		if _, ok := objs[objName(i)]; !ok {
			t.Errorf("final scan missing %s", objName(i))
		}
	}
}
