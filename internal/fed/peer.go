package fed

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
)

// ErrPeerDown reports that a peer could not be reached: its circuit
// breaker is open, or every attempt of a call failed.
var ErrPeerDown = errors.New("fed: peer unavailable")

// PeerMetricName returns the registry name of a per-peer metric with a
// Prometheus-style peer label, e.g. fed_peer_calls_total{peer="cs-2"}.
func PeerMetricName(base, peer string) string {
	return base + `{peer="` + peer + `"}`
}

// breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// peer is one remote daemon as seen from this router: a lazily dialed
// mwrpc client, a circuit breaker, and capped-backoff retry. All calls
// go through call(), which owns the failure accounting.
type peer struct {
	name string
	// self is the local daemon's federation name — the label stamped on
	// spans this peer records (the waiting happens here, not remotely).
	self string
	cfg  peerConfig

	mu          sync.Mutex
	addr        string
	cli         *mwrpc.Client
	consecFails int
	openUntil   time.Time
	// probing marks the single half-open trial in flight, so a burst
	// of callers cannot all rush an unhealthy peer at once.
	probing bool
	lastErr error

	mCalls   *obs.Counter
	mFails   *obs.Counter
	mRetries *obs.Counter
	mOpens   *obs.Counter
	mState   *obs.Gauge
}

// peerConfig is the call policy every peer of a router shares.
type peerConfig struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	attempts    int
	backoffBase time.Duration
	backoffMax  time.Duration
	threshold   int
	cooldown    time.Duration
	now         func() time.Time
	sleep       func(time.Duration)
}

func newPeer(name, self string, cfg peerConfig) *peer {
	return &peer{
		name:     name,
		self:     self,
		cfg:      cfg,
		mCalls:   obs.Default().Counter(PeerMetricName("fed_peer_calls_total", name)),
		mFails:   obs.Default().Counter(PeerMetricName("fed_peer_failures_total", name)),
		mRetries: obs.Default().Counter(PeerMetricName("fed_peer_retries_total", name)),
		mOpens:   obs.Default().Counter(PeerMetricName("fed_breaker_opens_total", name)),
		mState:   obs.Default().Gauge(PeerMetricName("fed_breaker_state", name)),
	}
}

// setAddr points the peer at a (possibly new) address. A changed
// address drops the cached connection — the daemon restarted — and
// closes the breaker so the fresh address gets an immediate chance.
func (p *peer) setAddr(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.addr == addr {
		return
	}
	p.addr = addr
	if p.cli != nil {
		p.cli.Close()
		p.cli = nil
	}
	p.consecFails = 0
	p.openUntil = time.Time{}
	p.mState.Set(0)
}

// state reports the breaker state without changing it.
func (p *peer) state() (string, int, string, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := breakerClosed
	if !p.openUntil.IsZero() {
		if p.cfg.now().Before(p.openUntil) {
			st = breakerOpen
		} else {
			st = breakerHalfOpen
		}
	}
	lastErr := ""
	if p.lastErr != nil {
		lastErr = p.lastErr.Error()
	}
	return st, p.consecFails, p.addr, lastErr
}

// admit decides whether a call may proceed under the breaker: closed
// admits everyone, open admits no one, and half-open (cooldown
// elapsed) admits exactly one trial at a time.
func (p *peer) admit() (trial bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.addr == "" {
		return false, fmt.Errorf("%w: %s has no address", ErrPeerDown, p.name)
	}
	if p.openUntil.IsZero() {
		return false, nil
	}
	if p.cfg.now().Before(p.openUntil) {
		return false, fmt.Errorf("%w: %s breaker open", ErrPeerDown, p.name)
	}
	if p.probing {
		return false, fmt.Errorf("%w: %s half-open trial in flight", ErrPeerDown, p.name)
	}
	p.probing = true
	return true, nil
}

func (p *peer) noteSuccess(trial bool) {
	p.mu.Lock()
	p.consecFails = 0
	p.openUntil = time.Time{}
	p.lastErr = nil
	if trial {
		p.probing = false
	}
	p.mu.Unlock()
	p.mState.Set(0)
}

func (p *peer) noteFailure(trial bool, err error) {
	p.mu.Lock()
	p.consecFails++
	p.lastErr = err
	opened := false
	if trial || p.consecFails >= p.cfg.threshold {
		p.openUntil = p.cfg.now().Add(p.cfg.cooldown)
		opened = true
	}
	if trial {
		p.probing = false
	}
	p.mu.Unlock()
	if opened {
		p.mOpens.Inc()
		p.mState.Set(1)
	}
}

// client returns a connected mwrpc client, dialing if needed. Caller
// does not hold p.mu during the dial.
func (p *peer) client() (*mwrpc.Client, error) {
	p.mu.Lock()
	cli, addr := p.cli, p.addr
	p.mu.Unlock()
	if cli != nil {
		select {
		case <-cli.Done():
			// Connection died; fall through to redial.
		default:
			return cli, nil
		}
	}
	if addr == "" {
		return nil, fmt.Errorf("%w: %s has no address", ErrPeerDown, p.name)
	}
	fresh, err := mwrpc.DialOptions(addr, mwrpc.Options{
		DialTimeout: p.cfg.dialTimeout,
		CallTimeout: p.cfg.callTimeout,
	})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.cli != nil && p.cli != cli {
		// Another goroutine redialed first; use theirs.
		fresh.Close()
		cli = p.cli
		p.mu.Unlock()
		return cli, nil
	}
	if cli != nil {
		cli.Close()
	}
	p.cli = fresh
	p.mu.Unlock()
	return fresh, nil
}

// call invokes a JSON method on the peer with per-attempt timeout,
// capped exponential backoff between attempts, and breaker
// accounting. It returns ErrPeerDown-wrapped errors when the peer is
// unreachable; application-level errors (the method ran and said no)
// pass through and count as success for the breaker.
func (p *peer) call(method string, args, reply interface{}) error {
	return p.callTraced(method, args, reply, "")
}

// callTraced is call with an obs trace ID stamped on the request
// frame, so the remote handler adopts the trace. Retry backoff sleeps
// are recorded as fed_backoff spans under the trace — that is where a
// degraded peer's latency hides — attributed to the local daemon (the
// waiting happens here).
func (p *peer) callTraced(method string, args, reply interface{}, trace string) error {
	trial, err := p.admit()
	if err != nil {
		p.mFails.Inc()
		return err
	}
	attempts := p.cfg.attempts
	if trial {
		attempts = 1 // half-open grants one trial, not a retry burst
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			backoff := p.cfg.backoffBase << (i - 1)
			if backoff > p.cfg.backoffMax {
				backoff = p.cfg.backoffMax
			}
			if trace != "" {
				sleepStart := time.Now()
				p.cfg.sleep(backoff)
				obs.SpanSinceD(trace, "fed_backoff", p.self, sleepStart)
			} else {
				p.cfg.sleep(backoff)
			}
			p.mRetries.Inc()
		}
		p.mCalls.Inc()
		cli, err := p.client()
		if err != nil {
			last = err
			continue
		}
		err = cli.CallTraced(method, args, reply, trace)
		if err == nil || !isTransportErr(err) {
			p.noteSuccess(trial)
			return err
		}
		last = err
	}
	p.mFails.Inc()
	p.noteFailure(trial, last)
	return fmt.Errorf("%w: %s: %v", ErrPeerDown, p.name, last)
}

// counters reports the peer's lifetime call/failure/retry/open counts.
func (p *peer) counters() (calls, fails, retries, opens uint64) {
	return p.mCalls.Value(), p.mFails.Value(), p.mRetries.Value(), p.mOpens.Value()
}

// close drops the cached connection.
func (p *peer) close() {
	p.mu.Lock()
	if p.cli != nil {
		p.cli.Close()
		p.cli = nil
	}
	p.mu.Unlock()
}

// isTransportErr classifies failures that indicate the peer (or the
// path to it) is unhealthy, as opposed to an application-level error
// from a method that ran.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, mwrpc.ErrClosed) || errors.Is(err, mwrpc.ErrTimeout) {
		return true
	}
	var netErr interface{ Timeout() bool }
	if errors.As(err, &netErr) {
		return true
	}
	// Dial failures arrive as *net.OpError wrapped in fmt errors; the
	// mwrpc client surfaces remote application errors as plain string
	// errors, so anything carrying a syscall-ish cause is transport.
	var opErr interface{ Temporary() bool }
	return errors.As(err, &opErr)
}
