// Package mwql implements the spatial query language of §5.1: the
// paper notes that "modeling the physical space allows SQL queries on
// objects and regions", giving the example "Where is the nearest
// region that has power outlets and high Bluetooth signal?". mwql is
// that query surface over the spatial database:
//
//	SELECT objects
//	WHERE type = 'Room' AND prop('power-outlets') = 'yes'
//	  AND prop('bluetooth') = 'high'
//	NEAREST (0, 0) LIMIT 1
//
// Supported predicates: comparisons on type, name, glob and
// prop('key'); the spatial functions within('GLOB'),
// intersects('GLOB'), contains(x, y) and near((x, y), dist); boolean
// AND/OR/NOT with parentheses. Results can be ordered by NEAREST
// (x, y) and truncated with LIMIT n.
package mwql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokNeq
)

// keywords are case-insensitive reserved words.
var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "AND": true, "OR": true, "NOT": true,
	"NEAREST": true, "LIMIT": true,
}

// token is one lexeme with its source position (byte offset) for
// error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("mwql: position %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex splits the input into tokens.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			out = append(out, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == ',':
			out = append(out, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '=':
			out = append(out, token{kind: tokEq, text: "=", pos: i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, token{kind: tokNeq, text: "!=", pos: i})
				i += 2
			} else {
				return nil, errAt(i, "unexpected '!'")
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, errAt(i, "unterminated string")
			}
			out = append(out, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case c == '-' || c == '.' || (c >= '0' && c <= '9'):
			j := i
			if src[j] == '-' {
				j++
			}
			digits := false
			for j < len(src) && (src[j] == '.' || (src[j] >= '0' && src[j] <= '9')) {
				if src[j] != '.' {
					digits = true
				}
				j++
			}
			if !digits {
				return nil, errAt(i, "malformed number")
			}
			out = append(out, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[strings.ToUpper(word)] {
				kind = tokKeyword
			}
			out = append(out, token{kind: kind, text: word, pos: i})
			i = j
		default:
			return nil, errAt(i, "unexpected character %q", string(c))
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(src)})
	return out, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
