package mwql

import (
	"strconv"

	"middlewhere/internal/geom"
)

// Query is a parsed mwql statement.
type Query struct {
	// Where is the filter expression; nil selects everything.
	Where Expr
	// Nearest, when set, orders results by distance to the point.
	Nearest *geom.Point
	// Limit truncates the result; 0 means no limit.
	Limit int
}

// Expr is a boolean filter node evaluated per object.
type Expr interface {
	// eval reports whether the object matches.
	eval(obj *evalObject) (bool, error)
}

// Parse parses an mwql statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "trailing input %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// expectKeyword consumes a specific keyword.
func (p *parser) expectKeyword(word string) error {
	t := p.next()
	if t.kind != tokKeyword || !equalFold(t.text, word) {
		return errAt(t.pos, "expected %s, found %q", word, t.text)
	}
	return nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// parseQuery := SELECT objects [WHERE expr] [NEAREST point] [LIMIT n]
func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent || !equalFold(t.text, "objects") {
		return nil, errAt(t.pos, "expected 'objects', found %q", t.text)
	}
	q := &Query{}
	for {
		t := p.peek()
		if t.kind != tokKeyword {
			break
		}
		switch {
		case equalFold(t.text, "WHERE"):
			if q.Where != nil {
				return nil, errAt(t.pos, "duplicate WHERE")
			}
			p.next()
			expr, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			q.Where = expr
		case equalFold(t.text, "NEAREST"):
			if q.Nearest != nil {
				return nil, errAt(t.pos, "duplicate NEAREST")
			}
			p.next()
			pt, err := p.parsePoint()
			if err != nil {
				return nil, err
			}
			q.Nearest = &pt
		case equalFold(t.text, "LIMIT"):
			if q.Limit != 0 {
				return nil, errAt(t.pos, "duplicate LIMIT")
			}
			p.next()
			n := p.next()
			if n.kind != tokNumber {
				return nil, errAt(n.pos, "LIMIT needs a number")
			}
			v, err := strconv.Atoi(n.text)
			if err != nil || v <= 0 {
				return nil, errAt(n.pos, "LIMIT needs a positive integer")
			}
			q.Limit = v
		default:
			return nil, errAt(t.pos, "unexpected keyword %q", t.text)
		}
	}
	return q, nil
}

// parsePoint := '(' num ',' num ')'
func (p *parser) parsePoint() (geom.Point, error) {
	if t := p.next(); t.kind != tokLParen {
		return geom.Point{}, errAt(t.pos, "expected '('")
	}
	x, err := p.parseNumber()
	if err != nil {
		return geom.Point{}, err
	}
	if t := p.next(); t.kind != tokComma {
		return geom.Point{}, errAt(t.pos, "expected ','")
	}
	y, err := p.parseNumber()
	if err != nil {
		return geom.Point{}, err
	}
	if t := p.next(); t.kind != tokRParen {
		return geom.Point{}, errAt(t.pos, "expected ')'")
	}
	return geom.Pt(x, y), nil
}

func (p *parser) parseNumber() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, errAt(t.pos, "expected number, found %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, errAt(t.pos, "bad number %q", t.text)
	}
	return v, nil
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && equalFold(p.peek().text, "OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{left, right}
	}
	return left, nil
}

// parseAnd := parseNot (AND parseNot)*
func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && equalFold(p.peek().text, "AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = andExpr{left, right}
	}
	return left, nil
}

// parseNot := NOT parseNot | parsePrimary
func (p *parser) parseNot() (Expr, error) {
	if p.peek().kind == tokKeyword && equalFold(p.peek().text, "NOT") {
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{inner}, nil
	}
	return p.parsePrimary()
}

// parsePrimary := '(' or ')' | function | comparison
func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	if t.kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if t := p.next(); t.kind != tokRParen {
			return nil, errAt(t.pos, "expected ')'")
		}
		return inner, nil
	}
	if t.kind != tokIdent {
		return nil, errAt(t.pos, "expected predicate, found %q", t.text)
	}
	switch {
	case equalFold(t.text, "within"), equalFold(t.text, "intersects"):
		return p.parseRegionFunc(t.text)
	case equalFold(t.text, "contains"):
		return p.parseContains()
	case equalFold(t.text, "near"):
		return p.parseNear()
	default:
		return p.parseComparison()
	}
}

// parseRegionFunc := (within|intersects) '(' string ')'
func (p *parser) parseRegionFunc(name string) (Expr, error) {
	p.next() // function name
	if t := p.next(); t.kind != tokLParen {
		return nil, errAt(t.pos, "expected '(' after %s", name)
	}
	arg := p.next()
	if arg.kind != tokString {
		return nil, errAt(arg.pos, "%s needs a quoted GLOB", name)
	}
	if t := p.next(); t.kind != tokRParen {
		return nil, errAt(t.pos, "expected ')'")
	}
	if equalFold(name, "within") {
		return withinExpr{region: arg.text, pos: arg.pos}, nil
	}
	return intersectsExpr{region: arg.text, pos: arg.pos}, nil
}

// parseContains := contains '(' num ',' num ')'
func (p *parser) parseContains() (Expr, error) {
	p.next()
	if t := p.next(); t.kind != tokLParen {
		return nil, errAt(t.pos, "expected '(' after contains")
	}
	x, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokComma {
		return nil, errAt(t.pos, "expected ','")
	}
	y, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokRParen {
		return nil, errAt(t.pos, "expected ')'")
	}
	return containsExpr{pt: geom.Pt(x, y)}, nil
}

// parseNear := near '(' point ',' num ')'
func (p *parser) parseNear() (Expr, error) {
	p.next()
	if t := p.next(); t.kind != tokLParen {
		return nil, errAt(t.pos, "expected '(' after near")
	}
	pt, err := p.parsePoint()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokComma {
		return nil, errAt(t.pos, "expected ','")
	}
	dist, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokRParen {
		return nil, errAt(t.pos, "expected ')'")
	}
	return nearExpr{pt: pt, dist: dist}, nil
}

// parseComparison := field (=|!=) string, with field one of type,
// name, glob, prop('key').
func (p *parser) parseComparison() (Expr, error) {
	field := p.next()
	var key string
	var kind fieldKind
	switch {
	case equalFold(field.text, "type"):
		kind = fieldType
	case equalFold(field.text, "name"):
		kind = fieldName
	case equalFold(field.text, "glob"):
		kind = fieldGLOB
	case equalFold(field.text, "prop"):
		kind = fieldProp
		if t := p.next(); t.kind != tokLParen {
			return nil, errAt(t.pos, "expected '(' after prop")
		}
		arg := p.next()
		if arg.kind != tokString {
			return nil, errAt(arg.pos, "prop needs a quoted key")
		}
		key = arg.text
		if t := p.next(); t.kind != tokRParen {
			return nil, errAt(t.pos, "expected ')'")
		}
	default:
		return nil, errAt(field.pos, "unknown field %q (want type, name, glob, or prop)", field.text)
	}
	op := p.next()
	if op.kind != tokEq && op.kind != tokNeq {
		return nil, errAt(op.pos, "expected = or != after field")
	}
	val := p.next()
	if val.kind != tokString {
		return nil, errAt(val.pos, "expected quoted value")
	}
	return cmpExpr{kind: kind, key: key, value: val.text, negate: op.kind == tokNeq}, nil
}
