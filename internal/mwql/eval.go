package mwql

import (
	"sort"
	"strings"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/spatialdb"
)

// evalObject is the per-object evaluation context: the object plus the
// database for resolving region arguments.
type evalObject struct {
	obj *spatialdb.Object
	db  *spatialdb.DB
	// regionCache memoizes GLOB resolutions per query execution.
	regionCache map[string]geom.Rect
}

func (e *evalObject) resolve(region string, pos int) (geom.Rect, error) {
	if r, ok := e.regionCache[region]; ok {
		return r, nil
	}
	g, err := parseGLOBText(region, pos)
	if err != nil {
		return geom.Rect{}, err
	}
	r, err := e.db.ResolveGLOB(g)
	if err != nil {
		return geom.Rect{}, errAt(pos, "region %q: %v", region, err)
	}
	e.regionCache[region] = r
	return r, nil
}

// fieldKind selects what a comparison inspects.
type fieldKind int

const (
	fieldType fieldKind = iota + 1
	fieldName
	fieldGLOB
	fieldProp
)

// cmpExpr compares a field against a literal.
type cmpExpr struct {
	kind   fieldKind
	key    string // for fieldProp
	value  string
	negate bool
}

func (c cmpExpr) eval(e *evalObject) (bool, error) {
	var got string
	switch c.kind {
	case fieldType:
		got = e.obj.Type
	case fieldName:
		got = e.obj.GLOB.Name()
	case fieldGLOB:
		got = e.obj.GLOB.String()
	case fieldProp:
		got = e.obj.Properties[c.key]
	}
	match := strings.EqualFold(got, c.value)
	if c.negate {
		return !match, nil
	}
	return match, nil
}

// andExpr, orExpr, notExpr are the boolean combinators.
type andExpr struct{ l, r Expr }

func (x andExpr) eval(e *evalObject) (bool, error) {
	ok, err := x.l.eval(e)
	if err != nil || !ok {
		return false, err
	}
	return x.r.eval(e)
}

type orExpr struct{ l, r Expr }

func (x orExpr) eval(e *evalObject) (bool, error) {
	ok, err := x.l.eval(e)
	if err != nil || ok {
		return ok, err
	}
	return x.r.eval(e)
}

type notExpr struct{ inner Expr }

func (x notExpr) eval(e *evalObject) (bool, error) {
	ok, err := x.inner.eval(e)
	return !ok, err
}

// withinExpr matches objects fully inside a named region.
type withinExpr struct {
	region string
	pos    int
}

func (x withinExpr) eval(e *evalObject) (bool, error) {
	r, err := e.resolve(x.region, x.pos)
	if err != nil {
		return false, err
	}
	return r.ContainsRect(e.obj.Bounds), nil
}

// intersectsExpr matches objects whose bounds intersect a named
// region.
type intersectsExpr struct {
	region string
	pos    int
}

func (x intersectsExpr) eval(e *evalObject) (bool, error) {
	r, err := e.resolve(x.region, x.pos)
	if err != nil {
		return false, err
	}
	return r.Intersects(e.obj.Bounds), nil
}

// containsExpr matches objects whose bounds contain the point.
type containsExpr struct{ pt geom.Point }

func (x containsExpr) eval(e *evalObject) (bool, error) {
	return e.obj.Bounds.ContainsPoint(x.pt), nil
}

// nearExpr matches objects within dist of the point.
type nearExpr struct {
	pt   geom.Point
	dist float64
}

func (x nearExpr) eval(e *evalObject) (bool, error) {
	return e.obj.Bounds.DistToPoint(x.pt) <= x.dist, nil
}

// Run executes a parsed query against the database.
func (q *Query) Run(db *spatialdb.DB) ([]spatialdb.Object, error) {
	objs := db.Objects()
	ctx := &evalObject{db: db, regionCache: make(map[string]geom.Rect)}
	var out []spatialdb.Object
	for i := range objs {
		ctx.obj = &objs[i]
		if q.Where != nil {
			ok, err := q.Where.eval(ctx)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, objs[i])
	}
	if q.Nearest != nil {
		pt := *q.Nearest
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].Bounds.DistToPoint(pt) < out[j].Bounds.DistToPoint(pt)
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// Exec parses and runs a query in one step.
func Exec(db *spatialdb.DB, src string) ([]spatialdb.Object, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Run(db)
}

// parseGLOBText wraps glob parsing with positioned errors.
func parseGLOBText(s string, pos int) (glob.GLOB, error) {
	g, err := glob.Parse(s)
	if err != nil {
		return glob.GLOB{}, errAt(pos, "bad GLOB %q: %v", s, err)
	}
	return g, nil
}
