package mwql

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"middlewhere/internal/building"
	"middlewhere/internal/spatialdb"
)

func paperDB(t *testing.T) *spatialdb.DB {
	t.Helper()
	db, err := building.PaperFloor().NewDB()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func ids(objs []spatialdb.Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.ID()
	}
	return out
}

func TestPaperExampleQuery(t *testing.T) {
	// §5.1: "Where is the nearest region that has power outlets and
	// high Bluetooth signal?"
	db := paperDB(t)
	got, err := Exec(db, `SELECT objects
		WHERE prop('power-outlets') = 'yes' AND prop('bluetooth') = 'high'
		NEAREST (0, 0) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID() != "CS/Floor3/NetLab" {
		t.Errorf("got %v", ids(got))
	}
}

func TestTypeAndNameComparisons(t *testing.T) {
	db := paperDB(t)
	tests := []struct {
		name  string
		query string
		want  []string
	}{
		{
			"all rooms",
			`SELECT objects WHERE type = 'Room'`,
			[]string{"CS/Floor3/3105", "CS/Floor3/HCILab", "CS/Floor3/NetLab"},
		},
		{
			"by name",
			`SELECT objects WHERE name = 'NetLab'`,
			[]string{"CS/Floor3/NetLab"},
		},
		{
			"by glob",
			`SELECT objects WHERE glob = 'CS/Floor3/3105'`,
			[]string{"CS/Floor3/3105"},
		},
		{
			"negation",
			`SELECT objects WHERE type = 'Corridor' AND name != 'MainCorridor'`,
			[]string{"CS/Floor3/LabCorridor"},
		},
		{
			"case insensitive",
			`select objects where TYPE = 'room' and NAME = 'netlab'`,
			[]string{"CS/Floor3/NetLab"},
		},
		{
			"or",
			`SELECT objects WHERE name = 'NetLab' OR name = 'HCILab'`,
			[]string{"CS/Floor3/HCILab", "CS/Floor3/NetLab"},
		},
		{
			"not",
			`SELECT objects WHERE type = 'Display' AND NOT within('CS/Floor3/NetLab')`,
			[]string{"CS/Floor3/HCILab/display2"},
		},
		{
			"parens precedence",
			`SELECT objects WHERE type = 'Room' AND (name = 'NetLab' OR name = '3105')`,
			[]string{"CS/Floor3/3105", "CS/Floor3/NetLab"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Exec(db, tt.query)
			if err != nil {
				t.Fatal(err)
			}
			gotIDs := ids(got)
			if len(gotIDs) != len(tt.want) {
				t.Fatalf("got %v, want %v", gotIDs, tt.want)
			}
			for i := range tt.want {
				if gotIDs[i] != tt.want[i] {
					t.Errorf("got %v, want %v", gotIDs, tt.want)
					break
				}
			}
		})
	}
}

func TestSpatialPredicates(t *testing.T) {
	db := paperDB(t)
	// Objects within the NetLab: the room itself and its display.
	got, err := Exec(db, `SELECT objects WHERE within('CS/Floor3/NetLab')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("within = %v", ids(got))
	}
	// Intersecting a coordinate region spanning the east wing rooms.
	got, err = Exec(db, `SELECT objects WHERE type = 'Room'
		AND intersects('CS/Floor3/(355,0),(415,0),(415,30),(355,30)')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // NetLab + HCILab
		t.Errorf("intersects = %v", ids(got))
	}
	// Point containment.
	got, err = Exec(db, `SELECT objects WHERE contains(340, 10) AND type = 'Room'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID() != "CS/Floor3/3105" {
		t.Errorf("contains = %v", ids(got))
	}
	// Near: displays within 20 units of a point in the NetLab.
	got, err = Exec(db, `SELECT objects WHERE type = 'Display' AND near((365, 5), 20)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID() != "CS/Floor3/NetLab/display1" {
		t.Errorf("near = %v", ids(got))
	}
}

func TestNearestOrderingAndLimit(t *testing.T) {
	db := paperDB(t)
	got, err := Exec(db, `SELECT objects WHERE type = 'Room' NEAREST (500, 0)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID() != "CS/Floor3/HCILab" {
		t.Errorf("nearest order = %v", ids(got))
	}
	got, err = Exec(db, `SELECT objects NEAREST (500, 0) LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("limit = %v", ids(got))
	}
}

func TestSelectAll(t *testing.T) {
	db := paperDB(t)
	got, err := Exec(db, `SELECT objects`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(db.Objects()) {
		t.Errorf("select all = %d of %d", len(got), len(db.Objects()))
	}
}

func TestSyntaxErrors(t *testing.T) {
	db := paperDB(t)
	tests := []struct {
		name  string
		query string
		frag  string
	}{
		{"missing select", `WHERE type = 'Room'`, "expected SELECT"},
		{"bad target", `SELECT people`, "expected 'objects'"},
		{"unterminated string", `SELECT objects WHERE type = 'Room`, "unterminated"},
		{"bad operator", `SELECT objects WHERE type < 'Room'`, "unexpected character"},
		{"unknown field", `SELECT objects WHERE color = 'red'`, "unknown field"},
		{"trailing junk", `SELECT objects LIMIT 1 banana`, "trailing input"},
		{"bad limit", `SELECT objects LIMIT 0`, "positive integer"},
		{"limit nan", `SELECT objects LIMIT x`, "needs a number"},
		{"missing paren", `SELECT objects WHERE (type = 'Room'`, "expected ')'"},
		{"prop needs key", `SELECT objects WHERE prop(5) = 'x'`, "quoted key"},
		{"near missing dist", `SELECT objects WHERE near((1,2))`, "expected ','"},
		{"duplicate where", `SELECT objects WHERE type='Room' WHERE type='Room'`, "duplicate WHERE"},
		{"bang alone", `SELECT objects WHERE type ! 'Room'`, "unexpected '!'"},
		{"bad number", `SELECT objects NEAREST (-, 2)`, "malformed number"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Exec(db, tt.query)
			if err == nil {
				t.Fatal("expected error")
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("err %T: %v", err, err)
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("err = %v, want fragment %q", err, tt.frag)
			}
		})
	}
}

func TestRuntimeErrors(t *testing.T) {
	db := paperDB(t)
	// Unknown symbolic region at evaluation time.
	_, err := Exec(db, `SELECT objects WHERE within('CS/Floor3/Atlantis')`)
	if err == nil || !strings.Contains(err.Error(), "Atlantis") {
		t.Errorf("err = %v", err)
	}
	// Bad GLOB text in a region function.
	_, err = Exec(db, `SELECT objects WHERE within('((')`)
	if err == nil {
		t.Error("bad GLOB should fail")
	}
}

func TestNumbersAndNegatives(t *testing.T) {
	db := paperDB(t)
	got, err := Exec(db, `SELECT objects WHERE near((-5, -5), 400) AND type = 'Floor'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("negative coordinates: %v", ids(got))
	}
	// Floats.
	if _, err := Exec(db, `SELECT objects WHERE near((1.5, 2.25), 10.75)`); err != nil {
		t.Errorf("float literals: %v", err)
	}
}

func TestQuickQueryParserNeverPanics(t *testing.T) {
	// Random strings must lex/parse to an error, never a panic.
	f := func(raw []byte) bool {
		_, err := Parse(string(raw))
		// Almost everything is an error; success is fine too.
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Prefixed with SELECT to reach deeper parser states.
	g := func(raw []byte) bool {
		_, err := Parse("SELECT objects WHERE " + string(raw))
		_ = err
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
