// Package registry is the stand-in for the Gaia Space Repository (§7):
// the service-discovery component applications query to find the
// Location Service. Services register a name and address with a TTL
// and keep the entry alive with heartbeats; clients look names up.
// The registry runs over the mwrpc substrate.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"encoding/json"

	"middlewhere/internal/mwrpc"
)

// Entry is one registered service.
type Entry struct {
	// Name is the service name, e.g. "location-service".
	Name string `json:"name"`
	// Addr is the service's dialable TCP address.
	Addr string `json:"addr"`
	// Expires is when the entry lapses without a heartbeat.
	Expires time.Time `json:"expires"`
	// Version is bumped on every (re-)register of the name. The async
	// sweeper records the version it saw when it collected an expired
	// entry and deletes only if the version is unchanged, so a
	// re-register that lands between collection and deletion survives.
	Version uint64 `json:"version"`
}

// PlacementEntry assigns one floor shard to a daemon. The lease
// expires like a service entry; the owning daemon heartbeats it alive
// with PlaceShards.
type PlacementEntry struct {
	// Shard is the floor shard key, e.g. "CS/Floor3".
	Shard string `json:"shard"`
	// Daemon is the owning daemon's federation name.
	Daemon string `json:"daemon"`
	// Addr is the daemon's dialable mwrpc address.
	Addr string `json:"addr"`
	// Expires is when the lease lapses without a heartbeat.
	Expires time.Time `json:"expires"`
	// Version is the placement-map version at which this assignment
	// last changed owner or address (heartbeats do not bump it).
	Version uint64 `json:"version"`
}

// Placement is the whole shard-placement map at one version. Clients
// cache it and refresh when the version moves.
type Placement struct {
	// Version bumps on any ownership/address change or pruned lease —
	// never on a pure heartbeat renewal.
	Version uint64 `json:"version"`
	// Shards lists the live leases, sorted by shard key.
	Shards []PlacementEntry `json:"shards"`
}

// Owner returns the entry for a shard key, if leased.
func (p Placement) Owner(shard string) (PlacementEntry, bool) {
	for _, e := range p.Shards {
		if e.Shard == shard {
			return e, true
		}
	}
	return PlacementEntry{}, false
}

// Daemons returns the distinct daemon names in the placement, sorted.
func (p Placement) Daemons() []string {
	seen := make(map[string]bool, 4)
	var out []string
	for _, e := range p.Shards {
		if !seen[e.Daemon] {
			seen[e.Daemon] = true
			out = append(out, e.Daemon)
		}
	}
	sort.Strings(out)
	return out
}

// DaemonAddrs returns each distinct daemon's dialable address. When a
// daemon appears with several addresses (a restart mid-refresh), the
// lease with the highest version wins — it reflects the newest
// registration.
func (p Placement) DaemonAddrs() map[string]string {
	out := make(map[string]string, 4)
	ver := make(map[string]uint64, 4)
	for _, e := range p.Shards {
		if v, ok := ver[e.Daemon]; !ok || e.Version > v {
			ver[e.Daemon] = e.Version
			out[e.Daemon] = e.Addr
		}
	}
	return out
}

// Sentinel errors.
var (
	ErrNotFound = errors.New("registry: service not found")
	ErrBadEntry = errors.New("registry: bad entry")
)

// Server is the registry service.
type Server struct {
	mu      sync.Mutex
	entries map[string]Entry
	// placement is the shard-placement map: floor shard key → lease.
	placement map[string]PlacementEntry
	// placeVersion is the placement map's version counter. It bumps on
	// ownership/address changes and pruned leases, never on heartbeats.
	placeVersion uint64
	now          func() time.Time
	rpc          *mwrpc.Server

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewServer creates a registry server. The clock is injectable for
// tests; nil uses time.Now.
func NewServer(now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	s := &Server{
		entries:   make(map[string]Entry),
		placement: make(map[string]PlacementEntry),
		now:       now,
		rpc:       mwrpc.NewServer(),
	}
	s.rpc.Register("registry.register", s.handleRegister)
	s.rpc.Register("registry.lookup", s.handleLookup)
	s.rpc.Register("registry.list", s.handleList)
	s.rpc.Register("registry.deregister", s.handleDeregister)
	s.rpc.Register("registry.placeShards", s.handlePlaceShards)
	s.rpc.Register("registry.placement", s.handlePlacement)
	s.rpc.Register("registry.unplaceDaemon", s.handleUnplaceDaemon)
	return s
}

// Listen binds the registry to addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	return s.rpc.Listen(addr)
}

// Close shuts the registry down.
func (s *Server) Close() {
	s.mu.Lock()
	stop, done := s.sweepStop, s.sweepDone
	s.sweepStop, s.sweepDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.rpc.Close()
}

// StartSweeper prunes expired entries in the background every
// interval, so names and leases nobody looks up still lapse. The sweep
// is two-phase (collect under the lock, delete under a later lock
// acquisition) and version-checked, so a re-register that lands
// between the phases is never deleted.
func (s *Server) StartSweeper(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.mu.Lock()
	if s.sweepStop != nil {
		s.mu.Unlock()
		close(stop)
		return
	}
	s.sweepStop, s.sweepDone = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SweepExpired()
			}
		}
	}()
}

// expiredRef names an expired entry together with the version it had
// when collected, so the deletion phase can detect a concurrent
// re-register.
type expiredRef struct {
	name    string
	version uint64
	shard   bool // placement lease rather than service entry
}

// collectExpired snapshots the expired entries and leases with their
// versions. It takes and releases the lock — the returned refs may be
// invalidated by concurrent registers, which dropExpired detects.
func (s *Server) collectExpired() []expiredRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var refs []expiredRef
	for name, e := range s.entries {
		if now.After(e.Expires) {
			refs = append(refs, expiredRef{name: name, version: e.Version})
		}
	}
	for key, pe := range s.placement {
		if now.After(pe.Expires) {
			refs = append(refs, expiredRef{name: key, version: pe.Version, shard: true})
		}
	}
	return refs
}

// dropExpired deletes the collected entries — unless their version
// moved, which means a re-register (or re-lease) raced the sweep and
// the entry must survive.
func (s *Server) dropExpired(refs []expiredRef) {
	if len(refs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range refs {
		if ref.shard {
			if pe, ok := s.placement[ref.name]; ok && pe.Version == ref.version {
				delete(s.placement, ref.name)
				s.placeVersion++
			}
			continue
		}
		if e, ok := s.entries[ref.name]; ok && e.Version == ref.version {
			delete(s.entries, ref.name)
		}
	}
}

// SweepExpired runs one collect/delete cycle of the background prune.
func (s *Server) SweepExpired() { s.dropExpired(s.collectExpired()) }

type registerArgs struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// TTLSeconds is how long the entry lives without a heartbeat;
	// registering again renews it.
	TTLSeconds float64 `json:"ttlSeconds"`
}

func (s *Server) handleRegister(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a registerArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	if a.Name == "" || a.Addr == "" {
		return nil, fmt.Errorf("%w: need name and addr", ErrBadEntry)
	}
	ttl := time.Duration(a.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Version check: carry the previous entry's version forward +1 even
	// when that entry has already expired. A sweep that collected the
	// expired version sees the bump and leaves this fresh registration
	// alone — without it, re-register after lease expiry races the
	// prune and the new entry could be silently dropped.
	ver := uint64(1)
	if prev, ok := s.entries[a.Name]; ok {
		ver = prev.Version + 1
	}
	s.entries[a.Name] = Entry{Name: a.Name, Addr: a.Addr, Expires: s.now().Add(ttl), Version: ver}
	return "ok", nil
}

type placeShardsArgs struct {
	Daemon string   `json:"daemon"`
	Addr   string   `json:"addr"`
	Shards []string `json:"shards"`
	// TTLSeconds is the lease duration; re-placing the same shards
	// heartbeats the lease.
	TTLSeconds float64 `json:"ttlSeconds"`
}

type placeShardsReply struct {
	Version uint64 `json:"version"`
}

// handlePlaceShards leases the named floor shards to a daemon. A
// renewal by the same daemon at the same address only extends the
// lease; a different owner (or address) takes the shard over and bumps
// the placement version, which is how an operator moves a floor.
func (s *Server) handlePlaceShards(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a placeShardsArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	if a.Daemon == "" || a.Addr == "" || len(a.Shards) == 0 {
		return nil, fmt.Errorf("%w: need daemon, addr, and shards", ErrBadEntry)
	}
	ttl := time.Duration(a.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	changed := false
	for _, key := range a.Shards {
		if key == "" {
			continue
		}
		prev, ok := s.placement[key]
		if ok && prev.Daemon == a.Daemon && prev.Addr == a.Addr && !now.After(prev.Expires) {
			prev.Expires = now.Add(ttl)
			s.placement[key] = prev
			continue
		}
		changed = true
		s.placement[key] = PlacementEntry{
			Shard: key, Daemon: a.Daemon, Addr: a.Addr,
			Expires: now.Add(ttl),
			// Version is stamped below once, after the bump, so every
			// entry changed in this call shares the new map version.
		}
	}
	if changed {
		s.placeVersion++
		for _, key := range a.Shards {
			if pe, ok := s.placement[key]; ok && pe.Daemon == a.Daemon && pe.Version == 0 {
				pe.Version = s.placeVersion
				s.placement[key] = pe
			}
		}
	}
	return placeShardsReply{Version: s.placeVersion}, nil
}

// handlePlacement returns the live placement map. Expired leases are
// pruned first (each prune bumps the version: a lapsed floor is an
// ownership change clients must observe).
func (s *Server) handlePlacement(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for key, pe := range s.placement {
		if now.After(pe.Expires) {
			delete(s.placement, key)
			s.placeVersion++
		}
	}
	out := Placement{Version: s.placeVersion, Shards: make([]PlacementEntry, 0, len(s.placement))}
	for _, pe := range s.placement {
		out.Shards = append(out.Shards, pe)
	}
	sort.Slice(out.Shards, func(i, j int) bool { return out.Shards[i].Shard < out.Shards[j].Shard })
	return out, nil
}

type unplaceArgs struct {
	Daemon string `json:"daemon"`
}

// handleUnplaceDaemon releases every lease a daemon holds (clean
// shutdown).
func (s *Server) handleUnplaceDaemon(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a unplaceArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for key, pe := range s.placement {
		if pe.Daemon == a.Daemon {
			delete(s.placement, key)
			changed = true
		}
	}
	if changed {
		s.placeVersion++
	}
	return placeShardsReply{Version: s.placeVersion}, nil
}

type lookupArgs struct {
	Name string `json:"name"`
}

func (s *Server) handleLookup(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a lookupArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	e, ok := s.entries[a.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, a.Name)
	}
	return e, nil
}

func (s *Server) handleList(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (s *Server) handleDeregister(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a lookupArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, a.Name)
	return "ok", nil
}

// pruneLocked drops expired entries. Caller holds the lock.
func (s *Server) pruneLocked() {
	now := s.now()
	for name, e := range s.entries {
		if now.After(e.Expires) {
			delete(s.entries, name)
		}
	}
}

// ---------------------------------------------------------------------------
// Client

// Client talks to a registry server.
type Client struct {
	rpc *mwrpc.Client
}

// Dial connects to a registry.
func Dial(addr string) (*Client, error) {
	c, err := mwrpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Close drops the connection.
func (c *Client) Close() { c.rpc.Close() }

// Register advertises a service; call it periodically to heartbeat.
func (c *Client) Register(name, addr string, ttl time.Duration) error {
	return c.rpc.Call("registry.register", registerArgs{
		Name: name, Addr: addr, TTLSeconds: ttl.Seconds(),
	}, nil)
}

// Lookup resolves a service name to its entry.
func (c *Client) Lookup(name string) (Entry, error) {
	var e Entry
	if err := c.rpc.Call("registry.lookup", lookupArgs{Name: name}, &e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// List returns all live entries.
func (c *Client) List() ([]Entry, error) {
	var out []Entry
	if err := c.rpc.Call("registry.list", struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Deregister removes a service entry.
func (c *Client) Deregister(name string) error {
	return c.rpc.Call("registry.deregister", lookupArgs{Name: name}, nil)
}

// PlaceShards leases the floor shards to a daemon (call periodically
// to heartbeat the lease). It returns the placement-map version.
func (c *Client) PlaceShards(daemon, addr string, shards []string, ttl time.Duration) (uint64, error) {
	var rep placeShardsReply
	err := c.rpc.Call("registry.placeShards", placeShardsArgs{
		Daemon: daemon, Addr: addr, Shards: shards, TTLSeconds: ttl.Seconds(),
	}, &rep)
	return rep.Version, err
}

// Placement fetches the live shard-placement map.
func (c *Client) Placement() (Placement, error) {
	var p Placement
	if err := c.rpc.Call("registry.placement", struct{}{}, &p); err != nil {
		return Placement{}, err
	}
	return p, nil
}

// UnplaceDaemon releases every shard lease the daemon holds.
func (c *Client) UnplaceDaemon(daemon string) error {
	return c.rpc.Call("registry.unplaceDaemon", unplaceArgs{Daemon: daemon}, nil)
}
