// Package registry is the stand-in for the Gaia Space Repository (§7):
// the service-discovery component applications query to find the
// Location Service. Services register a name and address with a TTL
// and keep the entry alive with heartbeats; clients look names up.
// The registry runs over the mwrpc substrate.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"encoding/json"

	"middlewhere/internal/mwrpc"
)

// Entry is one registered service.
type Entry struct {
	// Name is the service name, e.g. "location-service".
	Name string `json:"name"`
	// Addr is the service's dialable TCP address.
	Addr string `json:"addr"`
	// Expires is when the entry lapses without a heartbeat.
	Expires time.Time `json:"expires"`
}

// Sentinel errors.
var (
	ErrNotFound = errors.New("registry: service not found")
	ErrBadEntry = errors.New("registry: bad entry")
)

// Server is the registry service.
type Server struct {
	mu      sync.Mutex
	entries map[string]Entry
	now     func() time.Time
	rpc     *mwrpc.Server
}

// NewServer creates a registry server. The clock is injectable for
// tests; nil uses time.Now.
func NewServer(now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	s := &Server{
		entries: make(map[string]Entry),
		now:     now,
		rpc:     mwrpc.NewServer(),
	}
	s.rpc.Register("registry.register", s.handleRegister)
	s.rpc.Register("registry.lookup", s.handleLookup)
	s.rpc.Register("registry.list", s.handleList)
	s.rpc.Register("registry.deregister", s.handleDeregister)
	return s
}

// Listen binds the registry to addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	return s.rpc.Listen(addr)
}

// Close shuts the registry down.
func (s *Server) Close() { s.rpc.Close() }

type registerArgs struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// TTLSeconds is how long the entry lives without a heartbeat;
	// registering again renews it.
	TTLSeconds float64 `json:"ttlSeconds"`
}

func (s *Server) handleRegister(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a registerArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	if a.Name == "" || a.Addr == "" {
		return nil, fmt.Errorf("%w: need name and addr", ErrBadEntry)
	}
	ttl := time.Duration(a.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[a.Name] = Entry{Name: a.Name, Addr: a.Addr, Expires: s.now().Add(ttl)}
	return "ok", nil
}

type lookupArgs struct {
	Name string `json:"name"`
}

func (s *Server) handleLookup(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a lookupArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	e, ok := s.entries[a.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, a.Name)
	}
	return e, nil
}

func (s *Server) handleList(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (s *Server) handleDeregister(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a lookupArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, a.Name)
	return "ok", nil
}

// pruneLocked drops expired entries. Caller holds the lock.
func (s *Server) pruneLocked() {
	now := s.now()
	for name, e := range s.entries {
		if now.After(e.Expires) {
			delete(s.entries, name)
		}
	}
}

// ---------------------------------------------------------------------------
// Client

// Client talks to a registry server.
type Client struct {
	rpc *mwrpc.Client
}

// Dial connects to a registry.
func Dial(addr string) (*Client, error) {
	c, err := mwrpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Close drops the connection.
func (c *Client) Close() { c.rpc.Close() }

// Register advertises a service; call it periodically to heartbeat.
func (c *Client) Register(name, addr string, ttl time.Duration) error {
	return c.rpc.Call("registry.register", registerArgs{
		Name: name, Addr: addr, TTLSeconds: ttl.Seconds(),
	}, nil)
}

// Lookup resolves a service name to its entry.
func (c *Client) Lookup(name string) (Entry, error) {
	var e Entry
	if err := c.rpc.Call("registry.lookup", lookupArgs{Name: name}, &e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// List returns all live entries.
func (c *Client) List() ([]Entry, error) {
	var out []Entry
	if err := c.rpc.Call("registry.list", struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Deregister removes a service entry.
func (c *Client) Deregister(name string) error {
	return c.rpc.Call("registry.deregister", lookupArgs{Name: name}, nil)
}
