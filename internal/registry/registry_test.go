package registry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func startRegistry(t *testing.T) (*Client, *fakeClock) {
	t.Helper()
	clock := &fakeClock{now: time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)}
	srv := NewServer(clock.Now)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, clock
}

func TestRegisterAndLookup(t *testing.T) {
	c, _ := startRegistry(t)
	if err := c.Register("location-service", "10.0.0.5:7000", time.Minute); err != nil {
		t.Fatal(err)
	}
	e, err := c.Lookup("location-service")
	if err != nil {
		t.Fatal(err)
	}
	if e.Addr != "10.0.0.5:7000" || e.Name != "location-service" {
		t.Errorf("entry = %+v", e)
	}
}

func TestLookupMissing(t *testing.T) {
	c, _ := startRegistry(t)
	_, err := c.Lookup("nothing")
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	c, _ := startRegistry(t)
	if err := c.Register("", "addr", time.Minute); err == nil {
		t.Error("empty name should fail")
	}
	if err := c.Register("svc", "", time.Minute); err == nil {
		t.Error("empty addr should fail")
	}
}

func TestTTLExpiry(t *testing.T) {
	c, clock := startRegistry(t)
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if _, err := c.Lookup("svc"); err != nil {
		t.Fatalf("entry expired early: %v", err)
	}
	clock.Advance(6 * time.Second)
	if _, err := c.Lookup("svc"); err == nil {
		t.Error("entry should have expired")
	}
	// Heartbeat renews.
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	if _, err := c.Lookup("svc"); err != nil {
		t.Errorf("heartbeat did not renew: %v", err)
	}
}

func TestListAndDeregister(t *testing.T) {
	c, _ := startRegistry(t)
	for _, name := range []string{"b-svc", "a-svc", "c-svc"} {
		if err := c.Register(name, "x:1", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "a-svc" || got[2].Name != "c-svc" {
		t.Errorf("list = %+v", got)
	}
	if err := c.Deregister("b-svc"); err != nil {
		t.Fatal(err)
	}
	got, _ = c.List()
	if len(got) != 2 {
		t.Errorf("after deregister = %+v", got)
	}
	// Deregistering a missing name is not an error.
	if err := c.Deregister("zz"); err != nil {
		t.Errorf("deregister missing = %v", err)
	}
}

func TestDefaultTTL(t *testing.T) {
	c, clock := startRegistry(t)
	if err := c.Register("svc", "a:1", 0); err != nil { // defaults to 30s
		t.Fatal(err)
	}
	clock.Advance(29 * time.Second)
	if _, err := c.Lookup("svc"); err != nil {
		t.Errorf("default TTL too short: %v", err)
	}
	clock.Advance(2 * time.Second)
	if _, err := c.Lookup("svc"); err == nil {
		t.Error("default TTL should have expired")
	}
}
