package registry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func startRegistry(t *testing.T) (*Client, *fakeClock) {
	t.Helper()
	c, clock, _ := startRegistryServer(t)
	return c, clock
}

func startRegistryServer(t *testing.T) (*Client, *fakeClock, *Server) {
	t.Helper()
	clock := &fakeClock{now: time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)}
	srv := NewServer(clock.Now)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, clock, srv
}

func TestRegisterAndLookup(t *testing.T) {
	c, _ := startRegistry(t)
	if err := c.Register("location-service", "10.0.0.5:7000", time.Minute); err != nil {
		t.Fatal(err)
	}
	e, err := c.Lookup("location-service")
	if err != nil {
		t.Fatal(err)
	}
	if e.Addr != "10.0.0.5:7000" || e.Name != "location-service" {
		t.Errorf("entry = %+v", e)
	}
}

func TestLookupMissing(t *testing.T) {
	c, _ := startRegistry(t)
	_, err := c.Lookup("nothing")
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	c, _ := startRegistry(t)
	if err := c.Register("", "addr", time.Minute); err == nil {
		t.Error("empty name should fail")
	}
	if err := c.Register("svc", "", time.Minute); err == nil {
		t.Error("empty addr should fail")
	}
}

func TestTTLExpiry(t *testing.T) {
	c, clock := startRegistry(t)
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if _, err := c.Lookup("svc"); err != nil {
		t.Fatalf("entry expired early: %v", err)
	}
	clock.Advance(6 * time.Second)
	if _, err := c.Lookup("svc"); err == nil {
		t.Error("entry should have expired")
	}
	// Heartbeat renews.
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	if _, err := c.Lookup("svc"); err != nil {
		t.Errorf("heartbeat did not renew: %v", err)
	}
}

func TestListAndDeregister(t *testing.T) {
	c, _ := startRegistry(t)
	for _, name := range []string{"b-svc", "a-svc", "c-svc"} {
		if err := c.Register(name, "x:1", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "a-svc" || got[2].Name != "c-svc" {
		t.Errorf("list = %+v", got)
	}
	if err := c.Deregister("b-svc"); err != nil {
		t.Fatal(err)
	}
	got, _ = c.List()
	if len(got) != 2 {
		t.Errorf("after deregister = %+v", got)
	}
	// Deregistering a missing name is not an error.
	if err := c.Deregister("zz"); err != nil {
		t.Errorf("deregister missing = %v", err)
	}
}

// TestReRegisterSurvivesSweepRace is the regression test for the
// re-register-vs-prune race: the sweeper collects an expired entry,
// a heartbeat re-registers the name before the deletion phase runs,
// and the version check must keep the fresh entry alive.
func TestReRegisterSurvivesSweepRace(t *testing.T) {
	c, clock, srv := startRegistryServer(t)
	if err := c.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(11 * time.Second) // lease lapses

	// Phase 1 of the sweep observes the expired entry (and its version).
	refs := srv.collectExpired()
	if len(refs) != 1 || refs[0].name != "svc" {
		t.Fatalf("collectExpired = %+v", refs)
	}

	// A re-register lands between the sweep's phases.
	if err := c.Register("svc", "a:2", 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 2 must notice the version bump and keep the new entry.
	srv.dropExpired(refs)
	e, err := c.Lookup("svc")
	if err != nil {
		t.Fatalf("fresh registration was dropped by the sweep: %v", err)
	}
	if e.Addr != "a:2" {
		t.Errorf("entry = %+v, want addr a:2", e)
	}

	// Control: with no interleaved re-register the sweep does delete.
	clock.Advance(11 * time.Second)
	srv.SweepExpired()
	if _, err := c.Lookup("svc"); err == nil {
		t.Error("expired entry should have been swept")
	}
}

func TestRegisterVersionMonotonic(t *testing.T) {
	c, _, srv := startRegistryServer(t)
	for i := 0; i < 3; i++ {
		if err := c.Register("svc", "a:1", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.Lock()
	v := srv.entries["svc"].Version
	srv.mu.Unlock()
	if v != 3 {
		t.Errorf("version after 3 registers = %d, want 3", v)
	}
}

func TestPlacementLeaseAndVersioning(t *testing.T) {
	c, clock := startRegistry(t)
	v1, err := c.PlaceShards("daemon-a", "a:1", []string{"CS/Floor1", "CS/Floor2"}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == 0 {
		t.Fatal("placement version should bump on first lease")
	}
	p, err := c.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 2 || p.Version != v1 {
		t.Fatalf("placement = %+v", p)
	}
	if p.Shards[0].Shard != "CS/Floor1" || p.Shards[1].Shard != "CS/Floor2" {
		t.Errorf("placement not sorted by shard: %+v", p.Shards)
	}

	// Heartbeat renewal: same daemon, same addr — version must not move.
	clock.Advance(10 * time.Second)
	v2, err := c.PlaceShards("daemon-a", "a:1", []string{"CS/Floor1", "CS/Floor2"}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Errorf("heartbeat bumped placement version %d -> %d", v1, v2)
	}

	// Takeover: another daemon claims a floor — version must bump.
	v3, err := c.PlaceShards("daemon-b", "b:1", []string{"CS/Floor2"}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v3 <= v2 {
		t.Errorf("takeover did not bump version: %d -> %d", v2, v3)
	}
	p, _ = c.Placement()
	if e, ok := p.Owner("CS/Floor2"); !ok || e.Daemon != "daemon-b" {
		t.Errorf("CS/Floor2 owner = %+v", e)
	}
	if got := p.Daemons(); len(got) != 2 || got[0] != "daemon-a" || got[1] != "daemon-b" {
		t.Errorf("daemons = %v", got)
	}

	// Expiry: an unrenewed lease lapses and the version moves again.
	clock.Advance(31 * time.Second)
	p, _ = c.Placement()
	if len(p.Shards) != 0 {
		t.Errorf("expired leases survived: %+v", p.Shards)
	}
	if p.Version <= v3 {
		t.Errorf("pruned leases did not bump version: %d", p.Version)
	}
}

func TestUnplaceDaemon(t *testing.T) {
	c, _ := startRegistry(t)
	if _, err := c.PlaceShards("daemon-a", "a:1", []string{"F1", "F2"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceShards("daemon-b", "b:1", []string{"F3"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.UnplaceDaemon("daemon-a"); err != nil {
		t.Fatal(err)
	}
	p, err := c.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 1 || p.Shards[0].Shard != "F3" {
		t.Errorf("placement after unplace = %+v", p.Shards)
	}
}

func TestPlacementSweepVersionCheck(t *testing.T) {
	c, clock, srv := startRegistryServer(t)
	if _, err := c.PlaceShards("daemon-a", "a:1", []string{"F1"}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(11 * time.Second)
	refs := srv.collectExpired()
	// Re-lease between sweep phases (restarted daemon, new addr).
	if _, err := c.PlaceShards("daemon-a", "a:2", []string{"F1"}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	srv.dropExpired(refs)
	p, _ := c.Placement()
	if e, ok := p.Owner("F1"); !ok || e.Addr != "a:2" {
		t.Errorf("fresh lease was dropped by the sweep: %+v", p.Shards)
	}
}

func TestDefaultTTL(t *testing.T) {
	c, clock := startRegistry(t)
	if err := c.Register("svc", "a:1", 0); err != nil { // defaults to 30s
		t.Fatal(err)
	}
	clock.Advance(29 * time.Second)
	if _, err := c.Lookup("svc"); err != nil {
		t.Errorf("default TTL too short: %v", err)
	}
	clock.Advance(2 * time.Second)
	if _, err := c.Lookup("svc"); err == nil {
		t.Error("default TTL should have expired")
	}
}
