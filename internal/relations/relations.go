// Package relations implements MiddleWhere's spatial relationship
// functions (§4.6): probabilistic relations between mobile objects and
// regions (containment, usage, distance) and between pairs of mobile
// objects (proximity, co-location, distance). Region-region relations
// (RCC-8 and the passage-aware EC refinements) live in the rcc and
// topo packages; this package adds the probability layer on top of
// fused location estimates.
//
// Probabilities attached to relations derive from the probabilities of
// the participating locations: where the relation depends on two
// independently located objects, the joint probability is the product
// of the two location probabilities, scaled by how much of the
// location uncertainty is compatible with the relation.
package relations

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

// Located is a fused location estimate for a mobile object: the
// inferred rectangle and the probability the object is in it.
type Located struct {
	// Rect is the estimated location region.
	Rect geom.Rect
	// Prob is P(object in Rect).
	Prob float64
	// Symbolic is the finest symbolic region containing Rect, when
	// known (used by co-location).
	Symbolic glob.GLOB
}

// Sentinel errors.
var (
	ErrNoUsageRegion = errors.New("relations: object has no usage region")
	ErrNotLocated    = errors.New("relations: object region unknown")
)

// Containment returns the probability that an object with the given
// readings lies within region (§4.6.2a). It is fusion.ProbRegion
// exposed at the relation layer.
func Containment(universe geom.Rect, readings []fusion.Reading, region geom.Rect) float64 {
	return fusion.ProbRegion(universe, readings, region)
}

// UsageRegion derives an object's usage region (§4.6.2b): the area a
// person must occupy to use the object. The object's "usage-radius"
// property gives the extent; the usage region is the object's bounds
// expanded by that radius.
func UsageRegion(obj spatialdb.Object) (geom.Rect, error) {
	raw, ok := obj.Properties["usage-radius"]
	if !ok {
		return geom.Rect{}, fmt.Errorf("%w: %s", ErrNoUsageRegion, obj.ID())
	}
	radius, err := strconv.ParseFloat(raw, 64)
	if err != nil || radius < 0 {
		return geom.Rect{}, fmt.Errorf("%w: %s has bad usage-radius %q", ErrNoUsageRegion, obj.ID(), raw)
	}
	return obj.Bounds.Expand(radius), nil
}

// InUsage returns the probability that the located person can use the
// object: Containment within the object's usage region.
func InUsage(universe geom.Rect, readings []fusion.Reading, obj spatialdb.Object) (float64, error) {
	ur, err := UsageRegion(obj)
	if err != nil {
		return 0, err
	}
	return Containment(universe, readings, ur), nil
}

// DistToRegion returns the Euclidean distance from a located object to
// a region (§4.6.2c): zero when the estimate intersects the region,
// the gap between the rectangles otherwise.
func DistToRegion(a Located, region geom.Rect) float64 {
	return a.Rect.DistToRect(region)
}

// maxRectDist returns the largest distance between any point of a and
// any point of b — the pessimistic bound proximity uses.
func maxRectDist(a, b geom.Rect) float64 {
	var max float64
	for _, p := range a.Vertices() {
		for _, q := range b.Vertices() {
			if d := p.Dist(q); d > max {
				max = d
			}
		}
	}
	return max
}

// Proximity returns the probability that two located objects are
// within threshold of each other (§4.6.3a). The geometric part
// interpolates between the optimistic (closest points) and pessimistic
// (farthest points) distances of the two uncertainty rectangles; the
// result is scaled by the joint location probability.
func Proximity(a, b Located, threshold float64) float64 {
	if threshold < 0 {
		return 0
	}
	min := a.Rect.DistToRect(b.Rect)
	max := maxRectDist(a.Rect, b.Rect)
	var spatial float64
	switch {
	case max <= threshold:
		spatial = 1
	case min > threshold:
		spatial = 0
	default:
		// Fraction of the [min, max] distance range within threshold.
		spatial = (threshold - min) / (max - min)
	}
	return clamp01(a.Prob * b.Prob * spatial)
}

// CoLocated reports whether two located objects are in the same
// symbolic region at the given granularity (§4.6.3b), and the
// probability of that event (the joint probability of both location
// estimates when the truncated GLOBs agree).
func CoLocated(a, b Located, gran glob.Granularity) (bool, float64) {
	if a.Symbolic.IsZero() || b.Symbolic.IsZero() {
		return false, 0
	}
	ga := a.Symbolic.Truncate(gran)
	gb := b.Symbolic.Truncate(gran)
	if ga.IsZero() || gb.IsZero() || !ga.Equal(gb) {
		return false, 0
	}
	// Both GLOBs must actually reach the requested granularity: a
	// building-level estimate cannot witness room-level co-location.
	if ga.Depth() < int(gran) {
		return false, 0
	}
	return true, clamp01(a.Prob * b.Prob)
}

// EuclideanDist returns the distance between the centres of two
// located objects' estimate rectangles (§4.6.3c).
func EuclideanDist(a, b Located) float64 {
	return a.Rect.Center().Dist(b.Rect.Center())
}

// PathDist returns the path distance between two located objects: the
// length of the shortest traversable route between the regions
// containing their estimates (§4.6.1, §4.6.3c). The objects are
// assigned to graph regions by their estimate centres.
func PathDist(g *topo.Graph, a, b Located, policy topo.TraversalPolicy) (float64, error) {
	ra, err := regionOf(g, a)
	if err != nil {
		return 0, err
	}
	rb, err := regionOf(g, b)
	if err != nil {
		return 0, err
	}
	if ra == rb {
		return EuclideanDist(a, b), nil
	}
	base, err := g.PathDistance(ra, rb, policy)
	if err != nil {
		return 0, err
	}
	return base, nil
}

// regionOf finds the graph region containing the estimate's centre,
// preferring the smallest-area match.
func regionOf(g *topo.Graph, l Located) (string, error) {
	c := l.Rect.Center()
	best := ""
	bestArea := math.Inf(1)
	for _, r := range g.Regions() {
		if r.Rect.ContainsPoint(c) && r.Rect.Area() < bestArea {
			best, bestArea = r.ID, r.Rect.Area()
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: point %v", ErrNotLocated, c)
	}
	return best, nil
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
