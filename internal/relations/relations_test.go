package relations

import (
	"errors"
	"math"
	"testing"

	"middlewhere/internal/building"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

var universe = geom.R(0, 0, 100, 100)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestContainmentDelegatesToFusion(t *testing.T) {
	readings := []fusion.Reading{
		{ID: "s", Rect: geom.R(10, 10, 20, 20), P: 0.9, Q: 0.01},
	}
	region := geom.R(5, 5, 25, 25)
	want := fusion.ProbRegion(universe, readings, region)
	if got := Containment(universe, readings, region); !almostEq(got, want) {
		t.Errorf("Containment = %v, want %v", got, want)
	}
}

func TestUsageRegion(t *testing.T) {
	obj := spatialdb.Object{
		GLOB:       glob.MustParse("CS/F/display"),
		Bounds:     geom.R(10, 10, 16, 10),
		Properties: map[string]string{"usage-radius": "6"},
	}
	ur, err := UsageRegion(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !ur.Eq(geom.R(4, 4, 22, 16)) {
		t.Errorf("usage region = %v", ur)
	}
	// No property.
	if _, err := UsageRegion(spatialdb.Object{GLOB: glob.MustParse("CS/F/x")}); !errors.Is(err, ErrNoUsageRegion) {
		t.Errorf("missing property err = %v", err)
	}
	// Bad property value.
	obj.Properties["usage-radius"] = "wide"
	if _, err := UsageRegion(obj); !errors.Is(err, ErrNoUsageRegion) {
		t.Errorf("bad value err = %v", err)
	}
	obj.Properties["usage-radius"] = "-2"
	if _, err := UsageRegion(obj); !errors.Is(err, ErrNoUsageRegion) {
		t.Errorf("negative value err = %v", err)
	}
}

func TestInUsage(t *testing.T) {
	obj := spatialdb.Object{
		GLOB:       glob.MustParse("CS/F/display"),
		Bounds:     geom.R(40, 40, 46, 40),
		Properties: map[string]string{"usage-radius": "6"},
	}
	// q scales with the sensed area over the universe, as the paper's
	// z = z0·area(A)/area(U) calibration prescribes; a fixed large q
	// would drown a small reading in false-positive mass.
	near := []fusion.Reading{{ID: "s", Rect: geom.R(42, 38, 44, 42), P: 0.95, Q: 0.05 * 8 / 10000}}
	far := []fusion.Reading{{ID: "s", Rect: geom.R(80, 80, 82, 82), P: 0.95, Q: 0.05 * 4 / 10000}}
	pNear, err := InUsage(universe, near, obj)
	if err != nil {
		t.Fatal(err)
	}
	pFar, err := InUsage(universe, far, obj)
	if err != nil {
		t.Fatal(err)
	}
	if pNear <= pFar {
		t.Errorf("near usage %v should beat far usage %v", pNear, pFar)
	}
	if pNear < 0.5 {
		t.Errorf("near usage probability too small: %v", pNear)
	}
	if _, err := InUsage(universe, near, spatialdb.Object{GLOB: glob.MustParse("CS/F/y")}); err == nil {
		t.Error("object without usage region should error")
	}
}

func TestDistToRegion(t *testing.T) {
	a := Located{Rect: geom.R(0, 0, 10, 10), Prob: 0.9}
	if d := DistToRegion(a, geom.R(13, 0, 20, 10)); !almostEq(d, 3) {
		t.Errorf("dist = %v", d)
	}
	if d := DistToRegion(a, geom.R(5, 5, 20, 10)); d != 0 {
		t.Errorf("overlapping dist = %v", d)
	}
}

func TestProximity(t *testing.T) {
	a := Located{Rect: geom.R(0, 0, 2, 2), Prob: 0.9}
	b := Located{Rect: geom.R(3, 0, 5, 2), Prob: 0.8}
	// Farthest corners: (0,0)-(5,2) = sqrt(29) ~ 5.39.
	// Certain proximity: threshold above the max distance.
	if got := Proximity(a, b, 6); !almostEq(got, 0.72) {
		t.Errorf("certain proximity = %v, want 0.9*0.8", got)
	}
	// Impossible: threshold below the min distance (1).
	if got := Proximity(a, b, 0.5); got != 0 {
		t.Errorf("impossible proximity = %v", got)
	}
	// Partial: threshold between min and max scales the joint
	// probability.
	partial := Proximity(a, b, 3)
	if partial <= 0 || partial >= 0.72 {
		t.Errorf("partial proximity = %v, want within (0, 0.72)", partial)
	}
	// Monotone in threshold.
	if Proximity(a, b, 4) <= partial {
		t.Error("proximity should grow with threshold")
	}
	// Negative threshold.
	if Proximity(a, b, -1) != 0 {
		t.Error("negative threshold should be 0")
	}
	// Symmetry.
	if !almostEq(Proximity(a, b, 3), Proximity(b, a, 3)) {
		t.Error("proximity not symmetric")
	}
}

func TestCoLocated(t *testing.T) {
	a := Located{Prob: 0.9, Symbolic: glob.MustParse("CS/Floor3/NetLab")}
	b := Located{Prob: 0.8, Symbolic: glob.MustParse("CS/Floor3/NetLab")}
	c := Located{Prob: 0.9, Symbolic: glob.MustParse("CS/Floor3/HCILab")}
	ok, p := CoLocated(a, b, glob.GranRoom)
	if !ok || !almostEq(p, 0.72) {
		t.Errorf("same room = %v %v", ok, p)
	}
	ok, _ = CoLocated(a, c, glob.GranRoom)
	if ok {
		t.Error("different rooms should not be room-co-located")
	}
	// Different rooms, same floor.
	ok, p = CoLocated(a, c, glob.GranFloor)
	if !ok || !almostEq(p, 0.81) {
		t.Errorf("same floor = %v %v", ok, p)
	}
	// Estimate too coarse for the requested granularity.
	coarse := Located{Prob: 0.9, Symbolic: glob.MustParse("CS")}
	ok, _ = CoLocated(coarse, a, glob.GranRoom)
	if ok {
		t.Error("building-level estimate cannot witness room co-location")
	}
	// Missing symbolic locations.
	ok, _ = CoLocated(Located{Prob: 1}, a, glob.GranRoom)
	if ok {
		t.Error("unlocated object cannot be co-located")
	}
}

func TestEuclideanDist(t *testing.T) {
	a := Located{Rect: geom.R(0, 0, 10, 10)}
	b := Located{Rect: geom.R(30, 0, 40, 10)}
	if d := EuclideanDist(a, b); !almostEq(d, 30) {
		t.Errorf("dist = %v", d)
	}
}

func TestPathDist(t *testing.T) {
	b := building.PaperFloor()
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	inNetLab := Located{Rect: geom.R(368, 13, 372, 17), Prob: 0.9}
	inHCILab := Located{Rect: geom.R(393, 13, 397, 17), Prob: 0.9}
	d, err := PathDist(g, inNetLab, inHCILab, topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	straight := EuclideanDist(inNetLab, inHCILab)
	if d <= straight {
		t.Errorf("path distance %v should exceed straight line %v (walls!)", d, straight)
	}
	// Same region: falls back to Euclidean.
	other := Located{Rect: geom.R(362, 20, 366, 24), Prob: 0.9}
	d, err = PathDist(g, inNetLab, other, topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, EuclideanDist(inNetLab, other)) {
		t.Errorf("same-room path = %v", d)
	}
	// Outside every region.
	lost := Located{Rect: geom.R(480, 90, 482, 92), Prob: 0.5}
	if _, err := PathDist(g, inNetLab, lost, topo.FreeOnly); !errors.Is(err, ErrNotLocated) {
		t.Errorf("lost object err = %v", err)
	}
}

func TestRegionOfPrefersSmallest(t *testing.T) {
	// A point inside a room is also inside the floor region; the room
	// must win. The paper floor's graph only holds rooms/corridors,
	// so craft a graph with nesting.
	g := topo.NewGraph()
	g.AddRegion("floor", geom.R(0, 0, 100, 100))
	g.AddRegion("room", geom.R(10, 10, 20, 20))
	l := Located{Rect: geom.R(14, 14, 16, 16)}
	got, err := regionOf(g, l)
	if err != nil || got != "room" {
		t.Errorf("regionOf = %q, %v", got, err)
	}
}
