package adapter

import (
	"errors"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// batchRecorder records every IngestBatch call; it can also fail on
// demand, for the resilient-sink interplay.
type batchRecorder struct {
	mu      sync.Mutex
	broken  bool
	batches [][]model.Reading
}

func (b *batchRecorder) IngestBatch(rs []model.Reading) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return errors.New("sink down")
	}
	b.batches = append(b.batches, append([]model.Reading(nil), rs...))
	return nil
}

// Ingest lets the recorder double as a plain Sink.
func (b *batchRecorder) Ingest(r model.Reading) error {
	return b.IngestBatch([]model.Reading{r})
}

func (b *batchRecorder) setBroken(v bool) {
	b.mu.Lock()
	b.broken = v
	b.mu.Unlock()
}

func (b *batchRecorder) all() [][]model.Reading {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]model.Reading, len(b.batches))
	copy(out, b.batches)
	return out
}

func (b *batchRecorder) flat() []model.Reading {
	var out []model.Reading
	for _, batch := range b.all() {
		out = append(out, batch...)
	}
	return out
}

func batchReading(obj string, i int) model.Reading {
	return model.Reading{
		SensorID:  "s1",
		MObjectID: obj,
		Location:  glob.MustParse("CS/Floor3/(50,50)"),
		Time:      time.Date(2026, 7, 5, 12, 0, 0, i, time.UTC),
	}
}

func TestBatcherAutoFlushAndOrder(t *testing.T) {
	sink := &batchRecorder{}
	b := NewBatcher(sink, 2)
	for i := 0; i < 3; i++ {
		if err := b.Ingest(batchReading("bob", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.all()); got != 1 {
		t.Fatalf("auto-flushes = %d, want 1", got)
	}
	if b.Pending() != 1 {
		t.Errorf("pending = %d, want 1", b.Pending())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	flat := sink.flat()
	if len(flat) != 3 {
		t.Fatalf("delivered %d readings, want 3", len(flat))
	}
	for i, r := range flat {
		if r.Time.Nanosecond() != i {
			t.Errorf("reading %d out of order: %v", i, r.Time)
		}
	}
}

func TestBatcherFlushEmptyIsNoop(t *testing.T) {
	sink := &batchRecorder{}
	b := NewBatcher(sink, 4)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.all()) != 0 {
		t.Error("empty flush still called the sink")
	}
}

func TestBatcherClose(t *testing.T) {
	sink := &batchRecorder{}
	b := NewBatcher(sink, 8)
	if err := b.Ingest(batchReading("bob", 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.flat()) != 1 {
		t.Error("Close did not flush the pending reading")
	}
	if err := b.Ingest(batchReading("bob", 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close = %v, want ErrClosed", err)
	}
	if err := b.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("flush after close = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
}

// TestResilientSinkBatchFastPath delivers a healthy batch in one call.
func TestResilientSinkBatchFastPath(t *testing.T) {
	sink := &batchRecorder{}
	rs := NewResilientSink(sink, ResilientOptions{})
	defer rs.Close()
	batch := []model.Reading{batchReading("bob", 0), batchReading("bob", 1)}
	if err := rs.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	got := rs.Stats()
	if got.Forwarded != 2 || got.Buffered != 0 {
		t.Errorf("stats = %+v, want 2 forwarded, 0 buffered", got)
	}
	if calls := sink.all(); len(calls) != 1 || len(calls[0]) != 2 {
		t.Errorf("sink calls = %v", calls)
	}
}

// TestResilientSinkBatchDrain buffers while the sink is down, then
// drains in chunks — not one call per reading — once it recovers.
func TestResilientSinkBatchDrain(t *testing.T) {
	sink := &batchRecorder{}
	sink.setBroken(true)
	rs := NewResilientSink(sink, ResilientOptions{
		FailureThreshold: 100, // keep the breaker closed; we only test chunking
		RetryInterval:    time.Millisecond,
	})
	defer rs.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if err := rs.Ingest(batchReading("bob", i)); err != nil {
			t.Fatal(err)
		}
	}
	sink.setBroken(false)
	if !rs.Flush(2 * time.Second) {
		t.Fatal("buffer did not drain")
	}
	flat := sink.flat()
	if len(flat) != n {
		t.Fatalf("delivered %d readings, want %d", len(flat), n)
	}
	for i, r := range flat {
		if r.Time.Nanosecond() != i {
			t.Errorf("reading %d out of order: %v", i, r.Time)
		}
	}
	var multi bool
	for _, call := range sink.all() {
		if len(call) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("drain never used a batch call for a 10-deep buffer")
	}
}

// TestResilientSinkBatchWhileBuffered preserves order: a batch arriving
// while readings are queued joins the queue instead of jumping it.
func TestResilientSinkBatchWhileBuffered(t *testing.T) {
	sink := &batchRecorder{}
	sink.setBroken(true)
	rs := NewResilientSink(sink, ResilientOptions{
		FailureThreshold: 100,
		RetryInterval:    time.Millisecond,
	})
	defer rs.Close()
	if err := rs.Ingest(batchReading("bob", 0)); err != nil {
		t.Fatal(err)
	}
	if err := rs.IngestBatch([]model.Reading{batchReading("bob", 1), batchReading("bob", 2)}); err != nil {
		t.Fatal(err)
	}
	sink.setBroken(false)
	if !rs.Flush(2 * time.Second) {
		t.Fatal("buffer did not drain")
	}
	flat := sink.flat()
	if len(flat) != 3 {
		t.Fatalf("delivered %d readings, want 3", len(flat))
	}
	for i, r := range flat {
		if r.Time.Nanosecond() != i {
			t.Errorf("reading %d out of order: %v", i, r.Time)
		}
	}
}
