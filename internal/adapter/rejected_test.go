package adapter

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/model"
	"middlewhere/internal/spatialdb"
)

// validatingSink mimics core.Service's batch-ingest contract: readings
// from unknown sensors are rejected via *spatialdb.RejectedError while
// the rest of the batch is stored. Registering the sensor later makes
// its readings acceptable — the startup-ordering case the resilient
// sink exists to absorb.
type validatingSink struct {
	mu    sync.Mutex
	known map[string]bool
	got   []model.Reading
	calls int
}

func newValidatingSink(sensors ...string) *validatingSink {
	v := &validatingSink{known: make(map[string]bool)}
	for _, s := range sensors {
		v.known[s] = true
	}
	return v
}

func (v *validatingSink) IngestBatch(rs []model.Reading) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.calls++
	var rej spatialdb.RejectedError
	for i, r := range rs {
		if !v.known[r.SensorID] {
			rej.Indices = append(rej.Indices, i)
			rej.Errs = append(rej.Errs, fmt.Errorf("%w: %s", spatialdb.ErrUnknownSensor, r.SensorID))
			continue
		}
		v.got = append(v.got, r)
	}
	if len(rej.Indices) > 0 {
		return &rej
	}
	return nil
}

func (v *validatingSink) Ingest(r model.Reading) error {
	return v.IngestBatch([]model.Reading{r})
}

func (v *validatingSink) register(sensor string) {
	v.mu.Lock()
	v.known[sensor] = true
	v.mu.Unlock()
}

func (v *validatingSink) received() []model.Reading {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]model.Reading(nil), v.got...)
}

func sensorReading(sensor, obj string, i int) model.Reading {
	return model.Reading{
		SensorID:  sensor,
		MObjectID: obj,
		Time:      time.Date(2026, 7, 5, 12, 0, 0, i, time.UTC),
	}
}

// TestResilientSinkRejectedBatchNoDuplicates is the regression test
// for the drain livelock: a chunk with one persistently-invalid
// reading must not be retried whole (duplicating the stored rows) and
// must not wedge the buffer. Once the sensor registers, the held-back
// reading drains too.
func TestResilientSinkRejectedBatchNoDuplicates(t *testing.T) {
	sink := newValidatingSink("good")
	rs := NewResilientSink(sink, ResilientOptions{RetryInterval: time.Millisecond})
	defer rs.Close()

	// The unknown-sensor reading goes first so the valid ones queue
	// behind it and travel with it in one drain chunk.
	if err := rs.Ingest(sensorReading("late", "eve", 0)); err != nil {
		t.Fatal(err)
	}
	if err := rs.Ingest(sensorReading("good", "bob", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rs.Ingest(sensorReading("good", "alice", 2)); err != nil {
		t.Fatal(err)
	}

	// Let the drain attempt the chunk several times.
	deadline := time.Now().Add(2 * time.Second)
	for len(sink.received()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("valid readings never delivered; stats %+v", rs.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // several retry intervals
	got := sink.received()
	if len(got) != 2 {
		t.Fatalf("delivered %d readings, want exactly 2 (no duplicates): %v", len(got), got)
	}
	st := rs.Stats()
	if st.Pending != 1 {
		t.Fatalf("pending = %d, want 1 (the rejected reading held for retry); stats %+v", st.Pending, st)
	}
	if st.Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2; stats %+v", st.Forwarded, st)
	}
	if st.Rejected == 0 {
		t.Fatalf("rejected = 0, want > 0; stats %+v", st)
	}

	// The self-healing path: registration lands, the reading drains.
	sink.register("late")
	if !rs.Flush(2 * time.Second) {
		t.Fatalf("buffer did not drain after the sensor registered; stats %+v", rs.Stats())
	}
	if got := sink.received(); len(got) != 3 {
		t.Fatalf("delivered %d readings after registration, want 3", len(got))
	}
}

// TestResilientSinkBatchFastPathPartialReject covers the synchronous
// IngestBatch fast path: the stored part of the batch must not be
// re-buffered, only the rejects are held for retry.
func TestResilientSinkBatchFastPathPartialReject(t *testing.T) {
	sink := newValidatingSink("good")
	rs := NewResilientSink(sink, ResilientOptions{RetryInterval: time.Millisecond})
	defer rs.Close()

	batch := []model.Reading{
		sensorReading("good", "bob", 0),
		sensorReading("late", "eve", 1),
		sensorReading("good", "alice", 2),
	}
	if err := rs.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	st := rs.Stats()
	if st.Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2; stats %+v", st.Forwarded, st)
	}
	time.Sleep(20 * time.Millisecond)
	if got := sink.received(); len(got) != 2 {
		t.Fatalf("delivered %d readings, want exactly 2 (stored rows must not be re-sent)", len(got))
	}
	sink.register("late")
	if !rs.Flush(2 * time.Second) {
		t.Fatalf("rejected reading never drained; stats %+v", rs.Stats())
	}
	if got := sink.received(); len(got) != 3 {
		t.Fatalf("delivered %d readings after registration, want 3", len(got))
	}
}

// blockingBatchSink parks IngestBatch until released, to prove the
// batcher delivers outside its buffer lock.
type blockingBatchSink struct {
	entered chan struct{}
	release chan struct{}
}

func (s *blockingBatchSink) IngestBatch(rs []model.Reading) error {
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-s.release
	return nil
}

// TestBatcherIngestNotBlockedBySlowDelivery: while one flush is stuck
// in the sink, concurrent Ingest and Pending calls must still return.
func TestBatcherIngestNotBlockedBySlowDelivery(t *testing.T) {
	sink := &blockingBatchSink{
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	b := NewBatcher(sink, 2)
	go func() {
		_ = b.Ingest(batchReading("bob", 0))
		_ = b.Ingest(batchReading("bob", 1)) // fills the buffer, flush blocks
	}()
	select {
	case <-sink.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("flush never reached the sink")
	}
	done := make(chan struct{})
	go func() {
		_ = b.Ingest(batchReading("bob", 2))
		_ = b.Pending()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Ingest/Pending blocked behind a slow delivery")
	}
	close(sink.release)
}
