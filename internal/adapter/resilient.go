// Graceful degradation for adapters whose sink is remote: when the
// Location Service is unreachable, readings buffer locally (bounded,
// with an explicit drop policy) instead of erroring back into device
// code, a circuit breaker quarantines a persistently failing sink so
// every emit doesn't pay a timeout, and a Healthy/Degraded/Down state
// summarizes the pipeline for operators (surfaced through mwctl).
package adapter

import (
	"errors"
	"sync"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// ResilientSink metrics, cached once; Pending is reported as a gauge
// whenever the buffer length changes.
var (
	mResForwarded    = obs.Default().Counter("resilient_forwarded_total")
	mResBuffered     = obs.Default().Counter("resilient_buffered_total")
	mResDropped      = obs.Default().Counter("resilient_dropped_total")
	mResRejected     = obs.Default().Counter("resilient_rejected_total")
	mResBreakerOpens = obs.Default().Counter("resilient_breaker_opens_total")
	mResCreditStalls = obs.Default().Counter("resilient_credit_stalls_total")
	mResProbes       = obs.Default().Counter("resilient_probes_total")
	mResProbeFails   = obs.Default().Counter("resilient_probe_failures_total")
	mResPending      = obs.Default().Gauge("resilient_pending")
)

// Prober is an optional Sink capability: a cheap liveness check that
// neither reads nor writes data (the remote LocationClient sends the
// no-op mw.hello frame). When the wrapped sink implements it, the
// breaker's half-open trial is a probe instead of a buffered chunk —
// a still-down sink costs one empty frame, never a data delivery, and
// the buffered readings stay exactly where they are.
type Prober interface {
	Probe() error
}

// creditStalled reports whether a delivery failed only because the
// sink's credit window is exhausted (streaming ingest backpressure).
// Nothing was sent and the transport is healthy: the reading buffers
// for a paced retry and the circuit breaker stays closed — opening it
// would turn ordinary backpressure into an outage.
func creditStalled(err error) bool {
	return errors.Is(err, mwrpc.ErrNoCredit)
}

// rejectedIn extracts the sink's per-reading validation report from a
// delivery error, or nil when the failure is transport-class. The
// distinction drives retry policy: a validation rejection means the
// sink stored everything else in the batch, so re-delivering the whole
// batch would duplicate stored rows; a transport error means nothing
// landed and the batch is safe to retry whole.
func rejectedIn(err error) *spatialdb.RejectedError {
	var rej *spatialdb.RejectedError
	if errors.As(err, &rej) {
		return rej
	}
	return nil
}

// DropPolicy says which reading to discard when the buffer is full.
type DropPolicy int

// Drop policies.
const (
	// DropOldest discards the oldest buffered reading (prefer fresh
	// data — the right default for location fixes, where a newer
	// reading supersedes an older one anyway).
	DropOldest DropPolicy = iota
	// DropNewest discards the incoming reading (preserve history).
	DropNewest
)

// ResilientOptions tunes a ResilientSink. The zero value is usable.
type ResilientOptions struct {
	// BufferSize bounds the number of readings held while the sink is
	// down (default 256).
	BufferSize int
	// Policy picks the victim when the buffer overflows.
	Policy DropPolicy
	// FailureThreshold is how many consecutive delivery failures open
	// the circuit breaker (default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker quarantines the sink before
	// probing it again (default 1s).
	Cooldown time.Duration
	// RetryInterval paces drain attempts while readings are buffered
	// and the breaker is closed (default 50ms).
	RetryInterval time.Duration
	// Clock supplies time (tests); defaults to time.Now.
	Clock func() time.Time
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.BufferSize <= 0 {
		o.BufferSize = 256
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 50 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// ResilientStats counts what the sink did.
type ResilientStats struct {
	// Forwarded reached the sink; Buffered entered the buffer at least
	// once; Dropped were discarded by the overflow policy.
	Forwarded, Buffered, Dropped uint64
	// Rejected counts per-reading validation rejections reported by the
	// sink. Rejected readings stay buffered for a paced retry, so one
	// persistently invalid reading increments this once per attempt.
	Rejected uint64
	// CreditStalls counts deliveries deferred because the sink's credit
	// window was exhausted (streaming-ingest backpressure). Stalled
	// readings buffer and retry; the breaker does not open.
	CreditStalls uint64
	// Probes counts half-open liveness probes sent to a Prober sink;
	// ProbeFails counts the ones that failed (each re-opens the
	// breaker for another cooldown without touching the buffer).
	Probes, ProbeFails uint64
	// BreakerOpens counts closed→open transitions.
	BreakerOpens int
	// Pending is the current buffer depth.
	Pending int
}

// ResilientSink wraps any Sink (typically a remote LocationClient)
// with a bounded ingest buffer and a circuit breaker. Ingest never
// returns a sink error: delivery failures degrade service (buffering,
// then dropping by policy) instead of propagating into device code.
type ResilientSink struct {
	sink Sink
	opts ResilientOptions

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []model.Reading
	stats  ResilientStats
	closed bool
	done   chan struct{}

	// breaker state
	consecFails int
	openUntil   time.Time

	// frontDrops counts DropOldest evictions; the drain uses the delta
	// across an unlocked delivery to tell how much of its chunk is
	// still at the buffer's front.
	frontDrops uint64
}

// batchDrainMax bounds one drain delivery; it matches the batcher's
// default flush size.
const batchDrainMax = 64

// NewResilientSink wraps sink. Close releases the drain goroutine.
func NewResilientSink(sink Sink, opts ResilientOptions) *ResilientSink {
	r := &ResilientSink{
		sink: sink,
		opts: opts.withDefaults(),
		done: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	go r.drain()
	return r
}

// Ingest implements Sink. The fast path delivers synchronously; when
// the sink is failing (or order would be violated because readings are
// already buffered), the reading is buffered and delivered in the
// background, preserving arrival order.
func (r *ResilientSink) Ingest(reading model.Reading) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if len(r.buf) == 0 && !r.breakerOpen() {
		r.mu.Unlock()
		err := r.sink.Ingest(reading)
		if err == nil {
			r.mu.Lock()
			r.noteSuccess()
			r.stats.Forwarded++
			r.mu.Unlock()
			mResForwarded.Inc()
			return nil
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		if creditStalled(err) {
			// Backpressure, not failure: nothing was sent, the transport
			// is healthy. Buffer and let the drain retry after acks
			// replenish the window.
			r.noteSuccess()
			r.stats.CreditStalls++
			mResCreditStalls.Inc()
		} else if rejectedIn(err) == nil {
			r.noteFailure()
		} else {
			// Validation rejection: the transport worked, so the breaker
			// stays closed; the reading buffers for a paced retry (an
			// unknown sensor during startup ordering heals once the
			// registration lands).
			r.noteSuccess()
			r.stats.Rejected++
			mResRejected.Inc()
		}
	}
	r.enqueue(reading)
	r.mu.Unlock()
	return nil
}

// enqueue adds a reading under r.mu, applying the drop policy.
func (r *ResilientSink) enqueue(reading model.Reading) {
	if len(r.buf) >= r.opts.BufferSize {
		r.stats.Dropped++
		mResDropped.Inc()
		if r.opts.Policy == DropNewest {
			return
		}
		r.buf = r.buf[1:]
		r.frontDrops++
	}
	r.buf = append(r.buf, reading)
	r.stats.Buffered++
	mResBuffered.Inc()
	mResPending.Set(float64(len(r.buf)))
	r.cond.Signal()
}

// breakerOpen reports quarantine state; called with r.mu held.
func (r *ResilientSink) breakerOpen() bool {
	return r.consecFails >= r.opts.FailureThreshold &&
		r.opts.Clock().Before(r.openUntil)
}

// noteFailure records a delivery failure; called with r.mu held.
func (r *ResilientSink) noteFailure() {
	r.consecFails++
	if r.consecFails == r.opts.FailureThreshold {
		r.stats.BreakerOpens++
		mResBreakerOpens.Inc()
	}
	if r.consecFails >= r.opts.FailureThreshold {
		r.openUntil = r.opts.Clock().Add(r.opts.Cooldown)
	}
}

// noteSuccess closes the breaker; called with r.mu held.
func (r *ResilientSink) noteSuccess() {
	r.consecFails = 0
}

// drain delivers buffered readings in order, probing a quarantined
// sink after each cooldown. A batch-capable sink receives chunks of up
// to batchDrainMax readings in one call; others get one at a time.
//
// Retry policy is error-class dependent. A transport failure means
// nothing landed, so the chunk is retried whole — with a remote sink
// that is the same at-least-once contract single readings already
// have. A validation rejection (*spatialdb.RejectedError) means the
// sink stored everything except the rejected readings: the chunk is
// popped (retrying it whole would duplicate the stored rows and wedge
// the buffer behind a persistently invalid reading) and only the
// rejects re-enter the buffer for a paced retry.
func (r *ResilientSink) drain() {
	defer close(r.done)
	bs, batching := r.sink.(BatchSink)
	prober, canProbe := r.sink.(Prober)
	r.mu.Lock()
	for {
		for !r.closed && len(r.buf) == 0 {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		if r.breakerOpen() {
			wait := r.openUntil.Sub(r.opts.Clock())
			r.mu.Unlock()
			r.sleep(wait)
			r.mu.Lock()
			continue
		}
		if canProbe && r.consecFails >= r.opts.FailureThreshold {
			// Half-open: the cooldown elapsed but the sink never
			// succeeded since the breaker opened. Trial with a no-op
			// liveness frame, not buffered data — a failed probe re-arms
			// the quarantine and the buffer is untouched.
			r.stats.Probes++
			mResProbes.Inc()
			r.mu.Unlock()
			perr := prober.Probe()
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				return
			}
			if perr != nil {
				r.stats.ProbeFails++
				mResProbeFails.Inc()
				r.noteFailure()
				continue
			}
			// Probe passed; fall through and deliver the chunk. The
			// breaker closes only when the data delivery itself succeeds.
		}
		n := 1
		if batching && len(r.buf) > 1 {
			n = len(r.buf)
			if n > batchDrainMax {
				n = batchDrainMax
			}
		}
		chunk := append([]model.Reading(nil), r.buf[:n]...)
		drops0 := r.frontDrops
		r.mu.Unlock()
		var err error
		if len(chunk) > 1 {
			err = bs.IngestBatch(chunk)
		} else {
			err = r.sink.Ingest(chunk[0])
		}
		r.mu.Lock()
		if err != nil {
			if creditStalled(err) {
				// Credit window exhausted: the chunk stays at the buffer
				// front and retries after a pacing delay (the sink's acks
				// replenish credits in the background). The breaker stays
				// closed — this is flow control working, not an outage.
				r.noteSuccess()
				r.stats.CreditStalls++
				mResCreditStalls.Inc()
				r.mu.Unlock()
				r.sleep(r.opts.RetryInterval)
				r.mu.Lock()
				continue
			}
			if rej := rejectedIn(err); rej != nil {
				requeued := r.settleRejected(chunk, drops0, rej)
				if requeued {
					// Pace the rejects' retry so a reading that stays
					// invalid (sensor not registered yet) doesn't spin.
					r.mu.Unlock()
					r.sleep(r.opts.RetryInterval)
					r.mu.Lock()
				}
				continue
			}
			r.noteFailure()
			if !r.breakerOpen() {
				r.mu.Unlock()
				r.sleep(r.opts.RetryInterval)
				r.mu.Lock()
			}
			continue
		}
		r.noteSuccess()
		// Overflow may have dropped some of the chunk's readings from
		// the buffer front while unlocked; only the remainder is still
		// there to pop, and only that remainder is credited as
		// forwarded (the evicted ones were already counted dropped).
		pop := len(chunk) - int(r.frontDrops-drops0)
		if pop > len(r.buf) {
			pop = len(r.buf)
		}
		if pop > 0 {
			r.buf = r.buf[pop:]
			r.stats.Forwarded += uint64(pop)
			mResForwarded.Add(uint64(pop))
		}
		mResPending.Set(float64(len(r.buf)))
	}
}

// settleRejected resolves a drain delivery that the sink rejected for
// part of the chunk: everything else was stored, so the stored
// readings pop as forwarded and only the rejected ones return to the
// buffer front (order preserved) for a paced retry — the self-healing
// the single-reading path always had for a sensor that registers after
// its first readings arrive. Rejects the overflow policy already
// evicted while the lock was released stay dropped. Called with r.mu
// held; reports whether any reading was re-buffered.
func (r *ResilientSink) settleRejected(chunk []model.Reading, drops0 uint64, rej *spatialdb.RejectedError) bool {
	r.noteSuccess() // the breaker tracks transport health, not data validity
	r.stats.Rejected += uint64(len(rej.Indices))
	mResRejected.Add(uint64(len(rej.Indices)))
	d := int(r.frontDrops - drops0)
	pop := len(chunk) - d
	if pop > len(r.buf) {
		pop = len(r.buf)
	}
	if pop <= 0 {
		// The whole chunk was evicted (or Close dropped the buffer)
		// while the delivery was in flight; nothing left to settle.
		return false
	}
	requeue := make([]model.Reading, 0, len(rej.Indices))
	for _, idx := range rej.Indices {
		if idx >= d && idx-d < pop {
			requeue = append(requeue, chunk[idx])
		}
	}
	stored := pop - len(requeue)
	rest := r.buf[pop:]
	if len(requeue) > 0 {
		buf := make([]model.Reading, 0, len(requeue)+len(rest))
		r.buf = append(append(buf, requeue...), rest...)
	} else {
		r.buf = rest
	}
	if stored > 0 {
		r.stats.Forwarded += uint64(stored)
		mResForwarded.Add(uint64(stored))
	}
	mResPending.Set(float64(len(r.buf)))
	return len(requeue) > 0
}

// IngestBatch implements BatchSink: a whole batch enters the pipeline
// at once. The fast path hands it to a batch-capable healthy sink in
// one call; otherwise the readings buffer individually and drain in
// order.
func (r *ResilientSink) IngestBatch(rs []model.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if bs, ok := r.sink.(BatchSink); ok && len(r.buf) == 0 && !r.breakerOpen() {
		r.mu.Unlock()
		err := bs.IngestBatch(rs)
		if err == nil {
			r.mu.Lock()
			r.noteSuccess()
			r.stats.Forwarded += uint64(len(rs))
			r.mu.Unlock()
			mResForwarded.Add(uint64(len(rs)))
			return nil
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		if creditStalled(err) {
			// Nothing was sent; the whole batch buffers for the drain to
			// retry once acks replenish the credit window.
			r.noteSuccess()
			r.stats.CreditStalls++
			mResCreditStalls.Inc()
			for _, reading := range rs {
				r.enqueue(reading)
			}
			r.mu.Unlock()
			return nil
		}
		if rej := rejectedIn(err); rej != nil {
			// The sink stored everything except the rejects; buffering
			// the whole batch again would duplicate the stored rows, so
			// only the rejected readings enter the buffer for a paced
			// retry by the drain.
			r.noteSuccess()
			r.stats.Rejected += uint64(len(rej.Indices))
			mResRejected.Add(uint64(len(rej.Indices)))
			stored := len(rs)
			for _, idx := range rej.Indices {
				if idx >= 0 && idx < len(rs) {
					stored--
					r.enqueue(rs[idx])
				}
			}
			r.stats.Forwarded += uint64(stored)
			r.mu.Unlock()
			mResForwarded.Add(uint64(stored))
			return nil
		}
		r.noteFailure()
	}
	for _, reading := range rs {
		r.enqueue(reading)
	}
	r.mu.Unlock()
	return nil
}

// sleep waits without holding r.mu, waking early on Close.
func (r *ResilientSink) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.done:
	}
}

// Health classifies the pipeline: Healthy when the breaker is closed
// and nothing is buffered, Degraded while readings are queued or
// recent failures occurred, Down while the breaker quarantines the
// sink (or after Close).
func (r *ResilientSink) Health() core.HealthState {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.closed:
		return core.Down
	case r.breakerOpen():
		return core.Down
	case len(r.buf) > 0 || r.consecFails > 0:
		return core.Degraded
	default:
		return core.Healthy
	}
}

// Stats snapshots the counters.
func (r *ResilientSink) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Pending = len(r.buf)
	return s
}

// Flush blocks until the buffer drains or the timeout expires,
// reporting whether it drained.
func (r *ResilientSink) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		empty := len(r.buf) == 0
		closed := r.closed
		r.mu.Unlock()
		if empty {
			return true
		}
		if closed || time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the drain goroutine; buffered readings still undelivered
// are dropped (counted in Stats). Flush first for a clean handover.
func (r *ResilientSink) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	r.stats.Dropped += uint64(len(r.buf))
	mResDropped.Add(uint64(len(r.buf)))
	r.buf = nil
	mResPending.Set(0)
	r.cond.Signal()
	r.mu.Unlock()
	<-r.done
}
