package adapter

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// flakySink fails while broken, recording what got through.
type flakySink struct {
	mu     sync.Mutex
	broken bool
	got    []model.Reading
	calls  int
}

func (f *flakySink) Ingest(r model.Reading) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.broken {
		return errors.New("sink down")
	}
	f.got = append(f.got, r)
	return nil
}

func (f *flakySink) setBroken(b bool) {
	f.mu.Lock()
	f.broken = b
	f.mu.Unlock()
}

func (f *flakySink) received() []model.Reading {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]model.Reading(nil), f.got...)
}

func TestResilientSinkFastPath(t *testing.T) {
	sink := &flakySink{}
	rs := NewResilientSink(sink, ResilientOptions{})
	defer rs.Close()

	t0 := time.Now()
	for i := 0; i < 5; i++ {
		if err := rs.Ingest(model.Reading{MObjectID: "bob", SensorID: "s", Time: t0}); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if got := len(sink.received()); got != 5 {
		t.Fatalf("forwarded %d readings, want 5", got)
	}
	st := rs.Stats()
	if st.Forwarded != 5 || st.Buffered != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 5 forwarded, none buffered/dropped", st)
	}
	if h := rs.Health(); h != core.Healthy {
		t.Fatalf("health = %v, want healthy", h)
	}
}

func TestResilientSinkBuffersAndRecovers(t *testing.T) {
	sink := &flakySink{broken: true}
	rs := NewResilientSink(sink, ResilientOptions{
		FailureThreshold: 3,
		Cooldown:         20 * time.Millisecond,
		RetryInterval:    5 * time.Millisecond,
	})
	defer rs.Close()

	t0 := time.Now()
	for i := 0; i < 4; i++ {
		if err := rs.Ingest(model.Reading{MObjectID: "obj", SensorID: "s", Time: t0.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	// Let failures accumulate until the breaker opens.
	deadline := time.Now().Add(2 * time.Second)
	for rs.Health() != core.Down {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; stats %+v", rs.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	sink.setBroken(false)
	if !rs.Flush(2 * time.Second) {
		t.Fatalf("buffer did not drain after recovery; stats %+v", rs.Stats())
	}
	got := sink.received()
	if len(got) != 4 {
		t.Fatalf("delivered %d readings, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatalf("delivery out of order at %d: %v after %v", i, got[i].Time, got[i-1].Time)
		}
	}
	// Health returns to Healthy once drained and the breaker closes.
	deadline = time.Now().Add(2 * time.Second)
	for rs.Health() != core.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("health stuck at %v after recovery", rs.Health())
		}
		time.Sleep(time.Millisecond)
	}
	if st := rs.Stats(); st.BreakerOpens < 1 {
		t.Fatalf("stats = %+v, want at least one breaker open", st)
	}
}

func TestResilientSinkDropOldest(t *testing.T) {
	sink := &flakySink{broken: true}
	rs := NewResilientSink(sink, ResilientOptions{
		BufferSize:       3,
		Policy:           DropOldest,
		FailureThreshold: 1,
		Cooldown:         time.Hour, // keep the breaker open for the whole test
	})
	defer rs.Close()

	t0 := time.Now()
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		if err := rs.Ingest(model.Reading{MObjectID: id, SensorID: "s", Time: t0}); err != nil {
			t.Fatalf("ingest %s: %v", id, err)
		}
	}
	st := rs.Stats()
	if st.Pending != 3 {
		t.Fatalf("pending = %d, want 3", st.Pending)
	}
	if st.Dropped < 2 {
		t.Fatalf("dropped = %d, want >= 2", st.Dropped)
	}

	if st.Buffered != 5 {
		t.Fatalf("buffered = %d, want 5", st.Buffered)
	}
	if h := rs.Health(); h != core.Down {
		t.Fatalf("health with open breaker = %v, want down", h)
	}
}

func TestResilientSinkDropNewest(t *testing.T) {
	sink := &flakySink{broken: true}
	rs := NewResilientSink(sink, ResilientOptions{
		BufferSize:       2,
		Policy:           DropNewest,
		FailureThreshold: 1,
		Cooldown:         time.Hour,
	})
	defer rs.Close()

	t0 := time.Now()
	for _, id := range []string{"a", "b", "c"} {
		if err := rs.Ingest(model.Reading{MObjectID: id, SensorID: "s", Time: t0}); err != nil {
			t.Fatalf("ingest %s: %v", id, err)
		}
	}
	st := rs.Stats()
	if st.Pending != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want pending 2 dropped 1", st)
	}
}

func TestResilientSinkClose(t *testing.T) {
	sink := &flakySink{broken: true}
	rs := NewResilientSink(sink, ResilientOptions{
		FailureThreshold: 1,
		Cooldown:         time.Hour,
	})
	if err := rs.Ingest(model.Reading{MObjectID: "x", SensorID: "s", Time: time.Now()}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	rs.Close()
	if err := rs.Ingest(model.Reading{MObjectID: "y", SensorID: "s", Time: time.Now()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close = %v, want ErrClosed", err)
	}
	if h := rs.Health(); h != core.Down {
		t.Fatalf("health after close = %v, want down", h)
	}
	rs.Close() // idempotent
}

// TestRateLimiterPruning exercises the lastSent sweep: a long parade
// of distinct object IDs must not grow the map without bound.
func TestRateLimiterPruning(t *testing.T) {
	sink := &flakySink{}
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	b, err := NewBase("s1", model.RFIDSpec(0.9), sink, nil, Options{
		MinInterval: time.Second,
		Clock:       clock,
	})
	if err != nil {
		t.Fatalf("NewBase: %v", err)
	}
	defer b.Close()

	for i := 0; i < 1000; i++ {
		r := model.Reading{
			MObjectID: fmt.Sprintf("obj-%d", i),
			Location:  glob.CoordinatePoint(glob.GLOB{}, geom.Pt(0, 0)),
			Time:      now,
		}
		if err := b.emit(r); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
		now = now.Add(2 * time.Second)
	}
	b.mu.Lock()
	size := len(b.lastSent)
	b.mu.Unlock()
	// Retention is 4 MinIntervals and emits are 2s apart, so only the
	// last few entries may survive a sweep.
	if size > 16 {
		t.Fatalf("lastSent grew to %d entries, want pruned (<= 16)", size)
	}
}

// probingSink is a flaky sink whose liveness probe is controlled
// independently of delivery, so tests can hold the breaker in
// half-open purgatory: probes fail (keeping deliveries quarantined)
// while the buffer must stay intact.
type probingSink struct {
	flakySink
	probeBroken bool
	probes      int
}

func (p *probingSink) Probe() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probes++
	if p.probeBroken {
		return errors.New("probe: sink down")
	}
	return nil
}

func (p *probingSink) probeCalls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.probes
}

func (p *probingSink) setProbeBroken(b bool) {
	p.mu.Lock()
	p.probeBroken = b
	p.mu.Unlock()
}

// TestResilientSinkProbeGuardsBuffer pins the half-open contract: once
// the breaker opens, every cooldown expiry costs one mw.hello-style
// probe, not a data delivery, and a failing probe never drops (or
// delivers) buffered readings. When the probe finally passes, the
// buffer drains in order and nothing was lost.
func TestResilientSinkProbeGuardsBuffer(t *testing.T) {
	sink := &probingSink{flakySink: flakySink{broken: true}, probeBroken: true}
	rs := NewResilientSink(sink, ResilientOptions{
		FailureThreshold: 2,
		Cooldown:         5 * time.Millisecond,
		RetryInterval:    2 * time.Millisecond,
	})
	defer rs.Close()

	t0 := time.Now()
	for i := 0; i < 6; i++ {
		if err := rs.Ingest(model.Reading{MObjectID: "obj", SensorID: "s", Time: t0.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	// Wait for the breaker to open, then note how many delivery
	// attempts it took.
	deadline := time.Now().Add(2 * time.Second)
	for rs.Health() != core.Down {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; stats %+v", rs.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	sink.mu.Lock()
	callsAtOpen := sink.calls
	sink.mu.Unlock()

	// Several cooldown cycles with a failing probe: the sink must see
	// probes but no further delivery attempts, and the buffer must not
	// shrink or drop.
	deadline = time.Now().Add(2 * time.Second)
	for sink.probeCalls() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("probes not attempted; stats %+v", rs.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	sink.mu.Lock()
	callsDuringQuarantine := sink.calls
	sink.mu.Unlock()
	if callsDuringQuarantine != callsAtOpen {
		t.Fatalf("quarantined sink saw %d delivery attempts beyond the %d pre-open ones — probes must carry the trial",
			callsDuringQuarantine-callsAtOpen, callsAtOpen)
	}
	st := rs.Stats()
	if st.Pending != 6 || st.Dropped != 0 {
		t.Fatalf("probe failures disturbed the buffer: %+v (want 6 pending, 0 dropped)", st)
	}
	if st.Probes < 3 || st.ProbeFails < 3 {
		t.Fatalf("probe stats = %+v, want >= 3 probes and failures", st)
	}

	// Probe heals first, then delivery: everything drains, in order.
	sink.setProbeBroken(false)
	sink.setBroken(false)
	if !rs.Flush(2 * time.Second) {
		t.Fatalf("buffer did not drain after probe recovery; stats %+v", rs.Stats())
	}
	got := sink.received()
	if len(got) != 6 {
		t.Fatalf("delivered %d readings, want all 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatalf("delivery out of order at %d", i)
		}
	}
}
