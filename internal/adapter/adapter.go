// Package adapter implements MiddleWhere's location adapters (§6): the
// device-driver layer that wraps each location technology, converts
// its native readings into the common Reading representation (GLOB +
// detection radius + timestamp), applies the technology's calibration
// (the x/y/z error model of §4.1.1), and feeds the spatial database.
// In the paper each adapter is a CORBA client wrapper; here an adapter
// is an object bound to a Sink (the Location Service or, remotely, an
// mwrpc client implementing the same interface).
//
// Per §2, adapters can be programmed to filter events and to limit the
// rate at which they forward readings; Options carries both knobs.
package adapter

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// Sink consumes readings; *core.Service and the mwrpc client both
// satisfy it.
type Sink interface {
	Ingest(model.Reading) error
}

// Registrar registers sensor calibrations; *core.Service satisfies it.
type Registrar interface {
	RegisterSensor(sensorID string, spec model.SensorSpec) error
}

// Expirer force-expires stored readings; *spatialdb.DB satisfies it.
// The biometric adapter uses it on manual logout (§6.3).
type Expirer interface {
	ExpireReadings(now time.Time, match func(model.Reading) bool)
}

// Options are the programmable adapter knobs of §2.
type Options struct {
	// MinInterval drops readings for the same mobile object arriving
	// faster than this; zero forwards everything.
	MinInterval time.Duration
	// Filter, when non-nil, drops readings for which it returns false.
	Filter func(model.Reading) bool
	// Clock supplies time for rate limiting; defaults to time.Now.
	Clock func() time.Time
}

func (o Options) clock() func() time.Time {
	if o.Clock == nil {
		return time.Now
	}
	return o.Clock
}

// ErrClosed is returned by adapters after Close.
var ErrClosed = errors.New("adapter: closed")

// Base carries the common adapter machinery: identity, calibration,
// the sink, rate limiting and filtering. Concrete adapters embed a
// *Base by composition (as a named field, per style guidance) and call
// emit.
type Base struct {
	id   string
	spec model.SensorSpec
	sink Sink
	opts Options

	mu       sync.Mutex
	lastSent map[string]time.Time
	// lastPrune is when lastSent was last swept; entries older than a
	// few MinIntervals are dead weight (the next reading for that
	// object passes the rate limit regardless), so they are pruned
	// rather than accumulated forever — one entry per mobile object ID
	// ever seen would otherwise grow without bound.
	lastPrune time.Time
	closed    bool

	// Forwarded/Dropped count emitted and suppressed readings (for
	// diagnostics and the adapter tests).
	forwarded, dropped int
}

// NewBase wires an adapter identity to a sink. The sensor is
// registered with the registrar immediately.
func NewBase(id string, spec model.SensorSpec, sink Sink, reg Registrar, opts Options) (*Base, error) {
	if id == "" {
		return nil, errors.New("adapter: empty id")
	}
	if sink == nil {
		return nil, errors.New("adapter: nil sink")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("adapter %s: %w", id, err)
	}
	if reg != nil {
		if err := reg.RegisterSensor(id, spec); err != nil {
			return nil, fmt.Errorf("adapter %s: %w", id, err)
		}
	}
	return &Base{
		id:       id,
		spec:     spec,
		sink:     sink,
		opts:     opts,
		lastSent: make(map[string]time.Time),
	}, nil
}

// ID returns the adapter ID (which doubles as the sensor ID).
func (b *Base) ID() string { return b.id }

// Spec returns the adapter's calibration.
func (b *Base) Spec() model.SensorSpec { return b.spec }

// Stats returns the forwarded and dropped reading counts.
func (b *Base) Stats() (forwarded, dropped int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.forwarded, b.dropped
}

// Close stops the adapter; subsequent emits fail with ErrClosed.
func (b *Base) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

// pruneRetention is how many MinIntervals a rate-limiter entry
// survives without a new reading before it is swept.
const pruneRetention = 4

// pruneLastSent sweeps rate-limiter entries that can no longer
// suppress anything. Called with b.mu held; runs at most once per
// MinInterval, so its cost amortizes to O(1) per emit.
func (b *Base) pruneLastSent(now time.Time) {
	if now.Sub(b.lastPrune) < b.opts.MinInterval {
		return
	}
	b.lastPrune = now
	horizon := pruneRetention * b.opts.MinInterval
	for id, last := range b.lastSent {
		if now.Sub(last) > horizon {
			delete(b.lastSent, id)
		}
	}
}

// Adapter metrics, cached once so emit stays alloc-free. Per-adapter
// breakdowns remain available through each adapter's Stats().
var (
	mAdapterForwarded = obs.Default().Counter("adapter_forwarded_total")
	mAdapterDropped   = obs.Default().Counter("adapter_dropped_total")
)

// emit applies filtering and rate limiting, stamps the adapter
// identity, and forwards the reading to the sink.
func (b *Base) emit(r model.Reading) error {
	r.SensorID = b.id
	r.SensorType = b.spec.Type

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if b.opts.Filter != nil && !b.opts.Filter(r) {
		b.dropped++
		b.mu.Unlock()
		mAdapterDropped.Inc()
		return nil
	}
	if b.opts.MinInterval > 0 {
		now := b.opts.clock()()
		if last, ok := b.lastSent[r.MObjectID]; ok && now.Sub(last) < b.opts.MinInterval {
			b.dropped++
			b.mu.Unlock()
			mAdapterDropped.Inc()
			return nil
		}
		b.lastSent[r.MObjectID] = now
		b.pruneLastSent(now)
	}
	b.forwarded++
	b.mu.Unlock()
	mAdapterForwarded.Inc()
	return b.sink.Ingest(r)
}

// ---------------------------------------------------------------------------
// Ubisense (§6.1)

// Ubisense wraps the Ubisense UWB tag technology: base stations report
// tag coordinates within 6 inches 95% of the time.
type Ubisense struct {
	base *Base
	// frame is the GLOB prefix the fixes are expressed in (a floor).
	frame glob.GLOB
}

// NewUbisense creates a Ubisense adapter reporting fixes in the given
// coordinate frame.
func NewUbisense(id string, frame glob.GLOB, carryProb float64, sink Sink, reg Registrar, opts Options) (*Ubisense, error) {
	b, err := NewBase(id, model.UbisenseSpec(carryProb), sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &Ubisense{base: b, frame: frame}, nil
}

// ID returns the adapter ID.
func (u *Ubisense) ID() string { return u.base.ID() }

// Stats returns forwarded/dropped counts.
func (u *Ubisense) Stats() (int, int) { return u.base.Stats() }

// Close stops the adapter.
func (u *Ubisense) Close() { u.base.Close() }

// ReportFix forwards a tag fix at a frame coordinate.
func (u *Ubisense) ReportFix(tagID string, pos geom.Point, at time.Time) error {
	return u.base.emit(model.Reading{
		MObjectID:       tagID,
		Location:        glob.CoordinatePoint(u.frame, pos),
		DetectionRadius: u.base.spec.Resolution.Radius,
		Time:            at,
	})
}

// ---------------------------------------------------------------------------
// RFID badges (§6.2)

// RFID wraps an RF badge base station: it cannot report coordinates,
// only that a badge is within range of the station, so every reading
// is a circle (MBR) around the station position.
type RFID struct {
	base    *Base
	frame   glob.GLOB
	station geom.Point
	rng     float64
}

// NewRFID creates an RFID base-station adapter at a fixed position
// with the given detection range (the paper's hardware reaches ~15 ft).
func NewRFID(id string, frame glob.GLOB, station geom.Point, rangeFt, carryProb float64, sink Sink, reg Registrar, opts Options) (*RFID, error) {
	spec := model.RFIDSpec(carryProb)
	if rangeFt > 0 {
		spec.Resolution = model.DistanceResolution(rangeFt)
	}
	b, err := NewBase(id, spec, sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &RFID{base: b, frame: frame, station: station, rng: spec.Resolution.Radius}, nil
}

// ID returns the adapter ID.
func (r *RFID) ID() string { return r.base.ID() }

// Stats returns forwarded/dropped counts.
func (r *RFID) Stats() (int, int) { return r.base.Stats() }

// Close stops the adapter.
func (r *RFID) Close() { r.base.Close() }

// ReportBadge forwards a badge sighting: the badge is somewhere within
// range of the station.
func (r *RFID) ReportBadge(badgeID string, at time.Time) error {
	return r.base.emit(model.Reading{
		MObjectID:       badgeID,
		Location:        glob.CoordinatePoint(r.frame, r.station),
		DetectionRadius: r.rng,
		Time:            at,
	})
}

// ---------------------------------------------------------------------------
// Biometric logins (§6.3)

// Biometric wraps a fingerprint reader or similar login device. A
// login produces two readings: a short-term, high-confidence fix at
// the device and a long-term room-level reading that persists until
// the user probably left. A manual logout emits one final short fix
// and force-expires the long-term reading.
type Biometric struct {
	short *Base
	long  *Base

	frame    glob.GLOB
	device   geom.Point
	room     glob.GLOB
	expirer  Expirer
	stayTime time.Duration
}

// NewBiometric creates a biometric login adapter. device is the
// reader's position in frame coordinates; room the symbolic region the
// long reading covers; stay the §6.3 T parameter (how long a user
// plausibly remains after authenticating, 15 min in the paper);
// leaveProb the probability of leaving before T without logging out.
func NewBiometric(id string, frame glob.GLOB, device geom.Point, room glob.GLOB,
	stay time.Duration, leaveProb float64, sink Sink, reg Registrar, exp Expirer, opts Options) (*Biometric, error) {
	short, err := NewBase(id+"-short", model.BiometricShortSpec(), sink, reg, opts)
	if err != nil {
		return nil, err
	}
	long, err := NewBase(id+"-long", model.BiometricLongSpec(room, stay, leaveProb), sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &Biometric{
		short:    short,
		long:     long,
		frame:    frame,
		device:   device,
		room:     room,
		expirer:  exp,
		stayTime: stay,
	}, nil
}

// ID returns the adapter's base ID.
func (b *Biometric) ID() string { return b.short.ID() }

// Close stops both underlying emitters.
func (b *Biometric) Close() {
	b.short.Close()
	b.long.Close()
}

// Login reports a successful authentication: a 2-ft short-term fix at
// the device plus a room-level long-term reading.
func (b *Biometric) Login(userID string, at time.Time) error {
	if err := b.short.emit(model.Reading{
		MObjectID:       userID,
		Location:        glob.CoordinatePoint(b.frame, b.device),
		DetectionRadius: b.short.spec.Resolution.Radius,
		Time:            at,
	}); err != nil {
		return err
	}
	return b.long.emit(model.Reading{
		MObjectID: userID,
		Location:  b.room,
		Time:      at,
	})
}

// Logout reports a manual logout: the user is at the device right now
// but leaving; all prior readings for the user from this device expire
// immediately (§6.3).
func (b *Biometric) Logout(userID string, at time.Time) error {
	if b.expirer != nil {
		shortID, longID := b.short.ID(), b.long.ID()
		b.expirer.ExpireReadings(at, func(r model.Reading) bool {
			return r.MObjectID == userID && (r.SensorID == shortID || r.SensorID == longID)
		})
	}
	spec := model.BiometricShortSpec()
	spec.TTL = 15 * time.Second // the §6.3 logout reading expires fast
	return b.short.emit(model.Reading{
		MObjectID:       userID,
		Location:        glob.CoordinatePoint(b.frame, b.device),
		DetectionRadius: spec.Resolution.Radius,
		Time:            at,
	})
}

// ---------------------------------------------------------------------------
// GPS (§6.4)

// GeoReference anchors geodetic coordinates to a building frame: the
// reference latitude/longitude maps to Origin, with the given scale in
// frame units per degree.
type GeoReference struct {
	Lat0, Lon0     float64
	Origin         geom.Point
	UnitsPerDegLat float64
	UnitsPerDegLon float64
}

// ToFrame converts a geodetic position to frame coordinates.
func (g GeoReference) ToFrame(lat, lon float64) geom.Point {
	return geom.Pt(
		g.Origin.X+(lon-g.Lon0)*g.UnitsPerDegLon,
		g.Origin.Y+(lat-g.Lat0)*g.UnitsPerDegLat,
	)
}

// GPS wraps a GPS receiver: after a satellite lock the adapter
// translates latitude/longitude/accuracy into a coordinate reading in
// MiddleWhere's frame (§6.4).
type GPS struct {
	base  *Base
	frame glob.GLOB
	ref   GeoReference
}

// NewGPS creates a GPS adapter with the given geodetic anchoring.
func NewGPS(id string, frame glob.GLOB, ref GeoReference, carryProb float64, sink Sink, reg Registrar, opts Options) (*GPS, error) {
	b, err := NewBase(id, model.GPSSpec(carryProb, 15), sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &GPS{base: b, frame: frame, ref: ref}, nil
}

// ID returns the adapter ID.
func (g *GPS) ID() string { return g.base.ID() }

// Close stops the adapter.
func (g *GPS) Close() { g.base.Close() }

// ReportFix forwards a satellite fix: position plus the receiver's own
// accuracy estimate (used directly as the detection radius, §6.4).
func (g *GPS) ReportFix(userID string, lat, lon, accuracy float64, at time.Time) error {
	if accuracy <= 0 {
		accuracy = g.base.spec.Resolution.Radius
	}
	return g.base.emit(model.Reading{
		MObjectID:       userID,
		Location:        glob.CoordinatePoint(g.frame, g.ref.ToFrame(lat, lon)),
		DetectionRadius: accuracy,
		Time:            at,
	})
}

// ---------------------------------------------------------------------------
// Card readers (§1.1, §5.2)

// CardReader wraps a door badge reader: a swipe places the person in
// the reader's room with high confidence for a few seconds.
type CardReader struct {
	base *Base
	room glob.GLOB
}

// NewCardReader creates a card-reader adapter for a room.
func NewCardReader(id string, room glob.GLOB, sink Sink, reg Registrar, opts Options) (*CardReader, error) {
	b, err := NewBase(id, model.CardReaderSpec(room), sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &CardReader{base: b, room: room}, nil
}

// ID returns the adapter ID.
func (c *CardReader) ID() string { return c.base.ID() }

// Stats returns forwarded/dropped counts.
func (c *CardReader) Stats() (int, int) { return c.base.Stats() }

// Close stops the adapter.
func (c *CardReader) Close() { c.base.Close() }

// Swipe reports a badge swipe by a user.
func (c *CardReader) Swipe(userID string, at time.Time) error {
	return c.base.emit(model.Reading{
		MObjectID: userID,
		Location:  c.room,
		Time:      at,
	})
}

// ---------------------------------------------------------------------------
// Bluetooth (§1.1)

// Bluetooth wraps an inquiry-scanning Bluetooth station: discoverable
// devices within range answer scans, placing their owner near the
// station.
type Bluetooth struct {
	base    *Base
	frame   glob.GLOB
	station geom.Point
	rng     float64
}

// NewBluetooth creates a Bluetooth scanning station at a fixed
// position.
func NewBluetooth(id string, frame glob.GLOB, station geom.Point, rangeFt, carryProb float64, sink Sink, reg Registrar, opts Options) (*Bluetooth, error) {
	spec := model.BluetoothSpec(carryProb)
	if rangeFt > 0 {
		spec.Resolution = model.DistanceResolution(rangeFt)
	}
	b, err := NewBase(id, spec, sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &Bluetooth{base: b, frame: frame, station: station, rng: spec.Resolution.Radius}, nil
}

// ID returns the adapter ID.
func (bt *Bluetooth) ID() string { return bt.base.ID() }

// Stats returns forwarded/dropped counts.
func (bt *Bluetooth) Stats() (int, int) { return bt.base.Stats() }

// Close stops the adapter.
func (bt *Bluetooth) Close() { bt.base.Close() }

// ReportDiscovery forwards an inquiry response from a device.
func (bt *Bluetooth) ReportDiscovery(deviceOwner string, at time.Time) error {
	return bt.base.emit(model.Reading{
		MObjectID:       deviceOwner,
		Location:        glob.CoordinatePoint(bt.frame, bt.station),
		DetectionRadius: bt.rng,
		Time:            at,
	})
}

// ---------------------------------------------------------------------------
// Desktop logins (§1.1)

// DesktopLogin wraps workstation session events: a login proves the
// user was at the machine; the session keeps a slowly degrading
// room-level reading alive until logout.
type DesktopLogin struct {
	base    *Base
	room    glob.GLOB
	expirer Expirer
}

// NewDesktopLogin creates a login adapter for the workstation in the
// given room. session bounds how long an unattended login still counts
// as presence.
func NewDesktopLogin(id string, room glob.GLOB, session time.Duration, sink Sink, reg Registrar, exp Expirer, opts Options) (*DesktopLogin, error) {
	b, err := NewBase(id, model.DesktopLoginSpec(room, session), sink, reg, opts)
	if err != nil {
		return nil, err
	}
	return &DesktopLogin{base: b, room: room, expirer: exp}, nil
}

// ID returns the adapter ID.
func (d *DesktopLogin) ID() string { return d.base.ID() }

// Close stops the adapter.
func (d *DesktopLogin) Close() { d.base.Close() }

// Login reports a session start.
func (d *DesktopLogin) Login(userID string, at time.Time) error {
	return d.base.emit(model.Reading{
		MObjectID: userID,
		Location:  d.room,
		Time:      at,
	})
}

// Logout ends the session: the stored readings for this user from this
// workstation expire immediately.
func (d *DesktopLogin) Logout(userID string, at time.Time) error {
	if d.expirer != nil {
		id := d.base.ID()
		d.expirer.ExpireReadings(at, func(r model.Reading) bool {
			return r.MObjectID == userID && r.SensorID == id
		})
	}
	return nil
}
