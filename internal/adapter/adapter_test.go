package adapter

import (
	"errors"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

var (
	t0    = time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	floor = glob.MustParse("CS/Floor3")
	room  = glob.MustParse("CS/Floor3/3105")
)

// fakeSink records ingested readings.
type fakeSink struct {
	mu   sync.Mutex
	rows []model.Reading
	err  error
}

func (f *fakeSink) Ingest(r model.Reading) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.rows = append(f.rows, r)
	return nil
}

func (f *fakeSink) all() []model.Reading {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]model.Reading(nil), f.rows...)
}

// fakeRegistrar records sensor registrations.
type fakeRegistrar struct {
	mu    sync.Mutex
	specs map[string]model.SensorSpec
	err   error
}

func newFakeRegistrar() *fakeRegistrar {
	return &fakeRegistrar{specs: make(map[string]model.SensorSpec)}
}

func (f *fakeRegistrar) RegisterSensor(id string, spec model.SensorSpec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.specs[id] = spec
	return nil
}

// fakeExpirer records expiry calls.
type fakeExpirer struct {
	mu    sync.Mutex
	calls int
	match func(model.Reading) bool
}

func (f *fakeExpirer) ExpireReadings(_ time.Time, match func(model.Reading) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	f.match = match
}

func TestUbisenseAdapter(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	u, err := NewUbisense("ubi-1", floor, 0.9, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.ID() != "ubi-1" {
		t.Errorf("ID = %s", u.ID())
	}
	if _, ok := reg.specs["ubi-1"]; !ok {
		t.Error("sensor not registered")
	}
	if err := u.ReportFix("tag-7", geom.Pt(12, 34), t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r.SensorID != "ubi-1" || r.SensorType != model.TypeUbisense || r.MObjectID != "tag-7" {
		t.Errorf("reading identity = %+v", r)
	}
	if r.Location.String() != "CS/Floor3/(12,34)" {
		t.Errorf("location = %s", r.Location)
	}
	if r.DetectionRadius != 0.5 {
		t.Errorf("radius = %v", r.DetectionRadius)
	}
	fwd, drop := u.Stats()
	if fwd != 1 || drop != 0 {
		t.Errorf("stats = %d/%d", fwd, drop)
	}
}

func TestAdapterRateLimit(t *testing.T) {
	sink := &fakeSink{}
	now := t0
	clock := func() time.Time { return now }
	u, err := NewUbisense("ubi-1", floor, 0.9, sink, nil, Options{
		MinInterval: time.Second,
		Clock:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := u.ReportFix("tag", geom.Pt(float64(i), 0), t0); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.all()); got != 1 {
		t.Errorf("rate limit let %d through", got)
	}
	// A different object is not limited by tag's budget.
	if err := u.ReportFix("other", geom.Pt(9, 9), t0); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.all()); got != 2 {
		t.Errorf("other object suppressed: %d", got)
	}
	// Advancing the clock re-opens the budget.
	now = now.Add(2 * time.Second)
	if err := u.ReportFix("tag", geom.Pt(8, 8), t0); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.all()); got != 3 {
		t.Errorf("after interval: %d", got)
	}
	_, dropped := u.Stats()
	if dropped != 4 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestAdapterFilter(t *testing.T) {
	sink := &fakeSink{}
	u, err := NewUbisense("ubi-1", floor, 0.9, sink, nil, Options{
		Filter: func(r model.Reading) bool { return r.MObjectID != "ghost" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ReportFix("ghost", geom.Pt(1, 1), t0); err != nil {
		t.Fatal(err)
	}
	if err := u.ReportFix("alice", geom.Pt(2, 2), t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 || rows[0].MObjectID != "alice" {
		t.Errorf("rows = %v", rows)
	}
}

func TestAdapterClose(t *testing.T) {
	sink := &fakeSink{}
	u, err := NewUbisense("ubi-1", floor, 0.9, sink, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u.Close()
	if err := u.ReportFix("tag", geom.Pt(0, 0), t0); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestAdapterConstructionErrors(t *testing.T) {
	sink := &fakeSink{}
	if _, err := NewUbisense("", floor, 0.9, sink, nil, Options{}); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewUbisense("u", floor, 0.9, nil, nil, Options{}); err == nil {
		t.Error("nil sink should fail")
	}
	reg := newFakeRegistrar()
	reg.err = errors.New("boom")
	if _, err := NewUbisense("u", floor, 0.9, sink, reg, Options{}); err == nil {
		t.Error("registrar failure should propagate")
	}
}

func TestRFIDAdapter(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	rf, err := NewRFID("rf-12", floor, geom.Pt(340, 15), 15, 0.8, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.ReportBadge("tom-pda", t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 {
		t.Fatal("no reading")
	}
	r := rows[0]
	if r.Location.String() != "CS/Floor3/(340,15)" || r.DetectionRadius != 15 {
		t.Errorf("reading = %+v", r)
	}
	if r.SensorType != model.TypeRFID {
		t.Errorf("type = %s", r.SensorType)
	}
	// Custom range overrides the default resolution.
	rf2, err := NewRFID("rf-13", floor, geom.Pt(0, 0), 30, 0.8, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rf2.ReportBadge("x", t0); err != nil {
		t.Fatal(err)
	}
	rows = sink.all()
	if rows[len(rows)-1].DetectionRadius != 30 {
		t.Errorf("custom range = %v", rows[len(rows)-1].DetectionRadius)
	}
}

func TestBiometricLoginEmitsTwoReadings(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	exp := &fakeExpirer{}
	bio, err := NewBiometric("fp-1", floor, geom.Pt(335, 5), room,
		15*time.Minute, 0.3, sink, reg, exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bio.Login("tom", t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	short, long := rows[0], rows[1]
	if short.SensorID != "fp-1-short" || short.DetectionRadius != 2 {
		t.Errorf("short = %+v", short)
	}
	if long.SensorID != "fp-1-long" || !long.Location.Equal(room) {
		t.Errorf("long = %+v", long)
	}
	// Both sensors registered with distinct specs.
	if reg.specs["fp-1-short"].Type != model.TypeBiometricShort ||
		reg.specs["fp-1-long"].Type != model.TypeBiometricLong {
		t.Errorf("registrations = %v", reg.specs)
	}
}

func TestBiometricLogoutExpiresAndEmits(t *testing.T) {
	sink := &fakeSink{}
	exp := &fakeExpirer{}
	bio, err := NewBiometric("fp-1", floor, geom.Pt(335, 5), room,
		15*time.Minute, 0.3, sink, newFakeRegistrar(), exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bio.Login("tom", t0); err != nil {
		t.Fatal(err)
	}
	if err := bio.Logout("tom", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if exp.calls != 1 {
		t.Fatalf("expirer calls = %d", exp.calls)
	}
	// The matcher targets only tom's readings from this device.
	if !exp.match(model.Reading{MObjectID: "tom", SensorID: "fp-1-long"}) {
		t.Error("matcher should expire tom's long reading")
	}
	if exp.match(model.Reading{MObjectID: "ann", SensorID: "fp-1-long"}) {
		t.Error("matcher must not expire other users")
	}
	if exp.match(model.Reading{MObjectID: "tom", SensorID: "ubi-1"}) {
		t.Error("matcher must not expire other sensors")
	}
	rows := sink.all()
	if len(rows) != 3 { // login short + login long + logout short
		t.Errorf("rows = %d", len(rows))
	}
}

func TestGPSAdapter(t *testing.T) {
	sink := &fakeSink{}
	ref := GeoReference{
		Lat0: 40.0, Lon0: -88.0,
		Origin:         geom.Pt(0, 0),
		UnitsPerDegLat: 364000, // ~feet per degree latitude
		UnitsPerDegLon: 280000,
	}
	gps, err := NewGPS("gps-1", floor, ref, 0.7, sink, newFakeRegistrar(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gps.ReportFix("runner", 40.0001, -87.9999, 15, t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 {
		t.Fatal("no reading")
	}
	r := rows[0]
	pt := r.Location.Coords[0]
	if pt.X < 27.9 || pt.X > 28.1 || pt.Y < 36.3 || pt.Y > 36.5 {
		t.Errorf("converted position = %v", pt)
	}
	if r.DetectionRadius != 15 {
		t.Errorf("radius = %v", r.DetectionRadius)
	}
	// Zero accuracy falls back to the spec default.
	if err := gps.ReportFix("runner", 40, -88, 0, t0); err != nil {
		t.Fatal(err)
	}
	rows = sink.all()
	if rows[1].DetectionRadius != 15 {
		t.Errorf("default radius = %v", rows[1].DetectionRadius)
	}
}

func TestCardReaderAdapter(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	cr, err := NewCardReader("card-3105", room, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Swipe("tom", t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 || !rows[0].Location.Equal(room) || rows[0].MObjectID != "tom" {
		t.Errorf("rows = %+v", rows)
	}
	if reg.specs["card-3105"].TTL != 10*time.Second {
		t.Errorf("card TTL = %v", reg.specs["card-3105"].TTL)
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	sink := &fakeSink{err: errors.New("db down")}
	u, err := NewUbisense("ubi-1", floor, 0.9, sink, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ReportFix("tag", geom.Pt(0, 0), t0); err == nil {
		t.Error("sink error should propagate")
	}
}

func TestBluetoothAdapter(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	bt, err := NewBluetooth("bt-1", floor, geom.Pt(100, 40), 30, 0.6, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.ReportDiscovery("tom", t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 {
		t.Fatal("no reading")
	}
	if rows[0].SensorType != model.TypeBluetooth || rows[0].DetectionRadius != 30 {
		t.Errorf("reading = %+v", rows[0])
	}
	if rows[0].Location.String() != "CS/Floor3/(100,40)" {
		t.Errorf("location = %s", rows[0].Location)
	}
	spec := reg.specs["bt-1"]
	if spec.Errors.Y != 0.7 {
		t.Errorf("bluetooth y = %v", spec.Errors.Y)
	}
	// Informativeness holds for the default calibration.
	if spec.Errors.DetectProb() <= spec.Errors.FalseProb() {
		t.Error("bluetooth spec uninformative")
	}
	bt.Close()
	if err := bt.ReportDiscovery("tom", t0); !errors.Is(err, ErrClosed) {
		t.Errorf("after close: %v", err)
	}
}

func TestDesktopLoginAdapter(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	exp := &fakeExpirer{}
	dl, err := NewDesktopLogin("ws-27", room, 2*time.Hour, sink, reg, exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dl.Login("ann", t0); err != nil {
		t.Fatal(err)
	}
	rows := sink.all()
	if len(rows) != 1 || !rows[0].Location.Equal(room) || rows[0].MObjectID != "ann" {
		t.Errorf("rows = %+v", rows)
	}
	// The session spec degrades in steps over half an hour.
	spec := reg.specs["ws-27"]
	fresh := spec.TDFOrDefault().Degrade(1, 0)
	later := spec.TDFOrDefault().Degrade(1, 31*time.Minute)
	if later >= fresh {
		t.Errorf("session confidence should degrade: %v -> %v", fresh, later)
	}
	// Logout expires this user's readings from this workstation only.
	if err := dl.Logout("ann", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if exp.calls != 1 {
		t.Fatalf("expirer calls = %d", exp.calls)
	}
	if !exp.match(model.Reading{MObjectID: "ann", SensorID: "ws-27"}) {
		t.Error("matcher should expire ann's session reading")
	}
	if exp.match(model.Reading{MObjectID: "bob", SensorID: "ws-27"}) {
		t.Error("matcher must not expire other users")
	}
	// Logout without an expirer is a no-op, not a crash.
	dl2, err := NewDesktopLogin("ws-28", room, time.Hour, sink, reg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dl2.Logout("ann", t0); err != nil {
		t.Errorf("logout without expirer: %v", err)
	}
}

func TestAdapterAccessors(t *testing.T) {
	sink := &fakeSink{}
	reg := newFakeRegistrar()
	base, err := NewBase("acc-1", model.UbisenseSpec(0.9), sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Spec().Type != model.TypeUbisense {
		t.Errorf("Spec = %+v", base.Spec())
	}
	bio, err := NewBiometric("fp-acc", floor, geom.Pt(0, 0), room,
		time.Minute, 0.2, sink, reg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bio.ID() != "fp-acc-short" {
		t.Errorf("biometric ID = %s", bio.ID())
	}
	bio.Close()
	if err := bio.Login("x", t0); !errors.Is(err, ErrClosed) {
		t.Errorf("closed biometric login err = %v", err)
	}
	gps, err := NewGPS("gps-acc", floor, GeoReference{UnitsPerDegLat: 1, UnitsPerDegLon: 1},
		0.5, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gps.ID() != "gps-acc" {
		t.Errorf("gps ID = %s", gps.ID())
	}
	gps.Close()
	if err := gps.ReportFix("x", 0, 0, 1, t0); !errors.Is(err, ErrClosed) {
		t.Errorf("closed gps err = %v", err)
	}
	rf, err := NewRFID("rf-acc", floor, geom.Pt(0, 0), 10, 0.5, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if err := rf.ReportBadge("x", t0); !errors.Is(err, ErrClosed) {
		t.Errorf("closed rfid err = %v", err)
	}
	cr, err := NewCardReader("cr-acc", room, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fwd, drop := cr.Stats(); fwd != 0 || drop != 0 {
		t.Errorf("fresh stats = %d/%d", fwd, drop)
	}
	cr.Close()
	if err := cr.Swipe("x", t0); !errors.Is(err, ErrClosed) {
		t.Errorf("closed card err = %v", err)
	}
	dl, err := NewDesktopLogin("dl-acc", room, time.Hour, sink, reg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dl.ID() != "dl-acc" {
		t.Errorf("desktop ID = %s", dl.ID())
	}
	dl.Close()
	if err := dl.Login("x", t0); !errors.Is(err, ErrClosed) {
		t.Errorf("closed desktop err = %v", err)
	}
	bt, err := NewBluetooth("bt-acc", floor, geom.Pt(0, 0), 0, 0.5, sink, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fwd, _ := bt.Stats(); fwd != 0 {
		t.Errorf("bt stats = %d", fwd)
	}
}
