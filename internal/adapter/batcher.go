// Batched forwarding: sensor hardware reports readings one at a time,
// but a simulation step or a burst from a busy field produces many at
// once. A Batcher sits between adapters and a batch-capable sink,
// accumulating readings and forwarding them in one IngestBatch call —
// one lock acquisition (local) or one frame (remote) per batch instead
// of per reading.
package adapter

import (
	"errors"
	"sync"

	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
)

// Batcher metrics.
var (
	mBatchFlushes = obs.Default().Counter("adapter_batch_flushes_total")
	mBatchRows    = obs.Default().Histogram("adapter_batch_rows")
	mBatchShed    = obs.Default().Counter("adapter_batch_shed_total")
)

// creditRetainFactor bounds how much a Batcher holds while its sink is
// credit-stalled: up to this many flush-sizes re-buffer, beyond that
// the oldest readings shed (fresh location fixes supersede stale ones).
const creditRetainFactor = 4

// BatchSink ingests a slice of readings in one call. *core.Service,
// *remote.LocationClient and *ResilientSink all satisfy it.
type BatchSink interface {
	IngestBatch([]model.Reading) error
}

// defaultFlushSize triggers an automatic flush; it matches the
// resilient sink's drain chunk so a full batch travels as one unit.
const defaultFlushSize = 64

// Batcher is a Sink that accumulates readings and forwards them in
// batches: automatically whenever flushSize readings are pending, and
// explicitly on Flush (the simulator flushes at step boundaries).
// Arrival order is preserved. Safe for concurrent use.
type Batcher struct {
	mu     sync.Mutex // guards buf and closed; never held across delivery
	sendMu sync.Mutex // serializes deliveries so batches leave in order
	sink   BatchSink
	buf    []model.Reading
	max    int
	closed bool
}

// NewBatcher wraps a batch-capable sink. flushSize <= 0 uses the
// default (64).
func NewBatcher(sink BatchSink, flushSize int) *Batcher {
	if flushSize <= 0 {
		flushSize = defaultFlushSize
	}
	return &Batcher{sink: sink, max: flushSize, buf: make([]model.Reading, 0, flushSize)}
}

// Ingest implements Sink: the reading is buffered and delivered with
// its batch. A flush triggered by a full buffer reports the sink's
// error here.
func (b *Batcher) Ingest(r model.Reading) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.buf = append(b.buf, r)
	full := len(b.buf) >= b.max
	b.mu.Unlock()
	if !full {
		return nil
	}
	return b.flush()
}

// Flush forwards everything pending as one batch.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return b.flush()
}

// flush detaches the pending buffer under b.mu and delivers it with
// the lock released, so one slow delivery (a remote round trip, a
// resilient-sink retry) never blocks concurrent Ingest/Pending
// callers; sendMu keeps batches leaving in arrival order. The buffer
// is detached even if delivery fails — the batch was handed to the
// sink, and a resilient sink owns retries from there. The one
// exception is a credit stall (mwrpc.ErrNoCredit): nothing was sent,
// so the batch re-buffers (bounded — the oldest readings shed once
// creditRetainFactor flush-sizes are held) and a later flush retries.
func (b *Batcher) flush() error {
	b.sendMu.Lock()
	defer b.sendMu.Unlock()
	b.mu.Lock()
	if len(b.buf) == 0 {
		b.mu.Unlock()
		return nil
	}
	batch := b.buf
	b.buf = make([]model.Reading, 0, b.max)
	b.mu.Unlock()
	mBatchFlushes.Inc()
	mBatchRows.Observe(float64(len(batch)))
	err := b.sink.IngestBatch(batch)
	if err != nil && errors.Is(err, mwrpc.ErrNoCredit) {
		b.mu.Lock()
		b.buf = append(batch, b.buf...)
		if over := len(b.buf) - creditRetainFactor*b.max; over > 0 {
			b.buf = b.buf[over:]
			mBatchShed.Add(uint64(over))
		}
		b.mu.Unlock()
	}
	return err
}

// Pending returns how many readings await the next flush.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Close flushes what is pending and rejects further readings.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	return b.flush()
}
