package rcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"middlewhere/internal/geom"
)

func TestRelateRects(t *testing.T) {
	base := geom.R(0, 0, 10, 10)
	tests := []struct {
		name string
		give geom.Rect
		want Relation
	}{
		{"equal", geom.R(0, 0, 10, 10), EQ},
		{"disjoint", geom.R(20, 20, 30, 30), DC},
		{"edge touch", geom.R(10, 0, 20, 10), EC},
		{"corner touch", geom.R(10, 10, 20, 20), EC},
		{"overlap", geom.R(5, 5, 15, 15), PO},
		// give sits inside base, so from base's perspective the
		// relation is the inverse part-of.
		{"inside touching", geom.R(0, 2, 5, 8), TPPi},
		{"strictly inside", geom.R(2, 2, 8, 8), NTPPi},
		{"contains touching", geom.R(0, 0, 5, 5).Union(geom.R(0, 0, 10, 10)).Union(geom.R(-5, -5, 10, 10)), TPPi},
		{"contains strictly", geom.R(-5, -5, 15, 15), NTPP}, // base inside give -> from base's view it's NTPP
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Relate(base, tt.give)
			if tt.name == "contains touching" {
				// base shares the (0..10) edges with give=(-5..10):
				// give contains base, base touches boundary -> TPP from
				// base's perspective.
				if got != TPP {
					t.Errorf("got %v, want TPP", got)
				}
				return
			}
			if got != tt.want {
				t.Errorf("Relate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRelateInverses(t *testing.T) {
	a := geom.R(2, 2, 8, 8)
	b := geom.R(0, 0, 10, 10)
	if got := Relate(a, b); got != NTPP {
		t.Fatalf("Relate(a,b) = %v", got)
	}
	if got := Relate(b, a); got != NTPPi {
		t.Fatalf("Relate(b,a) = %v", got)
	}
	for _, r := range []Relation{DC, EC, PO, TPP, NTPP, TPPi, NTPPi, EQ} {
		if r.Inverse().Inverse() != r {
			t.Errorf("double inverse of %v != itself", r)
		}
	}
	if TPP.Inverse() != TPPi || NTPPi.Inverse() != NTPP || EQ.Inverse() != EQ || PO.Inverse() != PO {
		t.Error("Inverse mapping wrong")
	}
}

func TestRelationPredicates(t *testing.T) {
	if DC.Connected() {
		t.Error("DC should not be connected")
	}
	for _, r := range []Relation{EC, PO, TPP, NTPP, TPPi, NTPPi, EQ} {
		if !r.Connected() {
			t.Errorf("%v should be connected", r)
		}
	}
	if !TPP.ProperPart() || !NTPP.ProperPart() {
		t.Error("TPP/NTPP are proper parts")
	}
	if EQ.ProperPart() || TPPi.ProperPart() {
		t.Error("EQ/TPPi are not proper parts")
	}
}

func TestRelationString(t *testing.T) {
	want := map[Relation]string{
		DC: "DC", EC: "EC", PO: "PO", TPP: "TPP",
		NTPP: "NTPP", TPPi: "TPPi", NTPPi: "NTPPi", EQ: "EQ",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if Relation(99).String() != "Relation(99)" {
		t.Error("unknown relation string")
	}
}

func TestQuickRelateConverse(t *testing.T) {
	// Relate(a,b) is always the inverse of Relate(b,a), and exactly
	// one base relation holds.
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		_ = seed
		mk := func() geom.Rect {
			// Integer grid so touching configurations actually occur.
			x, y := float64(rng.Intn(10)), float64(rng.Intn(10))
			return geom.R(x, y, x+float64(1+rng.Intn(6)), y+float64(1+rng.Intn(6)))
		}
		a, b := mk(), mk()
		ra, rb := Relate(a, b), Relate(b, a)
		return ra.Inverse() == rb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

var lRoom = geom.Polygon{
	geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
}

func TestRelatePolygons(t *testing.T) {
	square := func(x, y, s float64) geom.Polygon {
		return geom.Polygon{
			geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x+s, y+s), geom.Pt(x, y+s),
		}
	}
	tests := []struct {
		name string
		a, b geom.Polygon
		want Relation
	}{
		{"equal", lRoom, lRoom, EQ},
		{"rotated ring equal", square(0, 0, 2),
			geom.Polygon{geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2), geom.Pt(0, 0)}, EQ},
		{"disjoint", square(10, 10, 2), lRoom, DC},
		{"inside L", square(0.5, 0.5, 1), lRoom, NTPP},
		{"contains", lRoom, square(0.5, 0.5, 1), NTPPi},
		{"tangential part", square(0, 0, 1), lRoom, TPP},
		{"overlap", square(3, 1, 3), lRoom, PO},
		{"edge contact", square(4, 0, 2), lRoom, EC},
		// The notch square's MBR intersects the L, but the polygons are
		// disjoint — the polygon test must see through the MBR.
		{"notch", square(2.5, 2.5, 1), lRoom, DC},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RelatePolygons(tt.a, tt.b); got != tt.want {
				t.Errorf("RelatePolygons = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestECRelationDoors(t *testing.T) {
	roomA := geom.R(0, 0, 10, 10)
	roomB := geom.R(10, 0, 20, 10)
	roomC := geom.R(0, 10, 10, 20)
	doors := []Door{
		// Free door in the wall between A and B.
		{Span: geom.Seg(geom.Pt(10, 4), geom.Pt(10, 6)), Kind: PassageFree},
		// Restricted (locked) door between A and C.
		{Span: geom.Seg(geom.Pt(3, 10), geom.Pt(5, 10)), Kind: PassageRestricted},
	}
	if got := ECRelation(roomA, roomB, doors); got != PassageFree {
		t.Errorf("A-B = %v, want ECFP", got)
	}
	if got := ECRelation(roomA, roomC, doors); got != PassageRestricted {
		t.Errorf("A-C = %v, want ECRP", got)
	}
	// B and C touch only at the corner (10,10); no door there.
	if got := ECRelation(roomB, roomC, doors); got != PassageNone {
		t.Errorf("B-C = %v, want ECNP", got)
	}
	// Non-EC pairs yield PassageNone.
	if got := ECRelation(roomA, geom.R(50, 50, 60, 60), doors); got != PassageNone {
		t.Errorf("disjoint = %v", got)
	}
	if got := ECRelation(roomA, roomA, doors); got != PassageNone {
		t.Errorf("same region = %v", got)
	}
}

func TestECRelationPicksStrongestPassage(t *testing.T) {
	roomA := geom.R(0, 0, 10, 10)
	roomB := geom.R(10, 0, 20, 10)
	doors := []Door{
		{Span: geom.Seg(geom.Pt(10, 1), geom.Pt(10, 2)), Kind: PassageRestricted},
		{Span: geom.Seg(geom.Pt(10, 7), geom.Pt(10, 8)), Kind: PassageFree},
	}
	if got := ECRelation(roomA, roomB, doors); got != PassageFree {
		t.Errorf("strongest passage = %v, want ECFP", got)
	}
	// A door elsewhere in the building does not count.
	far := []Door{{Span: geom.Seg(geom.Pt(50, 0), geom.Pt(50, 2)), Kind: PassageFree}}
	if got := ECRelation(roomA, roomB, far); got != PassageNone {
		t.Errorf("far door = %v, want ECNP", got)
	}
}

func TestPassageString(t *testing.T) {
	if PassageNone.String() != "ECNP" || PassageRestricted.String() != "ECRP" ||
		PassageFree.String() != "ECFP" {
		t.Error("passage strings wrong")
	}
	if Passage(9).String() != "Passage(9)" {
		t.Error("unknown passage string")
	}
}
