// Package rcc implements the Region Connection Calculus relations the
// Location Service derives between spatial regions (§4.6.1): the
// RCC-8 base relations (DC, EC, PO, TPP, NTPP, their inverses, and
// EQ) evaluated in O(1) on minimum bounding rectangles, plus
// MiddleWhere's three passage-aware refinements of external connection
// (ECFP, ECRP, ECNP) decided from door data.
package rcc

import (
	"fmt"

	"middlewhere/internal/geom"
)

// Relation is an RCC-8 base relation. Any two regions are related by
// exactly one of them.
type Relation int

// The eight jointly exhaustive, pairwise disjoint RCC-8 relations.
const (
	// DC: disconnected — the regions share no point.
	DC Relation = iota + 1
	// EC: externally connected — boundaries touch, interiors disjoint.
	EC
	// PO: partial overlap — interiors intersect, neither contains the
	// other.
	PO
	// TPP: a is a tangential proper part of b (inside, touching b's
	// boundary).
	TPP
	// NTPP: a is a non-tangential proper part of b (strictly inside).
	NTPP
	// TPPi: inverse of TPP — b is a tangential proper part of a.
	TPPi
	// NTPPi: inverse of NTPP.
	NTPPi
	// EQ: the regions coincide.
	EQ
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case DC:
		return "DC"
	case EC:
		return "EC"
	case PO:
		return "PO"
	case TPP:
		return "TPP"
	case NTPP:
		return "NTPP"
	case TPPi:
		return "TPPi"
	case NTPPi:
		return "NTPPi"
	case EQ:
		return "EQ"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Inverse returns the converse relation: Relate(a,b).Inverse() ==
// Relate(b,a).
func (r Relation) Inverse() Relation {
	switch r {
	case TPP:
		return TPPi
	case TPPi:
		return TPP
	case NTPP:
		return NTPPi
	case NTPPi:
		return NTPP
	default:
		return r
	}
}

// Connected reports whether the relation implies the regions share at
// least one point (everything except DC).
func (r Relation) Connected() bool { return r != DC }

// ProperPart reports whether the relation makes the first region a
// proper part of the second.
func (r Relation) ProperPart() bool { return r == TPP || r == NTPP }

// Relate returns the RCC-8 relation between rectangles a and b.
// Evaluating a relation is O(1) given the vertices, as the paper
// notes.
func Relate(a, b geom.Rect) Relation {
	switch {
	case a.Eq(b):
		return EQ
	case !a.Intersects(b):
		return DC
	case !a.Overlaps(b):
		// Boundary contact only.
		return EC
	case b.ContainsRect(a):
		if touchesBoundary(a, b) {
			return TPP
		}
		return NTPP
	case a.ContainsRect(b):
		if touchesBoundary(b, a) {
			return TPPi
		}
		return NTPPi
	default:
		return PO
	}
}

// touchesBoundary reports whether inner (contained in outer) touches
// outer's boundary.
func touchesBoundary(inner, outer geom.Rect) bool {
	return inner.Min.X <= outer.Min.X+geom.Eps ||
		inner.Min.Y <= outer.Min.Y+geom.Eps ||
		inner.Max.X >= outer.Max.X-geom.Eps ||
		inner.Max.Y >= outer.Max.Y-geom.Eps
}

// RelatePolygons returns the RCC-8 relation between two simple
// polygons. It is used when MBR-level screening is not precise enough
// (e.g. L-shaped rooms).
func RelatePolygons(a, b geom.Polygon) Relation {
	polyEq := func(p, q geom.Polygon) bool {
		if len(p) != len(q) || len(p) == 0 {
			return false
		}
		// Same ring possibly rotated.
		for off := 0; off < len(q); off++ {
			all := true
			for i := range p {
				if !p[i].Eq(q[(i+off)%len(q)]) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	switch {
	case polyEq(a, b):
		return EQ
	case !a.IntersectsPolygon(b):
		return DC
	}
	aInB := b.ContainsPolygon(a)
	bInA := a.ContainsPolygon(b)
	switch {
	case aInB && bInA:
		return EQ
	case aInB:
		if polygonTouches(a, b) {
			return TPP
		}
		return NTPP
	case bInA:
		if polygonTouches(b, a) {
			return TPPi
		}
		return NTPPi
	}
	// Interiors overlap or only boundaries touch. Approximate the
	// interior test: if any vertex of one is strictly inside the other
	// (not on the boundary) or edge midpoints are, call it PO.
	if interiorsMeet(a, b) {
		return PO
	}
	return EC
}

// polygonTouches reports whether inner's boundary touches outer's
// boundary (inner contained in outer).
func polygonTouches(inner, outer geom.Polygon) bool {
	for _, e := range inner.Edges() {
		for _, f := range outer.Edges() {
			if e.Intersects(f) {
				return true
			}
		}
	}
	return false
}

// interiorsMeet heuristically tests whether the interiors of a and b
// intersect by sampling vertices and edge midpoints.
func interiorsMeet(a, b geom.Polygon) bool {
	strictlyInside := func(p geom.Point, poly geom.Polygon) bool {
		if !poly.ContainsPoint(p) {
			return false
		}
		for _, e := range poly.Edges() {
			if e.ContainsPoint(p) {
				return false
			}
		}
		return true
	}
	for _, v := range a {
		if strictlyInside(v, b) {
			return true
		}
	}
	for _, v := range b {
		if strictlyInside(v, a) {
			return true
		}
	}
	for _, e := range a.Edges() {
		if strictlyInside(e.Midpoint(), b) {
			return true
		}
	}
	for _, e := range b.Edges() {
		if strictlyInside(e.Midpoint(), a) {
			return true
		}
	}
	return false
}

// Passage classifies how two externally connected regions can be
// traversed (§4.6.1).
type Passage int

// Passage kinds between externally connected regions.
const (
	// PassageNone: a shared wall with no opening (ECNP).
	PassageNone Passage = iota + 1
	// PassageRestricted: a normally locked door needing a card swipe or
	// key (ECRP).
	PassageRestricted
	// PassageFree: an open doorway or unlocked door (ECFP).
	PassageFree
)

// String implements fmt.Stringer.
func (p Passage) String() string {
	switch p {
	case PassageNone:
		return "ECNP"
	case PassageRestricted:
		return "ECRP"
	case PassageFree:
		return "ECFP"
	default:
		return fmt.Sprintf("Passage(%d)", int(p))
	}
}

// Door is an opening between two regions: a segment on their shared
// boundary plus its passage kind.
type Door struct {
	// Span is the door's segment in universe coordinates.
	Span geom.Segment
	// Kind is the passage the door provides.
	Kind Passage
}

// ECRelation refines an EC pair given the doors of the environment:
// ECFP when some free-passage door lies on the shared boundary, ECRP
// when only restricted doors do, and ECNP otherwise. The result is
// meaningless (and PassageNone is returned) when the regions are not
// externally connected.
func ECRelation(a, b geom.Rect, doors []Door) Passage {
	if Relate(a, b) != EC {
		return PassageNone
	}
	shared, ok := a.Intersect(b)
	if !ok {
		return PassageNone
	}
	best := PassageNone
	for _, d := range doors {
		if !onRect(d.Span, shared) {
			continue
		}
		if d.Kind > best {
			best = d.Kind
		}
	}
	return best
}

// onRect reports whether the door segment lies (within Eps) inside the
// degenerate shared-boundary rectangle.
func onRect(s geom.Segment, r geom.Rect) bool {
	return r.ContainsPoint(s.A) && r.ContainsPoint(s.B)
}
