package sim

import (
	"time"
)

// PaceReport summarizes an open-loop paced run (RunPaced).
type PaceReport struct {
	// Steps is how many simulation steps fired.
	Steps int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// LateSteps counts steps that fired after their scheduled deadline
	// — the generator was still issuing at full rate (open loop), but
	// the system under test could not keep pace.
	LateSteps int
	// MaxLag is the worst lag behind schedule any step started with.
	MaxLag time.Duration
}

// OnSchedule reports whether the run held its offered rate: no step
// lagged its deadline by more than slack.
func (r PaceReport) OnSchedule(slack time.Duration) bool {
	return r.MaxLag <= slack
}

// RunPaced advances the simulation n steps at a target wall-clock rate
// — the open-loop load generator for sustained-throughput harnesses.
// Each step i has a fixed deadline start+i/stepsPerSec; the generator
// sleeps when ahead of schedule and, crucially, does NOT slow down
// when behind: a system that cannot keep pace accumulates lag instead
// of silently throttling the offered load (the closed-loop
// coordinated-omission trap). The report says how far behind the run
// fell, so a harness asserts "sustained R readings/sec" as
// rep.OnSchedule(slack) with R = stepsPerSec × readings-per-step.
//
// Like RunBatched, the batcher flushes after each step's observers, so
// a step is one IngestBatch per flush-size worth of readings. A nil
// batch skips flushing (observers deliver unbatched). stepsPerSec <= 0
// runs unpaced (every deadline is now — a throughput ceiling probe).
func RunPaced(s *Sim, n int, stepsPerSec float64, batch Flusher, observers ...Observer) (PaceReport, error) {
	var interval time.Duration
	if stepsPerSec > 0 {
		interval = time.Duration(float64(time.Second) / stepsPerSec)
	}
	start := time.Now()
	rep := PaceReport{}
	for i := 0; i < n; i++ {
		deadline := start.Add(time.Duration(i) * interval)
		if wait := time.Until(deadline); wait > 0 {
			time.Sleep(wait)
		} else if lag := -wait; lag > 0 && interval > 0 {
			rep.LateSteps++
			if lag > rep.MaxLag {
				rep.MaxLag = lag
			}
		}
		s.Step()
		snapshot := s.People()
		for _, o := range observers {
			if err := o.Observe(s.Now(), snapshot); err != nil {
				rep.Steps = i + 1
				rep.Elapsed = time.Since(start)
				return rep, err
			}
		}
		if batch != nil {
			if err := batch.Flush(); err != nil {
				rep.Steps = i + 1
				rep.Elapsed = time.Since(start)
				return rep, err
			}
		}
		rep.Steps = i + 1
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
