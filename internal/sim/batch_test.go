package sim

import (
	"testing"

	"middlewhere/internal/adapter"
	"middlewhere/internal/core"
	"middlewhere/internal/glob"
)

// TestRunBatchedMatchesDirect runs the same seeded simulation twice —
// once with adapters feeding the service directly, once through a
// Batcher flushed at step boundaries — and requires identical fused
// answers. Batching is a transport optimization; it must not change
// what the Location Service believes.
func TestRunBatchedMatchesDirect(t *testing.T) {
	b := synthetic(t)
	frame := glob.MustParse("SIM/F")

	run := func(batched bool) (*core.Service, []PersonState) {
		s, err := New(b, Config{People: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := core.New(b, core.WithClock(s.Now))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)

		var sink adapter.Sink = svc
		var flusher *adapter.Batcher
		if batched {
			flusher = adapter.NewBatcher(svc, 0)
			sink = flusher
		}
		ubi, err := adapter.NewUbisense("ubi-1", frame, 1.0, sink, svc, adapter.Options{})
		if err != nil {
			t.Fatal(err)
		}
		field := NewUbisenseField(ubi, b.Universe, 1.0, s.Rand())

		const steps = 50
		if batched {
			if err := RunBatched(s, steps, flusher, field); err != nil {
				t.Fatal(err)
			}
			if flusher.Pending() != 0 {
				t.Errorf("batcher left %d readings pending", flusher.Pending())
			}
		} else {
			if err := Run(s, steps, field); err != nil {
				t.Fatal(err)
			}
		}
		return svc, s.People()
	}

	direct, people := run(false)
	batched, _ := run(true)

	if d, b := direct.Health().Ingested, batched.Health().Ingested; d != b || d == 0 {
		t.Fatalf("ingested diverged: direct %d, batched %d", d, b)
	}
	for _, p := range people {
		dl, derr := direct.LocateObject(p.ID)
		bl, berr := batched.LocateObject(p.ID)
		if (derr == nil) != (berr == nil) {
			t.Errorf("%s: direct err %v, batched err %v", p.ID, derr, berr)
			continue
		}
		if derr != nil {
			continue
		}
		if dl.Rect != bl.Rect || dl.Prob != bl.Prob {
			t.Errorf("%s: direct %+v != batched %+v", p.ID, dl, bl)
		}
	}
}

// flushCounter counts flushes; RunBatched must call it once per step.
type flushCounter struct{ n int }

func (f *flushCounter) Flush() error { f.n++; return nil }

func TestRunBatchedFlushesPerStep(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := &flushCounter{}
	if err := RunBatched(s, 7, f); err != nil {
		t.Fatal(err)
	}
	if f.n != 7 {
		t.Errorf("flushed %d times over 7 steps", f.n)
	}
}
