package sim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

func synthetic(t *testing.T) *building.Building {
	t.Helper()
	return building.Synthetic("SIM", 2, 3, 20, 15, 8)
}

func TestSimDeterministic(t *testing.T) {
	b := synthetic(t)
	run := func() []PersonState {
		s, err := New(b, Config{People: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			s.Step()
		}
		return s.People()
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("non-deterministic: %+v vs %+v", a[i], bb[i])
		}
	}
}

func TestPeopleStayInUniverse(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.Step()
		for _, p := range s.People() {
			if !b.Universe.ContainsPoint(p.Pos) {
				t.Fatalf("step %d: %s escaped to %v", i, p.ID, p.Pos)
			}
			if p.Room == "" {
				t.Fatalf("step %d: %s has no room at %v", i, p.ID, p.Pos)
			}
		}
	}
}

func TestPeopleActuallyMoveAcrossRooms(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 3, Seed: 11, DwellMin: time.Second, DwellMax: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	visited := make(map[string]map[string]bool)
	for _, p := range s.People() {
		visited[p.ID] = map[string]bool{p.Room: true}
	}
	for i := 0; i < 600; i++ {
		s.Step()
		for _, p := range s.People() {
			visited[p.ID][p.Room] = true
		}
	}
	for id, rooms := range visited {
		if len(rooms) < 3 {
			t.Errorf("%s visited only %d regions", id, len(rooms))
		}
	}
}

func TestTruePosition(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TruePosition("person-00"); !ok {
		t.Error("person-00 missing")
	}
	if _, ok := s.TruePosition("ghost"); ok {
		t.Error("ghost should not exist")
	}
}

// sinkCounter counts ingested readings per sensor type.
type sinkCounter struct {
	mu    sync.Mutex
	byTyp map[string]int
}

func (c *sinkCounter) Ingest(r model.Reading) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byTyp == nil {
		c.byTyp = make(map[string]int)
	}
	c.byTyp[r.SensorType]++
	return nil
}

func TestObserversEmitReadings(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 5, Seed: 5, DwellMin: time.Second, DwellMax: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkCounter{}
	frame := glob.MustParse("SIM/F")
	ubiA, err := adapter.NewUbisense("ubi-1", frame, 0.9, sink, nil, adapter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rfA, err := adapter.NewRFID("rf-1", frame, geom.Pt(30, 10), 15, 0.9, sink, nil, adapter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cardA, err := adapter.NewCardReader("card-1", glob.MustParse("SIM/F/r0c0"), sink, nil, adapter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bioA, err := adapter.NewBiometric("fp-1", frame, geom.Pt(10, 12), glob.MustParse("SIM/F/r0c0"),
		15*time.Minute, 0.3, sink, nil, nil, adapter.Options{})
	if err != nil {
		t.Fatal(err)
	}

	observers := []Observer{
		NewUbisenseField(ubiA, b.Universe, 1.0, s.Rand()),
		NewRFIDStation(rfA, geom.Pt(30, 10), 15, 1.0, s.Rand()),
		&CardReaderDoor{Adapter: cardA, Room: "SIM/F/r0c0"},
		NewBiometricDesk(bioA, "SIM/F/r0c0", 1.0, s.Rand()),
	}
	if err := Run(s, 400, observers...); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.byTyp[model.TypeUbisense] == 0 {
		t.Error("no ubisense readings")
	}
	if sink.byTyp[model.TypeRFID] == 0 {
		t.Error("no rfid readings")
	}
	if sink.byTyp[model.TypeCardReader] == 0 {
		t.Error("no card swipes")
	}
	if sink.byTyp[model.TypeBiometricShort] == 0 || sink.byTyp[model.TypeBiometricLong] == 0 {
		t.Error("no biometric readings")
	}
}

func TestCarriageIsStablePerPerson(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := newCarriage(s.Rand(), 0.5)
	first := c.carries("p")
	for i := 0; i < 20; i++ {
		if c.carries("p") != first {
			t.Fatal("carriage flipped")
		}
	}
	// Probability 0 and 1 are exact.
	c0 := newCarriage(s.Rand(), 0)
	if c0.carries("p") {
		t.Error("carry prob 0 should never carry")
	}
	c1 := newCarriage(s.Rand(), 1)
	if !c1.carries("p") {
		t.Error("carry prob 1 should always carry")
	}
}

// TestEndToEndFusionAccuracy wires the simulator through real adapters
// into a live Location Service and checks that the fused estimate
// tracks ground truth — the E1 experiment in miniature.
func TestEndToEndFusionAccuracy(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 3, Seed: 9, DwellMin: 2 * time.Second, DwellMax: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(b, core.WithClock(s.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	frame := glob.MustParse("SIM/F")
	ubiA, err := adapter.NewUbisense("ubi-1", frame, 1.0, svc, svc, adapter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	field := NewUbisenseField(ubiA, b.Universe, 1.0, s.Rand())

	var totalErr float64
	samples := 0
	for i := 0; i < 300; i++ {
		s.Step()
		if err := field.Observe(s.Now(), s.People()); err != nil {
			t.Fatal(err)
		}
		if i%10 != 0 {
			continue
		}
		for _, p := range s.People() {
			loc, err := svc.LocateObject(p.ID)
			if err != nil {
				continue // not observed yet
			}
			totalErr += loc.Rect.Center().Dist(p.Pos)
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("no location samples")
	}
	mean := totalErr / float64(samples)
	// Ubisense noise is 0.5 units; walking between observations adds a
	// few more. Anything under 5 units on a 60x46 floor is tracking.
	if mean > 5 {
		t.Errorf("mean localization error = %.2f units over %d samples", mean, samples)
	}
}

// failingObserver errors on every observation after the first k.
type failingObserver struct {
	ok    int
	seen  int
	calls int
}

func (f *failingObserver) Observe(time.Time, []PersonState) error {
	f.calls++
	if f.calls > f.ok {
		f.seen++
		return errTestSink
	}
	return nil
}

var errTestSink = errors.New("sim test: sink down")

func TestRunTolerantSurvivesObserverErrors(t *testing.T) {
	b := synthetic(t)
	s, err := New(b, Config{People: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	bad := &failingObserver{ok: 3}
	errsBefore := obs.Default().Counter("sim_observer_errors_total").Value()
	rep := RunTolerant(s, 10, bad)
	if rep.Failed != 7 {
		t.Errorf("rep.Failed = %d, want 7", rep.Failed)
	}
	if rep.Steps != 10 || rep.Observations != 10 {
		t.Errorf("rep = %+v, want 10 steps / 10 observations", rep)
	}
	if rep.Err() == nil {
		t.Error("first error not reported")
	}
	if got := obs.Default().Counter("sim_observer_errors_total").Value() - errsBefore; got != 7 {
		t.Errorf("sim_observer_errors_total advanced by %d, want 7", got)
	}
	if bad.calls != 10 {
		t.Errorf("observer called %d times, want all 10 steps", bad.calls)
	}
	// Run, by contrast, aborts on the first error.
	s2, err := New(b, Config{People: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	bad2 := &failingObserver{ok: 3}
	if err := Run(s2, 10, bad2); err == nil {
		t.Error("Run should abort on observer error")
	}
	if bad2.calls >= 10 {
		t.Errorf("Run called observer %d times, should have aborted early", bad2.calls)
	}
}
