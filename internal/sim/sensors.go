package sim

import (
	"math/rand"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/geom"
	"middlewhere/internal/obs"
)

// Observer is a simulated sensor installation: on each simulation
// step it looks at the ground truth and may emit readings through its
// adapter.
type Observer interface {
	// Observe inspects the ground truth and reports readings for time
	// now. Errors from the underlying sink abort the step.
	Observe(now time.Time, people []PersonState) error
}

// carriage draws, once per person, whether they carry a technology's
// device — the x parameter of §4.1.1.
type carriage struct {
	rng   *rand.Rand
	prob  float64
	carry map[string]bool
}

func newCarriage(rng *rand.Rand, prob float64) *carriage {
	return &carriage{rng: rng, prob: prob, carry: make(map[string]bool)}
}

func (c *carriage) carries(id string) bool {
	if v, ok := c.carry[id]; ok {
		return v
	}
	v := c.rng.Float64() < c.prob
	c.carry[id] = v
	return v
}

// UbisenseField simulates Ubisense coverage over an area: each carried
// tag is detected with probability y at its true position plus bounded
// noise; with probability z the system misreports a uniformly random
// position in the coverage area (a misidentified tag).
type UbisenseField struct {
	// Adapter forwards fixes into MiddleWhere.
	Adapter *adapter.Ubisense
	// Coverage is the sensed area in universe coordinates.
	Coverage geom.Rect
	// Y and Z are the §4.1.1 detection and misreport probabilities.
	Y, Z float64
	// Noise is the maximum absolute positional error per axis.
	Noise float64

	rng     *rand.Rand
	carried *carriage
}

// NewUbisenseField builds a Ubisense coverage field. carryProb is x.
func NewUbisenseField(a *adapter.Ubisense, coverage geom.Rect, carryProb float64, rng *rand.Rand) *UbisenseField {
	return &UbisenseField{
		Adapter:  a,
		Coverage: coverage,
		Y:        0.95,
		Z:        0.05,
		Noise:    0.5,
		rng:      rng,
		carried:  newCarriage(rng, carryProb),
	}
}

// Observe implements Observer.
func (f *UbisenseField) Observe(now time.Time, people []PersonState) error {
	for _, p := range people {
		if !f.Coverage.ContainsPoint(p.Pos) {
			continue
		}
		if !f.carried.carries(p.ID) {
			continue
		}
		switch {
		case f.rng.Float64() < f.Y:
			jitter := geom.Pt(
				(f.rng.Float64()*2-1)*f.Noise,
				(f.rng.Float64()*2-1)*f.Noise,
			)
			if err := f.Adapter.ReportFix(p.ID, p.Pos.Add(jitter), now); err != nil {
				return err
			}
		case f.rng.Float64() < f.Z:
			// Misidentification: the system reports this tag somewhere
			// it is not.
			wrong := geom.Pt(
				f.Coverage.Min.X+f.rng.Float64()*f.Coverage.Width(),
				f.Coverage.Min.Y+f.rng.Float64()*f.Coverage.Height(),
			)
			if err := f.Adapter.ReportFix(p.ID, wrong, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// RFIDStation simulates one RF badge base station: carried badges
// within range are detected with probability y.
type RFIDStation struct {
	// Adapter forwards sightings.
	Adapter *adapter.RFID
	// Pos is the station position in universe coordinates.
	Pos geom.Point
	// Range is the detection radius.
	Range float64
	// Y is the in-range detection probability (the paper uses 0.75).
	Y float64

	rng     *rand.Rand
	carried *carriage
}

// NewRFIDStation builds a base-station model. carryProb is x.
func NewRFIDStation(a *adapter.RFID, pos geom.Point, rangeFt, carryProb float64, rng *rand.Rand) *RFIDStation {
	return &RFIDStation{
		Adapter: a,
		Pos:     pos,
		Range:   rangeFt,
		Y:       0.75,
		rng:     rng,
		carried: newCarriage(rng, carryProb),
	}
}

// Observe implements Observer.
func (st *RFIDStation) Observe(now time.Time, people []PersonState) error {
	for _, p := range people {
		if !st.carried.carries(p.ID) {
			continue
		}
		if p.Pos.Dist(st.Pos) > st.Range {
			continue
		}
		if st.rng.Float64() < st.Y {
			if err := st.Adapter.ReportBadge(p.ID, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// CardReaderDoor simulates a badge reader on a room door: whenever a
// person enters the watched room, they swipe.
type CardReaderDoor struct {
	// Adapter forwards swipes.
	Adapter *adapter.CardReader
	// Room is the GLOB string of the watched room.
	Room string
}

// Observe implements Observer.
func (c *CardReaderDoor) Observe(now time.Time, people []PersonState) error {
	for _, p := range people {
		if p.EnteredRoom && p.Room == c.Room {
			if err := c.Adapter.Swipe(p.ID, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// BiometricDesk simulates a fingerprint login station in a room:
// a person entering the room logs in with the given probability.
type BiometricDesk struct {
	// Adapter forwards logins.
	Adapter *adapter.Biometric
	// Room is the GLOB string of the room with the device.
	Room string
	// LoginProb is the chance an entering person authenticates.
	LoginProb float64

	rng *rand.Rand
}

// NewBiometricDesk builds a login-station model.
func NewBiometricDesk(a *adapter.Biometric, room string, loginProb float64, rng *rand.Rand) *BiometricDesk {
	return &BiometricDesk{Adapter: a, Room: room, LoginProb: loginProb, rng: rng}
}

// Observe implements Observer.
func (b *BiometricDesk) Observe(now time.Time, people []PersonState) error {
	for _, p := range people {
		if p.EnteredRoom && p.Room == b.Room && b.rng.Float64() < b.LoginProb {
			if err := b.Adapter.Login(p.ID, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run advances the simulation n steps, invoking every observer after
// each step. It returns on the first observer error.
func Run(s *Sim, n int, observers ...Observer) error {
	for i := 0; i < n; i++ {
		s.Step()
		snapshot := s.People()
		for _, o := range observers {
			if err := o.Observe(s.Now(), snapshot); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flusher forwards accumulated readings downstream as one batch
// (*adapter.Batcher is one). RunBatched flushes it at step boundaries.
type Flusher interface {
	Flush() error
}

// RunBatched advances the simulation like Run, but flushes the given
// batcher after each step's observers have reported. With observers
// whose adapters share the batcher as their sink, every simulation
// step becomes one IngestBatch call instead of a database pass per
// reading.
func RunBatched(s *Sim, n int, batch Flusher, observers ...Observer) error {
	for i := 0; i < n; i++ {
		s.Step()
		snapshot := s.People()
		for _, o := range observers {
			if err := o.Observe(s.Now(), snapshot); err != nil {
				return err
			}
		}
		if err := batch.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// mSimObserverErrors counts failed observations across all tolerant
// runs in the process (the per-run figure is in RunReport.Failed).
var mSimObserverErrors = obs.Default().Counter("sim_observer_errors_total")

// RunReport summarizes a tolerant simulation run.
type RunReport struct {
	// Steps is how many simulation steps ran; Observations how many
	// observer invocations they produced.
	Steps, Observations int
	// Failed is how many observations returned an error; First is the
	// first such error (nil when everything worked).
	Failed int
	First  error
}

// Err returns the first observer error, nil when the run was clean.
func (r RunReport) Err() error { return r.First }

// RunTolerant advances the simulation n steps like Run, but a failing
// observer does not abort the run: the world keeps moving and the
// other sensors keep reporting, the way a real deployment degrades
// when one technology's sink is down. Failures are counted into the
// obs registry ("sim_observer_errors_total") and summarized in the
// returned report.
func RunTolerant(s *Sim, n int, observers ...Observer) RunReport {
	rep := RunReport{Steps: n}
	for i := 0; i < n; i++ {
		s.Step()
		snapshot := s.People()
		for _, o := range observers {
			rep.Observations++
			if err := o.Observe(s.Now(), snapshot); err != nil {
				rep.Failed++
				mSimObserverErrors.Inc()
				if rep.First == nil {
					rep.First = err
				}
			}
		}
	}
	return rep
}

// GPSSatellites simulates GPS coverage over an outdoor area: carried
// receivers inside the coverage get a fix with probability y, with
// noise matched to the reported accuracy. Indoors (outside coverage)
// GPS is blind, as §1 notes.
type GPSSatellites struct {
	// Adapter forwards fixes.
	Adapter *adapter.GPS
	// Coverage is the outdoor area with sky view.
	Coverage geom.Rect
	// Ref anchors frame coordinates to latitude/longitude (the inverse
	// of the adapter's conversion).
	Ref adapter.GeoReference
	// Y is the fix probability per step; Accuracy the reported radius.
	Y, Accuracy float64

	rng     *rand.Rand
	carried *carriage
}

// NewGPSSatellites builds a GPS coverage model. carryProb is x.
func NewGPSSatellites(a *adapter.GPS, coverage geom.Rect, ref adapter.GeoReference, carryProb float64, rng *rand.Rand) *GPSSatellites {
	return &GPSSatellites{
		Adapter:  a,
		Coverage: coverage,
		Ref:      ref,
		Y:        0.95,
		Accuracy: 15,
		rng:      rng,
		carried:  newCarriage(rng, carryProb),
	}
}

// Observe implements Observer.
func (g *GPSSatellites) Observe(now time.Time, people []PersonState) error {
	for _, p := range people {
		if !g.Coverage.ContainsPoint(p.Pos) || !g.carried.carries(p.ID) {
			continue
		}
		if g.rng.Float64() >= g.Y {
			continue
		}
		noisy := geom.Pt(
			p.Pos.X+(g.rng.Float64()*2-1)*g.Accuracy/3,
			p.Pos.Y+(g.rng.Float64()*2-1)*g.Accuracy/3,
		)
		lat := g.Ref.Lat0 + (noisy.Y-g.Ref.Origin.Y)/g.Ref.UnitsPerDegLat
		lon := g.Ref.Lon0 + (noisy.X-g.Ref.Origin.X)/g.Ref.UnitsPerDegLon
		if err := g.Adapter.ReportFix(p.ID, lat, lon, g.Accuracy, now); err != nil {
			return err
		}
	}
	return nil
}
