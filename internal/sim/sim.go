// Package sim simulates the physical deployment the paper evaluates
// on: people moving through a building, observed by stochastic sensor
// models with the error structure of §4.1.1 (carry probability x,
// detection probability y, misidentification probability z). It
// substitutes for the Ubisense/RFID/biometric/GPS hardware — and,
// unlike the hardware, it knows ground truth, which lets the
// experiments measure fusion accuracy directly.
//
// The simulator is deterministic for a fixed seed and advances on an
// explicit Step clock; nothing runs in the background.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/geom"
	"middlewhere/internal/topo"
)

// PersonState is a ground-truth snapshot of one simulated person.
type PersonState struct {
	// ID is the person's mobile-object ID.
	ID string
	// Pos is the true position in universe coordinates.
	Pos geom.Point
	// Room is the GLOB string of the region containing Pos.
	Room string
	// EnteredRoom is true on the step the person crossed into Room.
	EnteredRoom bool
}

// person is the internal movement state.
type person struct {
	id    string
	pos   geom.Point
	route []geom.Point // remaining waypoints
	dwell time.Duration
	room  string
	moved bool // entered a new room this step
}

// Config tunes the simulation.
type Config struct {
	// People is the number of simulated persons.
	People int
	// Seed fixes the random stream.
	Seed int64
	// Speed is movement speed in universe units per second.
	Speed float64
	// Step is the simulated time per Step() call.
	Step time.Duration
	// DwellMin/DwellMax bound how long a person lingers in a room
	// before picking a new destination.
	DwellMin, DwellMax time.Duration
	// Start is the simulated wall-clock origin.
	Start time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.People <= 0 {
		c.People = 5
	}
	if c.Speed <= 0 {
		c.Speed = 4 // ~walking pace in ft/s
	}
	if c.Step <= 0 {
		c.Step = time.Second
	}
	if c.DwellMin <= 0 {
		c.DwellMin = 5 * time.Second
	}
	if c.DwellMax < c.DwellMin {
		c.DwellMax = c.DwellMin + 25*time.Second
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	}
	return c
}

// Sim is the building simulation.
type Sim struct {
	cfg    Config
	bld    *building.Building
	graph  *topo.Graph
	rooms  []topo.Region
	rng    *rand.Rand
	people []*person
	now    time.Time
}

// New creates a simulation over a building.
func New(b *building.Building, cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	rooms := g.Regions()
	if len(rooms) == 0 {
		return nil, fmt.Errorf("sim: building %s has no regions", b.Name)
	}
	s := &Sim{
		cfg:   cfg,
		bld:   b,
		graph: g,
		rooms: rooms,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		now:   cfg.Start,
	}
	for i := 0; i < cfg.People; i++ {
		start := rooms[s.rng.Intn(len(rooms))]
		p := &person{
			id:   fmt.Sprintf("person-%02d", i),
			pos:  s.randomPointIn(start.Rect),
			room: start.ID,
		}
		p.dwell = s.randomDwell()
		s.people = append(s.people, p)
	}
	return s, nil
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time { return s.now }

// Graph exposes the topology graph the simulation routes over.
func (s *Sim) Graph() *topo.Graph { return s.graph }

func (s *Sim) randomPointIn(r geom.Rect) geom.Point {
	// Keep a small margin so noisy sensors stay in the universe.
	m := 0.5
	w, h := r.Width()-2*m, r.Height()-2*m
	if w <= 0 || h <= 0 {
		return r.Center()
	}
	return geom.Pt(r.Min.X+m+s.rng.Float64()*w, r.Min.Y+m+s.rng.Float64()*h)
}

func (s *Sim) randomDwell() time.Duration {
	span := s.cfg.DwellMax - s.cfg.DwellMin
	if span <= 0 {
		return s.cfg.DwellMin
	}
	return s.cfg.DwellMin + time.Duration(s.rng.Int63n(int64(span)))
}

// pickRoute chooses a new destination room and builds the waypoint
// list: door midpoints along the shortest route plus a random interior
// point of the destination.
func (s *Sim) pickRoute(p *person) {
	for attempts := 0; attempts < 8; attempts++ {
		dst := s.rooms[s.rng.Intn(len(s.rooms))]
		if dst.ID == p.room {
			continue
		}
		// Simulated people carry badges: locked doors (ECRP) are
		// passable, so nobody gets trapped in a card-controlled room.
		rt, err := s.graph.ShortestRoute(p.room, dst.ID, topo.AllowRestricted)
		if err != nil {
			continue
		}
		// Skip the first waypoint (the current room centre); end at a
		// random interior point instead of the centre.
		way := append([]geom.Point(nil), rt.Waypoints[1:]...)
		if len(way) > 0 {
			way[len(way)-1] = s.randomPointIn(dst.Rect)
		}
		p.route = way
		return
	}
	// Nowhere to go (isolated region): stay put and dwell again.
	p.dwell = s.randomDwell()
}

// Step advances the simulation by the configured step: dwell timers
// tick down, people move along their routes at walking speed, and room
// membership is updated.
func (s *Sim) Step() {
	dt := s.cfg.Step
	s.now = s.now.Add(dt)
	for _, p := range s.people {
		p.moved = false
		if len(p.route) == 0 {
			if p.dwell > 0 {
				p.dwell -= dt
				continue
			}
			s.pickRoute(p)
			if len(p.route) == 0 {
				continue
			}
		}
		budget := s.cfg.Speed * dt.Seconds()
		for budget > 0 && len(p.route) > 0 {
			target := p.route[0]
			d := p.pos.Dist(target)
			if d <= budget {
				p.pos = target
				p.route = p.route[1:]
				budget -= d
			} else {
				dir := target.Sub(p.pos).Scale(1 / d)
				p.pos = p.pos.Add(dir.Scale(budget))
				budget = 0
			}
		}
		if len(p.route) == 0 {
			p.dwell = s.randomDwell()
		}
		// Update room membership.
		if room := s.roomAt(p.pos); room != "" && room != p.room {
			p.room = room
			p.moved = true
		}
	}
}

// roomAt returns the smallest region containing the point.
func (s *Sim) roomAt(pt geom.Point) string {
	best, bestArea := "", geom.Rect{}.Area()
	first := true
	for _, r := range s.rooms {
		if !r.Rect.ContainsPoint(pt) {
			continue
		}
		if first || r.Rect.Area() < bestArea {
			best, bestArea, first = r.ID, r.Rect.Area(), false
		}
	}
	return best
}

// People returns the ground-truth snapshot, sorted by ID.
func (s *Sim) People() []PersonState {
	out := make([]PersonState, 0, len(s.people))
	for _, p := range s.people {
		out = append(out, PersonState{
			ID:          p.id,
			Pos:         p.pos,
			Room:        p.room,
			EnteredRoom: p.moved,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TruePosition returns the ground-truth position of a person.
func (s *Sim) TruePosition(id string) (geom.Point, bool) {
	for _, p := range s.people {
		if p.id == id {
			return p.pos, true
		}
	}
	return geom.Point{}, false
}

// Rand exposes the simulation's random stream so sensor models share
// the deterministic seed.
func (s *Sim) Rand() *rand.Rand { return s.rng }
