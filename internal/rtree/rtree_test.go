package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"middlewhere/internal/geom"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree should have no bounds")
	}
	if got := tr.SearchIntersect(geom.R(0, 0, 100, 100)); got != nil {
		t.Errorf("search on empty = %v", got)
	}
	if got := tr.Nearest(geom.Pt(0, 0), 3); got != nil {
		t.Errorf("nearest on empty = %v", got)
	}
	if tr.Delete(geom.R(0, 0, 1, 1), "x") {
		t.Error("delete on empty should be false")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewWithDegree(t *testing.T) {
	if _, err := NewWithDegree(2, 4); err != nil {
		t.Errorf("valid degree rejected: %v", err)
	}
	for _, bad := range [][2]int{{1, 4}, {3, 4}, {2, 3}, {5, 8}} {
		if _, err := NewWithDegree(bad[0], bad[1]); err == nil {
			t.Errorf("degree %v should be rejected", bad)
		}
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New()
	rects := map[string]geom.Rect{
		"a": geom.R(0, 0, 10, 10),
		"b": geom.R(5, 5, 15, 15),
		"c": geom.R(20, 20, 30, 30),
		"d": geom.R(100, 100, 101, 101),
	}
	for id, r := range rects {
		tr.Insert(r, id)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := ids(tr.SearchIntersect(geom.R(0, 0, 12, 12)))
	want := []string{"a", "b"}
	if !equalIDs(got, want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	got = ids(tr.SearchContained(geom.R(0, 0, 16, 16)))
	if !equalIDs(got, []string{"a", "b"}) {
		t.Errorf("contained = %v", got)
	}
	got = ids(tr.SearchContaining(geom.Pt(7, 7)))
	if !equalIDs(got, []string{"a", "b"}) {
		t.Errorf("containing = %v", got)
	}
	got = ids(tr.SearchContaining(geom.Pt(25, 25)))
	if !equalIDs(got, []string{"c"}) {
		t.Errorf("containing(25,25) = %v", got)
	}
	b, ok := tr.Bounds()
	if !ok || !b.Eq(geom.R(0, 0, 101, 101)) {
		t.Errorf("Bounds = %v, %v", b, ok)
	}
}

func TestNearestOrdering(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		x := float64(i * 10)
		tr.Insert(geom.R(x, 0, x+1, 1), fmt.Sprintf("r%d", i))
	}
	got := tr.Nearest(geom.Pt(0, 0), 3)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	wantOrder := []string{"r0", "r1", "r2"}
	for i, it := range got {
		if it.ID != wantOrder[i] {
			t.Errorf("nearest[%d] = %s, want %s", i, it.ID, wantOrder[i])
		}
	}
	// k larger than tree returns everything sorted.
	all := tr.Nearest(geom.Pt(35, 0), 100)
	if len(all) != 10 {
		t.Fatalf("got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Rect.DistToPoint(geom.Pt(35, 0)) > all[i].Rect.DistToPoint(geom.Pt(35, 0)) {
			t.Error("nearest not sorted by distance")
		}
	}
	if got := tr.Nearest(geom.Pt(0, 0), 0); got != nil {
		t.Errorf("k=0 should be nil, got %v", got)
	}
}

func TestDuplicateIDsAndRects(t *testing.T) {
	tr := New()
	r := geom.R(0, 0, 1, 1)
	tr.Insert(r, "x")
	tr.Insert(r, "x")
	tr.Insert(r, "y")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(r, "x") {
		t.Error("first delete failed")
	}
	if tr.Len() != 2 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
	got := ids(tr.SearchIntersect(r))
	if !equalIDs(got, []string{"x", "y"}) {
		t.Errorf("remaining = %v", got)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	tr.Insert(geom.R(0, 0, 1, 1), "a")
	if tr.Delete(geom.R(0, 0, 1, 1), "b") {
		t.Error("deleting wrong id should fail")
	}
	if tr.Delete(geom.R(0, 0, 2, 2), "a") {
		t.Error("deleting wrong rect should fail")
	}
	if !tr.Delete(geom.R(0, 0, 1, 1), "a") {
		t.Error("real delete failed")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestGrowAndShrinkInvariants(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	type rec struct {
		r  geom.Rect
		id string
	}
	var live []rec
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		r := geom.R(x, y, x+rng.Float64()*50, y+rng.Float64()*50)
		id := fmt.Sprintf("n%d", i)
		tr.Insert(r, id)
		live = append(live, rec{r, id})
		if i%50 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Delete half in random order.
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for i := 0; i < 250; i++ {
		if !tr.Delete(live[i].r, live[i].id) {
			t.Fatalf("delete %s failed", live[i].id)
		}
		if i%25 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Everything remaining is findable.
	for _, rc := range live[250:] {
		found := false
		for _, it := range tr.SearchIntersect(rc.r) {
			if it.ID == rc.id && it.Rect.Eq(rc.r) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lost entry %s", rc.id)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAll(t *testing.T) {
	tr := New()
	for i := 0; i < 20; i++ {
		tr.Insert(geom.R(float64(i), 0, float64(i)+1, 1), fmt.Sprintf("i%d", i))
	}
	all := tr.All()
	if len(all) != 20 {
		t.Fatalf("All returned %d", len(all))
	}
	seen := make(map[string]bool)
	for _, it := range all {
		seen[it.ID] = true
	}
	if len(seen) != 20 {
		t.Errorf("duplicate or missing ids: %v", seen)
	}
}

// TestQuickSearchMatchesLinearScan cross-checks the R-tree against a
// brute-force scan on random workloads.
func TestQuickSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		_ = seed
		tr := New()
		n := 30 + rng.Intn(100)
		type rec struct {
			r  geom.Rect
			id string
		}
		recs := make([]rec, n)
		for i := range recs {
			x, y := rng.Float64()*200, rng.Float64()*200
			recs[i] = rec{geom.R(x, y, x+rng.Float64()*30, y+rng.Float64()*30), fmt.Sprintf("q%d", i)}
			tr.Insert(recs[i].r, recs[i].id)
		}
		q := geom.R(rng.Float64()*200, rng.Float64()*200, rng.Float64()*250, rng.Float64()*250)
		var want []string
		for _, rc := range recs {
			if rc.r.Intersects(q) {
				want = append(want, rc.id)
			}
		}
		got := ids(tr.SearchIntersect(q))
		sort.Strings(want)
		return equalIDs(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNearestMatchesLinearScan cross-checks nearest neighbours.
func TestQuickNearestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		_ = seed
		tr := New()
		n := 20 + rng.Intn(80)
		rects := make([]geom.Rect, n)
		for i := range rects {
			x, y := rng.Float64()*200, rng.Float64()*200
			rects[i] = geom.R(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
			tr.Insert(rects[i], fmt.Sprintf("p%d", i))
		}
		p := geom.Pt(rng.Float64()*220-10, rng.Float64()*220-10)
		k := 1 + rng.Intn(5)
		got := tr.Nearest(p, k)
		if len(got) != k {
			return false
		}
		dists := make([]float64, n)
		for i, r := range rects {
			dists[i] = r.DistToPoint(p)
		}
		sort.Float64s(dists)
		for i, it := range got {
			// Distances must match the k smallest (allow exact fp equality
			// since both sides compute the same way).
			if it.Rect.DistToPoint(p) != dists[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func ids(items []Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	sort.Strings(out)
	return out
}

func equalIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCloneIsImmutableSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	type row struct {
		r  geom.Rect
		id string
	}
	var rows []row
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		r := geom.R(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
		id := fmt.Sprintf("o%d", i)
		tr.Insert(r, id)
		rows = append(rows, row{r, id})
	}
	snap := tr.Clone()
	if snap.Len() != tr.Len() {
		t.Fatalf("clone Len = %d, want %d", snap.Len(), tr.Len())
	}

	// Mutate the original heavily: delete half, insert new entries.
	for i := 0; i < 100; i++ {
		if !tr.Delete(rows[i].r, rows[i].id) {
			t.Fatalf("delete %s failed", rows[i].id)
		}
	}
	for i := 0; i < 50; i++ {
		tr.Insert(geom.R(200, 200, 201, 201), fmt.Sprintf("n%d", i))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("original after mutation: %v", err)
	}
	if err := snap.checkInvariants(); err != nil {
		t.Fatalf("clone after source mutation: %v", err)
	}

	// The clone still answers with the pre-mutation rows.
	if snap.Len() != 200 {
		t.Fatalf("clone Len after source mutation = %d, want 200", snap.Len())
	}
	got := ids(snap.SearchIntersect(geom.R(-1, -1, 200, 200)))
	if len(got) != 200 {
		t.Fatalf("clone search returned %d entries, want 200", len(got))
	}
	for _, id := range got {
		if id[0] == 'n' {
			t.Fatalf("clone observed post-snapshot insert %s", id)
		}
	}
}

func TestCloneMutationDoesNotAffectSource(t *testing.T) {
	tr := New()
	for i := 0; i < 64; i++ {
		tr.Insert(geom.R(float64(i), 0, float64(i)+1, 1), fmt.Sprintf("o%d", i))
	}
	c := tr.Clone()
	// Mutating the clone materializes it; the source must stay intact.
	c.Insert(geom.R(500, 500, 501, 501), "extra")
	if !c.Delete(geom.R(0, 0, 1, 1), "o0") {
		t.Fatal("clone delete failed")
	}
	if tr.Len() != 64 {
		t.Fatalf("source Len = %d, want 64", tr.Len())
	}
	if got := ids(tr.SearchIntersect(geom.R(499, 499, 502, 502))); len(got) != 0 {
		t.Fatalf("source observed clone insert: %v", got)
	}
	if got := ids(tr.SearchIntersect(geom.R(0, 0, 1, 1))); len(got) == 0 {
		t.Fatal("source lost entry deleted on clone")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// A second clone of a clone works too.
	cc := c.Clone()
	if cc.Len() != c.Len() {
		t.Fatalf("clone-of-clone Len = %d, want %d", cc.Len(), c.Len())
	}
}
