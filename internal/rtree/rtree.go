// Package rtree implements a Guttman R-tree (R-trees: a dynamic index
// structure for spatial searching, SIGMOD 1984 — the paper's citation
// [4]) with quadratic splitting. The spatial database uses it to index
// the object and sensor tables so region queries and trigger
// evaluation stay sub-linear in the number of stored geometries.
//
// The tree maps minimum bounding rectangles to opaque string IDs. It
// is not safe for concurrent use; the spatial database serializes
// access.
package rtree

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"middlewhere/internal/geom"
)

const (
	// defaultMax is M, the maximum number of entries per node.
	defaultMax = 8
	// defaultMin is m, the minimum number of entries per non-root node
	// (m <= M/2 per Guttman).
	defaultMin = 3
)

// Tree is an R-tree over (Rect, ID) entries. The zero value is an
// empty tree ready to use.
type Tree struct {
	root *node
	size int
	// maxEntries/minEntries are fixed at first use; configurable for
	// tests via NewWithDegree.
	maxEntries int
	minEntries int
	// visits counts nodes touched by searches since construction — the
	// raw material for the spatialdb's rtree_node_visits metric. It is
	// atomic because the spatial database allows concurrent readers
	// (RLock) even though mutations are serialized.
	visits atomic.Int64
	// shared marks the node structure as co-owned with at least one
	// Clone. A shared tree deep-copies its nodes before the first
	// mutation (copy-on-write), so clones stay immutable snapshots no
	// matter what happens to the original. It is atomic because Clone
	// may run under a shared (read) lock in the spatial database while
	// other snapshots are being taken.
	shared atomic.Bool
}

// Clone returns a read-only view of the tree at the current instant in
// O(1): the clone shares the node structure with the receiver, and the
// first subsequent mutation of either tree deep-copies the nodes it
// owns first (copy-on-write). Clones taken for snapshots are never
// mutated, so the copy is paid at most once per (snapshot, write)
// pair — by the writer, off the snapshot reader's path. Searching a
// clone concurrently with mutations of the original is safe; the
// clone's visit counter starts at zero so callers can fold the delta
// back into the source with AddVisits.
func (t *Tree) Clone() *Tree {
	t.shared.Store(true)
	c := &Tree{
		root:       t.root,
		size:       t.size,
		maxEntries: t.maxEntries,
		minEntries: t.minEntries,
	}
	c.shared.Store(true)
	return c
}

// AddVisits folds externally observed node visits into the tree's
// counter — used to account searches that ran on a snapshot clone back
// to the live index the visits gauge watches.
func (t *Tree) AddVisits(n int64) { t.visits.Add(n) }

// materialize gives the tree private ownership of its nodes before a
// mutation: if the structure is shared with a clone, every node is
// copied. Mutating methods call it first.
func (t *Tree) materialize() {
	if !t.shared.Load() {
		return
	}
	t.root = copyNodes(t.root)
	t.shared.Store(false)
}

// copyNodes deep-copies a subtree (nodes and entry slices; IDs and
// rectangles are values).
func copyNodes(n *node) *node {
	if n == nil {
		return nil
	}
	c := &node{leaf: n.leaf, entries: make([]entry, len(n.entries))}
	copy(c.entries, n.entries)
	if !n.leaf {
		for i := range c.entries {
			c.entries[i].child = copyNodes(c.entries[i].child)
		}
	}
	return c
}

// Visits returns the cumulative number of tree nodes touched by
// SearchIntersect/SearchContained/SearchContaining/Nearest calls.
// Callers that want per-query costs record the delta around a call.
func (t *Tree) Visits() int64 { return t.visits.Load() }

// New returns an empty R-tree with the default branching factor.
func New() *Tree { return &Tree{} }

// NewWithDegree returns an empty R-tree with custom node capacities.
// min must satisfy 2 <= min <= max/2.
func NewWithDegree(min, max int) (*Tree, error) {
	if min < 2 || max < 4 || min > max/2 {
		return nil, fmt.Errorf("rtree: invalid degree min=%d max=%d (need 2 <= min <= max/2)", min, max)
	}
	return &Tree{minEntries: min, maxEntries: max}, nil
}

type entry struct {
	rect geom.Rect
	// child is non-nil for interior entries.
	child *node
	// id is set for leaf entries.
	id string
}

type node struct {
	leaf    bool
	entries []entry
}

func (t *Tree) maxE() int {
	if t.maxEntries == 0 {
		return defaultMax
	}
	return t.maxEntries
}

func (t *Tree) minE() int {
	if t.minEntries == 0 {
		return defaultMin
	}
	return t.minEntries
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Bounds returns the MBR of everything in the tree, and false when the
// tree is empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.root == nil || len(t.root.entries) == 0 {
		return geom.Rect{}, false
	}
	return nodeBounds(t.root), true
}

// Insert adds an entry. Duplicate IDs are allowed (the caller keys
// them); duplicates are removed one at a time by Delete.
//
// The descent records its path and grows each traversed interior
// entry's rectangle by the inserted rectangle, so bounds stay exact
// without any whole-tree pass — keeping Insert O(log n) amortized
// (Guttman's AdjustTree).
func (t *Tree) Insert(r geom.Rect, id string) {
	t.materialize()
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	// Descend to a leaf, recording the path and expanding entry
	// rectangles on the way down.
	path := []*node{t.root}
	n := t.root
	for !n.leaf {
		best := -1
		bestEnlarge := math.Inf(1)
		bestArea := math.Inf(1)
		for i, e := range n.entries {
			enlarged := e.rect.Union(r).Area() - e.rect.Area()
			area := e.rect.Area()
			if enlarged < bestEnlarge || (enlarged == bestEnlarge && area < bestArea) {
				best, bestEnlarge, bestArea = i, enlarged, area
			}
		}
		n.entries[best].rect = n.entries[best].rect.Union(r)
		n = n.entries[best].child
		path = append(path, n)
	}
	n.entries = append(n.entries, entry{rect: r, id: id})
	t.size++

	// Split overflowing nodes bottom-up along the recorded path.
	for i := len(path) - 1; i >= 0; i-- {
		nd := path[i]
		if len(nd.entries) <= t.maxE() {
			break
		}
		left, right := t.splitNode(nd)
		if i == 0 {
			t.root = &node{
				leaf: false,
				entries: []entry{
					{rect: nodeBounds(left), child: left},
					{rect: nodeBounds(right), child: right},
				},
			}
			break
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == nd {
				parent.entries[j] = entry{rect: nodeBounds(left), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry{rect: nodeBounds(right), child: right})
	}
}

// refreshBounds recomputes interior entry rectangles bottom-up.
func refreshBounds(n *node) geom.Rect {
	if n.leaf {
		return nodeBounds(n)
	}
	for i := range n.entries {
		n.entries[i].rect = refreshBounds(n.entries[i].child)
	}
	return nodeBounds(n)
}

func (t *Tree) findParent(cur, target *node) *node {
	if cur.leaf {
		return nil
	}
	for _, e := range cur.entries {
		if e.child == target {
			return cur
		}
		if p := t.findParent(e.child, target); p != nil {
			return p
		}
	}
	return nil
}

// splitNode performs Guttman's quadratic split, returning two new
// nodes that partition n's entries.
func (t *Tree) splitNode(n *node) (*node, *node) {
	entries := n.entries
	// PickSeeds: the pair wasting the most area together.
	var s1, s2 int
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left := &node{leaf: n.leaf, entries: []entry{entries[s1]}}
	right := &node{leaf: n.leaf, entries: []entry{entries[s2]}}
	lb, rb := entries[s1].rect, entries[s2].rect

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	minE := t.minE()
	for len(rest) > 0 {
		// If one group must take everything to reach minimum, do so.
		if len(left.entries)+len(rest) == minE {
			left.entries = append(left.entries, rest...)
			break
		}
		if len(right.entries)+len(rest) == minE {
			right.entries = append(right.entries, rest...)
			break
		}
		// PickNext: entry with max preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := lb.Union(e.rect).Area() - lb.Area()
			d2 := rb.Union(e.rect).Area() - rb.Area()
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := lb.Union(e.rect).Area() - lb.Area()
		d2 := rb.Union(e.rect).Area() - rb.Area()
		switch {
		case d1 < d2, d1 == d2 && lb.Area() < rb.Area(),
			d1 == d2 && lb.Area() == rb.Area() && len(left.entries) <= len(right.entries):
			left.entries = append(left.entries, e)
			lb = lb.Union(e.rect)
		default:
			right.entries = append(right.entries, e)
			rb = rb.Union(e.rect)
		}
	}
	return left, right
}

func nodeBounds(n *node) geom.Rect {
	b := n.entries[0].rect
	for _, e := range n.entries[1:] {
		b = b.Union(e.rect)
	}
	return b
}

// Item is one search result.
type Item struct {
	Rect geom.Rect
	ID   string
}

// SearchIntersect returns all entries whose rectangle intersects q
// (boundary contact included), in no particular order.
func (t *Tree) SearchIntersect(q geom.Rect) []Item {
	var out []Item
	if t.root == nil {
		return nil
	}
	var walk func(n *node)
	walk = func(n *node) {
		t.visits.Add(1)
		for _, e := range n.entries {
			if !e.rect.Intersects(q) {
				continue
			}
			if n.leaf {
				out = append(out, Item{Rect: e.rect, ID: e.id})
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out
}

// SearchIntersectFunc calls fn for every entry whose rectangle
// intersects q (boundary contact included), in no particular order,
// without allocating a result slice. fn returning false stops the
// search early. It is the hot-path form of SearchIntersect: the
// candidate pre-filter runs it once per region query, so the result
// slice would otherwise be the query's dominant allocation.
func (t *Tree) SearchIntersectFunc(q geom.Rect, fn func(r geom.Rect, id string) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		t.visits.Add(1)
		for _, e := range n.entries {
			if !e.rect.Intersects(q) {
				continue
			}
			if n.leaf {
				if !fn(e.rect, e.id) {
					return false
				}
			} else if !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// SearchContained returns all entries fully contained in q.
func (t *Tree) SearchContained(q geom.Rect) []Item {
	var out []Item
	for _, it := range t.SearchIntersect(q) {
		if q.ContainsRect(it.Rect) {
			out = append(out, it)
		}
	}
	return out
}

// SearchContaining returns all entries whose rectangle contains the
// point p.
func (t *Tree) SearchContaining(p geom.Point) []Item {
	var out []Item
	for _, it := range t.SearchIntersect(geom.Rect{Min: p, Max: p}) {
		if it.Rect.ContainsPoint(p) {
			out = append(out, it)
		}
	}
	return out
}

// Nearest returns up to k entries closest to point p by rectangle
// distance (0 for rectangles containing p), ordered nearest first.
// It performs a best-first branch-and-bound traversal.
func (t *Tree) Nearest(p geom.Point, k int) []Item {
	if t.root == nil || k <= 0 {
		return nil
	}
	type cand struct {
		dist float64
		item Item
	}
	var results []cand
	// Simple recursive branch and bound with pruning against the
	// current kth distance.
	kth := func() float64 {
		if len(results) < k {
			return math.Inf(1)
		}
		return results[len(results)-1].dist
	}
	insert := func(c cand) {
		i := sort.Search(len(results), func(i int) bool { return results[i].dist > c.dist })
		results = append(results, cand{})
		copy(results[i+1:], results[i:])
		results[i] = c
		if len(results) > k {
			results = results[:k]
		}
	}
	var walk func(n *node)
	walk = func(n *node) {
		t.visits.Add(1)
		// Visit children nearest-first for better pruning.
		idx := make([]int, len(n.entries))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return n.entries[idx[a]].rect.DistToPoint(p) < n.entries[idx[b]].rect.DistToPoint(p)
		})
		for _, i := range idx {
			e := n.entries[i]
			d := e.rect.DistToPoint(p)
			if d > kth() {
				continue
			}
			if n.leaf {
				insert(cand{dist: d, item: Item{Rect: e.rect, ID: e.id}})
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	out := make([]Item, len(results))
	for i, c := range results {
		out[i] = c.item
	}
	return out
}

// Delete removes one entry matching (r, id) exactly. It reports
// whether an entry was removed. Underfull nodes are condensed by
// reinserting their remaining entries, per Guttman's CondenseTree.
func (t *Tree) Delete(r geom.Rect, id string) bool {
	t.materialize()
	if t.root == nil {
		return false
	}
	leaf, idx := t.findLeaf(t.root, r, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root if it has a single interior child.
	for t.root != nil && !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if t.root != nil && len(t.root.entries) == 0 {
		t.root = nil
	}
	if t.root != nil {
		refreshBounds(t.root)
	}
	return true
}

func (t *Tree) findLeaf(n *node, r geom.Rect, id string) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && e.rect.Eq(r) {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.ContainsRect(r) || e.rect.Intersects(r) {
			if leaf, i := t.findLeaf(e.child, r, id); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, 0
}

// condense removes underfull nodes on the path from n to the root and
// reinserts their orphaned entries.
func (t *Tree) condense(n *node) {
	var orphans []entry
	for n != t.root && n != nil && len(n.entries) < t.minE() {
		parent := t.findParent(t.root, n)
		if parent == nil {
			break
		}
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
				break
			}
		}
		orphans = append(orphans, n.entries...)
		n = parent
	}
	for _, e := range orphans {
		t.reinsert(e)
	}
}

// reinsert puts an orphaned entry (leaf item or whole subtree) back.
func (t *Tree) reinsert(e entry) {
	if e.child == nil {
		t.size-- // Insert will increment again
		t.Insert(e.rect, e.id)
		return
	}
	// Reinsert every leaf item of the subtree.
	var walk func(n *node)
	walk = func(n *node) {
		for _, en := range n.entries {
			if n.leaf {
				t.size--
				t.Insert(en.rect, en.id)
			} else {
				walk(en.child)
			}
		}
	}
	walk(e.child)
}

// All returns every stored item.
func (t *Tree) All() []Item {
	if t.root == nil {
		return nil
	}
	var out []Item
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if n.leaf {
				out = append(out, Item{Rect: e.rect, ID: e.id})
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root but size %d", t.size)
		}
		return nil
	}
	count := 0
	var depthOfLeaf = -1
	var walk func(n *node, depth int, bound geom.Rect, isRoot bool) error
	walk = func(n *node, depth int, bound geom.Rect, isRoot bool) error {
		if !isRoot && len(n.entries) < t.minE() {
			return fmt.Errorf("rtree: underfull node (%d < %d)", len(n.entries), t.minE())
		}
		if len(n.entries) > t.maxE() {
			return fmt.Errorf("rtree: overfull node (%d > %d)", len(n.entries), t.maxE())
		}
		if n.leaf {
			if depthOfLeaf == -1 {
				depthOfLeaf = depth
			} else if depthOfLeaf != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", depthOfLeaf, depth)
			}
			count += len(n.entries)
		}
		for _, e := range n.entries {
			if !bound.ContainsRect(e.rect) {
				return fmt.Errorf("rtree: entry %v escapes parent bound %v", e.rect, bound)
			}
			if !n.leaf {
				if got := nodeBounds(e.child); !e.rect.Eq(got) {
					return fmt.Errorf("rtree: stale bound %v (child covers %v)", e.rect, got)
				}
				if err := walk(e.child, depth+1, e.rect, false); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root, 0, nodeBounds(t.root), true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries", t.size, count)
	}
	return nil
}
