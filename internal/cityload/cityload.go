// Package cityload is the city-scale sustained-load harness: it
// stands up a MultiStorey "city" (every floor a shard), drives an
// open-loop readings/sec-targeted stream of Ubisense fixes through
// per-floor adapters and a shared batcher, runs a concurrent
// occupancy-heatmap query loop against the same service, and gates
// the run on windowed p99 latency SLOs (obs.SLOTracker) plus the
// generator's own pacing report. It is the proof harness for the
// lock-free snapshot cuts (DESIGN.md §16): cuts ride the query loop
// at full rate while ingest sustains the offered load, and a breach
// of either the pace or an SLO fails the run.
//
// The harness is wall-clock driven — SLO windows and the open-loop
// pacing are real time — but the *simulated* clock advances one
// sim-step per generator step, and the service's clock is slaved to
// it, so sensor TTLs and fusion temporal degradation see a coherent
// timeline regardless of the wall rate.
package cityload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/obs"
	"middlewhere/internal/sim"
)

// Config sizes the city and the load.
type Config struct {
	// Floors is the number of floors (= reading-table shards) in the
	// city tower. Rows x Cols rooms per floor.
	Floors, Rows, Cols int
	// People is the number of simulated tag carriers.
	People int
	// Steps is how many generator steps to run; StepsPerSec is the
	// open-loop target rate. Offered readings/sec is about
	// StepsPerSec x People x CarryProb.
	Steps       int
	StepsPerSec float64
	// CarryProb is the per-step probability a person's tag reports.
	CarryProb float64
	// FlushSize is the ingest batcher's auto-flush threshold.
	FlushSize int
	// SLOSpec is an obs.ParseSLOs spec gating the run, e.g.
	// "ingest=p99<25ms,heatmap=p99<250ms".
	SLOSpec string
	// QueryEvery is the heatmap query loop's cadence; HeatRows x
	// HeatCols is the requested grid.
	QueryEvery         time.Duration
	HeatRows, HeatCols int
	// Slack is the worst step lag the pacing gate tolerates.
	Slack time.Duration
	// Seed fixes the simulation and sensor-noise streams.
	Seed int64
}

func (c Config) withDefaults() Config {
	// The default city is an order of magnitude past the PR-9 harness
	// (8 floors / 64 people): the support-index heatmap and sharded
	// notifier keep the query loop sublinear in the population, so the
	// same SLO spec holds at 16 floors / 640 people on the 1-CPU CI
	// box (EXPERIMENTS.md §PERF-10).
	if c.Floors <= 0 {
		c.Floors = 16
	}
	if c.Rows <= 0 {
		c.Rows = 4
	}
	if c.Cols <= 0 {
		c.Cols = 6
	}
	if c.People <= 0 {
		c.People = 640
	}
	// 20 steps/s x 640 people x 0.95 carry offers ~12k readings/s —
	// 5x the PR-9 harness's offered load — while leaving the single
	// CI core headroom for the concurrent query loop; the population
	// (not the step rate) is what the sublinear queries are gated on.
	if c.Steps <= 0 {
		c.Steps = 200
	}
	if c.StepsPerSec <= 0 {
		c.StepsPerSec = 20
	}
	if c.CarryProb <= 0 || c.CarryProb > 1 {
		c.CarryProb = 0.95
	}
	if c.FlushSize <= 0 {
		c.FlushSize = 128
	}
	if c.SLOSpec == "" {
		c.SLOSpec = "ingest=p99<25ms,heatmap=p99<250ms"
	}
	if c.QueryEvery <= 0 {
		c.QueryEvery = 100 * time.Millisecond
	}
	if c.HeatRows <= 0 {
		c.HeatRows = 4
	}
	if c.HeatCols <= 0 {
		c.HeatCols = 6
	}
	if c.Slack <= 0 {
		c.Slack = 500 * time.Millisecond
	}
	return c
}

// Report is the harness verdict: the pacing report, throughput
// achieved, the SLO evaluations, and pass/fail with reasons.
type Report struct {
	Floors, People int
	Pace           sim.PaceReport
	// Readings is the number of fixes emitted into the batcher;
	// OfferedPerSec is the configured target, AchievedPerSec the
	// measured emission rate over the run.
	Readings       int64
	OfferedPerSec  float64
	AchievedPerSec float64
	// HeatmapQueries is how many occupancy heatmaps the concurrent
	// query loop completed during the run.
	HeatmapQueries int64
	SLOs           []obs.SLOStatus
	Passed         bool
	Failures       []string
}

// String renders the report in the experiments-output style.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "city: %d floors, %d people\n", r.Floors, r.People)
	fmt.Fprintf(&b, "load: %d readings in %v (offered %.0f/s, achieved %.0f/s)\n",
		r.Readings, r.Pace.Elapsed.Round(time.Millisecond), r.OfferedPerSec, r.AchievedPerSec)
	fmt.Fprintf(&b, "pace: %d/%d steps late, max lag %v\n",
		r.Pace.LateSteps, r.Pace.Steps, r.Pace.MaxLag.Round(time.Microsecond))
	fmt.Fprintf(&b, "queries: %d occupancy heatmaps\n", r.HeatmapQueries)
	for _, s := range r.SLOs {
		verdict := "ok"
		if s.Breached {
			verdict = "BREACHED"
		}
		fmt.Fprintf(&b, "slo %-8s p%g<%v: attained %v over %d samples, burn %.2f — %s\n",
			s.Name, s.Percentile*100, s.Target, s.Attained, s.Samples, s.BurnRate, verdict)
	}
	if r.Passed {
		b.WriteString("PASS\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %s\n", strings.Join(r.Failures, "; "))
	}
	return b.String()
}

// cityField observes the simulation's ground truth and reports each
// carried tag through the adapter of the floor the person is on. The
// simulator hands out universe coordinates; Ubisense adapters speak
// their floor's frame, so the fix is translated to floor-local before
// ReportFix re-anchors it — that per-floor anchoring is what routes
// each reading to its floor's shard. The observer also slaves the
// service clock to the simulated timeline.
type cityField struct {
	adapters []*adapter.Ubisense
	floorH   float64
	carry    float64
	rng      *rand.Rand
	simNowNs *atomic.Int64
	emitted  int64
}

func (f *cityField) Observe(now time.Time, people []sim.PersonState) error {
	f.simNowNs.Store(now.UnixNano())
	for _, p := range people {
		if f.rng.Float64() > f.carry {
			continue
		}
		k := int(p.Pos.Y / f.floorH)
		if k < 0 {
			k = 0
		}
		if k >= len(f.adapters) {
			k = len(f.adapters) - 1
		}
		local := geom.Pt(p.Pos.X, p.Pos.Y-float64(k)*f.floorH)
		if err := f.adapters[k].ReportFix(p.ID, local, now); err != nil {
			return fmt.Errorf("cityload: floor %d fix: %w", k, err)
		}
		f.emitted++
	}
	return nil
}

// Run executes the sustained-load harness and returns its verdict.
// The error covers harness failures (bad config, ingest errors); gate
// failures come back as a Report with Passed == false.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	slos, err := obs.ParseSLOs(cfg.SLOSpec, nil)
	if err != nil {
		return nil, fmt.Errorf("cityload: %w", err)
	}

	const roomW, roomH, corridorH = 12.0, 10.0, 5.0
	bld := building.MultiStorey("C", cfg.Floors, cfg.Rows, cfg.Cols, roomW, roomH, corridorH)
	floorH := float64(cfg.Rows) * (roomH + corridorH)

	// The service clock follows the simulated timeline (stored by the
	// observer each step) so TTL expiry and temporal degradation are
	// evaluated against the same clock that stamps the readings.
	var simNowNs atomic.Int64
	svc, err := core.New(bld, core.WithClock(func() time.Time {
		return time.Unix(0, simNowNs.Load()).UTC()
	}))
	if err != nil {
		return nil, fmt.Errorf("cityload: %w", err)
	}
	defer svc.Close()

	s, err := sim.New(bld, sim.Config{People: cfg.People, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("cityload: %w", err)
	}
	simNowNs.Store(s.Now().UnixNano())

	batch := adapter.NewBatcher(svc, cfg.FlushSize)
	field := &cityField{
		floorH:   floorH,
		carry:    cfg.CarryProb,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		simNowNs: &simNowNs,
	}
	for k := 0; k < cfg.Floors; k++ {
		a, err := adapter.NewUbisense(fmt.Sprintf("ubi-f%02d", k),
			glob.MustParse(fmt.Sprintf("C/F%d", k)), cfg.CarryProb, batch, svc, adapter.Options{})
		if err != nil {
			return nil, fmt.Errorf("cityload: %w", err)
		}
		field.adapters = append(field.adapters, a)
	}

	tracker := obs.NewSLOTracker(nil, slos, 0)
	tracker.Tick() // baseline sample before any load

	// Concurrent query loop: occupancy heatmaps round-robin the
	// floors while ingest runs, so every query is a snapshot cut
	// racing live batches. The tracker ticks on the same cadence.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	var queries atomic.Int64
	var queryErr atomic.Pointer[error]
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		tick := time.NewTicker(cfg.QueryEvery)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			region := glob.MustParse(fmt.Sprintf("C/F%d", i%cfg.Floors))
			if _, err := svc.OccupancyHeatmap(region, cfg.HeatRows, cfg.HeatCols); err != nil {
				e := fmt.Errorf("cityload: heatmap %s: %w", region, err)
				queryErr.CompareAndSwap(nil, &e)
				return
			}
			queries.Add(1)
			tracker.Tick()
		}
	}()

	pace, runErr := sim.RunPaced(s, cfg.Steps, cfg.StepsPerSec, batch, field)
	close(stop)
	qwg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if ep := queryErr.Load(); ep != nil {
		return nil, *ep
	}
	if err := batch.Close(); err != nil {
		return nil, fmt.Errorf("cityload: final flush: %w", err)
	}
	tracker.Tick()

	rep := &Report{
		Floors:         cfg.Floors,
		People:         cfg.People,
		Pace:           pace,
		Readings:       field.emitted,
		OfferedPerSec:  cfg.StepsPerSec * float64(cfg.People) * cfg.CarryProb,
		HeatmapQueries: queries.Load(),
		SLOs:           tracker.Status(),
	}
	if pace.Elapsed > 0 {
		rep.AchievedPerSec = float64(field.emitted) / pace.Elapsed.Seconds()
	}
	if !pace.OnSchedule(cfg.Slack) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("generator fell %v behind schedule (slack %v): ingest cannot sustain %.0f readings/s",
				pace.MaxLag.Round(time.Millisecond), cfg.Slack, rep.OfferedPerSec))
	}
	if rep.HeatmapQueries == 0 {
		rep.Failures = append(rep.Failures, "query loop never completed a heatmap")
	}
	for _, st := range rep.SLOs {
		if st.Breached {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("slo %s: p%g attained %v > target %v", st.Name, st.Percentile*100, st.Attained, st.Target))
		}
	}
	rep.Passed = len(rep.Failures) == 0
	return rep, nil
}
