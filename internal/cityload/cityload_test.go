package cityload

import (
	"strings"
	"testing"
	"time"
)

// TestRunSmoke drives a miniature city at a fast step rate and checks
// the harness plumbing end to end: readings flow through the
// per-floor adapters into the batcher, the concurrent heatmap loop
// completes queries, and generous SLOs pass.
func TestRunSmoke(t *testing.T) {
	rep, err := Run(Config{
		Floors: 2, Rows: 2, Cols: 3,
		People: 8, Steps: 30, StepsPerSec: 200,
		CarryProb:  0.9,
		SLOSpec:    "ingest=p99<2s,heatmap=p99<2s",
		QueryEvery: 5 * time.Millisecond,
		Slack:      5 * time.Second,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Readings == 0 {
		t.Error("no readings emitted")
	}
	if rep.HeatmapQueries == 0 {
		t.Error("query loop completed no heatmaps")
	}
	if rep.Pace.Steps != 30 {
		t.Errorf("steps = %d, want 30", rep.Pace.Steps)
	}
	if len(rep.SLOs) != 2 {
		t.Errorf("slo evaluations = %d, want 2", len(rep.SLOs))
	}
	if !rep.Passed {
		t.Errorf("run failed: %v", rep.Failures)
	}
	if out := rep.String(); !strings.Contains(out, "PASS") {
		t.Errorf("report rendering:\n%s", out)
	}
}

// TestRunGatesBreach pins the fail path: an unattainable SLO target
// must flip the verdict and name the objective.
func TestRunGatesBreach(t *testing.T) {
	rep, err := Run(Config{
		Floors: 2, Rows: 2, Cols: 3,
		People: 8, Steps: 15, StepsPerSec: 200,
		SLOSpec:    "ingest=p99<1ns",
		QueryEvery: 5 * time.Millisecond,
		Slack:      5 * time.Second,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("1ns ingest SLO passed; the gate is not wired")
	}
	found := false
	for _, f := range rep.Failures {
		if strings.Contains(f, "slo ingest") {
			found = true
		}
	}
	if !found {
		t.Errorf("failures do not name the breached objective: %v", rep.Failures)
	}
	if out := rep.String(); !strings.Contains(out, "FAIL") {
		t.Errorf("report rendering:\n%s", out)
	}
}

// TestConfigDefaults pins the documented default shape.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Floors != 16 || c.People != 640 || c.StepsPerSec != 20 {
		t.Errorf("defaults = %+v", c)
	}
	if c.SLOSpec == "" || c.Slack <= 0 || c.QueryEvery <= 0 {
		t.Errorf("unfilled defaults: %+v", c)
	}
}
