// Package rules implements a small Datalog engine — the stand-in for
// the XSB Prolog system the paper uses to reason over region relations
// (§4.6.1). The Location Service loads the derived spatial facts
// (ecfp/2, ecrp/2, ecnp/2, contains/2, ...) as the extensional
// database and evaluates rules such as transitively-reachable,
// same-floor, or application-defined policies, bottom-up.
//
// The engine supports:
//
//   - Horn rules with variables and constants
//   - semi-naive bottom-up evaluation to a fixpoint
//   - stratified negation (negated body literals)
//   - the built-in predicates neq/2 and eq/2
//
// Programs that are not stratifiable (negation through a recursive
// cycle) are rejected at Evaluate time.
package rules

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Term is a constant or a variable. Variables begin with an uppercase
// letter or '_'; anything else is a constant. Use V and C to construct
// terms explicitly.
type Term struct {
	value string
	isVar bool
}

// V makes a variable term.
func V(name string) Term { return Term{value: name, isVar: true} }

// C makes a constant term.
func C(value string) Term { return Term{value: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.isVar }

// Value returns the term's name (variable) or value (constant).
func (t Term) Value() string { return t.value }

// String implements fmt.Stringer.
func (t Term) String() string {
	if t.isVar {
		return "?" + t.value
	}
	return t.value
}

// Atom is a predicate applied to terms, e.g. ecfp(roomA, roomB).
type Atom struct {
	Predicate string
	Args      []Term
}

// A builds an atom.
func A(pred string, args ...Term) Atom {
	return Atom{Predicate: pred, Args: args}
}

// Ground reports whether the atom contains no variables.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Predicate + "(" + strings.Join(parts, ",") + ")"
}

// Literal is an atom or its negation in a rule body.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos builds a positive body literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg builds a negated body literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Rule is head :- body.
type Rule struct {
	Head Atom
	Body []Literal
}

// R builds a rule.
func R(head Atom, body ...Literal) Rule { return Rule{Head: head, Body: body} }

// fact is a ground atom in canonical string form for set membership.
type fact string

func factOf(pred string, args []string) fact {
	return fact(pred + "(" + strings.Join(args, ",") + ")")
}

// Engine holds facts and rules and evaluates queries.
type Engine struct {
	rules []Rule
	// facts: predicate -> list of ground argument tuples.
	facts map[string][][]string
	seen  map[fact]bool
	// evaluated marks the fixpoint as current; mutations clear it.
	evaluated bool
}

// Sentinel errors.
var (
	ErrNotStratified = errors.New("rules: program is not stratifiable")
	ErrUnsafeRule    = errors.New("rules: unsafe rule")
	ErrBadQuery      = errors.New("rules: bad query")
)

// Builtin predicates evaluated directly rather than looked up.
const (
	builtinNeq = "neq"
	builtinEq  = "eq"
)

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		facts: make(map[string][][]string),
		seen:  make(map[fact]bool),
	}
}

// AddFact asserts a ground fact. Duplicate facts are ignored.
func (e *Engine) AddFact(pred string, args ...string) {
	key := factOf(pred, args)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.facts[pred] = append(e.facts[pred], append([]string(nil), args...))
	e.evaluated = false
}

// AddRule adds a rule. Rules must be safe: every head variable and
// every variable in a negated or builtin literal must appear in a
// positive, non-builtin body literal.
func (e *Engine) AddRule(r Rule) error {
	bound := make(map[string]bool)
	for _, l := range r.Body {
		if l.Negated || isBuiltin(l.Atom.Predicate) {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.IsVar() {
				bound[t.Value()] = true
			}
		}
	}
	check := func(a Atom, what string) error {
		for _, t := range a.Args {
			if t.IsVar() && !bound[t.Value()] {
				return fmt.Errorf("%w: variable %s in %s not bound by a positive literal", ErrUnsafeRule, t, what)
			}
		}
		return nil
	}
	if err := check(r.Head, "head"); err != nil {
		return err
	}
	for _, l := range r.Body {
		if l.Negated || isBuiltin(l.Atom.Predicate) {
			if err := check(l.Atom, "literal "+l.Atom.String()); err != nil {
				return err
			}
		}
	}
	e.rules = append(e.rules, r)
	e.evaluated = false
	return nil
}

func isBuiltin(pred string) bool { return pred == builtinNeq || pred == builtinEq }

// stratify orders predicates so that negation never crosses a cycle.
// Returns predicate strata (lower evaluates first).
func (e *Engine) stratify() (map[string]int, error) {
	stratum := make(map[string]int)
	preds := make(map[string]bool)
	for _, r := range e.rules {
		preds[r.Head.Predicate] = true
		for _, l := range r.Body {
			if !isBuiltin(l.Atom.Predicate) {
				preds[l.Atom.Predicate] = true
			}
		}
	}
	for p := range e.facts {
		preds[p] = true
	}
	for p := range preds {
		stratum[p] = 0
	}
	// Bellman-Ford-style relaxation: head stratum >= body stratum, and
	// strictly greater across negation. If a stratum exceeds the
	// number of predicates, there is a negative cycle.
	limit := len(preds) + 1
	for changed, iters := true, 0; changed; iters++ {
		changed = false
		if iters > limit {
			return nil, ErrNotStratified
		}
		for _, r := range e.rules {
			h := r.Head.Predicate
			for _, l := range r.Body {
				if isBuiltin(l.Atom.Predicate) {
					continue
				}
				need := stratum[l.Atom.Predicate]
				if l.Negated {
					need++
				}
				if stratum[h] < need {
					stratum[h] = need
					changed = true
				}
			}
		}
	}
	return stratum, nil
}

// Evaluate computes the fixpoint of all rules over the facts. It is
// called implicitly by Query; callers only need it to surface
// stratification errors early.
func (e *Engine) Evaluate() error {
	if e.evaluated {
		return nil
	}
	strata, err := e.stratify()
	if err != nil {
		return err
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	for s := 0; s <= maxStratum; s++ {
		var active []Rule
		for _, r := range e.rules {
			if strata[r.Head.Predicate] == s {
				active = append(active, r)
			}
		}
		e.fixpoint(active)
	}
	e.evaluated = true
	return nil
}

// fixpoint runs semi-naive bottom-up iteration of the given rules
// until no new fact appears: after the initial full pass, each round
// only joins against the facts derived in the previous round (the
// delta), which keeps long derivation chains linear instead of
// re-deriving the whole closure every iteration.
func (e *Engine) fixpoint(active []Rule) {
	delta := e.applyRules(active, nil)
	for len(delta) > 0 {
		delta = e.applyRules(active, delta)
	}
}

// deltaSet holds the facts derived in the previous semi-naive round,
// grouped by predicate for direct iteration.
type deltaSet map[string][][]string

// applyRules derives new head facts. With delta == nil every rule body
// is evaluated against the full fact store (the naive first pass).
// Otherwise each rule is evaluated once per positive body literal,
// requiring that literal to match a delta fact — the semi-naive
// restriction. It returns the set of newly derived facts.
func (e *Engine) applyRules(active []Rule, delta deltaSet) deltaSet {
	newDelta := make(deltaSet)
	derive := func(r Rule, restrictIdx int) {
		for _, binding := range e.matchBody(r.Body, map[string]string{}, 0, restrictIdx, delta) {
			args := make([]string, len(r.Head.Args))
			for i, t := range r.Head.Args {
				if t.IsVar() {
					args[i] = binding[t.Value()]
				} else {
					args[i] = t.Value()
				}
			}
			key := factOf(r.Head.Predicate, args)
			if !e.seen[key] {
				e.seen[key] = true
				e.facts[r.Head.Predicate] = append(e.facts[r.Head.Predicate], args)
				newDelta[r.Head.Predicate] = append(newDelta[r.Head.Predicate], args)
			}
		}
	}
	for _, r := range active {
		if delta == nil {
			derive(r, -1)
			continue
		}
		for idx, l := range r.Body {
			if l.Negated || isBuiltin(l.Atom.Predicate) {
				continue
			}
			if len(delta[l.Atom.Predicate]) == 0 {
				continue
			}
			derive(r, idx)
		}
	}
	return newDelta
}

// matchBody enumerates all variable bindings satisfying the body
// literals from position idx onward. When restrictIdx >= 0, the
// literal at that position only matches facts present in delta.
func (e *Engine) matchBody(body []Literal, binding map[string]string, idx, restrictIdx int, delta deltaSet) []map[string]string {
	if idx == len(body) {
		out := make(map[string]string, len(binding))
		for k, v := range binding {
			out[k] = v
		}
		return []map[string]string{out}
	}
	l := body[idx]
	var results []map[string]string

	if isBuiltin(l.Atom.Predicate) {
		lhs := resolve(l.Atom.Args[0], binding)
		rhs := resolve(l.Atom.Args[1], binding)
		ok := lhs == rhs
		if l.Atom.Predicate == builtinNeq {
			ok = !ok
		}
		if l.Negated {
			ok = !ok
		}
		if ok {
			results = append(results, e.matchBody(body, binding, idx+1, restrictIdx, delta)...)
		}
		return results
	}

	if l.Negated {
		// Negation as failure over the (stratified) facts so far.
		args := make([]string, len(l.Atom.Args))
		for i, t := range l.Atom.Args {
			args[i] = resolve(t, binding)
		}
		if !e.seen[factOf(l.Atom.Predicate, args)] {
			results = append(results, e.matchBody(body, binding, idx+1, restrictIdx, delta)...)
		}
		return results
	}

	source := e.facts[l.Atom.Predicate]
	if idx == restrictIdx {
		source = delta[l.Atom.Predicate]
	}
	for _, tuple := range source {
		if len(tuple) != len(l.Atom.Args) {
			continue
		}
		next := binding
		copied := false
		ok := true
		for i, t := range l.Atom.Args {
			if t.IsVar() {
				if v, bound := next[t.Value()]; bound {
					if v != tuple[i] {
						ok = false
						break
					}
				} else {
					if !copied {
						tmp := make(map[string]string, len(next)+1)
						for k, v := range next {
							tmp[k] = v
						}
						next, copied = tmp, true
					}
					next[t.Value()] = tuple[i]
				}
			} else if t.Value() != tuple[i] {
				ok = false
				break
			}
		}
		if ok {
			results = append(results, e.matchBody(body, next, idx+1, restrictIdx, delta)...)
		}
	}
	return results
}

func resolve(t Term, binding map[string]string) string {
	if t.IsVar() {
		return binding[t.Value()]
	}
	return t.Value()
}

// Query evaluates the program (if needed) and returns every binding of
// the pattern's variables, sorted deterministically. Ground patterns
// return a single empty binding when the fact holds and no bindings
// otherwise.
func (e *Engine) Query(pattern Atom) ([]map[string]string, error) {
	if isBuiltin(pattern.Predicate) {
		return nil, fmt.Errorf("%w: cannot query builtin %s", ErrBadQuery, pattern.Predicate)
	}
	if err := e.Evaluate(); err != nil {
		return nil, err
	}
	results := e.matchBody([]Literal{Pos(pattern)}, map[string]string{}, 0, -1, nil)
	sort.Slice(results, func(i, j int) bool {
		return bindingKey(results[i]) < bindingKey(results[j])
	})
	// Deduplicate (a pattern with repeated variables can match a tuple
	// several ways that produce identical bindings).
	out := results[:0]
	var last string
	for i, b := range results {
		k := bindingKey(b)
		if i == 0 || k != last {
			out = append(out, b)
			last = k
		}
	}
	return out, nil
}

// Holds reports whether a ground atom is derivable.
func (e *Engine) Holds(pattern Atom) (bool, error) {
	if !pattern.Ground() {
		return false, fmt.Errorf("%w: Holds needs a ground atom", ErrBadQuery)
	}
	res, err := e.Query(pattern)
	if err != nil {
		return false, err
	}
	return len(res) > 0, nil
}

// Facts returns the tuples currently stored for a predicate (after
// evaluation, the derived ones included). The result is a copy.
func (e *Engine) Facts(pred string) [][]string {
	tuples := e.facts[pred]
	out := make([][]string, len(tuples))
	for i, t := range tuples {
		out[i] = append([]string(nil), t...)
	}
	return out
}

func bindingKey(b map[string]string) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(b[k])
		sb.WriteByte(';')
	}
	return sb.String()
}
