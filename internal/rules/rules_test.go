package rules

import (
	"errors"
	"testing"
)

// reachabilityEngine loads the classic edge/path program over the
// floor graph: path(X,Y) :- ecfp(X,Y). path(X,Z) :- path(X,Y), ecfp(Y,Z).
func reachabilityEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	e.AddFact("ecfp", "r1", "corridor")
	e.AddFact("ecfp", "corridor", "r1")
	e.AddFact("ecfp", "corridor", "r3")
	e.AddFact("ecfp", "r3", "corridor")
	e.AddFact("ecrp", "corridor", "r2")
	if err := e.AddRule(R(A("path", V("X"), V("Y")), Pos(A("ecfp", V("X"), V("Y"))))); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(R(
		A("path", V("X"), V("Z")),
		Pos(A("path", V("X"), V("Y"))),
		Pos(A("ecfp", V("Y"), V("Z"))),
	)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTransitiveClosure(t *testing.T) {
	e := reachabilityEngine(t)
	ok, err := e.Holds(A("path", C("r1"), C("r3")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("r1 should reach r3 through the corridor")
	}
	// r2 is behind a restricted door: not free-reachable.
	ok, err = e.Holds(A("path", C("r1"), C("r2")))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("r1 must not free-reach r2")
	}
}

func TestQueryBindings(t *testing.T) {
	e := reachabilityEngine(t)
	res, err := e.Query(A("path", C("r1"), V("Where")))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, b := range res {
		got[b["Where"]] = true
	}
	// r1 reaches corridor, r3, and itself (r1->corridor->r1).
	for _, want := range []string{"corridor", "r3", "r1"} {
		if !got[want] {
			t.Errorf("missing binding Where=%s (got %v)", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("bindings = %v", got)
	}
}

func TestQueryGroundPattern(t *testing.T) {
	e := reachabilityEngine(t)
	res, err := e.Query(A("ecfp", C("r1"), C("corridor")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0]) != 0 {
		t.Errorf("ground query = %v", res)
	}
	res, err = e.Query(A("ecfp", C("r1"), C("r2")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("false ground query = %v", res)
	}
}

func TestNegationStratified(t *testing.T) {
	// blocked(X,Y): adjacent but with no free passage.
	e := NewEngine()
	e.AddFact("adjacent", "a", "b")
	e.AddFact("adjacent", "a", "c")
	e.AddFact("ecfp", "a", "b")
	if err := e.AddRule(R(
		A("blocked", V("X"), V("Y")),
		Pos(A("adjacent", V("X"), V("Y"))),
		Neg(A("ecfp", V("X"), V("Y"))),
	)); err != nil {
		t.Fatal(err)
	}
	ok, err := e.Holds(A("blocked", C("a"), C("c")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("a-c should be blocked")
	}
	ok, err = e.Holds(A("blocked", C("a"), C("b")))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a-b has a free door")
	}
}

func TestNonStratifiableRejected(t *testing.T) {
	// p(X) :- q(X), not p(X) — negation through recursion.
	e := NewEngine()
	e.AddFact("q", "a")
	if err := e.AddRule(R(A("p", V("X")), Pos(A("q", V("X"))), Neg(A("p", V("X"))))); err != nil {
		t.Fatal(err)
	}
	if err := e.Evaluate(); !errors.Is(err, ErrNotStratified) {
		t.Errorf("err = %v, want ErrNotStratified", err)
	}
	// Query surfaces the same error.
	if _, err := e.Query(A("p", V("X"))); !errors.Is(err, ErrNotStratified) {
		t.Errorf("query err = %v", err)
	}
}

func TestUnsafeRulesRejected(t *testing.T) {
	e := NewEngine()
	// Head variable not bound.
	err := e.AddRule(R(A("p", V("X"), V("Y")), Pos(A("q", V("X")))))
	if !errors.Is(err, ErrUnsafeRule) {
		t.Errorf("unbound head var: %v", err)
	}
	// Negated literal variable not bound.
	err = e.AddRule(R(A("p", V("X")), Pos(A("q", V("X"))), Neg(A("r", V("Z")))))
	if !errors.Is(err, ErrUnsafeRule) {
		t.Errorf("unbound negated var: %v", err)
	}
	// Builtin with unbound variable.
	err = e.AddRule(R(A("p", V("X")), Pos(A("q", V("X"))), Pos(A("neq", V("X"), V("W")))))
	if !errors.Is(err, ErrUnsafeRule) {
		t.Errorf("unbound builtin var: %v", err)
	}
}

func TestBuiltins(t *testing.T) {
	e := NewEngine()
	e.AddFact("room", "a")
	e.AddFact("room", "b")
	// different(X,Y) :- room(X), room(Y), neq(X,Y).
	if err := e.AddRule(R(
		A("different", V("X"), V("Y")),
		Pos(A("room", V("X"))),
		Pos(A("room", V("Y"))),
		Pos(A("neq", V("X"), V("Y"))),
	)); err != nil {
		t.Fatal(err)
	}
	// same(X,Y) :- room(X), room(Y), eq(X,Y).
	if err := e.AddRule(R(
		A("same", V("X"), V("Y")),
		Pos(A("room", V("X"))),
		Pos(A("room", V("Y"))),
		Pos(A("eq", V("X"), V("Y"))),
	)); err != nil {
		t.Fatal(err)
	}
	if ok, _ := e.Holds(A("different", C("a"), C("b"))); !ok {
		t.Error("a,b should differ")
	}
	if ok, _ := e.Holds(A("different", C("a"), C("a"))); ok {
		t.Error("a,a should not differ")
	}
	if ok, _ := e.Holds(A("same", C("a"), C("a"))); !ok {
		t.Error("a,a should be same")
	}
	if _, err := e.Query(A("neq", C("a"), C("b"))); !errors.Is(err, ErrBadQuery) {
		t.Error("querying a builtin should fail")
	}
}

func TestHoldsRequiresGround(t *testing.T) {
	e := NewEngine()
	e.AddFact("p", "a")
	if _, err := e.Holds(A("p", V("X"))); !errors.Is(err, ErrBadQuery) {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateFactsIgnored(t *testing.T) {
	e := NewEngine()
	e.AddFact("p", "a")
	e.AddFact("p", "a")
	if got := e.Facts("p"); len(got) != 1 {
		t.Errorf("Facts = %v", got)
	}
}

func TestFactsReturnsCopy(t *testing.T) {
	e := NewEngine()
	e.AddFact("p", "a", "b")
	fs := e.Facts("p")
	fs[0][0] = "mutated"
	if got := e.Facts("p"); got[0][0] != "a" {
		t.Error("Facts exposed internal storage")
	}
}

func TestIncrementalFactsReevaluate(t *testing.T) {
	e := reachabilityEngine(t)
	if ok, _ := e.Holds(A("path", C("r1"), C("r9"))); ok {
		t.Fatal("r9 unknown yet")
	}
	// A new wing opens.
	e.AddFact("ecfp", "r3", "r9")
	ok, err := e.Holds(A("path", C("r1"), C("r9")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("path should extend to the new room after re-evaluation")
	}
}

func TestRepeatedVariablePattern(t *testing.T) {
	e := NewEngine()
	e.AddFact("edge", "a", "a")
	e.AddFact("edge", "a", "b")
	res, err := e.Query(A("edge", V("X"), V("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["X"] != "a" {
		t.Errorf("self-edge query = %v", res)
	}
}

func TestTermAndAtomStrings(t *testing.T) {
	if V("X").String() != "?X" || C("a").String() != "a" {
		t.Error("term strings")
	}
	if got := A("p", V("X"), C("a")).String(); got != "p(?X,a)" {
		t.Errorf("atom string = %q", got)
	}
	if !A("p", C("a")).Ground() || A("p", V("X")).Ground() {
		t.Error("Ground detection")
	}
}

func TestDeepRecursionChain(t *testing.T) {
	// A 200-node chain exercises the fixpoint loop.
	e := NewEngine()
	for i := 0; i < 200; i++ {
		e.AddFact("next", nodeName(i), nodeName(i+1))
	}
	if err := e.AddRule(R(A("reach", V("X"), V("Y")), Pos(A("next", V("X"), V("Y"))))); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(R(
		A("reach", V("X"), V("Z")),
		Pos(A("reach", V("X"), V("Y"))),
		Pos(A("next", V("Y"), V("Z"))),
	)); err != nil {
		t.Fatal(err)
	}
	ok, err := e.Holds(A("reach", C(nodeName(0)), C(nodeName(200))))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("end of chain unreachable")
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/100)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10))
}
