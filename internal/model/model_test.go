package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"middlewhere/internal/glob"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestErrorModelDerivation(t *testing.T) {
	// Worked example: x=0.9, y=0.95, z=0.05.
	m := ErrorModel{X: 0.9, Y: 0.95, Z: 0.05}
	// p = (1-y)x + (1-z)(1-x) = 0.05*0.9 + 0.95*0.1 = 0.045 + 0.095 = 0.14
	if got := m.MissProb(); !almostEq(got, 0.14) {
		t.Errorf("MissProb = %v, want 0.14", got)
	}
	// detect = yx + z(1-x) = 0.855 + 0.005 = 0.86 = 1 - p
	if got := m.DetectProb(); !almostEq(got, 0.86) {
		t.Errorf("DetectProb = %v, want 0.86", got)
	}
	// q = z + y(1-x) = 0.05 + 0.095 = 0.145
	if got := m.FalseProb(); !almostEq(got, 0.145) {
		t.Errorf("FalseProb = %v, want 0.145", got)
	}
}

func TestErrorModelBiometricAssumptions(t *testing.T) {
	// Biometric devices: x = 1 (physical presence), so the model
	// collapses to p_detect = y and q = z (§6.3).
	m := ErrorModel{X: 1, Y: 0.99, Z: 0.01}
	if got := m.DetectProb(); !almostEq(got, 0.99) {
		t.Errorf("DetectProb = %v, want y", got)
	}
	if got := m.FalseProb(); !almostEq(got, 0.01) {
		t.Errorf("FalseProb = %v, want z", got)
	}
	if got := m.MissProb(); !almostEq(got, 0.01) {
		t.Errorf("MissProb = %v, want 1-y", got)
	}
}

func TestErrorModelValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    ErrorModel
		wantErr bool
	}{
		{"valid", ErrorModel{X: 0.5, Y: 0.9, Z: 0.1}, false},
		{"boundary", ErrorModel{X: 0, Y: 1, Z: 0}, false},
		{"x too big", ErrorModel{X: 1.1, Y: 0.5, Z: 0.5}, true},
		{"y negative", ErrorModel{X: 0.5, Y: -0.1, Z: 0.5}, true},
		{"z too big", ErrorModel{X: 0.5, Y: 0.5, Z: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestQuickErrorModelProbabilitiesInRange(t *testing.T) {
	f := func(a, b, c uint16) bool {
		m := ErrorModel{
			X: float64(a) / 65535,
			Y: float64(b) / 65535,
			Z: float64(c) / 65535,
		}
		p, d := m.MissProb(), m.DetectProb()
		// p and detect are complements and both probabilities.
		return p >= 0 && p <= 1 && d >= 0 && d <= 1 && almostEq(p+d, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestConstantTDF(t *testing.T) {
	f := ConstantTDF{}
	if got := f.Degrade(0.9, time.Hour); !almostEq(got, 0.9) {
		t.Errorf("Degrade = %v", got)
	}
	if got := f.Degrade(1.5, 0); !almostEq(got, 1) {
		t.Errorf("Degrade should clamp: %v", got)
	}
	if f.Describe() == "" {
		t.Error("empty Describe")
	}
}

func TestLinearTDF(t *testing.T) {
	f := LinearTDF{Span: 10 * time.Second}
	tests := []struct {
		age  time.Duration
		want float64
	}{
		{0, 0.8},
		{5 * time.Second, 0.4},
		{10 * time.Second, 0},
		{time.Minute, 0},
		{-time.Second, 0.8}, // future readings are fresh
	}
	for _, tt := range tests {
		if got := f.Degrade(0.8, tt.age); !almostEq(got, tt.want) {
			t.Errorf("Degrade(0.8, %v) = %v, want %v", tt.age, got, tt.want)
		}
	}
	if got := (LinearTDF{}).Degrade(0.8, time.Second); got != 0 {
		t.Errorf("zero-span linear tdf should degrade to 0, got %v", got)
	}
}

func TestExponentialTDF(t *testing.T) {
	f := ExponentialTDF{HalfLife: 4 * time.Second}
	if got := f.Degrade(0.8, 0); !almostEq(got, 0.8) {
		t.Errorf("fresh = %v", got)
	}
	if got := f.Degrade(0.8, 4*time.Second); !almostEq(got, 0.4) {
		t.Errorf("one half-life = %v, want 0.4", got)
	}
	if got := f.Degrade(0.8, 8*time.Second); !almostEq(got, 0.2) {
		t.Errorf("two half-lives = %v, want 0.2", got)
	}
	if got := (ExponentialTDF{}).Degrade(0.8, time.Second); got != 0 {
		t.Errorf("zero half-life should degrade to 0, got %v", got)
	}
}

func TestStepTDF(t *testing.T) {
	f := StepTDF{Steps: []Step{
		{Age: 10 * time.Second, Factor: 0.5},
		{Age: 30 * time.Second, Factor: 0.2},
	}}
	tests := []struct {
		age  time.Duration
		want float64
	}{
		{0, 1},
		{9 * time.Second, 1},
		{10 * time.Second, 0.5},
		{29 * time.Second, 0.5},
		{30 * time.Second, 0.1}, // 0.5 * 0.2 compound
	}
	for _, tt := range tests {
		if got := f.Degrade(1, tt.age); !almostEq(got, tt.want) {
			t.Errorf("Degrade(1, %v) = %v, want %v", tt.age, got, tt.want)
		}
	}
}

func TestQuickTDFMonotoneNonIncreasing(t *testing.T) {
	tdfs := []TDF{
		ConstantTDF{},
		LinearTDF{Span: time.Minute},
		ExponentialTDF{HalfLife: 10 * time.Second},
		StepTDF{Steps: []Step{{Age: 5 * time.Second, Factor: 0.7}, {Age: 20 * time.Second, Factor: 0.5}}},
	}
	f := func(a, b uint32, c uint16) bool {
		age1 := time.Duration(a%120) * time.Second
		age2 := age1 + time.Duration(b%120)*time.Second
		conf := float64(c) / 65535
		for _, tdf := range tdfs {
			v1 := tdf.Degrade(conf, age1)
			v2 := tdf.Degrade(conf, age2)
			if v2 > v1+1e-12 || v1 > conf+1e-12 || v1 < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSensorSpecValidate(t *testing.T) {
	room := glob.MustParse("SC/3/3216")
	valid := SensorSpec{
		Type:       "test",
		Errors:     ErrorModel{X: 1, Y: 0.9, Z: 0.1},
		Resolution: DistanceResolution(5),
		TTL:        time.Minute,
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*SensorSpec)
	}{
		{"empty type", func(s *SensorSpec) { s.Type = "" }},
		{"bad errors", func(s *SensorSpec) { s.Errors.Y = 2 }},
		{"zero ttl", func(s *SensorSpec) { s.TTL = 0 }},
		{"negative radius", func(s *SensorSpec) { s.Resolution.Radius = -1 }},
		{"symbolic without region", func(s *SensorSpec) {
			s.Resolution = Resolution{Kind: ResolutionSymbolic}
		}},
		{"unknown resolution kind", func(s *SensorSpec) { s.Resolution.Kind = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := valid
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	sym := SensorSpec{
		Type:       "card",
		Errors:     ErrorModel{X: 1, Y: 0.99, Z: 0.01},
		Resolution: SymbolicResolution(room),
		TTL:        10 * time.Second,
	}
	if err := sym.Validate(); err != nil {
		t.Errorf("symbolic spec rejected: %v", err)
	}
}

func TestReadingAgeAndExpiry(t *testing.T) {
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	r := Reading{Time: base}
	if got := r.Age(base.Add(7 * time.Second)); got != 7*time.Second {
		t.Errorf("Age = %v", got)
	}
	if r.Expired(base.Add(5*time.Second), 10*time.Second) {
		t.Error("should not be expired inside TTL")
	}
	if !r.Expired(base.Add(11*time.Second), 10*time.Second) {
		t.Error("should be expired past TTL")
	}
	// Exactly at the TTL boundary is still fresh (strictly greater).
	if r.Expired(base.Add(10*time.Second), 10*time.Second) {
		t.Error("at-TTL reading should still be valid")
	}
}

func TestReadingEffectiveDetectProb(t *testing.T) {
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	spec := SensorSpec{
		Type:       "test",
		Errors:     ErrorModel{X: 1, Y: 0.9, Z: 0},
		Resolution: DistanceResolution(1),
		TTL:        time.Minute,
		Degrade:    LinearTDF{Span: 10 * time.Second},
	}
	r := Reading{Time: base}
	if got := r.EffectiveDetectProb(spec, base); !almostEq(got, 0.9) {
		t.Errorf("fresh = %v, want 0.9", got)
	}
	if got := r.EffectiveDetectProb(spec, base.Add(5*time.Second)); !almostEq(got, 0.45) {
		t.Errorf("half-aged = %v, want 0.45", got)
	}
	// nil tdf defaults to constant.
	spec.Degrade = nil
	if got := r.EffectiveDetectProb(spec, base.Add(time.Hour)); !almostEq(got, 0.9) {
		t.Errorf("constant default = %v, want 0.9", got)
	}
}

func TestScaledZ(t *testing.T) {
	if got := ScaledZ(0.05, 10, 1000); !almostEq(got, 0.0005) {
		t.Errorf("ScaledZ = %v", got)
	}
	if got := ScaledZ(0.05, 2000, 1000); !almostEq(got, 0.1) {
		t.Errorf("large area ScaledZ = %v", got)
	}
	// Degenerate universe falls back to the base value.
	if got := ScaledZ(0.05, 10, 0); !almostEq(got, 0.05) {
		t.Errorf("zero universe ScaledZ = %v", got)
	}
	// Clamped to 1.
	if got := ScaledZ(0.5, 1e9, 1); !almostEq(got, 1) {
		t.Errorf("clamped ScaledZ = %v", got)
	}
}

func TestPaperSpecs(t *testing.T) {
	room := glob.MustParse("SC/3/3216")
	specs := []SensorSpec{
		UbisenseSpec(0.9),
		RFIDSpec(0.8),
		BiometricShortSpec(),
		BiometricLongSpec(room, 15*time.Minute, 0.3),
		GPSSpec(0.7, 15),
		CardReaderSpec(room),
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Type, err)
		}
	}
	// Paper values: Ubisense y = 0.95; RFID y = 0.75; biometric short
	// x=1, y=0.99, z=0.01; GPS y=0.99 z=0.01.
	if specs[0].Errors.Y != 0.95 {
		t.Errorf("ubisense y = %v", specs[0].Errors.Y)
	}
	if specs[1].Errors.Y != 0.75 {
		t.Errorf("rfid y = %v", specs[1].Errors.Y)
	}
	if s := specs[2]; s.Errors.X != 1 || s.Errors.Y != 0.99 || s.Errors.Z != 0.01 {
		t.Errorf("biometric short errors = %+v", s.Errors)
	}
	if s := specs[4]; s.Errors.Y != 0.99 || s.Errors.Z != 0.01 {
		t.Errorf("gps errors = %+v", s.Errors)
	}
	// Card reader TTL from §5.2: 10 seconds.
	if specs[5].TTL != 10*time.Second {
		t.Errorf("cardreader TTL = %v", specs[5].TTL)
	}
	// Ubisense TTL from the §5.2 table: 3 seconds.
	if specs[0].TTL != 3*time.Second {
		t.Errorf("ubisense TTL = %v", specs[0].TTL)
	}
	// A sensor is informative when detect > false (reinforcement
	// condition p_i > q_i of §4.1.2).
	for _, s := range specs {
		if s.Errors.DetectProb() <= s.Errors.FalseProb() {
			t.Errorf("spec %s: detect %v <= false %v", s.Type,
				s.Errors.DetectProb(), s.Errors.FalseProb())
		}
	}
}

func TestResolutionKindString(t *testing.T) {
	if ResolutionDistance.String() != "distance" ||
		ResolutionSymbolic.String() != "symbolic" {
		t.Error("ResolutionKind strings wrong")
	}
	if ResolutionKind(9).String() != "ResolutionKind(9)" {
		t.Error("unknown kind string wrong")
	}
}
