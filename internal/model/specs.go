package model

import (
	"time"

	"middlewhere/internal/glob"
)

// Technology names for the four location technologies the paper
// deploys (§6) plus the card readers mentioned in §1.1 and §5.2.
const (
	TypeUbisense       = "ubisense"
	TypeRFID           = "rfid"
	TypeBiometricShort = "biometric-short"
	TypeBiometricLong  = "biometric-long"
	TypeGPS            = "gps"
	TypeCardReader     = "cardreader"
)

// ScaledZ computes the misidentification probability of a concrete
// reading: the paper sets z = zBase * area(A) / area(U), where A is
// the reported region and U the coverage region (§6: Ubisense zBase
// 0.05, RFID badges zBase 0.25). The ErrorModel in a SensorSpec
// carries the *base* probability; the Location Service applies this
// area scaling per reading, because a false report is uniformly
// distributed over the coverage area and the likelihood of it landing
// on one specific rectangle shrinks with that rectangle. The result is
// clamped to [0, 1].
func ScaledZ(zBase, areaA, areaU float64) float64 {
	if areaU <= 0 {
		return clamp01(zBase)
	}
	return clamp01(zBase * areaA / areaU)
}

// UbisenseSpec calibrates the Ubisense UWB technology (§6.1): a tag is
// located within a 6-inch (0.5 ft) circle 95% of the time, so y=0.95
// and a base misreport probability z of 0.05 (scaled per reading by
// area(A)/area(U), §6). carryProb is the measured probability that a
// person carries their tag (x). The §5.2 table gives Ubisense readings
// a 3-second TTL.
func UbisenseSpec(carryProb float64) SensorSpec {
	return SensorSpec{
		Type: TypeUbisense,
		Errors: ErrorModel{
			X: clamp01(carryProb),
			Y: 0.95,
			Z: 0.05,
		},
		Resolution: DistanceResolution(0.5),
		TTL:        3 * time.Second,
		Degrade:    ExponentialTDF{HalfLife: 2 * time.Second},
	}
}

// RFIDSpec calibrates the RF active badges (§6.2): base stations
// detect badges within about 15 ft but obstacles weaken the signal, so
// the paper sets y=0.75 and a base misreport probability z of 0.25
// (scaled per reading by area(A)/area(U)). The §5.2 table gives RF
// readings a 60-second TTL.
func RFIDSpec(carryProb float64) SensorSpec {
	return SensorSpec{
		Type: TypeRFID,
		Errors: ErrorModel{
			X: clamp01(carryProb),
			Y: 0.75,
			Z: 0.25,
		},
		Resolution: DistanceResolution(15),
		TTL:        60 * time.Second,
		Degrade:    LinearTDF{Span: 2 * time.Minute},
	}
}

// BiometricShortSpec calibrates the short-term reading of a biometric
// login device (§6.3): x=1 (a fingerprint implies physical presence),
// y=0.99, z=0.01, a 2-ft radius around the device, and a 30-second
// expiry.
func BiometricShortSpec() SensorSpec {
	return SensorSpec{
		Type:       TypeBiometricShort,
		Errors:     ErrorModel{X: 1, Y: 0.99, Z: 0.01},
		Resolution: DistanceResolution(2),
		TTL:        30 * time.Second,
		Degrade:    ConstantTDF{},
	}
}

// BiometricLongSpec calibrates the long-term reading: the person is
// somewhere in the room for up to stay (the paper uses T = 15 min),
// with z the probability of leaving before T without logging out.
// room names the symbolic region the reading covers.
func BiometricLongSpec(room glob.GLOB, stay time.Duration, leaveProb float64) SensorSpec {
	return SensorSpec{
		Type:       TypeBiometricLong,
		Errors:     ErrorModel{X: 1, Y: 0.99, Z: clamp01(leaveProb)},
		Resolution: SymbolicResolution(room),
		TTL:        stay,
		Degrade:    LinearTDF{Span: stay},
	}
}

// GPSSpec calibrates a GPS receiver (§6.4) reporting the given
// accuracy radius: y=0.99, z=0.01 (trusting the device's own accuracy
// estimate), x the probability the person carries the unit.
func GPSSpec(carryProb, accuracyRadius float64) SensorSpec {
	return SensorSpec{
		Type:       TypeGPS,
		Errors:     ErrorModel{X: clamp01(carryProb), Y: 0.99, Z: 0.01},
		Resolution: DistanceResolution(accuracyRadius),
		TTL:        30 * time.Second,
		Degrade:    ExponentialTDF{HalfLife: 20 * time.Second},
	}
}

// CardReaderSpec calibrates a door card reader: a swipe places the
// person in the room with high confidence (x=1: the finger/card is the
// device), but the reading goes stale quickly — the §5.2 example gives
// card readers a 10-second TTL.
func CardReaderSpec(room glob.GLOB) SensorSpec {
	return SensorSpec{
		Type:       TypeCardReader,
		Errors:     ErrorModel{X: 1, Y: 0.98, Z: 0.02},
		Resolution: SymbolicResolution(room),
		TTL:        10 * time.Second,
		Degrade:    StepTDF{Steps: []Step{{Age: 5 * time.Second, Factor: 0.5}}},
	}
}

// Additional technologies named in §1.1 ("login information on
// desktops, ... Bluetooth").
const (
	TypeBluetooth    = "bluetooth"
	TypeDesktopLogin = "desktop-login"
)

// BluetoothSpec calibrates Bluetooth inquiry scanning: a discoverable
// device within ~30 ft answers an inquiry most of the time, but
// inquiry cycles are slow and lossy, so detection is weaker than the
// RF badges and readings stay valid between scan rounds.
func BluetoothSpec(carryProb float64) SensorSpec {
	return SensorSpec{
		Type: TypeBluetooth,
		Errors: ErrorModel{
			X: clamp01(carryProb),
			Y: 0.7,
			Z: 0.2,
		},
		Resolution: DistanceResolution(30),
		TTL:        90 * time.Second,
		Degrade:    LinearTDF{Span: 3 * time.Minute},
	}
}

// DesktopLoginSpec calibrates a workstation login session for the room
// holding the machine: typing a password proves presence (x=1) but
// people walk away from logged-in sessions, so confidence degrades
// over the session with a long horizon.
func DesktopLoginSpec(room glob.GLOB, session time.Duration) SensorSpec {
	return SensorSpec{
		Type:       TypeDesktopLogin,
		Errors:     ErrorModel{X: 1, Y: 0.95, Z: 0.1},
		Resolution: SymbolicResolution(room),
		TTL:        session,
		Degrade: StepTDF{Steps: []Step{
			{Age: 5 * time.Minute, Factor: 0.8},
			{Age: 15 * time.Minute, Factor: 0.6},
			{Age: 30 * time.Minute, Factor: 0.4},
		}},
	}
}
