// Package model implements MiddleWhere's quality-of-location model
// (§3.2) and sensor error model (§4.1.1): resolution, confidence,
// freshness with expiry, temporal degradation functions (tdf), and the
// derivation of the two per-sensor confidence values p and q from the
// carry/detection/misidentification probabilities x, y, z.
//
// It also defines Reading, the common representation every location
// adapter converts raw sensor output into before it enters the spatial
// database (Table 2 of the paper).
package model

import (
	"errors"
	"fmt"
	"math"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
)

// ResolutionKind says how a sensor expresses its resolution (§3.2):
// as a distance (error radius around a fix) or as a symbolic region
// (e.g. "somewhere in this room").
type ResolutionKind int

// Resolution kinds.
const (
	ResolutionDistance ResolutionKind = iota + 1
	ResolutionSymbolic
)

// String implements fmt.Stringer.
func (k ResolutionKind) String() string {
	switch k {
	case ResolutionDistance:
		return "distance"
	case ResolutionSymbolic:
		return "symbolic"
	default:
		return fmt.Sprintf("ResolutionKind(%d)", int(k))
	}
}

// Resolution is the region size a sensor can pin a mobile object to.
type Resolution struct {
	Kind ResolutionKind
	// Radius is the error radius for distance resolutions, in the
	// units of the sensor's coordinate frame.
	Radius float64
	// Region names the symbolic region for symbolic resolutions.
	Region glob.GLOB
}

// DistanceResolution builds a distance resolution with the given error
// radius.
func DistanceResolution(radius float64) Resolution {
	return Resolution{Kind: ResolutionDistance, Radius: radius}
}

// SymbolicResolution builds a symbolic (region-level) resolution.
func SymbolicResolution(region glob.GLOB) Resolution {
	return Resolution{Kind: ResolutionSymbolic, Region: region}
}

// ErrorModel holds the three base probabilities of §4.1.1 for one
// sensor technology:
//
//	X — probability the person carries the sensed device
//	    (1 for biometrics, measured from user studies otherwise)
//	Y — P(sensor says device is in A | device is in A)
//	Z — P(sensor says device is in A | device is not in A)
type ErrorModel struct {
	X, Y, Z float64
}

// Validate checks that all three probabilities lie in [0, 1].
func (m ErrorModel) Validate() error {
	for _, v := range []struct {
		name string
		v    float64
	}{{"x", m.X}, {"y", m.Y}, {"z", m.Z}} {
		if v.v < 0 || v.v > 1 {
			return fmt.Errorf("model: %s = %g out of [0,1]", v.name, v.v)
		}
	}
	return nil
}

// MissProb returns p, the probability of the first error kind —
// the sensor says the person is not in A although they are:
//
//	p = (1−y)·x + (1−z)·(1−x)
func (m ErrorModel) MissProb() float64 {
	return (1-m.Y)*m.X + (1-m.Z)*(1-m.X)
}

// DetectProb returns the complement of MissProb — the probability the
// sensor reports the person in A when they are in A:
//
//	P(sensor says in A | in A) = y·x + z·(1−x)
//
// This is the p_i that enters the fusion equations (Eq. 4–7), where a
// reading "reinforces" others exactly when DetectProb > FalseProb.
func (m ErrorModel) DetectProb() float64 {
	return m.Y*m.X + m.Z*(1-m.X)
}

// FalseProb returns q, the probability of the second error kind — the
// sensor says the person is in A although they are not:
//
//	q = z·x + (y+z)·(1−x) = z + y·(1−x)
func (m ErrorModel) FalseProb() float64 {
	return m.Z + m.Y*(1-m.X)
}

// TDF is a temporal degradation function (§3.2): it maps a confidence
// and the age of the reading to the degraded confidence. A TDF must be
// monotonically non-increasing in age and must return a value in
// [0, conf].
type TDF interface {
	// Degrade returns the confidence after the reading has aged by the
	// given duration.
	Degrade(conf float64, age time.Duration) float64
	// Describe returns a short human-readable description.
	Describe() string
}

// ConstantTDF never degrades confidence. Card readers inside their TTL
// behave this way: the reading is either fresh or expired.
type ConstantTDF struct{}

// Degrade implements TDF.
func (ConstantTDF) Degrade(conf float64, _ time.Duration) float64 { return clamp01(conf) }

// Describe implements TDF.
func (ConstantTDF) Describe() string { return "constant" }

// LinearTDF degrades confidence linearly to zero over Span.
type LinearTDF struct {
	// Span is the age at which confidence reaches zero.
	Span time.Duration
}

// Degrade implements TDF.
func (f LinearTDF) Degrade(conf float64, age time.Duration) float64 {
	if f.Span <= 0 || age >= f.Span {
		return 0
	}
	if age <= 0 {
		return clamp01(conf)
	}
	frac := 1 - float64(age)/float64(f.Span)
	return clamp01(conf) * frac
}

// Describe implements TDF.
func (f LinearTDF) Describe() string { return fmt.Sprintf("linear(%s)", f.Span) }

// ExponentialTDF degrades confidence with half-life HalfLife.
type ExponentialTDF struct {
	HalfLife time.Duration
}

// Degrade implements TDF.
func (f ExponentialTDF) Degrade(conf float64, age time.Duration) float64 {
	if age <= 0 {
		return clamp01(conf)
	}
	if f.HalfLife <= 0 {
		return 0
	}
	halves := float64(age) / float64(f.HalfLife)
	return clamp01(conf) * pow2neg(halves)
}

// Describe implements TDF.
func (f ExponentialTDF) Describe() string { return fmt.Sprintf("exp(halflife=%s)", f.HalfLife) }

// StepTDF degrades confidence in discrete steps: after Steps[i].Age the
// confidence is multiplied by Steps[i].Factor. Steps must be sorted by
// increasing age; the factors of all passed steps compound.
type StepTDF struct {
	Steps []Step
}

// Step is one discrete degradation step.
type Step struct {
	Age    time.Duration
	Factor float64
}

// Degrade implements TDF.
func (f StepTDF) Degrade(conf float64, age time.Duration) float64 {
	out := clamp01(conf)
	for _, s := range f.Steps {
		if age >= s.Age {
			out *= clamp01(s.Factor)
		}
	}
	return out
}

// Describe implements TDF.
func (f StepTDF) Describe() string { return fmt.Sprintf("step(%d steps)", len(f.Steps)) }

// SensorSpec is the calibration record for one sensor technology: its
// error model, resolution, freshness horizon, and temporal degradation
// (the per-sensor table of §5.2 plus §4.1.1's probabilities).
type SensorSpec struct {
	// Type names the technology, e.g. "ubisense", "rfid", "biometric",
	// "gps", "cardreader".
	Type string
	// Errors is the x/y/z error model.
	Errors ErrorModel
	// Resolution is the default resolution of this technology.
	Resolution Resolution
	// TTL is the time-to-live after which a reading is discarded
	// entirely (§5.2).
	TTL time.Duration
	// Degrade is the technology's tdf; nil means ConstantTDF.
	Degrade TDF
}

// ErrBadSpec reports an invalid sensor specification.
var ErrBadSpec = errors.New("model: bad sensor spec")

// Validate checks spec consistency.
func (s SensorSpec) Validate() error {
	if s.Type == "" {
		return fmt.Errorf("%w: empty type", ErrBadSpec)
	}
	if err := s.Errors.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if s.TTL <= 0 {
		return fmt.Errorf("%w: TTL must be positive", ErrBadSpec)
	}
	switch s.Resolution.Kind {
	case ResolutionDistance:
		if s.Resolution.Radius < 0 {
			return fmt.Errorf("%w: negative resolution radius", ErrBadSpec)
		}
	case ResolutionSymbolic:
		if s.Resolution.Region.IsZero() {
			return fmt.Errorf("%w: symbolic resolution without region", ErrBadSpec)
		}
	default:
		return fmt.Errorf("%w: unknown resolution kind %v", ErrBadSpec, s.Resolution.Kind)
	}
	return nil
}

// TDFOrDefault returns the spec's tdf, defaulting to ConstantTDF.
func (s SensorSpec) TDFOrDefault() TDF {
	if s.Degrade == nil {
		return ConstantTDF{}
	}
	return s.Degrade
}

// Reading is one sensor observation in the common representation of
// Table 2: sensor identity, the mobile object observed, where, with
// what region geometry, and when. Adapters construct Readings; the
// spatial database stores them; the fusion engine consumes them.
type Reading struct {
	// SensorID identifies the concrete sensor instance (e.g. "RF-12").
	SensorID string
	// SensorType names the technology; it keys into the sensor spec
	// table.
	SensorType string
	// MObjectID identifies the mobile object (person or device).
	MObjectID string
	// Location is the GLOB of the observation: a coordinate point with
	// DetectionRadius, or a symbolic region.
	Location glob.GLOB
	// DetectionRadius is the error radius around a coordinate fix, in
	// the units of Location's frame; zero for symbolic locations.
	DetectionRadius float64
	// Region is the observation resolved to an MBR in the universe
	// (building) frame. Adapters or the database fill this in from
	// Location.
	Region geom.Rect
	// Time is when the sensor made the observation.
	Time time.Time
	// Moving records whether this reading's region has been observed to
	// move over recent updates; the conflict-resolution rules of §4.1.2
	// prefer moving readings.
	Moving bool
	// Trace is the obs trace ID stamped at ingest (empty when tracing is
	// disabled). It rides with the reading through the pipeline so the
	// notification it provokes can be attributed back to it.
	Trace string
}

// Age returns how old the reading is at time now.
func (r Reading) Age(now time.Time) time.Duration { return now.Sub(r.Time) }

// Expired reports whether the reading has outlived ttl at time now.
func (r Reading) Expired(now time.Time, ttl time.Duration) bool {
	return r.Age(now) > ttl
}

// EffectiveDetectProb returns the reading's p_i after temporal
// degradation: spec.Errors.DetectProb() degraded by the spec's tdf at
// the reading's age ("all p_i's are net probabilities obtained after
// applying the temporal degradation function", §4.1.2).
func (r Reading) EffectiveDetectProb(spec SensorSpec, now time.Time) float64 {
	return spec.TDFOrDefault().Degrade(spec.Errors.DetectProb(), r.Age(now))
}

// clamp01 clamps v to [0, 1].
func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// pow2neg returns 2^(-h).
func pow2neg(h float64) float64 { return math.Exp2(-h) }
