// Package faultnet is MiddleWhere's network fault-injection harness: a
// programmable TCP proxy and net.Conn wrapper that inject the failures
// a distributed deployment actually sees — dropped messages, latency,
// partitions, connection resets, and mid-frame truncation — on demand
// and deterministically (every probabilistic decision draws from a
// seeded stream), so chaos tests are reproducible bit-for-bit.
//
// The proxy understands mwrpc's length-prefixed framing: with
// FrameDropRate set it parses each 4-byte big-endian length + body
// frame and decides per frame whether to forward it. Because TCP
// cannot lose bytes silently — a byte stream either delivers in order
// or the connection dies — dropping a frame also severs the carrying
// connection, exactly as a link flap would surface to the endpoints.
// Raw (non-framed) traffic can instead be delayed, truncated after a
// byte budget, blackholed (partition), or reset.
//
// Typical use from a test:
//
//	proxy, _ := faultnet.NewProxy(serverAddr, faultnet.Config{Seed: 1, FrameDropRate: 0.1})
//	defer proxy.Close()
//	client, _ := remote.DialLocation(proxy.Addr()) // sees a flaky network
//	proxy.KillConnections()                        // forced mid-session disconnect
//	proxy.Partition()                              // blackhole: conns stall, dials hang
//	proxy.Heal()
package faultnet

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config programs the injected faults. The zero value forwards
// everything untouched (a transparent proxy).
type Config struct {
	// Seed fixes the random stream; chaos runs with the same seed and
	// traffic make the same drop decisions.
	Seed int64
	// FrameDropRate is the probability each parsed frame is dropped.
	// Dropping a frame severs the carrying connection (TCP delivers in
	// order or dies; it never loses bytes silently). Non-zero rates
	// switch the proxy into frame-aware forwarding, which assumes
	// mwrpc's 4-byte big-endian length prefix.
	FrameDropRate float64
	// Delay adds fixed latency before each forwarded frame or chunk.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) on top of Delay.
	Jitter time.Duration
	// TruncateAfter, when positive, cuts each connection after that
	// many bytes have been forwarded in one direction — mid-frame if
	// the budget lands there.
	TruncateAfter int64
	// MaxFrame bounds a parsed frame in frame-aware mode; larger
	// frames sever the connection. Zero means 1 MiB (mwrpc's cap).
	MaxFrame int
}

func (c Config) maxFrame() int {
	if c.MaxFrame <= 0 {
		return 1 << 20
	}
	return c.MaxFrame
}

// Stats counts what the proxy did; chaos tests assert against it.
type Stats struct {
	// Accepted is the number of client connections accepted.
	Accepted int
	// ForwardedFrames counts frames relayed in frame-aware mode.
	ForwardedFrames int
	// DroppedFrames counts frames discarded (each also severed its
	// connection).
	DroppedFrames int
	// Killed counts connections severed by faults or KillConnections.
	Killed int
	// RefusedDials counts dials refused while partitioned.
	RefusedDials int
}

// Proxy is a fault-injecting TCP relay in front of one target address.
type Proxy struct {
	target string
	cfg    Config
	ln     net.Listener

	mu          sync.Mutex
	rng         *rand.Rand
	conns       map[*link]struct{}
	partitioned bool
	stats       Stats
	closed      bool
	wg          sync.WaitGroup
}

// link is one client<->target connection pair.
type link struct {
	client, target net.Conn
	once           sync.Once
}

func (l *link) sever() {
	l.once.Do(func() {
		l.client.Close()
		l.target.Close()
	})
}

// NewProxy starts a proxy on a fresh loopback port in front of target.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		cfg:    cfg,
		ln:     ln,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		conns:  make(map[*link]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; point clients here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Partition blackholes the proxy: existing connections are severed and
// new dials are accepted but never forwarded (the peer sees silence,
// not a refusal — the harsher failure mode for timeout testing).
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
	p.KillConnections()
}

// Heal ends a partition; subsequent dials flow normally.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// KillConnections severs every live connection pair — a forced
// mid-session disconnect. The listener keeps accepting, so clients can
// reconnect immediately.
func (p *Proxy) KillConnections() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.conns))
	for l := range p.conns {
		links = append(links, l)
	}
	p.stats.Killed += len(links)
	p.mu.Unlock()
	for _, l := range links {
		l.sever()
	}
}

// Close shuts the proxy down and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillConnections()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		p.stats.Accepted++
		partitioned := p.partitioned
		p.mu.Unlock()
		if partitioned {
			// Blackhole: hold the connection open, forward nothing.
			// It is severed by Heal-then-Kill or Close.
			p.mu.Lock()
			p.stats.RefusedDials++
			p.mu.Unlock()
			p.holdBlackholed(client)
			continue
		}
		target, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		l := &link{client: client, target: target}
		p.mu.Lock()
		p.conns[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(l, client, target)
		go p.pipe(l, target, client)
	}
}

// holdBlackholed parks a partitioned connection until Close severs it.
func (p *Proxy) holdBlackholed(conn net.Conn) {
	l := &link{client: conn, target: nopConn{}}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conns[l] = struct{}{}
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		// Drain and discard so the peer's writes don't block forever at
		// the kernel buffer — bytes vanish, as in a true blackhole.
		io.Copy(io.Discard, conn)
		l.sever()
		p.mu.Lock()
		delete(p.conns, l)
		p.mu.Unlock()
	}()
}

// nopConn stands in for the missing target side of a blackholed link.
type nopConn struct{}

func (nopConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(b []byte) (int, error)      { return len(b), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (nopConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// pipe relays one direction of a link, applying the configured faults,
// and severs the whole link when its side ends.
func (p *Proxy) pipe(l *link, src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		l.sever()
		p.mu.Lock()
		delete(p.conns, l)
		p.mu.Unlock()
	}()
	if p.cfg.FrameDropRate > 0 {
		p.pipeFrames(l, src, dst)
		return
	}
	p.pipeRaw(src, dst)
}

// sleepFault applies the configured latency for one forwarded unit.
func (p *Proxy) sleepFault() {
	d := p.cfg.Delay
	if p.cfg.Jitter > 0 {
		p.mu.Lock()
		d += time.Duration(p.rng.Int63n(int64(p.cfg.Jitter)))
		p.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// dropFrame draws one seeded decision.
func (p *Proxy) dropFrame() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64() < p.cfg.FrameDropRate
}

// binMagic marks an mwrpc binary frame (24-byte fixed header with the
// payload length at bytes 4..8); anything else is the JSON codec's
// 4-byte length prefix. The proxy understands both so frame faults can
// be injected whichever codec the peers negotiated.
const binMagic = 0xB1

// pipeFrames relays whole frames; a dropped frame severs the link.
func (p *Proxy) pipeFrames(l *link, src, dst net.Conn) {
	var budget int64 = -1
	if p.cfg.TruncateAfter > 0 {
		budget = p.cfg.TruncateAfter
	}
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		var n uint32
		if hdr[0] == binMagic {
			// Binary frame: finish the 24-byte header; payload length
			// lives at header bytes 4..8.
			rest := make([]byte, 20)
			if _, err := io.ReadFull(src, rest); err != nil {
				return
			}
			n = binary.BigEndian.Uint32(rest[:4])
			if int(n) > p.cfg.maxFrame() {
				p.countKill()
				return
			}
			frame := make([]byte, 0, 24+int(n))
			frame = append(frame, hdr[:]...)
			frame = append(frame, rest...)
			body := make([]byte, n)
			if _, err := io.ReadFull(src, body); err != nil {
				return
			}
			frame = append(frame, body...)
			if p.forwardFrame(frame, dst, &budget) {
				continue
			}
			return
		}
		n = binary.BigEndian.Uint32(hdr[:])
		if int(n) > p.cfg.maxFrame() {
			p.countKill()
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(src, body); err != nil {
			return
		}
		out := append(hdr[:], body...)
		if !p.forwardFrame(out, dst, &budget) {
			return
		}
	}
}

// forwardFrame applies the drop/delay/truncate faults to one complete
// frame and forwards it. It reports whether the link should live on.
func (p *Proxy) forwardFrame(out []byte, dst net.Conn, budget *int64) bool {
	if p.dropFrame() {
		p.mu.Lock()
		p.stats.DroppedFrames++
		p.stats.Killed++
		p.mu.Unlock()
		return false // caller's defer severs the link: the lost frame becomes a link flap
	}
	p.sleepFault()
	if *budget >= 0 && int64(len(out)) > *budget {
		dst.Write(out[:*budget])
		p.countKill()
		return false
	}
	if *budget >= 0 {
		*budget -= int64(len(out))
	}
	if _, err := dst.Write(out); err != nil {
		return false
	}
	p.mu.Lock()
	p.stats.ForwardedFrames++
	p.mu.Unlock()
	return true
}

// pipeRaw relays an opaque byte stream in chunks.
func (p *Proxy) pipeRaw(src, dst net.Conn) {
	var sent int64
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.sleepFault()
			chunk := buf[:n]
			if p.cfg.TruncateAfter > 0 && sent+int64(n) > p.cfg.TruncateAfter {
				chunk = chunk[:p.cfg.TruncateAfter-sent]
				dst.Write(chunk)
				p.countKill()
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			sent += int64(n)
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) countKill() {
	p.mu.Lock()
	p.stats.Killed++
	p.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Conn wrapper

// ErrInjected is returned by a wrapped connection when a configured
// fault fires on Read or Write.
var ErrInjected = errors.New("faultnet: injected fault")

// ConnConfig programs a wrapped net.Conn.
type ConnConfig struct {
	// Seed fixes the random stream.
	Seed int64
	// ReadErrRate / WriteErrRate are per-call probabilities of failing
	// with ErrInjected (and closing the underlying conn, as a real
	// transport error would leave it unusable).
	ReadErrRate, WriteErrRate float64
	// Delay stalls each Read and Write.
	Delay time.Duration
	// FailAfterBytes, when positive, fails every operation once that
	// many bytes have moved in either direction.
	FailAfterBytes int64
}

// Conn wraps a net.Conn with injected faults; it is usable anywhere a
// net.Conn is — handed to an mwrpc client, a test server, or any other
// component — without standing up a proxy.
type Conn struct {
	net.Conn

	mu    sync.Mutex
	cfg   ConnConfig
	rng   *rand.Rand
	moved int64
}

// Wrap decorates conn with the configured faults.
func Wrap(conn net.Conn, cfg ConnConfig) *Conn {
	return &Conn{Conn: conn, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// fault decides whether this operation fails, charging n bytes.
func (c *Conn) fault(rate float64, n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.moved += int64(n)
	if c.cfg.FailAfterBytes > 0 && c.moved > c.cfg.FailAfterBytes {
		return true
	}
	return rate > 0 && c.rng.Float64() < rate
}

// Read applies read-side faults.
func (c *Conn) Read(b []byte) (int, error) {
	if c.cfg.Delay > 0 {
		time.Sleep(c.cfg.Delay)
	}
	if c.fault(c.cfg.ReadErrRate, 0) {
		c.Conn.Close()
		return 0, ErrInjected
	}
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	c.moved += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write applies write-side faults.
func (c *Conn) Write(b []byte) (int, error) {
	if c.cfg.Delay > 0 {
		time.Sleep(c.cfg.Delay)
	}
	if c.fault(c.cfg.WriteErrRate, len(b)) {
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(b)
}
