package faultnet

import (
	"fmt"
	"sync"
)

// Multi-daemon chaos: a Cluster manages a set of named, restartable
// nodes — each one a daemon under test — so chaos suites can kill a
// node mid-operation and bring it back, repeatedly, from one place.
// The harness is deliberately ignorant of what a node is: a NodeSpec's
// Start hook builds the daemon and returns its address and a stop
// function. State that must survive a restart (a daemon's database)
// lives in the closure; state that must not (listeners, sessions,
// leases) is created fresh by each Start call. A restarted node may
// come back on a different address, exactly like a real daemon whose
// host reassigned the port.

// NodeSpec describes one restartable node.
type NodeSpec struct {
	// Name identifies the node in the cluster (unique).
	Name string
	// Start builds and starts the node, returning its listen address
	// and a stop function. Called once per Start/Restart; it must bind
	// a fresh listener each time.
	Start func() (addr string, stop func(), err error)
}

type clusterNode struct {
	spec     NodeSpec
	addr     string
	stop     func()
	running  bool
	restarts int
}

// Cluster is a set of restartable nodes. All methods are safe for
// concurrent use; Kill and Restart may race with traffic by design —
// that is the point of the harness.
type Cluster struct {
	mu    sync.Mutex
	nodes map[string]*clusterNode
	order []string
}

// NewCluster builds an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{nodes: make(map[string]*clusterNode)}
}

// Add registers a node without starting it.
func (c *Cluster) Add(spec NodeSpec) error {
	if spec.Name == "" || spec.Start == nil {
		return fmt.Errorf("faultnet: node needs a name and a start hook")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[spec.Name]; ok {
		return fmt.Errorf("faultnet: duplicate node %q", spec.Name)
	}
	c.nodes[spec.Name] = &clusterNode{spec: spec}
	c.order = append(c.order, spec.Name)
	return nil
}

// Start launches a stopped node. Starting a running node is an error
// (kill it first); starting after a kill is the restart path.
func (c *Cluster) Start(name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("faultnet: unknown node %q", name)
	}
	if n.running {
		c.mu.Unlock()
		return fmt.Errorf("faultnet: node %q already running", name)
	}
	wasStarted := n.addr != ""
	c.mu.Unlock()

	// Run the hook outside the lock: node startup may itself query the
	// cluster (e.g. for a registry address).
	addr, stop, err := n.spec.Start()
	if err != nil {
		return fmt.Errorf("faultnet: start %q: %w", name, err)
	}
	c.mu.Lock()
	n.addr = addr
	n.stop = stop
	n.running = true
	if wasStarted {
		n.restarts++
	}
	c.mu.Unlock()
	return nil
}

// StartAll starts every stopped node in Add order.
func (c *Cluster) StartAll() error {
	c.mu.Lock()
	names := append([]string(nil), c.order...)
	c.mu.Unlock()
	for _, name := range names {
		if c.Running(name) {
			continue
		}
		if err := c.Start(name); err != nil {
			return err
		}
	}
	return nil
}

// Kill stops a node abruptly (no-op when already down). The node's
// listener and sessions die; whatever its Start closure preserves
// survives for the next Start.
func (c *Cluster) Kill(name string) {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok || !n.running {
		c.mu.Unlock()
		return
	}
	stop := n.stop
	n.running = false
	n.stop = nil
	c.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Restart is Kill followed by Start — the crash/recover cycle chaos
// tests inject.
func (c *Cluster) Restart(name string) error {
	c.Kill(name)
	return c.Start(name)
}

// Addr returns the node's current listen address ("" while down).
func (c *Cluster) Addr(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[name]; ok && n.running {
		return n.addr
	}
	return ""
}

// Running reports whether the node is up.
func (c *Cluster) Running(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	return ok && n.running
}

// Restarts counts how many times the node came back after a kill.
func (c *Cluster) Restarts(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[name]; ok {
		return n.restarts
	}
	return 0
}

// Names lists the nodes in Add order.
func (c *Cluster) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// StopAll kills every running node in reverse Add order.
func (c *Cluster) StopAll() {
	c.mu.Lock()
	names := append([]string(nil), c.order...)
	c.mu.Unlock()
	for i := len(names) - 1; i >= 0; i-- {
		c.Kill(names[i])
	}
}
