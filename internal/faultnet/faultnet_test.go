package faultnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back verbatim until
// the peer closes. Returns its address.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// frame encodes one length-prefixed message.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

func TestTransparentRelay(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q", got)
	}
	if s := p.Stats(); s.Accepted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestFrameDropsAreDeterministic runs the same traffic through two
// proxies with the same seed and drop rate: the connection survives
// the same number of frames in both runs.
func TestFrameDropsAreDeterministic(t *testing.T) {
	survived := func(seed int64) int {
		p, err := NewProxy(echoServer(t), Config{Seed: seed, FrameDropRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		n := 0
		for i := 0; i < 50; i++ {
			if _, err := conn.Write(frame([]byte("ping"))); err != nil {
				break
			}
			got := make([]byte, 8)
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := io.ReadFull(conn, got); err != nil {
				break
			}
			n++
		}
		return n
	}
	a, b := survived(7), survived(7)
	if a != b {
		t.Errorf("same seed diverged: %d vs %d frames", a, b)
	}
	if a >= 50 {
		t.Errorf("drop rate 0.3 never dropped in %d frames", a)
	}
}

// TestFrameDropSeversConnection: after a drop the client observes a
// dead connection, not a silent gap in the stream.
func TestFrameDropSeversConnection(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{Seed: 1, FrameDropRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(frame([]byte("doomed")))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection survived a dropped frame")
	}
	if s := p.Stats(); s.DroppedFrames != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDelayInjection(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{Delay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	conn.Write([]byte("x"))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("round trip %v, expected >= one-way delay", d)
	}
}

func TestTruncateAfterCutsMidStream(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{TruncateAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(bytes.Repeat([]byte("a"), 64))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(conn)
	if len(got) > 10 {
		t.Errorf("read %d bytes past the truncation budget", len(got))
	}
}

func TestPartitionAndHeal(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A healthy connection first.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	p.Partition()
	// The existing connection was severed.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("partition left the old connection alive")
	}
	conn.Close()

	// A new dial connects (TCP accept) but is blackholed: nothing comes
	// back.
	dark, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	dark.Write([]byte("anyone?"))
	dark.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := dark.Read(make([]byte, 1)); err == nil {
		t.Error("blackholed connection produced data")
	}
	dark.Close()

	p.Heal()
	good, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	good.Write([]byte("back"))
	good.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(good, buf); err != nil {
		t.Fatalf("healed proxy not forwarding: %v", err)
	}
}

func TestKillConnections(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Prove liveness, then kill.
	conn.Write([]byte("x"))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	p.KillConnections()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection survived KillConnections")
	}
	// Reconnects work immediately.
	again, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	again.Write([]byte("y"))
	again.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(again, make([]byte, 1)); err != nil {
		t.Fatalf("reconnect after kill: %v", err)
	}
}

func TestConnWrapperInjectsErrors(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	wrapped := Wrap(client, ConnConfig{Seed: 3, WriteErrRate: 1.0})
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v", err)
	}
	// The underlying conn was closed, as a real transport fault leaves it.
	if _, err := client.Write([]byte("y")); err == nil {
		t.Error("underlying conn still writable after injected fault")
	}
}

func TestConnWrapperFailAfterBytes(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)
	wrapped := Wrap(client, ConnConfig{FailAfterBytes: 8})
	if _, err := wrapped.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write([]byte("5678")); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write([]byte("9")); !errors.Is(err, ErrInjected) {
		t.Errorf("err after budget = %v", err)
	}
}
