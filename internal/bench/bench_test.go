package bench

import (
	"testing"
	"time"
)

func TestTriggerResponseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("network benchmark")
	}
	series, err := TriggerResponse([]int{1, 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.UpdateLatencies) != 5 {
			t.Errorf("triggers=%d: %d latencies", s.Triggers, len(s.UpdateLatencies))
		}
		for i, l := range s.UpdateLatencies {
			if l <= 0 {
				t.Errorf("triggers=%d update %d: latency %v", s.Triggers, i, l)
			}
		}
	}
	// The headline claim: 20x more triggers does not blow up the
	// steady-state latency. Allow generous slack for scheduler noise
	// on loopback.
	rest1 := Mean(series[0].UpdateLatencies[1:])
	rest20 := Mean(series[1].UpdateLatencies[1:])
	if rest20 > rest1*20 {
		t.Errorf("latency scaled with triggers: %v -> %v us", rest1, rest20)
	}
}

func TestFusionAccuracyOrdering(t *testing.T) {
	rows, err := FusionAccuracy(3, 150)
	if err != nil {
		t.Fatal(err)
	}
	byMix := make(map[string]E1Row, len(rows))
	for _, r := range rows {
		byMix[r.Mix] = r
		if r.Samples == 0 {
			t.Errorf("%s: no samples", r.Mix)
		}
		if r.Coverage < 0 || r.Coverage > 1 || r.RoomAccuracy < 0 || r.RoomAccuracy > 1 {
			t.Errorf("%s: out-of-range stats %+v", r.Mix, r)
		}
	}
	// Fusing everything must beat the coarse technologies on room
	// accuracy and must have the best coverage.
	all := byMix["all"]
	if all.RoomAccuracy <= byMix["rfid-only"].RoomAccuracy {
		t.Errorf("all (%v) should beat rfid-only (%v) on room accuracy",
			all.RoomAccuracy, byMix["rfid-only"].RoomAccuracy)
	}
	for mix, r := range byMix {
		if all.Coverage < r.Coverage-1e-9 {
			t.Errorf("all coverage %v below %s coverage %v", all.Coverage, mix, r.Coverage)
		}
	}
	// Precise technology alone: small error.
	if byMix["ubisense-only"].MeanErr > 3 {
		t.Errorf("ubisense-only mean err = %v", byMix["ubisense-only"].MeanErr)
	}
	// The fusion ablation: Bayesian fusion beats latest-reading-wins
	// on room accuracy with the same sensors.
	if all.RoomAccuracy <= byMix["all-naive"].RoomAccuracy {
		t.Errorf("fusion (%v) should beat naive baseline (%v)",
			all.RoomAccuracy, byMix["all-naive"].RoomAccuracy)
	}
}

func TestTemporalDegradationMonotone(t *testing.T) {
	ages := []time.Duration{0, time.Second, 4 * time.Second, 16 * time.Second}
	rows, err := TemporalDegradation(ages)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ages) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Prob > rows[i-1].Prob+1e-9 {
			t.Errorf("probability increased with age: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	if rows[0].Prob < 0.5 {
		t.Errorf("fresh reading prob = %v", rows[0].Prob)
	}
	if rows[len(rows)-1].Prob > rows[0].Prob/2 {
		t.Errorf("old reading did not decay: %+v", rows[len(rows)-1])
	}
}

func TestMBRApproximation(t *testing.T) {
	row := MBRApproximation(10000)
	if row.Points < 9000 {
		t.Fatalf("points = %d", row.Points)
	}
	// The L-shape is missing exactly one quadrant of its MBR: ~25%
	// disagreement on a uniform grid.
	frac := float64(row.Disagreements) / float64(row.Points)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("disagreement fraction = %v, want ~0.25", frac)
	}
}

func TestStatsHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if Percentile(nil, 0.9) != 0 {
		t.Error("percentile of empty should be 0")
	}
	if got := Percentile([]float64{5, 1, 3}, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile([]float64{5, 1, 3}, 1); got != 5 {
		t.Errorf("max = %v", got)
	}
}
