package bench

import (
	"fmt"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/building"
	"middlewhere/internal/calibrate"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/sim"
)

// CALRow reports one recovered parameter from the simulated user study
// (experiment CAL — the paper's §11 future work, implemented).
type CALRow struct {
	Parameter string
	True      float64
	Estimated float64
}

// calibrationSink records which people each Ubisense observation
// reported, per step, so trials can be labelled from ground truth.
type calibrationSink struct {
	detected map[string]bool
}

// Ingest implements adapter.Sink.
func (c *calibrationSink) Ingest(r model.Reading) error {
	c.detected[r.MObjectID] = true
	return nil
}

// CalibrationStudy runs the simulated user study: a Ubisense field
// with known parameters (x, y) observes people whose ground truth the
// simulator knows; the calibrate estimators then recover the
// parameters from the observation log alone — without reading the
// generator's labels for carriage.
func CalibrationStudy(seed int64, steps int) ([]CALRow, error) {
	const (
		trueX = 0.7
		trueY = 0.9
	)
	bld := building.Synthetic("CAL", 2, 3, 25, 20, 10)
	world, err := sim.New(bld, sim.Config{
		People:   48,
		Seed:     seed,
		DwellMin: 4 * time.Second,
		DwellMax: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	sink := &calibrationSink{detected: make(map[string]bool)}
	a, err := adapter.NewUbisense("cal-ubi", glob.MustParse("CAL/F"), trueX, sink, nil, adapter.Options{})
	if err != nil {
		return nil, err
	}
	// Coverage over the left half of the floor only, so both present
	// and absent trials occur.
	coverage := geom.R(0, 0, bld.Universe.Width()/2, bld.Universe.Height())
	field := sim.NewUbisenseField(a, coverage, trueX, world.Rand())
	field.Y = trueY

	var trials []calibrate.Trial
	episodes := make(map[string]*calibrate.Episode)
	for i := 0; i < steps; i++ {
		world.Step()
		sink.detected = make(map[string]bool)
		people := world.People()
		if err := field.Observe(world.Now(), people); err != nil {
			return nil, err
		}
		for _, p := range people {
			present := coverage.ContainsPoint(p.Pos)
			trials = append(trials, calibrate.Trial{
				Present:  present,
				Detected: sink.detected[p.ID],
			})
			if present {
				e := episodes[p.ID]
				if e == nil {
					e = &calibrate.Episode{}
					episodes[p.ID] = e
				}
				e.Opportunities++
				if sink.detected[p.ID] {
					e.Detections++
				}
			}
		}
	}

	yz, err := calibrate.EstimateYZ(trials)
	if err != nil {
		return nil, fmt.Errorf("bench CAL: %w", err)
	}
	eps := make([]calibrate.Episode, 0, len(episodes))
	for _, e := range episodes {
		eps = append(eps, *e)
	}
	// yz.Y estimates P(detect | present), which mixes carriers and
	// non-carriers: it equals x·y. Alternate between the EM carry
	// estimate (which needs the per-carrier rate) and dividing the
	// mixture rate by it, until the pair stabilizes.
	x := 0.5
	yGivenCarry := yz.Y
	for i := 0; i < 8; i++ {
		var err error
		x, _, err = calibrate.EstimateCarryEM(eps, yGivenCarry, yz.Z)
		if err != nil {
			return nil, fmt.Errorf("bench CAL: %w", err)
		}
		next := yz.Y / x
		if next > 0.999 {
			next = 0.999
		}
		yGivenCarry = next
	}
	return []CALRow{
		{Parameter: "x (carry probability)", True: trueX, Estimated: x},
		{Parameter: "y (detection | carrying)", True: trueY, Estimated: yGivenCarry},
	}, nil
}
