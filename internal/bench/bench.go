// Package bench is the experiment harness that regenerates every table
// and figure in the paper's evaluation (§9) plus the extension and
// ablation experiments catalogued in DESIGN.md §5 / EXPERIMENTS.md:
//
//	F9  — Figure 9: trigger response time per update, one series per
//	      number of programmed triggers, over the full network stack.
//	T1  — Table 1: the spatial object table for the paper floor.
//	T2  — Table 2: sensor reading rows + the §5.2 sensor table.
//	E1  — fusion accuracy vs single technologies (needs ground truth).
//	E4  — MBR approximation vs exact polygon reasoning.
//	E5  — temporal degradation of confidence and accuracy.
//
// Each experiment returns plain result rows; cmd/experiments formats
// them, and bench_test.go wraps the hot paths in testing.B benchmarks.
package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/remote"
	"middlewhere/internal/sim"
	"middlewhere/internal/spatialdb"
)

// ---------------------------------------------------------------------------
// F9 — Figure 9: trigger response time

// F9Series is one curve of Figure 9: the latency of each of the
// consecutive location updates with a fixed number of programmed
// triggers.
type F9Series struct {
	// Triggers is the number of programmed triggers.
	Triggers int
	// UpdateLatencies[i] is the time from sending update i to
	// receiving its notification, in microseconds.
	UpdateLatencies []float64
}

// TriggerResponse reproduces Figure 9: for each trigger count it
// brings up a fresh Location Service behind the TCP stack, programs
// the triggers, sends `updates` location updates for a tracked person,
// and measures update→notification latency at the subscribing client.
// One designated subscription watches the region the person reports
// into; the remaining triggers are spread over other regions, which is
// what makes the response time (nearly) independent of the trigger
// count.
func TriggerResponse(triggerCounts []int, updates int) ([]F9Series, error) {
	var out []F9Series
	for _, n := range triggerCounts {
		series, err := triggerResponseOnce(n, updates)
		if err != nil {
			return nil, fmt.Errorf("bench F9 (%d triggers): %w", n, err)
		}
		out = append(out, series)
	}
	return out, nil
}

func triggerResponseOnce(triggers, updates int) (F9Series, error) {
	bld := building.PaperFloor()
	svc, err := core.New(bld)
	if err != nil {
		return F9Series{}, err
	}
	defer svc.Close()
	srv := remote.NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return F9Series{}, err
	}
	defer srv.Close()
	client, err := remote.DialLocation(addr)
	if err != nil {
		return F9Series{}, err
	}
	defer client.Close()

	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := client.RegisterSensor("bench-ubi", spec); err != nil {
		return F9Series{}, err
	}

	// The watched subscription: every reading in the NetLab notifies.
	notified := make(chan remote.NotificationDTO, 64)
	_, err = client.Subscribe(remote.SubscribeArgs{
		Region:       "CS/Floor3/NetLab",
		EveryReading: true,
	}, func(n remote.NotificationDTO) { notified <- n })
	if err != nil {
		return F9Series{}, err
	}
	// The remaining programmed triggers watch other regions and other
	// objects; they exist to scale the trigger table.
	filler := []string{"CS/Floor3/3105", "CS/Floor3/HCILab", "CS/Floor3/LabCorridor", "CS/Floor3/MainCorridor"}
	for i := 1; i < triggers; i++ {
		_, err := client.Subscribe(remote.SubscribeArgs{
			Region: filler[i%len(filler)],
			Object: fmt.Sprintf("other-%d", i),
		}, func(remote.NotificationDTO) {})
		if err != nil {
			return F9Series{}, err
		}
	}

	series := F9Series{Triggers: triggers}
	floor := glob.MustParse("CS/Floor3")
	for u := 0; u < updates; u++ {
		pos := geom.Pt(365+float64(u%10), 10+float64(u%5))
		start := time.Now()
		err := client.Ingest(model.Reading{
			SensorID:  "bench-ubi",
			MObjectID: "bench-person",
			Location:  glob.CoordinatePoint(floor, pos),
			Time:      time.Now(),
		})
		if err != nil {
			return F9Series{}, err
		}
		select {
		case <-notified:
			series.UpdateLatencies = append(series.UpdateLatencies,
				float64(time.Since(start))/float64(time.Microsecond))
		case <-time.After(5 * time.Second):
			return F9Series{}, fmt.Errorf("update %d: no notification", u)
		}
	}
	return series, nil
}

// ---------------------------------------------------------------------------
// F9 -breakdown — per-stage latency decomposition

// StageStat summarizes one pipeline stage's latency histogram.
type StageStat struct {
	// Stage is the span name ("ingest", "db_insert", ...).
	Stage string
	// Count is how many spans were observed.
	Count uint64
	// MeanUs, P50Us, P95Us are microsecond latencies.
	MeanUs, P50Us, P95Us float64
}

// F9Breakdown decomposes the F9 update→notification path into its
// pipeline stages, measured from the span traces the obs package
// records while the harness runs.
type F9Breakdown struct {
	// Triggers and Updates echo the harness configuration.
	Triggers, Updates int
	// Stages holds the four server-side stages in pipeline order:
	// ingest (frame decode), db_insert, trigger_eval, notify (queue
	// wait + push).
	Stages []StageStat
	// StageSumUs is the sum of the per-stage means.
	StageSumUs float64
	// PipelineMeanUs is the measured end-to-end pipeline time: for each
	// trace that completed all four stages, the wall time from the
	// earliest span start to the latest span end, averaged. StageSumUs
	// should agree with it closely because the stages are contiguous
	// and sequential.
	PipelineMeanUs float64
	// CompleteTraces is how many traces contributed to PipelineMeanUs.
	CompleteTraces int
	// ClientRTTUs is the mean client-observed mw.ingest round trip
	// (the rpc_ingest span), which additionally pays encode + transport.
	ClientRTTUs float64
	// EndToEndMeanUs is the client-measured update→notification mean —
	// the quantity Figure 9 plots.
	EndToEndMeanUs float64
}

// pipelineStages are the server-side stages of one reading's trip, in
// order. The client-side rpc_ingest span overlaps them and is reported
// separately.
var pipelineStages = []string{"ingest", "db_insert", "trigger_eval", "notify"}

// TriggerResponseBreakdown runs the F9 harness once with span tracing
// enabled and reports where the time goes. It resets the process-global
// registry and tracer so the numbers cover exactly this run.
func TriggerResponseBreakdown(triggers, updates int) (F9Breakdown, error) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(wasEnabled)
	obs.Default().Reset()
	obs.DefaultTracer().Reset()

	series, err := triggerResponseOnce(triggers, updates)
	if err != nil {
		return F9Breakdown{}, fmt.Errorf("bench F9 breakdown: %w", err)
	}
	// The last notify span is recorded just after the push frame is
	// written, racing the client's receipt; let the tail settle.
	time.Sleep(20 * time.Millisecond)

	bd := F9Breakdown{
		Triggers:       triggers,
		Updates:        updates,
		EndToEndMeanUs: mean(series.UpdateLatencies),
	}
	hists := map[string]obs.HistogramSnap{}
	for _, h := range obs.Default().Snapshot().Histograms {
		hists[h.Name] = h
	}
	for _, stage := range pipelineStages {
		st := StageStat{Stage: stage}
		if h, ok := hists["stage_"+stage+"_us"]; ok && h.Count > 0 {
			st.Count = h.Count
			st.MeanUs = h.Sum / float64(h.Count)
			st.P50Us, st.P95Us = h.P50, h.P95
			bd.StageSumUs += st.MeanUs
		}
		bd.Stages = append(bd.Stages, st)
	}
	if h, ok := hists["stage_rpc_ingest_us"]; ok && h.Count > 0 {
		bd.ClientRTTUs = h.Sum / float64(h.Count)
	}

	// Per-trace pipeline wall time over the server-side stages only
	// (rpc_ingest is the client's view of the same interval plus
	// transport, so including it would double-count).
	var walls []float64
	for _, tr := range obs.RecentTraces(updates) {
		var (
			minStart time.Duration = math.MaxInt64
			maxEnd   time.Duration
			seen     int
		)
		for _, sp := range tr.Spans {
			server := false
			for _, s := range pipelineStages {
				if sp.Stage == s {
					server = true
					break
				}
			}
			if !server {
				continue
			}
			seen++
			if sp.Offset < minStart {
				minStart = sp.Offset
			}
			if end := sp.Offset + sp.Dur; end > maxEnd {
				maxEnd = end
			}
		}
		if seen == len(pipelineStages) {
			walls = append(walls, float64(maxEnd-minStart)/float64(time.Microsecond))
		}
	}
	bd.CompleteTraces = len(walls)
	bd.PipelineMeanUs = mean(walls)
	return bd, nil
}

// ---------------------------------------------------------------------------
// E1 — fusion accuracy vs single technologies

// E1Row is one sensor-mix result.
type E1Row struct {
	// Mix names the deployed technologies.
	Mix string
	// MeanErr and P90Err are the localization error statistics, in
	// universe units, against ground truth.
	MeanErr, P90Err float64
	// RoomAccuracy is the fraction of samples whose symbolic room
	// matched ground truth.
	RoomAccuracy float64
	// Coverage is the fraction of query attempts that produced any
	// location at all.
	Coverage float64
	// Samples is the number of located samples.
	Samples int
}

// mixSpec describes which simulated technologies to deploy. naive
// replaces Bayesian fusion with the latest-reading-wins baseline.
type mixSpec struct {
	name                 string
	ubisense, rfid, card bool
	naive                bool
}

// FusionAccuracy runs the E1 experiment: the same simulated world is
// observed through different sensor mixes, and the fused estimate is
// scored against ground truth. It quantifies the fusion claim of
// §4.1.2 (multiple technologies reinforce each other).
func FusionAccuracy(seed int64, steps int) ([]E1Row, error) {
	mixes := []mixSpec{
		{name: "rfid-only", rfid: true},
		{name: "ubisense-only", ubisense: true},
		{name: "rfid+card", rfid: true, card: true},
		{name: "all", ubisense: true, rfid: true, card: true},
		// The no-fusion ablation: same sensors, but each query just
		// takes the newest unexpired reading instead of fusing.
		{name: "all-naive", ubisense: true, rfid: true, card: true, naive: true},
	}
	var out []E1Row
	for _, mix := range mixes {
		row, err := fusionAccuracyOnce(mix, seed, steps)
		if err != nil {
			return nil, fmt.Errorf("bench E1 (%s): %w", mix.name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func fusionAccuracyOnce(mix mixSpec, seed int64, steps int) (E1Row, error) {
	bld := building.Synthetic("E1", 3, 5, 24, 18, 9)
	world, err := sim.New(bld, sim.Config{
		People:   8,
		Seed:     seed,
		DwellMin: 4 * time.Second,
		DwellMax: 12 * time.Second,
	})
	if err != nil {
		return E1Row{}, err
	}
	svc, err := core.New(bld, core.WithClock(world.Now))
	if err != nil {
		return E1Row{}, err
	}
	defer svc.Close()

	frame := glob.MustParse("E1/F")
	var observers []sim.Observer
	if mix.ubisense {
		a, err := adapter.NewUbisense("e1-ubi", frame, 0.9, svc, svc, adapter.Options{})
		if err != nil {
			return E1Row{}, err
		}
		observers = append(observers, sim.NewUbisenseField(a, bld.Universe, 0.9, world.Rand()))
	}
	if mix.rfid {
		// Four stations covering the corridors.
		for i, pos := range []geom.Point{{X: 20, Y: 4}, {X: 70, Y: 4}, {X: 40, Y: 31}, {X: 90, Y: 58}} {
			a, err := adapter.NewRFID(fmt.Sprintf("e1-rf-%d", i), frame, pos, 20, 0.85, svc, svc, adapter.Options{})
			if err != nil {
				return E1Row{}, err
			}
			observers = append(observers, sim.NewRFIDStation(a, pos, 20, 0.85, world.Rand()))
		}
	}
	if mix.card {
		for _, room := range []string{"E1/F/r0c0", "E1/F/r1c2", "E1/F/r2c4"} {
			a, err := adapter.NewCardReader("e1-card-"+room[len(room)-4:], glob.MustParse(room), svc, svc, adapter.Options{})
			if err != nil {
				return E1Row{}, err
			}
			observers = append(observers, &sim.CardReaderDoor{Adapter: a, Room: room})
		}
	}

	var (
		errs     []float64
		roomHits int
		attempts int
		located  int
	)
	for i := 0; i < steps; i++ {
		world.Step()
		snapshot := world.People()
		for _, o := range observers {
			if err := o.Observe(world.Now(), snapshot); err != nil {
				return E1Row{}, err
			}
		}
		if i%5 != 0 {
			continue
		}
		for _, p := range snapshot {
			attempts++
			var est geom.Rect
			var sym string
			if mix.naive {
				rect, room, ok := naiveLatest(svc, p.ID, world.Now())
				if !ok {
					continue
				}
				est, sym = rect, room
			} else {
				loc, err := svc.LocateObject(p.ID)
				if err != nil {
					continue
				}
				est, sym = loc.Rect, loc.Symbolic.String()
			}
			located++
			errs = append(errs, est.Center().Dist(p.Pos))
			if sym == p.Room {
				roomHits++
			}
		}
	}
	row := E1Row{Mix: mix.name, Samples: located}
	if attempts > 0 {
		row.Coverage = float64(located) / float64(attempts)
	}
	if located > 0 {
		row.MeanErr = mean(errs)
		row.P90Err = percentile(errs, 0.9)
		row.RoomAccuracy = float64(roomHits) / float64(located)
	}
	return row, nil
}

// ---------------------------------------------------------------------------
// E5 — temporal degradation

// E5Row is the degraded confidence and inferred probability at one
// reading age.
type E5Row struct {
	AgeSeconds float64
	// Prob is the fused P(person in reported region) at that age.
	Prob float64
	// Band is its §4.4 classification.
	Band string
}

// TemporalDegradation ages a single Ubisense reading and reports how
// the inferred probability decays under the technology's tdf (§3.2).
func TemporalDegradation(ages []time.Duration) ([]E5Row, error) {
	bld := building.PaperFloor()
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	current := now
	svc, err := core.New(bld, core.WithClock(func() time.Time { return current }))
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Hour // keep the reading alive for the whole sweep
	if err := svc.RegisterSensor("e5-ubi", spec); err != nil {
		return nil, err
	}
	if err := svc.Ingest(model.Reading{
		SensorID:  "e5-ubi",
		MObjectID: "p",
		Location:  glob.MustParse("CS/Floor3/(370,15)"),
		Time:      now,
	}); err != nil {
		return nil, err
	}
	var out []E5Row
	for _, age := range ages {
		current = now.Add(age)
		p, band, err := svc.ProbInRegion("p", glob.MustParse("CS/Floor3/NetLab"))
		if err != nil {
			return nil, err
		}
		out = append(out, E5Row{AgeSeconds: age.Seconds(), Prob: p, Band: band.String()})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E4 — MBR approximation vs exact polygons

// E4Row compares containment verdicts for an L-shaped room.
type E4Row struct {
	// Points is the number of probe points tested.
	Points int
	// Disagreements is how many probes the MBR approximation
	// misclassifies relative to the exact polygon.
	Disagreements int
	// MBRNanos and PolyNanos are the mean per-probe costs.
	MBRNanos, PolyNanos float64
}

// MBRApproximation quantifies the paper's §4.1.2 trade-off: MBR
// containment is cheap but over-approximates non-convex rooms.
func MBRApproximation(points int) E4Row {
	// The L-shaped room from the geometry tests, scaled up.
	room := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(40, 20),
		geom.Pt(20, 20), geom.Pt(20, 40), geom.Pt(0, 40),
	}
	mbr := room.Bounds()
	row := E4Row{Points: points}

	// Deterministic probe grid over the MBR.
	side := int(math.Sqrt(float64(points)))
	if side < 2 {
		side = 2
	}
	probes := make([]geom.Point, 0, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			probes = append(probes, geom.Pt(
				mbr.Min.X+(float64(i)+0.5)*mbr.Width()/float64(side),
				mbr.Min.Y+(float64(j)+0.5)*mbr.Height()/float64(side),
			))
		}
	}
	row.Points = len(probes)

	start := time.Now()
	mbrIn := make([]bool, len(probes))
	for i, p := range probes {
		mbrIn[i] = mbr.ContainsPoint(p)
	}
	row.MBRNanos = float64(time.Since(start).Nanoseconds()) / float64(len(probes))

	start = time.Now()
	polyIn := make([]bool, len(probes))
	for i, p := range probes {
		polyIn[i] = room.ContainsPoint(p)
	}
	row.PolyNanos = float64(time.Since(start).Nanoseconds()) / float64(len(probes))

	for i := range probes {
		if mbrIn[i] != polyIn[i] {
			row.Disagreements++
		}
	}
	return row
}

// ---------------------------------------------------------------------------
// small statistics helpers

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Mean and Percentile are exported for cmd/experiments.
var (
	Mean       = mean
	Percentile = percentile
)

// naiveLatest is the no-fusion baseline: the newest unexpired reading
// wins outright, with no reinforcement, conflict resolution, or
// temporal weighting beyond the TTL cut.
func naiveLatest(svc *core.Service, objectID string, now time.Time) (geom.Rect, string, bool) {
	rows := svc.DB().LatestPerSensor(objectID, now)
	if len(rows) == 0 {
		return geom.Rect{}, "", false
	}
	newest := rows[0]
	for _, r := range rows[1:] {
		if r.Time.After(newest.Time) {
			newest = r
		}
	}
	// Resolve the symbolic room the way the service does: smallest
	// room/corridor containing the estimate centre.
	var sym string
	bestDepth := -1
	for _, o := range svc.DB().IntersectingObjects(newest.Region, spatialdb.ObjectFilter{}) {
		switch o.Type {
		case "Room", "Corridor", "Floor":
		default:
			continue
		}
		if (o.Bounds.ContainsRect(newest.Region) || o.Bounds.ContainsPoint(newest.Region.Center())) &&
			o.GLOB.Depth() > bestDepth {
			sym, bestDepth = o.GLOB.String(), o.GLOB.Depth()
		}
	}
	return newest.Region, sym, true
}
