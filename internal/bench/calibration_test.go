package bench

import "testing"

func TestCalibrationStudyRecovers(t *testing.T) {
	rows, err := CalibrationStudy(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: true=%.3f est=%.3f", r.Parameter, r.True, r.Estimated)
		diff := r.Estimated - r.True
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.12 {
			t.Errorf("%s: estimate %.3f too far from %.3f", r.Parameter, r.Estimated, r.True)
		}
	}
}
