// Package geom provides the planar geometry substrate used throughout
// MiddleWhere: points, minimum bounding rectangles (MBRs), segments,
// polylines and polygons, together with the predicates the spatial
// database and the fusion engine rely on (area, containment,
// intersection, distance).
//
// All coordinates are float64 in an arbitrary planar frame; the coords
// package handles conversion between frames. Geometry in this package is
// two-dimensional: MiddleWhere models each floor as a plane, and the
// (small) vertical extent of readings is carried by the location model,
// not by the geometry substrate.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by the approximate comparisons in this
// package. Coordinates in MiddleWhere are building-scale (feet or
// metres), so a nano-scale epsilon comfortably separates real geometric
// distinctions from floating-point noise.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k about the origin.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q viewed
// as vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, the minimum bounding rectangle
// (MBR) representation the paper uses for all sensor regions and most
// spatial reasoning (§4.1.2, §5.1). Min is the lower-left corner and
// Max the upper-right; a Rect with Min==Max is a degenerate point
// rectangle, which is valid.
type Rect struct {
	Min, Max Point
}

// R builds the rectangle spanning (x0,y0)-(x1,y1), normalizing the
// corner order so callers may pass any two opposite corners.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// RectFromCenter returns the rectangle of half-width rx and half-height
// ry centred on c. It is how circular sensor regions (e.g. a Ubisense
// fix with a 6-inch error radius) are approximated by their MBR.
func RectFromCenter(c Point, rx, ry float64) Rect {
	return R(c.X-rx, c.Y-ry, c.X+rx, c.Y+ry)
}

// Valid reports whether r is a well-formed rectangle (Min <= Max on
// both axes). The zero Rect is valid (a degenerate point at the
// origin).
func (r Rect) Valid() bool { return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y }

// Width returns the X extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Eq reports whether r and s coincide within Eps on every edge.
func (r Rect) Eq(s Rect) bool { return r.Min.Eq(s.Min) && r.Max.Eq(s.Max) }

// ContainsPoint reports whether p lies in r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// ContainsRect reports whether s lies entirely within r (boundary
// inclusive). Every rectangle contains itself.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X-Eps && s.Max.X <= r.Max.X+Eps &&
		s.Min.Y >= r.Min.Y-Eps && s.Max.Y <= r.Max.Y+Eps
}

// Intersects reports whether r and s share any point, including mere
// boundary contact.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X+Eps && s.Min.X <= r.Max.X+Eps &&
		r.Min.Y <= s.Max.Y+Eps && s.Min.Y <= r.Max.Y+Eps
}

// Overlaps reports whether r and s share interior area (boundary
// contact alone does not count).
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X < s.Max.X-Eps && s.Min.X < r.Max.X-Eps &&
		r.Min.Y < s.Max.Y-Eps && s.Min.Y < r.Max.Y-Eps
}

// Intersect returns the intersection rectangle of r and s and whether
// it is non-empty. Boundary-only contact yields a degenerate (zero
// area) rectangle and ok==true.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// IntersectionArea returns the area shared by r and s (zero when
// disjoint). The fusion engine's Eq. 7 uses this as area(int(Ai, R)).
func (r Rect) IntersectionArea(s Rect) float64 {
	w := math.Min(r.Max.X, s.Max.X) - math.Max(r.Min.X, s.Min.X)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.Max.Y, s.Max.Y) - math.Max(r.Min.Y, s.Min.Y)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by d on every side. A negative d shrinks r; if
// the result would be empty, the degenerate rectangle at r's centre is
// returned.
func (r Rect) Expand(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if !out.Valid() {
		c := r.Center()
		return Rect{Min: c, Max: c}
	}
	return out
}

// DistToPoint returns the Euclidean distance from p to the closest
// point of r (zero when p is inside r).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// DistToRect returns the minimum Euclidean distance between r and s
// (zero when they touch or overlap).
func (r Rect) DistToRect(s Rect) float64 {
	dx := math.Max(0, math.Max(r.Min.X-s.Max.X, s.Min.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-s.Max.Y, s.Min.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// CenterDist returns the distance between the centroids of r and s —
// the paper's Euclidean region distance (§4.6.1).
func (r Rect) CenterDist(s Rect) float64 { return r.Center().Dist(s.Center()) }

// Vertices returns the four corners of r counter-clockwise starting at
// Min.
func (r Rect) Vertices() []Point {
	return []Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Polygon returns r as an explicit polygon.
func (r Rect) Polygon() Polygon { return Polygon(r.Vertices()) }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g %g,%g]", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// Segment is a line segment between two points. Doors and walls are
// represented as segments in the building model.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Bounds returns the MBR of s.
func (s Segment) Bounds() Rect { return R(s.A.X, s.A.Y, s.B.X, s.B.Y) }

// ContainsPoint reports whether p lies on s within Eps.
func (s Segment) ContainsPoint(p Point) bool {
	d := s.B.Sub(s.A)
	if d.Norm() <= Eps {
		return s.A.Eq(p)
	}
	if math.Abs(d.Cross(p.Sub(s.A))) > Eps*(1+d.Norm()) {
		return false
	}
	t := p.Sub(s.A).Dot(d) / d.Dot(d)
	return t >= -Eps && t <= 1+Eps
}

// Intersects reports whether segments s and t share any point.
func (s Segment) Intersects(t Segment) bool {
	d1 := orient(t.A, t.B, s.A)
	d2 := orient(t.A, t.B, s.B)
	d3 := orient(s.A, s.B, t.A)
	d4 := orient(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && t.ContainsPoint(s.A):
		return true
	case d2 == 0 && t.ContainsPoint(s.B):
		return true
	case d3 == 0 && s.ContainsPoint(t.A):
		return true
	case d4 == 0 && s.ContainsPoint(t.B):
		return true
	}
	return false
}

// DistToPoint returns the distance from p to the closest point of s.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 <= Eps {
		return s.A.Dist(p)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	proj := s.A.Add(d.Scale(t))
	return proj.Dist(p)
}

// orient returns the sign of the signed area of triangle (a, b, c):
// positive when c is to the left of a→b, negative to the right, and
// zero (within Eps) when collinear.
func orient(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > Eps:
		return 1
	case v < -Eps:
		return -1
	default:
		return 0
	}
}

// Polyline is an open chain of points (the GLOB line geometry: doors,
// walls).
type Polyline []Point

// Length returns the total length of the chain.
func (l Polyline) Length() float64 {
	var sum float64
	for i := 1; i < len(l); i++ {
		sum += l[i-1].Dist(l[i])
	}
	return sum
}

// Bounds returns the MBR of the chain; the zero Rect when l is empty.
func (l Polyline) Bounds() Rect { return boundsOf(l) }

// Polygon is a simple polygon given as its vertex ring; the closing
// edge from the last vertex back to the first is implicit. Vertices
// may wind in either direction.
type Polygon []Point

// Bounds returns the polygon's MBR — the representation the paper
// stores in the spatial database and feeds to the fusion lattice
// (§5.1).
func (p Polygon) Bounds() Rect { return boundsOf(p) }

// Area returns the (unsigned) area enclosed by p via the shoelace
// formula. Polygons with fewer than three vertices have zero area.
func (p Polygon) Area() float64 { return math.Abs(p.SignedArea()) }

// SignedArea returns the signed shoelace area: positive for
// counter-clockwise winding, negative for clockwise.
func (p Polygon) SignedArea() float64 {
	if len(p) < 3 {
		return 0
	}
	var sum float64
	for i := range p {
		j := (i + 1) % len(p)
		sum += p[i].Cross(p[j])
	}
	return sum / 2
}

// Centroid returns the area centroid of p. For degenerate polygons it
// falls back to the vertex average.
func (p Polygon) Centroid() Point {
	a := p.SignedArea()
	if len(p) == 0 {
		return Point{}
	}
	if math.Abs(a) <= Eps {
		var c Point
		for _, v := range p {
			c = c.Add(v)
		}
		return c.Scale(1 / float64(len(p)))
	}
	var cx, cy float64
	for i := range p {
		j := (i + 1) % len(p)
		w := p[i].Cross(p[j])
		cx += (p[i].X + p[j].X) * w
		cy += (p[i].Y + p[j].Y) * w
	}
	k := 1 / (6 * a)
	return Point{cx * k, cy * k}
}

// ContainsPoint reports whether pt is inside p (boundary inclusive),
// via the even-odd ray-crossing rule.
func (p Polygon) ContainsPoint(pt Point) bool {
	if len(p) < 3 {
		return false
	}
	for i := range p {
		j := (i + 1) % len(p)
		if Seg(p[i], p[j]).ContainsPoint(pt) {
			return true
		}
	}
	inside := false
	for i := range p {
		j := (i + 1) % len(p)
		a, b := p[i], p[j]
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			x := a.X + (pt.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if pt.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Edges returns the closed edge list of p.
func (p Polygon) Edges() []Segment {
	if len(p) < 2 {
		return nil
	}
	out := make([]Segment, 0, len(p))
	for i := range p {
		out = append(out, Seg(p[i], p[(i+1)%len(p)]))
	}
	return out
}

// IntersectsPolygon reports whether p and q share any point: edge
// crossings or full containment of one in the other.
func (p Polygon) IntersectsPolygon(q Polygon) bool {
	if len(p) == 0 || len(q) == 0 {
		return false
	}
	if !p.Bounds().Intersects(q.Bounds()) {
		return false
	}
	for _, e := range p.Edges() {
		for _, f := range q.Edges() {
			if e.Intersects(f) {
				return true
			}
		}
	}
	return p.ContainsPoint(q[0]) || q.ContainsPoint(p[0])
}

// ContainsPolygon reports whether q lies entirely within p. It
// requires every vertex of q inside p and no proper edge crossing.
func (p Polygon) ContainsPolygon(q Polygon) bool {
	if len(p) < 3 || len(q) == 0 {
		return false
	}
	if !p.Bounds().ContainsRect(q.Bounds()) {
		return false
	}
	for _, v := range q {
		if !p.ContainsPoint(v) {
			return false
		}
	}
	// Vertex containment is insufficient for non-convex p: an edge of q
	// may dip outside between two contained vertices. Reject if any
	// edge midpoint escapes.
	for _, e := range q.Edges() {
		if !p.ContainsPoint(e.Midpoint()) {
			return false
		}
	}
	return true
}

// DistToPoint returns the distance from pt to the boundary of p, or 0
// when pt is inside p.
func (p Polygon) DistToPoint(pt Point) float64 {
	if p.ContainsPoint(pt) {
		return 0
	}
	best := math.Inf(1)
	for _, e := range p.Edges() {
		if d := e.DistToPoint(pt); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// boundsOf returns the MBR of a point list; the zero Rect when empty.
func boundsOf(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	out := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		out.Min.X = math.Min(out.Min.X, p.X)
		out.Min.Y = math.Min(out.Min.Y, p.Y)
		out.Max.X = math.Max(out.Max.X, p.X)
		out.Max.Y = math.Max(out.Max.Y, p.Y)
	}
	return out
}

// BoundsOfPoints returns the MBR of an arbitrary point set.
func BoundsOfPoints(pts ...Point) Rect { return boundsOf(pts) }
