package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, -2)
	if got := p.Add(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Add = %v, want (4,2)", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Sub = %v, want (2,6)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(6, 8)) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Dot(q); !almostEq(got, 3-8) {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Cross(q); !almostEq(got, -6-4) {
		t.Errorf("Cross = %v, want -10", got)
	}
	if got := p.Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Pt(0, 0).Dist(p); !almostEq(got, 5) {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestRectNormalization(t *testing.T) {
	tests := []struct {
		name string
		give Rect
		want Rect
	}{
		{"already ordered", R(0, 0, 2, 3), Rect{Pt(0, 0), Pt(2, 3)}},
		{"swapped x", R(2, 0, 0, 3), Rect{Pt(0, 0), Pt(2, 3)}},
		{"swapped y", R(0, 3, 2, 0), Rect{Pt(0, 0), Pt(2, 3)}},
		{"swapped both", R(2, 3, 0, 0), Rect{Pt(0, 0), Pt(2, 3)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.give.Eq(tt.want) {
				t.Errorf("got %v, want %v", tt.give, tt.want)
			}
			if !tt.give.Valid() {
				t.Errorf("%v not valid", tt.give)
			}
		})
	}
}

func TestRectAreaWidthHeightCenter(t *testing.T) {
	r := R(1, 2, 5, 10)
	if !almostEq(r.Width(), 4) || !almostEq(r.Height(), 8) {
		t.Errorf("Width/Height = %v/%v, want 4/8", r.Width(), r.Height())
	}
	if !almostEq(r.Area(), 32) {
		t.Errorf("Area = %v, want 32", r.Area())
	}
	if !r.Center().Eq(Pt(3, 6)) {
		t.Errorf("Center = %v, want (3,6)", r.Center())
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		give Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},   // corner
		{Pt(10, 10), true}, // opposite corner
		{Pt(0, 5), true},   // edge
		{Pt(-1, 5), false},
		{Pt(5, 11), false},
	}
	for _, tt := range tests {
		if got := r.ContainsPoint(tt.give); got != tt.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := R(0, 0, 10, 10)
	tests := []struct {
		name string
		give Rect
		want bool
	}{
		{"proper inner", R(2, 2, 8, 8), true},
		{"itself", outer, true},
		{"touching edge", R(0, 2, 4, 8), true},
		{"poking out", R(2, 2, 12, 8), false},
		{"disjoint", R(20, 20, 30, 30), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := outer.ContainsRect(tt.give); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectIntersection(t *testing.T) {
	a := R(0, 0, 10, 10)
	tests := []struct {
		name     string
		give     Rect
		wantOK   bool
		wantRect Rect
		wantArea float64
	}{
		{"overlap", R(5, 5, 15, 15), true, R(5, 5, 10, 10), 25},
		{"contained", R(2, 2, 4, 4), true, R(2, 2, 4, 4), 4},
		{"edge touch", R(10, 0, 20, 10), true, R(10, 0, 10, 10), 0},
		{"corner touch", R(10, 10, 20, 20), true, R(10, 10, 10, 10), 0},
		{"disjoint", R(11, 11, 20, 20), false, Rect{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := a.Intersect(tt.give)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !got.Eq(tt.wantRect) {
				t.Errorf("rect = %v, want %v", got, tt.wantRect)
			}
			if got := a.IntersectionArea(tt.give); !almostEq(got, tt.wantArea) {
				t.Errorf("area = %v, want %v", got, tt.wantArea)
			}
		})
	}
}

func TestRectIntersectsVsOverlaps(t *testing.T) {
	a := R(0, 0, 10, 10)
	touch := R(10, 0, 20, 10)
	if !a.Intersects(touch) {
		t.Error("Intersects should include boundary contact")
	}
	if a.Overlaps(touch) {
		t.Error("Overlaps should exclude boundary-only contact")
	}
	inner := R(9, 0, 20, 10)
	if !a.Overlaps(inner) {
		t.Error("Overlaps should detect shared interior")
	}
}

func TestRectUnion(t *testing.T) {
	got := R(0, 0, 1, 1).Union(R(5, -2, 6, 3))
	if !got.Eq(R(0, -2, 6, 3)) {
		t.Errorf("Union = %v, want [0,-2 6,3]", got)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(2, 2, 4, 4)
	if got := r.Expand(1); !got.Eq(R(1, 1, 5, 5)) {
		t.Errorf("Expand(1) = %v", got)
	}
	if got := r.Expand(-0.5); !got.Eq(R(2.5, 2.5, 3.5, 3.5)) {
		t.Errorf("Expand(-0.5) = %v", got)
	}
	// Over-shrink collapses to the centre point.
	if got := r.Expand(-5); !got.Eq(Rect{Pt(3, 3), Pt(3, 3)}) {
		t.Errorf("Expand(-5) = %v, want degenerate at centre", got)
	}
}

func TestRectDistances(t *testing.T) {
	r := R(0, 0, 10, 10)
	if d := r.DistToPoint(Pt(5, 5)); !almostEq(d, 0) {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistToPoint(Pt(13, 14)); !almostEq(d, 5) {
		t.Errorf("corner dist = %v, want 5", d)
	}
	if d := r.DistToRect(R(13, 0, 20, 10)); !almostEq(d, 3) {
		t.Errorf("rect dist = %v, want 3", d)
	}
	if d := r.DistToRect(R(5, 5, 6, 6)); !almostEq(d, 0) {
		t.Errorf("overlapping rect dist = %v, want 0", d)
	}
	if d := r.CenterDist(R(20, 0, 30, 10)); !almostEq(d, 20) {
		t.Errorf("center dist = %v, want 20", d)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Pt(5, 5), 2, 3)
	if !r.Eq(R(3, 2, 7, 8)) {
		t.Errorf("RectFromCenter = %v", r)
	}
}

func TestRectVerticesAndPolygon(t *testing.T) {
	r := R(0, 0, 2, 1)
	v := r.Vertices()
	want := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 1), Pt(0, 1)}
	for i := range want {
		if !v[i].Eq(want[i]) {
			t.Errorf("vertex %d = %v, want %v", i, v[i], want[i])
		}
	}
	if a := r.Polygon().Area(); !almostEq(a, 2) {
		t.Errorf("polygon area = %v, want 2", a)
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if !almostEq(s.Length(), 5) {
		t.Errorf("Length = %v", s.Length())
	}
	if !s.Midpoint().Eq(Pt(1.5, 2)) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if !s.Bounds().Eq(R(0, 0, 3, 4)) {
		t.Errorf("Bounds = %v", s.Bounds())
	}
}

func TestSegmentContainsPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		give Point
		want bool
	}{
		{Pt(5, 0), true},
		{Pt(0, 0), true},
		{Pt(10, 0), true},
		{Pt(11, 0), false},
		{Pt(5, 0.1), false},
	}
	for _, tt := range tests {
		if got := s.ContainsPoint(tt.give); got != tt.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	// Degenerate segment.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if !d.ContainsPoint(Pt(1, 1)) || d.ContainsPoint(Pt(1, 2)) {
		t.Error("degenerate segment containment wrong")
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing", Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true},
		{"touching at endpoint", Seg(Pt(0, 0), Pt(5, 5)), Seg(Pt(5, 5), Pt(10, 0)), true},
		{"T-junction", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, -5), Pt(5, 0)), true},
		{"collinear overlapping", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(15, 0)), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 0), Pt(10, 0)), false},
		{"parallel", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false},
		{"disjoint skew", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(5, 0), Pt(6, 4)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Intersects(tt.u); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
			// Intersection is symmetric.
			if got := tt.u.Intersects(tt.s); got != tt.want {
				t.Errorf("reversed: got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		give Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(-4, 3), 5},  // beyond A endpoint
		{Pt(13, -4), 5}, // beyond B endpoint
		{Pt(5, 0), 0},
	}
	for _, tt := range tests {
		if got := s.DistToPoint(tt.give); !almostEq(got, tt.want) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestPolylineLengthAndBounds(t *testing.T) {
	l := Polyline{Pt(0, 0), Pt(3, 4), Pt(3, 10)}
	if !almostEq(l.Length(), 11) {
		t.Errorf("Length = %v, want 11", l.Length())
	}
	if !l.Bounds().Eq(R(0, 0, 3, 10)) {
		t.Errorf("Bounds = %v", l.Bounds())
	}
	var empty Polyline
	if empty.Length() != 0 || !empty.Bounds().Eq(Rect{}) {
		t.Error("empty polyline should have zero length and zero bounds")
	}
}

// lShape is a non-convex test polygon:
//
//	(0,4)----(2,4)
//	  |        |
//	  |        (2,2)----(4,2)
//	  |                   |
//	(0,0)---------------(4,0)
var lShape = Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)}

func TestPolygonArea(t *testing.T) {
	square := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !almostEq(square.Area(), 4) {
		t.Errorf("square area = %v", square.Area())
	}
	if !almostEq(square.SignedArea(), 4) {
		t.Errorf("ccw signed area = %v, want +4", square.SignedArea())
	}
	cw := Polygon{Pt(0, 0), Pt(0, 2), Pt(2, 2), Pt(2, 0)}
	if !almostEq(cw.SignedArea(), -4) {
		t.Errorf("cw signed area = %v, want -4", cw.SignedArea())
	}
	if !almostEq(lShape.Area(), 12) {
		t.Errorf("L-shape area = %v, want 12", lShape.Area())
	}
	if got := (Polygon{Pt(0, 0), Pt(1, 1)}).Area(); got != 0 {
		t.Errorf("degenerate polygon area = %v", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	square := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !square.Centroid().Eq(Pt(1, 1)) {
		t.Errorf("square centroid = %v", square.Centroid())
	}
	// Degenerate polygon falls back to vertex average.
	line := Polygon{Pt(0, 0), Pt(2, 0)}
	if !line.Centroid().Eq(Pt(1, 0)) {
		t.Errorf("line centroid = %v", line.Centroid())
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	tests := []struct {
		name string
		give Point
		want bool
	}{
		{"deep inside", Pt(1, 1), true},
		{"in the arm", Pt(3, 1), true},
		{"in the notch", Pt(3, 3), false},
		{"on outer edge", Pt(2, 0), true},
		{"on notch edge", Pt(3, 2), true},
		{"vertex", Pt(0, 0), true},
		{"outside", Pt(5, 5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := lShape.ContainsPoint(tt.give); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPolygonIntersectsPolygon(t *testing.T) {
	tri := Polygon{Pt(5, 5), Pt(7, 5), Pt(6, 7)}
	if lShape.IntersectsPolygon(tri) {
		t.Error("disjoint polygons should not intersect")
	}
	inner := Polygon{Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1, 1.5)}
	if !lShape.IntersectsPolygon(inner) {
		t.Error("contained polygon should intersect")
	}
	if !inner.IntersectsPolygon(lShape) {
		t.Error("intersection should be symmetric")
	}
	crossing := Polygon{Pt(3, 1), Pt(6, 1), Pt(6, 3), Pt(3, 3)}
	if !lShape.IntersectsPolygon(crossing) {
		t.Error("edge-crossing polygons should intersect")
	}
	// A polygon sitting in the notch has an intersecting MBR but no
	// actual shared point.
	notch := Polygon{Pt(2.5, 2.5), Pt(3.5, 2.5), Pt(3.5, 3.5), Pt(2.5, 3.5)}
	if lShape.IntersectsPolygon(notch) {
		t.Error("polygon in the notch must not intersect the L-shape")
	}
}

func TestPolygonContainsPolygon(t *testing.T) {
	inner := Polygon{Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1.5, 1.5), Pt(0.5, 1.5)}
	if !lShape.ContainsPolygon(inner) {
		t.Error("inner square should be contained")
	}
	// All four vertices of this rectangle are inside the L, but its
	// body spans the notch — a pure vertex test would wrongly accept it.
	spanning := Polygon{Pt(1, 1), Pt(3.5, 1), Pt(3.5, 1.5), Pt(1, 1.5)}
	if !lShape.ContainsPolygon(spanning) {
		t.Error("rectangle within the bottom bar should be contained")
	}
	bridge := Polygon{Pt(1, 3.5), Pt(1.5, 0.5), Pt(3.5, 0.5), Pt(3.5, 1)}
	if lShape.ContainsPolygon(bridge) {
		t.Error("polygon crossing the notch must not be contained")
	}
	far := Polygon{Pt(10, 10), Pt(11, 10), Pt(11, 11)}
	if lShape.ContainsPolygon(far) {
		t.Error("disjoint polygon must not be contained")
	}
}

func TestPolygonDistToPoint(t *testing.T) {
	if d := lShape.DistToPoint(Pt(1, 1)); !almostEq(d, 0) {
		t.Errorf("inside dist = %v", d)
	}
	if d := lShape.DistToPoint(Pt(3, 3)); !almostEq(d, 1) {
		t.Errorf("notch dist = %v, want 1", d)
	}
	if d := lShape.DistToPoint(Pt(7, 0)); !almostEq(d, 3) {
		t.Errorf("outside dist = %v, want 3", d)
	}
}

func TestBoundsOfPoints(t *testing.T) {
	r := BoundsOfPoints(Pt(3, -1), Pt(0, 5), Pt(2, 2))
	if !r.Eq(R(0, -1, 3, 5)) {
		t.Errorf("BoundsOfPoints = %v", r)
	}
	if !BoundsOfPoints().Eq(Rect{}) {
		t.Error("empty point set should give zero Rect")
	}
}

// randRect draws a random valid rectangle in [-100,100]^2.
func randRect(r *rand.Rand) Rect {
	x0 := r.Float64()*200 - 100
	y0 := r.Float64()*200 - 100
	return R(x0, y0, x0+r.Float64()*50, y0+r.Float64()*50)
}

func TestQuickRectIntersectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		_ = seed
		a, b := randRect(rng), randRect(rng)
		ia := a.IntersectionArea(b)
		// Symmetry.
		if !almostEq(ia, b.IntersectionArea(a)) {
			return false
		}
		// Intersection area never exceeds either operand's area.
		if ia > a.Area()+Eps || ia > b.Area()+Eps {
			return false
		}
		// Intersect() agrees with IntersectionArea().
		if got, ok := a.Intersect(b); ok {
			if !almostEq(got.Area(), ia) {
				return false
			}
			if !a.ContainsRect(got) || !b.ContainsRect(got) {
				return false
			}
		} else if ia != 0 {
			return false
		}
		// Union contains both.
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainmentImpliesAreaOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		_ = seed
		a := randRect(rng)
		// Shrink a to get a guaranteed-contained rectangle.
		in := R(
			a.Min.X+a.Width()*0.25, a.Min.Y+a.Height()*0.25,
			a.Max.X-a.Width()*0.25, a.Max.Y-a.Height()*0.25,
		)
		return a.ContainsRect(in) && in.Area() <= a.Area()+Eps &&
			almostEq(a.IntersectionArea(in), in.Area())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickPolygonRectConsistency(t *testing.T) {
	// A rectangle's polygon form must agree with the rectangle itself
	// on containment of random points.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		_ = seed
		r := randRect(rng)
		poly := r.Polygon()
		if !almostEq(poly.Area(), r.Area()) {
			return false
		}
		p := Pt(rng.Float64()*300-150, rng.Float64()*300-150)
		return poly.ContainsPoint(p) == r.ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
