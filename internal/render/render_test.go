package render

import (
	"strings"
	"testing"

	"middlewhere/internal/building"
	"middlewhere/internal/geom"
)

func TestFloorRendersRoomsAndMarkers(t *testing.T) {
	db, err := building.PaperFloor().NewDB()
	if err != nil {
		t.Fatal(err)
	}
	out := Floor(db, []Marker{
		{Label: 'A', Pos: geom.Pt(370, 15)}, // NetLab
		{Label: 'B', Pos: geom.Pt(100, 37)}, // MainCorridor
	}, 120)
	if out == "" {
		t.Fatal("empty render")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Aspect: 120 cols over a 500x100 universe -> 12 rows.
	if len(lines) != 12 {
		t.Errorf("rows = %d", len(lines))
	}
	for _, line := range lines {
		if len(line) > 120 {
			t.Errorf("line too long: %d", len(line))
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("no walls drawn")
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Error("markers missing")
	}
	// Room labels appear where they fit.
	for _, label := range []string{"3105", "MainCorridor", "HCILab"} {
		if !strings.Contains(out, label) {
			t.Errorf("room label %q missing", label)
		}
	}
}

func TestFloorSmallAndDegenerate(t *testing.T) {
	db, err := building.Synthetic("T", 1, 1, 10, 8, 4).NewDB()
	if err != nil {
		t.Fatal(err)
	}
	// Tiny width is clamped.
	out := Floor(db, nil, 1)
	if out == "" {
		t.Error("clamped render empty")
	}
	// Markers outside the universe are clamped into the grid, not
	// panicking.
	out = Floor(db, []Marker{{Label: 'X', Pos: geom.Pt(-100, 999)}}, 40)
	if !strings.Contains(out, "X") {
		t.Error("out-of-range marker lost")
	}
}
