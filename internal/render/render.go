// Package render draws ASCII floor plans: the object table's rooms and
// corridors as outlines, with single-character markers for tracked
// objects. cmd/simulate uses it for live terminal visualization; it is
// debug tooling, not part of the middleware surface.
package render

import (
	"sort"
	"strings"

	"middlewhere/internal/geom"
	"middlewhere/internal/spatialdb"
)

// Marker places a labelled point on the map.
type Marker struct {
	// Label is the single character drawn (e.g. '0'..'9', 'A'..).
	Label rune
	// Pos is the position in universe coordinates.
	Pos geom.Point
}

// Floor renders the database's rooms/corridors into a width-column
// ASCII map. Height follows from the universe aspect ratio, halved to
// compensate for terminal character cells being roughly twice as tall
// as wide. Walls are '#', interiors ' ', markers overwrite walls.
func Floor(db *spatialdb.DB, markers []Marker, width int) string {
	u := db.Universe()
	if width < 8 {
		width = 8
	}
	if u.Width() <= 0 || u.Height() <= 0 {
		return ""
	}
	height := int(float64(width) * u.Height() / u.Width() / 2)
	if height < 4 {
		height = 4
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}

	// toCell maps universe coords to grid cells (row 0 at the top).
	toCell := func(p geom.Point) (row, col int) {
		col = int((p.X - u.Min.X) / u.Width() * float64(width))
		row = int((u.Max.Y - p.Y) / u.Height() * float64(height))
		if col >= width {
			col = width - 1
		}
		if col < 0 {
			col = 0
		}
		if row >= height {
			row = height - 1
		}
		if row < 0 {
			row = 0
		}
		return row, col
	}

	// Draw region outlines, larger regions first so room walls win.
	regions := db.IntersectingObjects(u, spatialdb.ObjectFilter{})
	sort.Slice(regions, func(i, j int) bool {
		return regions[i].Bounds.Area() > regions[j].Bounds.Area()
	})
	for _, o := range regions {
		switch o.Type {
		case "Room", "Corridor", "Region":
		default:
			continue
		}
		r := o.Bounds
		r0, c0 := toCell(geom.Pt(r.Min.X, r.Max.Y)) // top-left
		r1, c1 := toCell(geom.Pt(r.Max.X, r.Min.Y)) // bottom-right
		for c := c0; c <= c1; c++ {
			grid[r0][c] = '#'
			grid[r1][c] = '#'
		}
		for rr := r0; rr <= r1; rr++ {
			grid[rr][c0] = '#'
			grid[rr][c1] = '#'
		}
		// Label the region with the first letter of its name inside the
		// top-left corner, if there is room.
		name := o.GLOB.Name()
		if r1 > r0+1 && c1 > c0+len(name) {
			for i, ch := range name {
				grid[r0+1][c0+1+i] = ch
			}
		}
	}

	for _, m := range markers {
		r, c := toCell(m.Pos)
		grid[r][c] = m.Label
	}

	var b strings.Builder
	for _, row := range grid {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}
