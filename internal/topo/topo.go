// Package topo builds the region connectivity graph of a floor from
// RCC external-connection relations and door data, and computes
// MiddleWhere's path distance (§4.6.1): the length of a traversable
// route between region centres, as opposed to the straight-line
// Euclidean distance. Route finding uses Dijkstra's algorithm over the
// door graph: a step between two regions passes through the midpoint
// of a door connecting them.
package topo

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"middlewhere/internal/geom"
	"middlewhere/internal/rcc"
)

// Region is a node in the connectivity graph.
type Region struct {
	// ID names the region (its GLOB string).
	ID string
	// Rect is the region's MBR in the universe frame.
	Rect geom.Rect
}

// Graph is the traversability graph of a floor. Build it with
// NewGraph, then add regions and doors. Graph is not safe for
// concurrent mutation; the Location Service builds it once per floor
// and only reads afterwards.
type Graph struct {
	regions map[string]Region
	// doors[a][b] lists the doors between regions a and b (symmetric).
	doors map[string]map[string][]rcc.Door
}

// Sentinel errors.
var (
	ErrUnknownRegion = errors.New("topo: unknown region")
	ErrNoRoute       = errors.New("topo: no route")
)

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		regions: make(map[string]Region),
		doors:   make(map[string]map[string][]rcc.Door),
	}
}

// AddRegion registers a region. Re-adding an ID overwrites its
// geometry but keeps its doors.
func (g *Graph) AddRegion(id string, r geom.Rect) {
	g.regions[id] = Region{ID: id, Rect: r}
}

// Region returns a region by ID.
func (g *Graph) Region(id string) (Region, bool) {
	r, ok := g.regions[id]
	return r, ok
}

// Regions returns all regions sorted by ID.
func (g *Graph) Regions() []Region {
	out := make([]Region, 0, len(g.regions))
	for _, r := range g.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddDoor records a door between regions a and b. Both regions must
// exist. Door direction is symmetric.
func (g *Graph) AddDoor(a, b string, d rcc.Door) error {
	if _, ok := g.regions[a]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, a)
	}
	if _, ok := g.regions[b]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, b)
	}
	if g.doors[a] == nil {
		g.doors[a] = make(map[string][]rcc.Door)
	}
	if g.doors[b] == nil {
		g.doors[b] = make(map[string][]rcc.Door)
	}
	g.doors[a][b] = append(g.doors[a][b], d)
	g.doors[b][a] = append(g.doors[b][a], d)
	return nil
}

// Doors returns the doors between two regions.
func (g *Graph) Doors(a, b string) []rcc.Door {
	return g.doors[a][b]
}

// Relation returns the passage-refined relation between two registered
// regions: the RCC-8 relation, plus the passage kind when they are
// externally connected.
func (g *Graph) Relation(a, b string) (rcc.Relation, rcc.Passage, error) {
	ra, ok := g.regions[a]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownRegion, a)
	}
	rb, ok := g.regions[b]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownRegion, b)
	}
	rel := rcc.Relate(ra.Rect, rb.Rect)
	if rel != rcc.EC {
		return rel, rcc.PassageNone, nil
	}
	best := rcc.PassageNone
	for _, d := range g.doors[a][b] {
		if d.Kind > best {
			best = d.Kind
		}
	}
	return rel, best, nil
}

// TraversalPolicy says which passages a route may use.
type TraversalPolicy int

// Traversal policies.
const (
	// FreeOnly routes only through free passages (ECFP).
	FreeOnly TraversalPolicy = iota + 1
	// AllowRestricted also routes through locked doors (ECRP) — for
	// users holding keys/cards.
	AllowRestricted
)

// passable reports whether a door is usable under the policy.
func (p TraversalPolicy) passable(d rcc.Door) bool {
	switch p {
	case FreeOnly:
		return d.Kind == rcc.PassageFree
	case AllowRestricted:
		return d.Kind == rcc.PassageFree || d.Kind == rcc.PassageRestricted
	default:
		return false
	}
}

// Route is a traversable path between two regions.
type Route struct {
	// Regions is the sequence of region IDs from source to target.
	Regions []string
	// Waypoints is the polyline walked: source centre, door midpoints,
	// target centre.
	Waypoints []geom.Point
	// Length is the total length of Waypoints.
	Length float64
}

// PathDistance returns the paper's path-distance between two regions:
// the length of the shortest traversable route from the centre of one
// region to the centre of the other, passing through door midpoints.
// It returns ErrNoRoute when no traversable path exists under the
// policy.
func (g *Graph) PathDistance(from, to string, policy TraversalPolicy) (float64, error) {
	r, err := g.ShortestRoute(from, to, policy)
	if err != nil {
		return 0, err
	}
	return r.Length, nil
}

// EuclideanDistance returns the straight-line distance between the
// centres of the two regions (§4.6.1's other distance measure).
func (g *Graph) EuclideanDistance(from, to string) (float64, error) {
	a, ok := g.regions[from]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownRegion, from)
	}
	b, ok := g.regions[to]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownRegion, to)
	}
	return a.Rect.Center().Dist(b.Rect.Center()), nil
}

// node in the Dijkstra search: a region entered through a particular
// point (region centre for the source, door midpoints elsewhere).
type searchNode struct {
	region string
	at     geom.Point
}

type pqItem struct {
	node searchNode
	dist float64
	prev int // index into the visited list, -1 for the source
	self int // index of this item in the visited list when popped
	seq  int // insertion order, breaks distance ties deterministically
}

type priorityQueue []*pqItem

func (q priorityQueue) Len() int { return len(q) }
func (q priorityQueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(*pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestRoute runs Dijkstra over (region, entry-point) states and
// returns the shortest route from the centre of `from` to the centre
// of `to`.
func (g *Graph) ShortestRoute(from, to string, policy TraversalPolicy) (Route, error) {
	src, ok := g.regions[from]
	if !ok {
		return Route{}, fmt.Errorf("%w: %q", ErrUnknownRegion, from)
	}
	dst, ok := g.regions[to]
	if !ok {
		return Route{}, fmt.Errorf("%w: %q", ErrUnknownRegion, to)
	}
	if from == to {
		c := src.Rect.Center()
		return Route{Regions: []string{from}, Waypoints: []geom.Point{c}, Length: 0}, nil
	}

	var visited []*pqItem
	bestDist := make(map[searchNode]float64)
	pq := &priorityQueue{}
	seq := 0
	start := &pqItem{node: searchNode{region: from, at: src.Rect.Center()}, dist: 0, prev: -1}
	heap.Push(pq, start)
	bestDist[start.node] = 0

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*pqItem)
		if d, ok := bestDist[cur.node]; ok && cur.dist > d+geom.Eps {
			continue // stale entry
		}
		cur.self = len(visited)
		visited = append(visited, cur)

		if cur.node.region == to {
			// Close the route at the target centre.
			total := cur.dist + cur.node.at.Dist(dst.Rect.Center())
			return g.assembleRoute(visited, cur, dst, total), nil
		}

		// Expand neighbours in sorted order so equal-cost ties always
		// resolve the same way (map iteration order is randomized).
		neighbours := make([]string, 0, len(g.doors[cur.node.region]))
		for next := range g.doors[cur.node.region] {
			neighbours = append(neighbours, next)
		}
		sort.Strings(neighbours)
		for _, next := range neighbours {
			for _, d := range g.doors[cur.node.region][next] {
				if !policy.passable(d) {
					continue
				}
				mid := d.Span.Midpoint()
				nn := searchNode{region: next, at: mid}
				nd := cur.dist + cur.node.at.Dist(mid)
				if old, ok := bestDist[nn]; !ok || nd < old-geom.Eps {
					bestDist[nn] = nd
					seq++
					heap.Push(pq, &pqItem{node: nn, dist: nd, prev: cur.self, seq: seq})
				}
			}
		}
	}
	return Route{}, fmt.Errorf("%w: %s -> %s", ErrNoRoute, from, to)
}

// assembleRoute walks the predecessor chain back to the source.
func (g *Graph) assembleRoute(visited []*pqItem, final *pqItem, dst Region, total float64) Route {
	var chain []*pqItem
	for it := final; it != nil; {
		chain = append(chain, it)
		if it.prev < 0 {
			break
		}
		it = visited[it.prev]
	}
	// Reverse.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	rt := Route{Length: total}
	for _, it := range chain {
		rt.Regions = append(rt.Regions, it.node.region)
		rt.Waypoints = append(rt.Waypoints, it.node.at)
	}
	rt.Waypoints = append(rt.Waypoints, dst.Rect.Center())
	return rt
}

// Reachable returns the IDs of all regions reachable from start under
// the policy, including start itself, sorted.
func (g *Graph) Reachable(start string, policy TraversalPolicy) ([]string, error) {
	if _, ok := g.regions[start]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRegion, start)
	}
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next, doors := range g.doors[cur] {
			if seen[next] {
				continue
			}
			for _, d := range doors {
				if policy.passable(d) {
					seen[next] = true
					queue = append(queue, next)
					break
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// AutoConnect scans all region pairs and records an ECNP "wall"
// adjacency for externally connected pairs that have no door yet. It
// returns the number of EC pairs found. This lets the rule engine see
// the full EC relation even where no door exists.
func (g *Graph) AutoConnect() int {
	ids := make([]string, 0, len(g.regions))
	for id := range g.regions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	count := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := g.regions[ids[i]], g.regions[ids[j]]
			if rcc.Relate(a.Rect, b.Rect) == rcc.EC {
				count++
			}
		}
	}
	return count
}

// Infinity is a convenience for comparing unreachable distances.
var Infinity = math.Inf(1)
