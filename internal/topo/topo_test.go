package topo

import (
	"errors"
	"math"
	"testing"

	"middlewhere/internal/geom"
	"middlewhere/internal/rcc"
)

// corridorFloor builds a small floor:
//
//	+------+------+------+
//	| R1   | R2   | R3   |
//	+--d1--+--d2--+--d3--+
//	|      corridor      |
//	+--------------------+
//
// d1 free, d2 restricted, d3 free. R2-R3 share a wall without a door.
func corridorFloor(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	g.AddRegion("R1", geom.R(0, 10, 10, 20))
	g.AddRegion("R2", geom.R(10, 10, 20, 20))
	g.AddRegion("R3", geom.R(20, 10, 30, 20))
	g.AddRegion("corridor", geom.R(0, 0, 30, 10))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddDoor("R1", "corridor", rcc.Door{
		Span: geom.Seg(geom.Pt(4, 10), geom.Pt(6, 10)), Kind: rcc.PassageFree}))
	must(g.AddDoor("R2", "corridor", rcc.Door{
		Span: geom.Seg(geom.Pt(14, 10), geom.Pt(16, 10)), Kind: rcc.PassageRestricted}))
	must(g.AddDoor("R3", "corridor", rcc.Door{
		Span: geom.Seg(geom.Pt(24, 10), geom.Pt(26, 10)), Kind: rcc.PassageFree}))
	return g
}

func TestRegionsAndLookup(t *testing.T) {
	g := corridorFloor(t)
	if _, ok := g.Region("R1"); !ok {
		t.Error("R1 missing")
	}
	if _, ok := g.Region("nope"); ok {
		t.Error("unexpected region")
	}
	ids := g.Regions()
	if len(ids) != 4 || ids[0].ID != "R1" || ids[3].ID != "corridor" {
		t.Errorf("Regions = %v", ids)
	}
}

func TestAddDoorUnknownRegion(t *testing.T) {
	g := NewGraph()
	g.AddRegion("A", geom.R(0, 0, 1, 1))
	err := g.AddDoor("A", "B", rcc.Door{})
	if !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("err = %v", err)
	}
	err = g.AddDoor("Z", "A", rcc.Door{})
	if !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("err = %v", err)
	}
}

func TestRelationWithPassage(t *testing.T) {
	g := corridorFloor(t)
	rel, pass, err := g.Relation("R1", "corridor")
	if err != nil || rel != rcc.EC || pass != rcc.PassageFree {
		t.Errorf("R1-corridor = %v %v %v", rel, pass, err)
	}
	rel, pass, err = g.Relation("R2", "corridor")
	if err != nil || rel != rcc.EC || pass != rcc.PassageRestricted {
		t.Errorf("R2-corridor = %v %v %v", rel, pass, err)
	}
	// R1 and R2 share a wall but no door: ECNP.
	rel, pass, err = g.Relation("R1", "R2")
	if err != nil || rel != rcc.EC || pass != rcc.PassageNone {
		t.Errorf("R1-R2 = %v %v %v", rel, pass, err)
	}
	// Disjoint pair.
	rel, _, err = g.Relation("R1", "R3")
	if err != nil || rel != rcc.DC {
		t.Errorf("R1-R3 = %v %v", rel, err)
	}
	if _, _, err := g.Relation("R1", "nope"); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("unknown = %v", err)
	}
	if _, _, err := g.Relation("nope", "R1"); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("unknown = %v", err)
	}
}

func TestShortestRouteFreeOnly(t *testing.T) {
	g := corridorFloor(t)
	// R1 -> R3 through the corridor using the two free doors.
	rt, err := g.ShortestRoute("R1", "R3", FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	wantRegions := []string{"R1", "corridor", "R3"}
	if len(rt.Regions) != 3 {
		t.Fatalf("route regions = %v", rt.Regions)
	}
	for i, id := range wantRegions {
		if rt.Regions[i] != id {
			t.Errorf("region[%d] = %s, want %s", i, rt.Regions[i], id)
		}
	}
	// Length: centre R1 (5,15) -> door d1 (5,10) -> door d3 (25,10) ->
	// centre R3 (25,15) = 5 + 20 + 5 = 30.
	if math.Abs(rt.Length-30) > 1e-9 {
		t.Errorf("length = %v, want 30", rt.Length)
	}
	// Waypoints chain source centre .. target centre.
	if !rt.Waypoints[0].Eq(geom.Pt(5, 15)) ||
		!rt.Waypoints[len(rt.Waypoints)-1].Eq(geom.Pt(25, 15)) {
		t.Errorf("waypoints = %v", rt.Waypoints)
	}
}

func TestRouteRespectsPolicy(t *testing.T) {
	g := corridorFloor(t)
	// R2 is behind a restricted door: unreachable under FreeOnly.
	if _, err := g.ShortestRoute("R1", "R2", FreeOnly); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	// With a key it works: R1 -> corridor -> R2.
	rt, err := g.ShortestRoute("R1", "R2", AllowRestricted)
	if err != nil {
		t.Fatal(err)
	}
	// centre R1 (5,15) -> d1 (5,10) -> d2 (15,10) -> centre R2 (15,15):
	// 5 + 10 + 5 = 20.
	if math.Abs(rt.Length-20) > 1e-9 {
		t.Errorf("length = %v, want 20", rt.Length)
	}
}

func TestPathVsEuclideanDistance(t *testing.T) {
	g := corridorFloor(t)
	pd, err := g.PathDistance("R1", "R3", FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := g.EuclideanDistance("R1", "R3")
	if err != nil {
		t.Fatal(err)
	}
	if ed >= pd {
		t.Errorf("euclidean %v should be shorter than path %v", ed, pd)
	}
	if math.Abs(ed-20) > 1e-9 { // centres (5,15) and (25,15)
		t.Errorf("euclidean = %v, want 20", ed)
	}
	if _, err := g.EuclideanDistance("R1", "zz"); !errors.Is(err, ErrUnknownRegion) {
		t.Error("unknown region should error")
	}
	if _, err := g.EuclideanDistance("zz", "R1"); !errors.Is(err, ErrUnknownRegion) {
		t.Error("unknown region should error")
	}
}

func TestSameRegionRoute(t *testing.T) {
	g := corridorFloor(t)
	rt, err := g.ShortestRoute("R1", "R1", FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Length != 0 || len(rt.Regions) != 1 {
		t.Errorf("self route = %+v", rt)
	}
}

func TestRouteErrors(t *testing.T) {
	g := corridorFloor(t)
	if _, err := g.ShortestRoute("zz", "R1", FreeOnly); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("err = %v", err)
	}
	if _, err := g.ShortestRoute("R1", "zz", FreeOnly); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("err = %v", err)
	}
	// Island region with no doors at all.
	g.AddRegion("island", geom.R(100, 100, 110, 110))
	if _, err := g.ShortestRoute("R1", "island", AllowRestricted); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestReachable(t *testing.T) {
	g := corridorFloor(t)
	g.AddRegion("island", geom.R(100, 100, 110, 110))
	free, err := g.Reachable("corridor", FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	// corridor, R1, R3 (R2 is behind the locked door).
	want := []string{"R1", "R3", "corridor"}
	if len(free) != len(want) {
		t.Fatalf("free reachable = %v", free)
	}
	for i := range want {
		if free[i] != want[i] {
			t.Errorf("free[%d] = %s, want %s", i, free[i], want[i])
		}
	}
	all, err := g.Reachable("corridor", AllowRestricted)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Errorf("restricted reachable = %v", all)
	}
	if _, err := g.Reachable("zz", FreeOnly); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("err = %v", err)
	}
}

func TestMultipleDoorsPickShortest(t *testing.T) {
	// Two doors between the same pair: Dijkstra must route through the
	// one giving the shorter total path.
	g := NewGraph()
	g.AddRegion("A", geom.R(0, 0, 10, 10))
	g.AddRegion("B", geom.R(10, 0, 20, 10))
	if err := g.AddDoor("A", "B", rcc.Door{
		Span: geom.Seg(geom.Pt(10, 1), geom.Pt(10, 1)), Kind: rcc.PassageFree}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDoor("A", "B", rcc.Door{
		Span: geom.Seg(geom.Pt(10, 5), geom.Pt(10, 5)), Kind: rcc.PassageFree}); err != nil {
		t.Fatal(err)
	}
	rt, err := g.ShortestRoute("A", "B", FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Centres (5,5) and (15,5): the (10,5) door is on the straight
	// line, total 10.
	if math.Abs(rt.Length-10) > 1e-9 {
		t.Errorf("length = %v, want 10", rt.Length)
	}
}

func TestAutoConnectCountsECPairs(t *testing.T) {
	g := corridorFloor(t)
	// EC pairs: R1-R2, R2-R3, R1-corridor, R2-corridor, R3-corridor.
	if got := g.AutoConnect(); got != 5 {
		t.Errorf("AutoConnect = %d, want 5", got)
	}
}

func TestDoorsAccessor(t *testing.T) {
	g := corridorFloor(t)
	if ds := g.Doors("R1", "corridor"); len(ds) != 1 {
		t.Errorf("Doors = %v", ds)
	}
	if ds := g.Doors("corridor", "R1"); len(ds) != 1 {
		t.Error("doors should be symmetric")
	}
	if ds := g.Doors("R1", "R3"); ds != nil {
		t.Errorf("no doors expected, got %v", ds)
	}
}
