package building

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/rcc"
	"middlewhere/internal/spatialdb"
)

// ErrBadPlan reports an invalid floor-plan file.
var ErrBadPlan = errors.New("building: bad plan")

// The JSON floor-plan format. One file describes one building:
//
//	{
//	  "name": "UIUC",
//	  "universe": {"minX": 0, "minY": 0, "maxX": 200, "maxY": 60},
//	  "frames": [
//	    {"name": "UIUC"},
//	    {"name": "UIUC/CS", "parent": "UIUC", "x": 100}
//	  ],
//	  "objects": [
//	    {"glob": "UIUC/CS/hall", "type": "Corridor", "kind": "polygon",
//	     "points": [[0,0],[30,0],[30,60],[0,60]],
//	     "properties": {"power-outlets": "yes"}}
//	  ],
//	  "doors": [
//	    {"roomA": "UIUC/quad", "roomB": "UIUC/CS/hall",
//	     "span": [100, 28, 100, 32], "kind": "free"}
//	  ]
//	}
//
// Frames are named by GLOB path; a frame without a parent is a root,
// and x/y/theta/scale give its transform in the parent frame. Object
// points are local to the deepest declared frame of the object's GLOB
// prefix; door spans are universe coordinates; door kinds are "free"
// and "restricted".
type planFile struct {
	Name     string       `json:"name"`
	Universe planRect     `json:"universe"`
	Frames   []planFrame  `json:"frames"`
	Objects  []planObject `json:"objects"`
	Doors    []planDoor   `json:"doors,omitempty"`
}

type planRect struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

type planFrame struct {
	Name   string  `json:"name"`
	Parent string  `json:"parent,omitempty"`
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	Theta  float64 `json:"theta,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
}

type planObject struct {
	GLOB       string            `json:"glob"`
	Type       string            `json:"type"`
	Kind       string            `json:"kind"`
	Points     [][2]float64      `json:"points"`
	Properties map[string]string `json:"properties,omitempty"`
}

type planDoor struct {
	RoomA string     `json:"roomA"`
	RoomB string     `json:"roomB"`
	Span  [4]float64 `json:"span"`
	Kind  string     `json:"kind"`
}

// geometry kind names used in plan files.
var kindNames = map[glob.Kind]string{
	glob.KindSymbolic: "symbolic",
	glob.KindPoint:    "point",
	glob.KindLine:     "line",
	glob.KindPolygon:  "polygon",
}

func kindFromName(s string) (glob.Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown geometry kind %q", ErrBadPlan, s)
}

// passage kind names used in plan files.
var passageNames = map[rcc.Passage]string{
	rcc.PassageNone:       "none",
	rcc.PassageRestricted: "restricted",
	rcc.PassageFree:       "free",
}

func passageFromName(s string) (rcc.Passage, error) {
	for p, name := range passageNames {
		if name == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown door kind %q", ErrBadPlan, s)
}

// LoadPlan parses a JSON floor plan into a Building and validates it
// end to end: the frame tree must build, every object must insert into
// a spatial database, and every door must reference a known region.
func LoadPlan(r io.Reader) (*Building, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var pf planFile
	if err := dec.Decode(&pf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlan, err)
	}
	if pf.Name == "" {
		return nil, fmt.Errorf("%w: missing building name", ErrBadPlan)
	}
	if len(pf.Frames) == 0 {
		return nil, fmt.Errorf("%w: no frames", ErrBadPlan)
	}
	b := &Building{
		Name:     pf.Name,
		Universe: geom.R(pf.Universe.MinX, pf.Universe.MinY, pf.Universe.MaxX, pf.Universe.MaxY),
	}
	if b.Universe.Area() <= 0 {
		return nil, fmt.Errorf("%w: empty universe", ErrBadPlan)
	}
	for _, f := range pf.Frames {
		b.Frames = append(b.Frames, FrameSpec{
			Name: f.Name, Parent: f.Parent,
			Origin: geom.Pt(f.X, f.Y), Theta: f.Theta, Scale: f.Scale,
		})
	}
	for _, o := range pf.Objects {
		g, err := glob.Parse(o.GLOB)
		if err != nil {
			return nil, fmt.Errorf("%w: object glob %q: %v", ErrBadPlan, o.GLOB, err)
		}
		kind, err := kindFromName(o.Kind)
		if err != nil {
			return nil, err
		}
		pts := make([]geom.Point, len(o.Points))
		for i, p := range o.Points {
			pts[i] = geom.Pt(p[0], p[1])
		}
		b.Objects = append(b.Objects, spatialdb.Object{
			GLOB: g, Type: o.Type, Kind: kind,
			LocalPoints: pts, Properties: o.Properties,
		})
	}
	for _, d := range pf.Doors {
		kind, err := passageFromName(d.Kind)
		if err != nil {
			return nil, err
		}
		b.Doors = append(b.Doors, DoorSpec{
			RoomA: d.RoomA, RoomB: d.RoomB,
			Span: geom.Seg(geom.Pt(d.Span[0], d.Span[1]), geom.Pt(d.Span[2], d.Span[3])),
			Kind: kind,
		})
	}
	// Validate by materializing once: Graph builds the database too, so
	// this catches bad frames, bad geometry, duplicates, and doors that
	// reference unknown regions.
	if _, err := b.Graph(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlan, err)
	}
	return b, nil
}

// SavePlan writes the building as an indented JSON floor plan that
// LoadPlan parses back into an identical Building.
func (b *Building) SavePlan(w io.Writer) error {
	pf := planFile{
		Name: b.Name,
		Universe: planRect{
			MinX: b.Universe.Min.X, MinY: b.Universe.Min.Y,
			MaxX: b.Universe.Max.X, MaxY: b.Universe.Max.Y,
		},
	}
	for _, f := range b.Frames {
		pf.Frames = append(pf.Frames, planFrame{
			Name: f.Name, Parent: f.Parent,
			X: f.Origin.X, Y: f.Origin.Y, Theta: f.Theta, Scale: f.Scale,
		})
	}
	for _, o := range b.Objects {
		name, ok := kindNames[o.Kind]
		if !ok {
			return fmt.Errorf("%w: object %s has unknown geometry kind %v", ErrBadPlan, o.GLOB, o.Kind)
		}
		pts := make([][2]float64, len(o.LocalPoints))
		for i, p := range o.LocalPoints {
			pts[i] = [2]float64{p.X, p.Y}
		}
		pf.Objects = append(pf.Objects, planObject{
			GLOB: o.GLOB.String(), Type: o.Type, Kind: name,
			Points: pts, Properties: o.Properties,
		})
	}
	for _, d := range b.Doors {
		name, ok := passageNames[d.Kind]
		if !ok {
			return fmt.Errorf("%w: door %s-%s has unknown kind %v", ErrBadPlan, d.RoomA, d.RoomB, d.Kind)
		}
		pf.Doors = append(pf.Doors, planDoor{
			RoomA: d.RoomA, RoomB: d.RoomB,
			Span: [4]float64{d.Span.A.X, d.Span.A.Y, d.Span.B.X, d.Span.B.Y},
			Kind: name,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pf)
}
