package building

import (
	"fmt"
	"math"

	"middlewhere/internal/geom"
	"middlewhere/internal/rcc"
)

// Synthetic generates a deterministic rows x cols grid floor for
// experiments and load tests. Each row holds cols rooms of size
// roomW x roomH with a full-width corridor of height corridorH above
// it; the corridor of row i also serves the rooms of row i+1, so the
// whole floor is connected through free doors. The plan tiles the
// universe exactly: width cols*roomW, height rows*(roomH+corridorH).
//
// GLOBs follow the pattern NAME/F (floor, also the floor frame),
// NAME/F/corridor{i}, and NAME/F/r{i}c{j}. The same arguments always
// produce an identical plan.
func Synthetic(name string, rows, cols int, roomW, roomH, corridorH float64) *Building {
	floorGLOB := name + "/F"
	rowH := roomH + corridorH
	b := &Building{
		Name:     name,
		Universe: geom.R(0, 0, float64(cols)*roomW, float64(rows)*rowH),
		Frames: []FrameSpec{
			{Name: name},
			{Name: floorGLOB, Parent: name},
		},
	}
	b.addPolygon(floorGLOB, TypeFloor, b.Universe, nil)
	buildGridFloor(b, floorGLOB, rows, cols, roomW, roomH, corridorH, 0)
	return b
}

// MultiStorey generates a building of identical Synthetic-style grid
// floors stacked vertically, each in its own coordinate frame
// NAME/F{k} (origin at the floor's south-west corner in the building
// frame), joined by free stairwell doors between the top corridor of
// one floor and the bottom corridor of the next. It exercises the
// GLOB hierarchy and the frame tree at depth: room geometry is
// floor-local and only resolves to universe coordinates through the
// per-floor transform.
func MultiStorey(name string, floors, rows, cols int, roomW, roomH, corridorH float64) *Building {
	rowH := roomH + corridorH
	floorH := float64(rows) * rowH
	width := float64(cols) * roomW
	b := &Building{
		Name:     name,
		Universe: geom.R(0, 0, width, float64(floors)*floorH),
		Frames:   []FrameSpec{{Name: name}},
	}
	for k := 0; k < floors; k++ {
		floorGLOB := fmt.Sprintf("%s/F%d", name, k)
		yOff := float64(k) * floorH
		b.Frames = append(b.Frames, FrameSpec{
			Name: floorGLOB, Parent: name, Origin: geom.Pt(0, yOff),
		})
		// The floor object's prefix frame is the building root, so its
		// geometry is universe-frame; the rooms below are floor-local.
		b.addPolygon(floorGLOB, TypeFloor, geom.R(0, yOff, width, yOff+floorH), nil)
		buildGridFloor(b, floorGLOB, rows, cols, roomW, roomH, corridorH, yOff)
		if k > 0 {
			// Stairwell joining the previous floor's top corridor to this
			// floor's bottom corridor, at the floors' shared boundary.
			b.addDoor(
				fmt.Sprintf("%s/F%d/corridor%d", name, k-1, rows-1),
				fmt.Sprintf("%s/corridor0", floorGLOB),
				geom.Seg(geom.Pt(0, yOff), geom.Pt(2, yOff)),
				rcc.PassageFree)
		}
	}
	return b
}

// buildGridFloor appends the rooms, corridors, and doors of one grid
// floor under floorGLOB. Object geometry is expressed in the floor's
// local frame; door spans are universe-frame, offset by yOff (zero for
// single-floor buildings whose floor frame is the identity).
func buildGridFloor(b *Building, floorGLOB string, rows, cols int, roomW, roomH, corridorH float64, yOff float64) {
	rowH := roomH + corridorH
	width := float64(cols) * roomW
	halfSpan := math.Min(1.5, roomW/4)
	for i := 0; i < rows; i++ {
		y0 := float64(i) * rowH
		corridor := fmt.Sprintf("%s/corridor%d", floorGLOB, i)
		b.addPolygon(corridor, TypeCorridor, geom.R(0, y0+roomH, width, y0+rowH), nil)
		for j := 0; j < cols; j++ {
			x0 := float64(j) * roomW
			room := fmt.Sprintf("%s/r%dc%d", floorGLOB, i, j)
			b.addPolygon(room, TypeRoom, geom.R(x0, y0, x0+roomW, y0+roomH), nil)
			cx := x0 + roomW/2
			// Door on the room's shared edge with its row corridor.
			b.addDoor(room, corridor,
				geom.Seg(geom.Pt(cx-halfSpan, yOff+y0+roomH), geom.Pt(cx+halfSpan, yOff+y0+roomH)),
				rcc.PassageFree)
			if i > 0 {
				// The corridor below also opens into this room through the
				// rooms' bottom edge.
				below := fmt.Sprintf("%s/corridor%d", floorGLOB, i-1)
				b.addDoor(below, room,
					geom.Seg(geom.Pt(cx-halfSpan, yOff+y0), geom.Pt(cx+halfSpan, yOff+y0)),
					rcc.PassageFree)
			}
		}
	}
}
