package building

import (
	"middlewhere/internal/geom"
	"middlewhere/internal/rcc"
)

// PaperFloor returns the CS-building 3rd-floor model of the paper's
// Figure 5 / Table 1: the NetLab, the HCI lab, office 3105 behind a
// card-locked door, the main corridor spine, and the short lab
// corridor, plus the static objects (two wall displays and a light
// switch) the usage-relation examples reason about.
//
// The frame tree exercises §3's hierarchical coordinate systems: the
// floor frame is the building frame, and the NetLab has its own local
// frame with origin at the room's south-west corner, so objects inside
// it are specified in room-local coordinates.
func PaperFloor() *Building {
	b := &Building{
		Name:     "CS",
		Universe: geom.R(0, 0, 500, 100),
		Frames: []FrameSpec{
			{Name: "CS"},
			{Name: "CS/Floor3", Parent: "CS"},
			{Name: "CS/Floor3/NetLab", Parent: "CS/Floor3", Origin: geom.Pt(360, 0)},
		},
	}

	b.addPolygon("CS/Floor3", TypeFloor, geom.R(0, 0, 500, 100), nil)
	b.addPolygon("CS/Floor3/3105", TypeRoom, geom.R(320, 0, 350, 30), nil)
	b.addPolygon("CS/Floor3/NetLab", TypeRoom, geom.R(360, 0, 380, 30),
		map[string]string{"power-outlets": "yes", "bluetooth": "high"})
	b.addPolygon("CS/Floor3/HCILab", TypeRoom, geom.R(380, 0, 410, 30), nil)
	b.addPolygon("CS/Floor3/MainCorridor", TypeCorridor, geom.R(0, 30, 500, 45), nil)
	b.addPolygon("CS/Floor3/LabCorridor", TypeCorridor, geom.R(350, 0, 360, 30), nil)

	// display1 hangs on the NetLab's south wall and is specified in the
	// NetLab's local frame: local x 2..8 resolves to universe x 362..368.
	b.addLine("CS/Floor3/NetLab/display1", TypeDisplay,
		geom.Seg(geom.Pt(2, 0), geom.Pt(8, 0)),
		map[string]string{"usage-radius": "6"})
	// display2 is in the HCI lab, which has no local frame, so its
	// geometry is floor-frame.
	b.addLine("CS/Floor3/HCILab/display2", TypeDisplay,
		geom.Seg(geom.Pt(400, 0), geom.Pt(406, 0)),
		map[string]string{"usage-radius": "6"})
	// The light switch has no usage region configured.
	b.addPoint("CS/Floor3/3105/lightswitch1", TypeSwitch, geom.Pt(322, 2), nil)

	// Doors. Every room opens onto the main corridor; 3105 is behind a
	// card reader (restricted passage). The lab corridor joins the main
	// corridor but is walled off from the adjacent rooms.
	b.addDoor("CS/Floor3/NetLab", "CS/Floor3/MainCorridor",
		geom.Seg(geom.Pt(368, 30), geom.Pt(372, 30)), rcc.PassageFree)
	b.addDoor("CS/Floor3/HCILab", "CS/Floor3/MainCorridor",
		geom.Seg(geom.Pt(393, 30), geom.Pt(397, 30)), rcc.PassageFree)
	b.addDoor("CS/Floor3/3105", "CS/Floor3/MainCorridor",
		geom.Seg(geom.Pt(333, 30), geom.Pt(337, 30)), rcc.PassageRestricted)
	b.addDoor("CS/Floor3/LabCorridor", "CS/Floor3/MainCorridor",
		geom.Seg(geom.Pt(353, 30), geom.Pt(357, 30)), rcc.PassageFree)

	return b
}
