package building

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"middlewhere/internal/geom"
	"middlewhere/internal/rcc"
	"middlewhere/internal/topo"
)

func TestPaperFloorMaterializes(t *testing.T) {
	b := PaperFloor()
	db, err := b.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Objects()); got != len(b.Objects) {
		t.Errorf("db has %d objects, building declares %d", got, len(b.Objects))
	}
	if !db.Universe().Eq(geom.R(0, 0, 500, 100)) {
		t.Errorf("universe = %v", db.Universe())
	}
	if got := b.Rooms(); !reflect.DeepEqual(got, []string{
		"CS/Floor3/3105", "CS/Floor3/HCILab", "CS/Floor3/NetLab",
	}) {
		t.Errorf("rooms = %v", got)
	}
}

func TestPaperFloorRoomsDisjoint(t *testing.T) {
	b := PaperFloor()
	db, err := b.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	var regions []struct {
		id string
		r  geom.Rect
	}
	for _, o := range db.Objects() {
		if o.Type == TypeRoom || o.Type == TypeCorridor {
			regions = append(regions, struct {
				id string
				r  geom.Rect
			}{o.GLOB.String(), o.Bounds})
		}
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].r.Overlaps(regions[j].r) {
				t.Errorf("%s and %s share interior area", regions[i].id, regions[j].id)
			}
		}
	}
}

func TestPaperFloorEveryRegionReachable(t *testing.T) {
	b := PaperFloor()
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	all := g.Regions()
	if len(all) != 5 {
		t.Fatalf("regions = %d, want 5 (3 rooms + 2 corridors)", len(all))
	}
	reach, err := g.Reachable(all[0].ID, topo.AllowRestricted)
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) != len(all) {
		t.Errorf("only %d of %d regions reachable: %v", len(reach), len(all), reach)
	}
	// The locked office must not be reachable without a badge.
	free, err := g.Reachable("CS/Floor3/NetLab", topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range free {
		if id == "CS/Floor3/3105" {
			t.Error("3105 reachable through free passages")
		}
	}
}

func TestSyntheticShape(t *testing.T) {
	b := Synthetic("G", 3, 4, 10, 8, 4)
	if want := geom.R(0, 0, 40, 36); !b.Universe.Eq(want) {
		t.Errorf("universe = %v, want %v", b.Universe, want)
	}
	if got, want := len(b.Objects), 1+3+12; got != want {
		t.Errorf("objects = %d, want %d", got, want)
	}
	if got := len(b.Rooms()); got != 12 {
		t.Errorf("rooms = %d", got)
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	reach, err := g.Reachable("G/F/r0c0", topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(reach), 15; got != want {
		t.Errorf("reachable = %d regions, want %d", got, want)
	}
	// Regions tile the universe: total region area == universe area.
	var sum float64
	for _, r := range g.Regions() {
		sum += r.Rect.Area()
	}
	if diff := sum - b.Universe.Area(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("region area %v != universe area %v", sum, b.Universe.Area())
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic("D", 2, 3, 20, 15, 8)
	b := Synthetic("D", 2, 3, 20, 15, 8)
	if !reflect.DeepEqual(a, b) {
		t.Error("same arguments produced different plans")
	}
}

func TestMultiStorey(t *testing.T) {
	b := MultiStorey("T", 3, 2, 2, 10, 8, 4)
	if want := geom.R(0, 0, 20, 72); !b.Universe.Eq(want) {
		t.Errorf("universe = %v, want %v", b.Universe, want)
	}
	// Per floor: 1 floor object + 2 corridors + 4 rooms.
	if got, want := len(b.Objects), 3*(1+2+4); got != want {
		t.Errorf("objects = %d, want %d", got, want)
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// Stairwells connect the storeys: the whole building is one free
	// component.
	reach, err := g.Reachable("T/F0/r0c0", topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(reach), 3*(2+4); got != want {
		t.Errorf("reachable = %d regions, want %d", got, want)
	}
	// Floor frames offset room geometry: the same local room on floor 2
	// sits 48 units above its floor-0 twin.
	r0, ok := g.Region("T/F0/r0c0")
	if !ok {
		t.Fatal("missing T/F0/r0c0")
	}
	r2, ok := g.Region("T/F2/r0c0")
	if !ok {
		t.Fatal("missing T/F2/r0c0")
	}
	if want := geom.R(r0.Rect.Min.X, r0.Rect.Min.Y+48, r0.Rect.Max.X, r0.Rect.Max.Y+48); !r2.Rect.Eq(want) {
		t.Errorf("floor-2 room = %v, want %v", r2.Rect, want)
	}

	if !reflect.DeepEqual(b, MultiStorey("T", 3, 2, 2, 10, 8, 4)) {
		t.Error("same arguments produced different plans")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	orig := PaperFloor()
	var buf bytes.Buffer
	if err := orig.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip changed the building:\norig %+v\ngot  %+v", orig, got)
	}
	// The reloaded building materializes identically.
	db, err := got.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Objects()) != len(orig.Objects) {
		t.Errorf("reloaded db has %d objects", len(db.Objects()))
	}
}

func TestLoadPlanErrors(t *testing.T) {
	cases := map[string]string{
		"truncated":      `{`,
		"missing name":   `{"universe":{"minX":0,"minY":0,"maxX":10,"maxY":10},"frames":[{"name":"B"}]}`,
		"no frames":      `{"name":"B","universe":{"minX":0,"minY":0,"maxX":10,"maxY":10}}`,
		"empty universe": `{"name":"B","universe":{"minX":0,"minY":0,"maxX":0,"maxY":0},"frames":[{"name":"B"}]}`,
		"bad geometry kind": `{"name":"B","universe":{"minX":0,"minY":0,"maxX":10,"maxY":10},
			"frames":[{"name":"B"}],
			"objects":[{"glob":"B/room","type":"Room","kind":"blob","points":[[0,0],[1,0],[1,1],[0,1]]}]}`,
		"bad door kind": `{"name":"B","universe":{"minX":0,"minY":0,"maxX":10,"maxY":10},
			"frames":[{"name":"B"}],
			"objects":[{"glob":"B/room","type":"Room","kind":"polygon","points":[[0,0],[1,0],[1,1],[0,1]]}],
			"doors":[{"roomA":"B/room","roomB":"B/room","span":[0,0,1,0],"kind":"revolving"}]}`,
		"door to unknown region": `{"name":"B","universe":{"minX":0,"minY":0,"maxX":10,"maxY":10},
			"frames":[{"name":"B"}],
			"objects":[{"glob":"B/room","type":"Room","kind":"polygon","points":[[0,0],[1,0],[1,1],[0,1]]}],
			"doors":[{"roomA":"B/room","roomB":"B/ghost","span":[0,0,1,0],"kind":"free"}]}`,
		"unknown frame parent": `{"name":"B","universe":{"minX":0,"minY":0,"maxX":10,"maxY":10},
			"frames":[{"name":"B"},{"name":"B/f","parent":"B/ghost"}]}`,
	}
	for name, plan := range cases {
		if _, err := LoadPlan(strings.NewReader(plan)); err == nil {
			t.Errorf("%s: LoadPlan accepted a bad plan", name)
		}
	}
}

func TestGraphRejectsDoorToUnknownRegion(t *testing.T) {
	b := Synthetic("Z", 1, 1, 10, 8, 4)
	b.Doors = append(b.Doors, DoorSpec{
		RoomA: "Z/F/r0c0", RoomB: "Z/F/nowhere",
		Span: geom.Seg(geom.Pt(0, 0), geom.Pt(1, 0)), Kind: rcc.PassageFree,
	})
	if _, err := b.Graph(); err == nil {
		t.Error("Graph accepted a door to an unknown region")
	}
}
