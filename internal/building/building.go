// Package building holds the declarative model of a physical space:
// the coordinate frames, the universe rectangle, the rows of the
// physical-space table (floors, corridors, rooms, and static objects
// like displays), and the doors that connect regions. It is the §4.2
// "geometric model of the physical space" the spatial database is
// loaded from.
//
// A Building is pure data. NewDB materializes it into a spatial
// database (frame tree + R-tree-indexed object table) and Graph
// materializes it into the traversability graph the routing and
// relation layers consume. Buildings come from three places: the
// PaperFloor replica of the paper's Figure 5, the Synthetic and
// MultiStorey generators used by experiments and load tests, and
// LoadPlan, which parses the JSON floor-plan format so a new
// deployment needs no Go code (see plan.go).
package building

import (
	"fmt"
	"sort"

	"middlewhere/internal/coords"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/rcc"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

// Object types used by the building model. The core service and the
// query layer filter on these strings (Table 1's object classes).
const (
	TypeFloor    = "Floor"
	TypeRoom     = "Room"
	TypeCorridor = "Corridor"
	TypeDisplay  = "Display"
	TypeSwitch   = "Switch"
)

// FrameSpec declares one coordinate frame of the building's frame
// tree (§3's hierarchical coordinate systems). Frames are named by
// their GLOB path ("CS/Floor3/NetLab"); a frame with an empty Parent
// is a root. Parents must be declared before their children.
type FrameSpec struct {
	// Name is the frame's GLOB path.
	Name string
	// Parent is the parent frame's name; empty for a root frame.
	Parent string
	// Origin is the frame origin expressed in the parent frame.
	Origin geom.Point
	// Theta is the rotation relative to the parent, in radians.
	Theta float64
	// Scale is the unit scale relative to the parent; 0 means 1.
	Scale float64
}

// DoorSpec connects two regions with a door.
type DoorSpec struct {
	// RoomA and RoomB are the GLOB strings of the connected regions.
	RoomA, RoomB string
	// Span is the door segment in universe coordinates.
	Span geom.Segment
	// Kind says whether the passage is free or restricted.
	Kind rcc.Passage
}

// Building bundles coordinate frames, the universe rectangle, the
// object-table rows, and doors. It is immutable by convention once
// constructed; NewDB and Graph may be called repeatedly and
// concurrently.
type Building struct {
	// Name is the building's GLOB root segment (e.g. "CS").
	Name string
	// Universe is the bounding rectangle of all geometry, in the root
	// frame.
	Universe geom.Rect
	// Frames lists the coordinate frames, parents before children.
	Frames []FrameSpec
	// Objects are the physical-space table rows. LocalPoints are
	// expressed in the deepest registered frame of each object's GLOB
	// prefix; the spatial database resolves them to universe
	// coordinates on insert.
	Objects []spatialdb.Object
	// Doors connect Room/Corridor regions.
	Doors []DoorSpec
}

// frameTree builds the coordinate frame tree from the frame specs.
func (b *Building) frameTree() (*coords.Tree, error) {
	tree := coords.NewTree()
	for _, f := range b.Frames {
		var err error
		if f.Parent == "" {
			err = tree.AddRoot(f.Name)
		} else {
			err = tree.AddFrame(f.Name, f.Parent, coords.Transform{
				Origin: f.Origin, Theta: f.Theta, Scale: f.Scale,
			})
		}
		if err != nil {
			return nil, fmt.Errorf("building %s: frame %s: %w", b.Name, f.Name, err)
		}
	}
	return tree, nil
}

// NewDB materializes the building into a spatial database: it builds
// the frame tree, creates the database over the universe, and inserts
// every object (resolving local geometry into the root frame).
func (b *Building) NewDB() (*spatialdb.DB, error) {
	tree, err := b.frameTree()
	if err != nil {
		return nil, err
	}
	db := spatialdb.New(tree, b.Universe)
	for _, o := range b.Objects {
		if err := db.InsertObject(o); err != nil {
			return nil, fmt.Errorf("building %s: object %s: %w", b.Name, o.GLOB, err)
		}
	}
	return db, nil
}

// Graph materializes the traversability graph: every Room and
// Corridor becomes a region node (keyed by its GLOB string, with its
// universe-frame MBR), and every DoorSpec becomes a door edge.
func (b *Building) Graph() (*topo.Graph, error) {
	db, err := b.NewDB()
	if err != nil {
		return nil, err
	}
	g := topo.NewGraph()
	for _, o := range db.Objects() {
		if o.Type == TypeRoom || o.Type == TypeCorridor {
			g.AddRegion(o.GLOB.String(), o.Bounds)
		}
	}
	for _, d := range b.Doors {
		if err := g.AddDoor(d.RoomA, d.RoomB, rcc.Door{Span: d.Span, Kind: d.Kind}); err != nil {
			return nil, fmt.Errorf("building %s: door %s-%s: %w", b.Name, d.RoomA, d.RoomB, err)
		}
	}
	return g, nil
}

// Rooms returns the GLOB strings of all Room objects, sorted.
func (b *Building) Rooms() []string {
	var out []string
	for _, o := range b.Objects {
		if o.Type == TypeRoom {
			out = append(out, o.GLOB.String())
		}
	}
	sort.Strings(out)
	return out
}

// addPolygon appends a polygon object whose local geometry is the
// four corners of r (expressed in the object's prefix frame).
func (b *Building) addPolygon(globStr, typ string, r geom.Rect, props map[string]string) {
	b.Objects = append(b.Objects, spatialdb.Object{
		GLOB:        glob.MustParse(globStr),
		Type:        typ,
		Kind:        glob.KindPolygon,
		LocalPoints: r.Vertices(),
		Properties:  props,
	})
}

// addLine appends a line object (e.g. a wall-mounted display).
func (b *Building) addLine(globStr, typ string, s geom.Segment, props map[string]string) {
	b.Objects = append(b.Objects, spatialdb.Object{
		GLOB:        glob.MustParse(globStr),
		Type:        typ,
		Kind:        glob.KindLine,
		LocalPoints: []geom.Point{s.A, s.B},
		Properties:  props,
	})
}

// addPoint appends a point object (e.g. a light switch).
func (b *Building) addPoint(globStr, typ string, p geom.Point, props map[string]string) {
	b.Objects = append(b.Objects, spatialdb.Object{
		GLOB:        glob.MustParse(globStr),
		Type:        typ,
		Kind:        glob.KindPoint,
		LocalPoints: []geom.Point{p},
		Properties:  props,
	})
}

// addDoor appends a door between two regions.
func (b *Building) addDoor(roomA, roomB string, span geom.Segment, kind rcc.Passage) {
	b.Doors = append(b.Doors, DoorSpec{RoomA: roomA, RoomB: roomB, Span: span, Kind: kind})
}
