// Package calibrate implements the paper's stated future work (§11):
// estimating the sensor-model parameters from observation data instead
// of asserting them — "we plan to conduct user studies to get accurate
// values of various parameters of our system like the probability of
// carrying location devices and the temporal degradation function".
//
// It provides three estimators:
//
//   - EstimateYZ: detection probability y and misreport probability z
//     from ground-truth-labelled detection trials (the calibration
//     pass §6 requires when a new technology is installed),
//   - EstimateCarry: the carry probability x, either from labelled
//     episodes or — when carriage is unobservable, the realistic case —
//     by expectation-maximization over per-episode detection counts,
//   - FitTDF: a temporal degradation function fitted to empirical
//     still-valid fractions by age, choosing between the exponential
//     and linear families by squared error.
package calibrate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"middlewhere/internal/model"
)

// Sentinel errors.
var (
	ErrNoData   = errors.New("calibrate: no data")
	ErrBadInput = errors.New("calibrate: bad input")
)

// Trial is one labelled detection opportunity: the ground truth says
// whether the person (with their device) was inside the sensed region,
// and the sensor either reported them there or not.
type Trial struct {
	// Present is the ground truth: person in the region.
	Present bool
	// Detected is the sensor's verdict: reported in the region.
	Detected bool
}

// YZEstimate carries the detection-model estimate with its sample
// sizes.
type YZEstimate struct {
	// Y estimates P(detected | present); N(Present) trials support it.
	Y float64
	// Z estimates P(detected | absent); N(Absent) trials support it.
	Z float64
	// PresentTrials and AbsentTrials are the respective sample sizes.
	PresentTrials, AbsentTrials int
}

// EstimateYZ computes y and z from labelled trials with add-one
// (Laplace) smoothing so a finite calibration run never yields the
// degenerate 0 or 1.
func EstimateYZ(trials []Trial) (YZEstimate, error) {
	if len(trials) == 0 {
		return YZEstimate{}, ErrNoData
	}
	var est YZEstimate
	var detPresent, detAbsent int
	for _, tr := range trials {
		if tr.Present {
			est.PresentTrials++
			if tr.Detected {
				detPresent++
			}
		} else {
			est.AbsentTrials++
			if tr.Detected {
				detAbsent++
			}
		}
	}
	if est.PresentTrials == 0 {
		return YZEstimate{}, fmt.Errorf("%w: no present trials", ErrNoData)
	}
	est.Y = float64(detPresent+1) / float64(est.PresentTrials+2)
	if est.AbsentTrials == 0 {
		est.Z = 0
	} else {
		est.Z = float64(detAbsent+1) / float64(est.AbsentTrials+2)
	}
	return est, nil
}

// Episode summarizes one presence episode for carry estimation: the
// person was inside the coverage area for Opportunities independent
// detection chances and was detected Detections times.
type Episode struct {
	Opportunities int
	Detections    int
}

// EstimateCarryLabelled computes x from episodes where carriage is
// known: x = carrying episodes / all episodes (with Laplace
// smoothing).
func EstimateCarryLabelled(carrying []bool) (float64, error) {
	if len(carrying) == 0 {
		return 0, ErrNoData
	}
	n := 0
	for _, c := range carrying {
		if c {
			n++
		}
	}
	return float64(n+1) / float64(len(carrying)+2), nil
}

// EstimateCarryEM estimates x (the probability a person carries the
// device) when carriage is not directly observable: each episode's
// detection count is modelled as Binomial(opportunities, y) when
// carrying and Binomial(opportunities, z) when not, and EM alternates
// between the per-episode carriage posterior and the x update. y and z
// come from EstimateYZ (or the spec). It returns the estimate and the
// number of iterations to convergence.
func EstimateCarryEM(episodes []Episode, y, z float64) (float64, int, error) {
	if len(episodes) == 0 {
		return 0, 0, ErrNoData
	}
	if y <= 0 || y >= 1 || z < 0 || z >= 1 || y <= z {
		return 0, 0, fmt.Errorf("%w: need 0 < z < y < 1 (y=%v z=%v)", ErrBadInput, y, z)
	}
	for _, e := range episodes {
		if e.Opportunities <= 0 || e.Detections < 0 || e.Detections > e.Opportunities {
			return 0, 0, fmt.Errorf("%w: episode %+v", ErrBadInput, e)
		}
	}
	// Use a floor for z in the likelihood so zero-detection episodes
	// under z=0 remain representable.
	zEff := math.Max(z, 1e-9)
	x := 0.5
	const maxIter = 200
	for iter := 1; iter <= maxIter; iter++ {
		// E step: posterior carriage probability per episode.
		var sum float64
		for _, e := range episodes {
			logCarry := math.Log(x) + binLogPMF(e.Opportunities, e.Detections, y)
			logNot := math.Log(1-x) + binLogPMF(e.Opportunities, e.Detections, zEff)
			sum += 1 / (1 + math.Exp(logNot-logCarry))
		}
		// M step.
		next := sum / float64(len(episodes))
		// Keep x interior so EM cannot stall on the boundary.
		next = math.Min(math.Max(next, 1e-6), 1-1e-6)
		if math.Abs(next-x) < 1e-9 {
			return next, iter, nil
		}
		x = next
	}
	return x, maxIter, nil
}

// binLogPMF is the log Binomial(n, p) pmf at k.
func binLogPMF(n, k int, p float64) float64 {
	return logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// logChoose is log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// DecaySample is one empirical point for tdf fitting: of the readings
// that reached this age, Fraction were still correct (the person was
// still in the reported region).
type DecaySample struct {
	Age      time.Duration
	Fraction float64
}

// TDFFit is the result of FitTDF.
type TDFFit struct {
	// TDF is the fitted function.
	TDF model.TDF
	// Family is "exponential" or "linear".
	Family string
	// SSE is the sum of squared errors of the chosen fit.
	SSE float64
}

// FitTDF fits the empirical decay curve with both the exponential and
// linear families and returns the better fit (§3.2 allows continuous
// degradation of either shape). Samples need not be sorted; fractions
// are clamped to [0, 1].
func FitTDF(samples []DecaySample) (TDFFit, error) {
	if len(samples) < 2 {
		return TDFFit{}, fmt.Errorf("%w: need at least 2 samples", ErrNoData)
	}
	pts := append([]DecaySample(nil), samples...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Age < pts[j].Age })
	for i := range pts {
		pts[i].Fraction = math.Min(1, math.Max(0, pts[i].Fraction))
	}

	expFit := fitExponential(pts)
	linFit := fitLinear(pts)
	if expFit.SSE <= linFit.SSE {
		return expFit, nil
	}
	return linFit, nil
}

// fitExponential fits f(t) = 2^(-t/h) by least squares on the log of
// the positive fractions: log2 f = -t/h is a through-origin line.
func fitExponential(pts []DecaySample) TDFFit {
	var sumTT, sumTY float64
	n := 0
	for _, p := range pts {
		if p.Fraction <= 0 || p.Age <= 0 {
			continue
		}
		t := p.Age.Seconds()
		y := math.Log2(p.Fraction)
		sumTT += t * t
		sumTY += t * y
		n++
	}
	if n == 0 || sumTY >= 0 {
		// No decay signal: infinite half-life approximated by a very
		// long one.
		return TDFFit{TDF: model.ExponentialTDF{HalfLife: 24 * time.Hour},
			Family: "exponential", SSE: sse(pts, model.ExponentialTDF{HalfLife: 24 * time.Hour})}
	}
	slope := sumTY / sumTT // = -1/h
	h := -1 / slope
	tdf := model.ExponentialTDF{HalfLife: time.Duration(h * float64(time.Second))}
	return TDFFit{TDF: tdf, Family: "exponential", SSE: sse(pts, tdf)}
}

// fitLinear fits f(t) = max(0, 1 - t/span) by scanning candidate spans
// anchored at each sample (closed-form least squares with the hinge is
// awkward; the sample count is tiny).
func fitLinear(pts []DecaySample) TDFFit {
	best := TDFFit{Family: "linear", SSE: math.Inf(1)}
	maxAge := pts[len(pts)-1].Age.Seconds()
	for i := 1; i <= 200; i++ {
		span := maxAge * float64(i) / 100 // spans up to 2x the horizon
		if span <= 0 {
			continue
		}
		tdf := model.LinearTDF{Span: time.Duration(span * float64(time.Second))}
		if s := sse(pts, tdf); s < best.SSE {
			best.SSE = s
			best.TDF = tdf
		}
	}
	return best
}

// sse scores a tdf against the samples (confidence 1 at age 0).
func sse(pts []DecaySample, tdf model.TDF) float64 {
	var sum float64
	for _, p := range pts {
		d := tdf.Degrade(1, p.Age) - p.Fraction
		sum += d * d
	}
	return sum
}

// CalibrateSpec assembles a full SensorSpec from estimates: the
// workflow §6 describes for installing a new location technology.
func CalibrateSpec(techType string, yz YZEstimate, carry float64, fit TDFFit,
	resolution model.Resolution, ttl time.Duration) (model.SensorSpec, error) {
	spec := model.SensorSpec{
		Type:       techType,
		Errors:     model.ErrorModel{X: carry, Y: yz.Y, Z: yz.Z},
		Resolution: resolution,
		TTL:        ttl,
		Degrade:    fit.TDF,
	}
	if err := spec.Validate(); err != nil {
		return model.SensorSpec{}, err
	}
	return spec, nil
}
