package calibrate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"middlewhere/internal/model"
)

func TestEstimateYZRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueY, trueZ := 0.92, 0.04
	var trials []Trial
	for i := 0; i < 5000; i++ {
		present := rng.Float64() < 0.5
		var detected bool
		if present {
			detected = rng.Float64() < trueY
		} else {
			detected = rng.Float64() < trueZ
		}
		trials = append(trials, Trial{Present: present, Detected: detected})
	}
	est, err := EstimateYZ(trials)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Y-trueY) > 0.03 {
		t.Errorf("Y = %v, want ~%v", est.Y, trueY)
	}
	if math.Abs(est.Z-trueZ) > 0.02 {
		t.Errorf("Z = %v, want ~%v", est.Z, trueZ)
	}
	if est.PresentTrials+est.AbsentTrials != 5000 {
		t.Errorf("trial counts = %d + %d", est.PresentTrials, est.AbsentTrials)
	}
}

func TestEstimateYZSmoothing(t *testing.T) {
	// Perfect detections never estimate to exactly 1 (Laplace).
	trials := []Trial{
		{Present: true, Detected: true},
		{Present: true, Detected: true},
		{Present: false, Detected: false},
	}
	est, err := EstimateYZ(trials)
	if err != nil {
		t.Fatal(err)
	}
	if est.Y >= 1 || est.Y <= 0.5 {
		t.Errorf("Y = %v", est.Y)
	}
	if est.Z <= 0 || est.Z >= 0.5 {
		t.Errorf("Z = %v", est.Z)
	}
}

func TestEstimateYZErrors(t *testing.T) {
	if _, err := EstimateYZ(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	// Only absent trials: no basis for y.
	if _, err := EstimateYZ([]Trial{{Present: false}}); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestEstimateCarryLabelled(t *testing.T) {
	x, err := EstimateCarryLabelled([]bool{true, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	// (3+1)/(4+2) = 0.667
	if math.Abs(x-2.0/3) > 1e-9 {
		t.Errorf("x = %v", x)
	}
	if _, err := EstimateCarryLabelled(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestEstimateCarryEMRecoversX(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trueX, y, z := 0.7, 0.9, 0.02
	var episodes []Episode
	for i := 0; i < 800; i++ {
		carrying := rng.Float64() < trueX
		opps := 5 + rng.Intn(10)
		det := 0
		p := z
		if carrying {
			p = y
		}
		for k := 0; k < opps; k++ {
			if rng.Float64() < p {
				det++
			}
		}
		episodes = append(episodes, Episode{Opportunities: opps, Detections: det})
	}
	x, iters, err := EstimateCarryEM(episodes, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-trueX) > 0.05 {
		t.Errorf("x = %v after %d iters, want ~%v", x, iters, trueX)
	}
	if iters < 1 || iters > 200 {
		t.Errorf("iters = %d", iters)
	}
}

func TestEstimateCarryEMExtremes(t *testing.T) {
	// Everyone carries: detection counts all high.
	episodes := make([]Episode, 50)
	for i := range episodes {
		episodes[i] = Episode{Opportunities: 10, Detections: 9}
	}
	x, _, err := EstimateCarryEM(episodes, 0.9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if x < 0.95 {
		t.Errorf("all-carrying x = %v", x)
	}
	// Nobody carries.
	for i := range episodes {
		episodes[i] = Episode{Opportunities: 10, Detections: 0}
	}
	x, _, err = EstimateCarryEM(episodes, 0.9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if x > 0.05 {
		t.Errorf("none-carrying x = %v", x)
	}
}

func TestEstimateCarryEMValidation(t *testing.T) {
	good := []Episode{{Opportunities: 5, Detections: 3}}
	if _, _, err := EstimateCarryEM(nil, 0.9, 0.1); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := EstimateCarryEM(good, 0.1, 0.9); !errors.Is(err, ErrBadInput) {
		t.Errorf("y<z err = %v", err)
	}
	if _, _, err := EstimateCarryEM(good, 1.0, 0.1); !errors.Is(err, ErrBadInput) {
		t.Errorf("y=1 err = %v", err)
	}
	bad := []Episode{{Opportunities: 3, Detections: 5}}
	if _, _, err := EstimateCarryEM(bad, 0.9, 0.1); !errors.Is(err, ErrBadInput) {
		t.Errorf("det>opp err = %v", err)
	}
}

func TestFitTDFExponential(t *testing.T) {
	// Samples from a 5-second half-life.
	trueTDF := model.ExponentialTDF{HalfLife: 5 * time.Second}
	var samples []DecaySample
	for _, age := range []time.Duration{time.Second, 3 * time.Second, 5 * time.Second,
		10 * time.Second, 20 * time.Second} {
		samples = append(samples, DecaySample{Age: age, Fraction: trueTDF.Degrade(1, age)})
	}
	fit, err := FitTDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Family != "exponential" {
		t.Fatalf("family = %s (sse %v)", fit.Family, fit.SSE)
	}
	got := fit.TDF.(model.ExponentialTDF).HalfLife
	if got < 4500*time.Millisecond || got > 5500*time.Millisecond {
		t.Errorf("half-life = %v, want ~5s", got)
	}
}

func TestFitTDFLinear(t *testing.T) {
	trueTDF := model.LinearTDF{Span: 30 * time.Second}
	var samples []DecaySample
	for _, age := range []time.Duration{2 * time.Second, 10 * time.Second,
		20 * time.Second, 28 * time.Second, 35 * time.Second} {
		samples = append(samples, DecaySample{Age: age, Fraction: trueTDF.Degrade(1, age)})
	}
	fit, err := FitTDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Family != "linear" {
		t.Fatalf("family = %s (sse %v)", fit.Family, fit.SSE)
	}
	got := fit.TDF.(model.LinearTDF).Span
	if got < 27*time.Second || got > 33*time.Second {
		t.Errorf("span = %v, want ~30s", got)
	}
}

func TestFitTDFNoDecay(t *testing.T) {
	// Flat data: the exponential fit degenerates to a huge half-life
	// rather than dividing by zero.
	samples := []DecaySample{
		{Age: time.Second, Fraction: 1},
		{Age: 10 * time.Second, Fraction: 1},
	}
	fit, err := FitTDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.TDF.Degrade(1, 30*time.Second); got < 0.9 {
		t.Errorf("no-decay fit degrades too fast: %v", got)
	}
}

func TestFitTDFErrors(t *testing.T) {
	if _, err := FitTDF(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitTDF([]DecaySample{{Age: time.Second, Fraction: 0.5}}); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestCalibrateSpecEndToEnd(t *testing.T) {
	// The full §6 installation workflow on synthetic study data.
	rng := rand.New(rand.NewSource(3))
	trueY, trueZ, trueX := 0.85, 0.03, 0.75
	var trials []Trial
	for i := 0; i < 3000; i++ {
		present := rng.Float64() < 0.5
		p := trueZ
		if present {
			p = trueY
		}
		trials = append(trials, Trial{Present: present, Detected: rng.Float64() < p})
	}
	yz, err := EstimateYZ(trials)
	if err != nil {
		t.Fatal(err)
	}
	var episodes []Episode
	for i := 0; i < 400; i++ {
		carrying := rng.Float64() < trueX
		p := trueZ
		if carrying {
			p = trueY
		}
		e := Episode{Opportunities: 8}
		for k := 0; k < e.Opportunities; k++ {
			if rng.Float64() < p {
				e.Detections++
			}
		}
		episodes = append(episodes, e)
	}
	x, _, err := EstimateCarryEM(episodes, yz.Y, yz.Z)
	if err != nil {
		t.Fatal(err)
	}
	trueTDF := model.ExponentialTDF{HalfLife: 4 * time.Second}
	var decay []DecaySample
	for _, age := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		decay = append(decay, DecaySample{Age: age, Fraction: trueTDF.Degrade(1, age)})
	}
	fit, err := FitTDF(decay)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := CalibrateSpec("studied-tech", yz, x, fit,
		model.DistanceResolution(3), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Errors.DetectProb() <= spec.Errors.FalseProb() {
		t.Errorf("calibrated spec uninformative: %+v", spec.Errors)
	}
	if math.Abs(spec.Errors.X-trueX) > 0.08 {
		t.Errorf("calibrated x = %v, want ~%v", spec.Errors.X, trueX)
	}
	// Invalid assembled specs are rejected.
	if _, err := CalibrateSpec("", yz, x, fit, model.DistanceResolution(3), time.Second); err == nil {
		t.Error("empty type should fail")
	}
}
