package glob

import (
	"errors"
	"testing"
	"testing/quick"

	"middlewhere/internal/geom"
)

func TestParseSymbolic(t *testing.T) {
	tests := []struct {
		give     string
		wantPath []string
		wantKind Kind
	}{
		{"SC/3/3216/lightswitch1", []string{"SC", "3", "3216", "lightswitch1"}, KindSymbolic},
		{"SC/3/3216", []string{"SC", "3", "3216"}, KindSymbolic},
		{"SC", []string{"SC"}, KindSymbolic},
		{"/SC/3/", []string{"SC", "3"}, KindSymbolic}, // tolerant of stray slashes
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			g, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if len(g.Path) != len(tt.wantPath) {
				t.Fatalf("path = %v, want %v", g.Path, tt.wantPath)
			}
			for i := range tt.wantPath {
				if g.Path[i] != tt.wantPath[i] {
					t.Errorf("path[%d] = %q, want %q", i, g.Path[i], tt.wantPath[i])
				}
			}
			if g.Kind() != tt.wantKind {
				t.Errorf("kind = %v, want %v", g.Kind(), tt.wantKind)
			}
			if !g.IsSymbolic() || g.IsCoordinate() {
				t.Error("should be symbolic")
			}
		})
	}
}

func TestParseCoordinate(t *testing.T) {
	tests := []struct {
		give       string
		wantPath   []string
		wantCoords []Coord
		wantKind   Kind
	}{
		{
			give:       "SC/3/3216/(12,3,4)",
			wantPath:   []string{"SC", "3", "3216"},
			wantCoords: []Coord{{X: 12, Y: 3, Z: 4, Has3D: true}},
			wantKind:   KindPoint,
		},
		{
			give:       "SC/3/3216/(1,3),(4,5)",
			wantPath:   []string{"SC", "3", "3216"},
			wantCoords: []Coord{{X: 1, Y: 3}, {X: 4, Y: 5}},
			wantKind:   KindLine,
		},
		{
			give:     "SC/3/(45,12),(45,40),(65,40),(65,12)",
			wantPath: []string{"SC", "3"},
			wantCoords: []Coord{
				{X: 45, Y: 12}, {X: 45, Y: 40}, {X: 65, Y: 40}, {X: 65, Y: 12},
			},
			wantKind: KindPolygon,
		},
		{
			give:       "(1.5,-2.25)",
			wantPath:   nil,
			wantCoords: []Coord{{X: 1.5, Y: -2.25}},
			wantKind:   KindPoint,
		},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			g, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if len(g.Path) != len(tt.wantPath) {
				t.Fatalf("path = %v, want %v", g.Path, tt.wantPath)
			}
			if len(g.Coords) != len(tt.wantCoords) {
				t.Fatalf("coords = %v, want %v", g.Coords, tt.wantCoords)
			}
			for i := range tt.wantCoords {
				if g.Coords[i] != tt.wantCoords[i] {
					t.Errorf("coord[%d] = %v, want %v", i, g.Coords[i], tt.wantCoords[i])
				}
			}
			if g.Kind() != tt.wantKind {
				t.Errorf("kind = %v, want %v", g.Kind(), tt.wantKind)
			}
			if !g.IsCoordinate() {
				t.Error("should be coordinate")
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		give    string
		wantErr error
	}{
		{"", ErrEmpty},
		{"   ", ErrEmpty},
		{"//", ErrEmpty},
		{"SC/3/(1,2/room", ErrBadCoord},   // unterminated tuple
		{"SC/3/(1)", ErrBadCoord},         // 1-component tuple
		{"SC/3/(1,2,3,4)", ErrBadCoord},   // 4-component tuple
		{"SC/3/(a,b)", ErrBadCoord},       // non-numeric
		{"SC/3/room(1,2)", ErrBadSegment}, // mixed segment
		{"SC/3/3216/()", ErrBadCoord},     // empty tuple
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			_, err := Parse(tt.give)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"SC/3/3216/lightswitch1",
		"SC/3/3216/(12,3,4)",
		"SC/3/3216/(1,3),(4,5)",
		"SC/3/(45,12),(45,40),(65,40),(65,12)",
		"SC",
		"(0,0),(1,0),(1,1)",
	}
	for _, in := range inputs {
		g := MustParse(in)
		if got := g.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
		// Parse(String()) is identity.
		again := MustParse(g.String())
		if !again.Equal(g) {
			t.Errorf("reparse of %q differs", in)
		}
	}
}

func TestPrefixNameDepth(t *testing.T) {
	g := MustParse("SC/3/3216/lightswitch1")
	if g.Depth() != 4 {
		t.Errorf("Depth = %d", g.Depth())
	}
	if g.Name() != "lightswitch1" {
		t.Errorf("Name = %q", g.Name())
	}
	if got := g.Prefix().String(); got != "SC/3/3216" {
		t.Errorf("Prefix = %q", got)
	}
	c := MustParse("SC/3/3216/(1,2)")
	if got := c.Prefix().String(); got != "SC/3/3216" {
		t.Errorf("coordinate Prefix = %q", got)
	}
	if got := MustParse("SC").Prefix(); !got.IsZero() {
		t.Errorf("root Prefix = %v, want zero", got)
	}
}

func TestChildAndHasPrefix(t *testing.T) {
	floor := Symbolic("SC", "3")
	room := floor.Child("3216")
	if room.String() != "SC/3/3216" {
		t.Errorf("Child = %q", room.String())
	}
	if !room.HasPrefix(floor) {
		t.Error("room should have floor prefix")
	}
	if !room.HasPrefix(room) {
		t.Error("prefix is reflexive")
	}
	if floor.HasPrefix(room) {
		t.Error("floor must not have room prefix")
	}
	other := Symbolic("SC", "4")
	if room.HasPrefix(other) {
		t.Error("different floor is not a prefix")
	}
	coord := MustParse("SC/3/(1,2)")
	if !coord.HasPrefix(floor) {
		t.Error("coordinate GLOB should inherit path prefix")
	}
	if room.HasPrefix(coord) {
		t.Error("coordinate GLOB cannot be a prefix")
	}
}

func TestTruncatePrivacy(t *testing.T) {
	tests := []struct {
		name string
		give string
		gran Granularity
		want string
	}{
		{"point to room", "SC/3/3216/(12,3,4)", GranRoom, "SC/3/3216"},
		{"object to floor", "SC/3/3216/lightswitch1", GranFloor, "SC/3"},
		{"room to building", "SC/3/3216", GranBuilding, "SC"},
		{"already coarse", "SC", GranRoom, "SC"},
		{"room at room", "SC/3/3216", GranRoom, "SC/3/3216"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MustParse(tt.give).Truncate(tt.gran)
			if got.String() != tt.want {
				t.Errorf("Truncate = %q, want %q", got.String(), tt.want)
			}
		})
	}
	if got := MustParse("SC/3").Truncate(0); !got.IsZero() {
		t.Errorf("Truncate(0) = %v, want zero", got)
	}
}

func TestGeometryAndBounds(t *testing.T) {
	poly := MustParse("SC/3/(0,0),(4,0),(4,2),(0,2)")
	g, ok := poly.Geometry()
	if !ok {
		t.Fatal("Geometry should resolve for coordinate GLOB")
	}
	if a := g.Area(); a != 8 {
		t.Errorf("area = %v, want 8", a)
	}
	b, ok := poly.Bounds()
	if !ok || !b.Eq(geom.R(0, 0, 4, 2)) {
		t.Errorf("Bounds = %v ok=%v", b, ok)
	}
	sym := MustParse("SC/3/3216")
	if _, ok := sym.Geometry(); ok {
		t.Error("symbolic GLOB must not resolve geometry")
	}
	if _, ok := sym.Bounds(); ok {
		t.Error("symbolic GLOB must not resolve bounds")
	}
}

func TestConstructors(t *testing.T) {
	prefix := Symbolic("SC", "3")
	pt := CoordinatePoint(prefix, geom.Pt(1, 2))
	if pt.String() != "SC/3/(1,2)" {
		t.Errorf("CoordinatePoint = %q", pt.String())
	}
	r := CoordinateRect(prefix, geom.R(0, 0, 2, 1))
	if r.Kind() != KindPolygon || len(r.Coords) != 4 {
		t.Errorf("CoordinateRect = %v", r)
	}
	if b, _ := r.Bounds(); !b.Eq(geom.R(0, 0, 2, 1)) {
		t.Errorf("rect bounds = %v", b)
	}
	// Constructors copy their inputs: mutating the prefix afterwards
	// must not change the constructed GLOB.
	prefix.Path[0] = "XX"
	if pt.Path[0] != "SC" {
		t.Error("CoordinatePoint aliased prefix path")
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{KindSymbolic, "symbolic"},
		{KindPoint, "point"},
		{KindLine, "line"},
		{KindPolygon, "polygon"},
		{Kind(42), "Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestGranularityString(t *testing.T) {
	if GranBuilding.String() != "building" || GranFloor.String() != "floor" ||
		GranRoom.String() != "room" || Granularity(7).String() != "depth7" {
		t.Error("Granularity.String mismatch")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Any GLOB built from sane segments and coordinates survives a
	// String/Parse round trip.
	f := func(a, b uint8, xs []float64) bool {
		segs := []string{"B" + itoa(int(a)%10), "F" + itoa(int(b)%10)}
		g := Symbolic(segs...)
		if len(xs) >= 2 {
			n := len(xs) / 2
			if n > 6 {
				n = 6
			}
			for i := 0; i < n; i++ {
				x, y := sanitize(xs[2*i]), sanitize(xs[2*i+1])
				g.Coords = append(g.Coords, Coord{X: x, Y: y})
			}
		}
		got, err := Parse(g.String())
		return err == nil && got.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// sanitize maps arbitrary floats to finite, round-trippable values.
func sanitize(v float64) float64 {
	if v != v || v > 1e9 || v < -1e9 { // NaN or huge
		return 0
	}
	return float64(int64(v*100)) / 100
}

func TestQuickParserNeverPanics(t *testing.T) {
	// Arbitrary byte soup must produce an error or a GLOB, never a
	// panic, and any successfully parsed GLOB must re-parse from its
	// own String().
	f := func(raw []byte) bool {
		s := string(raw)
		g, err := Parse(s)
		if err != nil {
			return true
		}
		again, err := Parse(g.String())
		return err == nil && again.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
