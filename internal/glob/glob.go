// Package glob implements the GLOB (Gaia LOcation Byte-string), the
// hierarchical location representation of MiddleWhere (§3.1).
//
// A GLOB reads like a directory path. Each segment either names a
// symbolic location in the namespace of its prefix, or — only in the
// last position — is a coordinate list that expresses a geometry with
// respect to the coordinate system of the prefix:
//
//	SC/3/3216/lightswitch1          symbolic point
//	SC/3/3216/(12,3,4)              coordinate point in room 3216's frame
//	SC/3/3216/Door2                 symbolic line
//	SC/3/3216/(1,3),(4,5)           coordinate line
//	SC/3/3216                       symbolic region (the room itself)
//	SC/3/(45,12),(45,40),(65,40),(65,12)   coordinate polygon in the floor frame
//
// Coordinates may be 2-D (x,y) or 3-D (x,y,z); MiddleWhere reasons in
// the floor plane, so Z is carried through but does not participate in
// planar geometry.
package glob

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"middlewhere/internal/geom"
)

// Kind classifies the geometry a GLOB denotes.
type Kind int

// The geometry kinds a GLOB can denote. Symbolic GLOBs have KindSymbolic
// until the spatial database resolves the named object's geometry.
const (
	KindSymbolic Kind = iota + 1
	KindPoint
	KindLine
	KindPolygon
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSymbolic:
		return "symbolic"
	case KindPoint:
		return "point"
	case KindLine:
		return "line"
	case KindPolygon:
		return "polygon"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Granularity names the depth of a GLOB prefix. MiddleWhere's privacy
// constraints (§4.5) reveal a location only up to a granularity.
type Granularity int

// The standard indoor granularity levels. Depth counts path segments:
// SC is depth 1 (building), SC/3 depth 2 (floor), SC/3/3216 depth 3
// (room), anything deeper is sub-room.
const (
	GranBuilding Granularity = 1
	GranFloor    Granularity = 2
	GranRoom     Granularity = 3
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranBuilding:
		return "building"
	case GranFloor:
		return "floor"
	case GranRoom:
		return "room"
	default:
		return fmt.Sprintf("depth%d", int(g))
	}
}

// Coord is one coordinate tuple inside a GLOB. Z is zero for 2-D
// tuples; Has3D records whether the source text carried a third
// component so formatting round-trips.
type Coord struct {
	X, Y, Z float64
	Has3D   bool
}

// Point returns the planar projection of c.
func (c Coord) Point() geom.Point { return geom.Pt(c.X, c.Y) }

// String implements fmt.Stringer.
func (c Coord) String() string {
	if c.Has3D {
		return fmt.Sprintf("(%s,%s,%s)", ftoa(c.X), ftoa(c.Y), ftoa(c.Z))
	}
	return fmt.Sprintf("(%s,%s)", ftoa(c.X), ftoa(c.Y))
}

// GLOB is a parsed Gaia LOcation Byte-string: a symbolic path plus an
// optional trailing coordinate list. The zero GLOB is empty and
// invalid; construct values with Parse, Symbolic, or the Coordinate
// helpers.
type GLOB struct {
	// Path holds the symbolic segments, outermost first.
	Path []string
	// Coords holds the trailing coordinate list. Empty for purely
	// symbolic GLOBs.
	Coords []Coord
}

// Sentinel errors returned by Parse.
var (
	ErrEmpty        = errors.New("glob: empty GLOB")
	ErrBadSegment   = errors.New("glob: bad segment")
	ErrBadCoord     = errors.New("glob: bad coordinate")
	ErrInteriorPath = errors.New("glob: coordinates must be the final component")
)

// Symbolic builds a purely symbolic GLOB from path segments.
func Symbolic(segments ...string) GLOB {
	return GLOB{Path: append([]string(nil), segments...)}
}

// CoordinatePoint builds a coordinate point GLOB under prefix.
func CoordinatePoint(prefix GLOB, p geom.Point) GLOB {
	return GLOB{
		Path:   append([]string(nil), prefix.Path...),
		Coords: []Coord{{X: p.X, Y: p.Y}},
	}
}

// CoordinatePolygon builds a coordinate polygon GLOB under prefix.
func CoordinatePolygon(prefix GLOB, poly geom.Polygon) GLOB {
	cs := make([]Coord, len(poly))
	for i, p := range poly {
		cs[i] = Coord{X: p.X, Y: p.Y}
	}
	return GLOB{Path: append([]string(nil), prefix.Path...), Coords: cs}
}

// CoordinateRect builds a coordinate polygon GLOB for an MBR under
// prefix.
func CoordinateRect(prefix GLOB, r geom.Rect) GLOB {
	return CoordinatePolygon(prefix, r.Polygon())
}

// Parse parses the textual form of a GLOB.
func Parse(s string) (GLOB, error) {
	s = strings.TrimSpace(s)
	s = strings.Trim(s, "/")
	if s == "" {
		return GLOB{}, ErrEmpty
	}
	var g GLOB
	rest := s
	for rest != "" {
		if rest[0] == '(' {
			// The remainder must be the coordinate list; it may itself
			// contain '/' only inside nothing (coordinates use commas),
			// so the whole remainder is one component.
			coords, err := parseCoords(rest)
			if err != nil {
				return GLOB{}, err
			}
			g.Coords = coords
			return g, nil
		}
		seg := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if seg == "" {
			return GLOB{}, fmt.Errorf("%w: empty segment in %q", ErrBadSegment, s)
		}
		if strings.ContainsAny(seg, "()") {
			return GLOB{}, fmt.Errorf("%w: segment %q mixes name and coordinates", ErrBadSegment, seg)
		}
		for _, r := range seg {
			if unicode.IsSpace(r) || unicode.IsControl(r) || r == unicode.ReplacementChar {
				return GLOB{}, fmt.Errorf("%w: segment %q contains whitespace or control characters", ErrBadSegment, seg)
			}
		}
		g.Path = append(g.Path, seg)
	}
	return g, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) GLOB {
	g, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return g
}

// parseCoords parses "(a,b),(c,d),..." into a coordinate list.
func parseCoords(s string) ([]Coord, error) {
	var out []Coord
	rest := s
	for rest != "" {
		if rest[0] == ',' {
			rest = rest[1:]
			continue
		}
		if rest[0] != '(' {
			return nil, fmt.Errorf("%w: expected '(' at %q", ErrBadCoord, rest)
		}
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated tuple in %q", ErrBadCoord, s)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		parts := strings.Split(body, ",")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("%w: tuple (%s) must have 2 or 3 components", ErrBadCoord, body)
		}
		var c Coord
		vals := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %q: %v", ErrBadCoord, p, err)
			}
			vals[i] = v
		}
		c.X, c.Y = vals[0], vals[1]
		if len(vals) == 3 {
			c.Z, c.Has3D = vals[2], true
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no tuples in %q", ErrBadCoord, s)
	}
	return out, nil
}

// String renders g back to its textual form.
func (g GLOB) String() string {
	var b strings.Builder
	for i, seg := range g.Path {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(seg)
	}
	if len(g.Coords) > 0 {
		if len(g.Path) > 0 {
			b.WriteByte('/')
		}
		for i, c := range g.Coords {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// IsZero reports whether g is the empty GLOB.
func (g GLOB) IsZero() bool { return len(g.Path) == 0 && len(g.Coords) == 0 }

// IsCoordinate reports whether g carries an explicit coordinate list.
func (g GLOB) IsCoordinate() bool { return len(g.Coords) > 0 }

// IsSymbolic reports whether g is purely symbolic.
func (g GLOB) IsSymbolic() bool { return len(g.Coords) == 0 && len(g.Path) > 0 }

// Kind classifies the geometry g denotes.
func (g GLOB) Kind() Kind {
	switch n := len(g.Coords); {
	case n == 0:
		return KindSymbolic
	case n == 1:
		return KindPoint
	case n == 2:
		return KindLine
	default:
		return KindPolygon
	}
}

// Depth returns the number of symbolic path segments.
func (g GLOB) Depth() int { return len(g.Path) }

// Name returns the last symbolic segment, or "" when g has none.
func (g GLOB) Name() string {
	if len(g.Path) == 0 {
		return ""
	}
	return g.Path[len(g.Path)-1]
}

// Prefix returns the GLOB naming the enclosing space: all symbolic
// segments except the final component (which may be symbolic or
// coordinate).
func (g GLOB) Prefix() GLOB {
	if len(g.Coords) > 0 {
		return Symbolic(g.Path...)
	}
	if len(g.Path) <= 1 {
		return GLOB{}
	}
	return Symbolic(g.Path[:len(g.Path)-1]...)
}

// Child returns g extended by one symbolic segment. It is only
// meaningful on symbolic GLOBs.
func (g GLOB) Child(name string) GLOB {
	out := Symbolic(g.Path...)
	out.Path = append(out.Path, name)
	return out
}

// Equal reports whether g and h denote the same GLOB textually
// (coordinates compared exactly).
func (g GLOB) Equal(h GLOB) bool {
	if len(g.Path) != len(h.Path) || len(g.Coords) != len(h.Coords) {
		return false
	}
	for i := range g.Path {
		if g.Path[i] != h.Path[i] {
			return false
		}
	}
	for i := range g.Coords {
		if g.Coords[i] != h.Coords[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether prefix's symbolic path is an ancestor of
// (or equal to) g's. A coordinate GLOB has the prefix of its path.
func (g GLOB) HasPrefix(prefix GLOB) bool {
	if len(prefix.Coords) > 0 {
		return false
	}
	if len(prefix.Path) > len(g.Path) {
		return false
	}
	for i := range prefix.Path {
		if g.Path[i] != prefix.Path[i] {
			return false
		}
	}
	return true
}

// Truncate returns g cut down to at most the given granularity depth.
// It implements the privacy constraint of §4.5: a location revealed at
// GranFloor keeps only building and floor segments and drops any
// coordinates. If g is already at or above the granularity it is
// returned unchanged (minus coordinates when truncation applies).
func (g GLOB) Truncate(gran Granularity) GLOB {
	d := int(gran)
	if d <= 0 {
		return GLOB{}
	}
	if len(g.Path) <= d && len(g.Coords) == 0 {
		return g
	}
	if len(g.Path) < d {
		d = len(g.Path)
	}
	return Symbolic(g.Path[:d]...)
}

// PlanarPoints projects the coordinate list to planar points.
func (g GLOB) PlanarPoints() []geom.Point {
	if len(g.Coords) == 0 {
		return nil
	}
	out := make([]geom.Point, len(g.Coords))
	for i, c := range g.Coords {
		out[i] = c.Point()
	}
	return out
}

// Geometry returns the planar geometry g denotes in its prefix frame:
// a degenerate Rect for a point, the MBR of the chain for a line, and
// the polygon for three or more tuples. ok is false for symbolic
// GLOBs, whose geometry lives in the spatial database.
func (g GLOB) Geometry() (poly geom.Polygon, ok bool) {
	pts := g.PlanarPoints()
	if len(pts) == 0 {
		return nil, false
	}
	return geom.Polygon(pts), true
}

// Bounds returns the MBR of g's coordinate geometry; ok is false for
// symbolic GLOBs.
func (g GLOB) Bounds() (geom.Rect, bool) {
	pts := g.PlanarPoints()
	if len(pts) == 0 {
		return geom.Rect{}, false
	}
	return geom.BoundsOfPoints(pts...), true
}

// ftoa formats a float compactly (no trailing zeros).
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
