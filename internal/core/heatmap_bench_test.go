package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// benchCity builds the BENCH_5 city: a 16-floor tower with every
// mobile object's probability mass concentrated in the bottom two
// floors (1/8 of the building), at 10x the city-harness default
// population. Heatmap queries round-robin over all floors, so a
// pre-filter-free scan pays the full population on the 14 empty floors
// while the support index returns (near) nothing there.
const (
	benchFloors  = 16
	benchObjects = 640
	benchHotNum  = 2 // objects live on floors 0..benchHotNum-1
)

func benchCity(b *testing.B, opts ...Option) (*Service, []geom.Rect, time.Time) {
	b.Helper()
	clock := &testClock{now: t0}
	s, err := New(building.MultiStorey("C", benchFloors, 2, 3, 12, 10, 5),
		append([]Option{WithClock(clock.Now)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	spec := model.UbisenseSpec(0.9)
	spec.TTL = time.Hour
	if err := s.RegisterSensor("ubi", spec); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batch := make([]model.Reading, 0, benchObjects)
	for i := 0; i < benchObjects; i++ {
		floor := i % benchHotNum
		batch = append(batch, model.Reading{
			SensorID:  "ubi",
			MObjectID: fmt.Sprintf("p%04d", i),
			Location: glob.CoordinatePoint(glob.MustParse(fmt.Sprintf("C/F%d", floor)),
				geom.Pt(rng.Float64()*36, rng.Float64()*28)),
			Time: t0,
		})
	}
	if err := s.IngestBatchLocal(batch); err != nil {
		b.Fatal(err)
	}
	rects := make([]geom.Rect, benchFloors)
	for f := 0; f < benchFloors; f++ {
		r, err := s.db.ResolveGLOB(glob.MustParse(fmt.Sprintf("C/F%d", f)))
		if err != nil {
			b.Fatal(err)
		}
		rects[f] = r
	}
	return s, rects, clock.Now()
}

// legacyHeatmapOn reproduces the pre-support-index heatmap scan this
// PR replaced, as the BENCH_5 baseline: every mobile object in the
// database is evaluated per query — a whole-region ProbRegion cull
// (which never culls: fused mass is strictly positive everywhere once
// an object has any reading) followed by a full rows x cols
// rasterization. Kept verbatim in spirit so the recorded >=3x ratio
// gates the optimization itself, not incidental drift.
func legacyHeatmapOn(s *Service, rect geom.Rect, rows, cols int, now time.Time) *Heatmap {
	snap := s.db.Snapshot()
	defer snap.Close()
	ids := snap.MobileObjects()
	cellW := rect.Width() / float64(cols)
	cellH := rect.Height() / float64(rows)
	grids := make([][]float64, len(ids))
	eval := func(i int) {
		readings := s.fusionStateSnap(snap, ids[i], now)
		if len(readings) == 0 {
			return
		}
		if fusion.ProbRegion(snap.Universe(), readings, rect) <= 0 {
			return
		}
		g := make([]float64, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				cell := geom.R(
					rect.Min.X+float64(c)*cellW,
					rect.Min.Y+float64(r)*cellH,
					rect.Min.X+float64(c+1)*cellW,
					rect.Min.Y+float64(r+1)*cellH,
				)
				g[r*cols+c] = fusion.ProbRegion(snap.Universe(), readings, cell)
			}
		}
		grids[i] = g
	}
	if s.pool != nil && len(ids) >= parallelFanThreshold {
		s.pool.fanOutChunked(len(ids), s.parallelism, eval)
	} else {
		for i := range ids {
			eval(i)
		}
	}
	h := &Heatmap{Region: rect, Rows: rows, Cols: cols, At: now}
	h.Cells = make([][]float64, rows)
	for r := range h.Cells {
		h.Cells[r] = make([]float64, cols)
	}
	for _, g := range grids {
		if g == nil {
			continue
		}
		h.Objects++
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				h.Cells[r][c] += g[r*cols+c]
			}
		}
	}
	return h
}

func BenchmarkHeatmapPrefiltered(b *testing.B) {
	b.Run(fmt.Sprintf("floors-%d-objects-%d", benchFloors, benchObjects), func(b *testing.B) {
		s, rects, now := benchCity(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap := s.db.Snapshot()
			h := s.heatmapOn(snap, rects[i%benchFloors], 4, 6, now, true)
			snap.Close()
			_ = h.Objects
		}
	})
}

func BenchmarkHeatmapLegacyScan(b *testing.B) {
	b.Run(fmt.Sprintf("floors-%d-objects-%d", benchFloors, benchObjects), func(b *testing.B) {
		s, rects, now := benchCity(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := legacyHeatmapOn(s, rects[i%benchFloors], 4, 6, now)
			_ = h.Objects
		}
	})
}

// BenchmarkNotifyDispatch measures end-to-end subscription dispatch:
// one qualifying reading fans out to 32 every-reading subscriptions
// and the op completes when every notification has been handled. The
// BENCH_5 gate pins workers-4 to parity with workers-1 (ratio 0.75,
// BENCH_4 style): on the 1-CPU CI box sharded queues cannot be faster,
// but they must not cost more than queue-hashing noise; the ordering
// contract is enforced separately by
// TestNotifierShardedPreservesPerSubscriptionOrder.
func BenchmarkNotifyDispatch(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			clock := &testClock{now: t0}
			s, err := New(building.PaperFloor(), WithClock(clock.Now), WithNotifyWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			spec := model.UbisenseSpec(0.9)
			spec.TTL = time.Hour
			if err := s.RegisterSensor("ubi-1", spec); err != nil {
				b.Fatal(err)
			}
			const subs = 32
			var delivered atomic.Uint64
			for i := 0; i < subs; i++ {
				_, err := s.Subscribe(Subscription{
					Region:       glob.MustParse("CS/Floor3/NetLab"),
					EveryReading: true,
					Handler:      func(Notification) { delivered.Add(1) },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := s.Ingest(model.Reading{
					SensorID:  "ubi-1",
					MObjectID: "walker",
					Location:  glob.CoordinatePoint(glob.MustParse("CS/Floor3"), geom.Pt(370, 15)),
					Time:      t0.Add(time.Duration(i) * time.Millisecond),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			want := uint64(b.N) * subs
			for delivered.Load() < want {
				runtime.Gosched()
			}
		})
	}
}
