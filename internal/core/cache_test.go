package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// TestFusionStateCaching checks the memo discipline at the entry
// level: a repeated query at the same instant reuses the cached entry,
// and each invalidation source — a new reading, a sensor-table change,
// an object-table change, clock movement past the quantum — produces a
// fresh one.
func TestFusionStateCaching(t *testing.T) {
	s, clock := newTestService(t)
	ingestAt(t, s, "ubi-1", "alice", 370, 15, t0)

	_, e1 := s.fusionState("alice", clock.Now())
	_, e2 := s.fusionState("alice", clock.Now())
	if e1 != e2 {
		t.Error("repeat query at the same instant rebuilt the entry")
	}

	// Within the quantum the entry still serves.
	clock.Advance(10 * time.Millisecond)
	_, e3 := s.fusionState("alice", clock.Now())
	if e3 != e1 {
		t.Error("query within the cache quantum rebuilt the entry")
	}

	// A new reading invalidates.
	ingestAt(t, s, "ubi-1", "alice", 372, 15, clock.Now())
	_, e4 := s.fusionState("alice", clock.Now())
	if e4 == e1 {
		t.Error("cached entry survived a newer reading")
	}

	// A sensor-table change invalidates (calibration affects fusion).
	spec := model.RFIDSpec(0.7)
	if err := s.RegisterSensor("rf-new", spec); err != nil {
		t.Fatal(err)
	}
	_, e5 := s.fusionState("alice", clock.Now())
	if e5 == e4 {
		t.Error("cached entry survived a sensor registration")
	}

	// Past the quantum the entry expires (temporal degradation moves).
	clock.Advance(defaultCacheQuantum + time.Millisecond)
	_, e6 := s.fusionState("alice", clock.Now())
	if e6 == e5 {
		t.Error("cached entry served past the validity quantum")
	}
}

// TestCacheQuantumZero restricts reuse to the exact query instant.
func TestCacheQuantumZero(t *testing.T) {
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now), WithCacheQuantum(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := model.UbisenseSpec(0.9)
	spec.TTL = time.Minute
	if err := s.RegisterSensor("ubi-1", spec); err != nil {
		t.Fatal(err)
	}
	ingestAt(t, s, "ubi-1", "alice", 370, 15, t0)

	_, e1 := s.fusionState("alice", clock.Now())
	_, e2 := s.fusionState("alice", clock.Now())
	if e1 != e2 {
		t.Error("same-instant query missed with quantum 0")
	}
	clock.Advance(time.Millisecond)
	_, e3 := s.fusionState("alice", clock.Now())
	if e3 == e1 {
		t.Error("entry reused at a later instant with quantum 0")
	}
}

// TestLocateObjectCachedAnswerMatchesCold compares the warm answer
// against the cold one field by field: memoization must not change
// results, including the privacy clamp applied after the cache.
func TestLocateObjectCachedAnswerMatchesCold(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "alice", 370, 15, t0)
	cold, err := s.LocateObject("alice")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.LocateObject("alice")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rect != cold.Rect || warm.Prob != cold.Prob || warm.Band != cold.Band ||
		warm.Symbolic.String() != cold.Symbolic.String() || !warm.At.Equal(cold.At) {
		t.Errorf("warm answer diverged: cold=%+v warm=%+v", cold, warm)
	}

	// Privacy applies on top of the cached estimate.
	s.SetPrivacy("alice", PrivacyPolicy{MaxGranularity: glob.GranFloor})
	clamped, err := s.LocateObject("alice")
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Symbolic.String() != "CS/Floor3" {
		t.Errorf("privacy clamp skipped on warm path: %s", clamped.Symbolic)
	}
}

// TestIngestBatchMatchesSerialIngest feeds the same readings once as a
// batch and once one at a time into twin services; every fused answer
// and trigger firing must agree.
func TestIngestBatchMatchesSerialIngest(t *testing.T) {
	build := func(t *testing.T) (*Service, *[]Notification, *sync.Mutex) {
		clock := &testClock{now: t0}
		s, err := New(building.PaperFloor(), WithClock(clock.Now))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		spec := model.UbisenseSpec(0.9)
		spec.TTL = time.Minute
		if err := s.RegisterSensor("ubi-1", spec); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []Notification
		_, err = s.Subscribe(Subscription{
			Region:       glob.MustParse("CS/Floor3/NetLab"),
			EveryReading: true,
			Handler: func(n Notification) {
				mu.Lock()
				got = append(got, n)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, &got, &mu
	}

	readings := make([]model.Reading, 6)
	for i := range readings {
		readings[i] = model.Reading{
			SensorID:  "ubi-1",
			MObjectID: fmt.Sprintf("p%d", i%2),
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
				geom.Pt(float64(300+i*12), 15)),
			Time: t0.Add(time.Duration(i) * time.Millisecond),
		}
	}

	serial, serialNotes, serialMu := build(t)
	for _, r := range readings {
		if err := serial.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	batched, batchNotes, batchMu := build(t)
	if err := batched.IngestBatch(readings); err != nil {
		t.Fatal(err)
	}

	for _, obj := range []string{"p0", "p1"} {
		a, err := serial.LocateObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batched.LocateObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rect != b.Rect || a.Prob != b.Prob || a.Symbolic.String() != b.Symbolic.String() {
			t.Errorf("%s: serial %+v != batched %+v", obj, a, b)
		}
	}
	serialMu.Lock()
	ns := len(*serialNotes)
	serialMu.Unlock()
	batchMu.Lock()
	nb := len(*batchNotes)
	batchMu.Unlock()
	if ns != nb {
		t.Errorf("notification counts diverged: serial %d, batched %d", ns, nb)
	}
}

// TestCacheNeverServesStaleUnderRace is the freshness contract under
// contention, run with -race in CI: once an insert for an object has
// completed, no later query may be answered from a cache entry built
// before that insert. Writers bump the reading epoch through Ingest
// and IngestBatch while another goroutine churns the sensor table;
// readers snapshot the epoch first and then demand an entry at least
// that new.
func TestCacheNeverServesStaleUnderRace(t *testing.T) {
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := model.UbisenseSpec(0.9)
	spec.TTL = time.Hour
	if err := s.RegisterSensor("stress-ubi", spec); err != nil {
		t.Fatal(err)
	}
	floor := glob.MustParse("CS/Floor3")
	region := glob.MustParse("CS/Floor3/NetLab")

	const iters = 60
	var wg sync.WaitGroup
	var failed atomic.Bool
	errs := make(chan error, 8*iters)

	mkReading := func(obj string, i int) model.Reading {
		return model.Reading{
			SensorID:  "stress-ubi",
			MObjectID: obj,
			Location:  glob.CoordinatePoint(floor, geom.Pt(float64(300+i*2), 15)),
			Time:      clock.Now().Add(time.Duration(i) * time.Millisecond),
		}
	}

	// Single-reading writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := s.Ingest(mkReading("mover", i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Batch writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i += 4 {
			batch := make([]model.Reading, 0, 4)
			for j := i; j < i+4 && j < iters; j++ {
				batch = append(batch, mkReading("pack", j))
			}
			if err := s.IngestBatch(batch); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Sensor churn: registration bumps the generation and must flush
	// every cached estimate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			churn := model.RFIDSpec(0.7)
			if err := s.RegisterSensor(fmt.Sprintf("churn-%d", i), churn); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Readers: the epoch observed before the query is a lower bound on
	// the entry that answers it.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(obj string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				before := s.db.ReadingEpoch(obj)
				_, entry := s.fusionState(obj, clock.Now())
				if entry.epoch < before {
					failed.Store(true)
					errs <- fmt.Errorf("%s: served entry epoch %d older than observed %d",
						obj, entry.epoch, before)
					return
				}
				s.LocateObject(obj) // error ok: may not exist yet
				s.ObjectsInRegion(region, 0.3)
			}
		}([]string{"mover", "pack", "mover"}[w])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if failed.Load() {
		t.Fatal("stale cache entry served after a completed insert")
	}
}
