package core

import (
	"sync"
	"time"

	"middlewhere/internal/fusion"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// Cache metrics, cached once so the hot paths are pure atomics.
var (
	mCacheHits     = obs.Default().Counter("core_cache_hits_total")
	mCacheMisses   = obs.Default().Counter("core_cache_misses_total")
	mSensorMemoHit = obs.Default().Counter("core_sensor_memo_hits_total")
)

// defaultCacheQuantum bounds how long a cached fused estimate may be
// served on a live clock. Epochs invalidate precisely on data change;
// the quantum only covers what epochs cannot see — temporal
// degradation (EffectiveDetectProb decays with reading age) and TTL
// expiry, both of which move on the scale of seconds to hours, so a
// quarter second of staleness is far below sensor noise.
const defaultCacheQuantum = 250 * time.Millisecond

// maxCachedObjects bounds the fused-estimate cache; at the cap an
// arbitrary entry is evicted (every entry is equally cheap to
// recompute on its next query).
const maxCachedObjects = 4096

// locEntry is one object's cached fusion state. Entries are immutable
// after publication: updates store a fresh entry, so a reader holding
// one can use it without locks. readings is shared read-only (fusion
// Build/ProbRegion copy what they keep).
type locEntry struct {
	// epoch, sensorGen and objGen are the invalidation keys: the
	// object's reading-table epoch, the sensor-table generation
	// (specs feed p_i/q_i and the classifier) and the object-table
	// generation (the symbolic region comes from it).
	epoch     uint64
	sensorGen uint64
	objGen    uint64
	// at is when the readings were evaluated; temporal degradation is
	// computed against it, so validity also requires now to stay
	// within the cache quantum of it.
	at       time.Time
	readings []fusion.Reading
	// hasLoc marks that loc carries the full fused location (computed
	// lazily by LocateObject; probInRect-only entries never pay for
	// the lattice).
	hasLoc bool
	// loc is the pre-privacy location; policies apply per request.
	loc Location
}

// valid reports whether the entry still reflects the database at the
// given keys and time.
func (e *locEntry) valid(epoch, sensorGen, objGen uint64, now time.Time, quantum time.Duration) bool {
	if e == nil || e.epoch != epoch || e.sensorGen != sensorGen || e.objGen != objGen {
		return false
	}
	d := now.Sub(e.at)
	return d == 0 || (d > 0 && d < quantum)
}

// locateCache maps object IDs to their cached fusion state.
type locateCache struct {
	mu      sync.RWMutex
	entries map[string]*locEntry
}

func (c *locateCache) get(id string) *locEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entries[id]
}

func (c *locateCache) put(id string, e *locEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= maxCachedObjects {
		if _, ok := c.entries[id]; !ok {
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
	}
	c.entries[id] = e
}

// fusionState returns the object's fusion inputs at now, serving a
// cached set while the invalidation keys prove it current. The keys
// are read BEFORE the rows: an insert landing in between makes the
// stored entry conservatively stale (its epoch is already outdated),
// never the reverse — a cached answer can therefore never survive a
// completed newer insert for the object.
func (s *Service) fusionState(objectID string, now time.Time) ([]fusion.Reading, *locEntry) {
	epoch := s.db.ReadingEpoch(objectID)
	sensorGen := s.db.SensorGeneration()
	objGen := s.db.ObjectGeneration()
	if e := s.cache.get(objectID); e.valid(epoch, sensorGen, objGen, now, s.quantum) {
		mCacheHits.Inc()
		return e.readings, e
	}
	mCacheMisses.Inc()
	readings := s.fusionReadings(objectID, now)
	e := &locEntry{
		epoch:     epoch,
		sensorGen: sensorGen,
		objGen:    objGen,
		at:        now,
		readings:  readings,
	}
	s.cache.put(objectID, e)
	return readings, e
}

// fusionStateSnap is fusionState evaluated against a database
// snapshot: the rows, sensor specs, and invalidation keys all come
// from the same consistent cut, so every object evaluated against one
// snapshot sees the same set of completed insert batches. The shared
// cache is consulted and refilled with the snapshot's keys — live
// epochs only ever run ahead of a snapshot's, so a cached entry can
// validate against a snapshot only when the object's rows have not
// changed since the cut, never the reverse.
func (s *Service) fusionStateSnap(snap *spatialdb.Snapshot, objectID string, now time.Time) []fusion.Reading {
	epoch := snap.ReadingEpoch(objectID)
	sensorGen := snap.SensorGeneration()
	objGen := s.db.ObjectGeneration()
	if e := s.cache.get(objectID); e.valid(epoch, sensorGen, objGen, now, s.quantum) {
		mCacheHits.Inc()
		return e.readings
	}
	mCacheMisses.Inc()
	rows := snap.LatestPerSensor(objectID, now)
	readings := fusion.FromReadings(rows, snap.SensorSpecs(), now, snap.Universe().Area())
	s.cache.put(objectID, &locEntry{
		epoch:     epoch,
		sensorGen: sensorGen,
		objGen:    objGen,
		at:        now,
		readings:  readings,
	})
	return readings
}

// classifierFor returns the §4.4 classifier for a snapshot's sensor
// table: the live memo when the generations agree (the common case),
// otherwise one built from the snapshot's own specs so bands always
// reflect the cut being evaluated.
func (s *Service) classifierFor(snap *spatialdb.Snapshot) fusion.Classifier {
	m := &s.sensors
	m.mu.RLock()
	if m.ok && m.gen == snap.SensorGeneration() {
		cls := m.cls
		m.mu.RUnlock()
		mSensorMemoHit.Inc()
		return cls
	}
	m.mu.RUnlock()
	specs := snap.SensorSpecs()
	ps := make([]float64, 0, len(specs))
	for _, spec := range specs {
		ps = append(ps, spec.Errors.DetectProb())
	}
	return fusion.NewClassifier(ps)
}

// sensorMemo caches the sensor-spec table copy and the §4.4
// classifier derived from it, keyed on the sensor generation so a
// locate revalidates with one atomic load instead of re-scanning the
// table.
type sensorMemo struct {
	mu    sync.RWMutex
	ok    bool
	gen   uint64
	specs map[string]model.SensorSpec
	cls   fusion.Classifier
}

// sensorView returns the current sensor specs and classifier,
// refreshing the memo only when the sensor table's generation moved.
func (s *Service) sensorView() (map[string]model.SensorSpec, fusion.Classifier) {
	gen := s.db.SensorGeneration()
	m := &s.sensors
	m.mu.RLock()
	if m.ok && m.gen == gen {
		specs, cls := m.specs, m.cls
		m.mu.RUnlock()
		mSensorMemoHit.Inc()
		return specs, cls
	}
	m.mu.RUnlock()
	specs, snapGen := s.db.SensorSnapshot()
	ps := make([]float64, 0, len(specs))
	for _, spec := range specs {
		ps = append(ps, spec.Errors.DetectProb())
	}
	cls := fusion.NewClassifier(ps)
	m.mu.Lock()
	if !m.ok || snapGen >= m.gen {
		m.ok, m.gen, m.specs, m.cls = true, snapGen, specs, cls
	}
	m.mu.Unlock()
	return specs, cls
}
