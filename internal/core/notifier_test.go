package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// newShardedNotifyService builds a paper-floor service with an
// explicit notify-worker count.
func newShardedNotifyService(t *testing.T, workers int) (*Service, *testClock) {
	t.Helper()
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now), WithNotifyWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ubi := model.UbisenseSpec(0.9)
	ubi.TTL = time.Minute
	if err := s.RegisterSensor("ubi-1", ubi); err != nil {
		t.Fatal(err)
	}
	return s, clock
}

// TestNotifierShardedPreservesPerSubscriptionOrder is the sharded
// notifier's ordering contract: with several workers draining hashed
// queues, the notifications of any ONE subscription must still arrive
// in the order their triggering readings were evaluated — a
// subscription always hashes to the same queue. Global interleaving
// across subscriptions is unconstrained.
func TestNotifierShardedPreservesPerSubscriptionOrder(t *testing.T) {
	s, _ := newShardedNotifyService(t, 4)
	if s.notifyWorkers != 4 || len(s.notifyQs) != 4 {
		t.Fatalf("workers = %d queues = %d, want 4", s.notifyWorkers, len(s.notifyQs))
	}

	const subs = 8
	const steps = 40
	type rec struct {
		mu  sync.Mutex
		ats []time.Time
	}
	recs := make([]rec, subs)
	var wg sync.WaitGroup
	wg.Add(subs * steps)
	for i := 0; i < subs; i++ {
		i := i
		_, err := s.Subscribe(Subscription{
			Region:       glob.MustParse("CS/Floor3/NetLab"),
			EveryReading: true,
			Handler: func(n Notification) {
				recs[i].mu.Lock()
				recs[i].ats = append(recs[i].ats, n.At)
				recs[i].mu.Unlock()
				wg.Done()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < steps; j++ {
		ingestAt(t, s, "ubi-1", "walker", 370, 15, t0.Add(time.Duration(j)*time.Second))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("notifications did not all arrive")
	}
	for i := range recs {
		recs[i].mu.Lock()
		if len(recs[i].ats) != steps {
			t.Fatalf("sub %d received %d notifications, want %d", i, len(recs[i].ats), steps)
		}
		for j := 1; j < len(recs[i].ats); j++ {
			if recs[i].ats[j].Before(recs[i].ats[j-1]) {
				t.Fatalf("sub %d: notification %d (at %v) arrived before %d (at %v)",
					i, j, recs[i].ats[j], j-1, recs[i].ats[j-1])
			}
		}
		recs[i].mu.Unlock()
	}
}

// TestNotifierQueueHashStable pins what the ordering contract rests
// on: a subscription ID always hashes to the same queue.
func TestNotifierQueueHashStable(t *testing.T) {
	s, _ := newShardedNotifyService(t, 4)
	spread := make(map[int]bool)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("sub-%d", i)
		q := s.queueFor(id)
		for rep := 0; rep < 3; rep++ {
			if s.queueFor(id) != q {
				t.Fatalf("queueFor(%q) unstable", id)
			}
		}
		for qi := range s.notifyQs {
			if s.notifyQs[qi] == q {
				spread[qi] = true
			}
		}
	}
	if len(spread) < 2 {
		t.Errorf("64 subscription IDs all hashed to %d queue(s), want spread", len(spread))
	}
}

// TestNotifierSingleWorkerConfig checks WithNotifyWorkers(1) restores
// the single-queue behavior and that Health aggregates queue capacity
// across the worker set.
func TestNotifierSingleWorkerConfig(t *testing.T) {
	s, _ := newShardedNotifyService(t, 1)
	if len(s.notifyQs) != 1 {
		t.Fatalf("queues = %d, want 1", len(s.notifyQs))
	}
	h := s.Health()
	if h.QueueCap != cap(s.notifyQs[0]) {
		t.Errorf("health queue cap = %d, want %d", h.QueueCap, cap(s.notifyQs[0]))
	}

	s4, _ := newShardedNotifyService(t, 4)
	h4 := s4.Health()
	if want := 4 * cap(s4.notifyQs[0]); h4.QueueCap != want {
		t.Errorf("sharded health queue cap = %d, want %d", h4.QueueCap, want)
	}
}

// TestCoreMetricNamesStable pins the core-layer registry names that
// mwctl stats and the dashboards read: the heatmap latency histogram
// (observed on success, error, and empty paths alike), the pre-filter
// selectivity counters, and the sharded-notifier gauges.
func TestCoreMetricNamesStable(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "walker", 370, 15, t0)
	if _, err := s.OccupancyHeatmap(glob.MustParse("CS/Floor3"), 2, 2); err != nil {
		t.Fatal(err)
	}
	// The error path must be observed too.
	errBefore := obs.Default().Histogram("core_heatmap_us").Count()
	if _, err := s.OccupancyHeatmap(glob.MustParse("CS/Floor3"), 0, 2); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if after := obs.Default().Histogram("core_heatmap_us").Count(); after != errBefore+1 {
		t.Errorf("core_heatmap_us count %d -> %d across an error call, want +1", errBefore, after)
	}

	snap := obs.Default().Snapshot()
	names := make(map[string]bool)
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, h := range snap.Histograms {
		names[h.Name] = true
	}
	for _, want := range []string{
		"core_heatmap_us",
		"core_heatmap_candidates",
		"core_heatmap_culled",
		"core_notify_workers",
		"core_notify_queue_depth",
		"core_notify_drops_total",
	} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if obs.Default().Counter("core_heatmap_candidates").Value() == 0 {
		t.Error("core_heatmap_candidates never moved")
	}
}
