package core

import (
	"fmt"

	"middlewhere/internal/fusion"
	"middlewhere/internal/glob"
	"middlewhere/internal/relations"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

// located builds the relations-layer view of an object's current
// estimate.
func (s *Service) located(objectID string) (relations.Located, []fusion.Reading, error) {
	loc, err := s.LocateObject(objectID)
	if err != nil {
		return relations.Located{}, nil, err
	}
	readings := s.fusionReadings(objectID, loc.At)
	return relations.Located{
		Rect:     loc.Rect,
		Prob:     loc.Prob,
		Symbolic: loc.Symbolic,
	}, readings, nil
}

// Proximity returns the probability that two mobile objects are within
// threshold distance of each other (§4.6.3a).
func (s *Service) Proximity(objA, objB string, threshold float64) (float64, error) {
	a, _, err := s.located(objA)
	if err != nil {
		return 0, err
	}
	b, _, err := s.located(objB)
	if err != nil {
		return 0, err
	}
	return relations.Proximity(a, b, threshold), nil
}

// CoLocated reports whether two mobile objects are in the same
// symbolic region at the given granularity, with the joint probability
// (§4.6.3b).
func (s *Service) CoLocated(objA, objB string, gran glob.Granularity) (bool, float64, error) {
	a, _, err := s.located(objA)
	if err != nil {
		return false, 0, err
	}
	b, _, err := s.located(objB)
	if err != nil {
		return false, 0, err
	}
	ok, p := relations.CoLocated(a, b, gran)
	return ok, p, nil
}

// ObjectDistance returns the Euclidean and path distances between two
// mobile objects (§4.6.3c). Path distance is +Inf when no traversable
// route exists under the policy.
func (s *Service) ObjectDistance(objA, objB string, policy topo.TraversalPolicy) (euclidean, path float64, err error) {
	a, _, err := s.located(objA)
	if err != nil {
		return 0, 0, err
	}
	b, _, err := s.located(objB)
	if err != nil {
		return 0, 0, err
	}
	euclidean = relations.EuclideanDist(a, b)
	path, err = relations.PathDist(s.graph, a, b, policy)
	if err != nil {
		return euclidean, topo.Infinity, nil
	}
	return euclidean, path, nil
}

// InUsageRegion returns the probability that a mobile object can use a
// static object (display, table, ...) — containment in its usage
// region (§4.6.2b).
func (s *Service) InUsageRegion(objectID string, staticID string) (float64, error) {
	obj, err := s.db.GetObject(staticID)
	if err != nil {
		return 0, err
	}
	_, readings, err := s.located(objectID)
	if err != nil {
		return 0, err
	}
	return relations.InUsage(s.db.Universe(), readings, obj)
}

// NearestUsable returns the static object of the given type whose
// usage region the located object most probably occupies, e.g. the
// display to migrate a Follow Me session to (§8.1). minProb filters
// weak candidates.
func (s *Service) NearestUsable(objectID, objType string, minProb float64) (string, float64, error) {
	loc, readings, err := s.located(objectID)
	if err != nil {
		return "", 0, err
	}
	bestID, bestP := "", 0.0
	bestDist := topo.Infinity
	for _, o := range s.db.IntersectingObjects(s.db.Universe(), spatialdb.ObjectFilter{Type: objType}) {
		ur, err := relations.UsageRegion(o)
		if err != nil {
			continue
		}
		p := relations.Containment(s.db.Universe(), readings, ur)
		d := loc.Rect.DistToRect(o.Bounds)
		if p < minProb {
			continue
		}
		if p > bestP || (p == bestP && d < bestDist) {
			bestID, bestP, bestDist = o.ID(), p, d
		}
	}
	if bestID == "" {
		return "", 0, fmt.Errorf("%w: no usable %s for %s", ErrUnknownObject, objType, objectID)
	}
	return bestID, bestP, nil
}
