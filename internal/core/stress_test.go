package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// TestConcurrentSubscribeIngestLocate hammers the service from many
// goroutines: ingests, queries, subscriptions and unsubscriptions all
// interleaved. Run under -race in CI.
func TestConcurrentSubscribeIngestLocate(t *testing.T) {
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now), WithHistory(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := model.UbisenseSpec(0.9)
	spec.TTL = time.Hour
	if err := s.RegisterSensor("stress-ubi", spec); err != nil {
		t.Fatal(err)
	}
	region := glob.MustParse("CS/Floor3/NetLab")

	var wg sync.WaitGroup
	const workers = 6
	const iters = 40
	errs := make(chan error, workers*iters)

	// Writers: readings walking across the floor.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := s.Ingest(model.Reading{
					SensorID:  "stress-ubi",
					MObjectID: fmt.Sprintf("p%d", w),
					Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
						geom.Pt(float64(300+i*2), 15)),
					Time: clock.Now().Add(time.Duration(i) * time.Millisecond),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers: queries racing the writers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.LocateObject(fmt.Sprintf("p%d", w)) // error ok: may not exist yet
				s.ObjectsInRegion(region, 0.3)
				s.History(fmt.Sprintf("p%d", w))
			}
		}(w)
	}
	// Subscribers: churn subscriptions while triggers fire.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id, err := s.Subscribe(Subscription{
					Region:       region,
					EveryReading: true,
					Handler:      func(Notification) {},
				})
				if err != nil {
					errs <- err
					return
				}
				if err := s.Unsubscribe(id); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Subscriptions() != 0 {
		t.Errorf("leaked subscriptions: %d", s.Subscriptions())
	}
}
