package core

import (
	"fmt"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/spatialdb"
)

// DefineRegion creates an application-defined symbolic region at
// runtime (§4's task 4: "supports the creation of spatial regions and
// the association of different kinds of properties with these
// regions") — e.g. "the east wing" or a work region inside a room.
// The polygon is expressed in the coordinate frame of the GLOB's
// prefix. The region immediately participates in symbolic resolution,
// region queries, mwql, and the symbolic lattice.
func (s *Service) DefineRegion(g glob.GLOB, poly geom.Polygon, properties map[string]string) error {
	if !g.IsSymbolic() {
		return fmt.Errorf("%w: region needs a symbolic GLOB", spatialdb.ErrBadGeometry)
	}
	return s.db.InsertObject(spatialdb.Object{
		GLOB:        g,
		Type:        "Region",
		Kind:        glob.KindPolygon,
		LocalPoints: []geom.Point(poly),
		Properties:  properties,
	})
}

// DefineStatic adds a static object (§4's task 5: "supports the
// addition of static objects, along with spatial properties of these
// objects") such as a display or table, with its geometry in the
// prefix frame.
func (s *Service) DefineStatic(g glob.GLOB, objType string, kind glob.Kind, pts []geom.Point, properties map[string]string) error {
	if !g.IsSymbolic() {
		return fmt.Errorf("%w: object needs a symbolic GLOB", spatialdb.ErrBadGeometry)
	}
	return s.db.InsertObject(spatialdb.Object{
		GLOB:        g,
		Type:        objType,
		Kind:        kind,
		LocalPoints: pts,
		Properties:  properties,
	})
}

// RemoveRegion deletes an application-defined region or static object.
func (s *Service) RemoveRegion(g glob.GLOB) error {
	return s.db.DeleteObject(g.String())
}

// SymbolicAncestors returns the §4.5 symbolic-lattice chain of a
// region: every Room/Corridor/Floor/Region object whose bounds contain
// it, ordered innermost first. The chain is how privacy policies pick
// reveal levels and how applications walk the containment hierarchy.
func (s *Service) SymbolicAncestors(g glob.GLOB) ([]glob.GLOB, error) {
	rect, err := s.db.ResolveGLOB(g)
	if err != nil {
		return nil, err
	}
	var out []glob.GLOB
	self := g.String()
	for _, o := range s.db.IntersectingObjects(rect, spatialdb.ObjectFilter{}) {
		switch o.Type {
		case "Room", "Corridor", "Floor", "Region":
		default:
			continue
		}
		if o.ID() == self {
			continue
		}
		if o.Bounds.ContainsRect(rect) {
			out = append(out, o.GLOB)
		}
	}
	// Innermost (smallest area) first.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			ri, _ := s.db.ResolveGLOB(out[i])
			rj, _ := s.db.ResolveGLOB(out[j])
			if rj.Area() < ri.Area() {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}
