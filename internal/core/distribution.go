package core

import (
	"fmt"
	"sort"

	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
)

// RegionProb is one cell of a spatial probability distribution.
type RegionProb struct {
	// Rect is the cell in universe coordinates.
	Rect geom.Rect
	// Symbolic is the deepest symbolic region containing the cell.
	Symbolic glob.GLOB
	// Prob is the normalized probability mass of the cell.
	Prob float64
}

// Distribution returns the spatial probability distribution of an
// object's location (§4.1: "multi-sensor fusion uses data from
// different sensors to derive a spatial probability distribution of
// the location of the person"): the minimal lattice regions with
// probabilities normalized to sum to 1, sorted by descending
// probability. Most applications use LocateObject's single value; this
// is the full posterior for those that want it.
func (s *Service) Distribution(objectID string) ([]RegionProb, error) {
	now := s.now()
	readings, _ := s.fusionState(objectID, now)
	if len(readings) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownObject, objectID)
	}
	lat := fusion.Build(s.db.Universe(), readings)
	lat.Evaluate()
	dist, norm := lat.Distribution()
	if norm <= 0 {
		return nil, fmt.Errorf("distribution of %s: all regions have zero probability", objectID)
	}
	out := make([]RegionProb, 0, len(dist))
	for r, p := range dist {
		out = append(out, RegionProb{
			Rect:     r,
			Symbolic: s.symbolicRegion(r),
			Prob:     p,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		// Deterministic tie-break.
		return out[i].Rect.Min.X < out[j].Rect.Min.X ||
			(out[i].Rect.Min.X == out[j].Rect.Min.X && out[i].Rect.Min.Y < out[j].Rect.Min.Y)
	})
	return out, nil
}

// ---------------------------------------------------------------------------
// Requester-aware privacy (§4.5: "privacy constraints that specify
// that a user's location can only be revealed upto a certain
// granularity")

// AccessPolicy is an object's disclosure policy towards requesters.
type AccessPolicy struct {
	// Default applies to requesters without a specific grant. The zero
	// policy (no restriction) reveals everything.
	Default PrivacyPolicy
	// Grants maps requester IDs to their allowed detail.
	Grants map[string]PrivacyPolicy
}

// SetAccessPolicy installs a per-requester disclosure policy for an
// object. A zero AccessPolicy removes it.
func (s *Service) SetAccessPolicy(objectID string, p AccessPolicy) {
	s.privMu.Lock()
	defer s.privMu.Unlock()
	if p.Default == (PrivacyPolicy{}) && len(p.Grants) == 0 {
		delete(s.acls, objectID)
		return
	}
	cp := AccessPolicy{Default: p.Default}
	if len(p.Grants) > 0 {
		cp.Grants = make(map[string]PrivacyPolicy, len(p.Grants))
		for k, v := range p.Grants {
			cp.Grants[k] = v
		}
	}
	s.acls[objectID] = cp
}

// LocateObjectFor answers "where is X?" on behalf of a requester,
// applying X's access policy for that requester on top of any global
// privacy policy. The object itself always sees full detail.
func (s *Service) LocateObjectFor(requester, objectID string) (Location, error) {
	loc, err := s.LocateObject(objectID)
	if err != nil {
		return Location{}, err
	}
	if requester == objectID {
		return loc, nil
	}
	s.privMu.RLock()
	acl, ok := s.acls[objectID]
	s.privMu.RUnlock()
	if !ok {
		return loc, nil
	}
	policy := acl.Default
	if g, ok := acl.Grants[requester]; ok {
		policy = g
	}
	return s.applyPolicy(loc, policy), nil
}

// applyPolicy coarsens a location per one privacy policy (the same
// logic applyPrivacy uses for the global per-object policy).
func (s *Service) applyPolicy(loc Location, p PrivacyPolicy) Location {
	if p == (PrivacyPolicy{}) {
		return loc
	}
	if p.MaxGranularity > 0 {
		loc.Symbolic = loc.Symbolic.Truncate(p.MaxGranularity)
		if rect, err := s.db.ResolveGLOB(loc.Symbolic); err == nil {
			loc.Rect = rect
			loc.Coordinate = glob.CoordinateRect(glob.Symbolic(s.bld.Name), rect)
		}
	}
	if p.HideCoordinates {
		loc.Coordinate = glob.GLOB{}
		loc.Rect = geom.Rect{}
	}
	return loc
}
