package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPoolFanOutDuringClose is the regression test for the
// orphaned-task hang: a task that slipped into the buffered queue
// after the workers' stop-drain would leave fanOut's WaitGroup
// blocked forever. With submission ordered against close, every
// accepted task runs and fanOut always returns.
func TestWorkerPoolFanOutDuringClose(t *testing.T) {
	for round := 0; round < 50; round++ {
		p := newWorkerPool(4)
		var ran atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				p.fanOut(8, func(int) { ran.Add(1) })
			}()
		}
		close(start)
		p.close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: fanOut deadlocked against close", round)
		}
		if got := ran.Load(); got != 4*8 {
			t.Fatalf("round %d: ran %d tasks, want %d", round, got, 4*8)
		}
	}
}

// TestWorkerPoolFanOutAfterClose: submissions on a closed pool run
// inline and still complete every task.
func TestWorkerPoolFanOutAfterClose(t *testing.T) {
	p := newWorkerPool(2)
	p.close()
	var ran atomic.Int64
	p.fanOut(16, func(int) { ran.Add(1) })
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d tasks after close, want 16", got)
	}
}
