package core

import (
	"fmt"
	"time"

	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/obs"
)

var mHeatmapUs = obs.Default().Histogram("core_heatmap_us")

// Heatmap is a crowd-density grid over a region: Cells[r][c] is the
// expected number of people in that cell — the sum over every mobile
// object of its fused probability of being there. Cell (0,0) is the
// region's min corner; rows advance along Y, columns along X.
type Heatmap struct {
	Region geom.Rect   `json:"region"`
	Rows   int         `json:"rows"`
	Cols   int         `json:"cols"`
	Cells  [][]float64 `json:"cells"`
	// Objects is the number of mobile objects that contributed mass.
	Objects int `json:"objects"`
	// At is the query's evaluation time.
	At time.Time `json:"at"`
}

// Total returns the expected total occupancy over the whole grid.
func (h *Heatmap) Total() float64 {
	var t float64
	for _, row := range h.Cells {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Peak returns the densest cell and its expected occupancy.
func (h *Heatmap) Peak() (row, col int, density float64) {
	for r, cells := range h.Cells {
		for c, v := range cells {
			if v > density {
				row, col, density = r, c, v
			}
		}
	}
	return
}

// OccupancyHeatmap answers the crowd-monitoring query "how many people
// are where in region R?": the region is split into a rows×cols grid
// and every mobile object's fused location probability is integrated
// into the cells, yielding an expected-occupancy density map (the
// city-scale analogue of §1.1's "who is in room R?", aggregated
// instead of enumerated).
//
// The whole scan is pinned to one database snapshot, so the map is a
// consistent cut: each object is evaluated against the same set of
// completed insert batches, and grid fusion holds no table locks.
// Objects fan out across the service's worker pool exactly like
// ObjectsInRegion; per-object results land in index-addressed slots,
// so the merged grid is deterministic.
func (s *Service) OccupancyHeatmap(region glob.GLOB, rows, cols int) (*Heatmap, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("heatmap: non-positive grid %dx%d", rows, cols)
	}
	rect, err := s.db.ResolveGLOB(region)
	if err != nil {
		return nil, fmt.Errorf("heatmap: %w", err)
	}
	start := time.Now()
	snap := s.db.Snapshot()
	defer snap.Close()
	now := s.now()
	ids := snap.MobileObjects()

	cellW := (rect.Max.X - rect.Min.X) / float64(cols)
	cellH := (rect.Max.Y - rect.Min.Y) / float64(rows)
	grids := make([][]float64, len(ids)) // per-object flat grid, index-addressed
	eval := func(i int) {
		readings := s.fusionStateSnap(snap, ids[i], now)
		if len(readings) == 0 {
			return
		}
		// Cheap cull: an object with no mass in the whole region
		// contributes nothing to any cell.
		if fusion.ProbRegion(snap.Universe(), readings, rect) <= 0 {
			return
		}
		g := make([]float64, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				cell := geom.R(
					rect.Min.X+float64(c)*cellW,
					rect.Min.Y+float64(r)*cellH,
					rect.Min.X+float64(c+1)*cellW,
					rect.Min.Y+float64(r+1)*cellH,
				)
				g[r*cols+c] = fusion.ProbRegion(snap.Universe(), readings, cell)
			}
		}
		grids[i] = g
	}
	if s.pool != nil && len(ids) >= parallelFanThreshold {
		s.pool.fanOutChunked(len(ids), s.parallelism, eval)
	} else {
		for i := range ids {
			eval(i)
		}
	}

	h := &Heatmap{Region: rect, Rows: rows, Cols: cols, At: now}
	h.Cells = make([][]float64, rows)
	for r := range h.Cells {
		h.Cells[r] = make([]float64, cols)
	}
	for _, g := range grids {
		if g == nil {
			continue
		}
		h.Objects++
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				h.Cells[r][c] += g[r*cols+c]
			}
		}
	}
	mHeatmapUs.Observe(float64(time.Since(start).Microseconds()))
	return h, nil
}
