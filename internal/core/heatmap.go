package core

import (
	"fmt"
	"math"
	"time"

	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// Heatmap metrics. The histogram observes every call — error and
// empty-region paths included — so latency percentiles never silently
// exclude the cheap exits. candidates/culled expose the support
// pre-filter's selectivity: candidates counts objects the per-shard
// support R-trees returned for inspection, culled the subset rejected
// by the live-support gate before any grid fusion ran.
var (
	mHeatmapUs      = obs.Default().Histogram("core_heatmap_us")
	mHeatCandidates = obs.Default().Counter("core_heatmap_candidates")
	mHeatCulled     = obs.Default().Counter("core_heatmap_culled")
)

// Heatmap is a crowd-density grid over a region: Cells[r][c] is the
// expected number of people in that cell — the sum over every mobile
// object of its fused probability of being there. Cell (0,0) is the
// region's min corner; rows advance along Y, columns along X.
type Heatmap struct {
	Region geom.Rect   `json:"region"`
	Rows   int         `json:"rows"`
	Cols   int         `json:"cols"`
	Cells  [][]float64 `json:"cells"`
	// Objects is the number of mobile objects that contributed mass.
	Objects int `json:"objects"`
	// At is the query's evaluation time.
	At time.Time `json:"at"`
}

// Total returns the expected total occupancy over the whole grid.
func (h *Heatmap) Total() float64 {
	var t float64
	for _, row := range h.Cells {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Peak returns the densest cell and its expected occupancy.
func (h *Heatmap) Peak() (row, col int, density float64) {
	for r, cells := range h.Cells {
		for c, v := range cells {
			if v > density {
				row, col, density = r, c, v
			}
		}
	}
	return
}

// objGrid is one object's contribution to the heatmap: a clipped
// rasterization covering only the cell window [r0,r1]x[c0,c1] its
// support touches, so memory and fusion work scale with the support's
// footprint, not the whole grid.
type objGrid struct {
	cells          []float64
	r0, c0, r1, c1 int
}

// OccupancyHeatmap answers the crowd-monitoring query "how many people
// are where in region R?": the region is split into a rows×cols grid
// and every mobile object's fused location probability is integrated
// into the cells, yielding an expected-occupancy density map (the
// city-scale analogue of §1.1's "who is in room R?", aggregated
// instead of enumerated).
//
// The scan is sublinear in the total object count: candidates come
// from the per-shard support R-trees (Snapshot.SupportCandidates)
// instead of iterating every mobile object, each candidate is gated on
// its live reading support, and rasterization is clipped to the cells
// that support actually touches (DESIGN.md §17). An object whose
// readings place no rectangle over the region contributes nothing —
// the support-gate semantics that makes the pre-filter exact.
//
// The whole scan is pinned to one database snapshot, so the map is a
// consistent cut: each object is evaluated against the same set of
// completed insert batches, and grid fusion holds no table locks.
// Candidates fan out across the service's worker pool exactly like
// ObjectsInRegion; per-object results land in index-addressed slots,
// so the merged grid is deterministic.
func (s *Service) OccupancyHeatmap(region glob.GLOB, rows, cols int) (*Heatmap, error) {
	start := time.Now()
	defer func() {
		mHeatmapUs.Observe(float64(time.Since(start).Microseconds()))
	}()
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("heatmap: non-positive grid %dx%d", rows, cols)
	}
	rect, err := s.db.ResolveGLOB(region)
	if err != nil {
		return nil, fmt.Errorf("heatmap: %w", err)
	}
	snap := s.db.Snapshot()
	defer snap.Close()
	return s.heatmapOn(snap, rect, rows, cols, s.now(), true), nil
}

// heatmapOn computes the occupancy grid over rect against one
// snapshot. prefilter selects the candidate source: the support R-tree
// pre-filter (production), or an exhaustive scan of every mobile
// object (the reference the equivalence tests compare against — both
// paths apply the same live-support gate, so they must produce
// cell-identical grids).
func (s *Service) heatmapOn(snap *spatialdb.Snapshot, rect geom.Rect, rows, cols int, now time.Time, prefilter bool) *Heatmap {
	h := &Heatmap{Region: rect, Rows: rows, Cols: cols, At: now}
	h.Cells = make([][]float64, rows)
	for r := range h.Cells {
		h.Cells[r] = make([]float64, cols)
	}
	if rect.Area() <= 0 {
		// Degenerate region: every cell has zero area, so no object
		// can deposit mass (ProbRegion of a zero-area cell is 0).
		return h
	}

	var ids []string
	if prefilter {
		cands := snap.SupportCandidates(rect)
		ids = make([]string, len(cands))
		for i, c := range cands {
			ids[i] = c.ID
		}
	} else {
		ids = snap.MobileObjects()
	}
	mHeatCandidates.Add(uint64(len(ids)))

	cellW := rect.Width() / float64(cols)
	cellH := rect.Height() / float64(rows)
	grids := make([]objGrid, len(ids)) // index-addressed, deterministic merge
	var culled int
	eval := func(i int) {
		readings := s.fusionStateSnap(snap, ids[i], now)
		sup, ok := liveSupport(readings, rect)
		if !ok {
			return
		}
		g := rasterizeClipped(snap.Universe(), readings, sup, rect, rows, cols, cellW, cellH)
		grids[i] = g
	}
	if s.pool != nil && len(ids) >= parallelFanThreshold {
		s.pool.fanOutChunked(len(ids), s.parallelism, eval)
	} else {
		for i := range ids {
			eval(i)
		}
	}

	for _, g := range grids {
		if g.cells == nil {
			culled++
			continue
		}
		h.Objects++
		w := g.c1 - g.c0 + 1
		for r := g.r0; r <= g.r1; r++ {
			for c := g.c0; c <= g.c1; c++ {
				h.Cells[r][c] += g.cells[(r-g.r0)*w+(c-g.c0)]
			}
		}
	}
	mHeatCulled.Add(uint64(culled))
	return h
}

// liveSupport computes the bounding box of the object's live
// (TTL-filtered) fusion readings and gates it against the queried
// region: ok is false when the object has no readings or its support
// does not touch the region — the object contributes no mass under the
// support-gated semantics.
func liveSupport(readings []fusion.Reading, rect geom.Rect) (geom.Rect, bool) {
	sup, ok := fusion.SupportBounds(readings)
	if !ok || !sup.Intersects(rect) {
		return geom.Rect{}, false
	}
	return sup, true
}

// rasterizeClipped integrates one object's probability mass into the
// grid cells its support touches. The cell window is derived from the
// support clipped to the region, widened by one cell so boundary
// contact (Intersects includes it) is never missed, then each cell in
// the window is tested exactly — cells outside the support stay zero,
// which keeps clipped and full-grid rasterization cell-identical.
// When the support fits a single cell the window degenerates to that
// cell and the whole rasterization is one ProbRegion call.
func rasterizeClipped(universe geom.Rect, readings []fusion.Reading, sup, rect geom.Rect, rows, cols int, cellW, cellH float64) objGrid {
	sw, _ := sup.Intersect(rect)
	c0 := clampCell(int(math.Floor((sw.Min.X-rect.Min.X)/cellW))-1, cols)
	c1 := clampCell(int(math.Floor((sw.Max.X-rect.Min.X)/cellW))+1, cols)
	r0 := clampCell(int(math.Floor((sw.Min.Y-rect.Min.Y)/cellH))-1, rows)
	r1 := clampCell(int(math.Floor((sw.Max.Y-rect.Min.Y)/cellH))+1, rows)
	g := objGrid{r0: r0, c0: c0, r1: r1, c1: c1}
	w := c1 - c0 + 1
	g.cells = make([]float64, (r1-r0+1)*w)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			cell := geom.R(
				rect.Min.X+float64(c)*cellW,
				rect.Min.Y+float64(r)*cellH,
				rect.Min.X+float64(c+1)*cellW,
				rect.Min.Y+float64(r+1)*cellH,
			)
			if !cell.Intersects(sup) {
				continue
			}
			g.cells[(r-r0)*w+(c-c0)] = fusion.ProbRegion(universe, readings, cell)
		}
	}
	return g
}

// clampCell clamps a cell index to [0, n-1].
func clampCell(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
