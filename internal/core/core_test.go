package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/rcc"
	"middlewhere/internal/rules"
	"middlewhere/internal/topo"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

// testClock is a controllable clock.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// newTestService builds a service over the paper floor with a Ubisense
// sensor and a card reader on room 3105.
func newTestService(t *testing.T) (*Service, *testClock) {
	t.Helper()
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	ubi := model.UbisenseSpec(0.9)
	ubi.TTL = time.Minute // keep readings alive across test steps
	if err := s.RegisterSensor("ubi-1", ubi); err != nil {
		t.Fatal(err)
	}
	rfid := model.RFIDSpec(0.8)
	if err := s.RegisterSensor("rf-1", rfid); err != nil {
		t.Fatal(err)
	}
	card := model.CardReaderSpec(glob.MustParse("CS/Floor3/3105"))
	if err := s.RegisterSensor("card-3105", card); err != nil {
		t.Fatal(err)
	}
	return s, clock
}

// ingestAt inserts a coordinate reading at floor coordinates (x, y).
func ingestAt(t *testing.T, s *Service, sensor, obj string, x, y float64, at time.Time) {
	t.Helper()
	err := s.Ingest(model.Reading{
		SensorID:  sensor,
		MObjectID: obj,
		Location:  glob.CoordinatePoint(glob.MustParse("CS/Floor3"), geom.Pt(x, y)),
		Time:      at,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocateObjectSingleSensor(t *testing.T) {
	s, _ := newTestService(t)
	// Alice's tag is in the NetLab.
	ingestAt(t, s, "ubi-1", "alice", 370, 15, t0)
	loc, err := s.LocateObject("alice")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("symbolic = %s", loc.Symbolic)
	}
	if loc.Prob <= 0.5 {
		t.Errorf("prob = %v, want confident", loc.Prob)
	}
	if !geom.R(360, 0, 380, 30).ContainsRect(loc.Rect) {
		t.Errorf("rect %v outside NetLab", loc.Rect)
	}
	if len(loc.Support) != 1 || loc.Support[0] != "ubi-1" {
		t.Errorf("support = %v", loc.Support)
	}
	if loc.Band < fusion.BandMedium {
		t.Errorf("band = %v", loc.Band)
	}
	if loc.Coordinate.IsZero() {
		t.Error("coordinate GLOB missing")
	}
}

func TestLocateObjectFusesTwoSensors(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "bob", 340, 15, t0)
	single, err := s.LocateObject("bob")
	if err != nil {
		t.Fatal(err)
	}
	// An RFID badge agrees (bigger rectangle around the same spot).
	ingestAt(t, s, "rf-1", "bob", 340, 15, t0)
	both, err := s.LocateObject("bob")
	if err != nil {
		t.Fatal(err)
	}
	if both.Prob <= single.Prob {
		t.Errorf("fusion should reinforce: %v -> %v", single.Prob, both.Prob)
	}
	if len(both.Support) != 2 {
		t.Errorf("support = %v", both.Support)
	}
	if both.Symbolic.String() != "CS/Floor3/3105" {
		t.Errorf("symbolic = %s", both.Symbolic)
	}
}

func TestLocateObjectConflictDiscardsStale(t *testing.T) {
	s, _ := newTestService(t)
	// The badge sits in 3105 (stationary), while the moving Ubisense
	// tag walks the corridor.
	ingestAt(t, s, "rf-1", "carol", 340, 15, t0)
	ingestAt(t, s, "ubi-1", "carol", 100, 35, t0)
	ingestAt(t, s, "ubi-1", "carol", 110, 35, t0.Add(time.Second)) // moving now
	loc, err := s.LocateObject("carol")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3/MainCorridor" {
		t.Errorf("symbolic = %s (rect %v)", loc.Symbolic, loc.Rect)
	}
	if len(loc.Discarded) == 0 {
		t.Error("conflicting badge reading should be discarded")
	}
}

func TestLocateUnknownObject(t *testing.T) {
	s, _ := newTestService(t)
	if _, err := s.LocateObject("nobody"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("err = %v", err)
	}
}

func TestTTLExpiryLosesObject(t *testing.T) {
	s, clock := newTestService(t)
	ingestAt(t, s, "ubi-1", "dave", 370, 15, t0)
	if _, err := s.LocateObject("dave"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute) // past the 1-minute TTL
	if _, err := s.LocateObject("dave"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("expired readings: err = %v", err)
	}
}

func TestTemporalDegradationLowersProbability(t *testing.T) {
	s, clock := newTestService(t)
	ingestAt(t, s, "ubi-1", "erin", 370, 15, t0)
	fresh, err := s.LocateObject("erin")
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(40 * time.Second) // several Ubisense half-lives
	stale, err := s.LocateObject("erin")
	if err != nil {
		t.Fatal(err)
	}
	if stale.Prob >= fresh.Prob {
		t.Errorf("tdf should lower probability: %v -> %v", fresh.Prob, stale.Prob)
	}
}

func TestProbInRegionQueries(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "fred", 370, 15, t0)
	// Symbolic region query.
	p, band, err := s.ProbInRegion("fred", glob.MustParse("CS/Floor3/NetLab"))
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.5 || band < fusion.BandMedium {
		t.Errorf("NetLab prob = %v band = %v", p, band)
	}
	// A different room scores lower.
	pOther, _, err := s.ProbInRegion("fred", glob.MustParse("CS/Floor3/HCILab"))
	if err != nil {
		t.Fatal(err)
	}
	if pOther >= p {
		t.Errorf("HCILab %v should score below NetLab %v", pOther, p)
	}
	// Coordinate region query.
	pCoord, _, err := s.ProbInRegion("fred", glob.MustParse("CS/Floor3/(365,10),(375,10),(375,20),(365,20)"))
	if err != nil {
		t.Fatal(err)
	}
	if pCoord <= 0 {
		t.Errorf("coordinate region prob = %v", pCoord)
	}
	// Unknown region.
	if _, _, err := s.ProbInRegion("fred", glob.MustParse("CS/Floor3/void")); err == nil {
		t.Error("unknown region should error")
	}
	// Unknown object.
	if _, _, err := s.ProbInRegion("ghost", glob.MustParse("CS/Floor3/NetLab")); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object err = %v", err)
	}
}

func TestObjectsInRegion(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "gail", 370, 15, t0)
	ingestAt(t, s, "rf-1", "hank", 100, 35, t0)
	got, err := s.ObjectsInRegion(glob.MustParse("CS/Floor3/NetLab"), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["gail"]; !ok {
		t.Errorf("gail missing from NetLab: %v", got)
	}
	if _, ok := got["hank"]; ok {
		t.Errorf("hank should not be in NetLab: %v", got)
	}
}

func TestSubscriptionEntryNotification(t *testing.T) {
	s, _ := newTestService(t)
	var mu sync.Mutex
	var got []Notification
	done := make(chan struct{}, 8)
	id, err := s.Subscribe(Subscription{
		Region:  glob.MustParse("CS/Floor3/NetLab"),
		MinProb: 0.3,
		Handler: func(n Notification) {
			mu.Lock()
			got = append(got, n)
			mu.Unlock()
			done <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Subscriptions() != 1 {
		t.Errorf("subscriptions = %d", s.Subscriptions())
	}
	// ivan walks into the NetLab.
	ingestAt(t, s, "ubi-1", "ivan", 370, 15, t0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}
	mu.Lock()
	if len(got) != 1 || got[0].Object != "ivan" || got[0].SubscriptionID != id {
		t.Fatalf("notifications = %+v", got)
	}
	if got[0].Prob < 0.3 {
		t.Errorf("prob = %v", got[0].Prob)
	}
	mu.Unlock()
	// A second reading inside the region does NOT re-notify (entry
	// semantics).
	ingestAt(t, s, "ubi-1", "ivan", 371, 16, t0.Add(time.Second))
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	if len(got) != 1 {
		t.Errorf("re-notified while inside: %+v", got)
	}
	mu.Unlock()
	// Leaving and re-entering notifies again.
	ingestAt(t, s, "ubi-1", "ivan", 100, 35, t0.Add(2*time.Second))
	ingestAt(t, s, "ubi-1", "ivan", 370, 15, t0.Add(3*time.Second))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("no re-entry notification")
	}
	if err := s.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Unsubscribe(id); !errors.Is(err, ErrBadSub) {
		t.Errorf("double unsubscribe err = %v", err)
	}
}

func TestSubscriptionEveryReading(t *testing.T) {
	s, _ := newTestService(t)
	var mu sync.Mutex
	count := 0
	_, err := s.Subscribe(Subscription{
		Object:       "judy",
		Region:       glob.MustParse("CS/Floor3/NetLab"),
		EveryReading: true,
		Handler: func(Notification) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ingestAt(t, s, "ubi-1", "judy", 370, 15, t0.Add(time.Duration(i)*time.Second))
	}
	// Another object must not trigger judy's subscription.
	ingestAt(t, s, "ubi-1", "karl", 370, 15, t0)
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("count = %d, want 3", c)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestSubscriptionBandFilter(t *testing.T) {
	s, _ := newTestService(t)
	notified := make(chan Notification, 4)
	_, err := s.Subscribe(Subscription{
		Region:  glob.MustParse("CS/Floor3/NetLab"),
		MinBand: fusion.BandVeryHigh,
		Handler: func(n Notification) { notified <- n },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A weak RFID fix does not reach very-high.
	ingestAt(t, s, "rf-1", "lena", 370, 15, t0)
	select {
	case n := <-notified:
		t.Fatalf("unexpected notification %+v", n)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestSubscribeErrors(t *testing.T) {
	s, _ := newTestService(t)
	if _, err := s.Subscribe(Subscription{Region: glob.MustParse("CS/Floor3/NetLab")}); !errors.Is(err, ErrBadSub) {
		t.Errorf("nil handler err = %v", err)
	}
	_, err := s.Subscribe(Subscription{
		Region:  glob.MustParse("CS/Floor3/void"),
		Handler: func(Notification) {},
	})
	if !errors.Is(err, ErrBadSub) {
		t.Errorf("bad region err = %v", err)
	}
}

func TestPrivacyGranularity(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "mary", 370, 15, t0)
	s.SetPrivacy("mary", PrivacyPolicy{MaxGranularity: glob.GranFloor})
	loc, err := s.LocateObject("mary")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3" {
		t.Errorf("symbolic = %s, want floor only", loc.Symbolic)
	}
	// The rectangle is coarsened to the floor bounds.
	if !loc.Rect.Eq(geom.R(0, 0, 500, 100)) {
		t.Errorf("rect = %v, want floor bounds", loc.Rect)
	}
	// Hide coordinates entirely.
	s.SetPrivacy("mary", PrivacyPolicy{MaxGranularity: glob.GranRoom, HideCoordinates: true})
	loc, err = s.LocateObject("mary")
	if err != nil {
		t.Fatal(err)
	}
	if !loc.Coordinate.IsZero() || loc.Rect.Area() != 0 {
		t.Errorf("coordinates should be hidden: %+v", loc)
	}
	if loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("symbolic = %s", loc.Symbolic)
	}
	// Clearing the policy restores full detail.
	s.SetPrivacy("mary", PrivacyPolicy{})
	loc, _ = s.LocateObject("mary")
	if loc.Coordinate.IsZero() {
		t.Error("policy not cleared")
	}
}

func TestRelateRegions(t *testing.T) {
	s, _ := newTestService(t)
	rel, pass, err := s.RelateRegions(
		glob.MustParse("CS/Floor3/NetLab"), glob.MustParse("CS/Floor3/MainCorridor"))
	if err != nil {
		t.Fatal(err)
	}
	if rel != rcc.EC || pass != rcc.PassageFree {
		t.Errorf("NetLab-corridor = %v %v", rel, pass)
	}
	// Coordinate regions relate geometrically.
	rel, _, err = s.RelateRegions(
		glob.MustParse("CS/Floor3/(0,0),(10,0),(10,10),(0,10)"),
		glob.MustParse("CS/Floor3/(2,2),(4,2),(4,4),(2,4)"))
	if err != nil {
		t.Fatal(err)
	}
	if rel != rcc.NTPPi {
		t.Errorf("nested coordinate regions = %v", rel)
	}
	if _, _, err := s.RelateRegions(glob.MustParse("CS/Floor3/void"), glob.MustParse("CS/Floor3")); err == nil {
		t.Error("unknown region should error")
	}
}

func TestRouteAndRegionDistance(t *testing.T) {
	s, _ := newTestService(t)
	netlab := glob.MustParse("CS/Floor3/NetLab")
	hcilab := glob.MustParse("CS/Floor3/HCILab")
	room3105 := glob.MustParse("CS/Floor3/3105")

	rt, err := s.RouteBetween(netlab, hcilab, topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Regions) != 3 || rt.Regions[1] != "CS/Floor3/MainCorridor" {
		t.Errorf("route = %v", rt.Regions)
	}
	eu, path, err := s.RegionDistance(netlab, hcilab, topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if eu <= 0 || path <= eu {
		t.Errorf("distances eu=%v path=%v", eu, path)
	}
	// 3105 unreachable free-only: path is +Inf but Euclidean remains.
	eu, path, err = s.RegionDistance(netlab, room3105, topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if eu <= 0 || path != topo.Infinity {
		t.Errorf("locked room: eu=%v path=%v", eu, path)
	}
}

func TestObjectRelations(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "nina", 370, 15, t0)
	ingestAt(t, s, "ubi-1", "omar", 372, 15, t0)
	ingestAt(t, s, "ubi-1", "pete", 395, 15, t0) // HCILab

	// Proximity: nina and omar are ~2 apart.
	p, err := s.Proximity("nina", "omar", 5)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.3 {
		t.Errorf("close proximity = %v", p)
	}
	pFar, err := s.Proximity("nina", "pete", 5)
	if err != nil {
		t.Fatal(err)
	}
	if pFar != 0 {
		t.Errorf("far proximity = %v", pFar)
	}

	// Co-location at room granularity.
	ok, pj, err := s.CoLocated("nina", "omar", glob.GranRoom)
	if err != nil || !ok || pj <= 0 {
		t.Errorf("co-located = %v %v %v", ok, pj, err)
	}
	ok, _, err = s.CoLocated("nina", "pete", glob.GranRoom)
	if err != nil || ok {
		t.Errorf("different rooms co-located = %v %v", ok, err)
	}
	ok, _, err = s.CoLocated("nina", "pete", glob.GranFloor)
	if err != nil || !ok {
		t.Errorf("same floor not co-located = %v %v", ok, err)
	}

	// Distances: path >= Euclidean through walls.
	eu, path, err := s.ObjectDistance("nina", "pete", topo.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if eu <= 0 || path < eu {
		t.Errorf("eu=%v path=%v", eu, path)
	}

	if _, err := s.Proximity("nina", "ghost", 5); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown proximity err = %v", err)
	}
}

func TestUsageRegions(t *testing.T) {
	s, _ := newTestService(t)
	// quinn stands right at the NetLab display (local (2..8, 0) ->
	// universe x 362..368, y 0).
	ingestAt(t, s, "ubi-1", "quinn", 365, 3, t0)
	p, err := s.InUsageRegion("quinn", "CS/Floor3/NetLab/display1")
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.3 {
		t.Errorf("usage prob = %v", p)
	}
	// NearestUsable picks the NetLab display over the HCILab one.
	id, pBest, err := s.NearestUsable("quinn", "Display", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if id != "CS/Floor3/NetLab/display1" || pBest < p-1e-9 {
		t.Errorf("nearest usable = %s (%v)", id, pBest)
	}
	// Far from any display.
	ingestAt(t, s, "ubi-1", "rosa", 50, 80, t0)
	if _, _, err := s.NearestUsable("rosa", "Display", 0.2); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("no usable display err = %v", err)
	}
	// The light switch has no usage region.
	if _, err := s.InUsageRegion("quinn", "CS/Floor3/3105/lightswitch1"); err == nil {
		t.Error("object without usage region should error")
	}
}

func TestRuleEngineFacts(t *testing.T) {
	s, _ := newTestService(t)
	e := s.RuleEngine()
	// NetLab has a free door to the main corridor.
	ok, err := e.Holds(rules.A("ecfp", rules.C("CS/Floor3/NetLab"), rules.C("CS/Floor3/MainCorridor")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ecfp fact missing")
	}
	// 3105's corridor doors are restricted.
	ok, err = e.Holds(rules.A("ecrp", rules.C("CS/Floor3/3105"), rules.C("CS/Floor3/MainCorridor")))
	if err != nil || !ok {
		t.Errorf("ecrp fact = %v %v", ok, err)
	}
	// Derived reachability over the facts.
	if err := e.AddRule(rules.R(
		rules.A("reach", rules.V("X"), rules.V("Y")),
		rules.Pos(rules.A("ecfp", rules.V("X"), rules.V("Y"))),
	)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(rules.R(
		rules.A("reach", rules.V("X"), rules.V("Z")),
		rules.Pos(rules.A("reach", rules.V("X"), rules.V("Y"))),
		rules.Pos(rules.A("ecfp", rules.V("Y"), rules.V("Z"))),
	)); err != nil {
		t.Fatal(err)
	}
	ok, err = e.Holds(rules.A("reach", rules.C("CS/Floor3/NetLab"), rules.C("CS/Floor3/HCILab")))
	if err != nil || !ok {
		t.Errorf("derived reach = %v %v", ok, err)
	}
	// The locked room is not freely reachable.
	ok, err = e.Holds(rules.A("reach", rules.C("CS/Floor3/NetLab"), rules.C("CS/Floor3/3105")))
	if err != nil || ok {
		t.Errorf("locked reach = %v %v", ok, err)
	}
}

func TestCloseIdempotentAndDrains(t *testing.T) {
	s, _ := newTestService(t)
	var wg sync.WaitGroup
	wg.Add(1)
	_, err := s.Subscribe(Subscription{
		Region:  glob.MustParse("CS/Floor3/NetLab"),
		Handler: func(Notification) { wg.Done() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestAt(t, s, "ubi-1", "sam", 370, 15, t0)
	wg.Wait()
	s.Close()
	s.Close() // second close is a no-op
}

func TestHistoryRecording(t *testing.T) {
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now), WithHistory(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ubi := model.UbisenseSpec(0.9)
	ubi.TTL = time.Minute
	if err := s.RegisterSensor("ubi-1", ubi); err != nil {
		t.Fatal(err)
	}
	// No history yet.
	if got := s.History("walker"); len(got) != 0 {
		t.Errorf("premature history: %v", got)
	}
	// Five readings with a bounded depth of 3: only the last three
	// estimates remain.
	positions := []float64{100, 150, 200, 250, 300}
	for i, x := range positions {
		clock.Advance(time.Second)
		ingestAt(t, s, "ubi-1", "walker", x, 35, clock.Now())
		_ = i
	}
	trail := s.History("walker")
	if len(trail) != 3 {
		t.Fatalf("trail length = %d", len(trail))
	}
	// Oldest first, tracking the walk east.
	for i := 1; i < len(trail); i++ {
		if trail[i].Rect.Center().X <= trail[i-1].Rect.Center().X {
			t.Errorf("trail not monotone east: %v then %v",
				trail[i-1].Rect.Center(), trail[i].Rect.Center())
		}
		if trail[i].At.Before(trail[i-1].At) {
			t.Error("trail timestamps out of order")
		}
	}
	// HistorySince cuts the prefix.
	since := s.HistorySince("walker", trail[2].At)
	if len(since) != 1 {
		t.Errorf("since = %d entries", len(since))
	}
	if got := s.TrackedObjects(); len(got) != 1 || got[0] != "walker" {
		t.Errorf("tracked = %v", got)
	}
	// The returned slice is a copy.
	trail[0].Object = "mutated"
	if s.History("walker")[0].Object != "walker" {
		t.Error("History exposed internal storage")
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "x", 100, 35, t0)
	if got := s.History("x"); got != nil {
		t.Errorf("history without option: %v", got)
	}
	if got := s.TrackedObjects(); got != nil {
		t.Errorf("tracked without option: %v", got)
	}
}

func TestDistribution(t *testing.T) {
	s, _ := newTestService(t)
	// Two agreeing sensors plus a conflicting stationary badge give a
	// multi-cell posterior.
	ingestAt(t, s, "ubi-1", "dana", 370, 15, t0)
	ingestAt(t, s, "rf-1", "dana", 370, 15, t0)
	dist, err := s.Distribution("dana")
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) == 0 {
		t.Fatal("empty distribution")
	}
	var total float64
	for _, cell := range dist {
		if cell.Prob < 0 || cell.Prob > 1 {
			t.Errorf("cell prob = %v", cell.Prob)
		}
		total += cell.Prob
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("distribution sums to %v", total)
	}
	// Sorted descending, and the top cell is in the NetLab.
	for i := 1; i < len(dist); i++ {
		if dist[i].Prob > dist[i-1].Prob {
			t.Error("distribution not sorted")
		}
	}
	if dist[0].Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("top cell in %s", dist[0].Symbolic)
	}
	if _, err := s.Distribution("ghost"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object err = %v", err)
	}
}

func TestAccessPolicyPerRequester(t *testing.T) {
	s, _ := newTestService(t)
	ingestAt(t, s, "ubi-1", "boss", 370, 15, t0)
	s.SetAccessPolicy("boss", AccessPolicy{
		Default: PrivacyPolicy{MaxGranularity: glob.GranBuilding},
		Grants: map[string]PrivacyPolicy{
			"assistant": {MaxGranularity: glob.GranRoom},
			"spouse":    {}, // unrestricted grant? zero policy = no coarsening
		},
	})
	// A stranger sees only the building.
	loc, err := s.LocateObjectFor("stranger", "boss")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS" {
		t.Errorf("stranger sees %s", loc.Symbolic)
	}
	// The assistant sees the room.
	loc, err = s.LocateObjectFor("assistant", "boss")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("assistant sees %s", loc.Symbolic)
	}
	// The spouse's zero grant means no coarsening.
	loc, err = s.LocateObjectFor("spouse", "boss")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3/NetLab" || loc.Coordinate.IsZero() {
		t.Errorf("spouse sees %s (coord zero=%v)", loc.Symbolic, loc.Coordinate.IsZero())
	}
	// The subject always sees everything.
	loc, err = s.LocateObjectFor("boss", "boss")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("self sees %s", loc.Symbolic)
	}
	// No policy: everyone sees everything.
	ingestAt(t, s, "ubi-1", "open", 370, 15, t0)
	loc, err = s.LocateObjectFor("anyone", "open")
	if err != nil || loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("unrestricted object: %s %v", loc.Symbolic, err)
	}
	// Clearing the policy restores openness.
	s.SetAccessPolicy("boss", AccessPolicy{})
	loc, _ = s.LocateObjectFor("stranger", "boss")
	if loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("policy not cleared: %s", loc.Symbolic)
	}
}

func TestDefineRegionAndStatic(t *testing.T) {
	s, _ := newTestService(t)
	// The paper's §4.5 example: a work region inside a room.
	workArea := glob.MustParse("CS/Floor3/NetLab/workArea")
	err := s.DefineRegion(workArea, geom.Polygon{
		geom.Pt(2, 2), geom.Pt(10, 2), geom.Pt(10, 10), geom.Pt(2, 10),
	}, map[string]string{"purpose": "focus"})
	if err != nil {
		t.Fatal(err)
	}
	// Coordinates resolve in the room frame -> universe.
	rect, err := s.DB().ResolveGLOB(workArea)
	if err != nil {
		t.Fatal(err)
	}
	if !geom.R(362, 2, 370, 10).Eq(rect) {
		t.Errorf("work area = %v", rect)
	}
	// Region queries work against it immediately.
	ingestAt(t, s, "ubi-1", "worker", 366, 6, t0)
	p, _, err := s.ProbInRegion("worker", workArea)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.3 {
		t.Errorf("P(in work area) = %v", p)
	}
	// Subscriptions can target it.
	got := make(chan Notification, 2)
	if _, err := s.Subscribe(Subscription{
		Region:  workArea,
		MinProb: 0.3,
		Handler: func(n Notification) { got <- n },
	}); err != nil {
		t.Fatal(err)
	}
	ingestAt(t, s, "ubi-1", "visitor", 366, 6, t0)
	select {
	case n := <-got:
		if n.Object != "visitor" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification for defined region")
	}
	// The symbolic lattice chain: workArea ⊂ NetLab ⊂ Floor3.
	chain, err := s.SymbolicAncestors(workArea)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].String() != "CS/Floor3/NetLab" || chain[1].String() != "CS/Floor3" {
		t.Errorf("ancestors = %v", chain)
	}
	// Static objects.
	table := glob.MustParse("CS/Floor3/NetLab/table1")
	err = s.DefineStatic(table, "Table", glob.KindPolygon,
		[]geom.Point{{X: 12, Y: 12}, {X: 16, Y: 12}, {X: 16, Y: 14}, {X: 12, Y: 14}},
		map[string]string{"usage-radius": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if p, err := s.InUsageRegion("worker", table.String()); err != nil || p < 0 {
		t.Errorf("table usage = %v %v", p, err)
	}
	// Removal.
	if err := s.RemoveRegion(workArea); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB().ResolveGLOB(workArea); err == nil {
		t.Error("region still resolvable after removal")
	}
	// Coordinate GLOBs are rejected.
	if err := s.DefineRegion(glob.MustParse("CS/Floor3/(1,1)"), nil, nil); err == nil {
		t.Error("coordinate GLOB should be rejected")
	}
	if err := s.DefineStatic(glob.MustParse("CS/Floor3/(1,1)"), "Table", glob.KindPoint, nil, nil); err == nil {
		t.Error("coordinate GLOB should be rejected")
	}
}
