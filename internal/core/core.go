// Package core implements the MiddleWhere Location Service (§4): the
// single source of location information for location-sensitive
// applications. It fuses data from multiple sensors and resolves
// conflicts (§4.1), answers object-based and region-based queries
// (§4.2), accepts subscriptions for location-based conditions and
// notifies applications when they become true (§4.3), classifies the
// probability space into bands (§4.4), resolves symbolic regions with
// privacy granularity limits (§4.5), and derives spatial relationships
// between objects and regions (§4.6).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/rcc"
	"middlewhere/internal/rules"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

// Location is the consolidated answer to "where is object X?": the
// inferred rectangle in the universe frame, its probability and band,
// and the symbolic region it falls in.
type Location struct {
	// Object is the located mobile object's ID.
	Object string
	// Rect is the inferred location MBR in the universe frame.
	Rect geom.Rect
	// Prob is the probability the object is within Rect.
	Prob float64
	// Band classifies Prob against the deployed sensors (§4.4).
	Band fusion.Band
	// Symbolic is the deepest symbolic region containing the estimate
	// (possibly truncated by a privacy policy).
	Symbolic glob.GLOB
	// Coordinate is the estimate's rectangle as a coordinate GLOB in
	// the universe frame.
	Coordinate glob.GLOB
	// Support and Discarded list the sensor readings used and rejected
	// by conflict resolution.
	Support, Discarded []string
	// At is the query evaluation time.
	At time.Time
}

// Notification is delivered to subscribers when their location
// condition becomes true (§4.3).
type Notification struct {
	// SubscriptionID identifies the subscription.
	SubscriptionID string
	// Object is the mobile object that satisfied the condition.
	Object string
	// Region is the subscription's region in the universe frame.
	Region geom.Rect
	// Prob is the fused probability that the object is in Region.
	Prob float64
	// Band classifies Prob.
	Band fusion.Band
	// At is when the triggering reading was evaluated.
	At time.Time
	// Trace is the obs trace ID of the reading that provoked this
	// notification (empty when tracing is disabled), so a remote
	// subscriber can attribute the push to its cause.
	Trace string
}

// Subscription configures a region-based notification (§4.3).
type Subscription struct {
	// Object restricts the subscription to one mobile object; empty
	// watches everyone.
	Object string
	// Region is the region of interest: a symbolic or coordinate GLOB.
	Region glob.GLOB
	// MinProb is the probability threshold; the subscriber is notified
	// when P(object in region) exceeds it. Zero means any positive
	// probability.
	MinProb float64
	// MinBand, when non-zero, additionally requires the probability to
	// reach the given band.
	MinBand fusion.Band
	// EveryReading requests a notification for every qualifying
	// reading. The default notifies only on entry — when the condition
	// transitions from false to true for an object.
	EveryReading bool
	// Handler receives notifications on the service's notifier
	// goroutine. It must not block for long.
	Handler func(Notification)
}

// PrivacyPolicy limits the granularity at which an object's location
// may be revealed (§4.5).
type PrivacyPolicy struct {
	// MaxGranularity is the deepest reveal allowed (e.g. GranRoom).
	MaxGranularity glob.Granularity
	// HideCoordinates suppresses the coordinate GLOB entirely.
	HideCoordinates bool
}

// Service is the Location Service. Create with New and Close when
// done.
type Service struct {
	db    *spatialdb.DB
	graph *topo.Graph
	bld   *building.Building
	now   func() time.Time

	mu       sync.Mutex
	subs     map[string]*subscription
	lastTrue map[string]map[string]bool // subID -> object -> condition state
	seq      int

	// privMu guards the read-mostly disclosure tables separately from
	// the subscription state: applyPrivacy sits on the locate hot path
	// and must not contend with trigger bookkeeping.
	privMu  sync.RWMutex
	privacy map[string]PrivacyPolicy // object -> policy
	acls    map[string]AccessPolicy  // object -> per-requester policy

	// cache holds per-object fused-location state invalidated by
	// reading epochs; sensors memoizes the spec table + classifier;
	// quantum bounds cached staleness on a live clock.
	cache   locateCache
	sensors sensorMemo
	quantum time.Duration

	// pool fans ObjectsInRegion and batched trigger evaluation across
	// objects; nil when parallelism is 1.
	parallelism int
	pool        *workerPool

	// notifyQs is the sharded notification queue set: worker i drains
	// notifyQs[i], and a subscription's dispatches always hash to the
	// same queue (queueFor), so per-subscription delivery order is
	// preserved while independent subscriptions deliver in parallel.
	notifyQs      []chan dispatch
	notifyWorkers int
	notifyWG      sync.WaitGroup
	stop          chan struct{}

	// started anchors Health's uptime.
	started time.Time
	// ingested and notified count readings accepted and notifications
	// dispatched since start (heartbeat counters for Health).
	ingested, notified atomic.Uint64

	// history is non-nil when WithHistory is enabled.
	history *historyRecorder

	// routerMu guards the federation ingest router. When one is
	// installed (federated daemons only), IngestBatch consults it to
	// forward readings owned by peer daemons before storing the rest
	// locally.
	routerMu     sync.RWMutex
	ingestRouter IngestRouter
}

// IngestRouter partitions an ingest batch for federation: it forwards
// readings whose floor shard is placed on a peer daemon and returns
// the indices (into the submitted slice, ascending) of the readings to
// store locally. An implementation must not lose readings: anything it
// cannot forward (peer down, no lease) it keeps local by including the
// index. The returned error reports forwarding trouble that did not
// lose data (the affected readings are in localIdx).
type IngestRouter interface {
	RouteReadings(rs []model.Reading) (localIdx []int, err error)
}

// SetIngestRouter installs (or, with nil, removes) the federation
// ingest router.
func (s *Service) SetIngestRouter(r IngestRouter) {
	s.routerMu.Lock()
	s.ingestRouter = r
	s.routerMu.Unlock()
}

func (s *Service) currentRouter() IngestRouter {
	s.routerMu.RLock()
	r := s.ingestRouter
	s.routerMu.RUnlock()
	return r
}

type subscription struct {
	id     string
	spec   Subscription
	region geom.Rect
}

type dispatch struct {
	fn func(Notification)
	n  Notification
	// enq anchors the notify stage: queue wait plus handler execution
	// both count against delivery, not trigger evaluation.
	enq time.Time
}

// Option configures the service.
type Option interface{ apply(*Service) }

type clockOption struct{ now func() time.Time }

func (o clockOption) apply(s *Service) { s.now = o.now }

// WithClock injects a clock; tests use it to control temporal
// degradation and TTLs deterministically.
func WithClock(now func() time.Time) Option { return clockOption{now: now} }

type parallelismOption struct{ n int }

func (o parallelismOption) apply(s *Service) { s.parallelism = o.n }

// WithParallelism sets the worker-pool size used to fan
// ObjectsInRegion and batched trigger evaluation across objects. Zero
// (the default) sizes the pool to GOMAXPROCS; 1 disables the pool and
// evaluates serially.
func WithParallelism(n int) Option { return parallelismOption{n} }

type quantumOption struct{ d time.Duration }

func (o quantumOption) apply(s *Service) { s.quantum = o.d }

// WithCacheQuantum sets how long a cached fused location may be served
// on a live clock before temporal degradation forces a recompute.
// Epoch invalidation on new readings is exact regardless; the quantum
// only bounds time-decay staleness. Zero restricts cache hits to
// queries at the exact cached instant (useful under a fixed test
// clock).
func WithCacheQuantum(d time.Duration) Option { return quantumOption{d} }

type notifyWorkersOption struct{ n int }

func (o notifyWorkersOption) apply(s *Service) { s.notifyWorkers = o.n }

// WithNotifyWorkers sets the number of notifier workers draining the
// sharded notification queues. Zero (the default) derives the count
// from the service parallelism, capped at maxNotifyWorkers; 1 restores
// the single-goroutine notifier. Notifications for one subscription
// always run on the same worker, in enqueue order, whatever the count.
func WithNotifyWorkers(n int) Option { return notifyWorkersOption{n} }

// Sentinel errors.
var (
	ErrUnknownObject = errors.New("core: no readings for object")
	ErrClosed        = errors.New("core: service closed")
	ErrBadSub        = errors.New("core: bad subscription")
)

// New builds a Location Service over a building model: it creates the
// spatial database, loads the floor objects, and builds the topology
// graph.
func New(b *building.Building, opts ...Option) (*Service, error) {
	db, err := b.NewDB()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	graph, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &Service{
		db:       db,
		graph:    graph,
		bld:      b,
		now:      time.Now,
		subs:     make(map[string]*subscription),
		lastTrue: make(map[string]map[string]bool),
		privacy:  make(map[string]PrivacyPolicy),
		acls:     make(map[string]AccessPolicy),
		cache:    locateCache{entries: make(map[string]*locEntry)},
		quantum:  defaultCacheQuantum,
		stop:     make(chan struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	if s.parallelism <= 0 {
		s.parallelism = runtime.GOMAXPROCS(0)
	}
	if s.parallelism > 1 {
		s.pool = newWorkerPool(s.parallelism)
		// Cross-shard object queries (Objects, IntersectingObjects,
		// Nearest, MWQL scans) fan their per-shard searches across the
		// same bounded pool.
		db.SetFanout(s.pool.fanOut)
	}
	if s.notifyWorkers <= 0 {
		s.notifyWorkers = s.parallelism
	}
	if s.notifyWorkers > maxNotifyWorkers {
		s.notifyWorkers = maxNotifyWorkers
	}
	// Total buffered capacity stays at the pre-sharding level (one
	// 1024-slot queue) split across the workers, with a floor so a
	// single slow handler still rides out bursts on its own queue.
	qcap := notifyQueueCap / s.notifyWorkers
	if qcap < minNotifyQueueCap {
		qcap = minNotifyQueueCap
	}
	s.notifyQs = make([]chan dispatch, s.notifyWorkers)
	s.notifyWG.Add(s.notifyWorkers)
	for i := range s.notifyQs {
		s.notifyQs[i] = make(chan dispatch, qcap)
		go s.notifier(s.notifyQs[i])
	}
	mNotifyWorkers.Set(float64(s.notifyWorkers))
	s.started = s.now()
	db.AddInsertHook(s.observeExit)
	if s.history != nil {
		db.AddInsertHook(s.observeForHistory)
	}
	return s, nil
}

// observeExit re-evaluates entry/exit state for subscriptions that
// currently hold an object inside their region when a new reading for
// that object lands elsewhere: without this, an object that left a
// region silently would still be considered inside and its next entry
// would not notify.
func (s *Service) observeExit(r model.Reading) {
	obj := r.MObjectID
	s.mu.Lock()
	var stale []*subscription
	for id, sub := range s.subs {
		if sub.spec.Object != "" && sub.spec.Object != obj {
			continue
		}
		if s.lastTrue[id][obj] && !sub.region.Intersects(r.Region) {
			stale = append(stale, sub)
		}
	}
	s.mu.Unlock()
	for _, sub := range stale {
		p, _, err := s.probInRect(obj, sub.region)
		inside := err == nil && p > 0 && p >= sub.spec.MinProb
		s.mu.Lock()
		if state, ok := s.lastTrue[sub.id]; ok {
			state[obj] = inside
		}
		s.mu.Unlock()
	}
}

// Notifier sizing. The per-queue buffer keeps the pre-sharding total
// (1024 dispatches) split across workers, floored so each queue still
// absorbs a burst alone.
const (
	maxNotifyWorkers  = 8
	notifyQueueCap    = 1024
	minNotifyQueueCap = 128
)

// Core metrics, cached once so the trigger/notify paths are pure
// atomics.
var (
	mIngested      = obs.Default().Counter("core_ingested_total")
	mTriggerEvals  = obs.Default().Counter("core_trigger_evals_total")
	mTriggerUs     = obs.Default().Histogram("core_trigger_eval_us")
	mNotified      = obs.Default().Counter("core_notifications_total")
	mNotifyUs      = obs.Default().Histogram("core_notify_us")
	mQueueDepth    = obs.Default().Gauge("core_notify_queue_depth")
	mNotifyWorkers = obs.Default().Gauge("core_notify_workers")
	mNotifyDrops   = obs.Default().Counter("core_notify_drops_total")
)

// queueFor maps a subscription to its notification queue: FNV-1a over
// the subscription ID, so one subscription's dispatches always land on
// the same worker (per-subscription order) while distinct
// subscriptions spread across the set.
func (s *Service) queueFor(subID string) chan dispatch {
	if len(s.notifyQs) == 1 {
		return s.notifyQs[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(subID); i++ {
		h = (h ^ uint32(subID[i])) * 16777619
	}
	return s.notifyQs[h%uint32(len(s.notifyQs))]
}

// notifyDepth sums the queued dispatches across every worker queue.
func (s *Service) notifyDepth() int {
	d := 0
	for _, q := range s.notifyQs {
		d += len(q)
	}
	return d
}

// deliver runs one queued notification handler, accounting queue wait
// plus handler time to the notify stage.
func (s *Service) deliver(d dispatch) {
	d.fn(d.n)
	mNotifyUs.Observe(float64(time.Since(d.enq).Microseconds()))
	obs.SpanSince(d.n.Trace, "notify", d.enq)
	mQueueDepth.Set(float64(s.notifyDepth()))
}

// notifier delivers one queue's notifications off the insert path.
// Each worker owns exactly one queue, so dispatches within a queue —
// and therefore within a subscription — run strictly in enqueue order.
func (s *Service) notifier(q chan dispatch) {
	defer s.notifyWG.Done()
	for {
		select {
		case d := <-q:
			s.deliver(d)
		case <-s.stop:
			// Drain anything already queued, then exit.
			for {
				select {
				case d := <-q:
					s.deliver(d)
				default:
					return
				}
			}
		}
	}
}

// Close stops the notifier workers and waits for them to exit.
func (s *Service) Close() {
	s.mu.Lock()
	select {
	case <-s.stop:
		s.mu.Unlock()
		return
	default:
		close(s.stop)
	}
	s.mu.Unlock()
	s.notifyWG.Wait()
	if s.pool != nil {
		s.pool.close()
	}
}

// DB exposes the underlying spatial database (adapters insert readings
// through it; applications may run object queries).
func (s *Service) DB() *spatialdb.DB { return s.db }

// Graph exposes the building topology graph.
func (s *Service) Graph() *topo.Graph { return s.graph }

// Universe returns the universe rectangle.
func (s *Service) Universe() geom.Rect { return s.db.Universe() }

// RegisterSensor records a sensor instance and its calibration.
func (s *Service) RegisterSensor(sensorID string, spec model.SensorSpec) error {
	return s.db.RegisterSensor(sensorID, spec)
}

// Ingest stores a sensor reading; database triggers fire and matching
// subscriptions are evaluated.
func (s *Service) Ingest(r model.Reading) error {
	if s.currentRouter() != nil {
		// Federated daemons route every reading so floors placed on
		// peer daemons receive theirs; the batch path owns that logic.
		return s.IngestBatch([]model.Reading{r})
	}
	if r.Trace == "" && obs.Enabled() {
		// Local ingest begins the trace here; readings arriving over
		// mwrpc carry the ID their client stamped.
		r.Trace = obs.BeginTrace()
	}
	if err := s.db.InsertReading(r); err != nil {
		return err
	}
	s.ingested.Add(1)
	mIngested.Inc()
	return nil
}

// Batch-ingest metrics.
var (
	mBatchIngests = obs.Default().Counter("core_batch_ingests_total")
	mBatchSize    = obs.Default().Histogram("core_batch_size")
	mForwarded    = obs.Default().Counter("core_forwarded_readings_total")
)

// IngestBatch stores a slice of readings in one database pass,
// amortizing lock acquisition across the batch and fanning the
// resulting trigger evaluations out per object on the worker pool.
// Readings that fail validation are skipped and reported in the
// returned *spatialdb.RejectedError (indices are positions in rs); the
// rest are stored, so callers must not re-submit the whole slice on
// that error.
func (s *Service) IngestBatch(rs []model.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	if obs.Enabled() {
		// Stamp traces on a copy; the caller's slice stays untouched.
		stamped := make([]model.Reading, len(rs))
		copy(stamped, rs)
		for i := range stamped {
			if stamped[i].Trace == "" {
				stamped[i].Trace = obs.BeginTrace()
			}
		}
		rs = stamped
	}
	router := s.currentRouter()
	if router == nil {
		return s.ingestStamped(rs)
	}
	localIdx, routeErr := router.RouteReadings(rs)
	if len(localIdx) == len(rs) {
		// Everything stayed local (single-daemon placement, or the
		// router fell back for every reading).
		if err := s.ingestStamped(rs); err != nil {
			return err
		}
		return routeErr
	}
	mForwarded.Add(uint64(len(rs) - len(localIdx)))
	if len(localIdx) == 0 {
		return routeErr
	}
	local := make([]model.Reading, 0, len(localIdx))
	for _, i := range localIdx {
		local = append(local, rs[i])
	}
	err := s.ingestStamped(local)
	// Rejected indices refer to the local subset; remap them to the
	// caller's positions so at-least-once retry logic stays exact.
	var rej *spatialdb.RejectedError
	if errors.As(err, &rej) {
		for k, li := range rej.Indices {
			rej.Indices[k] = localIdx[li]
		}
	}
	if err != nil {
		return err
	}
	return routeErr
}

// IngestBatchLocal stores a batch strictly on this daemon, bypassing
// the federation router. The federation layer serves forwarded batches
// through it — a forwarded reading must not be re-routed even when the
// placement maps briefly disagree, or two daemons could bounce it
// forever.
func (s *Service) IngestBatchLocal(rs []model.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	if obs.Enabled() {
		stamped := make([]model.Reading, len(rs))
		copy(stamped, rs)
		for i := range stamped {
			if stamped[i].Trace == "" {
				stamped[i].Trace = obs.BeginTrace()
			}
		}
		rs = stamped
	}
	return s.ingestStamped(rs)
}

// ingestStamped is the shared storage tail of the ingest paths: one
// database pass, counters, and batch metrics. Traces are already
// stamped.
func (s *Service) ingestStamped(rs []model.Reading) error {
	n, err := s.db.InsertReadings(rs, s.dispatchFirings)
	s.ingested.Add(uint64(n))
	mIngested.Add(uint64(n))
	mBatchIngests.Inc()
	mBatchSize.Observe(float64(len(rs)))
	return err
}

// classifier returns the §4.4 probability classifier for the
// registered sensors, memoized against the sensor-table generation.
func (s *Service) classifier() fusion.Classifier {
	_, cls := s.sensorView()
	return cls
}

// fusionReadings converts the object's live readings into fusion
// inputs: p_i is the spec's detection probability net of temporal
// degradation, and q_i is the spec's false-report probability scaled
// by area(A)/area(U) — a spurious report is uniformly distributed over
// the coverage area, so the likelihood of it landing on the reading's
// specific rectangle shrinks with that rectangle (the same scaling the
// paper applies to z in §6: z = z0·area(A)/area(U)).
func (s *Service) fusionReadings(objectID string, now time.Time) []fusion.Reading {
	rows := s.db.LatestPerSensor(objectID, now)
	specs, _ := s.sensorView()
	return fusion.FromReadings(rows, specs, now, s.db.Universe().Area())
}

// LocateObject answers the object-based query "where is X?" (§4.2):
// it fuses the live readings, resolves conflicts, classifies the
// probability, resolves the symbolic region, and applies any privacy
// policy registered for the object.
func (s *Service) LocateObject(objectID string) (Location, error) {
	now := s.now()
	readings, entry := s.fusionState(objectID, now)
	if len(readings) == 0 {
		return Location{}, fmt.Errorf("%w: %s", ErrUnknownObject, objectID)
	}
	if entry.hasLoc {
		// Warm path: the cached entry already carries the fused
		// location; only the per-request privacy policy is applied.
		return s.applyPrivacy(objectID, entry.loc), nil
	}
	lat := fusion.Build(s.db.Universe(), readings)
	est, err := lat.Infer()
	if err != nil {
		return Location{}, fmt.Errorf("locate %s: %w", objectID, err)
	}
	loc := Location{
		Object:     objectID,
		Rect:       est.Rect,
		Prob:       est.Prob,
		Band:       s.classifier().Classify(est.Prob),
		Symbolic:   s.symbolicRegion(est.Rect),
		Coordinate: glob.CoordinateRect(glob.Symbolic(s.bld.Name), est.Rect),
		Support:    est.Support,
		Discarded:  est.Discarded,
		// At is the evaluation time of the readings the estimate was
		// fused from, which for a cache hit predates the query by less
		// than the cache quantum.
		At: entry.at,
	}
	// Publish a fresh immutable entry carrying the fused location; the
	// keys and readings are inherited from the entry just validated.
	filled := *entry
	filled.hasLoc = true
	filled.loc = loc
	s.cache.put(objectID, &filled)
	return s.applyPrivacy(objectID, loc), nil
}

// symbolicRegion finds the deepest symbolic region whose bounds
// contain the estimate (falling back to the region containing its
// centre).
func (s *Service) symbolicRegion(r geom.Rect) glob.GLOB {
	best := glob.GLOB{}
	bestDepth := -1
	for _, o := range s.db.IntersectingObjects(r, spatialdb.ObjectFilter{}) {
		switch o.Type {
		case "Room", "Corridor", "Floor":
		default:
			continue
		}
		contains := o.Bounds.ContainsRect(r) || o.Bounds.ContainsPoint(r.Center())
		if contains && o.GLOB.Depth() > bestDepth {
			best, bestDepth = o.GLOB, o.GLOB.Depth()
		}
	}
	return best
}

// SetPrivacy registers a privacy policy for an object (§4.5). A zero
// policy removes the restriction.
func (s *Service) SetPrivacy(objectID string, p PrivacyPolicy) {
	s.privMu.Lock()
	defer s.privMu.Unlock()
	if p == (PrivacyPolicy{}) {
		delete(s.privacy, objectID)
		return
	}
	s.privacy[objectID] = p
}

func (s *Service) applyPrivacy(objectID string, loc Location) Location {
	s.privMu.RLock()
	p, ok := s.privacy[objectID]
	s.privMu.RUnlock()
	if !ok {
		return loc
	}
	return s.applyPolicy(loc, p)
}

// ProbInRegion answers the region-based query "what is the probability
// that X is in region R?" (§4.2). The region may be symbolic or
// coordinate.
func (s *Service) ProbInRegion(objectID string, region glob.GLOB) (float64, fusion.Band, error) {
	rect, err := s.db.ResolveGLOB(region)
	if err != nil {
		return 0, 0, fmt.Errorf("region query: %w", err)
	}
	return s.probInRect(objectID, rect)
}

func (s *Service) probInRect(objectID string, rect geom.Rect) (float64, fusion.Band, error) {
	now := s.now()
	readings, _ := s.fusionState(objectID, now)
	if len(readings) == 0 {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownObject, objectID)
	}
	p := fusion.ProbRegion(s.db.Universe(), readings, rect)
	return p, s.classifier().Classify(p), nil
}

// ObjectsInRegion answers "who is in room R?" (§1.1's region-based
// location): every mobile object whose probability of being in the
// region reaches minProb, with the probabilities.
//
// The scan is sublinear in total object count: candidates come from
// the per-shard support R-trees instead of iterating every mobile
// object, and each candidate is gated on its live reading support — an
// object none of whose readings touch the region contributes nothing
// (the support-gated semantics, DESIGN.md §17).
func (s *Service) ObjectsInRegion(region glob.GLOB, minProb float64) (map[string]float64, error) {
	rect, err := s.db.ResolveGLOB(region)
	if err != nil {
		return nil, fmt.Errorf("region query: %w", err)
	}
	// One snapshot pins the whole scan to a consistent cut of the
	// reading tables: every object is evaluated against the same set of
	// completed insert batches, and the scan holds no table locks while
	// it fuses, so concurrent per-floor ingest proceeds unimpeded.
	snap := s.db.Snapshot()
	defer snap.Close()
	return s.objectsInRegionOn(snap, rect, minProb, s.now(), true), nil
}

// objectsInRegionOn runs the region scan against one snapshot.
// prefilter selects the candidate source — the support R-tree
// pre-filter, or the exhaustive all-objects scan the equivalence tests
// compare against; both apply the identical live-support gate.
func (s *Service) objectsInRegionOn(snap *spatialdb.Snapshot, rect geom.Rect, minProb float64, now time.Time, prefilter bool) map[string]float64 {
	var ids []string
	if prefilter {
		cands := snap.SupportCandidates(rect)
		ids = make([]string, len(cands))
		for i, c := range cands {
			ids[i] = c.ID
		}
	} else {
		ids = snap.MobileObjects()
	}
	// Results land in index-addressed slots, so the merge below is
	// deterministic no matter which worker finishes first.
	probs := make([]float64, len(ids))
	hit := make([]bool, len(ids))
	eval := func(i int) {
		readings := s.fusionStateSnap(snap, ids[i], now)
		if _, ok := liveSupport(readings, rect); !ok {
			return
		}
		p := fusion.ProbRegion(snap.Universe(), readings, rect)
		if p >= minProb && p > 0 {
			probs[i], hit[i] = p, true
		}
	}
	if s.pool != nil && len(ids) >= parallelFanThreshold {
		s.pool.fanOutChunked(len(ids), s.parallelism, eval)
	} else {
		for i := range ids {
			eval(i)
		}
	}
	out := make(map[string]float64)
	for i, id := range ids {
		if hit[i] {
			out[id] = probs[i]
		}
	}
	return out
}

// Subscribe registers a region-based notification (§4.3) and returns
// its ID. The condition is compiled into a spatial-database trigger;
// when a qualifying reading arrives, the service fuses the object's
// readings, and notifies the handler if the probability passes the
// thresholds.
func (s *Service) Subscribe(spec Subscription) (string, error) {
	if spec.Handler == nil {
		return "", fmt.Errorf("%w: nil handler", ErrBadSub)
	}
	rect, err := s.db.ResolveGLOB(spec.Region)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSub, err)
	}
	s.mu.Lock()
	s.seq++
	id := "sub-" + strconv.Itoa(s.seq)
	sub := &subscription{id: id, spec: spec, region: rect}
	s.subs[id] = sub
	s.lastTrue[id] = make(map[string]bool)
	s.mu.Unlock()

	if err := s.db.AddTrigger(id, spec.Object, rect, s.onTrigger(sub)); err != nil {
		s.mu.Lock()
		delete(s.subs, id)
		delete(s.lastTrue, id)
		s.mu.Unlock()
		return "", err
	}
	return id, nil
}

// onTrigger adapts a subscription to a database trigger callback; the
// single-insert path evaluates against the live tables.
func (s *Service) onTrigger(sub *subscription) spatialdb.TriggerFunc {
	return func(ev spatialdb.TriggerEvent) { s.evalTrigger(sub, ev, nil) }
}

// subFor maps a fired trigger back to its subscription (trigger IDs
// are subscription IDs); nil when it was unsubscribed concurrently.
func (s *Service) subFor(triggerID string) *subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subs[triggerID]
}

// evalTrigger evaluates a fired database trigger against the
// subscription's probability condition. A non-nil snap evaluates the
// probability against that consistent cut (the batched dispatch path
// takes one snapshot per batch); nil evaluates against the live
// tables.
func (s *Service) evalTrigger(sub *subscription, ev spatialdb.TriggerEvent, snap *spatialdb.Snapshot) {
	start := time.Now()
	trace := ev.Reading.Trace
	mTriggerEvals.Inc()
	// The trigger_eval stage ends when the notification is handed to
	// the queue (or the evaluation decides not to notify); queue wait
	// belongs to notify.
	evalDone := func() {
		mTriggerUs.Observe(float64(time.Since(start).Microseconds()))
		obs.SpanSince(trace, "trigger_eval", start)
	}
	obj := ev.Reading.MObjectID
	var (
		p    float64
		band fusion.Band
	)
	if snap != nil {
		readings := s.fusionStateSnap(snap, obj, s.now())
		if len(readings) == 0 {
			evalDone()
			return
		}
		p = fusion.ProbRegion(snap.Universe(), readings, sub.region)
		band = s.classifierFor(snap).Classify(p)
	} else {
		var err error
		p, band, err = s.probInRect(obj, sub.region)
		if err != nil {
			evalDone()
			return
		}
	}
	qualifies := p > 0 && p >= sub.spec.MinProb
	if qualifies && sub.spec.MinBand > 0 && band < sub.spec.MinBand {
		qualifies = false
	}
	s.mu.Lock()
	state, ok := s.lastTrue[sub.id]
	if !ok { // unsubscribed concurrently
		s.mu.Unlock()
		evalDone()
		return
	}
	was := state[obj]
	state[obj] = qualifies
	s.mu.Unlock()

	if !qualifies || (was && !sub.spec.EveryReading) {
		evalDone()
		return
	}
	n := Notification{
		SubscriptionID: sub.id,
		Object:         obj,
		Region:         sub.region,
		Prob:           p,
		Band:           band,
		At:             s.now(),
		Trace:          trace,
	}
	evalDone()
	select {
	case s.queueFor(sub.id) <- dispatch{fn: sub.spec.Handler, n: n, enq: time.Now()}:
		s.notified.Add(1)
		mNotified.Inc()
		mQueueDepth.Set(float64(s.notifyDepth()))
	case <-s.stop:
		// The service is shutting down: the notification is dropped
		// rather than enqueued behind a stopped worker set.
		mNotifyDrops.Inc()
	}
}

// Unsubscribe removes a subscription.
func (s *Service) Unsubscribe(id string) error {
	s.mu.Lock()
	_, ok := s.subs[id]
	delete(s.subs, id)
	delete(s.lastTrue, id)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: unknown subscription %s", ErrBadSub, id)
	}
	return s.db.RemoveTrigger(id)
}

// Subscriptions returns the number of active subscriptions.
func (s *Service) Subscriptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// HealthState classifies a component's ability to do its job.
type HealthState int

// Health states, from best to worst.
const (
	Healthy HealthState = iota
	Degraded
	Down
)

// String names the state.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "down"
	}
}

// Health is the service's heartbeat snapshot (§4's Location Service as
// a long-running daemon needs to report whether it is keeping up).
type Health struct {
	// State summarizes: Healthy normally, Degraded when the
	// notification queue is running more than half full (handlers are
	// not keeping up), Down after Close.
	State HealthState
	// Uptime is time since New, on the service clock.
	Uptime time.Duration
	// Ingested counts readings accepted since start.
	Ingested uint64
	// Notifications counts notifications dispatched since start.
	Notifications uint64
	// Subscriptions is the number of active subscriptions.
	Subscriptions int
	// Sensors is the number of registered sensor instances.
	Sensors int
	// QueueDepth/QueueCap describe the notification backlog.
	QueueDepth, QueueCap int
}

// Health reports the service's current heartbeat state.
func (s *Service) Health() Health {
	h := Health{
		Uptime:        s.now().Sub(s.started),
		Ingested:      s.ingested.Load(),
		Notifications: s.notified.Load(),
		Subscriptions: s.Subscriptions(),
		Sensors:       len(s.db.Sensors()),
		QueueDepth:    s.notifyDepth(),
		QueueCap:      s.notifyWorkers * cap(s.notifyQs[0]),
	}
	select {
	case <-s.stop:
		h.State = Down
	default:
		if h.QueueDepth*2 > h.QueueCap {
			h.State = Degraded
		}
	}
	return h
}

// ---------------------------------------------------------------------------
// Spatial relationships (§4.6)

// RelateRegions returns the RCC-8 relation between two regions and,
// when externally connected, the passage refinement (ECFP/ECRP/ECNP).
func (s *Service) RelateRegions(a, b glob.GLOB) (rcc.Relation, rcc.Passage, error) {
	// Prefer the graph for registered rooms (it knows the doors).
	if _, okA := s.graph.Region(a.String()); okA {
		if _, okB := s.graph.Region(b.String()); okB {
			return s.graph.Relation(a.String(), b.String())
		}
	}
	ra, err := s.db.ResolveGLOB(a)
	if err != nil {
		return 0, 0, err
	}
	rb, err := s.db.ResolveGLOB(b)
	if err != nil {
		return 0, 0, err
	}
	rel := rcc.Relate(ra, rb)
	return rel, rcc.PassageNone, nil
}

// RouteBetween returns the shortest traversable route between two
// symbolic regions.
func (s *Service) RouteBetween(a, b glob.GLOB, policy topo.TraversalPolicy) (topo.Route, error) {
	return s.graph.ShortestRoute(a.String(), b.String(), policy)
}

// RegionDistance returns the Euclidean and path distances between two
// symbolic regions (§4.6.1). The path distance is reported as +Inf
// when no traversable route exists.
func (s *Service) RegionDistance(a, b glob.GLOB, policy topo.TraversalPolicy) (euclidean, path float64, err error) {
	euclidean, err = s.graph.EuclideanDistance(a.String(), b.String())
	if err != nil {
		return 0, 0, err
	}
	path, err = s.graph.PathDistance(a.String(), b.String(), policy)
	if errors.Is(err, topo.ErrNoRoute) {
		return euclidean, topo.Infinity, nil
	}
	if err != nil {
		return 0, 0, err
	}
	return euclidean, path, nil
}

// RuleEngine builds a Datalog engine preloaded with the building's
// derived relation facts: ecfp/2, ecrp/2, ecnp/2 for adjacent regions
// and region/1 for every room and corridor. Applications add their own
// rules on top (§4.6.1's XSB Prolog reasoning).
func (s *Service) RuleEngine() *rules.Engine {
	e := rules.NewEngine()
	regions := s.graph.Regions()
	for _, r := range regions {
		e.AddFact("region", r.ID)
	}
	for i := 0; i < len(regions); i++ {
		for j := 0; j < len(regions); j++ {
			if i == j {
				continue
			}
			rel, pass, err := s.graph.Relation(regions[i].ID, regions[j].ID)
			if err != nil || rel != rcc.EC {
				continue
			}
			switch pass {
			case rcc.PassageFree:
				e.AddFact("ecfp", regions[i].ID, regions[j].ID)
			case rcc.PassageRestricted:
				e.AddFact("ecrp", regions[i].ID, regions[j].ID)
			default:
				e.AddFact("ecnp", regions[i].ID, regions[j].ID)
			}
		}
	}
	return e
}
