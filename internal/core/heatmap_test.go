package core

import (
	"testing"

	"middlewhere/internal/glob"
)

func TestOccupancyHeatmap(t *testing.T) {
	s, clock := newTestService(t)
	// Two people at opposite ends of the floor, one stale ghost.
	ingestAt(t, s, "ubi-1", "alice", 5, 5, clock.Now())
	ingestAt(t, s, "ubi-1", "bob", 180, 40, clock.Now())

	h, err := s.OccupancyHeatmap(glob.MustParse("CS/Floor3"), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != 4 || h.Cols != 8 || len(h.Cells) != 4 || len(h.Cells[0]) != 8 {
		t.Fatalf("grid shape = %dx%d cells=%dx%d", h.Rows, h.Cols, len(h.Cells), len(h.Cells[0]))
	}
	if h.Objects != 2 {
		t.Errorf("contributing objects = %d, want 2", h.Objects)
	}
	// Expected occupancy over the whole floor ≈ the number of people
	// present. Under the support-gated semantics (DESIGN.md §17) each
	// object's mass is integrated only over cells its reading support
	// touches, so the uniform background tail spread over the rest of
	// the universe is excluded — the total sits a little under 2 (one
	// sensor-confidence-weighted unit per person), never above it.
	if tot := h.Total(); tot < 1.5 || tot > 2.0+1e-9 {
		t.Errorf("total expected occupancy = %v, want within (1.5, 2]", tot)
	}
	// The density must concentrate where the people actually are:
	// alice at (5,5) lands in cell (0,0), bob at (180,40) near the far
	// corner.
	if h.Cells[0][0] < 0.5 {
		t.Errorf("cell (0,0) density = %v, want alice's mass there", h.Cells[0][0])
	}
	r, c, peak := h.Peak()
	if peak < 0.5 {
		t.Errorf("peak density = %v at (%d,%d), want a concentrated cell", peak, r, c)
	}

	// Degenerate grids are rejected.
	if _, err := s.OccupancyHeatmap(glob.MustParse("CS/Floor3"), 0, 8); err == nil {
		t.Error("rows=0 accepted")
	}
	if _, err := s.OccupancyHeatmap(glob.MustParse("CS/Floor3/nowhere"), 2, 2); err == nil {
		t.Error("unresolvable region accepted")
	}
}

// TestOccupancyHeatmapSerialParallelIdentical extends the determinism
// contract to the heatmap: the pooled fan-out must produce exactly the
// serial grid.
func TestOccupancyHeatmapSerialParallelIdentical(t *testing.T) {
	s, clock := newTestService(t)
	for i := 0; i < 2*parallelFanThreshold; i++ {
		obj := string(rune('a'+i%26)) + "-walker"
		ingestAt(t, s, "ubi-1", obj+string(rune('0'+i/26)), float64(5+i*7), float64(5+(i*13)%40), clock.Now())
	}
	region := glob.MustParse("CS/Floor3")
	parallel, err := s.OccupancyHeatmap(region, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := s.pool
	s.pool = nil // force the serial path
	serial, err := s.OccupancyHeatmap(region, 3, 5)
	s.pool = pool
	if err != nil {
		t.Fatal(err)
	}
	if serial.Objects != parallel.Objects {
		t.Fatalf("objects: serial=%d parallel=%d", serial.Objects, parallel.Objects)
	}
	for r := range serial.Cells {
		for c := range serial.Cells[r] {
			if serial.Cells[r][c] != parallel.Cells[r][c] {
				t.Errorf("cell (%d,%d): serial=%v parallel=%v", r, c, serial.Cells[r][c], parallel.Cells[r][c])
			}
		}
	}
}
