package core

import (
	"sort"
	"sync"
	"time"

	"middlewhere/internal/model"
)

// historyRecorder keeps a bounded per-object trail of fused location
// estimates, recorded after every reading insert. It powers the
// History API (trajectory queries — the natural extension of the
// paper's object tracking, cf. the Location Stack comparison in §10).
type historyRecorder struct {
	mu    sync.Mutex
	depth int
	// trails: object -> estimates, oldest first.
	trails map[string][]Location
}

// historyOption enables history recording.
type historyOption struct{ depth int }

func (o historyOption) apply(s *Service) {
	if o.depth <= 0 {
		return
	}
	s.history = &historyRecorder{
		depth:  o.depth,
		trails: make(map[string][]Location),
	}
}

// WithHistory makes the service record the fused location of an object
// after each of its readings, keeping the most recent depth estimates
// per object. Recording costs one fusion evaluation per insert, the
// same work a trigger evaluation performs.
func WithHistory(depth int) Option { return historyOption{depth: depth} }

// record appends an estimate for the object.
func (h *historyRecorder) record(loc Location) {
	h.mu.Lock()
	defer h.mu.Unlock()
	trail := append(h.trails[loc.Object], loc)
	if len(trail) > h.depth {
		trail = trail[len(trail)-h.depth:]
	}
	h.trails[loc.Object] = trail
}

// observeForHistory is chained onto the DB insert hook when history is
// enabled.
func (s *Service) observeForHistory(r model.Reading) {
	loc, err := s.LocateObject(r.MObjectID)
	if err != nil {
		return
	}
	s.history.record(loc)
}

// History returns the recorded trail for an object, oldest first. It
// is empty when history is disabled or the object has never been
// located.
func (s *Service) History(objectID string) []Location {
	if s.history == nil {
		return nil
	}
	s.history.mu.Lock()
	defer s.history.mu.Unlock()
	return append([]Location(nil), s.history.trails[objectID]...)
}

// HistorySince returns the trail entries at or after the cutoff time.
func (s *Service) HistorySince(objectID string, cutoff time.Time) []Location {
	trail := s.History(objectID)
	i := sort.Search(len(trail), func(i int) bool {
		return !trail[i].At.Before(cutoff)
	})
	return trail[i:]
}

// TrackedObjects returns the IDs with recorded history, sorted.
func (s *Service) TrackedObjects() []string {
	if s.history == nil {
		return nil
	}
	s.history.mu.Lock()
	defer s.history.mu.Unlock()
	out := make([]string, 0, len(s.history.trails))
	for id := range s.history.trails {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
