package core

import (
	"sync"

	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// Pool metrics, cached once so submission stays a pure atomic.
var (
	mPoolTasks  = obs.Default().Counter("core_pool_tasks_total")
	mPoolInline = obs.Default().Counter("core_pool_inline_total")
	mPoolDepth  = obs.Default().Gauge("core_pool_queue_depth")
)

// parallelFanThreshold is the object count below which ObjectsInRegion
// stays serial: per-object evaluation is a few microseconds, so the
// scheduling handoff only pays for itself once a handful of objects
// can genuinely overlap.
const parallelFanThreshold = 8

// workerPool fans per-object work (ObjectsInRegion, batched trigger
// evaluation) across a bounded set of goroutines. Submission never
// blocks: when every worker is busy and the queue is full the task
// runs inline on the submitting goroutine, which keeps nested fan-out
// deadlock-free even when workers block on downstream channels (a
// trigger handler waiting on the notification queue, say).
type workerPool struct {
	tasks chan func()
	stop  chan struct{}
	done  sync.WaitGroup

	// closeMu orders submission against close: a task queued while the
	// read lock is held is in the channel before close() fires the
	// workers' stop-drain, so no accepted task can be orphaned in the
	// buffered queue (which would block fanOut's WaitGroup forever).
	closeMu sync.RWMutex
	closed  bool
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{
		tasks: make(chan func(), 2*size),
		stop:  make(chan struct{}),
	}
	p.done.Add(size)
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.done.Done()
	for {
		select {
		case fn := <-p.tasks:
			fn()
			mPoolDepth.Set(float64(len(p.tasks)))
		case <-p.stop:
			// Drain queued tasks so no fanOut waits forever, then exit.
			for {
				select {
				case fn := <-p.tasks:
					fn()
				default:
					return
				}
			}
		}
	}
}

func (p *workerPool) close() {
	p.closeMu.Lock()
	p.closed = true
	p.closeMu.Unlock()
	close(p.stop)
	p.done.Wait()
}

// trySubmit queues a task on the pool, reporting false when the queue
// is full or the pool is closed (the caller then runs the task
// inline). Holding the read lock across the send guarantees any
// accepted task precedes close(), so the workers' stop-drain runs it.
func (p *workerPool) trySubmit(task func()) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- task:
		mPoolTasks.Inc()
		mPoolDepth.Set(float64(len(p.tasks)))
		return true
	default:
		return false
	}
}

// fanOut runs fn(0)..fn(n-1) across the pool and returns once all
// calls have finished. Tasks that cannot be queued immediately run on
// the caller, so fanOut makes progress even with a saturated (or
// closed) pool.
func (p *workerPool) fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		task := func() {
			defer wg.Done()
			fn(i)
		}
		if !p.trySubmit(task) {
			mPoolInline.Inc()
			task()
		}
	}
	wg.Wait()
}

// fanOutChunked splits indexes 0..n-1 into at most `chunks` contiguous
// ranges and runs each range as one pool task. For fine-grained
// per-item work (a warm-cache region query costs well under a
// microsecond per object) this amortizes the scheduling handoff over
// the whole range instead of paying it per item.
func (p *workerPool) fanOutChunked(n, chunks int, fn func(int)) {
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	step := (n + chunks - 1) / chunks
	p.fanOut(chunks, func(c int) {
		lo := c * step
		hi := lo + step
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// dispatchFirings evaluates a batch's trigger firings, fanning out
// across mobile objects while keeping each object's firings in
// reading order (the entry/exit edge detection in evalTrigger depends
// on per-object ordering; different objects are independent). The
// parallel path takes one database snapshot for the whole batch: every
// firing fuses against the same consistent cut — which includes the
// batch that provoked it — instead of racing concurrent inserts, and
// the evaluation holds no reading-table locks.
func (s *Service) dispatchFirings(fs []spatialdb.TriggerFiring) {
	if s.pool == nil || len(fs) < 2 {
		for _, f := range fs {
			f.Fn(f.Event)
		}
		return
	}
	order := make([]string, 0, 8)
	groups := make(map[string][]spatialdb.TriggerFiring, 8)
	for _, f := range fs {
		id := f.Event.Reading.MObjectID
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], f)
	}
	snap := s.db.Snapshot()
	defer snap.Close()
	run := func(f spatialdb.TriggerFiring) {
		if sub := s.subFor(f.Event.TriggerID); sub != nil {
			s.evalTrigger(sub, f.Event, snap)
			return
		}
		// Not one of ours (a trigger registered directly on the DB, or
		// unsubscribed mid-flight): fall back to the raw callback.
		f.Fn(f.Event)
	}
	if len(order) == 1 {
		for _, f := range fs {
			run(f)
		}
		return
	}
	s.pool.fanOut(len(order), func(i int) {
		for _, f := range groups[order[i]] {
			run(f)
		}
	})
}
