package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// populatedService builds a service over the paper floor with the
// given parallelism and a deterministic population of objects spread
// across the floor.
func populatedService(t *testing.T, parallelism int) *Service {
	t.Helper()
	clock := &testClock{now: t0}
	s, err := New(building.PaperFloor(), WithClock(clock.Now), WithParallelism(parallelism))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ubi := model.UbisenseSpec(0.9)
	ubi.TTL = time.Minute
	if err := s.RegisterSensor("ubi-1", ubi); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		err := s.Ingest(model.Reading{
			SensorID:  "ubi-1",
			MObjectID: fmt.Sprintf("person-%02d", i),
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
				geom.Pt(float64(310+i*3), float64(5+i))),
			Time: t0,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestObjectsInRegionSerialParallelIdentical pins the determinism
// contract at the service level: the region scan must return the same
// objects with bit-identical probabilities whether it runs serially or
// fanned out over the worker pool (both paths now evaluate one
// database snapshot).
func TestObjectsInRegionSerialParallelIdentical(t *testing.T) {
	serial := populatedService(t, 1)
	parallel := populatedService(t, 4)
	region := glob.MustParse("CS/Floor3/3105")
	for _, minProb := range []float64{0, 0.2, 0.9} {
		want, err := serial.ObjectsInRegion(region, minProb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.ObjectsInRegion(region, minProb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("minProb=%g: parallel=%v serial=%v", minProb, got, want)
		}
	}
	// Sanity: the scan is not vacuously empty at the permissive level.
	all, err := serial.ObjectsInRegion(region, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("region scan found nobody; population bug in the test")
	}
}
