package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/spatialdb"
)

// naiveGatedHeatmap is the brute-force reference for the clipped
// rasterizer's window math: every object, every cell, no R-tree and no
// window — but the same support-gate semantics (a cell an object's
// live support does not intersect contributes zero). heatmapOn in
// either mode must reproduce it cell-for-cell.
func naiveGatedHeatmap(s *Service, snap *spatialdb.Snapshot, rect geom.Rect, rows, cols int, now time.Time) *Heatmap {
	h := &Heatmap{Region: rect, Rows: rows, Cols: cols, At: now}
	h.Cells = make([][]float64, rows)
	for r := range h.Cells {
		h.Cells[r] = make([]float64, cols)
	}
	if rect.Area() <= 0 {
		return h
	}
	cellW := rect.Width() / float64(cols)
	cellH := rect.Height() / float64(rows)
	for _, id := range snap.MobileObjects() {
		readings := s.fusionStateSnap(snap, id, now)
		sup, ok := liveSupport(readings, rect)
		if !ok {
			continue
		}
		h.Objects++
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				cell := geom.R(
					rect.Min.X+float64(c)*cellW,
					rect.Min.Y+float64(r)*cellH,
					rect.Min.X+float64(c+1)*cellW,
					rect.Min.Y+float64(r+1)*cellH,
				)
				if !cell.Intersects(sup) {
					continue
				}
				h.Cells[r][c] += fusion.ProbRegion(snap.Universe(), readings, cell)
			}
		}
	}
	return h
}

func sameGrid(t *testing.T, label string, want, got *Heatmap) {
	t.Helper()
	if want.Objects != got.Objects {
		t.Errorf("%s: objects = %d, want %d", label, got.Objects, want.Objects)
	}
	for r := range want.Cells {
		for c := range want.Cells[r] {
			if want.Cells[r][c] != got.Cells[r][c] {
				t.Errorf("%s: cell (%d,%d) = %v, want %v", label, r, c, got.Cells[r][c], want.Cells[r][c])
			}
		}
	}
}

// TestHeatmapPrefilterEquivalenceRandom is the pre-filter's
// correctness property: over randomized buildings and reading streams
// — objects concentrated in a few floors, supports straddling floor
// (= shard) boundaries, stale readings mid-TTL — the R-tree
// prefiltered heatmap, the exhaustive gated scan, and the brute-force
// full-grid reference all produce cell-identical grids on the same
// snapshot, for whole-building and single-floor query regions alike.
func TestHeatmapPrefilterEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			floors := 2 + rng.Intn(3)
			bld := building.MultiStorey("C", floors, 2, 3, 12, 10, 5)
			clock := &testClock{now: t0}
			s, err := New(bld, WithClock(clock.Now))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			spec := model.UbisenseSpec(0.9)
			spec.TTL = time.Minute
			if err := s.RegisterSensor("ubi", spec); err != nil {
				t.Fatal(err)
			}

			uni := s.db.Universe()
			floorH := uni.Height() / float64(floors)
			objects := 10 + rng.Intn(20)
			for i := 0; i < objects; i++ {
				obj := fmt.Sprintf("p%02d", i)
				// Concentrate most mass on floor 0; some objects walk a
				// few steps, some land within sensor error of the floor
				// boundary so their support straddles shards.
				floor := 0
				if rng.Float64() < 0.3 {
					floor = rng.Intn(floors)
				}
				steps := 1 + rng.Intn(4)
				for j := 0; j < steps; j++ {
					x := rng.Float64() * uni.Width()
					y := rng.Float64() * floorH
					if rng.Float64() < 0.25 {
						y = floorH - rng.Float64()*0.5 // hug the shard boundary
					}
					at := clock.Now().Add(-time.Duration(rng.Intn(50)) * time.Second)
					err := s.Ingest(model.Reading{
						SensorID:  "ubi",
						MObjectID: obj,
						Location:  glob.CoordinatePoint(glob.MustParse(fmt.Sprintf("C/F%d", floor)), geom.Pt(x, y)),
						Time:      at,
					})
					if err != nil {
						t.Fatal(err)
					}
				}
			}

			regions := []geom.Rect{
				uni, // whole building
				geom.R(uni.Min.X, uni.Min.Y, uni.Max.X, uni.Min.Y+floorH), // floor 0
				geom.R(uni.Min.X, uni.Max.Y-floorH, uni.Max.X, uni.Max.Y), // top floor
				geom.R(5, floorH-3, 20, floorH+3),                         // straddles the shard boundary
			}
			snap := s.db.Snapshot()
			defer snap.Close()
			now := clock.Now()
			for ri, rect := range regions {
				rows, cols := 2+rng.Intn(5), 2+rng.Intn(7)
				want := naiveGatedHeatmap(s, snap, rect, rows, cols, now)
				pre := s.heatmapOn(snap, rect, rows, cols, now, true)
				exh := s.heatmapOn(snap, rect, rows, cols, now, false)
				sameGrid(t, fmt.Sprintf("region %d prefiltered", ri), want, pre)
				sameGrid(t, fmt.Sprintf("region %d exhaustive", ri), want, exh)
			}
		})
	}
}

// TestHeatmapPrefilterEquivalenceDuringMigration keeps objects
// migrating between floor shards while queries run: every query pins
// one snapshot and evaluates both the prefiltered and the exhaustive
// scan against it, so the two must agree cell-for-cell no matter where
// the migration was mid-flight when the cut landed. Run under -race
// this also exercises the COW support-tree clone against concurrent
// writers.
func TestHeatmapPrefilterEquivalenceDuringMigration(t *testing.T) {
	bld := building.MultiStorey("C", 3, 2, 3, 12, 10, 5)
	clock := &testClock{now: t0}
	s, err := New(bld, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := model.UbisenseSpec(0.9)
	spec.TTL = time.Hour
	if err := s.RegisterSensor("ubi", spec); err != nil {
		t.Fatal(err)
	}

	const movers = 12
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			obj := fmt.Sprintf("m%02d", i%movers)
			floor := rng.Intn(3)
			err := s.Ingest(model.Reading{
				SensorID:  "ubi",
				MObjectID: obj,
				Location: glob.CoordinatePoint(glob.MustParse(fmt.Sprintf("C/F%d", floor)),
					geom.Pt(rng.Float64()*30, rng.Float64()*25)),
				Time: t0.Add(time.Duration(i) * time.Millisecond),
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	uni := s.db.Universe()
	floorH := uni.Height() / 3
	floor1 := geom.R(uni.Min.X, uni.Min.Y+floorH, uni.Max.X, uni.Min.Y+2*floorH)
	now := clock.Now().Add(time.Minute)
	for q := 0; q < 60; q++ {
		rect := uni
		if q%2 == 1 {
			rect = floor1
		}
		snap := s.db.Snapshot()
		pre := s.heatmapOn(snap, rect, 3, 4, now, true)
		exh := s.heatmapOn(snap, rect, 3, 4, now, false)
		snap.Close()
		sameGrid(t, fmt.Sprintf("query %d", q), exh, pre)
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestObjectsInRegionPrefilterEquivalence extends the property to the
// enumeration query: prefiltered and exhaustive ObjectsInRegion return
// identical id→probability maps on one snapshot.
func TestObjectsInRegionPrefilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bld := building.MultiStorey("C", 3, 2, 3, 12, 10, 5)
	clock := &testClock{now: t0}
	s, err := New(bld, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := model.UbisenseSpec(0.9)
	spec.TTL = time.Minute
	if err := s.RegisterSensor("ubi", spec); err != nil {
		t.Fatal(err)
	}
	uni := s.db.Universe()
	floorH := uni.Height() / 3
	for i := 0; i < 24; i++ {
		floor := rng.Intn(3)
		err := s.Ingest(model.Reading{
			SensorID:  "ubi",
			MObjectID: fmt.Sprintf("p%02d", i),
			Location: glob.CoordinatePoint(glob.MustParse(fmt.Sprintf("C/F%d", floor)),
				geom.Pt(rng.Float64()*uni.Width(), rng.Float64()*floorH)),
			Time: clock.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	snap := s.db.Snapshot()
	defer snap.Close()
	now := clock.Now()
	for _, rect := range []geom.Rect{uni, geom.R(0, 0, uni.Width(), floorH), geom.R(3, floorH-2, 15, floorH+6)} {
		for _, minProb := range []float64{0, 0.3, 0.7} {
			pre := s.objectsInRegionOn(snap, rect, minProb, now, true)
			exh := s.objectsInRegionOn(snap, rect, minProb, now, false)
			if len(pre) != len(exh) {
				t.Fatalf("rect %v minProb %v: prefiltered %d objects, exhaustive %d", rect, minProb, len(pre), len(exh))
			}
			for id, p := range exh {
				if pre[id] != p {
					t.Errorf("rect %v minProb %v: %s = %v prefiltered, %v exhaustive", rect, minProb, id, pre[id], p)
				}
			}
		}
	}
}
