// Fuzz targets for the frame decoders, run by the CI fuzz job as a
// short smoke (go test -fuzz -fuzztime 30s per target). Seed corpora
// live in testdata/fuzz/<Target>/ in Go's file form; regenerate them
// with MW_WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus.
//
// The property under test is uniform: a decoder fed arbitrary bytes
// must return an error or a bounded frame — never panic, never
// allocate beyond maxFrame, never claim success on a payload it did
// not fully consume.
package mwrpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// mustEncode builds a seed frame, panicking on encoder misuse (seeds
// are static, so a failure is a bug in the seed table).
func mustEncode(f frame, bin bool) []byte {
	var b []byte
	var err error
	if bin {
		b, err = appendBinaryFrame(nil, f)
	} else {
		b, err = appendJSONFrame(nil, f)
	}
	if err != nil {
		panic(err)
	}
	return b
}

// readFrameSeeds seeds FuzzReadFrame: well-formed frames in both
// codecs, plus classic malformations.
func readFrameSeeds() [][]byte {
	return [][]byte{
		// Binary request, coded method, binary payload.
		mustEncode(frame{kind: kindReq, id: 1, method: "mw.ingestBatch",
			binary: true, payload: []byte{0x01, 0x02, 0x03}}, true),
		// Binary request, named method with a trace.
		mustEncode(frame{kind: kindReq, id: 9, method: "custom.method",
			trace: "t-1", payload: []byte(`{"a":1}`)}, true),
		// Binary error response.
		mustEncode(frame{kind: kindResp, id: 2, errMsg: "boom"}, true),
		// Binary push.
		mustEncode(frame{kind: kindPush, method: "mw.notify",
			binary: true, payload: []byte{0x00}}, true),
		// Stream batch and ack.
		mustEncode(frame{kind: kindStreamBatch, id: 7, seq: 3,
			binary: true, payload: []byte{0x01}}, true),
		mustEncode(frame{kind: kindStreamAck, id: 7, seq: 3,
			payload: []byte(`{"accepted":1}`)}, true),
		// JSON request and stream batch.
		mustEncode(frame{kind: kindReq, id: 1, method: "echo",
			payload: []byte(`{"text":"hi"}`)}, false),
		mustEncode(frame{kind: kindStreamBatch, id: 4, seq: 1,
			payload: []byte(`{"readings":[]}`)}, false),
		// Not a frame at all.
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		// Truncated binary header.
		{binMagic, kindReq, 0},
		// Binary header claiming an oversized payload.
		{binMagic, kindReq, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF,
			0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	}
}

// jsonBodySeeds seeds FuzzReadJSONFallback: envelope bodies that the
// fuzzer mutates behind a correct length prefix, steering it into the
// JSON decode path rather than the framing.
func jsonBodySeeds() [][]byte {
	return [][]byte{
		[]byte(`{"kind":"req","id":1,"method":"echo","params":{"text":"hi"}}`),
		[]byte(`{"kind":"resp","id":1,"result":"ok"}`),
		[]byte(`{"kind":"resp","id":2,"error":"boom"}`),
		[]byte(`{"kind":"push","stream":"mw.notify","params":{}}`),
		[]byte(`{"kind":"sbatch","id":3,"seq":1,"params":{"readings":[]}}`),
		[]byte(`{"kind":"sack","id":3,"seq":1,"params":{"accepted":4}}`),
		[]byte(`{not-json`),
		{},
	}
}

// FuzzReadFrame feeds raw connection bytes to the frame reader: the
// first byte dispatches between the binary codec (magic 0xB1) and the
// JSON length-prefix fallback, so this target covers the dispatch and
// the binary header/payload parser.
func FuzzReadFrame(f *testing.F) {
	for _, s := range readFrameSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(fr.payload) > maxFrame {
			t.Fatalf("decoded payload of %d bytes exceeds maxFrame", len(fr.payload))
		}
	})
}

// FuzzReadJSONFallback frames the fuzzed body behind a correct JSON
// length prefix, so every execution exercises the fallback envelope
// decode (the path old daemons and MW_WIRE=json stacks stay on).
func FuzzReadJSONFallback(f *testing.F) {
	for _, s := range jsonBodySeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > maxFrame {
			body = body[:maxFrame]
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		data := append(hdr[:], body...)
		fr, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if fr.binary {
			t.Fatal("JSON envelope decoded as a binary payload")
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpora from the
// in-code seed tables (Go's "go test fuzz v1" file form). Gated so a
// normal test run never writes to the tree.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("MW_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set MW_WRITE_FUZZ_CORPUS=1 to regenerate seed corpora")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzReadFrame", readFrameSeeds())
	write("FuzzReadJSONFallback", jsonBodySeeds())
}
