package mwrpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// TestServerSurvivesGarbageBytes throws raw garbage at the server: the
// offending connection is dropped, the server keeps serving others.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	_, addr := startServer(t)

	// A well-behaved client for later.
	good, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	// Raw garbage: not even a frame header.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// A frame header claiming an absurd size.
	huge, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	if _, err := huge.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection on an oversized frame.
	huge.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := huge.Read(buf); err == nil {
		t.Error("server kept an oversized-frame connection open")
	}
	huge.Close()

	// A valid length prefix with invalid JSON.
	badJSON, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("{not-json")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := badJSON.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	badJSON.Close()

	// The good client is unaffected.
	var reply echoReply
	if err := good.Call("echo", echoArgs{Text: "still alive"}, &reply); err != nil {
		t.Fatalf("good client broken after garbage: %v", err)
	}
	if reply.Text != "still alive" {
		t.Errorf("reply = %q", reply.Text)
	}
}

// TestServerIgnoresNonRequestFrames sends a syntactically valid frame
// with a kind the server does not handle.
func TestServerIgnoresNonRequestFrames(t *testing.T) {
	_, addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	body, _ := json.Marshal(wire{Kind: "push", Stream: "spoofed"})
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := raw.Write(append(hdr[:], body...)); err != nil {
		t.Fatal(err)
	}
	// Follow with a real request on the same connection: the server
	// must still answer it.
	req, _ := json.Marshal(wire{Kind: "req", ID: 1, Method: "echo",
		Params: json.RawMessage(`{"text":"hi"}`)})
	binary.BigEndian.PutUint32(hdr[:], uint32(len(req)))
	if _, err := raw.Write(append(hdr[:], req...)); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readFrame(bufio.NewReader(raw))
	if err != nil {
		t.Fatalf("no response after spoofed push: %v", err)
	}
	if resp.kind != kindResp || resp.id != 1 {
		t.Errorf("resp = %+v", resp)
	}
}

// TestClientSurvivesServerGarbage: a server that writes garbage makes
// the client fail cleanly, not hang.
func TestClientSurvivesServerGarbage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("!!!!this is not a frame!!!!"))
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		// Dial negotiates the codec, so the garbage already surfaced
		// there — a clean, prompt failure is exactly what we want.
		return
	}
	defer c.Close()
	c.Timeout = 2 * time.Second
	err = c.Call("echo", echoArgs{Text: "x"}, nil)
	if err == nil {
		t.Error("call against garbage server should fail")
	}
}

// TestSlowLorisHeader: a connection that sends half a header and
// stalls must not wedge the server's other work (each connection has
// its own goroutine).
func TestSlowLorisHeader(t *testing.T) {
	_, addr := startServer(t)
	stall, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	if _, err := stall.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	// Meanwhile a real client gets served.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("echo", echoArgs{Text: "ok"}, nil); err != nil {
		t.Fatalf("server wedged by slow loris: %v", err)
	}
}
