// Binary encoding primitives for the compact wire codec: append-style
// writers that extend a caller-owned buffer (so pooled buffers make
// steady-state encode allocation-free) and a bounds-checked reader
// that can never over-read or panic on malformed input — every decode
// error is a plain error, which the fuzz targets lock in.
package mwrpc

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
)

// ErrTruncated reports a binary payload that ended before the value it
// promised; ErrCorrupt reports a structurally invalid one (length
// fields that exceed the frame, varints that don't terminate).
var (
	ErrTruncated = errors.New("mwrpc: truncated binary payload")
	ErrCorrupt   = errors.New("mwrpc: corrupt binary payload")
)

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendU32 appends a fixed-width big-endian uint32.
func AppendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

// AppendU64 appends a fixed-width big-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendI64 appends a big-endian int64 (two's complement).
func AppendI64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

// AppendF64 appends a big-endian IEEE-754 double.
func AppendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends a uvarint length followed by the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// maxStringLen bounds any single length-prefixed string inside a
// payload; a frame is capped at maxFrame anyway, so this only fails
// fast on corrupt length fields instead of attempting a huge alloc.
const maxStringLen = maxFrame

// BinReader walks a binary payload with hard bounds checks. The zero
// value over a byte slice is ready to use; all methods return an error
// instead of panicking on malformed input.
type BinReader struct {
	buf []byte
	off int
}

// NewBinReader wraps a payload.
func NewBinReader(b []byte) *BinReader { return &BinReader{buf: b} }

// Reset rewinds the reader onto a new payload.
func (r *BinReader) Reset(b []byte) { r.buf, r.off = b, 0 }

// Remaining reports how many bytes are left.
func (r *BinReader) Remaining() int { return len(r.buf) - r.off }

// Uvarint reads an unsigned LEB128 value.
func (r *BinReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, ErrCorrupt
	}
	r.off += n
	return v, nil
}

// Len reads a uvarint and validates it as a count/length against the
// bytes remaining (each counted element needs at least min bytes), so
// a corrupt count cannot drive a huge allocation.
func (r *BinReader) Len(min int) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(r.Remaining()/min) {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

// U32 reads a fixed-width big-endian uint32.
func (r *BinReader) U32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// U64 reads a fixed-width big-endian uint64.
func (r *BinReader) U64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// I64 reads a big-endian int64.
func (r *BinReader) I64() (int64, error) {
	v, err := r.U64()
	return int64(v), err
}

// F64 reads a big-endian IEEE-754 double.
func (r *BinReader) F64() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// String reads a uvarint-length-prefixed string.
func (r *BinReader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > uint64(r.Remaining()) {
		return "", ErrTruncated
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Bytes reads a uvarint-length-prefixed byte slice, aliasing the
// underlying payload (valid only while the payload is).
func (r *BinReader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxStringLen || n > uint64(r.Remaining()) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// ---------------------------------------------------------------------------
// Pooled encode buffers

// Buf is a pooled encode scratch buffer: append into B and call Free
// when the bytes are no longer referenced. The pointer wrapper (not a
// bare slice) is what lets sync.Pool recycle without boxing a fresh
// interface allocation on every Put.
type Buf struct{ B []byte }

var bufPool = sync.Pool{New: func() interface{} { return &Buf{B: make([]byte, 0, 4096)} }}

// GetBuf borrows a zero-length scratch buffer from the codec pool.
// Steady-state encode allocates nothing once pooled buffers have grown
// to the working-set size.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// Free returns the buffer to the pool. The caller must not touch B
// afterwards.
func (b *Buf) Free() { bufPool.Put(b) }
