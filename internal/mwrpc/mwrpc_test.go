package mwrpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoArgs struct {
	Text string `json:"text"`
}

type echoReply struct {
	Text string `json:"text"`
}

// startServer returns a running server and its address.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	srv.Register("echo", func(_ *ServerConn, params json.RawMessage) (interface{}, error) {
		var a echoArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		return echoReply{Text: a.Text}, nil
	})
	srv.Register("fail", func(_ *ServerConn, _ json.RawMessage) (interface{}, error) {
		return nil, errors.New("deliberate failure")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply echoReply
	if err := c.Call("echo", echoArgs{Text: "hello"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Text != "hello" {
		t.Errorf("reply = %q", reply.Text)
	}
	// nil result discards the payload.
	if err := c.Call("echo", echoArgs{Text: "x"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCallErrors(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", struct{}{}, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("err = %v", err)
	}
	err = c.Call("no-such-method", struct{}{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			var reply echoReply
			if err := c.Call("echo", echoArgs{Text: want}, &reply); err != nil {
				errs <- err
				return
			}
			if reply.Text != want {
				errs <- fmt.Errorf("got %q want %q", reply.Text, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerPush(t *testing.T) {
	srv := NewServer()
	srv.Register("subscribe", func(conn *ServerConn, _ json.RawMessage) (interface{}, error) {
		// Push three messages asynchronously after replying.
		go func() {
			for i := 0; i < 3; i++ {
				if err := conn.Push("events", map[string]int{"n": i}); err != nil {
					return
				}
			}
		}()
		return "ok", nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan int, 8)
	c.OnPush("events", func(payload json.RawMessage) {
		var m map[string]int
		if err := json.Unmarshal(payload, &m); err == nil {
			got <- m["n"]
		}
	})
	var s string
	if err := c.Call("subscribe", struct{}{}, &s); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		select {
		case n := <-got:
			seen[n] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout after %d pushes", i)
		}
	}
	if len(seen) != 3 {
		t.Errorf("pushes = %v", seen)
	}
}

func TestOnCloseCallback(t *testing.T) {
	closed := make(chan struct{})
	srv := NewServer()
	srv.Register("watch", func(conn *ServerConn, _ json.RawMessage) (interface{}, error) {
		conn.OnClose(func() { close(closed) })
		return "ok", nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call("watch", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("OnClose never fired")
	}
}

func TestCallTimeout(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Register("hang", func(_ *ServerConn, _ json.RawMessage) (interface{}, error) {
		<-block
		return "late", nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		srv.Close()
	}()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond
	if err := c.Call("hang", struct{}{}, nil); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestClientCloseFailsPendingAndFutureCalls(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Register("hang", func(_ *ServerConn, _ json.RawMessage) (interface{}, error) {
		<-block
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		srv.Close()
	}()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Call("hang", struct{}{}, nil)
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("pending call err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed")
	}
	if err := c.Call("echo", struct{}{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("future call err = %v", err)
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("echo", echoArgs{Text: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// After server close the call eventually fails.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := c.Call("echo", echoArgs{Text: "b"}, nil)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls still succeed after server close")
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestFrameTooBig(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("x", maxFrame)
	if err := c.Call("echo", echoArgs{Text: big}, nil); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestDialOptionsAndDone(t *testing.T) {
	srv, addr := startServer(t)
	c, err := DialOptions(addr, Options{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Timeout != 2*time.Second {
		t.Errorf("CallTimeout not applied: %v", c.Timeout)
	}
	select {
	case <-c.Done():
		t.Fatal("Done closed while connection healthy")
	default:
	}
	var reply echoReply
	if err := c.Call("echo", echoArgs{Text: "opt"}, &reply); err != nil {
		t.Fatal(err)
	}
	// Killing the server closes Done without the client calling Close.
	srv.Close()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done not closed after server shutdown")
	}
}
