// Package mwrpc is MiddleWhere's distribution substrate — the
// substitute for the CORBA ORB (Orbacus) the paper deploys on. It
// implements a minimal framed JSON-RPC protocol over TCP with two
// interaction patterns, matching what the middleware needs from CORBA:
//
//   - request/reply: clients call named methods and block for the
//     result (the pull mode of §7), and
//   - server push: the server sends asynchronous messages tagged with a
//     stream name over the same connection (the push mode — trigger
//     notifications, §4.3).
//
// Wire format: each message is a 4-byte big-endian length followed by
// a JSON object. Messages are small (queries, notifications); the
// frame size is capped to keep a misbehaving peer from ballooning
// memory.
package mwrpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"middlewhere/internal/obs"
)

// maxFrame bounds a single message.
const maxFrame = 1 << 20

// Frame-level metrics, cached once so the hot path is pure atomics.
var (
	mFramesSent     = obs.Default().Counter("mwrpc_frames_sent_total")
	mFramesRecv     = obs.Default().Counter("mwrpc_frames_received_total")
	mBytesSent      = obs.Default().Counter("mwrpc_bytes_sent_total")
	mBytesRecv      = obs.Default().Counter("mwrpc_bytes_received_total")
	mEncodeUs       = obs.Default().Histogram("mwrpc_frame_encode_us")
	mDecodeUs       = obs.Default().Histogram("mwrpc_frame_decode_us")
	mDecodeBad      = obs.Default().Counter("mwrpc_frames_malformed_total")
	mCallsTotal     = obs.Default().Counter("mwrpc_calls_total")
	mCallErrors     = obs.Default().Counter("mwrpc_call_errors_total")
	mPushesSent     = obs.Default().Counter("mwrpc_pushes_sent_total")
	mServedRequests = obs.Default().Counter("mwrpc_requests_served_total")
)

// wire is the on-the-wire message envelope.
type wire struct {
	// Kind is "req", "resp", or "push".
	Kind string `json:"kind"`
	// ID correlates requests and responses.
	ID uint64 `json:"id,omitempty"`
	// Method names the called procedure (requests).
	Method string `json:"method,omitempty"`
	// Params carries the request payload.
	Params json.RawMessage `json:"params,omitempty"`
	// Result carries the response payload.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries a response error message.
	Error string `json:"error,omitempty"`
	// Stream names the push channel (pushes).
	Stream string `json:"stream,omitempty"`
	// Trace carries an obs trace ID so a notification on the server can
	// be attributed to the sensor reading (and client) that caused it.
	Trace string `json:"trace,omitempty"`
}

// Sentinel errors.
var (
	ErrClosed      = errors.New("mwrpc: connection closed")
	ErrTimeout     = errors.New("mwrpc: call timed out")
	ErrNoMethod    = errors.New("mwrpc: unknown method")
	ErrFrameTooBig = errors.New("mwrpc: frame exceeds limit")
)

// writeFrame writes one length-prefixed JSON message.
func writeFrame(w io.Writer, m wire) error {
	start := time.Now()
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("mwrpc: marshal: %w", err)
	}
	mEncodeUs.Observe(float64(time.Since(start).Microseconds()))
	if len(body) > maxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	if err == nil {
		mFramesSent.Inc()
		mBytesSent.Add(uint64(len(body) + 4))
	}
	return err
}

// readFrame reads one length-prefixed JSON message.
func readFrame(r io.Reader) (wire, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wire{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wire{}, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return wire{}, err
	}
	start := time.Now()
	var m wire
	if err := json.Unmarshal(body, &m); err != nil {
		mDecodeBad.Inc()
		return wire{}, fmt.Errorf("mwrpc: unmarshal: %w", err)
	}
	mDecodeUs.Observe(float64(time.Since(start).Microseconds()))
	mFramesRecv.Inc()
	mBytesRecv.Add(uint64(n + 4))
	return m, nil
}

// ---------------------------------------------------------------------------
// Server

// ServerConn is the server's view of one client connection. Handlers
// may retain it to push messages until OnClose fires.
type ServerConn struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool

	onClose []func()
}

// Push sends an asynchronous message on a named stream.
func (c *ServerConn) Push(stream string, payload interface{}) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("mwrpc: push marshal: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	err = writeFrame(c.conn, wire{Kind: "push", Stream: stream, Result: body})
	if err == nil {
		mPushesSent.Inc()
	}
	return err
}

// OnClose registers a cleanup callback run when the connection drops.
// If the connection is already closed the callback runs immediately.
func (c *ServerConn) OnClose(fn func()) {
	c.mu.Lock()
	closed := c.closed
	if !closed {
		c.onClose = append(c.onClose, fn)
	}
	c.mu.Unlock()
	if closed {
		fn()
	}
}

func (c *ServerConn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cbs := c.onClose
	c.onClose = nil
	c.conn.Close()
	c.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// respond sends a response frame.
func (c *ServerConn) respond(id uint64, result interface{}, herr error) error {
	m := wire{Kind: "resp", ID: id}
	if herr != nil {
		m.Error = herr.Error()
	} else {
		body, err := json.Marshal(result)
		if err != nil {
			m.Error = "mwrpc: marshal result: " + err.Error()
		} else {
			m.Result = body
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return writeFrame(c.conn, m)
}

// Handler serves one method. It runs on the connection's reader
// goroutine; slow work should be handed off.
type Handler func(conn *ServerConn, params json.RawMessage) (interface{}, error)

// TracedHandler is a Handler that also receives the trace ID carried
// on the request frame ("" for untraced requests), so the server side
// can continue a span chain begun in the client.
type TracedHandler func(conn *ServerConn, params json.RawMessage, trace string) (interface{}, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	traced   map[string]TracedHandler
	ln       net.Listener
	conns    map[*ServerConn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		traced:   make(map[string]TracedHandler),
		conns:    make(map[*ServerConn]struct{}),
	}
}

// Register installs a handler for a method name.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// RegisterTraced installs a trace-aware handler for a method name. A
// traced registration shadows a plain one for the same method.
func (s *Server) RegisterTraced(method string, h TracedHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traced[method] = h
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free
// port) and serves in background goroutines until Close. It returns
// the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mwrpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			sc := &ServerConn{conn: conn}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				sc.close()
				return
			}
			s.conns[sc] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(sc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) serveConn(sc *ServerConn) {
	defer func() {
		sc.close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()
	for {
		m, err := readFrame(sc.conn)
		if err != nil {
			return
		}
		if m.Kind != "req" {
			continue
		}
		s.mu.Lock()
		th := s.traced[m.Method]
		h := s.handlers[m.Method]
		s.mu.Unlock()
		if th == nil && h == nil {
			_ = sc.respond(m.ID, nil, fmt.Errorf("%w: %s", ErrNoMethod, m.Method))
			continue
		}
		mServedRequests.Inc()
		var result interface{}
		var herr error
		if th != nil {
			result, herr = th(sc, m.Params, m.Trace)
		} else {
			result, herr = h(sc, m.Params)
		}
		if err := sc.respond(m.ID, result, herr); err != nil {
			return
		}
	}
}

// Close stops the listener, drops all connections, and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
}

// ---------------------------------------------------------------------------
// Client

// PushFunc consumes pushed messages on a stream.
type PushFunc func(payload json.RawMessage)

// Client is a connection to an mwrpc server.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	nextID  uint64
	pending map[uint64]chan wire
	onPush  map[string]PushFunc
	closed  bool
	done    chan struct{}

	// Timeout bounds each Call; zero means 10 seconds.
	Timeout time.Duration
}

// Options configures dialing and per-call behaviour. The zero value
// uses the defaults that Dial has always applied.
type Options struct {
	// DialTimeout bounds the TCP connect; zero means 5 seconds.
	DialTimeout time.Duration
	// CallTimeout bounds each Call; zero means 10 seconds.
	CallTimeout time.Duration
}

// DefaultDialTimeout and DefaultCallTimeout are the zero-value
// Options behaviours.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultCallTimeout = 10 * time.Second
)

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return o.DialTimeout
}

// Dial connects to an mwrpc server with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to an mwrpc server with explicit timeouts.
func DialOptions(addr string, opts Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("mwrpc: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.Timeout = opts.CallTimeout
	return c, nil
}

// NewClient runs the mwrpc client protocol over an existing connection
// (tests wrap conns in fault injectors before handing them in).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan wire),
		onPush:  make(map[string]PushFunc),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Done is closed when the connection dies — by Close or by a transport
// failure. Reconnecting layers watch it to know when to redial.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		m, err := readFrame(c.conn)
		if err != nil {
			c.failAll()
			return
		}
		switch m.Kind {
		case "resp":
			c.mu.Lock()
			ch := c.pending[m.ID]
			delete(c.pending, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case "push":
			c.mu.Lock()
			fn := c.onPush[m.Stream]
			c.mu.Unlock()
			if fn != nil {
				fn(m.Result)
			}
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// OnPush installs the consumer for a push stream. It replaces any
// previous consumer for that stream.
func (c *Client) OnPush(stream string, fn PushFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPush[stream] = fn
}

// Call invokes a remote method and decodes the result into result
// (which may be nil to discard it).
func (c *Client) Call(method string, params, result interface{}) error {
	return c.CallTraced(method, params, result, "")
}

// CallTraced is Call with a trace ID stamped onto the request frame so
// the server can attribute its work to the originating reading. An
// empty trace behaves exactly like Call.
func (c *Client) CallTraced(method string, params, result interface{}, trace string) error {
	err := c.callTraced(method, params, result, trace)
	mCallsTotal.Inc()
	if err != nil {
		mCallErrors.Inc()
	}
	return err
}

func (c *Client) callTraced(method string, params, result interface{}, trace string) error {
	body, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("mwrpc: marshal params: %w", err)
	}
	ch := make(chan wire, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	err = writeFrame(c.conn, wire{Kind: "req", ID: id, Method: method, Params: body, Trace: trace})
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	timeout := c.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if m.Error != "" {
			return errors.New(m.Error)
		}
		if result != nil {
			if err := json.Unmarshal(m.Result, result); err != nil {
				return fmt.Errorf("mwrpc: unmarshal result: %w", err)
			}
		}
		return nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTimeout, method)
	}
}

// Close drops the connection and waits for the reader to exit.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	<-c.done
}
