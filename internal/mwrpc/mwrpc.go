// Package mwrpc is MiddleWhere's distribution substrate — the
// substitute for the CORBA ORB (Orbacus) the paper deploys on. It
// implements a framed RPC protocol over TCP with three interaction
// patterns, matching what the middleware needs from CORBA:
//
//   - request/reply: clients call named methods and block for the
//     result (the pull mode of §7),
//   - server push: the server sends asynchronous messages tagged with a
//     stream name over the same connection (the push mode — trigger
//     notifications, §4.3), and
//   - streaming ingest: clients pipeline sequenced batch frames without
//     per-batch round trips; the server acknowledges cumulatively and
//     grants byte/batch credits that bound the in-flight window
//     (credit-based backpressure).
//
// Two codecs share the connection. The mandatory fallback is the
// original length-prefixed JSON envelope (4-byte big-endian length +
// JSON object), which every peer speaks. At dial time a client may
// negotiate the compact binary codec ("mwrpc.hello"): fixed 24-byte
// headers carrying frame kind, flags, a method code, the payload
// length, a correlation ID, and a stream sequence number, followed by
// the payload. Hot payloads (batched ingest, notification pushes,
// region queries) are hand-rolled binary; everything else travels as
// JSON bytes inside binary framing. Encode uses pooled buffers and one
// write per frame, so the steady-state encode path allocates nothing.
//
// A binary frame's first byte is the magic 0xB1; a JSON frame's first
// byte is always 0x00 (the high byte of a length ≤ 1 MiB), so the read
// side detects the codec per frame and negotiation only ever gates the
// write side. Old peers that never negotiate see pure JSON.
package mwrpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"middlewhere/internal/obs"
)

// maxFrame bounds a single message.
const maxFrame = 1 << 20

// binMagic marks a binary frame; JSON frames always begin 0x00.
const binMagic = 0xB1

// Frame kinds (binary byte 1; JSON "kind" strings map onto these).
const (
	kindReq         = 1
	kindResp        = 2
	kindPush        = 3
	kindStreamBatch = 4
	kindStreamAck   = 5
)

// Header flags (binary byte 2).
const (
	flagBinaryPayload = 1 << 0 // payload is hand-rolled binary, not JSON
	flagError         = 1 << 1 // response payload is an error message
	flagNamed         = 1 << 2 // method/stream name prefixes the payload
	flagTrace         = 1 << 3 // trace ID prefixes the payload
)

// binHeaderLen is the fixed binary header size: magic, kind, flags,
// method code, payload length (u32), correlation ID (u64), seq (u64).
const binHeaderLen = 24

// Codec identifies a negotiated wire codec.
type Codec uint8

// Codecs.
const (
	CodecJSON Codec = iota
	CodecBinary
)

// String names the codec as it appears in negotiation and metrics.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// WirePref says which codec a dialer wants.
type WirePref int

// Wire preferences. The zero value negotiates binary with a JSON
// fallback, so new stacks get the compact codec and old daemons keep
// working.
const (
	// WireAuto negotiates binary and falls back to JSON when the peer
	// declines or predates negotiation.
	WireAuto WirePref = iota
	// WireJSON skips negotiation and speaks the JSON envelope only.
	WireJSON
	// WireBinary requires the binary codec; dialing fails if the peer
	// declines.
	WireBinary
)

// WireEnv is the environment knob the CI compat matrix sets:
// "binary", "json", or a "client/daemon" pair such as "json/binary".
const WireEnv = "MW_WIRE"

// ParseWire maps one knob word to a preference; unknown words are
// Auto. "binary" prefers binary but keeps the JSON fallback — that is
// what lets the compat matrix pair a binary-preferring client with a
// JSON-only daemon — while "binary!" demands it and fails the dial if
// the peer declines.
func ParseWire(s string) WirePref {
	switch strings.TrimSpace(s) {
	case "json":
		return WireJSON
	case "binary!":
		return WireBinary
	default: // "binary", "auto", ""
		return WireAuto
	}
}

// WireFromEnv reads MW_WIRE and returns the client-side dial
// preference and the daemon-side preference (WireJSON means the daemon
// declines binary negotiation). A single word applies to both roles;
// "client/daemon" splits them.
func WireFromEnv(env string) (client, daemon WirePref) {
	if i := strings.IndexByte(env, '/'); i >= 0 {
		return ParseWire(env[:i]), ParseWire(env[i+1:])
	}
	p := ParseWire(env)
	return p, p
}

// Frame-level metrics, cached once so the hot path is pure atomics.
var (
	mFramesSent     = obs.Default().Counter("mwrpc_frames_sent_total")
	mFramesRecv     = obs.Default().Counter("mwrpc_frames_received_total")
	mBytesSent      = obs.Default().Counter("mwrpc_bytes_sent_total")
	mBytesRecv      = obs.Default().Counter("mwrpc_bytes_received_total")
	mEncodeUs       = obs.Default().Histogram("mwrpc_frame_encode_us")
	mDecodeUs       = obs.Default().Histogram("mwrpc_frame_decode_us")
	mDecodeBad      = obs.Default().Counter("mwrpc_frames_malformed_total")
	mCallsTotal     = obs.Default().Counter("mwrpc_calls_total")
	mCallErrors     = obs.Default().Counter("mwrpc_call_errors_total")
	mPushesSent     = obs.Default().Counter("mwrpc_pushes_sent_total")
	mServedRequests = obs.Default().Counter("mwrpc_requests_served_total")

	// Per-codec traffic and negotiation outcomes.
	mSentJSON   = obs.Default().Counter(`mwrpc_codec_frames_sent_total{name="json"}`)
	mSentBin    = obs.Default().Counter(`mwrpc_codec_frames_sent_total{name="binary"}`)
	mRecvJSON   = obs.Default().Counter(`mwrpc_codec_frames_received_total{name="json"}`)
	mRecvBin    = obs.Default().Counter(`mwrpc_codec_frames_received_total{name="binary"}`)
	mNegoJSON   = obs.Default().Counter(`mwrpc_codec_negotiated_total{name="json"}`)
	mNegoBin    = obs.Default().Counter(`mwrpc_codec_negotiated_total{name="binary"}`)
	mStreamSent = obs.Default().Counter("mwrpc_stream_batches_sent_total")
	mStreamAcks = obs.Default().Counter("mwrpc_stream_acks_sent_total")
)

// Sentinel errors.
var (
	ErrClosed      = errors.New("mwrpc: connection closed")
	ErrTimeout     = errors.New("mwrpc: call timed out")
	ErrNoMethod    = errors.New("mwrpc: unknown method")
	ErrFrameTooBig = errors.New("mwrpc: frame exceeds limit")
	// ErrNoCredit reports that a streaming send was refused because the
	// peer's credit window is exhausted; the caller should buffer or
	// shed and retry after an ack replenishes the window.
	ErrNoCredit = errors.New("mwrpc: stream credits exhausted")
)

// Appender writes a binary payload by extending buf and returning the
// extended slice; it must not retain buf. Used for zero-alloc encode
// straight into the pooled frame buffer.
type Appender func(buf []byte) []byte

// wire is the JSON on-the-wire message envelope (the fallback codec).
type wire struct {
	// Kind is "req", "resp", "push", "sbatch", or "sack".
	Kind string `json:"kind"`
	// ID correlates requests and responses; for stream frames it is the
	// stream ID.
	ID uint64 `json:"id,omitempty"`
	// Seq orders stream batches and cumulatively acknowledges them.
	Seq uint64 `json:"seq,omitempty"`
	// Method names the called procedure (requests).
	Method string `json:"method,omitempty"`
	// Params carries the request/stream-batch payload.
	Params json.RawMessage `json:"params,omitempty"`
	// Result carries the response/push/ack payload.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries a response error message.
	Error string `json:"error,omitempty"`
	// Stream names the push channel (pushes).
	Stream string `json:"stream,omitempty"`
	// Trace carries an obs trace ID so a notification on the server can
	// be attributed to the sensor reading (and client) that caused it.
	Trace string `json:"trace,omitempty"`
}

// frame is the codec-independent in-memory form of one message.
type frame struct {
	kind   uint8
	id     uint64
	seq    uint64
	method string // request method or push stream name
	trace  string
	errMsg string // response error
	binary bool   // payload is hand-rolled binary
	// payload carries the body bytes; enc, when non-nil, appends the
	// body directly into the frame buffer instead (zero-copy encode).
	payload []byte
	enc     Appender
}

func kindString(k uint8) string {
	switch k {
	case kindReq:
		return "req"
	case kindResp:
		return "resp"
	case kindPush:
		return "push"
	case kindStreamBatch:
		return "sbatch"
	case kindStreamAck:
		return "sack"
	}
	return ""
}

func kindFromString(s string) uint8 {
	switch s {
	case "req":
		return kindReq
	case "resp":
		return kindResp
	case "push":
		return kindPush
	case "sbatch":
		return kindStreamBatch
	case "sack":
		return kindStreamAck
	}
	return 0
}

// ---------------------------------------------------------------------------
// Method code table

// Method codes compress well-known method and stream names to one
// header byte; code 0 means the name travels in the payload
// (flagNamed), so unknown methods still work.
var methodCodeTable = []string{
	1:  "mw.ingest",
	2:  "mw.ingestBatch",
	3:  "mw.registerSensor",
	4:  "mw.locate",
	5:  "mw.probInRegion",
	6:  "mw.objectsInRegion",
	7:  "mw.subscribe",
	8:  "mw.unsubscribe",
	9:  "mw.relate",
	10: "mw.route",
	11: "mw.proximity",
	12: "mw.coLocated",
	13: "mw.query",
	14: "mw.distribution",
	15: "mw.history",
	16: "mw.defineRegion",
	17: "mw.health",
	18: "mw.stats",
	19: "mw.streamOpen",
	20: "mwrpc.hello",
	30: "mw.notify",
}

var methodCodes = func() map[string]uint8 {
	m := make(map[string]uint8, len(methodCodeTable))
	for code, name := range methodCodeTable {
		if name != "" {
			m[name] = uint8(code)
		}
	}
	return m
}()

func codeToMethod(code uint8) string {
	if int(code) < len(methodCodeTable) {
		return methodCodeTable[code]
	}
	return ""
}

// ---------------------------------------------------------------------------
// Frame codec

// writeFrame encodes f in the requested codec and writes it as one
// buffer. The encode histogram covers marshal AND the framing write,
// so the per-frame figure matches wall clock on the remote path.
func writeFrame(w io.Writer, f frame, bin bool) error {
	start := time.Now()
	buf := GetBuf()
	defer buf.Free()
	var err error
	if bin {
		buf.B, err = appendBinaryFrame(buf.B, f)
	} else {
		buf.B, err = appendJSONFrame(buf.B, f)
	}
	if err != nil {
		return err
	}
	if _, err := w.Write(buf.B); err != nil {
		return err
	}
	mEncodeUs.Observe(float64(time.Since(start).Microseconds()))
	mFramesSent.Inc()
	mBytesSent.Add(uint64(len(buf.B)))
	if bin {
		mSentBin.Inc()
	} else {
		mSentJSON.Inc()
	}
	return nil
}

// appendBinaryFrame appends the 24-byte header plus payload sections.
func appendBinaryFrame(b []byte, f frame) ([]byte, error) {
	flags := uint8(0)
	code := uint8(0)
	if f.binary {
		flags |= flagBinaryPayload
	}
	if f.errMsg != "" {
		flags |= flagError
	}
	if f.trace != "" {
		flags |= flagTrace
	}
	if f.method != "" {
		if c, ok := methodCodes[f.method]; ok {
			code = c
		} else {
			flags |= flagNamed
		}
	}
	b = append(b, binMagic, f.kind, flags, code)
	lenAt := len(b)
	b = AppendU32(b, 0) // payload length, patched below
	b = AppendU64(b, f.id)
	b = AppendU64(b, f.seq)
	bodyAt := len(b)
	if flags&flagNamed != 0 {
		b = AppendString(b, f.method)
	}
	if flags&flagTrace != 0 {
		b = AppendString(b, f.trace)
	}
	switch {
	case flags&flagError != 0:
		b = append(b, f.errMsg...)
	case f.enc != nil:
		b = f.enc(b)
	default:
		b = append(b, f.payload...)
	}
	n := len(b) - bodyAt
	if n > maxFrame {
		return nil, ErrFrameTooBig
	}
	binary.BigEndian.PutUint32(b[lenAt:], uint32(n))
	return b, nil
}

// appendJSONFrame appends the 4-byte length prefix plus the JSON
// envelope. Binary payloads cannot travel in the JSON envelope.
func appendJSONFrame(b []byte, f frame) ([]byte, error) {
	if f.binary {
		return nil, fmt.Errorf("mwrpc: binary payload on JSON connection")
	}
	payload := f.payload
	if f.enc != nil {
		// JSON framing with an appender is a programming error upstream;
		// handle it anyway by materializing the payload.
		payload = f.enc(nil)
	}
	m := wire{
		Kind:  kindString(f.kind),
		ID:    f.id,
		Seq:   f.seq,
		Trace: f.trace,
		Error: f.errMsg,
	}
	switch f.kind {
	case kindReq:
		m.Method = f.method
		m.Params = payload
	case kindStreamBatch:
		m.Params = payload
	case kindPush:
		m.Stream = f.method
		m.Result = payload
	default:
		m.Result = payload
	}
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("mwrpc: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return nil, ErrFrameTooBig
	}
	b = AppendU32(b, uint32(len(body)))
	return append(b, body...), nil
}

// readFrame reads one frame in either codec, detected per frame by the
// first byte (binMagic vs the 0x00 high byte of a JSON length). The
// decode histogram starts once the first byte has arrived — it covers
// the framing reads and the parse, not idle time waiting for traffic.
func readFrame(br *bufio.Reader) (frame, error) {
	b0, err := br.ReadByte()
	if err != nil {
		return frame{}, err
	}
	start := time.Now()
	if b0 == binMagic {
		return readBinaryFrame(br, start)
	}
	return readJSONFrame(br, b0, start)
}

func readBinaryFrame(br *bufio.Reader, start time.Time) (frame, error) {
	var hdr [binHeaderLen - 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	f := frame{kind: hdr[0]}
	flags := hdr[1]
	code := hdr[2]
	n := binary.BigEndian.Uint32(hdr[3:7])
	if n > maxFrame {
		return frame{}, ErrFrameTooBig
	}
	f.id = binary.BigEndian.Uint64(hdr[7:15])
	f.seq = binary.BigEndian.Uint64(hdr[15:23])
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return frame{}, err
	}
	r := NewBinReader(body)
	if flags&flagNamed != 0 {
		name, err := r.String()
		if err != nil {
			mDecodeBad.Inc()
			return frame{}, fmt.Errorf("mwrpc: frame name: %w", err)
		}
		f.method = name
	} else if code != 0 {
		f.method = codeToMethod(code)
	}
	if flags&flagTrace != 0 {
		trace, err := r.String()
		if err != nil {
			mDecodeBad.Inc()
			return frame{}, fmt.Errorf("mwrpc: frame trace: %w", err)
		}
		f.trace = trace
	}
	rest := body[len(body)-r.Remaining():]
	if flags&flagError != 0 {
		f.errMsg = string(rest)
		if f.errMsg == "" {
			f.errMsg = "mwrpc: remote error"
		}
	} else {
		f.payload = rest
		f.binary = flags&flagBinaryPayload != 0
	}
	mDecodeUs.Observe(float64(time.Since(start).Microseconds()))
	mFramesRecv.Inc()
	mBytesRecv.Add(uint64(n) + binHeaderLen)
	mRecvBin.Inc()
	return f, nil
}

func readJSONFrame(br *bufio.Reader, b0 byte, start time.Time) (frame, error) {
	var rest [3]byte
	if _, err := io.ReadFull(br, rest[:]); err != nil {
		return frame{}, err
	}
	n := uint32(b0)<<24 | uint32(rest[0])<<16 | uint32(rest[1])<<8 | uint32(rest[2])
	if n > maxFrame {
		return frame{}, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return frame{}, err
	}
	var m wire
	if err := json.Unmarshal(body, &m); err != nil {
		mDecodeBad.Inc()
		return frame{}, fmt.Errorf("mwrpc: unmarshal: %w", err)
	}
	f := frame{
		kind:   kindFromString(m.Kind),
		id:     m.ID,
		seq:    m.Seq,
		trace:  m.Trace,
		errMsg: m.Error,
	}
	switch f.kind {
	case kindReq:
		f.method = m.Method
		f.payload = m.Params
	case kindStreamBatch:
		f.payload = m.Params
	case kindPush:
		f.method = m.Stream
		f.payload = m.Result
	default:
		f.payload = m.Result
	}
	mDecodeUs.Observe(float64(time.Since(start).Microseconds()))
	mFramesRecv.Inc()
	mBytesRecv.Add(uint64(n + 4))
	mRecvJSON.Inc()
	return f, nil
}

// ---------------------------------------------------------------------------
// Negotiation

// helloArgs and helloReply implement the "mwrpc.hello" codec
// negotiation. The request and reply always travel as JSON, so any
// peer can read them; both sides switch codecs only after the reply.
type helloArgs struct {
	// Codecs lists the dialer's codecs in preference order.
	Codecs []string `json:"codecs"`
	// Stream advertises streaming-ingest support.
	Stream bool `json:"stream,omitempty"`
}

type helloReply struct {
	// Codec is the chosen codec ("binary" or "json").
	Codec string `json:"codec"`
	// Stream confirms streaming-ingest support.
	Stream bool `json:"stream,omitempty"`
}

// ---------------------------------------------------------------------------
// Server

// ServerConn is the server's view of one client connection. Handlers
// may retain it to push messages until OnClose fires.
type ServerConn struct {
	mu       sync.Mutex
	conn     net.Conn
	closed   bool
	writeBin bool // negotiated: frames we send use the binary codec

	onClose []func()
}

// Codec reports the negotiated write codec for this connection.
func (c *ServerConn) Codec() Codec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeBin {
		return CodecBinary
	}
	return CodecJSON
}

// send writes one frame in the connection's negotiated codec.
func (c *ServerConn) send(f frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return writeFrame(c.conn, f, c.writeBin)
}

// Push sends an asynchronous JSON message on a named stream.
func (c *ServerConn) Push(stream string, payload interface{}) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("mwrpc: push marshal: %w", err)
	}
	err = c.send(frame{kind: kindPush, method: stream, payload: body})
	if err == nil {
		mPushesSent.Inc()
	}
	return err
}

// PushBinary sends an asynchronous binary-payload message on a named
// stream. It requires a binary-negotiated connection; callers check
// Codec() and fall back to Push otherwise.
func (c *ServerConn) PushBinary(stream string, enc Appender) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if !c.writeBin {
		c.mu.Unlock()
		return fmt.Errorf("mwrpc: binary push on JSON connection")
	}
	err := writeFrame(c.conn, frame{kind: kindPush, method: stream, binary: true, enc: enc}, true)
	c.mu.Unlock()
	if err == nil {
		mPushesSent.Inc()
	}
	return err
}

// StreamAck acknowledges a stream batch: seq is the highest contiguous
// sequence processed, and the payload (codec chosen by binary) carries
// the cumulative counts, per-reading rejects, and the credit grant.
func (c *ServerConn) StreamAck(id, seq uint64, payload []byte, binary bool) error {
	err := c.send(frame{kind: kindStreamAck, id: id, seq: seq, payload: payload, binary: binary})
	if err == nil {
		mStreamAcks.Inc()
	}
	return err
}

// OnClose registers a cleanup callback run when the connection drops.
// If the connection is already closed the callback runs immediately.
func (c *ServerConn) OnClose(fn func()) {
	c.mu.Lock()
	closed := c.closed
	if !closed {
		c.onClose = append(c.onClose, fn)
	}
	c.mu.Unlock()
	if closed {
		fn()
	}
}

func (c *ServerConn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cbs := c.onClose
	c.onClose = nil
	c.conn.Close()
	c.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// respond sends a JSON response frame.
func (c *ServerConn) respond(id uint64, result interface{}, herr error) error {
	f := frame{kind: kindResp, id: id}
	if herr != nil {
		f.errMsg = herr.Error()
	} else {
		body, err := json.Marshal(result)
		if err != nil {
			f.errMsg = "mwrpc: marshal result: " + err.Error()
		} else {
			f.payload = body
		}
	}
	return c.send(f)
}

// respondBinary sends a binary-payload response frame.
func (c *ServerConn) respondBinary(id uint64, enc Appender, herr error) error {
	f := frame{kind: kindResp, id: id}
	if herr != nil {
		f.errMsg = herr.Error()
	} else {
		f.binary = true
		f.enc = enc
	}
	return c.send(f)
}

// Handler serves one method. It runs on the connection's reader
// goroutine; slow work should be handed off.
type Handler func(conn *ServerConn, params json.RawMessage) (interface{}, error)

// TracedHandler is a Handler that also receives the trace ID carried
// on the request frame ("" for untraced requests), so the server side
// can continue a span chain begun in the client.
type TracedHandler func(conn *ServerConn, params json.RawMessage, trace string) (interface{}, error)

// BinaryHandler serves a method whose request payload is hand-rolled
// binary. It returns an Appender that encodes the binary response
// payload (nil for an empty response). The payload slice is only valid
// for the duration of the call.
type BinaryHandler func(conn *ServerConn, payload []byte, trace string) (Appender, error)

// StreamBatchFunc consumes one streaming-ingest batch frame. It runs
// on the connection's reader goroutine — processing inline is what
// paces the stream (the next frame is not read until this returns) —
// and is responsible for sending the StreamAck with a credit grant.
// trace is the obs trace ID carried on the frame ("" untraced).
type StreamBatchFunc func(conn *ServerConn, id, seq uint64, payload []byte, binary bool, trace string)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu          sync.Mutex
	handlers    map[string]Handler
	traced      map[string]TracedHandler
	binHandlers map[string]BinaryHandler
	onStream    StreamBatchFunc
	allowBinary bool
	ln          net.Listener
	conns       map[*ServerConn]struct{}
	wg          sync.WaitGroup
	closed      bool
}

// NewServer returns an empty server that accepts binary negotiation.
func NewServer() *Server {
	return &Server{
		handlers:    make(map[string]Handler),
		traced:      make(map[string]TracedHandler),
		binHandlers: make(map[string]BinaryHandler),
		conns:       make(map[*ServerConn]struct{}),
		allowBinary: true,
	}
}

// SetWire configures which codecs the server will negotiate: WireJSON
// declines binary (the compat matrix's "JSON daemon"), anything else
// accepts it. Connections already negotiated keep their codec.
func (s *Server) SetWire(p WirePref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allowBinary = p != WireJSON
}

// Register installs a handler for a method name.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// RegisterTraced installs a trace-aware handler for a method name. A
// traced registration shadows a plain one for the same method.
func (s *Server) RegisterTraced(method string, h TracedHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traced[method] = h
}

// RegisterBinary installs the binary-payload handler for a method.
// JSON requests for the same method still go to the JSON handler, so
// both codecs serve the method after negotiation.
func (s *Server) RegisterBinary(method string, h BinaryHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.binHandlers[method] = h
}

// OnStreamBatch installs the consumer for streaming-ingest batch
// frames (at most one per server).
func (s *Server) OnStreamBatch(fn StreamBatchFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onStream = fn
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free
// port) and serves in background goroutines until Close. It returns
// the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mwrpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			sc := &ServerConn{conn: conn}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				sc.close()
				return
			}
			s.conns[sc] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(sc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// handleHello negotiates the connection codec. The reply travels in
// the pre-negotiation codec; the switch happens after it is written.
func (s *Server) handleHello(sc *ServerConn, params json.RawMessage, id uint64) {
	var a helloArgs
	if err := json.Unmarshal(params, &a); err != nil {
		_ = sc.respond(id, nil, fmt.Errorf("mwrpc: hello: %w", err))
		return
	}
	s.mu.Lock()
	allow := s.allowBinary
	s.mu.Unlock()
	chosen := CodecJSON
	if allow {
		for _, c := range a.Codecs {
			if c == "binary" {
				chosen = CodecBinary
				break
			}
		}
	}
	if err := sc.respond(id, helloReply{Codec: chosen.String(), Stream: true}, nil); err != nil {
		return
	}
	if chosen == CodecBinary {
		sc.mu.Lock()
		sc.writeBin = true
		sc.mu.Unlock()
		mNegoBin.Inc()
	} else {
		mNegoJSON.Inc()
	}
}

func (s *Server) serveConn(sc *ServerConn) {
	defer func() {
		sc.close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(sc.conn, 16<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		switch f.kind {
		case kindReq:
		case kindStreamBatch:
			s.mu.Lock()
			fn := s.onStream
			s.mu.Unlock()
			if fn != nil {
				fn(sc, f.id, f.seq, f.payload, f.binary, f.trace)
			}
			continue
		default:
			continue
		}
		if f.method == "mwrpc.hello" {
			s.handleHello(sc, f.payload, f.id)
			continue
		}
		if f.binary {
			s.mu.Lock()
			bh := s.binHandlers[f.method]
			s.mu.Unlock()
			if bh == nil {
				_ = sc.respond(f.id, nil, fmt.Errorf("%w: %s (binary)", ErrNoMethod, f.method))
				continue
			}
			mServedRequests.Inc()
			enc, herr := bh(sc, f.payload, f.trace)
			if err := sc.respondBinary(f.id, enc, herr); err != nil {
				return
			}
			continue
		}
		s.mu.Lock()
		th := s.traced[f.method]
		h := s.handlers[f.method]
		s.mu.Unlock()
		if th == nil && h == nil {
			_ = sc.respond(f.id, nil, fmt.Errorf("%w: %s", ErrNoMethod, f.method))
			continue
		}
		mServedRequests.Inc()
		var result interface{}
		var herr error
		if th != nil {
			result, herr = th(sc, f.payload, f.trace)
		} else {
			result, herr = h(sc, f.payload)
		}
		if err := sc.respond(f.id, result, herr); err != nil {
			return
		}
	}
}

// Close stops the listener, drops all connections, and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
}

// ---------------------------------------------------------------------------
// Client

// PushFunc consumes pushed JSON messages on a stream.
type PushFunc func(payload json.RawMessage)

// BinaryPushFunc consumes pushed binary messages on a stream. The
// payload is only valid for the duration of the call.
type BinaryPushFunc func(payload []byte)

// StreamAckFunc consumes stream acknowledgements. The payload is only
// valid for the duration of the call.
type StreamAckFunc func(id, seq uint64, payload []byte, binary bool)

// Client is a connection to an mwrpc server.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	nextID    uint64
	pending   map[uint64]chan frame
	onPush    map[string]PushFunc
	onPushBin map[string]BinaryPushFunc
	onAck     StreamAckFunc
	writeBin  bool
	streamOK  bool
	closed    bool
	done      chan struct{}

	// Timeout bounds each Call; zero means 10 seconds.
	Timeout time.Duration
}

// Options configures dialing and per-call behaviour. The zero value
// negotiates the binary codec with JSON fallback and uses the default
// timeouts.
type Options struct {
	// DialTimeout bounds the TCP connect; zero means 5 seconds.
	DialTimeout time.Duration
	// CallTimeout bounds each Call; zero means 10 seconds.
	CallTimeout time.Duration
	// Wire picks the codec: WireAuto (default) negotiates binary with
	// JSON fallback, WireJSON skips negotiation, WireBinary fails the
	// dial if the peer declines binary.
	Wire WirePref
}

// DefaultDialTimeout and DefaultCallTimeout are the zero-value
// Options behaviours.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultCallTimeout = 10 * time.Second
)

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return o.DialTimeout
}

// Dial connects to an mwrpc server with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to an mwrpc server with explicit timeouts and
// codec preference; WireAuto/WireBinary negotiate before returning.
func DialOptions(addr string, opts Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("mwrpc: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.Timeout = opts.CallTimeout
	if err := c.Negotiate(opts.Wire); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// NewClient runs the mwrpc client protocol over an existing connection
// (tests wrap conns in fault injectors before handing them in). The
// connection speaks JSON until Negotiate succeeds.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 16<<10),
		pending:   make(map[uint64]chan frame),
		onPush:    make(map[string]PushFunc),
		onPushBin: make(map[string]BinaryPushFunc),
		done:      make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Negotiate runs the mwrpc.hello codec handshake. It must complete
// before concurrent calls begin (dial time). WireJSON is a no-op; a
// peer that predates negotiation leaves the connection on JSON, which
// WireBinary alone treats as an error.
func (c *Client) Negotiate(pref WirePref) error {
	if pref == WireJSON {
		return nil
	}
	var rep helloReply
	err := c.Call("mwrpc.hello", helloArgs{Codecs: []string{"binary", "json"}, Stream: true}, &rep)
	if err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, ErrTimeout) {
			return err
		}
		var nerr net.Error
		if errors.As(err, &nerr) {
			return err
		}
		// A server-side error ("unknown method" from an old daemon):
		// stay on the JSON fallback.
		if pref == WireBinary {
			return fmt.Errorf("mwrpc: binary codec unavailable: %w", err)
		}
		return nil
	}
	c.mu.Lock()
	c.writeBin = rep.Codec == "binary"
	c.streamOK = rep.Stream
	c.mu.Unlock()
	if pref == WireBinary && rep.Codec != "binary" {
		return fmt.Errorf("mwrpc: peer declined binary codec (offered %q)", rep.Codec)
	}
	return nil
}

// Codec reports the negotiated write codec.
func (c *Client) Codec() Codec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeBin {
		return CodecBinary
	}
	return CodecJSON
}

// StreamSupported reports whether the peer advertised streaming-ingest
// support during negotiation (old daemons did not).
func (c *Client) StreamSupported() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streamOK
}

// Done is closed when the connection dies — by Close or by a transport
// failure. Reconnecting layers watch it to know when to redial.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := readFrame(c.br)
		if err != nil {
			c.failAll()
			return
		}
		switch f.kind {
		case kindResp:
			c.mu.Lock()
			ch := c.pending[f.id]
			delete(c.pending, f.id)
			c.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		case kindPush:
			if f.binary {
				c.mu.Lock()
				fn := c.onPushBin[f.method]
				c.mu.Unlock()
				if fn != nil {
					fn(f.payload)
				}
				continue
			}
			c.mu.Lock()
			fn := c.onPush[f.method]
			c.mu.Unlock()
			if fn != nil {
				fn(f.payload)
			}
		case kindStreamAck:
			c.mu.Lock()
			fn := c.onAck
			c.mu.Unlock()
			if fn != nil {
				fn(f.id, f.seq, f.payload, f.binary)
			}
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// OnPush installs the consumer for a JSON push stream. It replaces any
// previous consumer for that stream.
func (c *Client) OnPush(stream string, fn PushFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPush[stream] = fn
}

// OnPushBinary installs the consumer for binary pushes on a stream.
func (c *Client) OnPushBinary(stream string, fn BinaryPushFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPushBin[stream] = fn
}

// OnStreamAck installs the consumer for stream acknowledgements. The
// handler runs on the read loop and must be fast (credit bookkeeping).
func (c *Client) OnStreamAck(fn StreamAckFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onAck = fn
}

// Call invokes a remote method and decodes the result into result
// (which may be nil to discard it).
func (c *Client) Call(method string, params, result interface{}) error {
	return c.CallTraced(method, params, result, "")
}

// CallTraced is Call with a trace ID stamped onto the request frame so
// the server can attribute its work to the originating reading. An
// empty trace behaves exactly like Call.
func (c *Client) CallTraced(method string, params, result interface{}, trace string) error {
	body, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("mwrpc: marshal params: %w", err)
	}
	err = c.roundTrip(frame{kind: kindReq, method: method, payload: body, trace: trace},
		func(f frame) error {
			if result == nil {
				return nil
			}
			if err := json.Unmarshal(f.payload, result); err != nil {
				return fmt.Errorf("mwrpc: unmarshal result: %w", err)
			}
			return nil
		})
	mCallsTotal.Inc()
	if err != nil {
		mCallErrors.Inc()
	}
	return err
}

// CallBinary invokes a method whose payloads are hand-rolled binary:
// enc appends the request payload straight into the pooled frame
// buffer, dec parses the response payload (which is only valid during
// the call). It requires a binary-negotiated connection — callers
// check Codec() and use the JSON DTO path otherwise.
func (c *Client) CallBinary(method string, enc Appender, dec func(payload []byte) error, trace string) error {
	c.mu.Lock()
	bin := c.writeBin
	c.mu.Unlock()
	if !bin {
		return fmt.Errorf("mwrpc: binary call on JSON connection")
	}
	err := c.roundTrip(frame{kind: kindReq, method: method, binary: true, enc: enc, trace: trace},
		func(f frame) error {
			if dec == nil {
				return nil
			}
			return dec(f.payload)
		})
	mCallsTotal.Inc()
	if err != nil {
		mCallErrors.Inc()
	}
	return err
}

// roundTrip sends a request frame and decodes its response via dec.
func (c *Client) roundTrip(f frame, dec func(frame) error) error {
	ch := make(chan frame, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	f.id = c.nextID
	id := f.id
	c.pending[id] = ch
	err := writeFrame(c.conn, f, c.writeBin)
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultCallTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if m.errMsg != "" {
			return errors.New(m.errMsg)
		}
		return dec(m)
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTimeout, f.method)
	}
}

// StreamSend fires one sequenced stream-batch frame without waiting
// for a response; acknowledgements arrive via OnStreamAck. A binary
// payload requires a binary-negotiated connection.
func (c *Client) StreamSend(id, seq uint64, enc Appender, jsonPayload []byte) error {
	return c.StreamSendTraced(id, seq, enc, jsonPayload, "")
}

// StreamSendTraced is StreamSend with an obs trace ID on the frame, so
// the server-side batch consumer can continue the sender's trace.
func (c *Client) StreamSendTraced(id, seq uint64, enc Appender, jsonPayload []byte, trace string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	f := frame{kind: kindStreamBatch, id: id, seq: seq, trace: trace}
	if c.writeBin && enc != nil {
		f.binary = true
		f.enc = enc
	} else {
		f.payload = jsonPayload
	}
	if err := writeFrame(c.conn, f, c.writeBin); err != nil {
		return err
	}
	mStreamSent.Inc()
	return nil
}

// Close drops the connection and waits for the reader to exit.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	<-c.done
}
