package remote

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/faultnet"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// Chaos tests drive the client/server stack through a faultnet proxy
// and assert the acceptance properties of the fault-tolerant
// distribution layer: sessions resume after a forced disconnect, frame
// loss delays but never duplicates notifications, and a dead server
// leaves no client goroutines behind. `make chaos` runs exactly these
// (plus the faultnet package) under -race.

// chaosOpts are aggressive-but-bounded reconnect settings so the tests
// finish quickly and deterministically.
func chaosOpts(seed int64) DialOptions {
	return DialOptions{
		DialTimeout:  2 * time.Second,
		CallTimeout:  2 * time.Second,
		DialAttempts: 8,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		JitterSeed:   seed,
	}
}

// startChaosStack brings up service + server behind a faultnet proxy
// and dials a client through it.
func startChaosStack(t *testing.T, cfg faultnet.Config, opts DialOptions) (*LocationClient, *faultnet.Proxy, *core.Service) {
	t.Helper()
	svc, err := core.New(building.PaperFloor(), core.WithClock(func() time.Time { return t0 }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	proxy, err := faultnet.NewProxy(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	c, err := DialLocationOptions(proxy.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, proxy, svc
}

// ingestUntilNotified keeps ingesting a qualifying reading for obj
// until its notification lands (each ingest is identical, so repeats
// fuse to the same posterior and the replay guard can dedup cleanly).
func ingestUntilNotified(t *testing.T, c *LocationClient, obj string, arrived func(string) bool) {
	t.Helper()
	r := model.Reading{
		SensorID:  "chaos-s",
		MObjectID: obj,
		Location:  glob.MustParse("CS/Floor3/(370,15)"),
		Time:      t0,
	}
	deadline := time.Now().Add(20 * time.Second)
	for !arrived(obj) {
		if time.Now().After(deadline) {
			t.Fatalf("notification for %s never arrived", obj)
		}
		// Transport errors are retried inside call(); a failed round
		// surfaces here and the next attempt starts a fresh one.
		_ = c.Ingest(r)
		time.Sleep(5 * time.Millisecond)
	}
}

func TestChaosReconnectResumesSession(t *testing.T) {
	c, proxy, _ := startChaosStack(t, faultnet.Config{Seed: 1}, chaosOpts(1))

	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("chaos-s", spec); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	arrived := func(obj string) bool {
		mu.Lock()
		defer mu.Unlock()
		return counts[obj] > 0
	}
	subID, err := c.Subscribe(SubscribeArgs{Region: "CS/Floor3/NetLab", MinProb: 0.3},
		func(n NotificationDTO) {
			mu.Lock()
			counts[n.Object]++
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the stack works before any fault.
	ingestUntilNotified(t, c, "alice", arrived)

	// Forced mid-session disconnect. The very next calls ride the
	// reconnect; the session (sensor + subscription) must resume with
	// no application-level re-registration.
	proxy.KillConnections()
	ingestUntilNotified(t, c, "bob", arrived)

	loc, err := c.Locate("alice")
	if err != nil {
		t.Fatalf("Locate after reconnect: %v", err)
	}
	if loc.Symbolic != "CS/Floor3/NetLab" {
		t.Errorf("post-reconnect locate = %s", loc.Symbolic)
	}
	h := c.Health()
	if h.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", h.Reconnects)
	}
	if h.Conn != StateConnected {
		t.Errorf("conn state = %v, want connected", h.Conn)
	}
	if h.Subscriptions != 1 || h.Sensors != 1 {
		t.Errorf("session table = %d subs %d sensors, want 1/1", h.Subscriptions, h.Sensors)
	}
	// The stable subscription ID survives reconnection.
	if err := c.Unsubscribe(subID); err != nil {
		t.Errorf("unsubscribe after reconnect: %v", err)
	}
}

func TestChaosFrameDropsExactlyOnce(t *testing.T) {
	// 10% of frames vanish; a dropped frame severs the link (TCP either
	// delivers in order or dies), so this also exercises reconnection.
	c, _, _ := startChaosStack(t, faultnet.Config{Seed: 7, FrameDropRate: 0.10}, chaosOpts(7))

	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.RegisterSensor("chaos-s", spec); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("RegisterSensor never succeeded: %v", err)
		}
	}
	var mu sync.Mutex
	counts := map[string]int{}
	arrived := func(obj string) bool {
		mu.Lock()
		defer mu.Unlock()
		return counts[obj] > 0
	}
	for {
		_, err := c.Subscribe(SubscribeArgs{Region: "CS/Floor3/NetLab", MinProb: 0.3},
			func(n NotificationDTO) {
				mu.Lock()
				counts[n.Object]++
				mu.Unlock()
			})
		if err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("Subscribe never succeeded: %v", err)
		}
	}

	const objects = 8
	for i := 0; i < objects; i++ {
		ingestUntilNotified(t, c, fmt.Sprintf("obj-%d", i), arrived)
	}
	// Queries still answer through the lossy link.
	for i := 0; i < objects; i++ {
		obj := fmt.Sprintf("obj-%d", i)
		locDeadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := c.Locate(obj); err == nil {
				break
			} else if time.Now().After(locDeadline) {
				t.Fatalf("Locate(%s) never succeeded: %v", obj, err)
			}
		}
	}

	// Settle, then assert exactly-once delivery: entry-edge triggers
	// plus the client replay guard keep re-subscription replays out.
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < objects; i++ {
		obj := fmt.Sprintf("obj-%d", i)
		if counts[obj] != 1 {
			t.Errorf("%s notified %d times, want exactly 1", obj, counts[obj])
		}
	}
}

func TestChaosServerDeathNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, err := core.New(building.PaperFloor(), core.WithClock(func() time.Time { return t0 }))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.NewProxy(addr, faultnet.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts(3)
	opts.DialAttempts = 2
	c, err := DialLocationOptions(proxy.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(SubscribeArgs{Region: "CS/Floor3/NetLab"}, func(NotificationDTO) {}); err != nil {
		t.Fatal(err)
	}

	// Kill the whole server side; the client's bounded reconnect rounds
	// must fail (not hang) and Close must release everything.
	proxy.Close()
	srv.Close()
	if _, err := c.Locate("anyone"); err == nil {
		t.Error("call against dead server should fail")
	}
	c.Close()
	svc.Close()

	// Goroutine count returns to baseline (allow slack for runtime
	// background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after close\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
