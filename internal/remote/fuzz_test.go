// Fuzz targets for the binary payload codecs: a malformed payload
// must produce an error (or per-reading rejections), never a panic or
// an over-read. Seed corpora live in testdata/fuzz/<Target>/;
// regenerate with MW_WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus.
package remote

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

func fuzzSampleReadings() []model.Reading {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return []model.Reading{
		{
			SensorID: "ubi-1", SensorType: "ubisense", MObjectID: "alice",
			Location:        glob.MustParse("CS/Floor3/(370,15)"),
			DetectionRadius: 0.15, Time: t0,
		},
		{
			SensorID: "rf-2", SensorType: "rfbadge", MObjectID: "bob",
			Location: glob.MustParse("CS/Floor3/Room3230"),
			Time:     t0.Add(time.Second),
		},
	}
}

func readingsSeeds() [][]byte {
	full := AppendReadings(nil, fuzzSampleReadings())
	return [][]byte{
		full,
		full[:len(full)/2], // truncated mid-reading
		AppendReadings(nil, nil),
		{},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // absurd count
	}
}

func ackSeeds() [][]byte {
	return [][]byte{
		appendStreamAck(nil, streamAckDTO{
			Accepted: 42, BatchAccepted: 7,
			Rejected:      []RejectedReadingDTO{{Index: 3, Error: "unknown sensor"}},
			CreditBatches: 1, CreditBytes: 512,
		}),
		appendStreamAck(nil, streamAckDTO{Error: "corrupt batch"}),
		{},
	}
}

// FuzzDecodeReadings covers the hot stream/batch payload decoder.
func FuzzDecodeReadings(f *testing.F) {
	for _, s := range readingsSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, frameIdx, rejected, err := DecodeReadings(data)
		if err != nil {
			return
		}
		if len(frameIdx) != len(rs) {
			t.Fatalf("frameIdx len %d != readings len %d", len(frameIdx), len(rs))
		}
		// Whatever decoded must re-encode and decode back to the same
		// shape: the codec is self-consistent, not just crash-free.
		re := AppendReadings(nil, rs)
		rs2, _, rej2, err2 := DecodeReadings(re)
		if err2 != nil {
			t.Fatalf("re-encode of a decoded batch failed to decode: %v", err2)
		}
		if len(rs2) != len(rs) || len(rej2) != 0 {
			t.Fatalf("round trip changed shape: %d->%d readings, %d new rejects",
				len(rs), len(rs2), len(rej2))
		}
		_ = rejected
	})
}

// FuzzDecodeStreamAck covers the acknowledgement decoder (which the
// client runs on its reader goroutine — a panic there kills the
// connection).
func FuzzDecodeStreamAck(f *testing.F) {
	for _, s := range ackSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := decodeStreamAck(data)
		if err != nil {
			return
		}
		re := appendStreamAck(nil, a)
		a2, err2 := decodeStreamAck(re)
		if err2 != nil {
			t.Fatalf("re-encode of a decoded ack failed to decode: %v", err2)
		}
		if a2.Accepted != a.Accepted || a2.BatchAccepted != a.BatchAccepted ||
			len(a2.Rejected) != len(a.Rejected) || a2.Error != a.Error {
			t.Fatalf("ack round trip drifted: %+v -> %+v", a, a2)
		}
	})
}

// FuzzDecodeNotification covers the binary push decoder.
func FuzzDecodeNotification(f *testing.F) {
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeNotification(data)
	})
}

// FuzzDecodeIngestReply covers the batched-ingest reply decoder.
func FuzzDecodeIngestReply(f *testing.F) {
	f.Add(AppendIngestReply(nil, IngestBatchReply{
		Accepted: 3,
		Rejected: []RejectedReadingDTO{{Index: 1, Error: "bad time"}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeIngestReply(data)
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpora; gated so
// a normal run never writes to the tree.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("MW_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set MW_WRITE_FUZZ_CORPUS=1 to regenerate seed corpora")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzDecodeReadings", readingsSeeds())
	write("FuzzDecodeStreamAck", ackSeeds())
}
