package remote

import (
	"encoding/json"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
)

// TestStreamReplayDoesNotExtendTrace pins the replay/trace interplay:
// a duplicate streaming seq is re-acked before the batch is decoded,
// so the replayed frame can neither re-store readings nor add spans —
// the trace ring is exactly as it was after the first delivery.
func TestStreamReplayDoesNotExtendTrace(t *testing.T) {
	was := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(was) })
	obs.DefaultTracer().Reset()

	c, svc := startStack(t)
	registerStreamSensor(t, c, "rp-s")
	rpc, err := mwrpc.Dial(c.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rpc.Close()
	acks := make(chan streamAckDTO, 4)
	rpc.OnStreamAck(func(id, seq uint64, payload []byte, binary bool) {
		var a streamAckDTO
		var err error
		if binary {
			a, err = decodeStreamAck(payload)
		} else {
			err = json.Unmarshal(payload, &a)
		}
		if err != nil {
			t.Errorf("ack decode: %v", err)
			return
		}
		acks <- a
	})
	var open streamOpenReply
	if err := rpc.Call("mw.streamOpen", struct{}{}, &open); err != nil {
		t.Fatal(err)
	}

	trace := obs.BeginTrace()
	batch := []model.Reading{streamReading("rp-s", "rp-a", t0)}
	send := func() error {
		if rpc.Codec() == mwrpc.CodecBinary {
			return rpc.StreamSendTraced(open.StreamID, 1, func(b []byte) []byte {
				return AppendReadings(b, batch)
			}, nil, trace)
		}
		args := IngestBatchArgs{Readings: []ReadingDTO{toReadingDTO(batch[0])}}
		body, err := json.Marshal(args)
		if err != nil {
			return err
		}
		return rpc.StreamSendTraced(open.StreamID, 1, nil, body, trace)
	}

	if err := send(); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-acks:
		if a.BatchAccepted != 1 {
			t.Fatalf("first ack = %+v, want 1 accepted", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first ack never arrived")
	}

	// Pipeline spans land asynchronously after the ack; wait for the
	// span count under our trace ID to stabilise before replaying.
	spanCount := func() int {
		tr, ok := obs.DefaultTracer().Get(trace)
		if !ok {
			return 0
		}
		return len(tr.Spans)
	}
	var before int
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := spanCount()
		time.Sleep(25 * time.Millisecond)
		if n > 0 && spanCount() == n {
			before = n
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never stabilised (spans=%d)", trace, n)
		}
	}
	ringBefore := obs.DefaultTracer().Len()

	if err := send(); err != nil { // same seq: a replay
		t.Fatal(err)
	}
	select {
	case a := <-acks:
		if a.BatchAccepted != 0 || a.Accepted != 1 {
			t.Fatalf("replay ack = %+v, want cumulative 1, batch 0", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replay ack never arrived")
	}
	time.Sleep(50 * time.Millisecond) // grace for any (wrong) async spans

	if got := obs.DefaultTracer().Len(); got != ringBefore {
		t.Errorf("trace ring grew %d -> %d on a replayed frame", ringBefore, got)
	}
	if got := spanCount(); got != before {
		t.Errorf("trace %s grew %d -> %d spans on a replayed frame", trace, before, got)
	}
	if got := svc.Health().Ingested; got != 1 {
		t.Errorf("service ingested %d, want 1", got)
	}
}

// TestHealthReportsSLOs: a server wired with an SLO tracker surfaces
// each objective's status — and a breach — through mw.health.
func TestHealthReportsSLOs(t *testing.T) {
	svc, err := core.New(building.PaperFloor())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := NewServer(svc)

	reg := obs.NewRegistry()
	slos, err := obs.ParseSLOs("probe_us=p99<1ms@1s", nil)
	if err != nil {
		t.Fatal(err)
	}
	tracker := obs.NewSLOTracker(reg, slos, time.Hour) // ticked manually
	srv.SetSLOTracker(tracker)

	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := DialLocation(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	h, err := c.ServerHealth()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.SLOs) != 1 || h.SLOs[0].Name != "probe_us" || h.SLOs[0].Breached {
		t.Fatalf("initial SLOs = %+v, want one healthy probe_us", h.SLOs)
	}
	if h.SLOs[0].TargetUs != 1000 {
		t.Errorf("TargetUs = %g, want 1000", h.SLOs[0].TargetUs)
	}

	tracker.Tick() // baseline
	for i := 0; i < 100; i++ {
		reg.Histogram("probe_us").Observe(5e6)
	}
	tracker.Tick()
	h, err = c.ServerHealth()
	if err != nil {
		t.Fatal(err)
	}
	s := h.SLOs[0]
	if !s.Breached || s.Samples != 100 || s.AttainedUs <= s.TargetUs || s.BurnRate <= 1 {
		t.Fatalf("post-burst SLO = %+v, want a breach with 100 samples", s)
	}
}
