package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/fed"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwql"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

// NotifyStream is the push stream carrying trigger notifications.
const NotifyStream = "mw.notify"

// Server publishes a Location Service over mwrpc.
type Server struct {
	svc *core.Service
	rpc *mwrpc.Server

	mu sync.Mutex
	// subs maps subscription ID -> owning connection, for cleanup when
	// a client drops.
	subs map[string]*mwrpc.ServerConn
	// streams holds per-connection streaming-ingest state; nextStream
	// allocates stream IDs.
	streams    map[*mwrpc.ServerConn]map[uint64]*srvStream
	nextStream uint64
	// fed is the federation router, when this daemon is part of one
	// (SetFederation); nil for a standalone daemon.
	fed *fed.Router
	// slo is the latency-objective tracker, when the daemon runs one
	// (SetSLOTracker); nil otherwise.
	slo *obs.SLOTracker
}

// SetSLOTracker attaches a latency-objective tracker; mw.health replies
// include each objective's latest evaluation from then on.
func (s *Server) SetSLOTracker(t *obs.SLOTracker) {
	s.mu.Lock()
	s.slo = t
	s.mu.Unlock()
}

// sloTracker returns the attached tracker, or nil.
func (s *Server) sloTracker() *obs.SLOTracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slo
}

// NewServer wraps a Location Service. Call Listen to serve. The
// MW_WIRE environment knob ("json" daemon side declines binary
// negotiation) configures which codecs the server offers.
func NewServer(svc *core.Service) *Server {
	s := &Server{
		svc:     svc,
		rpc:     mwrpc.NewServer(),
		subs:    make(map[string]*mwrpc.ServerConn),
		streams: make(map[*mwrpc.ServerConn]map[uint64]*srvStream),
	}
	_, daemonWire := mwrpc.WireFromEnv(os.Getenv(mwrpc.WireEnv))
	s.rpc.SetWire(daemonWire)
	s.rpc.RegisterTraced("mw.ingest", s.handleIngest)
	s.rpc.RegisterTraced("mw.ingestBatch", s.handleIngestBatch)
	s.rpc.RegisterBinary("mw.ingestBatch", s.handleIngestBatchBin)
	s.rpc.RegisterBinary("mw.probInRegion", s.handleProbInRegionBin)
	s.rpc.RegisterBinary("mw.objectsInRegion", s.handleObjectsInRegionBin)
	s.rpc.Register("mw.streamOpen", s.handleStreamOpen)
	s.rpc.OnStreamBatch(s.handleStreamBatch)
	s.rpc.Register("mw.registerSensor", s.handleRegisterSensor)
	s.rpc.Register("mw.locate", s.handleLocate)
	s.rpc.Register("mw.probInRegion", s.handleProbInRegion)
	s.rpc.RegisterTraced("mw.objectsInRegion", s.handleObjectsInRegion)
	s.rpc.Register("mw.subscribe", s.handleSubscribe)
	s.rpc.Register("mw.unsubscribe", s.handleUnsubscribe)
	s.rpc.Register("mw.relate", s.handleRelate)
	s.rpc.Register("mw.route", s.handleRoute)
	s.rpc.Register("mw.proximity", s.handleProximity)
	s.rpc.Register("mw.coLocated", s.handleCoLocated)
	s.rpc.Register("mw.query", s.handleQuery)
	s.rpc.Register("mw.distribution", s.handleDistribution)
	s.rpc.Register("mw.history", s.handleHistory)
	s.rpc.Register("mw.defineRegion", s.handleDefineRegion)
	s.rpc.Register("mw.health", s.handleHealth)
	s.rpc.Register("mw.stats", s.handleStats)
	s.rpc.Register(fed.MethodHello, s.handleHello)
	s.rpc.Register(fed.MethodShards, s.handleShards)
	return s
}

// handleStats snapshots the process-global registry and tracer for
// mwctl stats / mwctl trace.
func (s *Server) handleStats(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a StatsArgs
	if len(params) > 0 {
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
	}
	out := statsSnapshot(obs.Default(), obs.DefaultTracer(), a.Traces)
	for _, st := range s.svc.DB().ShardStats() {
		out.Shards = append(out.Shards, ShardDTO{
			Key:           st.Key,
			Objects:       st.Objects,
			MobileObjects: st.MobileObjects,
			Readings:      st.Readings,
			RTreeNodes:    st.RTreeNodes,
			Epoch:         st.Epoch,
			Inserts:       st.Inserts,
		})
	}
	return out, nil
}

// statsSnapshot renders a registry (and optionally recent traces) into
// the wire form.
func statsSnapshot(reg *obs.Registry, tr *obs.Tracer, traces int) StatsDTO {
	snap := reg.Snapshot()
	out := StatsDTO{Enabled: obs.Enabled()}
	if len(snap.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(snap.Counters))
		for _, c := range snap.Counters {
			out.Counters[c.Name] = c.Value
		}
	}
	if len(snap.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(snap.Gauges))
		for _, g := range snap.Gauges {
			out.Gauges[g.Name] = g.Value
		}
	}
	for _, h := range snap.Histograms {
		hd := HistogramDTO{
			Name: h.Name, Count: h.Count, Sum: h.Sum,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}
		for _, b := range h.Buckets {
			le := b.Le
			if math.IsInf(le, 1) {
				le = -1 // JSON has no +Inf; negative marks the overflow bucket
			}
			hd.Buckets = append(hd.Buckets, BucketDTO{Le: le, Count: b.Count})
		}
		out.Histograms = append(out.Histograms, hd)
	}
	if traces > 0 && tr != nil {
		for _, t := range tr.Recent(traces) {
			td := TraceDTO{
				ID:      t.ID,
				Begin:   t.Begin.Format(time.RFC3339Nano),
				TotalUs: float64(t.Total().Microseconds()),
			}
			for _, sp := range t.Spans {
				td.Spans = append(td.Spans, SpanDTO{
					Stage:    sp.Stage,
					Daemon:   sp.Daemon,
					OffsetUs: float64(sp.Offset.Microseconds()),
					DurUs:    float64(sp.Dur.Microseconds()),
				})
			}
			out.Traces = append(out.Traces, td)
		}
	}
	return out
}

func (s *Server) handleHealth(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	h := s.svc.Health()
	out := HealthDTO{
		Status:        h.State.String(),
		UptimeSeconds: h.Uptime.Seconds(),
		Ingested:      h.Ingested,
		Notifications: h.Notifications,
		Subscriptions: h.Subscriptions,
		Sensors:       h.Sensors,
		QueueDepth:    h.QueueDepth,
		QueueCap:      h.QueueCap,
	}
	if r := s.federation(); r != nil {
		out.Federation = &FederationDTO{
			Daemon:           r.Daemon(),
			PlacementVersion: r.Placement().Version,
			Peers:            r.PeerStates(),
		}
	}
	if t := s.sloTracker(); t != nil {
		for _, st := range t.Status() {
			out.SLOs = append(out.SLOs, SLODTO{
				Name:       st.Name,
				Metric:     st.Metric,
				Percentile: st.Percentile,
				TargetUs:   float64(st.Target.Microseconds()),
				WindowSecs: st.Window.Seconds(),
				AttainedUs: float64(st.Attained.Microseconds()),
				BurnRate:   st.BurnRate,
				Samples:    st.Samples,
				Breached:   st.Breached,
			})
		}
	}
	return out, nil
}

// SetWire overrides which codecs the daemon negotiates (normally read
// from MW_WIRE at construction). Call before Listen; the daemon's -wire
// flag routes here.
func (s *Server) SetWire(p mwrpc.WirePref) { s.rpc.SetWire(p) }

// Listen binds to addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) { return s.rpc.Listen(addr) }

// Close stops serving (the wrapped Location Service is not closed; its
// owner closes it).
func (s *Server) Close() { s.rpc.Close() }

// handleIngest is trace-aware: the trace ID the client stamped on the
// request frame is adopted here, the decode cost is recorded as the
// ingest stage, and the ID rides the Reading into the pipeline.
func (s *Server) handleIngest(_ *mwrpc.ServerConn, params json.RawMessage, trace string) (interface{}, error) {
	start := time.Now()
	var d ReadingDTO
	if err := json.Unmarshal(params, &d); err != nil {
		return nil, err
	}
	r, err := d.toReading()
	if err != nil {
		return nil, err
	}
	r.Trace = trace
	obs.SpanSince(trace, "ingest", start)
	if err := s.svc.Ingest(r); err != nil {
		return nil, err
	}
	return "ok", nil
}

// handleIngestBatch decodes a batched ingest frame and stores the
// whole slice in one database pass. The frame's trace ID is stamped on
// every reading so each one's pipeline stays attributable.
//
// A reading that fails to decode or validate never fails the frame:
// the valid readings are already stored by the time a per-reading
// failure is known, so a frame-level error would make an at-least-once
// client re-send (and re-store) them forever. The reply instead
// carries the accepted count plus a per-reading rejection list, which
// the client surfaces as a *spatialdb.RejectedError.
func (s *Server) handleIngestBatch(_ *mwrpc.ServerConn, params json.RawMessage, trace string) (interface{}, error) {
	start := time.Now()
	var a IngestBatchArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	rs, frameIdx, rejected := decodeDTOBatch(a.Readings, trace)
	obs.SpanSince(trace, "ingest", start)
	return s.ingestDecoded(rs, frameIdx, rejected, len(a.Readings))
}

// handleIngestBatchBin is the binary-payload twin of handleIngestBatch:
// readings arrive structurally encoded (no RFC 3339 parse, no glob
// re-parse) and the reply payload is hand-rolled too.
func (s *Server) handleIngestBatchBin(_ *mwrpc.ServerConn, payload []byte, trace string) (mwrpc.Appender, error) {
	start := time.Now()
	rs, frameIdx, rejected, err := DecodeReadings(payload)
	if err != nil {
		return nil, err
	}
	for i := range rs {
		rs[i].Trace = trace
	}
	obs.SpanSince(trace, "ingest", start)
	rep, herr := s.ingestDecoded(rs, frameIdx, rejected, len(rs)+len(rejected))
	if herr != nil {
		return nil, herr
	}
	return func(b []byte) []byte { return AppendIngestReply(b, rep) }, nil
}

// decodeDTOBatch converts wire readings to model form, collecting
// per-reading decode failures as frame-indexed rejections.
func decodeDTOBatch(dtos []ReadingDTO, trace string) (rs []model.Reading, frameIdx []int, rejected []RejectedReadingDTO) {
	rs = make([]model.Reading, 0, len(dtos))
	frameIdx = make([]int, 0, len(dtos))
	for i, d := range dtos {
		r, err := d.toReading()
		if err != nil {
			rejected = append(rejected, RejectedReadingDTO{Index: i, Error: err.Error()})
			continue
		}
		r.Trace = trace
		rs = append(rs, r)
		frameIdx = append(frameIdx, i)
	}
	return rs, frameIdx, rejected
}

// ingestDecoded stores a decoded batch in one database pass and folds
// the database's per-reading rejections (remapped to frame indices)
// into the reply. A per-reading failure never fails the frame: the
// valid readings are already stored, so a frame-level error would make
// an at-least-once client re-send (and re-store) them forever.
// Non-positional failures (e.g. a closing service) propagate as a
// frame-level error — nothing was stored, a retry is safe.
func (s *Server) ingestDecoded(rs []model.Reading, frameIdx []int, rejected []RejectedReadingDTO, total int) (IngestBatchReply, error) {
	if err := s.svc.IngestBatch(rs); err != nil {
		var rej *spatialdb.RejectedError
		if !errors.As(err, &rej) {
			return IngestBatchReply{}, err
		}
		for k, idx := range rej.Indices {
			if idx < 0 || idx >= len(frameIdx) {
				continue
			}
			msg := ""
			if k < len(rej.Errs) {
				msg = rej.Errs[k].Error()
			}
			rejected = append(rejected, RejectedReadingDTO{Index: frameIdx[idx], Error: msg})
		}
	}
	sort.Slice(rejected, func(i, j int) bool { return rejected[i].Index < rejected[j].Index })
	return IngestBatchReply{Accepted: total - len(rejected), Rejected: rejected}, nil
}

type registerSensorArgs struct {
	SensorID string        `json:"sensorId"`
	Spec     SensorSpecDTO `json:"spec"`
}

func (s *Server) handleRegisterSensor(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a registerSensorArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	spec, err := a.Spec.toSpec()
	if err != nil {
		return nil, err
	}
	if err := s.svc.RegisterSensor(a.SensorID, spec); err != nil {
		return nil, err
	}
	return "ok", nil
}

type objectArgs struct {
	Object string `json:"object"`
}

func (s *Server) handleLocate(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a objectArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	loc, err := s.svc.LocateObject(a.Object)
	if err != nil {
		return nil, err
	}
	return toLocationDTO(loc), nil
}

type regionQueryArgs struct {
	Object string `json:"object,omitempty"`
	Region string `json:"region"`
	// MinProb filters objectsInRegion results.
	MinProb float64 `json:"minProb,omitempty"`
}

type probReply struct {
	Prob float64 `json:"prob"`
	Band string  `json:"band"`
}

func (s *Server) handleProbInRegion(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a regionQueryArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	region, err := glob.Parse(a.Region)
	if err != nil {
		return nil, err
	}
	p, band, err := s.svc.ProbInRegion(a.Object, region)
	if err != nil {
		return nil, err
	}
	return probReply{Prob: p, Band: band.String()}, nil
}

// handleObjectsInRegion answers the local region scan. It is
// trace-aware because federated peers call it during fan-out: the
// entry daemon's trace ID rides the frame and the scan lands in the
// same trace as a region_scan span labeled with this daemon's name.
func (s *Server) handleObjectsInRegion(_ *mwrpc.ServerConn, params json.RawMessage, trace string) (interface{}, error) {
	start := time.Now()
	var a regionQueryArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	region, err := glob.Parse(a.Region)
	if err != nil {
		return nil, err
	}
	out, err := s.svc.ObjectsInRegion(region, a.MinProb)
	if err != nil {
		return nil, err
	}
	obs.SpanSinceD(trace, "region_scan", s.fedDaemonName(), start)
	return out, nil
}

// handleProbInRegionBin answers a binary-payload probability query.
func (s *Server) handleProbInRegionBin(_ *mwrpc.ServerConn, payload []byte, _ string) (mwrpc.Appender, error) {
	a, err := decodeRegionQuery(payload)
	if err != nil {
		return nil, err
	}
	region, err := glob.Parse(a.Region)
	if err != nil {
		return nil, err
	}
	p, band, err := s.svc.ProbInRegion(a.Object, region)
	if err != nil {
		return nil, err
	}
	bandStr := band.String()
	return func(b []byte) []byte { return appendProbReply(b, p, bandStr) }, nil
}

// handleObjectsInRegionBin answers a binary-payload region scan.
func (s *Server) handleObjectsInRegionBin(_ *mwrpc.ServerConn, payload []byte, trace string) (mwrpc.Appender, error) {
	start := time.Now()
	a, err := decodeRegionQuery(payload)
	if err != nil {
		return nil, err
	}
	region, err := glob.Parse(a.Region)
	if err != nil {
		return nil, err
	}
	objs, err := s.svc.ObjectsInRegion(region, a.MinProb)
	if err != nil {
		return nil, err
	}
	obs.SpanSinceD(trace, "region_scan", s.fedDaemonName(), start)
	return func(b []byte) []byte { return appendObjectsReply(b, objs) }, nil
}

// SubscribeArgs configures a remote subscription (§4.3).
type SubscribeArgs struct {
	Object       string  `json:"object,omitempty"`
	Region       string  `json:"region"`
	MinProb      float64 `json:"minProb,omitempty"`
	MinBand      string  `json:"minBand,omitempty"`
	EveryReading bool    `json:"everyReading,omitempty"`
}

type subscribeReply struct {
	SubscriptionID string `json:"subscriptionId"`
}

func (s *Server) handleSubscribe(conn *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a SubscribeArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	region, err := glob.Parse(a.Region)
	if err != nil {
		return nil, err
	}
	id, err := s.svc.Subscribe(core.Subscription{
		Object:       a.Object,
		Region:       region,
		MinProb:      a.MinProb,
		MinBand:      bandFromString(a.MinBand),
		EveryReading: a.EveryReading,
		Handler: func(n core.Notification) {
			// Best effort: a dead connection is cleaned up by OnClose.
			if conn.Codec() == mwrpc.CodecBinary {
				_ = conn.PushBinary(NotifyStream, func(b []byte) []byte {
					return appendNotification(b, n)
				})
			} else {
				_ = conn.Push(NotifyStream, toNotificationDTO(n))
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.subs[id] = conn
	s.mu.Unlock()
	conn.OnClose(func() {
		s.mu.Lock()
		_, mine := s.subs[id]
		delete(s.subs, id)
		s.mu.Unlock()
		if mine {
			_ = s.svc.Unsubscribe(id)
		}
	})
	return subscribeReply{SubscriptionID: id}, nil
}

type unsubscribeArgs struct {
	SubscriptionID string `json:"subscriptionId"`
}

func (s *Server) handleUnsubscribe(conn *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a unsubscribeArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	owner, ok := s.subs[a.SubscriptionID]
	if ok && owner == conn {
		delete(s.subs, a.SubscriptionID)
	}
	s.mu.Unlock()
	if !ok || owner != conn {
		return nil, fmt.Errorf("remote: subscription %s not owned by caller", a.SubscriptionID)
	}
	if err := s.svc.Unsubscribe(a.SubscriptionID); err != nil {
		return nil, err
	}
	return "ok", nil
}

type queryArgs struct {
	// Query is an mwql statement (§5.1's SQL-style queries).
	Query string `json:"query"`
}

// ObjectDTO is the wire form of a spatial object row.
type ObjectDTO struct {
	GLOB       string            `json:"glob"`
	Type       string            `json:"type"`
	Bounds     RectDTO           `json:"bounds"`
	Properties map[string]string `json:"properties,omitempty"`
}

func (s *Server) handleQuery(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a queryArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	objs, err := mwql.Exec(s.svc.DB(), a.Query)
	if err != nil {
		return nil, err
	}
	out := make([]ObjectDTO, 0, len(objs))
	for _, o := range objs {
		out = append(out, ObjectDTO{
			GLOB: o.ID(),
			Type: o.Type,
			Bounds: RectDTO{
				MinX: o.Bounds.Min.X, MinY: o.Bounds.Min.Y,
				MaxX: o.Bounds.Max.X, MaxY: o.Bounds.Max.Y,
			},
			Properties: o.Properties,
		})
	}
	return out, nil
}

type relateArgs struct {
	A string `json:"a"`
	B string `json:"b"`
}

type relateReply struct {
	Relation string `json:"relation"`
	Passage  string `json:"passage"`
}

func (s *Server) handleRelate(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a relateArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	ga, err := glob.Parse(a.A)
	if err != nil {
		return nil, err
	}
	gb, err := glob.Parse(a.B)
	if err != nil {
		return nil, err
	}
	rel, pass, err := s.svc.RelateRegions(ga, gb)
	if err != nil {
		return nil, err
	}
	return relateReply{Relation: rel.String(), Passage: pass.String()}, nil
}

type routeArgs struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Policy is "free" or "restricted".
	Policy string `json:"policy,omitempty"`
}

// RouteReply is the wire form of a route.
type RouteReply struct {
	Regions []string `json:"regions"`
	Length  float64  `json:"length"`
}

func policyFromString(s string) topo.TraversalPolicy {
	if s == "restricted" {
		return topo.AllowRestricted
	}
	return topo.FreeOnly
}

func (s *Server) handleRoute(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a routeArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	from, err := glob.Parse(a.From)
	if err != nil {
		return nil, err
	}
	to, err := glob.Parse(a.To)
	if err != nil {
		return nil, err
	}
	rt, err := s.svc.RouteBetween(from, to, policyFromString(a.Policy))
	if err != nil {
		return nil, err
	}
	return RouteReply{Regions: rt.Regions, Length: rt.Length}, nil
}

type proximityArgs struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	Threshold float64 `json:"threshold"`
}

func (s *Server) handleProximity(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a proximityArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	p, err := s.svc.Proximity(a.A, a.B, a.Threshold)
	if err != nil {
		return nil, err
	}
	return probReply{Prob: p}, nil
}

type coLocatedArgs struct {
	A string `json:"a"`
	B string `json:"b"`
	// Granularity is "building", "floor", or "room".
	Granularity string `json:"granularity"`
}

type coLocatedReply struct {
	CoLocated bool    `json:"coLocated"`
	Prob      float64 `json:"prob"`
}

func granFromString(s string) glob.Granularity {
	switch s {
	case "building":
		return glob.GranBuilding
	case "floor":
		return glob.GranFloor
	default:
		return glob.GranRoom
	}
}

func (s *Server) handleCoLocated(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a coLocatedArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	ok, p, err := s.svc.CoLocated(a.A, a.B, granFromString(a.Granularity))
	if err != nil {
		return nil, err
	}
	return coLocatedReply{CoLocated: ok, Prob: p}, nil
}

// distributionArgs asks for an object's spatial posterior.
type distributionArgs struct {
	Object string `json:"object"`
}

// RegionProbDTO is one posterior cell on the wire.
type RegionProbDTO struct {
	Rect     RectDTO `json:"rect"`
	Symbolic string  `json:"symbolic,omitempty"`
	Prob     float64 `json:"prob"`
}

func (s *Server) handleDistribution(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a distributionArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	cells, err := s.svc.Distribution(a.Object)
	if err != nil {
		return nil, err
	}
	out := make([]RegionProbDTO, 0, len(cells))
	for _, c := range cells {
		out = append(out, RegionProbDTO{
			Rect: RectDTO{
				MinX: c.Rect.Min.X, MinY: c.Rect.Min.Y,
				MaxX: c.Rect.Max.X, MaxY: c.Rect.Max.Y,
			},
			Symbolic: c.Symbolic.String(),
			Prob:     c.Prob,
		})
	}
	return out, nil
}

func (s *Server) handleHistory(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a objectArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	trail := s.svc.History(a.Object)
	out := make([]LocationDTO, 0, len(trail))
	for _, loc := range trail {
		out = append(out, toLocationDTO(loc))
	}
	return out, nil
}

// defineRegionArgs creates an application-defined region remotely.
type defineRegionArgs struct {
	GLOB string `json:"glob"`
	// Points are polygon vertices in the GLOB prefix's frame.
	Points     [][2]float64      `json:"points"`
	Properties map[string]string `json:"properties,omitempty"`
}

func (s *Server) handleDefineRegion(_ *mwrpc.ServerConn, params json.RawMessage) (interface{}, error) {
	var a defineRegionArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	g, err := glob.Parse(a.GLOB)
	if err != nil {
		return nil, err
	}
	poly := make(geom.Polygon, 0, len(a.Points))
	for _, p := range a.Points {
		poly = append(poly, geom.Pt(p[0], p[1]))
	}
	if err := s.svc.DefineRegion(g, poly, a.Properties); err != nil {
		return nil, err
	}
	return "ok", nil
}
