// Package remote exposes the Location Service over the mwrpc
// substrate: the server side publishes the §4 API (ingest, queries,
// subscriptions, spatial relations) as RPC methods, and LocationClient
// gives applications and adapters the same interface remotely —
// mirroring how the paper's applications talk to MiddleWhere through
// CORBA. Trigger notifications arrive as server pushes (§4.3's push
// mode).
package remote

import (
	"fmt"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/fusion"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// ReadingDTO is the wire form of a sensor reading.
type ReadingDTO struct {
	SensorID        string  `json:"sensorId"`
	SensorType      string  `json:"sensorType,omitempty"`
	MObjectID       string  `json:"mobjectId"`
	Location        string  `json:"location"`
	DetectionRadius float64 `json:"detectionRadius,omitempty"`
	// Time is RFC 3339 with nanoseconds.
	Time string `json:"time"`
}

// toDTO converts a reading for the wire.
func toReadingDTO(r model.Reading) ReadingDTO {
	return ReadingDTO{
		SensorID:        r.SensorID,
		SensorType:      r.SensorType,
		MObjectID:       r.MObjectID,
		Location:        r.Location.String(),
		DetectionRadius: r.DetectionRadius,
		Time:            r.Time.Format(time.RFC3339Nano),
	}
}

// toReading converts a wire reading back to the model form.
func (d ReadingDTO) toReading() (model.Reading, error) {
	loc, err := glob.Parse(d.Location)
	if err != nil {
		return model.Reading{}, fmt.Errorf("remote: reading location: %w", err)
	}
	at, err := time.Parse(time.RFC3339Nano, d.Time)
	if err != nil {
		return model.Reading{}, fmt.Errorf("remote: reading time: %w", err)
	}
	return model.Reading{
		SensorID:        d.SensorID,
		SensorType:      d.SensorType,
		MObjectID:       d.MObjectID,
		Location:        loc,
		DetectionRadius: d.DetectionRadius,
		Time:            at,
	}, nil
}

// IngestBatchArgs is the wire form of a batched ingest: one frame
// carrying a slice of readings that the server stores in a single
// database pass (mw.ingestBatch).
type IngestBatchArgs struct {
	Readings []ReadingDTO `json:"readings"`
}

// IngestBatchReply acknowledges a batched ingest.
type IngestBatchReply struct {
	// Accepted is how many readings of the batch were stored.
	Accepted int `json:"accepted"`
	// Rejected lists the readings that failed decoding or validation,
	// by frame index; they were not stored. The frame itself succeeds
	// so an at-least-once client never re-sends the accepted readings.
	Rejected []RejectedReadingDTO `json:"rejected,omitempty"`
}

// RejectedReadingDTO reports one reading of a batched ingest frame
// that the server rejected.
type RejectedReadingDTO struct {
	// Index is the reading's position in the submitted frame.
	Index int `json:"index"`
	// Error says why it was rejected.
	Error string `json:"error"`
}

// TDFDTO encodes a temporal degradation function.
type TDFDTO struct {
	// Kind is "constant", "linear", "exp", or "step".
	Kind string `json:"kind"`
	// SpanSeconds parameterizes linear (span) and exp (half-life).
	SpanSeconds float64 `json:"spanSeconds,omitempty"`
	// Steps parameterizes step tdfs.
	Steps []StepDTO `json:"steps,omitempty"`
}

// StepDTO is one discrete degradation step.
type StepDTO struct {
	AgeSeconds float64 `json:"ageSeconds"`
	Factor     float64 `json:"factor"`
}

func toTDFDTO(f model.TDF) TDFDTO {
	switch v := f.(type) {
	case model.LinearTDF:
		return TDFDTO{Kind: "linear", SpanSeconds: v.Span.Seconds()}
	case model.ExponentialTDF:
		return TDFDTO{Kind: "exp", SpanSeconds: v.HalfLife.Seconds()}
	case model.StepTDF:
		out := TDFDTO{Kind: "step"}
		for _, s := range v.Steps {
			out.Steps = append(out.Steps, StepDTO{AgeSeconds: s.Age.Seconds(), Factor: s.Factor})
		}
		return out
	default:
		return TDFDTO{Kind: "constant"}
	}
}

func (d TDFDTO) toTDF() model.TDF {
	switch d.Kind {
	case "linear":
		return model.LinearTDF{Span: secs(d.SpanSeconds)}
	case "exp":
		return model.ExponentialTDF{HalfLife: secs(d.SpanSeconds)}
	case "step":
		f := model.StepTDF{}
		for _, s := range d.Steps {
			f.Steps = append(f.Steps, model.Step{Age: secs(s.AgeSeconds), Factor: s.Factor})
		}
		return f
	default:
		return model.ConstantTDF{}
	}
}

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// SensorSpecDTO is the wire form of a sensor calibration.
type SensorSpecDTO struct {
	Type           string  `json:"type"`
	X              float64 `json:"x"`
	Y              float64 `json:"y"`
	Z              float64 `json:"z"`
	ResolutionKind string  `json:"resolutionKind"` // "distance" or "symbolic"
	Radius         float64 `json:"radius,omitempty"`
	Region         string  `json:"region,omitempty"`
	TTLSeconds     float64 `json:"ttlSeconds"`
	TDF            TDFDTO  `json:"tdf"`
}

func toSpecDTO(s model.SensorSpec) SensorSpecDTO {
	out := SensorSpecDTO{
		Type:       s.Type,
		X:          s.Errors.X,
		Y:          s.Errors.Y,
		Z:          s.Errors.Z,
		TTLSeconds: s.TTL.Seconds(),
		TDF:        toTDFDTO(s.TDFOrDefault()),
	}
	switch s.Resolution.Kind {
	case model.ResolutionSymbolic:
		out.ResolutionKind = "symbolic"
		out.Region = s.Resolution.Region.String()
	default:
		out.ResolutionKind = "distance"
		out.Radius = s.Resolution.Radius
	}
	return out
}

func (d SensorSpecDTO) toSpec() (model.SensorSpec, error) {
	spec := model.SensorSpec{
		Type:    d.Type,
		Errors:  model.ErrorModel{X: d.X, Y: d.Y, Z: d.Z},
		TTL:     secs(d.TTLSeconds),
		Degrade: d.TDF.toTDF(),
	}
	switch d.ResolutionKind {
	case "symbolic":
		region, err := glob.Parse(d.Region)
		if err != nil {
			return model.SensorSpec{}, fmt.Errorf("remote: spec region: %w", err)
		}
		spec.Resolution = model.SymbolicResolution(region)
	default:
		spec.Resolution = model.DistanceResolution(d.Radius)
	}
	if err := spec.Validate(); err != nil {
		return model.SensorSpec{}, err
	}
	return spec, nil
}

// RectDTO is an axis-aligned rectangle on the wire.
type RectDTO struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

// LocationDTO is the wire form of a Location answer.
type LocationDTO struct {
	Object     string   `json:"object"`
	Rect       RectDTO  `json:"rect"`
	Prob       float64  `json:"prob"`
	Band       string   `json:"band"`
	Symbolic   string   `json:"symbolic"`
	Coordinate string   `json:"coordinate,omitempty"`
	Support    []string `json:"support,omitempty"`
	Discarded  []string `json:"discarded,omitempty"`
	Time       string   `json:"time"`
}

func toLocationDTO(l core.Location) LocationDTO {
	return LocationDTO{
		Object: l.Object,
		Rect: RectDTO{
			MinX: l.Rect.Min.X, MinY: l.Rect.Min.Y,
			MaxX: l.Rect.Max.X, MaxY: l.Rect.Max.Y,
		},
		Prob:       l.Prob,
		Band:       l.Band.String(),
		Symbolic:   l.Symbolic.String(),
		Coordinate: l.Coordinate.String(),
		Support:    l.Support,
		Discarded:  l.Discarded,
		Time:       l.At.Format(time.RFC3339Nano),
	}
}

// NotificationDTO is the wire form of a trigger notification.
type NotificationDTO struct {
	SubscriptionID string  `json:"subscriptionId"`
	Object         string  `json:"object"`
	Region         RectDTO `json:"region"`
	Prob           float64 `json:"prob"`
	Band           string  `json:"band"`
	Time           string  `json:"time"`
	// Trace is the obs trace ID of the reading that provoked the
	// notification (empty when tracing was off at ingest).
	Trace string `json:"trace,omitempty"`
}

func toNotificationDTO(n core.Notification) NotificationDTO {
	return NotificationDTO{
		SubscriptionID: n.SubscriptionID,
		Object:         n.Object,
		Region: RectDTO{
			MinX: n.Region.Min.X, MinY: n.Region.Min.Y,
			MaxX: n.Region.Max.X, MaxY: n.Region.Max.Y,
		},
		Prob:  n.Prob,
		Band:  n.Band.String(),
		Time:  n.At.Format(time.RFC3339Nano),
		Trace: n.Trace,
	}
}

// HealthDTO is the wire form of the service heartbeat.
type HealthDTO struct {
	// Status is "healthy", "degraded", or "down".
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Ingested      uint64  `json:"ingested"`
	Notifications uint64  `json:"notifications"`
	Subscriptions int     `json:"subscriptions"`
	Sensors       int     `json:"sensors"`
	QueueDepth    int     `json:"queueDepth"`
	QueueCap      int     `json:"queueCap"`
	// Federation is present when the daemon is part of a shard
	// federation: its name, placement-map version, and peer view.
	Federation *FederationDTO `json:"federation,omitempty"`
	// SLOs is present when the daemon tracks latency objectives (-slo):
	// each objective's latest windowed evaluation, sorted by name.
	SLOs []SLODTO `json:"slos,omitempty"`
}

// SLODTO is one latency objective's last evaluation on the wire.
type SLODTO struct {
	Name       string  `json:"name"`
	Metric     string  `json:"metric"`
	Percentile float64 `json:"percentile"`
	TargetUs   float64 `json:"targetUs"`
	WindowSecs float64 `json:"windowSecs"`
	AttainedUs float64 `json:"attainedUs"`
	BurnRate   float64 `json:"burnRate"`
	Samples    uint64  `json:"samples"`
	Breached   bool    `json:"breached"`
}

// StatsArgs configures an mw.stats fetch.
type StatsArgs struct {
	// Traces caps the recent traces returned (0 = none; mwctl trace
	// passes a positive count).
	Traces int `json:"traces,omitempty"`
}

// BucketDTO is one cumulative histogram bucket; Le < 0 encodes the
// +Inf overflow bucket (JSON has no infinity).
type BucketDTO struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramDTO is the wire form of a histogram snapshot.
type HistogramDTO struct {
	Name    string      `json:"name"`
	Count   uint64      `json:"count"`
	Sum     float64     `json:"sum"`
	P50     float64     `json:"p50"`
	P95     float64     `json:"p95"`
	P99     float64     `json:"p99"`
	Buckets []BucketDTO `json:"buckets,omitempty"`
}

// SpanDTO is one stage of a trace on the wire. Daemon names the
// process that recorded the stage — the per-hop label of a
// cross-daemon trace (empty for single-daemon spans).
type SpanDTO struct {
	Stage    string  `json:"stage"`
	Daemon   string  `json:"daemon,omitempty"`
	OffsetUs float64 `json:"offsetUs"`
	DurUs    float64 `json:"durUs"`
}

// TraceDTO is one recorded pipeline trace on the wire.
type TraceDTO struct {
	ID      string    `json:"id"`
	Begin   string    `json:"begin"`
	TotalUs float64   `json:"totalUs"`
	Spans   []SpanDTO `json:"spans"`
}

// ShardDTO describes one spatial-database shard (a floor's slice of
// the object and reading tables) on the wire.
type ShardDTO struct {
	// Key is the shard's GLOB prefix (top-two path components).
	Key string `json:"key"`
	// Objects counts object-table rows homed on the shard.
	Objects int `json:"objects"`
	// MobileObjects counts objects with stored readings.
	MobileObjects int `json:"mobileObjects"`
	// Readings counts stored reading rows.
	Readings int `json:"readings"`
	// RTreeNodes is the shard R-tree's entry count.
	RTreeNodes int `json:"rtreeNodes"`
	// Epoch is the shard's write epoch (mutation batches applied).
	Epoch uint64 `json:"epoch"`
	// Inserts counts readings stored since the database was created.
	Inserts uint64 `json:"inserts"`
}

// StatsDTO is the wire form of the service's observability snapshot
// (mw.stats).
type StatsDTO struct {
	// Enabled reports whether span tracing is on in the server process.
	Enabled    bool               `json:"enabled"`
	Counters   map[string]uint64  `json:"counters,omitempty"`
	Gauges     map[string]float64 `json:"gauges,omitempty"`
	Histograms []HistogramDTO     `json:"histograms,omitempty"`
	Traces     []TraceDTO         `json:"traces,omitempty"`
	// Shards lists the spatial database's per-floor shards, sorted by
	// key.
	Shards []ShardDTO `json:"shards,omitempty"`
}

// bandFromString parses a band name; unknown strings map to zero.
func bandFromString(s string) fusion.Band {
	switch s {
	case "low":
		return fusion.BandLow
	case "medium":
		return fusion.BandMedium
	case "high":
		return fusion.BandHigh
	case "very-high":
		return fusion.BandVeryHigh
	default:
		return 0
	}
}
