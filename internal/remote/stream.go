// Streaming ingest with credit-based backpressure.
//
// A client opens a stream with one mw.streamOpen call; the reply
// carries the stream ID and the initial credit window (batches and
// bytes). Batches then ride sequenced fire-and-forget stream frames —
// no per-batch round trip — and the daemon acknowledges each one with
// the cumulative accepted count, that batch's per-reading rejection
// list (PR-4 semantics), and a credit grant replenishing the window.
// The daemon processes batches inline on the connection's reader
// goroutine, so a slow daemon acks slowly, credits run out, and the
// sender sheds or buffers client-side instead of ballooning queues.
//
// Delivery is at-least-once across reconnects: unacked batches are
// resent on a fresh stream after the session resumes. A batch whose
// ack was lost may be stored twice, which the spatial database
// tolerates (identical rows fuse); acked batches are never resent.
// Streaming works over both codecs — binary connections carry the
// hand-rolled payloads, JSON connections the DTO envelope — so every
// MW_WIRE pairing of the compat matrix exercises it.
package remote

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
)

// Initial credit window granted on mw.streamOpen. Sized to keep the
// in-flight volume well under typical TCP buffers (the transport is
// the backstop, credits are the governor).
const (
	streamInitBatches = 32
	streamInitBytes   = 256 << 10
)

// streamOpenReply answers mw.streamOpen.
type streamOpenReply struct {
	StreamID      uint64 `json:"streamId"`
	CreditBatches int    `json:"creditBatches"`
	CreditBytes   int    `json:"creditBytes"`
}

// srvStream is the daemon's per-stream state.
type srvStream struct {
	lastSeq  uint64
	accepted uint64
}

// handleStreamOpen allocates a stream on the calling connection and
// grants the initial credit window.
func (s *Server) handleStreamOpen(conn *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	s.mu.Lock()
	s.nextStream++
	id := s.nextStream
	m := s.streams[conn]
	register := m == nil
	if register {
		m = make(map[uint64]*srvStream)
		s.streams[conn] = m
	}
	m[id] = &srvStream{}
	s.mu.Unlock()
	if register {
		conn.OnClose(func() {
			s.mu.Lock()
			delete(s.streams, conn)
			s.mu.Unlock()
		})
	}
	return streamOpenReply{
		StreamID:      id,
		CreditBatches: streamInitBatches,
		CreditBytes:   streamInitBytes,
	}, nil
}

// handleStreamBatch consumes one stream frame. It runs on the
// connection's reader goroutine — the next frame is not read until
// this returns, which is what makes a slow daemon starve the sender's
// credits instead of buffering unboundedly.
func (s *Server) handleStreamBatch(conn *mwrpc.ServerConn, id, seq uint64, payload []byte, binary bool, trace string) {
	s.mu.Lock()
	st := s.streams[conn][id]
	s.mu.Unlock()
	if st == nil {
		return // unknown stream (e.g. opened on a dead epoch): drop
	}
	ack := streamAckDTO{CreditBatches: 1, CreditBytes: len(payload)}
	if seq <= st.lastSeq {
		// Duplicate of an already-processed batch: never re-store, but
		// re-ack so the sender's credits and pending table drain. The
		// early return also means a replayed frame can never start a
		// second trace — the batch is not even decoded.
		ack.Accepted = st.accepted
		s.sendAck(conn, id, seq, ack)
		return
	}
	var (
		rs       []model.Reading
		frameIdx []int
		rejected []RejectedReadingDTO
		err      error
		total    int
	)
	if binary {
		rs, frameIdx, rejected, err = DecodeReadings(payload)
		total = len(rs) + len(rejected)
		if trace != "" {
			// The binary reading codec has no per-reading trace field;
			// the frame-level ID covers the whole batch.
			for i := range rs {
				rs[i].Trace = trace
			}
		}
	} else {
		var a IngestBatchArgs
		if err = json.Unmarshal(payload, &a); err == nil {
			rs, frameIdx, rejected = decodeDTOBatch(a.Readings, trace)
			total = len(a.Readings)
		}
	}
	st.lastSeq = seq
	if err == nil {
		var rep IngestBatchReply
		rep, err = s.ingestDecoded(rs, frameIdx, rejected, total)
		if err == nil {
			st.accepted += uint64(rep.Accepted)
			ack.Accepted = st.accepted
			ack.BatchAccepted = rep.Accepted
			ack.Rejected = rep.Rejected
			s.sendAck(conn, id, seq, ack)
			return
		}
	}
	// The payload is broken or the service refused the whole batch
	// (e.g. it is shutting down): the batch is dropped wholesale —
	// tell the sender rather than let it retry forever.
	ack.Error = err.Error()
	ack.Accepted = st.accepted
	s.sendAck(conn, id, seq, ack)
}

// sendAck writes a stream acknowledgement in the connection's
// negotiated codec. Send failures are ignored — a dead connection is
// cleaned up by OnClose and the client resends on the next stream.
func (s *Server) sendAck(conn *mwrpc.ServerConn, id, seq uint64, ack streamAckDTO) {
	if conn.Codec() == mwrpc.CodecBinary {
		_ = conn.StreamAck(id, seq, appendStreamAck(nil, ack), true)
		return
	}
	body, err := json.Marshal(ack)
	if err != nil {
		return
	}
	_ = conn.StreamAck(id, seq, body, false)
}

// ---------------------------------------------------------------------------
// Client

// ErrStreamUnsupported reports a daemon that predates streaming
// ingest; callers fall back to per-batch IngestBatch calls.
var ErrStreamUnsupported = fmt.Errorf("remote: daemon does not support streaming ingest")

// pendingBatch is one sent-but-unacked batch, kept for resend.
type pendingBatch struct {
	rs   []model.Reading
	size int // byte credits charged
}

// StreamStats snapshots a stream's progress.
type StreamStats struct {
	// Accepted is the cumulative count the daemon reports stored;
	// Rejected counts per-reading rejections surfaced in acks.
	Accepted, Rejected uint64
	// Unacked is the in-flight batch count (stream depth).
	Unacked int
	// CreditBatches/CreditBytes is the remaining send window.
	CreditBatches int
	CreditBytes   int64
	// Resends counts batches retransmitted after a reconnect.
	Resends uint64
}

// IngestStream pipelines reading batches to the daemon without
// per-batch round trips. It implements adapter.BatchSink, so a
// Batcher or ResilientSink can sit directly on top; Send returns
// mwrpc.ErrNoCredit when the daemon's credit window is exhausted,
// which those layers treat as backpressure (buffer or shed), not
// failure.
type IngestStream struct {
	c *LocationClient

	mu       sync.Mutex
	ackWait  chan struct{} // closed and replaced on every ack
	id       uint64
	epoch    int
	open     bool
	closed   bool
	nextSeq  uint64
	credBat  int
	credByt  int64
	pending  map[uint64]pendingBatch
	accepted uint64
	rejected uint64
	resends  uint64
	onReject func([]RejectedReadingDTO)
}

// OpenIngestStream opens a streaming-ingest session on the client's
// current connection. A daemon without stream support returns
// ErrStreamUnsupported; the caller falls back to IngestBatch.
func (c *LocationClient) OpenIngestStream() (*IngestStream, error) {
	s := &IngestStream{
		c:       c,
		ackWait: make(chan struct{}),
		pending: make(map[uint64]pendingBatch),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rpc, epoch, err := c.current()
	if err != nil {
		return nil, err
	}
	if err := s.reopenOn(rpc, epoch); err != nil {
		if !isTransportErr(err) {
			return nil, ErrStreamUnsupported
		}
		return nil, err
	}
	return s, nil
}

// OnReject installs a consumer for per-reading rejections reported in
// acks (called outside the stream lock, on the connection's reader
// goroutine). Rejected readings were not stored and are not resent.
func (s *IngestStream) OnReject(fn func([]RejectedReadingDTO)) {
	s.mu.Lock()
	s.onReject = fn
	s.mu.Unlock()
}

// reopenOn opens (or re-opens after a reconnect) the stream on rpc and
// resends every unacked batch in sequence order. Caller holds s.mu.
func (s *IngestStream) reopenOn(rpc *mwrpc.Client, epoch int) error {
	var rep streamOpenReply
	if err := rpc.Call("mw.streamOpen", struct{}{}, &rep); err != nil {
		return err
	}
	oldID := s.id
	s.id, s.epoch = rep.StreamID, epoch
	s.credBat, s.credByt = rep.CreditBatches, int64(rep.CreditBytes)
	s.open = true
	c := s.c
	c.mu.Lock()
	delete(c.ackSubs, oldID)
	c.ackSubs[s.id] = s
	c.mu.Unlock()
	if len(s.pending) > 0 {
		seqs := make([]uint64, 0, len(s.pending))
		for seq := range s.pending {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			pb := s.pending[seq]
			size, err := s.writeBatch(rpc, seq, pb.rs)
			if err != nil {
				s.open = false
				return err
			}
			pb.size = size
			s.pending[seq] = pb
			s.credBat--
			s.credByt -= int64(size)
			s.resends++
			s.c.mStreamResends.Inc()
		}
	}
	s.publishGauges()
	return nil
}

// writeBatch encodes rs in the connection's codec and fires the stream
// frame; it returns the payload size actually charged.
func (s *IngestStream) writeBatch(rpc *mwrpc.Client, seq uint64, rs []model.Reading) (int, error) {
	if rpc.Codec() == mwrpc.CodecBinary {
		size := ReadingsBinSize(rs)
		err := rpc.StreamSend(s.id, seq, func(b []byte) []byte {
			return AppendReadings(b, rs)
		}, nil)
		return size, err
	}
	args := IngestBatchArgs{Readings: make([]ReadingDTO, 0, len(rs))}
	for _, r := range rs {
		args.Readings = append(args.Readings, toReadingDTO(r))
	}
	body, err := json.Marshal(args)
	if err != nil {
		return 0, err
	}
	return len(body), rpc.StreamSend(s.id, seq, nil, body)
}

// Send pipelines one batch. It returns as soon as the frame is
// written — the ack (and any per-reading rejections) arrives
// asynchronously. When the credit window is exhausted it returns
// mwrpc.ErrNoCredit without sending; callers retry after acks drain
// (adapter.ResilientSink buffers and paces this automatically). A
// batch larger than the whole window is allowed through alone
// (overdraft) so progress is always possible.
func (s *IngestStream) Send(rs []model.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return mwrpc.ErrClosed
	}
	var lastErr error
	for attempt := 0; attempt < s.c.opts.DialAttempts; attempt++ {
		rpc, epoch, err := s.c.current()
		if err != nil {
			return err
		}
		if !s.open || epoch != s.epoch {
			if err := s.reopenOn(rpc, epoch); err != nil {
				if !isTransportErr(err) {
					return err
				}
				lastErr = err
				if werr := s.await(epoch); werr != nil {
					return werr
				}
				continue
			}
		}
		if s.credBat < 1 && len(s.pending) > 0 {
			return mwrpc.ErrNoCredit
		}
		if s.credByt < int64(estimateSize(rpc, rs)) && len(s.pending) > 0 {
			return mwrpc.ErrNoCredit
		}
		s.nextSeq++
		seq := s.nextSeq
		size, err := s.writeBatch(rpc, seq, rs)
		if err != nil {
			s.open = false
			if !isTransportErr(err) {
				return err
			}
			lastErr = err
			if werr := s.await(epoch); werr != nil {
				return werr
			}
			continue
		}
		s.pending[seq] = pendingBatch{rs: rs, size: size}
		s.credBat--
		s.credByt -= int64(size)
		s.c.mStreamBatches.Inc()
		s.publishGauges()
		return nil
	}
	return lastErr
}

// IngestBatch makes IngestStream an adapter.BatchSink.
func (s *IngestStream) IngestBatch(rs []model.Reading) error { return s.Send(rs) }

// Ingest makes IngestStream a full adapter.Sink, so a ResilientSink
// or Batcher can wrap it directly.
func (s *IngestStream) Ingest(r model.Reading) error { return s.Send([]model.Reading{r}) }

// estimateSize is the byte-credit cost of sending rs on rpc's codec.
// Binary is exact; JSON is approximated from the binary size (the DTO
// envelope is strictly larger, but credits only need to bound volume).
func estimateSize(rpc *mwrpc.Client, rs []model.Reading) int {
	return ReadingsBinSize(rs)
}

// await drops the stream lock while the client reconnects.
func (s *IngestStream) await(epoch int) error {
	s.mu.Unlock()
	err := s.c.awaitReconnect(epoch)
	s.mu.Lock()
	return err
}

// handleAck folds one acknowledgement into the stream state: pending
// drains, credits replenish, rejection lists surface.
func (s *IngestStream) handleAck(id, seq uint64, ack streamAckDTO) {
	s.mu.Lock()
	if id != s.id || s.closed {
		s.mu.Unlock()
		return // ack for a stream of a dead epoch
	}
	delete(s.pending, seq)
	s.credBat += ack.CreditBatches
	s.credByt += int64(ack.CreditBytes)
	s.accepted = ack.Accepted
	s.rejected += uint64(len(ack.Rejected))
	if ack.Error != "" {
		s.c.mStreamDropped.Inc()
	}
	onReject := s.onReject
	close(s.ackWait)
	s.ackWait = make(chan struct{})
	s.publishGauges()
	s.mu.Unlock()
	if onReject != nil && len(ack.Rejected) > 0 {
		onReject(ack.Rejected)
	}
}

// Flush blocks until every sent batch is acked (or timeout elapses),
// driving stream re-opens through reconnects as needed.
func (s *IngestStream) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return mwrpc.ErrClosed
		}
		n := len(s.pending)
		ch := s.ackWait
		if n == 0 {
			s.mu.Unlock()
			return nil
		}
		rpc, epoch, err := s.c.current()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		if !s.open || epoch != s.epoch {
			err := s.reopenOn(rpc, epoch)
			s.mu.Unlock()
			if err != nil {
				if !isTransportErr(err) {
					return err
				}
				if werr := s.c.awaitReconnect(epoch); werr != nil {
					return werr
				}
			}
			continue
		}
		s.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return fmt.Errorf("remote: stream flush timed out with %d batches unacked", n)
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond // re-check liveness periodically
		}
		select {
		case <-ch:
		case <-time.After(wait):
		}
	}
}

// Close flushes (best effort, bounded) and detaches the stream. The
// underlying connection stays up for the owning client.
func (s *IngestStream) Close() error {
	err := s.Flush(5 * time.Second)
	s.mu.Lock()
	s.closed = true
	id := s.id
	s.mu.Unlock()
	s.c.mu.Lock()
	delete(s.c.ackSubs, id)
	s.c.mu.Unlock()
	return err
}

// Stats snapshots the stream.
func (s *IngestStream) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StreamStats{
		Accepted:      s.accepted,
		Rejected:      s.rejected,
		Unacked:       len(s.pending),
		CreditBatches: s.credBat,
		CreditBytes:   s.credByt,
		Resends:       s.resends,
	}
}

// publishGauges exports the credit window and stream depth. Caller
// holds s.mu.
func (s *IngestStream) publishGauges() {
	s.c.gStreamCreditBatches.Set(float64(s.credBat))
	s.c.gStreamCreditBytes.Set(float64(s.credByt))
	s.c.gStreamUnacked.Set(float64(len(s.pending)))
}

// routeAck decodes an acknowledgement frame and hands it to the
// owning stream (runs on the connection's reader goroutine).
func (c *LocationClient) routeAck(id, seq uint64, payload []byte, binary bool) {
	var ack streamAckDTO
	if binary {
		a, err := decodeStreamAck(payload)
		if err != nil {
			c.mMalformed.Inc()
			return
		}
		ack = a
	} else if err := json.Unmarshal(payload, &ack); err != nil {
		c.mMalformed.Inc()
		return
	}
	c.mu.Lock()
	s := c.ackSubs[id]
	c.mu.Unlock()
	if s != nil {
		s.handleAck(id, seq, ack)
	}
}
