package remote

import (
	"encoding/json"
	"errors"
	"sort"
	"time"

	"middlewhere/internal/fed"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// Federation wiring: the daemon-to-daemon RPCs a federated deployment
// speaks. mw.hello and mw.shards are always registered — a standalone
// daemon answers them with a liveness ack and its local shard keys —
// while the migration/forwarded-ingest/fan-out handlers only exist
// once SetFederation attaches a router. All federation frames are
// plain JSON: the mwrpc binary codec carries unknown method names via
// its named-method escape, so no codec table changes are needed.

// SetFederation attaches a federation router to the server and
// registers the daemon-to-daemon methods (mw.migrate, mw.fedIngest,
// mw.fedObjectsInRegion). Call before Listen.
func (s *Server) SetFederation(r *fed.Router) {
	s.mu.Lock()
	s.fed = r
	s.mu.Unlock()
	s.rpc.RegisterTraced(fed.MethodMigrate, s.handleMigrate)
	s.rpc.RegisterTraced(fed.MethodIngest, s.handleFedIngest)
	s.rpc.RegisterTraced(fed.MethodObjectsInRegion, s.handleFedObjectsInRegion)
}

// fedDaemonName is the span label for owner-side federation spans: the
// router's federation name when attached, else the process-wide label.
// Explicit labeling matters because in-process multi-daemon tests share
// one global tracer — the label is what tells the hops apart.
func (s *Server) fedDaemonName() string {
	if r := s.federation(); r != nil {
		return r.Daemon()
	}
	return ""
}

// federation returns the attached router, or nil for a standalone
// daemon.
func (s *Server) federation() *fed.Router {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fed
}

// handleHello is the no-op liveness probe: it proves the daemon
// accepts and answers frames without touching the service. The
// resilient sink's breaker uses it as the half-open trial so a probe
// failure costs nothing.
func (s *Server) handleHello(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	return "ok", nil
}

// handleShards reports where floors live: the router's placement map
// and peer view when federated, just the local shard keys otherwise.
func (s *Server) handleShards(_ *mwrpc.ServerConn, _ json.RawMessage) (interface{}, error) {
	if r := s.federation(); r != nil {
		return r.Shards(), nil
	}
	return fed.ShardsReply{Local: s.svc.DB().LocalShardKeys()}, nil
}

// handleMigrate is the prepare half of the object handoff: merge the
// carried rows idempotently under the epoch guard and ack. Any
// successful reply — applied or recognized replay — tells the source
// it may commit.
func (s *Server) handleMigrate(_ *mwrpc.ServerConn, params json.RawMessage, trace string) (interface{}, error) {
	start := time.Now()
	var a fed.MigrateArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	if trace == "" {
		trace = a.Trace // body copy, for frames relayed without the header
	}
	if a.Object == "" {
		return nil, errors.New("migrate: missing object id")
	}
	rows, err := fed.FromWireBatch(a.Readings)
	if err != nil {
		return nil, err
	}
	db := s.svc.DB()
	applied := db.ImportObject(a.Object, rows, a.Epoch)
	obs.SpanSinceD(trace, "fed_migrate_apply", s.fedDaemonName(), start)
	return fed.MigrateReply{Applied: applied, Epoch: db.ReadingEpoch(a.Object)}, nil
}

// handleFedIngest stores a forwarded batch strictly locally — never
// through the ingest router — so two daemons with disagreeing
// placement maps cannot bounce a reading between each other. Rows the
// service rejects come back as frame indices; the sender stores those
// locally rather than dropping them.
func (s *Server) handleFedIngest(_ *mwrpc.ServerConn, params json.RawMessage, trace string) (interface{}, error) {
	start := time.Now()
	var a fed.IngestArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	if trace == "" {
		trace = a.Trace
	}
	rs := make([]model.Reading, 0, len(a.Readings))
	frameIdx := make([]int, 0, len(a.Readings))
	var rejected []int
	for i, w := range a.Readings {
		r, derr := w.ToReading()
		if derr != nil {
			rejected = append(rejected, i)
			continue
		}
		if s.svc.DB().HasReading(r) {
			// A replayed forward (the sender retried after a lost reply):
			// the row is already durably stored, so it counts as accepted
			// without storing twice.
			continue
		}
		rs = append(rs, r)
		frameIdx = append(frameIdx, i)
	}
	if err := s.svc.IngestBatchLocal(rs); err != nil {
		var rej *spatialdb.RejectedError
		if !errors.As(err, &rej) {
			return nil, err
		}
		for _, idx := range rej.Indices {
			if idx >= 0 && idx < len(frameIdx) {
				rejected = append(rejected, frameIdx[idx])
			}
		}
	}
	sort.Ints(rejected)
	// fed_ingest is the owner-side span of a forwarded batch: decode,
	// replay dedup, and the local store, labeled with this daemon.
	obs.SpanSinceD(trace, "fed_ingest", s.fedDaemonName(), start)
	return fed.IngestReply{Accepted: len(a.Readings) - len(rejected), Rejected: rejected}, nil
}

// handleFedObjectsInRegion answers a client-initiated federated scan:
// the attached router fans out across the placement map and merges
// deterministically. Without a router the local scan handler
// (mw.objectsInRegion) is the right call — this one errors so clients
// learn the daemon is standalone.
func (s *Server) handleFedObjectsInRegion(_ *mwrpc.ServerConn, params json.RawMessage, trace string) (interface{}, error) {
	var a fed.QueryArgs
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	r := s.federation()
	if r == nil {
		return nil, errors.New("federation not enabled on this daemon")
	}
	if trace != "" {
		a.Trace = trace
	} else if a.Trace == "" {
		// Entry daemon of an untraced client query: begin the trace here
		// (a no-op ID when tracing is disabled), so the whole fan-out —
		// local scan, peer hops, merge — lands in one span tree.
		a.Trace = obs.BeginTrace()
	}
	return r.Query(a)
}

// FederationDTO is the optional federation block of the health reply.
type FederationDTO struct {
	Daemon           string          `json:"daemon"`
	PlacementVersion uint64          `json:"placementVersion"`
	Peers            []fed.PeerState `json:"peers,omitempty"`
}

// Probe sends the no-op mw.hello liveness frame. It succeeds exactly
// when the daemon accepts connections and answers requests; nothing is
// read or written.
func (c *LocationClient) Probe() error {
	var out string
	return c.call(fed.MethodHello, struct{}{}, &out)
}

// FedObjectsInRegion runs a federated region scan: the daemon fans
// out across every shard in the placement map and merges. The reply is
// either complete or explicitly partial with the unreachable shard
// keys listed; strict turns a partial result into an error instead.
func (c *LocationClient) FedObjectsInRegion(region string, minProb float64, strict bool) (fed.QueryReply, error) {
	var out fed.QueryReply
	err := c.call(fed.MethodObjectsInRegion, fed.QueryArgs{Region: region, MinProb: minProb, Strict: strict}, &out)
	return out, err
}

// Shards fetches the daemon's shard map: the federation placement and
// peer state when federated, the local shard keys otherwise.
func (c *LocationClient) Shards() (fed.ShardsReply, error) {
	var out fed.ShardsReply
	err := c.call(fed.MethodShards, struct{}{}, &out)
	return out, err
}
