package remote

import (
	"testing"
	"time"

	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// TestTracePropagatesAcrossRPC proves the tentpole attribution story:
// a trace ID minted in the client's Ingest rides the mwrpc request
// frame into the server, through the pipeline stages, and comes back
// attached to the push notification — so a remote notification can be
// tied to the exact sensor reading that caused it.
func TestTracePropagatesAcrossRPC(t *testing.T) {
	was := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(was) })
	obs.DefaultTracer().Reset()

	c, _ := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-tr", spec); err != nil {
		t.Fatal(err)
	}
	notified := make(chan NotificationDTO, 1)
	_, err := c.Subscribe(SubscribeArgs{
		Region:       "CS/Floor3/NetLab",
		EveryReading: true,
	}, func(n NotificationDTO) { notified <- n })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(model.Reading{
		SensorID:  "ubi-tr",
		MObjectID: "alice",
		Location:  glob.MustParse("CS/Floor3/(370,15)"),
		Time:      t0,
	}); err != nil {
		t.Fatal(err)
	}

	var n NotificationDTO
	select {
	case n = <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("no notification")
	}
	if n.Trace == "" {
		t.Fatal("notification carries no trace ID")
	}

	// The recorded trace must contain the client-side RTT span and every
	// server-side pipeline stage under the ID the notification named.
	// The notify span is recorded just after the push frame is written,
	// racing our receipt of it — poll briefly.
	want := []string{"rpc_ingest", "ingest", "db_insert", "trigger_eval", "notify"}
	deadline := time.Now().Add(2 * time.Second)
	for {
		stages := map[string]bool{}
		for _, tr := range obs.RecentTraces(0) {
			if tr.ID != n.Trace {
				continue
			}
			for _, sp := range tr.Spans {
				stages[sp.Stage] = true
			}
		}
		missing := []string{}
		for _, s := range want {
			if !stages[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s missing stages %v (got %v)", n.Trace, missing, stages)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And mw.stats must return that trace over the wire.
	st, err := c.Stats(10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled {
		t.Error("mw.stats reports tracing disabled")
	}
	found := false
	for _, tr := range st.Traces {
		if tr.ID == n.Trace {
			found = true
			if len(tr.Spans) < len(want) {
				t.Errorf("mw.stats trace has %d spans, want >= %d", len(tr.Spans), len(want))
			}
		}
	}
	if !found {
		t.Errorf("mw.stats did not return trace %s", n.Trace)
	}
	if st.Counters["mwrpc_frames_received_total"] == 0 {
		t.Error("mw.stats counters missing mwrpc frame counts")
	}
}

// TestIngestUntracedWhenDisabled checks the other half of the cost
// contract: with tracing off, readings flow with an empty trace ID and
// notifications carry none.
func TestIngestUntracedWhenDisabled(t *testing.T) {
	was := obs.Enabled()
	obs.SetEnabled(false)
	t.Cleanup(func() { obs.SetEnabled(was) })

	c, _ := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-notr", spec); err != nil {
		t.Fatal(err)
	}
	notified := make(chan NotificationDTO, 1)
	_, err := c.Subscribe(SubscribeArgs{
		Region:       "CS/Floor3/NetLab",
		EveryReading: true,
	}, func(n NotificationDTO) { notified <- n })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(model.Reading{
		SensorID:  "ubi-notr",
		MObjectID: "bob",
		Location:  glob.MustParse("CS/Floor3/(370,15)"),
		Time:      t0,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-notified:
		if n.Trace != "" {
			t.Errorf("notification carries trace %q with tracing disabled", n.Trace)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification")
	}
}
