package remote

import (
	"errors"
	"testing"
	"time"

	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/spatialdb"
)

// TestRemoteIngestBatch sends a batch through the wire and checks the
// readings landed fused on the server side.
func TestRemoteIngestBatch(t *testing.T) {
	c, svc := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-b", spec); err != nil {
		t.Fatal(err)
	}
	rs := []model.Reading{
		{SensorID: "ubi-b", MObjectID: "alice",
			Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0},
		{SensorID: "ubi-b", MObjectID: "bob",
			Location: glob.MustParse("CS/Floor3/(340,15)"), Time: t0},
	}
	if err := c.IngestBatch(rs); err != nil {
		t.Fatal(err)
	}
	for _, obj := range []string{"alice", "bob"} {
		loc, err := c.Locate(obj)
		if err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		if loc.Object != obj {
			t.Errorf("located %q, want %q", loc.Object, obj)
		}
	}
	if got := svc.Health().Ingested; got != 2 {
		t.Errorf("server ingested = %d, want 2", got)
	}
}

func TestRemoteIngestBatchEmpty(t *testing.T) {
	c, _ := startStack(t)
	if err := c.IngestBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestRemoteIngestBatchBadReading(t *testing.T) {
	c, _ := startStack(t)
	rs := []model.Reading{{SensorID: "nope", MObjectID: "alice",
		Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0}}
	if err := c.IngestBatch(rs); err == nil {
		t.Error("unknown sensor in batch should error")
	}
}

// TestRemoteIngestBatchPartialReject: a frame with one bad reading
// must not fail wholesale — the valid readings are stored exactly
// once, and the client reports the rejects as a *spatialdb.RejectedError
// carrying frame indices (so a resilient sink retries only those).
func TestRemoteIngestBatchPartialReject(t *testing.T) {
	c, svc := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-p", spec); err != nil {
		t.Fatal(err)
	}
	rs := []model.Reading{
		{SensorID: "ubi-p", MObjectID: "alice",
			Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0},
		{SensorID: "nope", MObjectID: "bob",
			Location: glob.MustParse("CS/Floor3/(340,15)"), Time: t0},
	}
	err := c.IngestBatch(rs)
	var rej *spatialdb.RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("batch error = %v, want *spatialdb.RejectedError", err)
	}
	if len(rej.Indices) != 1 || rej.Indices[0] != 1 {
		t.Errorf("rejected indices = %v, want [1]", rej.Indices)
	}
	if got := svc.Health().Ingested; got != 1 {
		t.Errorf("server ingested = %d, want 1 (the valid reading only)", got)
	}
	if _, err := c.Locate("alice"); err != nil {
		t.Errorf("valid reading of a partially rejected frame not stored: %v", err)
	}
}
