package remote

import (
	"testing"
	"time"

	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// TestRemoteIngestBatch sends a batch through the wire and checks the
// readings landed fused on the server side.
func TestRemoteIngestBatch(t *testing.T) {
	c, svc := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-b", spec); err != nil {
		t.Fatal(err)
	}
	rs := []model.Reading{
		{SensorID: "ubi-b", MObjectID: "alice",
			Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0},
		{SensorID: "ubi-b", MObjectID: "bob",
			Location: glob.MustParse("CS/Floor3/(340,15)"), Time: t0},
	}
	if err := c.IngestBatch(rs); err != nil {
		t.Fatal(err)
	}
	for _, obj := range []string{"alice", "bob"} {
		loc, err := c.Locate(obj)
		if err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		if loc.Object != obj {
			t.Errorf("located %q, want %q", loc.Object, obj)
		}
	}
	if got := svc.Health().Ingested; got != 2 {
		t.Errorf("server ingested = %d, want 2", got)
	}
}

func TestRemoteIngestBatchEmpty(t *testing.T) {
	c, _ := startStack(t)
	if err := c.IngestBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestRemoteIngestBatchBadReading(t *testing.T) {
	c, _ := startStack(t)
	rs := []model.Reading{{SensorID: "nope", MObjectID: "alice",
		Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0}}
	if err := c.IngestBatch(rs); err == nil {
		t.Error("unknown sensor in batch should error")
	}
}
