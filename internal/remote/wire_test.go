package remote

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/spatialdb"
)

// TestWireMatrixInterop runs the full hot-path surface — batched
// ingest with per-reading rejection, region queries, notification
// pushes, and streaming ingest — under every MW_WIRE pairing the CI
// compat matrix ships, asserting identical observable behaviour and
// the expected negotiated codec. Binary framing only engages when both
// sides offer it; every other pairing falls back to JSON.
func TestWireMatrixInterop(t *testing.T) {
	cases := []struct {
		wire string
		want mwrpc.Codec
	}{
		{"binary/binary", mwrpc.CodecBinary},
		{"binary/json", mwrpc.CodecJSON},
		{"json/binary", mwrpc.CodecJSON},
		{"json/json", mwrpc.CodecJSON},
	}
	for _, tc := range cases {
		t.Run(tc.wire, func(t *testing.T) {
			t.Setenv(mwrpc.WireEnv, tc.wire)
			c, svc := startStack(t)
			if got := c.WireCodec(); got != tc.want {
				t.Fatalf("negotiated codec = %v, want %v", got, tc.want)
			}

			spec := model.UbisenseSpec(0.95)
			spec.TTL = time.Minute
			if err := c.RegisterSensor("wire-s", spec); err != nil {
				t.Fatal(err)
			}

			// Notifications must arrive over either framing.
			var mu sync.Mutex
			notified := map[string]int{}
			if _, err := c.Subscribe(SubscribeArgs{Region: "CS/Floor3/NetLab", MinProb: 0.3},
				func(n NotificationDTO) {
					mu.Lock()
					notified[n.Object]++
					mu.Unlock()
				}); err != nil {
				t.Fatal(err)
			}

			// Batched ingest with one bad reading: the rest of the batch
			// stores, the rejection surfaces positionally.
			batch := []model.Reading{
				{SensorID: "wire-s", MObjectID: "alice",
					Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0},
				{SensorID: "ghost", MObjectID: "bob",
					Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0},
				{SensorID: "wire-s", MObjectID: "carol",
					Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0},
			}
			err := c.IngestBatch(batch)
			var rej *spatialdb.RejectedError
			if !errors.As(err, &rej) {
				t.Fatalf("IngestBatch = %v, want RejectedError", err)
			}
			if len(rej.Indices) != 1 || rej.Indices[0] != 1 {
				t.Fatalf("rejected indices = %v, want [1]", rej.Indices)
			}

			// Region queries agree across codecs.
			prob, band, err := c.ProbInRegion("alice", "CS/Floor3/NetLab")
			if err != nil {
				t.Fatal(err)
			}
			if prob <= 0.5 || band == "" {
				t.Errorf("ProbInRegion = %v %q", prob, band)
			}
			objs, err := c.ObjectsInRegion("CS/Floor3/NetLab", 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := objs["alice"]; !ok {
				t.Errorf("ObjectsInRegion missing alice: %v", objs)
			}
			if _, ok := objs["carol"]; !ok {
				t.Errorf("ObjectsInRegion missing carol: %v", objs)
			}

			// Streaming ingest works on every pairing (JSON envelopes
			// carry the stream frames when binary is off).
			st, err := c.OpenIngestStream()
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			const streamed = 6
			for i := 0; i < streamed; i++ {
				err := st.Send([]model.Reading{{
					SensorID: "wire-s", MObjectID: fmt.Sprintf("walker-%d", i),
					Location: glob.MustParse("CS/Floor3/(370,15)"),
					Time:     t0.Add(time.Duration(i) * time.Second),
				}})
				if err != nil {
					t.Fatalf("stream send %d: %v", i, err)
				}
			}
			if err := st.Flush(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			stats := st.Stats()
			if stats.Accepted != streamed || stats.Unacked != 0 {
				t.Errorf("stream stats = %+v, want %d accepted, 0 unacked", stats, streamed)
			}

			// The pushes provoked above must land.
			deadline := time.Now().Add(10 * time.Second)
			for {
				mu.Lock()
				got := notified["alice"] > 0 && notified["walker-0"] > 0
				mu.Unlock()
				if got {
					break
				}
				if time.Now().After(deadline) {
					mu.Lock()
					snap := fmt.Sprintf("%v", notified)
					mu.Unlock()
					t.Fatalf("notifications never arrived: %s", snap)
				}
				time.Sleep(5 * time.Millisecond)
			}

			if got := svc.Health().Ingested; got != uint64(2+streamed) {
				t.Errorf("service ingested %d readings, want %d", got, 2+streamed)
			}
		})
	}
}

// TestWireBinaryDefault: with no MW_WIRE knob at all, a fresh stack
// negotiates the binary codec.
func TestWireBinaryDefault(t *testing.T) {
	t.Setenv(mwrpc.WireEnv, "")
	c, _ := startStack(t)
	if got := c.WireCodec(); got != mwrpc.CodecBinary {
		t.Fatalf("default codec = %v, want binary", got)
	}
}

// TestWireBinaryStrictFailsOnDecline: "binary!" demands the codec and
// the dial fails against a JSON-only daemon instead of degrading.
func TestWireBinaryStrictFailsOnDecline(t *testing.T) {
	t.Setenv(mwrpc.WireEnv, "json") // daemon declines binary
	svc, err := core.New(building.PaperFloor(), core.WithClock(func() time.Time { return t0 }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := DialLocationOptions(addr, DialOptions{Wire: mwrpc.WireBinary, DialAttempts: 1})
	if err == nil {
		c.Close()
		t.Fatal("strict-binary dial against a JSON-only daemon succeeded")
	}
}
